// Incremental editor — the single-schema update problem (§4.3's b = a
// special case lifted to trees): an application keeps a document valid
// while editing it, revalidating after every batch of edits without
// re-scanning the whole tree.
//
// This is the XJ-compiler scenario from the paper's introduction: typed XML
// variables are updated in place and must be re-checked against their type.
//
// Build & run:  ./build/examples/xml_editor

#include <cstdio>

#include "core/full_validator.h"
#include "core/mod_validator.h"
#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "xml/editor.h"
#include "xml/label_index.h"
#include "xml/serializer.h"

using namespace xmlreval;

int main() {
  auto alphabet = std::make_shared<automata::Alphabet>();
  auto parsed = schema::ParseXsd(workload::kTargetXsd, alphabet);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  schema::Schema schema = std::move(parsed).value();

  // Single-schema relations: source == target.
  auto relations = core::TypeRelations::Compute(&schema, &schema);
  if (!relations.ok()) {
    std::fprintf(stderr, "%s\n", relations.status().ToString().c_str());
    return 1;
  }
  core::ModValidator incremental(&*relations);
  core::FullValidator full(&schema);

  workload::PoGeneratorOptions options;
  options.item_count = 200;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  std::printf("editing a %zu-node purchase order (200 items)\n\n",
              doc.SubtreeSize(doc.root()));

  // --- Edit batch 1: bump a quantity (stays within the facet). ----------
  {
    xml::LabelIndex index = xml::LabelIndex::Build(doc);
    xml::DocumentEditor editor(&doc);
    xml::NodeId q = index.Instances("quantity")[17];
    if (!editor.UpdateText(doc.first_child(q), "42").ok()) return 1;
    xml::ModificationIndex mods = editor.Seal();
    core::ValidationReport r = incremental.Validate(doc, mods);
    std::printf("batch 1 (quantity := 42): %s, visited %llu nodes\n",
                r.valid ? "still valid" : "INVALID",
                (unsigned long long)r.counters.nodes_visited);
    if (!editor.Commit().ok()) return 1;
  }

  // --- Edit batch 2: delete an item's USPrice — breaks the content model.
  {
    xml::LabelIndex index = xml::LabelIndex::Build(doc);
    xml::DocumentEditor editor(&doc);
    xml::NodeId price = index.Instances("USPrice")[3];
    if (!editor.DeleteLeaf(doc.first_child(price)).ok()) return 1;
    if (!editor.DeleteLeaf(price).ok()) return 1;
    xml::ModificationIndex mods = editor.Seal();
    core::ValidationReport r = incremental.Validate(doc, mods);
    std::printf("batch 2 (delete USPrice):  %s — %s (at %s)\n",
                r.valid ? "still valid" : "INVALID", r.violation.c_str(),
                r.violation_path.ToString().c_str());
    // Roll the session back by simply not committing it is NOT possible —
    // edits are applied in place — so repair instead: re-insert the price.
    xml::DocumentEditor repair(&doc);
    // The deleted nodes are still Δ-encoded in `doc` until Commit; finish
    // the first session, then fix up.
    if (!editor.Commit().ok()) return 1;
    xml::NodeId item = index.Instances("item")[3];
    xml::NodeId quantity = index.Instances("quantity")[3];
    auto restored = repair.InsertElementAfter(quantity, "USPrice");
    if (!restored.ok()) return 1;
    if (!repair.InsertTextFirstChild(*restored, "19.99").ok()) return 1;
    (void)item;
    xml::ModificationIndex fix = repair.Seal();
    core::ValidationReport fixed = incremental.Validate(doc, fix);
    std::printf("repair  (re-add USPrice):  %s, visited %llu nodes\n",
                fixed.valid ? "valid again" : "STILL INVALID",
                (unsigned long long)fixed.counters.nodes_visited);
    if (!repair.Commit().ok()) return 1;
  }

  // --- Edit batch 3: append 3 fresh items (inserted subtrees). ----------
  {
    xml::LabelIndex index = xml::LabelIndex::Build(doc);
    xml::DocumentEditor editor(&doc);
    xml::NodeId last_item = index.Instances("item").back();
    for (int i = 0; i < 3; ++i) {
      auto item = editor.InsertElementAfter(last_item, "item");
      if (!item.ok()) return 1;
      struct F {
        const char* name;
        const char* value;
      };
      for (F f : {F{"USPrice", "5.00"}, F{"quantity", "7"},
                  F{"productName", "Hotfix"}}) {
        auto e = editor.InsertElementFirstChild(*item, f.name);
        if (!e.ok() || !editor.InsertTextFirstChild(*e, f.value).ok()) return 1;
      }
    }
    xml::ModificationIndex mods = editor.Seal();
    core::ValidationReport r = incremental.Validate(doc, mods);
    std::printf("batch 3 (append 3 items):  %s, visited %llu nodes\n",
                r.valid ? "still valid" : "INVALID",
                (unsigned long long)r.counters.nodes_visited);
    if (!editor.Commit().ok()) return 1;
  }

  // Cross-check against ground truth.
  core::ValidationReport truth = full.Validate(doc);
  std::printf("\nground truth after all batches: %s (full validation visited "
              "%llu nodes — the incremental passes above touched a fraction)\n",
              truth.valid ? "valid" : "INVALID",
              (unsigned long long)truth.counters.nodes_visited);
  return truth.valid ? 0 : 1;
}
