// Schema evolution — the paper's motivating scenario (§1) end to end.
//
// A company's purchase-order schema evolves: billTo, once optional, becomes
// required (Figure 1a → Figure 2). A archive of documents known to conform
// to the old schema must be checked against the new one. This example
//
//   * runs the schema-cast validator and shows its O(1) behaviour,
//   * shows the counter comparison against full validation (the paper's
//     Table 3-style accounting),
//   * repairs a failing document with DocumentEditor (adding the missing
//     billTo) and revalidates incrementally (§3.3).
//
// Build & run:  ./build/examples/schema_evolution

#include <cstdio>

#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "core/mod_validator.h"
#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "xml/editor.h"

using namespace xmlreval;

int main() {
  auto alphabet = std::make_shared<automata::Alphabet>();
  auto v1 = schema::ParseXsd(workload::kSourceXsd, alphabet);   // billTo?
  auto v2 = schema::ParseXsd(workload::kTargetXsd, alphabet);   // billTo
  if (!v1.ok() || !v2.ok()) {
    std::fprintf(stderr, "schema error\n");
    return 1;
  }
  auto relations = core::TypeRelations::Compute(&*v1, &*v2);
  if (!relations.ok()) {
    std::fprintf(stderr, "%s\n", relations.status().ToString().c_str());
    return 1;
  }
  core::CastValidator cast(&*relations);
  core::FullValidator full(&*v2);

  std::printf("=== Archive migration: v1 documents checked against v2 ===\n");
  for (size_t items : {2u, 100u, 1000u}) {
    workload::PoGeneratorOptions options;
    options.item_count = items;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    core::ValidationReport cast_report = cast.Validate(doc);
    core::ValidationReport full_report = full.Validate(doc);
    std::printf(
        "  %4zu items: cast=%s visited %5llu nodes | full validation "
        "visited %6llu nodes\n",
        items, cast_report.valid ? "VALID" : "INVALID",
        (unsigned long long)cast_report.counters.nodes_visited,
        (unsigned long long)full_report.counters.nodes_visited);
  }
  std::printf("  (cast work is constant: only the root's content model can "
              "differ; every subtree pair is subsumed)\n\n");

  std::printf("=== A v1 document without billTo fails the cast... ===\n");
  workload::PoGeneratorOptions options;
  options.item_count = 50;
  options.include_bill_to = false;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  core::ValidationReport report = cast.Validate(doc);
  std::printf("  verdict: %s — %s\n", report.valid ? "VALID" : "INVALID",
              report.violation.c_str());

  std::printf("\n=== ...so repair it in place and revalidate incrementally "
              "(schema cast with modifications, §3.3) ===\n");
  xml::DocumentEditor editor(&doc);
  xml::NodeId ship = xml::ElementChildren(doc, doc.root())[0];
  auto bill = editor.InsertElementAfter(ship, "billTo");
  if (!bill.ok()) return 1;
  struct Field {
    const char* name;
    const char* value;
  };
  // InsertElementFirstChild prepends, so add fields in reverse order.
  for (Field f : {Field{"country", "US"}, Field{"zip", "10598"},
                  Field{"state", "NY"}, Field{"city", "Yorktown"},
                  Field{"street", "134 Skyline Dr"},
                  Field{"name", "Accounts Payable"}}) {
    auto e = editor.InsertElementFirstChild(*bill, f.name);
    if (!e.ok() || !editor.InsertTextFirstChild(*e, f.value).ok()) return 1;
  }
  xml::ModificationIndex mods = editor.Seal();
  core::ModValidator incremental(&*relations);
  core::ValidationReport fixed = incremental.Validate(doc, mods);
  std::printf("  after insert-billTo edits: %s (visited %llu nodes of a "
              "%zu-node document)\n",
              fixed.valid ? "VALID" : "INVALID",
              (unsigned long long)fixed.counters.nodes_visited,
              doc.SubtreeSize(doc.root()));
  if (auto committed = editor.Commit(); !committed.ok()) {
    std::fprintf(stderr, "%s\n", committed.ToString().c_str());
    return 1;
  }
  core::ValidationReport ground_truth = full.Validate(doc);
  std::printf("  ground truth (full v2 validation of the edited document): "
              "%s\n",
              ground_truth.valid ? "VALID" : "INVALID");
  return fixed.valid == ground_truth.valid ? 0 : 1;
}
