// Quickstart: the 60-second tour of xmlreval.
//
// 1. Parse a source and a target XML Schema (sharing one alphabet).
// 2. Preprocess the pair once (TypeRelations — the paper's static step).
// 3. Validate documents known to conform to the source against the target,
//    skipping everything the type relations prove.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "xml/parser.h"

namespace {

// Version 1 of a tiny orders vocabulary: note is optional.
constexpr const char* kSourceXsd = R"(
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="order" type="Order"/>
  <xsd:complexType name="Order">
    <xsd:sequence>
      <xsd:element name="sku" type="xsd:string"/>
      <xsd:element name="count" type="xsd:positiveInteger"/>
      <xsd:element name="note" type="xsd:string" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>)";

// Version 2: note became mandatory, count must stay below 1000.
constexpr const char* kTargetXsd = R"(
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="order" type="Order"/>
  <xsd:complexType name="Order">
    <xsd:sequence>
      <xsd:element name="sku" type="xsd:string"/>
      <xsd:element name="count">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="1000"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="note" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>)";

constexpr const char* kDocuments[] = {
    "<order><sku>A-17</sku><count>3</count><note>gift wrap</note></order>",
    "<order><sku>A-17</sku><count>3</count></order>",          // note missing
    "<order><sku>B-2</sku><count>5000</count><note>x</note></order>",  // count
};

}  // namespace

int main() {
  using namespace xmlreval;

  // Both schemas must share one Alphabet so their types talk about the
  // same interned labels.
  auto alphabet = std::make_shared<automata::Alphabet>();
  auto source = schema::ParseXsd(kSourceXsd, alphabet);
  auto target = schema::ParseXsd(kTargetXsd, alphabet);
  if (!source.ok() || !target.ok()) {
    std::fprintf(stderr, "schema error: %s%s\n",
                 source.status().ToString().c_str(),
                 target.status().ToString().c_str());
    return 1;
  }

  // One-time static preprocessing of the schema pair (R_sub, R_dis, and
  // the §4 immediate decision automata).
  auto relations = core::TypeRelations::Compute(&*source, &*target);
  if (!relations.ok()) {
    std::fprintf(stderr, "%s\n", relations.status().ToString().c_str());
    return 1;
  }
  core::CastValidator cast(&*relations);
  core::FullValidator check_source(&*source);

  std::printf("source ⊑ target subsumed pairs: %zu, non-disjoint pairs: %zu\n\n",
              relations->CountSubsumed(), relations->CountNonDisjoint());

  for (const char* text : kDocuments) {
    auto doc = xml::ParseXml(text);
    if (!doc.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    // The cast validator's precondition: the input conforms to the source.
    if (!check_source.Validate(*doc).valid) {
      std::printf("SKIP (not source-valid): %s\n", text);
      continue;
    }
    core::ValidationReport report = cast.Validate(*doc);
    std::printf("%s\n  -> %s", text, report.valid ? "VALID" : "INVALID");
    if (!report.valid) {
      std::printf("  (%s at %s)", report.violation.c_str(),
                  report.violation_path.ToString().c_str());
    }
    std::printf("\n  visited %llu nodes, skipped %llu subtrees, %llu DFA steps\n",
                (unsigned long long)report.counters.nodes_visited,
                (unsigned long long)report.counters.subtrees_skipped,
                (unsigned long long)report.counters.dfa_steps);
  }
  return 0;
}
