// Message broker — the paper's "documents are not available a priori"
// deployment (§2): a broker receives a stream of XML messages, each
// guaranteed by its producer to conform to the producer's DTD, and must
// decide per message whether it satisfies each consumer's DTD. Schemas are
// preprocessed once at subscription time; messages are validated as they
// arrive with no per-document preprocessing or annotation.
//
// Here: one producer ships order records; two consumers subscribed with
// stricter contracts (one needs the optional priority field, one bounds
// the item count). The broker routes each message to the consumers whose
// contract it satisfies.
//
// Build & run:  ./build/examples/message_broker

#include <cstdio>
#include <string>
#include <vector>

#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "core/relations.h"
#include "schema/dtd_parser.h"
#include "xml/parser.h"

using namespace xmlreval;

namespace {

constexpr const char* kProducerDtd = R"(
<!ELEMENT message (header, priority?, body)>
<!ELEMENT header (sender, timestamp)>
<!ELEMENT sender (#PCDATA)>
<!ELEMENT timestamp (#PCDATA)>
<!ELEMENT priority (#PCDATA)>
<!ELEMENT body (entry*)>
<!ELEMENT entry (#PCDATA)>
)";

// Consumer A: priority is mandatory.
constexpr const char* kConsumerA = R"(
<!ELEMENT message (header, priority, body)>
<!ELEMENT header (sender, timestamp)>
<!ELEMENT sender (#PCDATA)>
<!ELEMENT timestamp (#PCDATA)>
<!ELEMENT priority (#PCDATA)>
<!ELEMENT body (entry*)>
<!ELEMENT entry (#PCDATA)>
)";

// Consumer B: accepts at most three entries. Note the nested-optional
// encoding — the flat (entry?, entry?, entry?) is not 1-unambiguous and
// XML's determinism rule (and this library) rejects it.
constexpr const char* kConsumerB = R"(
<!ELEMENT message (header, priority?, body)>
<!ELEMENT header (sender, timestamp)>
<!ELEMENT sender (#PCDATA)>
<!ELEMENT timestamp (#PCDATA)>
<!ELEMENT priority (#PCDATA)>
<!ELEMENT body (entry, (entry, (entry)?)?)?>
<!ELEMENT entry (#PCDATA)>
)";

std::string Message(bool priority, int entries) {
  std::string m =
      "<message><header><sender>svc-42</sender>"
      "<timestamp>2026-07-05T12:00:00</timestamp></header>";
  if (priority) m += "<priority>high</priority>";
  m += "<body>";
  for (int i = 0; i < entries; ++i) {
    m += "<entry>e" + std::to_string(i) + "</entry>";
  }
  m += "</body></message>";
  return m;
}

struct Subscription {
  std::string name;
  std::unique_ptr<schema::Schema> contract;
  std::unique_ptr<core::TypeRelations> relations;
  std::unique_ptr<core::CastValidator> validator;
};

}  // namespace

int main() {
  auto alphabet = std::make_shared<automata::Alphabet>();
  schema::DtdParseOptions dtd_options;
  dtd_options.roots = {"message"};
  auto producer = schema::ParseDtd(kProducerDtd, alphabet, dtd_options);
  if (!producer.ok()) {
    std::fprintf(stderr, "%s\n", producer.status().ToString().c_str());
    return 1;
  }

  // Subscription time: preprocess (producer, consumer) once per consumer.
  std::vector<Subscription> subscriptions;
  for (auto [name, dtd] : {std::pair{"consumer-A", kConsumerA},
                           std::pair{"consumer-B", kConsumerB}}) {
    Subscription sub;
    sub.name = name;
    auto contract = schema::ParseDtd(dtd, alphabet, dtd_options);
    if (!contract.ok()) {
      std::fprintf(stderr, "%s\n", contract.status().ToString().c_str());
      return 1;
    }
    sub.contract = std::make_unique<schema::Schema>(std::move(contract).value());
    auto relations = core::TypeRelations::Compute(&*producer, sub.contract.get());
    if (!relations.ok()) {
      std::fprintf(stderr, "%s\n", relations.status().ToString().c_str());
      return 1;
    }
    sub.relations =
        std::make_unique<core::TypeRelations>(std::move(relations).value());
    sub.validator = std::make_unique<core::CastValidator>(sub.relations.get());
    subscriptions.push_back(std::move(sub));
  }

  // Message loop: each arriving message is producer-valid by contract; the
  // broker only pays for the schema differences.
  core::FullValidator producer_check(&*producer);
  struct Stats {
    int delivered = 0;
    unsigned long long nodes = 0;
  };
  std::vector<Stats> stats(subscriptions.size());

  std::vector<std::string> wire = {
      Message(true, 2),  Message(false, 1), Message(true, 5),
      Message(false, 8), Message(true, 0),  Message(true, 3),
  };
  for (const std::string& text : wire) {
    auto doc = xml::ParseXml(text);
    if (!doc.ok() || !producer_check.Validate(*doc).valid) {
      std::printf("REJECTED at ingress (producer contract violated)\n");
      continue;
    }
    std::printf("message (%zu bytes):", text.size());
    for (size_t i = 0; i < subscriptions.size(); ++i) {
      core::ValidationReport report = subscriptions[i].validator->Validate(*doc);
      stats[i].nodes += report.counters.nodes_visited;
      if (report.valid) {
        ++stats[i].delivered;
        std::printf("  -> %s", subscriptions[i].name.c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\nrouting summary:\n");
  for (size_t i = 0; i < subscriptions.size(); ++i) {
    std::printf("  %s: %d/%zu delivered, %llu nodes examined in total\n",
                subscriptions[i].name.c_str(), stats[i].delivered, wire.size(),
                stats[i].nodes);
  }
  return 0;
}
