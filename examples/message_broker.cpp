// Message broker — the paper's "documents are not available a priori"
// deployment (§2): a broker receives a stream of XML messages, each
// guaranteed by its producer to conform to the producer's DTD, and must
// decide per message whether it satisfies each consumer's DTD.
//
// This version routes through the serving layer (src/service/): schemas
// are registered once in the broker's SchemaRegistry, the (producer,
// consumer) fixpoints are computed lazily by the RelationsCache on the
// first message and shared thereafter, and every verdict goes through
// ValidationService — the same substrate `xmlreval serve-batch` uses.
//
// Build & run:  ./build/examples/message_broker

#include <cstdio>
#include <string>
#include <vector>

#include "service/validation_service.h"
#include "xml/parser.h"

using namespace xmlreval;

namespace {

constexpr const char* kProducerDtd = R"(
<!ELEMENT message (header, priority?, body)>
<!ELEMENT header (sender, timestamp)>
<!ELEMENT sender (#PCDATA)>
<!ELEMENT timestamp (#PCDATA)>
<!ELEMENT priority (#PCDATA)>
<!ELEMENT body (entry*)>
<!ELEMENT entry (#PCDATA)>
)";

// Consumer A: priority is mandatory.
constexpr const char* kConsumerA = R"(
<!ELEMENT message (header, priority, body)>
<!ELEMENT header (sender, timestamp)>
<!ELEMENT sender (#PCDATA)>
<!ELEMENT timestamp (#PCDATA)>
<!ELEMENT priority (#PCDATA)>
<!ELEMENT body (entry*)>
<!ELEMENT entry (#PCDATA)>
)";

// Consumer B: accepts at most three entries. Note the nested-optional
// encoding — the flat (entry?, entry?, entry?) is not 1-unambiguous and
// XML's determinism rule (and this library) rejects it.
constexpr const char* kConsumerB = R"(
<!ELEMENT message (header, priority?, body)>
<!ELEMENT header (sender, timestamp)>
<!ELEMENT sender (#PCDATA)>
<!ELEMENT timestamp (#PCDATA)>
<!ELEMENT priority (#PCDATA)>
<!ELEMENT body (entry, (entry, (entry)?)?)?>
<!ELEMENT entry (#PCDATA)>
)";

std::string Message(bool priority, int entries) {
  std::string m =
      "<message><header><sender>svc-42</sender>"
      "<timestamp>2026-07-05T12:00:00</timestamp></header>";
  if (priority) m += "<priority>high</priority>";
  m += "<body>";
  for (int i = 0; i < entries; ++i) {
    m += "<entry>e" + std::to_string(i) + "</entry>";
  }
  m += "</body></message>";
  return m;
}

struct Subscription {
  std::string name;
  service::SchemaHandle contract = service::kInvalidSchemaHandle;
  int delivered = 0;
  unsigned long long nodes = 0;
};

}  // namespace

int main() {
  service::ValidationService broker;
  schema::DtdParseOptions dtd_options;
  dtd_options.roots = {"message"};

  // Subscription time: one registration per party. Relations are NOT
  // precomputed here — the cache fills on first use and is shared after.
  auto producer =
      broker.registry().RegisterDtd("producer", kProducerDtd, dtd_options);
  if (!producer.ok()) {
    std::fprintf(stderr, "%s\n", producer.status().ToString().c_str());
    return 1;
  }
  std::vector<Subscription> subscriptions;
  for (auto [name, dtd] : {std::pair{"consumer-A", kConsumerA},
                           std::pair{"consumer-B", kConsumerB}}) {
    auto contract = broker.registry().RegisterDtd(name, dtd, dtd_options);
    if (!contract.ok()) {
      std::fprintf(stderr, "%s\n", contract.status().ToString().c_str());
      return 1;
    }
    subscriptions.push_back(Subscription{name, *contract, 0, 0});
  }

  // Message loop: each arriving message is producer-valid by contract; the
  // broker only pays for the schema differences.
  std::vector<std::string> wire = {
      Message(true, 2),  Message(false, 1), Message(true, 5),
      Message(false, 8), Message(true, 0),  Message(true, 3),
  };
  for (const std::string& text : wire) {
    auto doc = xml::ParseXml(text);
    if (!doc.ok()) {
      std::printf("REJECTED at ingress (malformed)\n");
      continue;
    }
    auto ingress = broker.Validate(*producer, *doc);
    if (!ingress.ok() || !ingress->valid) {
      std::printf("REJECTED at ingress (producer contract violated)\n");
      continue;
    }
    std::printf("message (%zu bytes):", text.size());
    for (Subscription& sub : subscriptions) {
      auto report = broker.Cast(*producer, sub.contract, *doc);
      if (!report.ok()) {
        std::fprintf(stderr, "\n%s\n", report.status().ToString().c_str());
        return 1;
      }
      sub.nodes += report->counters.nodes_visited;
      if (report->valid) {
        ++sub.delivered;
        std::printf("  -> %s", sub.name.c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\nrouting summary:\n");
  for (const Subscription& sub : subscriptions) {
    std::printf("  %s: %d/%zu delivered, %llu nodes examined in total\n",
                sub.name.c_str(), sub.delivered, wire.size(), sub.nodes);
  }

  service::RelationsCache::Stats cache = broker.cache().stats();
  service::ValidationService::Counters counters = broker.counters();
  std::printf(
      "\nservice stats:\n"
      "  requests: %llu (%llu full, %llu cast) — %llu valid, %llu invalid\n"
      "  relations cache: %llu hits, %llu misses, %llu fixpoints computed "
      "in %llu us, %llu evictions\n",
      (unsigned long long)counters.requests,
      (unsigned long long)counters.full_validations,
      (unsigned long long)counters.casts,
      (unsigned long long)counters.valid,
      (unsigned long long)counters.invalid,
      (unsigned long long)cache.hits, (unsigned long long)cache.misses,
      (unsigned long long)cache.computations,
      (unsigned long long)cache.compute_micros,
      (unsigned long long)cache.evictions);
  return 0;
}
