// Schema compatibility checker — a migration-planning devtool built on the
// type relations.
//
// Given two schema versions it classifies every type pair and every root:
//   * backward compatible (old ⊑ new): every archived document stays valid,
//     revalidation is free;
//   * incompatible-by-construction (disjoint): every archived document
//     BREAKS — migration must transform, not revalidate;
//   * needs-checking: documents must be cast-validated (and the report
//     shows which labels the §3.4 label-index optimization would touch).
//
// Build & run:  ./build/examples/schema_diff

#include <cstdio>

#include "core/dtd_index_validator.h"
#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "workload/po_schemas.h"

using namespace xmlreval;

namespace {

void Report(const char* title, const schema::Schema& source,
            const schema::Schema& target,
            const core::TypeRelations& relations) {
  std::printf("=== %s ===\n", title);

  // Root-level verdicts.
  for (const auto& [sym, s_type] : source.roots()) {
    const std::string& label = source.alphabet()->Name(sym);
    schema::TypeId t_type = target.RootType(sym);
    if (t_type == schema::kInvalidType) {
      std::printf("  root <%s>: REMOVED in the new version\n", label.c_str());
      continue;
    }
    if (relations.Subsumed(s_type, t_type)) {
      std::printf("  root <%s>: backward compatible — every old document "
                  "is valid as-is\n",
                  label.c_str());
    } else if (relations.Disjoint(s_type, t_type)) {
      std::printf("  root <%s>: INCOMPATIBLE — no old document can satisfy "
                  "the new schema\n",
                  label.c_str());
    } else {
      std::printf("  root <%s>: needs checking — some old documents valid, "
                  "some not\n",
                  label.c_str());
    }
  }

  // If both versions are label-determined (DTD-like), show the §3.4 view:
  // the exact labels a checker must visit.
  auto index_validator = core::DtdIndexValidator::Create(&relations);
  if (index_validator.ok()) {
    std::printf("  labels needing per-instance checks:");
    auto checked = index_validator->CheckedLabels();
    if (checked.empty()) {
      std::printf(" (none)");
    }
    for (const std::string& label : checked) {
      std::printf(" <%s>", label.c_str());
    }
    std::printf("\n");
  } else {
    std::printf("  (schemas are not label-determined; per-label analysis "
                "unavailable)\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  {
    auto alphabet = std::make_shared<automata::Alphabet>();
    auto v1 = schema::ParseXsd(workload::kSourceXsd, alphabet);
    auto v2 = schema::ParseXsd(workload::kTargetXsd, alphabet);
    if (!v1.ok() || !v2.ok()) return 1;
    auto forward = core::TypeRelations::Compute(&*v1, &*v2);
    auto backward = core::TypeRelations::Compute(&*v2, &*v1);
    if (!forward.ok() || !backward.ok()) return 1;
    Report("purchase orders: v1 (billTo optional) -> v2 (billTo required)",
           *v1, *v2, *forward);
    Report("purchase orders: v2 -> v1 (the downgrade direction)", *v2, *v1,
           *backward);
  }
  {
    auto alphabet = std::make_shared<automata::Alphabet>();
    auto relaxed = schema::ParseXsd(workload::kRelaxedQuantityXsd, alphabet);
    auto strict = schema::ParseXsd(workload::kTargetXsd, alphabet);
    if (!relaxed.ok() || !strict.ok()) return 1;
    auto relations = core::TypeRelations::Compute(&*relaxed, &*strict);
    if (!relations.ok()) return 1;
    Report("purchase orders: quantity<200 -> quantity<100 (experiment 2)",
           *relaxed, *strict, *relations);
  }
  return 0;
}
