#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against committed baselines.

The bench binaries write flat JSON: a "bench" name, a hardware_concurrency
stamp, and metric: value pairs. This tool diffs a fresh run against the
baselines committed at the repo root and FAILS (exit 1) when a gated
lower-is-better metric regressed by more than the threshold.

Hardware honesty: timing baselines are only comparable on the machine
shape that produced them, so a fresh file whose hardware_concurrency stamp
differs from the baseline's is reported but never failed — the numbers
measure different machines, not a regression.

Quarantine: baselines known to be untrustworthy live in bench/quarantine/
(see its README). A fresh artifact whose only "baseline" is quarantined is
reported as such and never compared — a quarantined file must not gate
anything, and silently treating it as "no baseline" would hide why.

Gated metrics default to the binding bench's ns/node numbers (the
acceptance-tracked hot-path cost); everything else that looks like a
latency (*_ns, *_ns_per_node, *_us) is reported informationally.

Usage:
  tools/bench_diff.py --fresh-dir build/bench [--baseline-dir .]
                      [--threshold 0.10] [--fail-keys k1,k2]
"""

import argparse
import glob
import json
import os
import sys

DEFAULT_FAIL_KEYS = ("bound_ns_per_node", "unbound_ns_per_node")


def is_latency_key(key: str) -> bool:
    return key.endswith("_ns") or key.endswith("_us") or "_ns_" in key \
        or key.endswith("_ns_per_node")


def load(path):
    with open(path) as f:
        return json.load(f)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding committed BENCH_*.json")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed relative regression (default 0.10)")
    parser.add_argument("--fail-keys", default=",".join(DEFAULT_FAIL_KEYS),
                        help="comma-separated metric keys that gate the run")
    args = parser.parse_args()

    fail_keys = {k for k in args.fail_keys.split(",") if k}
    fresh_files = sorted(glob.glob(os.path.join(args.fresh_dir,
                                                "BENCH_*.json")))
    if not fresh_files:
        print(f"error: no BENCH_*.json under {args.fresh_dir}",
              file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for fresh_path in fresh_files:
        name = os.path.basename(fresh_path)
        baseline_path = os.path.join(args.baseline_dir, name)
        quarantine_path = os.path.join(args.baseline_dir, "bench",
                                       "quarantine", name)
        if not os.path.exists(baseline_path):
            if os.path.exists(quarantine_path):
                print(f"{name}: baseline is QUARANTINED "
                      f"({quarantine_path}) — see bench/quarantine/"
                      "README.md; not compared, not gated")
            else:
                print(f"{name}: no committed baseline — skipped")
            continue
        fresh = load(fresh_path)
        baseline = load(baseline_path)

        fresh_hw = fresh.get("hardware_concurrency")
        base_hw = baseline.get("hardware_concurrency")
        comparable = fresh_hw == base_hw
        if not comparable:
            print(f"{name}: hardware_concurrency {base_hw} (baseline) vs "
                  f"{fresh_hw} (fresh) — different machine shape, "
                  "regressions reported but NOT gated")

        # A parallel-scaling artifact produced on a single-core runner has
        # no parallelism to measure: every "speedup" it reports is noise
        # around 1.0. Call it out loudly so nobody reads it as a baseline,
        # and never gate on it.
        parallel_bench = "parallel" in name.lower()
        for side, hw in (("baseline", base_hw), ("fresh", fresh_hw)):
            if parallel_bench and isinstance(hw, (int, float)) and hw <= 1:
                print(f"{name}: WARNING {side} artifact was produced with "
                      f"hardware_concurrency={hw:g} — parallel numbers from "
                      "a single-core machine are NOT comparable; regenerate "
                      "on a multicore runner (CI's perf job does this)")
                comparable = False

        for key, base_value in sorted(baseline.items()):
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            if not is_latency_key(key):
                continue
            fresh_value = fresh.get(key)
            if not isinstance(fresh_value, (int, float)):
                print(f"{name}: {key} missing from fresh run")
                continue
            delta = fresh_value / base_value - 1.0
            gated = comparable and key in fail_keys
            marker = "GATE" if gated else "info"
            verdict = ""
            if delta > args.threshold:
                verdict = (" REGRESSION" if gated else " (regressed, ungated)")
                if gated:
                    failures.append(
                        f"{name}: {key} {base_value:g} -> {fresh_value:g} "
                        f"({delta:+.1%} > {args.threshold:.0%})")
            print(f"{name}: [{marker}] {key}: {base_value:g} -> "
                  f"{fresh_value:g} ({delta:+.1%}){verdict}")
            compared += 1

    if failures:
        print("\nFAIL: gated bench regressions:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nok: {compared} metrics compared, no gated regression "
          f"beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
