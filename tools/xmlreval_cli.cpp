// xmlreval — command-line front end.
//
//   xmlreval validate    <schema> <doc.xml>            full validation
//   xmlreval cast        <source> <target> <doc.xml>   schema cast validation
//                        [--stream [--chunk-bytes N]]  ("-" = stdin) streams
//                        through the incremental engine: O(depth) memory,
//                        subsumed subtrees byte-skipped, no DOM
//   xmlreval correct     <source> <target> <doc.xml> [-o out.xml]
//   xmlreval sample      <schema> [--root LABEL] [--seed N] [--max-elems N]
//   xmlreval relations   <source> <target>             dump R_sub / R_dis
//   xmlreval compile     <source> <target> --plan-cache-dir DIR
//                                                      precompile a cast plan
//   xmlreval serve-batch <source> <target> <doc.xml...> [--threads N]
//                        [--repeat N] [--metrics-out F] [--metrics-interval S]
//                        [--trace-out F] [--tail-sample]
//                        [--flight-recorder F] [--plan-cache-dir DIR]
//                                                      batch pipeline
//   xmlreval stats       <metrics.json>                 pretty-print a dump
//   xmlreval trace-report <trace.json>                  latency decomposition
//
// Schemas are loaded by extension: *.dtd through the DTD front end,
// anything else through the XSD front end. Exit status: 0 = valid /
// success, 1 = invalid document, 2 = usage or input error. Unknown
// subcommands print the usage message and exit 2.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/macros.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/cast_validator.h"
#include "core/corrector.h"
#include "core/full_validator.h"
#include "core/relations.h"
#include "core/streaming_validator.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "schema/xsd_writer.h"
#include "service/validation_service.h"
#include "workload/random_docs.h"
#include "workload/update_workload.h"
#include "xml/parser.h"
#include "xml/serializer.h"

using namespace xmlreval;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  xmlreval validate  <schema> <doc.xml>\n"
               "  xmlreval cast      <source> <target> <doc.xml|->"
               " [--stream [--chunk-bytes N]]\n"
               "  xmlreval correct   <source> <target> <doc.xml> [-o out]\n"
               "  xmlreval sample    <schema> [--root L] [--seed N]"
               " [--max-elems N]\n"
               "  xmlreval relations <source> <target>\n"
               "  xmlreval export    <schema>\n"
               "  xmlreval compile   <source> <target> --plan-cache-dir DIR"
               " [--reverse]\n"
               "  xmlreval serve-batch <source> <target> <doc.xml...>"
               " [--threads N] [--repeat N]\n"
               "                       [--intra-doc-threads N]"
               " [--metrics-out F]\n"
               "                       [--metrics-interval S]"
               " [--trace-out F]\n"
               "                       [--tail-sample]"
               " [--flight-recorder F]\n"
               "                       [--plan-cache-dir DIR]"
               " [--stream-threshold-bytes N]\n"
               "  xmlreval stats <metrics.json>\n"
               "  xmlreval trace-report <trace.json>\n"
               "  xmlreval analyze-updates <source> <target> <doc.xml>"
               " [--edits N] [--seed N]\n"
               "                       [--safe-percent P] [--metrics-out F]\n"
               "\nschemas ending in .dtd use the DTD front end; everything\n"
               "else is parsed as XML Schema.\n"
               "cast --stream feeds the document (file, or stdin for \"-\")\n"
               "through the incremental push-parser engine in --chunk-bytes\n"
               "pieces (default 1 MiB): memory stays O(depth) regardless of\n"
               "document size and subsumed subtrees are byte-skipped. The\n"
               "DOM source-validity precheck is skipped in this mode.\n"
               "serve-batch fans the documents out over a validation\n"
               "thread pool (--threads, default: hardware concurrency) and\n"
               "casts each from <source> to <target>; --repeat N queues\n"
               "every document N times (throughput runs).\n"
               "--intra-doc-threads N additionally fans EACH large\n"
               "document's cast out over N workers (work-stealing subtree\n"
               "parallelism; 0 = off, the default).\n"
               "--stream-threshold-bytes N routes cast items of at least N\n"
               "bytes through the streaming engine — no DOM on the worker\n"
               "(0 = off, the default).\n"
               "--metrics-out dumps the service metrics snapshot on exit\n"
               "(*.json = JSON, anything else = Prometheus text); SIGUSR1\n"
               "or --metrics-interval S rewrite it while serving. \n"
               "--trace-out enables span tracing and writes Chrome\n"
               "trace-event JSON (open in Perfetto / chrome://tracing).\n"
               "--tail-sample keeps only slow/failed requests' traces\n"
               "(tail-latency exemplars in the metrics dump link to them);\n"
               "--flight-recorder F arms the crash-safe flight recorder:\n"
               "recent spans + counters are dumped to F from fatal signals\n"
               "(SIGSEGV/SIGABRT) and on demand via SIGUSR2.\n"
               "compile precompiles the (source, target) cast — schemas,\n"
               "relations fixpoints, analyzer tables — into a plan artifact\n"
               "under --plan-cache-dir, so later serve-batch runs with the\n"
               "same flag warm-start by mmap instead of recompiling\n"
               "(--reverse also builds the §4.3 reverse automata).\n"
               "stats pretty-prints a JSON metrics dump.\n"
               "trace-report decomposes a --trace-out file per request:\n"
               "queue wait / parse / bind / fixpoint / analyze / traverse.\n"
               "analyze-updates generates --edits random edits (--seed) on\n"
               "<doc.xml> and submits them as one edit stream: the static\n"
               "update-safety analyzer accepts/rejects schema-decidable\n"
               "streams with zero tree work and falls back to incremental\n"
               "revalidation otherwise. --safe-percent P draws 100-P%% of\n"
               "the edit labels from outside the schema (analyzer-opaque).\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool HasSuffix(const std::string& path, const char* suffix) {
  size_t n = std::strlen(suffix);
  return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
}

Result<schema::Schema> LoadSchema(
    const std::string& path,
    const std::shared_ptr<automata::Alphabet>& alphabet) {
  ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  if (HasSuffix(path, ".dtd")) {
    return schema::ParseDtd(text, alphabet);
  }
  return schema::ParseXsd(text, alphabet);
}

Result<xml::Document> LoadDocument(const std::string& path) {
  ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return xml::ParseXml(text);
}

void PrintReport(const char* what, const core::ValidationReport& report) {
  if (report.valid) {
    std::printf("%s: VALID  (visited %llu nodes, skipped %llu subtrees, "
                "%llu DFA steps)\n",
                what, (unsigned long long)report.counters.nodes_visited,
                (unsigned long long)report.counters.subtrees_skipped,
                (unsigned long long)report.counters.dfa_steps);
  } else {
    std::printf("%s: INVALID at %s — %s\n", what,
                report.violation_path.ToString().c_str(),
                report.violation.c_str());
  }
}

int CmdValidate(int argc, char** argv) {
  if (argc != 2) return Usage();
  auto alphabet = std::make_shared<automata::Alphabet>();
  auto schema = LoadSchema(argv[0], alphabet);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 2;
  }
  auto doc = LoadDocument(argv[1]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 2;
  }
  core::FullValidator validator(&*schema);
  core::ValidationReport report = validator.Validate(*doc);
  PrintReport("validate", report);
  return report.valid ? 0 : 1;
}

struct LoadedPair {
  std::shared_ptr<automata::Alphabet> alphabet;
  std::unique_ptr<schema::Schema> source;
  std::unique_ptr<schema::Schema> target;
  std::unique_ptr<core::TypeRelations> relations;
};

Result<LoadedPair> LoadPair(const std::string& source_path,
                            const std::string& target_path) {
  LoadedPair pair;
  pair.alphabet = std::make_shared<automata::Alphabet>();
  ASSIGN_OR_RETURN(schema::Schema source,
                   LoadSchema(source_path, pair.alphabet));
  pair.source = std::make_unique<schema::Schema>(std::move(source));
  ASSIGN_OR_RETURN(schema::Schema target,
                   LoadSchema(target_path, pair.alphabet));
  pair.target = std::make_unique<schema::Schema>(std::move(target));
  ASSIGN_OR_RETURN(core::TypeRelations relations,
                   core::TypeRelations::Compute(pair.source.get(),
                                                pair.target.get()));
  pair.relations =
      std::make_unique<core::TypeRelations>(std::move(relations));
  return pair;
}

// cast --stream: feed the document (file or stdin) through the incremental
// engine chunk by chunk. Never builds a DOM, so a document far larger than
// RAM validates in O(depth) memory; the greppable "stream:" line reports
// the byte accounting (reconciled against ground truth by CI's
// streaming-smoke job).
int RunStreamingCast(const core::TypeRelations& relations,
                     const std::string& doc_path, size_t chunk_bytes) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (doc_path != "-") {
    file.open(doc_path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open '%s'\n", doc_path.c_str());
      return 2;
    }
    in = &file;
  }
  core::StreamingCastSession session(relations);
  std::vector<char> buffer(std::max<size_t>(chunk_bytes, 1));
  while (in->read(buffer.data(), static_cast<std::streamsize>(buffer.size())),
         in->gcount() > 0) {
    Status fed = session.Feed(
        std::string_view(buffer.data(), static_cast<size_t>(in->gcount())));
    if (!fed.ok()) break;  // verdict decided; stop reading
  }
  const core::StreamingReport& report = session.Finish();
  // Three-way exit mirroring the DOM cast path: a malformed or truncated
  // stream is an input error (2), not an "invalid" verdict (1). status()
  // separates the two: kInvalidArgument carries a cast rejection, any
  // other failure is a real error.
  const Status& decided = session.status();
  if (!decided.ok() && decided.code() != StatusCode::kInvalidArgument) {
    std::fprintf(stderr, "error: %s\n", decided.ToString().c_str());
    std::printf("stream: bytes_fed=%llu bytes_skipped=%llu "
                "max_live_frames=%llu peak_carry_bytes=%llu\n",
                (unsigned long long)report.bytes_fed,
                (unsigned long long)report.bytes_skipped,
                (unsigned long long)report.max_live_frames,
                (unsigned long long)report.peak_carry_bytes);
    return 2;
  }
  if (report.valid) {
    std::printf("cast: VALID  (visited %llu nodes, skipped %llu subtrees, "
                "%llu DFA steps)\n",
                (unsigned long long)report.counters.nodes_visited,
                (unsigned long long)report.counters.subtrees_skipped,
                (unsigned long long)report.counters.dfa_steps);
  } else {
    std::string where =
        report.violation_path_known
            ? xml::DeweyPath(report.violation_path).ToString()
            : std::string("?");
    std::printf("cast: INVALID at %s — %s\n", where.c_str(),
                report.violation.c_str());
  }
  std::printf("stream: bytes_fed=%llu bytes_skipped=%llu "
              "max_live_frames=%llu peak_carry_bytes=%llu\n",
              (unsigned long long)report.bytes_fed,
              (unsigned long long)report.bytes_skipped,
              (unsigned long long)report.max_live_frames,
              (unsigned long long)report.peak_carry_bytes);
  return report.valid ? 0 : 1;
}

int CmdCast(int argc, char** argv) {
  bool stream = false;
  size_t chunk_bytes = size_t{1} << 20;
  std::vector<char*> positional;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(argv[i], "--chunk-bytes") == 0 && i + 1 < argc) {
      chunk_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      return Usage();
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 3) return Usage();
  auto pair = LoadPair(positional[0], positional[1]);
  if (!pair.ok()) {
    std::fprintf(stderr, "%s\n", pair.status().ToString().c_str());
    return 2;
  }
  if (stream) {
    return RunStreamingCast(*pair->relations, positional[2], chunk_bytes);
  }
  auto doc = LoadDocument(positional[2]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 2;
  }
  // Establish the precondition before casting.
  core::ValidationReport source_report =
      core::FullValidator(pair->source.get()).Validate(*doc);
  if (!source_report.valid) {
    std::fprintf(stderr,
                 "input is not valid under the SOURCE schema (%s); the "
                 "cast precondition does not hold\n",
                 source_report.violation.c_str());
    return 2;
  }
  core::CastValidator validator(pair->relations.get());
  core::ValidationReport report = validator.Validate(*doc);
  PrintReport("cast", report);
  return report.valid ? 0 : 1;
}

int CmdCorrect(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string out_path;
  if (argc == 5 && std::strcmp(argv[3], "-o") == 0) {
    out_path = argv[4];
  } else if (argc != 3) {
    return Usage();
  }
  auto pair = LoadPair(argv[0], argv[1]);
  if (!pair.ok()) {
    std::fprintf(stderr, "%s\n", pair.status().ToString().c_str());
    return 2;
  }
  auto doc = LoadDocument(argv[2]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 2;
  }
  core::ValidationReport source_report =
      core::FullValidator(pair->source.get()).Validate(*doc);
  if (!source_report.valid) {
    std::fprintf(stderr, "input is not valid under the source schema (%s)\n",
                 source_report.violation.c_str());
    return 2;
  }
  core::DocumentCorrector corrector(pair->relations.get());
  auto report = corrector.Correct(&*doc);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  for (const core::CorrectionStep& step : report->steps) {
    const char* kind = "?";
    switch (step.kind) {
      case core::CorrectionStep::Kind::kRewriteText:
        kind = "rewrite";
        break;
      case core::CorrectionStep::Kind::kInsertElement:
        kind = "insert";
        break;
      case core::CorrectionStep::Kind::kDeleteSubtree:
        kind = "delete";
        break;
    }
    std::printf("  %-8s at %-10s %s\n", kind, step.where.c_str(),
                step.detail.c_str());
  }
  std::printf("%zu repair(s) applied\n", report->steps.size());
  std::string text = xml::Serialize(*doc);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    out << text;
  }
  return 0;
}

int CmdSample(int argc, char** argv) {
  if (argc < 1) return Usage();
  workload::RandomDocOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      options.root_label = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-elems") == 0 && i + 1 < argc) {
      options.max_elements = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }
  auto alphabet = std::make_shared<automata::Alphabet>();
  auto schema = LoadSchema(argv[0], alphabet);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 2;
  }
  auto doc = workload::SampleDocument(*schema, options);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 2;
  }
  std::fputs(xml::Serialize(*doc).c_str(), stdout);
  return 0;
}

// Renders any supported schema (DTD included) as XSD text.
int CmdExport(int argc, char** argv) {
  if (argc != 1) return Usage();
  auto alphabet = std::make_shared<automata::Alphabet>();
  auto schema = LoadSchema(argv[0], alphabet);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 2;
  }
  auto text = schema::WriteXsd(*schema);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 2;
  }
  std::fputs(text->c_str(), stdout);
  return 0;
}

int CmdRelations(int argc, char** argv) {
  if (argc != 2) return Usage();
  auto pair = LoadPair(argv[0], argv[1]);
  if (!pair.ok()) {
    std::fprintf(stderr, "%s\n", pair.status().ToString().c_str());
    return 2;
  }
  const schema::Schema& source = *pair->source;
  const schema::Schema& target = *pair->target;
  std::printf("%zu source types x %zu target types\n", source.num_types(),
              target.num_types());
  for (schema::TypeId s = 0; s < source.num_types(); ++s) {
    for (schema::TypeId t = 0; t < target.num_types(); ++t) {
      bool subsumed = pair->relations->Subsumed(s, t);
      bool disjoint = pair->relations->Disjoint(s, t);
      if (!subsumed && !disjoint) continue;  // print only decisive pairs
      std::printf("  %-24s %s %-24s\n", source.TypeName(s).c_str(),
                  subsumed ? "<=" : "><", target.TypeName(t).c_str());
    }
  }
  std::printf("(\"<=\" subsumed, \"><\" disjoint; unlisted pairs need "
              "traversal)\n");
  return 0;
}

// Reads both schema texts into a RegisterPlanPair spec (format sniffed
// from the extension, keys = the paths).
Result<service::ValidationService::PlanPairSpec> LoadPairSpec(
    const std::string& source_path, const std::string& target_path) {
  service::ValidationService::PlanPairSpec spec;
  spec.source_key = source_path;
  spec.source_format = HasSuffix(source_path, ".dtd")
                           ? service::SchemaFormat::kDtd
                           : service::SchemaFormat::kXsd;
  ASSIGN_OR_RETURN(spec.source_text, ReadFile(source_path));
  spec.target_key = target_path;
  spec.target_format = HasSuffix(target_path, ".dtd")
                           ? service::SchemaFormat::kDtd
                           : service::SchemaFormat::kXsd;
  ASSIGN_OR_RETURN(spec.target_text, ReadFile(target_path));
  return spec;
}

// Precompiles one (source, target) cast plan into the plan cache, so
// serving processes pointed at the same directory warm-start. Idempotent:
// a second run finds the artifact and reports "warm".
int CmdCompile(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string dir;
  bool reverse = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plan-cache-dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--reverse") == 0) {
      reverse = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() != 2 || dir.empty()) return Usage();

  service::ValidationService::Options options;
  options.plan_cache_dir = dir;
  options.cache.relations.build_reverse_automata = reverse;
  service::ValidationService service(options);

  auto spec = LoadPairSpec(positional[0], positional[1]);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 2;
  }
  auto t0 = std::chrono::steady_clock::now();
  auto handles = service.RegisterPlanPair(*spec);
  auto t1 = std::chrono::steady_clock::now();
  if (!handles.ok()) {
    std::fprintf(stderr, "%s\n", handles.status().ToString().c_str());
    return 2;
  }
  double millis =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  service::PlanKey key;
  key.source_format = spec->source_format;
  key.source_text = spec->source_text;
  key.target_format = spec->target_format;
  key.target_text = spec->target_text;
  key.reverse_automata = reverse;
  const std::string path = service.plan_cache()->PlanPath(key);
  service::PlanCache::Stats stats = service.plan_cache()->GetStats();
  std::printf("%s: %s in %.1f ms\n", path.c_str(),
              handles->warm ? "already compiled (warm load verified)"
                            : "compiled and published",
              millis);
  std::printf("plan cache: %llu hit(s), %llu miss(es), %llu corrupt, "
              "%llu save(s)\n",
              (unsigned long long)stats.hits,
              (unsigned long long)stats.misses,
              (unsigned long long)stats.corrupt,
              (unsigned long long)stats.saves);
  return 0;
}

// SIGUSR1 → rewrite the --metrics-out file at the next flusher tick.
// (An atomic flag is all a signal handler may touch; the flusher thread
// does the actual snapshot + file IO.)
std::atomic<bool> g_metrics_flush_requested{false};

extern "C" void OnMetricsFlushSignal(int) {
  g_metrics_flush_requested.store(true, std::memory_order_relaxed);
}

// Dumps the service's metrics snapshot to `path`; *.json gets the JSON
// rendering (the `stats` subcommand's input), anything else Prometheus
// text exposition. Written atomically enough for a scraper: truncate +
// full rewrite.
bool WriteSnapshotFile(const obs::MetricsSnapshot& snapshot,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  out << (HasSuffix(path, ".json") ? snapshot.ToJson()
                                   : snapshot.ToPrometheusText());
  return true;
}

bool WriteMetricsFile(const service::ValidationService& service,
                      const std::string& path) {
  return WriteSnapshotFile(service.metrics().Snapshot(), path);
}

// Batch serving through the src/service/ layer: register both schemas
// once, fan the documents out over the ValidationService thread pool, and
// report per-document verdicts plus the service's cache statistics.
int CmdServeBatch(int argc, char** argv) {
  std::vector<std::string> positional;
  size_t threads = 0;
  size_t intra_doc_threads = 0;
  size_t repeat = 1;
  size_t metrics_interval = 0;  // seconds; 0 = only on signal/exit
  std::string metrics_out;
  std::string trace_out;
  std::string flight_out;
  std::string plan_cache_dir;
  bool tail_sample = false;
  size_t stream_threshold_bytes = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stream-threshold-bytes") == 0 &&
               i + 1 < argc) {
      stream_threshold_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--intra-doc-threads") == 0 &&
               i + 1 < argc) {
      intra_doc_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 &&
               i + 1 < argc) {
      metrics_interval = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--tail-sample") == 0) {
      tail_sample = true;
    } else if (std::strcmp(argv[i], "--flight-recorder") == 0 &&
               i + 1 < argc) {
      flight_out = argv[++i];
    } else if (std::strcmp(argv[i], "--plan-cache-dir") == 0 && i + 1 < argc) {
      plan_cache_dir = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() < 3 || repeat == 0) return Usage();
  if (!trace_out.empty() || tail_sample) obs::SetTraceEnabled(true);
  if (tail_sample) obs::TraceSink::Global().SetTailSampling(true);
  if (!flight_out.empty()) {
    obs::FlightRecorder::Global().Enable();
    obs::InstallCrashHandlers(flight_out.c_str());
  }

  service::ValidationService::Options options;
  options.batch_threads = threads;
  options.intra_doc_threads = intra_doc_threads;
  options.plan_cache_dir = plan_cache_dir;
  options.stream_threshold_bytes = stream_threshold_bytes;
  service::ValidationService service(options);
  if (!flight_out.empty()) {
    // The crash dump carries the service's headline counters so a
    // post-mortem shows how far the batch got. The registry hands back
    // stable pointers; the recorder reads them with plain loads (atomic
    // underneath, so async-signal-safe).
    auto& recorder = obs::FlightRecorder::Global();
    obs::MetricsRegistry& metrics = service.metrics();
    recorder.RegisterCounter("xmlreval_requests_total",
                             metrics.counter("xmlreval_requests_total"));
    recorder.RegisterCounter(
        "xmlreval_verdicts_total{verdict=valid}",
        metrics.counter("xmlreval_verdicts_total", {{"verdict", "valid"}}));
    recorder.RegisterCounter(
        "xmlreval_verdicts_total{verdict=invalid}",
        metrics.counter("xmlreval_verdicts_total", {{"verdict", "invalid"}}));
    recorder.RegisterCounter(
        "xmlreval_verdicts_total{verdict=error}",
        metrics.counter("xmlreval_verdicts_total", {{"verdict", "error"}}));
    recorder.RegisterCounter("xmlreval_nodes_visited_total",
                             metrics.counter("xmlreval_nodes_visited_total"));
  }

  // Periodic / signal-driven metrics exposition while the batch runs.
  std::atomic<bool> flusher_done{false};
  std::thread flusher;
  if (!metrics_out.empty()) {
    std::signal(SIGUSR1, OnMetricsFlushSignal);
    flusher = std::thread([&] {
      auto last = std::chrono::steady_clock::now();
      while (!flusher_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        auto now = std::chrono::steady_clock::now();
        bool due = metrics_interval > 0 &&
                   now - last >= std::chrono::seconds(metrics_interval);
        if (g_metrics_flush_requested.exchange(false,
                                               std::memory_order_relaxed) ||
            due) {
          WriteMetricsFile(service, metrics_out);
          last = now;
        }
      }
    });
  }

  service::SchemaHandle handles[2];
  if (!plan_cache_dir.empty()) {
    // Warm-start path: one RegisterPlanPair loads schemas + relations +
    // analyzer from the mmap'd plan artifact (compiling and publishing it
    // on a cold miss).
    auto spec = LoadPairSpec(positional[0], positional[1]);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    auto pair = service.RegisterPlanPair(*spec);
    if (!pair.ok()) {
      std::fprintf(stderr, "%s\n", pair.status().ToString().c_str());
      return 2;
    }
    handles[0] = pair->source;
    handles[1] = pair->target;
    std::fprintf(stderr, "plan cache: %s\n",
                 pair->warm ? "warm start (artifact mapped)"
                            : "cold start (compiled and published)");
  } else {
    for (int i = 0; i < 2; ++i) {
      auto text = ReadFile(positional[i]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 2;
      }
      auto handle =
          HasSuffix(positional[i], ".dtd")
              ? service.registry().RegisterDtd(positional[i], *text)
              : service.registry().RegisterXsd(positional[i], *text);
      if (!handle.ok()) {
        std::fprintf(stderr, "%s\n", handle.status().ToString().c_str());
        return 2;
      }
      handles[i] = *handle;
    }
  }

  std::vector<service::ValidationService::BatchItem> items;
  size_t doc_count = positional.size() - 2;
  for (size_t r = 0; r < repeat; ++r) {
    for (size_t d = 2; d < positional.size(); ++d) {
      auto text = ReadFile(positional[d]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 2;
      }
      service::ValidationService::BatchItem item;
      item.op = service::ValidationService::BatchOp::kCast;
      item.source = handles[0];
      item.target = handles[1];
      item.xml_text = std::move(*text);
      items.push_back(std::move(item));
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  std::vector<service::ValidationService::BatchItemResult> results =
      service.SubmitBatch(std::move(items)).get();
  auto t1 = std::chrono::steady_clock::now();

  // Per-document verdicts (first round only; repeats are identical work).
  int exit_code = 0;
  for (size_t d = 0; d < doc_count; ++d) {
    const auto& result = results[d];
    if (!result.status.ok()) {
      std::printf("%s: ERROR — %s\n", positional[2 + d].c_str(),
                  result.status.ToString().c_str());
      exit_code = 2;
    } else if (result.report.valid) {
      std::printf("%s: VALID\n", positional[2 + d].c_str());
    } else {
      std::printf("%s: INVALID at %s — %s\n", positional[2 + d].c_str(),
                  result.report.violation_path.ToString().c_str(),
                  result.report.violation.c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }

  double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  service::RelationsCache::Stats cache = service.cache().stats();
  service::ValidationService::Counters counters = service.counters();
  std::printf(
      "\n%llu documents in %.3f ms (%.0f docs/s) — %llu valid, "
      "%llu invalid, %llu errors\n"
      "relations cache: %llu hits, %llu misses, %llu fixpoint(s) computed "
      "in %llu us\n",
      (unsigned long long)counters.batch_items, seconds * 1e3,
      seconds > 0 ? counters.batch_items / seconds : 0.0,
      (unsigned long long)counters.valid,
      (unsigned long long)counters.invalid,
      (unsigned long long)counters.errors, (unsigned long long)cache.hits,
      (unsigned long long)cache.misses,
      (unsigned long long)cache.computations,
      (unsigned long long)cache.compute_micros);
  if (flusher.joinable()) {
    flusher_done.store(true, std::memory_order_relaxed);
    flusher.join();
  }
  // One snapshot serves both the stats print and the final metrics file:
  // snapshots consume the queue-depth high-water gauges (re-armed to live
  // depth), so a separate peek here would zero them in the dump.
  obs::MetricsSnapshot snapshot = service.metrics().Snapshot();
  const obs::HistogramSnapshot* wait =
      snapshot.FindHistogram("xmlreval_batch_queue_wait_us");
  const obs::HistogramSnapshot* svc =
      snapshot.FindHistogram("xmlreval_batch_service_us");
  if (wait != nullptr && svc != nullptr && wait->count > 0) {
    std::printf(
        "batch latency (us): queue wait p50/p99 = %.0f/%.0f, "
        "service p50/p99 = %.0f/%.0f\n",
        wait->Quantile(0.50), wait->Quantile(0.99), svc->Quantile(0.50),
        svc->Quantile(0.99));
  }
  if (!metrics_out.empty() && !WriteSnapshotFile(snapshot, metrics_out)) {
    exit_code = 2;
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_out.c_str());
      exit_code = 2;
    } else {
      out << obs::TraceSink::Global().ExportChromeJson();
    }
  }
  return exit_code;
}

// Static update-safety analysis over a generated edit stream. The script
// is generated against a scratch parse of the document with the plain
// editor, then replayed through ValidationService::SubmitEditStream on a
// fresh parse — node ids are deterministic per parse, so the recorded
// script resolves identically.
int CmdAnalyzeUpdates(int argc, char** argv) {
  std::vector<std::string> positional;
  workload::UpdateWorkloadOptions workload_options;
  workload_options.edit_count = 16;
  int safe_percent = 100;
  std::string metrics_out;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--edits") == 0 && i + 1 < argc) {
      workload_options.edit_count = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      workload_options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--safe-percent") == 0 && i + 1 < argc) {
      safe_percent = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() != 3 || safe_percent < 0 || safe_percent > 100) {
    return Usage();
  }

  service::ValidationService service;
  service::SchemaHandle handles[2];
  for (int i = 0; i < 2; ++i) {
    auto text = ReadFile(positional[i]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 2;
    }
    auto handle = HasSuffix(positional[i], ".dtd")
                      ? service.registry().RegisterDtd(positional[i], *text)
                      : service.registry().RegisterXsd(positional[i], *text);
    if (!handle.ok()) {
      std::fprintf(stderr, "%s\n", handle.status().ToString().c_str());
      return 2;
    }
    handles[i] = *handle;
  }
  auto doc_text = ReadFile(positional[2]);
  if (!doc_text.ok()) {
    std::fprintf(stderr, "%s\n", doc_text.status().ToString().c_str());
    return 2;
  }

  // Generate the script against a scratch parse. With --safe-percent < 100
  // the complementary fraction of rename/insert labels comes from outside
  // the registered schemas, which the analyzer cannot decide statically.
  auto scratch = xml::ParseXml(*doc_text);
  if (!scratch.ok()) {
    std::fprintf(stderr, "%s\n", scratch.status().ToString().c_str());
    return 2;
  }
  if (safe_percent < 100) {
    std::vector<std::string> doc_labels;
    {
      std::unordered_set<std::string> seen;
      std::vector<xml::NodeId> stack{scratch->root()};
      while (!stack.empty()) {
        xml::NodeId node = stack.back();
        stack.pop_back();
        if (scratch->IsElement(node)) {
          std::string label(scratch->label(node));
          if (seen.insert(label).second) {
            doc_labels.push_back(std::move(label));
          }
          for (xml::NodeId c = scratch->first_child(node);
               c != xml::kInvalidNode; c = scratch->next_sibling(c)) {
            stack.push_back(c);
          }
        }
      }
    }
    workload_options.safe_percent = safe_percent;
    workload_options.rename_safe_labels = doc_labels;
    workload_options.insert_safe_labels = doc_labels;
    workload_options.rename_unsafe_labels = {"__wild1", "__wild2"};
    workload_options.insert_unsafe_labels = {"__wild1", "__wild2"};
  }
  std::vector<xml::EditOp> script;
  xml::DocumentEditor scratch_editor(&*scratch);
  auto generated = workload::ApplyRandomUpdates(&*scratch, &scratch_editor,
                                                workload_options, &script);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 2;
  }

  // Replay through the service on a fresh parse.
  auto doc = xml::ParseXml(*doc_text);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 2;
  }
  Status bind = service.BindDocument(&*doc);
  if (!bind.ok()) {
    std::fprintf(stderr, "%s\n", bind.ToString().c_str());
    return 2;
  }
  auto result =
      service.SubmitEditStream(handles[0], handles[1], &*doc, script);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }

  const analysis::StreamVerdict& stream = result->stream;
  std::printf(
      "%zu edit(s): %zu safe, %zu fatal, %zu unknown "
      "(%zu decided-but-entangled)\n",
      script.size(), stream.safe_ops, stream.fatal_ops, stream.unknown_ops,
      stream.downgraded_ops);
  if (result->short_circuited) {
    std::printf("stream verdict: %s — short-circuited, zero tree work (%s)\n",
                analysis::SafetyName(stream.verdict), stream.reason);
  } else {
    std::printf("stream verdict: unknown — fell back to incremental "
                "revalidation (%s)\n",
                stream.reason);
  }
  PrintReport("analyze-updates", result->report);
  if (!metrics_out.empty() && !WriteMetricsFile(service, metrics_out)) {
    return 2;
  }
  return result->report.valid ? 0 : 1;
}

// Pretty-prints a JSON metrics dump produced by --metrics-out. Reads the
// same format the service writes; useful for eyeballing a dump without
// Prometheus tooling.
int CmdStats(int argc, char** argv) {
  if (argc != 1) return Usage();
  auto text = ReadFile(argv[0]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 2;
  }
  auto parsed = json::Parse(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 parsed.status().ToString().c_str());
    return 2;
  }
  auto label_suffix = [](const json::Value& entry) {
    std::string out;
    const json::Value* labels = entry.Find("labels");
    if (labels == nullptr || !labels->is_object()) return out;
    for (const auto& [k, v] : labels->AsObject()) {
      out += out.empty() ? '{' : ',';
      out += k + "=" + (v.is_string() ? v.AsString() : std::string("?"));
    }
    if (!out.empty()) out += '}';
    return out;
  };
  auto number = [](const json::Value& entry, const char* key) {
    const json::Value* v = entry.Find(key);
    return v != nullptr && v->is_number() ? v->AsNumber() : 0.0;
  };

  const json::Value* counters = parsed->Find("counters");
  if (counters != nullptr && counters->is_array() &&
      !counters->AsArray().empty()) {
    std::printf("counters:\n");
    for (const json::Value& c : counters->AsArray()) {
      const json::Value* name = c.Find("name");
      if (name == nullptr || !name->is_string()) continue;
      std::printf("  %-58s %12.0f\n",
                  (name->AsString() + label_suffix(c)).c_str(),
                  number(c, "value"));
    }
  }
  const json::Value* gauges = parsed->Find("gauges");
  if (gauges != nullptr && gauges->is_array() && !gauges->AsArray().empty()) {
    std::printf("gauges:\n");
    for (const json::Value& g : gauges->AsArray()) {
      const json::Value* name = g.Find("name");
      if (name == nullptr || !name->is_string()) continue;
      std::printf("  %-58s %12.0f\n",
                  (name->AsString() + label_suffix(g)).c_str(),
                  number(g, "value"));
    }
  }
  const json::Value* histograms = parsed->Find("histograms");
  if (histograms != nullptr && histograms->is_array() &&
      !histograms->AsArray().empty()) {
    std::printf("histograms:%44s%10s%10s%10s%10s%10s\n", "count", "mean",
                "p50", "p90", "p99", "max");
    for (const json::Value& h : histograms->AsArray()) {
      const json::Value* name = h.Find("name");
      if (name == nullptr || !name->is_string()) continue;
      std::printf("  %-52s%10.0f%10.1f%10.1f%10.1f%10.1f%10.0f\n",
                  (name->AsString() + label_suffix(h)).c_str(),
                  number(h, "count"), number(h, "mean"), number(h, "p50"),
                  number(h, "p90"), number(h, "p99"), number(h, "max"));
    }
  }
  return 0;
}

// Decomposes a --trace-out Chrome trace into per-request latency. Spans
// carry args.trace_id (stamped by the service's RequestScope), so all of
// one request's work — across threads, including stolen cast.task slices —
// folds back onto one row. Phases follow the batch pipeline: queue wait,
// parse, bind, relations fixpoint, update analysis, cast traversal (wall
// clock of cast.traverse; cast.task CPU is reported separately because
// parallel slices overlap). Aggregates group by the (src, tgt) schema-pair
// args on svc.cast spans.
int CmdTraceReport(int argc, char** argv) {
  if (argc != 1) return Usage();
  auto text = ReadFile(argv[0]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 2;
  }
  auto parsed = json::Parse(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 parsed.status().ToString().c_str());
    return 2;
  }
  const json::Value* events = parsed->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: no traceEvents array\n", argv[0]);
    return 2;
  }

  struct RequestRow {
    uint64_t queue_us = 0;      // queue.wait
    uint64_t parse_us = 0;      // item.parse
    uint64_t bind_us = 0;       // item.bind
    uint64_t fixpoint_us = 0;   // relations.fixpoint
    uint64_t analyze_us = 0;    // analysis.compile / analysis.classify
    uint64_t traverse_us = 0;   // cast.traverse wall clock
    uint64_t task_cpu_us = 0;   // cast.task, summed across workers
    uint64_t service_us = 0;    // widest request-level span (post-dequeue)
    uint64_t total_us = 0;      // queue wait + service
    uint64_t tasks = 0;
    std::string pair;           // "src->tgt" schema handles (svc.cast args)
  };
  std::map<uint64_t, RequestRow> rows;  // keyed by trace_id, stable order

  auto arg_of = [](const json::Value& e, const char* key) -> uint64_t {
    const json::Value* value = nullptr;
    const json::Value* arguments = e.Find("args");
    if (arguments != nullptr) value = arguments->Find(key);
    return value != nullptr && value->is_number()
               ? static_cast<uint64_t>(value->AsNumber())
               : 0;
  };

  for (const json::Value& e : events->AsArray()) {
    const json::Value* ph = e.Find("ph");
    const json::Value* name = e.Find("name");
    const json::Value* dur = e.Find("dur");
    if (ph == nullptr || !ph->is_string() || ph->AsString() != "X" ||
        name == nullptr || !name->is_string() || dur == nullptr ||
        !dur->is_number()) {
      continue;  // flow events and metadata carry no duration
    }
    uint64_t trace_id = arg_of(e, "trace_id");
    if (trace_id == 0) continue;  // span outside any request scope
    RequestRow& row = rows[trace_id];
    const std::string& span = name->AsString();
    const auto micros = static_cast<uint64_t>(dur->AsNumber());
    if (span == "queue.wait") {
      row.queue_us += micros;
    } else if (span == "item.parse") {
      row.parse_us += micros;
    } else if (span == "item.bind") {
      row.bind_us += micros;
    } else if (span == "relations.fixpoint") {
      row.fixpoint_us += micros;
    } else if (span == "analysis.compile" || span == "analysis.classify") {
      row.analyze_us += micros;
    } else if (span == "cast.traverse") {
      row.traverse_us += micros;
    } else if (span == "cast.task") {
      row.task_cpu_us += micros;
      ++row.tasks;
    }
    // The request-level span (batch.item for batch work, the svc.* entry
    // span for direct calls) starts at dequeue, so queue wait is added on
    // top afterwards to get end-to-end latency.
    if (micros > row.service_us &&
        (span == "batch.item" || span.rfind("svc.", 0) == 0)) {
      row.service_us = micros;
    }
    if (span == "svc.cast") {
      uint64_t src = arg_of(e, "src");
      uint64_t tgt = arg_of(e, "tgt");
      if (row.pair.empty() && (src != 0 || tgt != 0)) {
        row.pair = std::to_string(src) + "->" + std::to_string(tgt);
      }
    }
  }
  if (rows.empty()) {
    std::printf("no request-scoped spans in %s (was tracing enabled?)\n",
                argv[0]);
    return 0;
  }

  // End-to-end = queue wait + the request-level span. A request with no
  // request-level span (tracing caught only fragments) still reports:
  // fall back to the phase sum so the row is comparable.
  for (auto& [id, row] : rows) {
    uint64_t phase_sum = row.queue_us + row.parse_us + row.bind_us +
                         row.fixpoint_us + row.analyze_us + row.traverse_us;
    row.total_us =
        row.service_us > 0 ? row.queue_us + row.service_us : phase_sum;
  }

  std::printf("%zu request(s) in %s\n\n", rows.size(), argv[0]);
  std::printf("%-18s %8s %8s %8s %8s %8s %8s %8s %9s %6s  %s\n", "trace_id",
              "total", "queue", "parse", "bind", "fixpnt", "analyze",
              "travrs", "task_cpu", "tasks", "pair");
  std::vector<const std::pair<const uint64_t, RequestRow>*> order;
  order.reserve(rows.size());
  for (const auto& entry : rows) order.push_back(&entry);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    return a->second.total_us > b->second.total_us;
  });
  struct PairAgg {
    uint64_t count = 0;
    uint64_t total_us = 0;
    uint64_t queue_us = 0;
    uint64_t traverse_us = 0;
  };
  std::map<std::string, PairAgg> pairs;
  constexpr size_t kMaxRows = 20;  // slowest first; the tail is noise
  for (size_t i = 0; i < order.size(); ++i) {
    const auto& [id, row] = *order[i];
    if (i < kMaxRows) {
      std::printf("%-18llu %8llu %8llu %8llu %8llu %8llu %8llu %8llu "
                  "%9llu %6llu  %s\n",
                  (unsigned long long)id, (unsigned long long)row.total_us,
                  (unsigned long long)row.queue_us,
                  (unsigned long long)row.parse_us,
                  (unsigned long long)row.bind_us,
                  (unsigned long long)row.fixpoint_us,
                  (unsigned long long)row.analyze_us,
                  (unsigned long long)row.traverse_us,
                  (unsigned long long)row.task_cpu_us,
                  (unsigned long long)row.tasks, row.pair.c_str());
    }
    PairAgg& agg = pairs[row.pair.empty() ? "(direct)" : row.pair];
    ++agg.count;
    agg.total_us += row.total_us;
    agg.queue_us += row.queue_us;
    agg.traverse_us += row.traverse_us;
  }
  if (order.size() > kMaxRows) {
    std::printf("... %zu more (slowest %zu shown)\n", order.size() - kMaxRows,
                kMaxRows);
  }
  std::printf("\nper schema pair (means, us):\n");
  std::printf("  %-20s %8s %10s %10s %10s\n", "pair", "count", "total",
              "queue", "traverse");
  for (const auto& [pair, agg] : pairs) {
    std::printf("  %-20s %8llu %10.1f %10.1f %10.1f\n", pair.c_str(),
                (unsigned long long)agg.count,
                double(agg.total_us) / double(agg.count),
                double(agg.queue_us) / double(agg.count),
                double(agg.traverse_us) / double(agg.count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* command = argv[1];
  if (std::strcmp(command, "validate") == 0) {
    return CmdValidate(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "cast") == 0) return CmdCast(argc - 2, argv + 2);
  if (std::strcmp(command, "correct") == 0) {
    return CmdCorrect(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "sample") == 0) {
    return CmdSample(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "relations") == 0) {
    return CmdRelations(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "export") == 0) {
    return CmdExport(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "compile") == 0) {
    return CmdCompile(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "serve-batch") == 0) {
    return CmdServeBatch(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "analyze-updates") == 0) {
    return CmdAnalyzeUpdates(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "stats") == 0) return CmdStats(argc - 2, argv + 2);
  if (std::strcmp(command, "trace-report") == 0) {
    return CmdTraceReport(argc - 2, argv + 2);
  }
  return Usage();  // unknown subcommand: usage message, exit 2
}
