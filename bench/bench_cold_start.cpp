// Cold vs. warm start: time-to-first-validation with the plan cache.
//
// A short-lived process pays parse + Glushkov + subset construction +
// R_sub/R_nondis fixpoints + analyzer compilation before it can serve its
// first cast. The plan cache amortizes all of it into one artifact that
// later processes mmap. This bench measures the full time-to-first-
// validation — construct a ValidationService, register the Experiment 2
// pair, cast one document — three ways:
//
//   no_cache  plan cache disabled (the pre-PR baseline)
//   cold      empty cache dir: compile + publish the artifact
//   warm      populated cache dir: mmap + adopt, zero compilation
//
// Emits BENCH_cold_start.json; CI's cold-start-smoke job gates on
// warm_speedup (cold_ns / warm_ns) >= 5.

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "service/validation_service.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"

namespace {

using namespace xmlreval;
using Clock = std::chrono::steady_clock;

service::ValidationService::PlanPairSpec Spec() {
  service::ValidationService::PlanPairSpec spec;
  spec.source_key = "source";
  spec.source_format = service::SchemaFormat::kXsd;
  spec.source_text = workload::kRelaxedQuantityXsd;
  spec.target_key = "target";
  spec.target_format = service::SchemaFormat::kXsd;
  spec.target_text = workload::kTargetXsd;
  return spec;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/xmlreval_plan_bench_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::abort();
  }
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = readdir(d)) {
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      unlink((dir + "/" + entry->d_name).c_str());
    }
    closedir(d);
  }
  rmdir(dir.c_str());
}

// One complete time-to-first-validation: service up, pair registered
// (through the plan cache when `dir` is non-empty), one document cast.
// Returns elapsed ns; asserts the run went down the expected path.
uint64_t TimeToFirstValidation(const std::string& dir, bool expect_warm,
                               const xml::Document& doc,
                               service::PlanCache::Stats* stats_out) {
  auto start = Clock::now();
  service::ValidationService::Options options;
  options.plan_cache_dir = dir;
  service::ValidationService svc(options);
  auto handles = svc.RegisterPlanPair(Spec());
  if (!handles.ok()) {
    std::fprintf(stderr, "RegisterPlanPair: %s\n",
                 handles.status().ToString().c_str());
    std::abort();
  }
  if (!dir.empty() && handles->warm != expect_warm) {
    std::fprintf(stderr, "expected %s start, got %s\n",
                 expect_warm ? "warm" : "cold",
                 handles->warm ? "warm" : "cold");
    std::abort();
  }
  auto report = svc.Cast(handles->source, handles->target, doc);
  if (!report.ok() || !report->valid) {
    std::fprintf(stderr, "first cast failed\n");
    std::abort();
  }
  auto stop = Clock::now();
  if (stats_out != nullptr && svc.plan_cache() != nullptr) {
    *stats_out = svc.plan_cache()->GetStats();
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

double MedianNs(std::vector<uint64_t> samples) {
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return double(samples[samples.size() / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ConsumeForceFlag(&argc, argv);
  constexpr int kReps = 15;

  workload::PoGeneratorOptions doc_options;
  doc_options.item_count = 50;
  xml::Document doc = workload::GeneratePurchaseOrder(doc_options);

  // Baseline: no plan cache at all.
  std::vector<uint64_t> no_cache;
  for (int i = 0; i < kReps; ++i) {
    no_cache.push_back(TimeToFirstValidation("", false, doc, nullptr));
  }

  // Cold: every rep compiles into a FRESH empty dir (includes the save).
  std::vector<uint64_t> cold;
  for (int i = 0; i < kReps; ++i) {
    std::string dir = MakeTempDir();
    cold.push_back(TimeToFirstValidation(dir, false, doc, nullptr));
    RemoveDirRecursive(dir);
  }

  // Warm: one dir precompiled once, then every rep mmaps the artifact.
  std::string warm_dir = MakeTempDir();
  (void)TimeToFirstValidation(warm_dir, false, doc, nullptr);  // populate
  std::vector<uint64_t> warm;
  service::PlanCache::Stats warm_stats;
  for (int i = 0; i < kReps; ++i) {
    warm.push_back(TimeToFirstValidation(warm_dir, true, doc, &warm_stats));
  }

  // Size of the published artifact (one plan file in the warm dir).
  double plan_bytes = 0;
  if (DIR* d = opendir(warm_dir.c_str())) {
    while (dirent* entry = readdir(d)) {
      std::string name = entry->d_name;
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".xrp") == 0) {
        struct stat st;
        if (stat((warm_dir + "/" + name).c_str(), &st) == 0) {
          plan_bytes = double(st.st_size);
        }
      }
    }
    closedir(d);
  }
  RemoveDirRecursive(warm_dir);

  const double no_cache_ns = MedianNs(no_cache);
  const double cold_ns = MedianNs(cold);
  const double warm_ns = MedianNs(warm);
  const double warm_speedup = warm_ns > 0 ? cold_ns / warm_ns : 0;

  std::printf("Cold start: time-to-first-validation, Experiment 2 pair\n");
  std::printf("%-24s %12.1f us\n", "no cache", no_cache_ns / 1e3);
  std::printf("%-24s %12.1f us\n", "cold (compile+publish)", cold_ns / 1e3);
  std::printf("%-24s %12.1f us\n", "warm (mmap)", warm_ns / 1e3);
  std::printf("%-24s %12.2fx\n", "warm speedup vs cold", warm_speedup);
  std::printf("%-24s %12.0f bytes\n", "plan artifact", plan_bytes);

  bench::WriteBenchJson(
      "BENCH_cold_start.json", "bench_cold_start",
      {{"hardware_concurrency", double(std::thread::hardware_concurrency())},
       {"no_cache_ns", no_cache_ns},
       {"cold_ns", cold_ns},
       {"warm_ns", warm_ns},
       {"warm_speedup", warm_speedup},
       {"plan_bytes", plan_bytes},
       // Per warm rep the cache records exactly one hit and no
       // miss/corrupt/save; CI reconciles these against the metrics dump.
       {"warm_hits", double(warm_stats.hits)},
       {"warm_misses", double(warm_stats.misses)},
       {"warm_corrupt", double(warm_stats.corrupt)}});
  std::printf("\nwrote BENCH_cold_start.json\n");
  return 0;
}
