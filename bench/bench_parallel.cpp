// Parallel intra-document cast validation: 1→N thread scaling curve.
//
// The Experiment 2 regime (relaxed-quantity source cast to the strict
// Figure 2 target — root pair NOT subsumed, so every item subtree is
// traversed) over the Table 2 item-count grid, timed three ways:
//
//   * serial      — CastValidator, the baseline every speedup is against
//   * par_tK      — ParallelCastValidator on a K-worker executor
//   * thresh_T    — spawn-threshold ablation at 4 workers, 1000 items
//
// Medians of repeated runs; documents are pre-parsed and BOUND (the
// symbol fast path) so the timing isolates the traversal.
//
// The committed BENCH_parallel.json records hardware_concurrency: scaling
// numbers are only meaningful relative to the cores the run actually had
// (CI containers are often 1-2 cores; par_t1-within-10%-of-serial is the
// machine-independent assertion, checked by the perf-smoke job).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <cstring>
#include <fstream>

#include "bench/bench_util.h"
#include "common/executor.h"
#include "core/cast_validator.h"
#include "core/parallel_cast_validator.h"
#include "obs/trace.h"
#include "workload/po_generator.h"
#include "xml/tree.h"

namespace {

using namespace xmlreval;

constexpr size_t kWarmups = 3;
constexpr size_t kRuns = 9;  // odd: the median is a real sample

template <typename F>
double MedianNs(F&& run) {
  for (size_t i = 0; i < kWarmups; ++i) run();
  std::vector<double> samples;
  samples.reserve(kRuns);
  for (size_t i = 0; i < kRuns; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    run();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  std::nth_element(samples.begin(), samples.begin() + kRuns / 2,
                   samples.end());
  return samples[kRuns / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bench::ConsumeForceFlag(&argc, argv);
  // --trace-out F: after the timed grid, run ONE traced 4-thread
  // validation and write its Chrome trace-event JSON to F. Kept out of
  // the timed loops so tracing overhead never touches the numbers; the
  // CI obs-smoke job checks every cast.task span in it is flow-linked to
  // its spawner.
  std::string trace_out;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::CastValidator serial(pair.relations.get());

  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware < 2) {
    std::fprintf(stderr,
                 "********************************************************\n"
                 "* WARNING: hardware_concurrency=%u — this machine has  *\n"
                 "* no real parallelism. Every speedup below is noise    *\n"
                 "* around 1.0x; do NOT quote these scaling numbers.     *\n"
                 "* Run on a multicore machine (CI: perf-smoke-multicore)*\n"
                 "* for meaningful curves.                               *\n"
                 "********************************************************\n",
                 hardware);
  }
  std::printf("parallel cast scaling (hardware_concurrency=%u)\n\n",
              hardware);
  std::printf("%-8s %-14s", "# items", "serial (us)");
  constexpr size_t kThreadGrid[] = {1, 2, 4, 8};
  for (size_t threads : kThreadGrid) {
    std::printf(" t=%zu (us)   x%-6s", threads, "");
  }
  std::printf("\n");

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("hardware_concurrency", double(hardware));

  for (size_t items : bench::kItemGrid) {
    workload::PoGeneratorOptions options;
    options.item_count = items;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    if (!doc.Bind(pair.alphabet).ok()) {
      std::fprintf(stderr, "bind failed\n");
      return 1;
    }
    const std::string tag = "_items_" + std::to_string(items);

    double serial_ns = MedianNs([&] {
      core::ValidationReport report = serial.Validate(doc);
      if (!report.valid) {
        std::fprintf(stderr, "unexpected invalid document\n");
        std::exit(1);
      }
    });
    metrics.emplace_back("serial_ns" + tag, serial_ns);
    std::printf("%-8zu %-14.1f", items, serial_ns / 1000.0);

    for (size_t threads : kThreadGrid) {
      common::Executor executor(
          common::Executor::Options{.threads = threads});
      core::ParallelCastValidator parallel(pair.relations.get(), &executor);
      double par_ns = MedianNs([&] {
        core::ValidationReport report = parallel.Validate(doc);
        if (!report.valid) {
          std::fprintf(stderr, "unexpected invalid document\n");
          std::exit(1);
        }
      });
      double speedup = serial_ns / par_ns;
      metrics.emplace_back("par_t" + std::to_string(threads) + "_ns" + tag,
                           par_ns);
      metrics.emplace_back(
          "speedup_t" + std::to_string(threads) + tag, speedup);
      std::printf(" %-10.1f x%-6.2f", par_ns / 1000.0, speedup);
    }
    std::printf("\n");
  }

  // Spawn-threshold ablation: 4 workers, the 1000-item document.
  // Threshold 0 is the adaptive default — calibrated at first use from a
  // timed serial prefix walk; the row records the value it settled on.
  std::printf("\nspawn-threshold ablation (t=4, 1000 items)\n");
  {
    workload::PoGeneratorOptions options;
    options.item_count = 1000;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    if (!doc.Bind(pair.alphabet).ok()) return 1;
    metrics.emplace_back(
        "bytes_per_node",
        double(doc.MemoryUsage().total()) / double(doc.NodeCount()));
    for (size_t threshold : {size_t{0}, size_t{16}, size_t{64}, size_t{256}}) {
      common::Executor executor(common::Executor::Options{.threads = 4});
      core::ParallelCastValidator::Options parallel_options;
      parallel_options.spawn_threshold = threshold;
      core::ParallelCastValidator parallel(pair.relations.get(), &executor,
                                           parallel_options);
      core::ParallelCastValidator::RunStats stats;
      double ns = MedianNs([&] { (void)parallel.Validate(doc, &stats); });
      const std::string key =
          threshold == 0 ? std::string("adaptive")
                         : std::to_string(threshold);
      metrics.emplace_back("thresh_" + key + "_ns_items_1000", ns);
      if (threshold == 0) {
        metrics.emplace_back("thresh_adaptive_calibrated",
                             double(stats.spawn_threshold));
        std::printf("  adaptive (calibrated %zu) %.1f us\n",
                    stats.spawn_threshold, ns / 1000.0);
      } else {
        std::printf("  threshold %-4zu %.1f us\n", threshold, ns / 1000.0);
      }
    }
  }

  if (!trace_out.empty()) {
#ifndef XMLREVAL_OBS_DISABLED
    workload::PoGeneratorOptions options;
    options.item_count = 1000;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    if (!doc.Bind(pair.alphabet).ok()) return 1;
    common::Executor executor(common::Executor::Options{.threads = 4});
    // Force eager donation so the traced run actually fans out (the
    // adaptive threshold can swallow a 1000-item doc whole on a fast
    // machine, leaving a single cast.task and nothing to flow-link).
    core::ParallelCastValidator::Options parallel_options;
    parallel_options.spawn_threshold = 64;
    core::ParallelCastValidator parallel(pair.relations.get(), &executor,
                                         parallel_options);
    obs::TraceSink::Global().Clear();
    obs::SetTraceEnabled(true);
    core::ValidationReport report = parallel.Validate(doc);
    obs::SetTraceEnabled(false);
    if (!report.valid) return 1;
    std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_out.c_str());
      return 1;
    }
    out << obs::TraceSink::Global().ExportChromeJson();
    std::printf("wrote %s (traced t=4 run, 1000 items)\n",
                trace_out.c_str());
#else
    std::fprintf(stderr,
                 "--trace-out ignored: XMLREVAL_OBS_DISABLED build\n");
#endif
  }

  bench::WriteBenchJson("BENCH_parallel.json", "parallel", metrics);
  std::printf("\nwrote BENCH_parallel.json\n");
  return 0;
}
