// Figure 3b — Experiment 2: validation time vs. item count when casting
// from Figure 2 with quantity maxExclusive=200 to Figure 2 with
// maxExclusive=100.
//
// Paper's claim: both validators are linear in the item count (every
// quantity value must be re-checked against the tighter facet), but the
// schema-cast validator is ~30% faster because it skips the productName /
// USPrice / shipDate subtrees and the address blocks.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"
#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "workload/po_generator.h"

namespace {

using namespace xmlreval;

xml::Document MakeDoc(size_t items) {
  workload::PoGeneratorOptions options;
  options.item_count = items;
  options.quantity_max = 99;  // valid under both facets
  return workload::GeneratePurchaseOrder(options);
}

void BM_Fig3b_SchemaCast(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::CastValidator validator(pair.relations.get());
  xml::Document doc = MakeDoc(state.range(0));
  (void)doc.Bind(pair.alphabet);  // symbol path: no Find per node
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

void BM_Fig3b_Baseline(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::FullValidator validator(pair.target.get());
  xml::Document doc = MakeDoc(state.range(0));
  (void)doc.Bind(pair.alphabet);  // symbol path: no Find per node
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

void ItemGrid(benchmark::internal::Benchmark* b) {
  for (size_t items : bench::kItemGrid) b->Arg(static_cast<long>(items));
}

BENCHMARK(BM_Fig3b_SchemaCast)->Apply(ItemGrid);
BENCHMARK(BM_Fig3b_Baseline)->Apply(ItemGrid);

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("fig3b")
