// Table 3 — "Number of nodes traversed during validation in Experiment 2."
//
// Counts — not times — so this binary prints the table directly next to
// the paper's numbers. Absolute counts differ from the paper's (their DOM
// retains indentation text nodes and counts Xerces-internal visits; our
// corpus also differs in the optional shipDate mix), but the paper's shape
// must hold: both columns linear in the item count, schema-cast visiting
// ~20-40% fewer nodes than the baseline.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "workload/po_generator.h"

int main(int argc, char** argv) {
  using namespace xmlreval;
  bench::ConsumeForceFlag(&argc, argv);

  struct PaperRow {
    size_t items, cast, xerces;
  };
  constexpr PaperRow kPaper[] = {
      {2, 35, 74},         {50, 611, 794},     {100, 1211, 1544},
      {200, 2411, 3044},   {500, 6011, 7544},  {1000, 12011, 15044},
  };

  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::CastValidator cast(pair.relations.get());
  core::FullValidator full(pair.target.get());

  std::printf("Table 3: nodes traversed during validation in experiment 2\n");
  std::printf("%-8s | %-12s %-12s %-8s | %-12s %-12s %-8s\n", "# items",
              "cast(ours)", "full(ours)", "ratio", "cast(paper)",
              "xerces(paper)", "ratio");
  std::vector<std::pair<std::string, double>> metrics;
  for (const PaperRow& row : kPaper) {
    workload::PoGeneratorOptions options;
    options.item_count = row.items;
    options.quantity_max = 99;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    core::ValidationReport cast_report = cast.Validate(doc);
    core::ValidationReport full_report = full.Validate(doc);
    if (!cast_report.valid || !full_report.valid) {
      std::fprintf(stderr, "unexpected invalid document\n");
      return 1;
    }
    std::printf("%-8zu | %-12llu %-12llu %-8.2f | %-12zu %-12zu %-8.2f\n",
                row.items,
                (unsigned long long)cast_report.counters.nodes_visited,
                (unsigned long long)full_report.counters.nodes_visited,
                double(cast_report.counters.nodes_visited) /
                    double(full_report.counters.nodes_visited),
                row.cast, row.xerces, double(row.cast) / double(row.xerces));
    std::string suffix = "_items_" + std::to_string(row.items);
    metrics.emplace_back("cast_nodes" + suffix,
                         double(cast_report.counters.nodes_visited));
    metrics.emplace_back("full_nodes" + suffix,
                         double(full_report.counters.nodes_visited));
  }
  std::printf(
      "\n(both implementations: linear in items; cast visits a constant "
      "fraction fewer nodes — the paper reports ~0.80, our stricter "
      "skip-the-subtree counting yields a smaller ratio)\n");
  bench::WriteBenchJson("BENCH_table3.json", "table3", metrics);
  return 0;
}
