// Static update-safety analysis: edit-stream short-circuit rate and cost.
//
// A star-schema feed (feed → (entry|note)*) takes randomized 16-op edit
// streams in three flavors of label pool: in-schema labels the analyzer
// decides statically (safe renames between indistinguishable symbols,
// neutral inserts/deletes, value-scoped text edits — plus fatal inserts
// under simple content), and out-of-schema "wild" labels it cannot. Each
// script replays three ways on fresh parses of the same document (node
// ids are deterministic per parse):
//
//   * apply    — plain editor, no validation: the floor every validation
//                cost is measured against
//   * modval   — plain editor + ModValidator over the sealed Δ-index:
//                what CastWithMods does on every stream today
//   * analyzed — StreamSession classification; decided streams commit
//                with ZERO tree work, undecided ones fall back to modval
//
// Reported (BENCH_update_stream.json): % of ops short-circuited, ns/op
// for each path, and the validation-only speedup on the short-circuited
// fraction ((modval − apply) / (analyzed − apply) over decided streams).
// Every analyzed verdict is cross-checked against modval ground truth —
// a disagreement aborts the bench.
//
// A final pass replays every stream through
// ValidationService::SubmitEditStream and dumps the service metrics
// (--metrics-out) so CI can reconcile the obs counters against the
// locally-counted verdicts. --short shrinks the grid for smoke runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/stream_session.h"
#include "analysis/update_analyzer.h"
#include "bench/bench_util.h"
#include "core/mod_validator.h"
#include "service/validation_service.h"
#include "workload/update_workload.h"
#include "xml/editor.h"
#include "xml/parser.h"
#include "xml/tree.h"

namespace {

using namespace xmlreval;

// feed's content model is a star: entry/note are neutral symbols (every
// reachable DFA state loops on them) and mutually indistinguishable, so
// renames/inserts/deletes among them are statically safe. meta is
// declared but unreferenced: inserting it under feed is doomed → fatal.
constexpr char kStarDtd[] =
    "<!ELEMENT feed ((entry|note)*)>\n"
    "<!ELEMENT entry (#PCDATA)>\n"
    "<!ELEMENT note (#PCDATA)>\n"
    "<!ELEMENT meta (title)>\n"
    "<!ELEMENT title (#PCDATA)>\n";

std::string MakeFeedXml(size_t children) {
  std::string xml = "<feed>";
  for (size_t i = 0; i < children; ++i) {
    xml += (i % 3 != 0) ? "<entry>42</entry>" : "<note>n</note>";
  }
  xml += "</feed>";
  return xml;
}

double Now() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Script {
  std::vector<xml::EditOp> ops;
  bool decided = false;  // filled by the analyzed pass
  bool valid = false;    // modval ground truth
};

[[noreturn]] void Die(const Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::abort();
}

}  // namespace

int main(int argc, char** argv) {
  xmlreval::bench::ConsumeForceFlag(&argc, argv);
  bool short_mode = false;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_update_stream [--short] [--metrics-out F]\n");
      return 2;
    }
  }

  const size_t kChildren = short_mode ? 512 : 3072;
  const size_t kStreams = short_mode ? 16 : 48;
  const size_t kOpsPerStream = 16;
  const size_t kWarmups = short_mode ? 1 : 2;
  const size_t kRuns = short_mode ? 3 : 7;  // odd: median is a real sample

  service::ValidationService service;
  auto source = service.registry().RegisterDtd("star", kStarDtd);
  auto target = service.registry().RegisterDtd("star", kStarDtd);
  if (!source.ok()) Die(source.status(), "register source");
  if (!target.ok()) Die(target.status(), "register target");
  auto relations = service.cache().Get(*source, *target);
  if (!relations.ok()) Die(relations.status(), "relations");
  auto analyzer = service.cache().GetAnalyzer(*source, *target);
  if (!analyzer.ok()) Die(analyzer.status(), "analyzer");

  const std::string feed_xml = MakeFeedXml(kChildren);
  auto parse_bound = [&]() {
    auto doc = xml::ParseXml(feed_xml);
    if (!doc.ok()) Die(doc.status(), "parse");
    Status bind = service.BindDocument(&*doc);
    if (!bind.ok()) Die(bind, "bind");
    return std::move(*doc);
  };

  // Generate the stream scripts in three flavors so every service path is
  // exercised: i%3==0 renames/deletes/text-edits with in-schema labels
  // (expected short_circuit_safe), i%3==1 adds inserts — under this
  // schema's simple-typed children those are usually fatal
  // (short_circuit_fatal), i%3==2 mixes in out-of-schema labels the
  // analyzer cannot decide (fallback).
  std::vector<Script> scripts(kStreams);
  for (size_t i = 0; i < kStreams; ++i) {
    workload::UpdateWorkloadOptions options;
    options.seed = 1000 + i;
    options.edit_count = kOpsPerStream;
    options.rename_safe_labels = {"entry", "note"};
    options.insert_safe_labels = {"entry", "note"};
    options.rename_unsafe_labels = {"wild", "offmodel"};
    options.insert_unsafe_labels = {"wild", "offmodel"};
    options.safe_percent = (i % 3 == 2) ? 30 : 100;
    if (i % 3 == 0) options.insert_weight = 0;
    options.rename_root = false;  // one root rename re-types everything
    xml::Document scratch = parse_bound();
    xml::DocumentEditor editor(&scratch);
    auto applied = workload::ApplyRandomUpdates(&scratch, &editor, options,
                                                &scripts[i].ops);
    if (!applied.ok()) Die(applied.status(), "generate stream");
  }

  // One pre-pass records per-stream ground truth (modval) and the static
  // decision (analyzed), so the timed passes are pure replay.
  for (Script& script : scripts) {
    xml::Document doc = parse_bound();
    xml::DocumentEditor editor(&doc);
    for (const xml::EditOp& op : script.ops) {
      Status s = editor.Apply(op);
      if (!s.ok()) Die(s, "replay");
    }
    xml::ModificationIndex mods = editor.Seal();
    script.valid =
        core::ModValidator(relations->get()).Validate(doc, mods).valid;

    xml::Document doc2 = parse_bound();
    analysis::StreamSession session(analyzer->get(), &doc2);
    for (const xml::EditOp& op : script.ops) {
      Status s = session.Apply(op);
      if (!s.ok()) Die(s, "session replay");
    }
    analysis::StreamVerdict verdict = session.Classify();
    script.decided = verdict.decided();
    if (script.decided) {
      bool analyzed_valid = verdict.verdict == analysis::Safety::kSafe;
      if (analyzed_valid != script.valid) {
        std::fprintf(stderr,
                     "SOUNDNESS VIOLATION: static verdict %s vs modval %s\n",
                     analysis::SafetyName(verdict.verdict),
                     script.valid ? "valid" : "invalid");
        std::abort();
      }
    }
  }

  size_t decided_streams = 0;
  for (const Script& s : scripts) decided_streams += s.decided;
  const size_t total_ops = kStreams * kOpsPerStream;
  const double pct_short_circuited =
      100.0 * double(decided_streams * kOpsPerStream) / double(total_ops);

  // Timed passes. Docs are parsed OUTSIDE the timer; each pass returns
  // (total ns over all streams, ns over the decided subset).
  struct PassTime {
    double all_ns = 0;
    double decided_ns = 0;
  };
  auto run_pass = [&](auto&& body) {
    std::vector<PassTime> samples;
    for (size_t r = 0; r < kWarmups + kRuns; ++r) {
      PassTime t;
      for (const Script& script : scripts) {
        xml::Document doc = parse_bound();
        double t0 = Now();
        body(script, &doc);
        double dt = Now() - t0;
        t.all_ns += dt;
        if (script.decided) t.decided_ns += dt;
      }
      if (r >= kWarmups) samples.push_back(t);
    }
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                     samples.end(),
                     [](const PassTime& a, const PassTime& b) {
                       return a.all_ns < b.all_ns;
                     });
    return samples[samples.size() / 2];
  };

  PassTime apply_time = run_pass([&](const Script& script, xml::Document* doc) {
    xml::DocumentEditor editor(doc);
    for (const xml::EditOp& op : script.ops) (void)editor.Apply(op);
    editor.Seal();
    (void)editor.Commit();
  });

  PassTime modval_time =
      run_pass([&](const Script& script, xml::Document* doc) {
        xml::DocumentEditor editor(doc);
        for (const xml::EditOp& op : script.ops) (void)editor.Apply(op);
        xml::ModificationIndex mods = editor.Seal();
        volatile bool valid =
            core::ModValidator(relations->get()).Validate(*doc, mods).valid;
        (void)valid;
        (void)editor.Commit();
      });

  PassTime analyzed_time =
      run_pass([&](const Script& script, xml::Document* doc) {
        analysis::StreamSession session(analyzer->get(), doc);
        for (const xml::EditOp& op : script.ops) (void)session.Apply(op);
        analysis::StreamVerdict verdict = session.Classify();
        if (verdict.decided()) {
          session.Seal();  // editor contract; the index is dropped
        } else {
          xml::ModificationIndex mods = session.Seal();
          volatile bool valid = core::ModValidator(relations->get())
                                    .Validate(*doc, mods)
                                    .valid;
          (void)valid;
        }
        (void)session.Commit();
      });

  // Validation-only speedup on the short-circuited fraction: subtract the
  // apply floor so the ratio compares validation work, not editing work.
  // The passes are timed independently, so on small grids the analyzed
  // minus apply difference can vanish into noise (or go negative); the
  // denominator is clamped to a conservative 50 ns/op classification
  // floor, making the reported speedup an UNDERestimate in that case.
  const size_t decided_ops = decided_streams * kOpsPerStream;
  const double modval_validation_sc =
      modval_time.decided_ns - apply_time.decided_ns;
  const double analyzed_validation_sc =
      std::max(analyzed_time.decided_ns - apply_time.decided_ns,
               50.0 * double(decided_ops));
  const double speedup_sc_validation =
      decided_ops > 0 ? modval_validation_sc / analyzed_validation_sc : 0.0;
  const double speedup_end_to_end =
      analyzed_time.all_ns > 0 ? modval_time.all_ns / analyzed_time.all_ns
                               : 0.0;

  // Service replay: the same streams through SubmitEditStream, so the obs
  // counters can be reconciled against the local counts (--metrics-out).
  size_t svc_short_circuited = 0;
  for (const Script& script : scripts) {
    xml::Document doc = parse_bound();
    auto result =
        service.SubmitEditStream(*source, *target, &doc, script.ops);
    if (!result.ok()) Die(result.status(), "SubmitEditStream");
    svc_short_circuited += result->short_circuited;
    if (result->report.valid != script.valid) {
      std::fprintf(stderr, "SERVICE VERDICT MISMATCH\n");
      std::abort();
    }
  }
  if (svc_short_circuited != decided_streams) {
    std::fprintf(stderr, "service short-circuit count %zu != local %zu\n",
                 svc_short_circuited, decided_streams);
    std::abort();
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", metrics_out.c_str());
      return 2;
    }
    out << service.metrics().Snapshot().ToJson();
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf(
      "update-stream analysis (%zu streams x %zu ops, %zu-child feed, "
      "hardware_concurrency=%u)\n\n",
      kStreams, kOpsPerStream, kChildren, hardware);
  std::printf("short-circuited: %zu/%zu streams (%.1f%% of ops)\n",
              decided_streams, kStreams, pct_short_circuited);
  std::printf("ns/op  apply=%.0f  modval=%.0f  analyzed=%.0f\n",
              apply_time.all_ns / total_ops, modval_time.all_ns / total_ops,
              analyzed_time.all_ns / total_ops);
  std::printf(
      "validation-only speedup on short-circuited fraction: x%.1f\n"
      "end-to-end speedup (whole mix, apply included):      x%.2f\n",
      speedup_sc_validation, speedup_end_to_end);

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("hardware_concurrency", double(hardware));
  metrics.emplace_back("short_mode", short_mode ? 1.0 : 0.0);
  metrics.emplace_back("streams", double(kStreams));
  metrics.emplace_back("ops_total", double(total_ops));
  metrics.emplace_back("streams_short_circuited", double(decided_streams));
  metrics.emplace_back("pct_ops_short_circuited", pct_short_circuited);
  metrics.emplace_back("apply_ns_per_op", apply_time.all_ns / total_ops);
  metrics.emplace_back("modval_ns_per_op", modval_time.all_ns / total_ops);
  metrics.emplace_back("analyzed_ns_per_op",
                       analyzed_time.all_ns / total_ops);
  metrics.emplace_back("speedup_short_circuit_validation_only",
                       speedup_sc_validation);
  metrics.emplace_back("speedup_end_to_end", speedup_end_to_end);
  bench::WriteBenchJson("BENCH_update_stream.json", "update_stream", metrics);
  return 0;
}
