// Ablation A8 — concurrent validation throughput.
//
// All runtime structures (TypeRelations, validators, schemas) are
// immutable after preprocessing, so one instance serves any number of
// threads — the message-broker deployment of §2 relies on this. The bench
// scales the experiment-2 cast across threads, each validating its own
// document against the SHARED relations; near-linear scaling demonstrates
// that the hot path allocates and synchronizes nothing shared.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "workload/po_generator.h"

namespace {

using namespace xmlreval;

void BM_ConcurrentCast(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  static core::CastValidator validator(pair.relations.get());
  // Per-thread document (generation excluded from timing).
  workload::PoGeneratorOptions options;
  options.item_count = 200;
  options.quantity_max = 99;
  options.seed = 100 + state.thread_index();
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ConcurrentCast)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
