// Ablation A8 — concurrent validation throughput.
//
// All runtime structures (TypeRelations, validators, schemas) are
// immutable after preprocessing, so one instance serves any number of
// threads — the message-broker deployment of §2 relies on this. The bench
// scales the experiment-2 cast across threads, each validating its own
// document against the SHARED relations; near-linear scaling demonstrates
// that the hot path allocates and synchronizes nothing shared.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"
#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "service/validation_service.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"

namespace {

using namespace xmlreval;

// Per-thread document (generation excluded from timing).
xml::Document ThreadDoc(int thread_index) {
  workload::PoGeneratorOptions options;
  options.item_count = 200;
  options.quantity_max = 99;
  options.seed = 100 + thread_index;
  return workload::GeneratePurchaseOrder(options);
}

void BM_ConcurrentCast(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  static core::CastValidator validator(pair.relations.get());
  xml::Document doc = ThreadDoc(state.thread_index());
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ConcurrentCast)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

// The same workload through ValidationService with a warm RelationsCache:
// the delta against BM_ConcurrentCast is the whole service-layer overhead
// (registry lookups, cache probe, read guard, per-request validator).
void BM_ConcurrentCastViaService(benchmark::State& state) {
  struct Shared {
    service::ValidationService service;
    service::SchemaHandle source;
    service::SchemaHandle target;
    Shared() {
      source = *service.registry().RegisterXsd(
          "po-relaxed", workload::kRelaxedQuantityXsd);
      target = *service.registry().RegisterXsd("po", workload::kTargetXsd);
      xml::Document doc = ThreadDoc(0);
      service.Cast(source, target, doc);  // warm the cache
    }
  };
  static Shared shared;
  xml::Document doc = ThreadDoc(state.thread_index());
  for (auto _ : state) {
    auto report = shared.service.Cast(shared.source, shared.target, doc);
    benchmark::DoNotOptimize(report->valid);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ConcurrentCastViaService)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("concurrency")
