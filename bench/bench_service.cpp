// Serving-layer benchmark: end-to-end text → verdict throughput through
// ValidationService, cold vs. warm relations cache, across 1/2/4/8
// threads, plus the SubmitBatch pipeline.
//
// Workload: the paper's experiment 2 (Fig. 2 with quantity<200 → Fig. 2,
// 200-item purchase orders) — the same shape bench_concurrency runs
// against the bare CastValidator, so the service overhead is directly
// comparable.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "service/validation_service.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

using namespace xmlreval;

std::string PoText(uint64_t seed) {
  workload::PoGeneratorOptions options;
  options.item_count = 200;
  options.quantity_max = 99;
  options.seed = seed;
  return xml::Serialize(workload::GeneratePurchaseOrder(options));
}

struct WarmService {
  service::ValidationService service;
  service::SchemaHandle source;
  service::SchemaHandle target;

  WarmService() {
    source = *service.registry().RegisterXsd("po-relaxed",
                                             workload::kRelaxedQuantityXsd);
    target = *service.registry().RegisterXsd("po", workload::kTargetXsd);
    // Warm the relations cache so steady-state runs never hit the fixpoint.
    auto doc = xml::ParseXml(PoText(1));
    service.Cast(source, target, *doc);
  }

  static WarmService& Get() {
    static WarmService instance;
    return instance;
  }
};

// Cold start: schema registration (XSD parse), R_sub/R_nondis fixpoint,
// document parse, and cast — the full price of the first request on a new
// (S, S') pair. Amortizing THIS across requests is the cache's job.
void BM_ServiceColdTextToVerdict(benchmark::State& state) {
  std::string text = PoText(7);
  for (auto _ : state) {
    service::ValidationService service;
    auto source = service.registry().RegisterXsd(
        "po-relaxed", workload::kRelaxedQuantityXsd);
    auto target = service.registry().RegisterXsd("po", workload::kTargetXsd);
    auto doc = xml::ParseXml(text);
    auto report = service.Cast(*source, *target, *doc);
    benchmark::DoNotOptimize(report->valid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceColdTextToVerdict)->Unit(benchmark::kMicrosecond);

// Warm steady state: parse + cast per request, registry and cache shared
// by all threads. Throughput should scale with the thread count — the hot
// path takes only shared locks, never exclusive ones.
void BM_ServiceWarmTextToVerdict(benchmark::State& state) {
  WarmService& warm = WarmService::Get();
  std::string text = PoText(100 + state.thread_index());
  for (auto _ : state) {
    auto doc = xml::ParseXml(text);
    auto report = warm.service.Cast(warm.source, warm.target, *doc);
    benchmark::DoNotOptimize(report->valid);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceWarmTextToVerdict)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// The batch pipeline: one SubmitBatch of 64 text documents per iteration,
// fanned over a pool of range(0) workers (warm cache).
void BM_ServiceBatchPipeline(benchmark::State& state) {
  service::ValidationService::Options options;
  options.batch_threads = static_cast<size_t>(state.range(0));
  service::ValidationService service(options);
  auto source = *service.registry().RegisterXsd(
      "po-relaxed", workload::kRelaxedQuantityXsd);
  auto target = *service.registry().RegisterXsd("po", workload::kTargetXsd);
  constexpr size_t kBatchSize = 64;
  std::vector<std::string> texts;
  for (size_t i = 0; i < kBatchSize; ++i) texts.push_back(PoText(200 + i));
  {  // warm the cache outside timing
    auto doc = xml::ParseXml(texts[0]);
    service.Cast(source, target, *doc);
  }
  for (auto _ : state) {
    std::vector<service::ValidationService::BatchItem> items;
    items.reserve(kBatchSize);
    for (const std::string& text : texts) {
      service::ValidationService::BatchItem item;
      item.source = source;
      item.target = target;
      item.xml_text = text;
      items.push_back(std::move(item));
    }
    auto results = service.SubmitBatch(std::move(items)).get();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchSize);
  // Queue-wait vs service-time split, straight from the service's own
  // latency histograms — how much of batch latency is pool contention
  // (wait grows with batch size / shrinks with workers) vs. real work.
  obs::MetricsSnapshot snapshot = service.metrics().Snapshot();
  const obs::HistogramSnapshot* wait =
      snapshot.FindHistogram("xmlreval_batch_queue_wait_us");
  const obs::HistogramSnapshot* svc =
      snapshot.FindHistogram("xmlreval_batch_service_us");
  if (wait != nullptr && wait->count > 0) {
    state.counters["queue_wait_mean_us"] = wait->Mean();
    state.counters["queue_wait_p99_us"] = wait->Quantile(0.99);
  }
  if (svc != nullptr && svc->count > 0) {
    state.counters["service_mean_us"] = svc->Mean();
    state.counters["service_p99_us"] = svc->Quantile(0.99);
  }
}
BENCHMARK(BM_ServiceBatchPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("service")
