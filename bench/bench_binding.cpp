// Symbol-binding microbenchmark: the same schema-cast validation over the
// same document, bound vs. unbound.
//
// The Experiment 2 pair (quantity<200 → quantity<100) is deliberately NOT
// subsumption-friendly: every <item> subtree must be walked, so the cast
// validator's per-node work dominates. On an unbound document that work
// includes one Alphabet::Find (a string hash + compare) per element; on a
// document bound to the pair's alphabet the symbol is a direct field read.
// Reports median ns per visited node for both paths and the speedup, and
// emits BENCH_binding.json for CI consumption.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "workload/po_generator.h"

int main(int argc, char** argv) {
  using namespace xmlreval;
  bench::ConsumeForceFlag(&argc, argv);
  using Clock = std::chrono::steady_clock;

  constexpr size_t kItems = 1000;
  constexpr int kReps = 41;
  constexpr int kWarmup = 5;

  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::CastValidator validator(pair.relations.get());

  workload::PoGeneratorOptions options;
  options.item_count = kItems;
  xml::Document unbound = workload::GeneratePurchaseOrder(options);
  xml::Document bound = workload::GeneratePurchaseOrder(options);
  if (!bound.Bind(pair.alphabet).ok()) {
    std::fprintf(stderr, "Bind failed\n");
    return 1;
  }

  auto median_ns_per_node = [&](const xml::Document& doc) {
    uint64_t nodes = 0;
    std::vector<double> samples;
    samples.reserve(kReps);
    for (int rep = 0; rep < kWarmup + kReps; ++rep) {
      auto start = Clock::now();
      core::ValidationReport report = validator.Validate(doc);
      auto stop = Clock::now();
      if (!report.valid) {
        std::fprintf(stderr, "unexpected invalid verdict: %s\n",
                     report.violation.c_str());
        std::abort();
      }
      nodes = report.counters.nodes_visited;
      if (rep >= kWarmup) {
        samples.push_back(
            double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       stop - start)
                       .count()) /
            double(nodes));
      }
    }
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                     samples.end());
    return std::pair<double, uint64_t>(samples[samples.size() / 2], nodes);
  };

  auto [unbound_ns, nodes] = median_ns_per_node(unbound);
  auto [bound_ns, bound_nodes] = median_ns_per_node(bound);
  double speedup = unbound_ns / bound_ns;
  // Resident footprint of the SoA layout, amortised over every node the
  // document holds (topology columns + payload refs + string arena +
  // attribute side table).
  double bytes_per_node =
      double(bound.MemoryUsage().total()) / double(bound.NodeCount());

  std::printf("Symbol binding: cast validation, %zu items (%llu nodes)\n",
              kItems, static_cast<unsigned long long>(nodes));
  std::printf("%-24s %10.2f ns/node\n", "unbound (Find per node)", unbound_ns);
  std::printf("%-24s %10.2f ns/node\n", "bound (symbol read)", bound_ns);
  std::printf("%-24s %10.2fx\n", "speedup", speedup);
  std::printf("%-24s %10.2f bytes/node\n", "document footprint",
              bytes_per_node);

  bench::WriteBenchJson(
      "BENCH_binding.json", "bench_binding",
      {{"hardware_concurrency", double(std::thread::hardware_concurrency())},
       {"items", double(kItems)},
       {"nodes_visited", double(nodes)},
       {"unbound_ns_per_node", unbound_ns},
       {"bound_ns_per_node", bound_ns},
       {"speedup", speedup},
       {"bytes_per_node", bytes_per_node}});
  std::printf("\nwrote BENCH_binding.json\n");
  return bound_nodes == nodes ? 0 : 1;
}
