// Ablation A1 — string revalidation (§4.2): how much scanning does the
// immediate decision automaton c_immed save over (a) checking the string
// fresh with b_immed and (b) a plain DFA scan, as a function of string
// length and of WHERE the languages force a decision?
//
// Three scenarios over strings s ∈ L(a) of length n:
//   * EqualLanguages:   b == a                → c_immed accepts after 0
//     symbols (the subsumption fast path); the others scan O(n).
//   * EarlyDivergence:  a = (p?, m*), b = (p, m*) → decided by symbol 1.
//   * LateDivergence:   a = (m*, (e|f)), b = (m*, e) → the verdict depends
//     on the last symbol; even the optimal automaton scans O(n), so all
//     three mechanisms converge — the paper's "no free lunch" case.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include <vector>

#include "automata/regex_parser.h"
#include "core/string_revalidator.h"

namespace {

using namespace xmlreval;
using automata::Alphabet;
using automata::Symbol;

struct Scenario {
  Alphabet alphabet;
  std::unique_ptr<core::StringRevalidator> reval;
  std::unique_ptr<automata::Dfa> target;
  std::vector<Symbol> input;
};

std::unique_ptr<Scenario> MakeScenario(const char* regex_a,
                                       const char* regex_b, size_t length,
                                       const char* head, const char* tail) {
  auto s = std::make_unique<Scenario>();
  for (const char* n : {"p", "m", "e", "f"}) s->alphabet.Intern(n);
  auto ra = automata::ParseRegex(regex_a, &s->alphabet);
  auto rb = automata::ParseRegex(regex_b, &s->alphabet);
  auto a = automata::CompileRegex(*ra, s->alphabet.size());
  auto b = automata::CompileRegex(*rb, s->alphabet.size());
  s->target = std::make_unique<automata::Dfa>(*b);
  auto reval = core::StringRevalidator::Create(*a, *b);
  s->reval =
      std::make_unique<core::StringRevalidator>(std::move(reval).value());
  if (head[0] != '\0') s->input.push_back(*s->alphabet.Find(head));
  Symbol m = *s->alphabet.Find("m");
  while (s->input.size() + (tail[0] != '\0' ? 1 : 0) < length) {
    s->input.push_back(m);
  }
  if (tail[0] != '\0') s->input.push_back(*s->alphabet.Find(tail));
  return s;
}

void Run(benchmark::State& state, Scenario* s, int mode) {
  size_t scanned = 0;
  for (auto _ : state) {
    switch (mode) {
      case 0: {  // c_immed (knows input ∈ L(a))
        core::RevalidationResult r = s->reval->Revalidate(s->input);
        benchmark::DoNotOptimize(r.accepted);
        scanned = r.symbols_scanned;
        break;
      }
      case 1: {  // b_immed (no source knowledge)
        core::RevalidationResult r = s->reval->ValidateFresh(s->input);
        benchmark::DoNotOptimize(r.accepted);
        scanned = r.symbols_scanned;
        break;
      }
      case 2: {  // plain DFA scan, no immediate states
        bool ok = s->target->Accepts(s->input);
        benchmark::DoNotOptimize(ok);
        scanned = s->input.size();
        break;
      }
    }
  }
  state.counters["symbols_scanned"] = static_cast<double>(scanned);
  state.counters["length"] = static_cast<double>(s->input.size());
}

void BM_EqualLanguages_CImmed(benchmark::State& state) {
  auto s = MakeScenario("(p,m*)", "(p,m*)", state.range(0), "p", "");
  Run(state, s.get(), 0);
}
void BM_EqualLanguages_BImmed(benchmark::State& state) {
  auto s = MakeScenario("(p,m*)", "(p,m*)", state.range(0), "p", "");
  Run(state, s.get(), 1);
}
void BM_EqualLanguages_PlainDfa(benchmark::State& state) {
  auto s = MakeScenario("(p,m*)", "(p,m*)", state.range(0), "p", "");
  Run(state, s.get(), 2);
}

void BM_EarlyDivergence_CImmed(benchmark::State& state) {
  auto s = MakeScenario("(p?,m*)", "(p,m*)", state.range(0), "p", "");
  Run(state, s.get(), 0);
}
void BM_EarlyDivergence_BImmed(benchmark::State& state) {
  auto s = MakeScenario("(p?,m*)", "(p,m*)", state.range(0), "p", "");
  Run(state, s.get(), 1);
}
void BM_EarlyDivergence_PlainDfa(benchmark::State& state) {
  auto s = MakeScenario("(p?,m*)", "(p,m*)", state.range(0), "p", "");
  Run(state, s.get(), 2);
}

void BM_LateDivergence_CImmed(benchmark::State& state) {
  auto s = MakeScenario("(m*,(e|f))", "(m*,e)", state.range(0), "", "e");
  Run(state, s.get(), 0);
}
void BM_LateDivergence_BImmed(benchmark::State& state) {
  auto s = MakeScenario("(m*,(e|f))", "(m*,e)", state.range(0), "", "e");
  Run(state, s.get(), 1);
}
void BM_LateDivergence_PlainDfa(benchmark::State& state) {
  auto s = MakeScenario("(m*,(e|f))", "(m*,e)", state.range(0), "", "e");
  Run(state, s.get(), 2);
}

#define GRID ->Arg(16)->Arg(256)->Arg(4096)->Arg(65536)
BENCHMARK(BM_EqualLanguages_CImmed) GRID;
BENCHMARK(BM_EqualLanguages_BImmed) GRID;
BENCHMARK(BM_EqualLanguages_PlainDfa) GRID;
BENCHMARK(BM_EarlyDivergence_CImmed) GRID;
BENCHMARK(BM_EarlyDivergence_BImmed) GRID;
BENCHMARK(BM_EarlyDivergence_PlainDfa) GRID;
BENCHMARK(BM_LateDivergence_CImmed) GRID;
BENCHMARK(BM_LateDivergence_BImmed) GRID;
BENCHMARK(BM_LateDivergence_PlainDfa) GRID;

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("string_reval")
