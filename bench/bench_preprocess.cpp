// Ablation A3 — static preprocessing cost: time to compute TypeRelations
// (R_sub + R_nondis fixpoints + the §4 immediate automata) as the schema
// pair grows.
//
// The paper's memory/latency argument rests on preprocessing depending only
// on the SCHEMAS, never the documents; this bench quantifies that cost.
// Synthetic pair: a chain of N complex types t_i with content
// (leaf_i, child_{i+1}?), where the target narrows every leaf's numeric
// facet — so no pair is subsumed and the fixpoints run to full depth.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include <memory>
#include <string>

#include "core/relations.h"
#include "schema/abstract_schema.h"

namespace {

using namespace xmlreval;
using schema::Alphabet;
using schema::Schema;
using schema::SchemaBuilder;
using schema::SimpleType;
using schema::TypeId;

// Builds a chain schema with `depth` complex types. `max_value` controls
// the leaf facet (different values between source/target keep every pair
// out of R_sub, maximizing fixpoint work).
std::unique_ptr<Schema> BuildChain(const std::shared_ptr<Alphabet>& alphabet,
                                   int depth, int64_t max_value,
                                   const std::string& prefix) {
  SchemaBuilder builder(alphabet);
  SimpleType leaf{schema::AtomicKind::kInteger, {}};
  leaf.facets.max_inclusive = max_value * 1000000000;
  TypeId leaf_type = *builder.DeclareSimpleType(prefix + "Leaf", leaf);

  std::vector<TypeId> types(depth);
  for (int i = 0; i < depth; ++i) {
    types[i] = *builder.DeclareComplexType(prefix + "T" + std::to_string(i));
  }
  for (int i = 0; i < depth; ++i) {
    std::string leaf_label = "leaf" + std::to_string(i);
    automata::RegexPtr content;
    automata::RegexPtr leaf_sym =
        automata::Regex::Sym(alphabet->Intern(leaf_label));
    if (i + 1 < depth) {
      std::string child_label = "child" + std::to_string(i + 1);
      content = automata::Regex::Concat(
          {leaf_sym, automata::Regex::Optional(automata::Regex::Sym(
                         alphabet->Intern(child_label)))});
      (void)builder.MapChild(types[i], child_label, types[i + 1]);
    } else {
      content = leaf_sym;
    }
    (void)builder.SetContentModel(types[i], content);
    (void)builder.MapChild(types[i], leaf_label, leaf_type);
  }
  (void)builder.AddRoot("root", types[0]);
  auto schema = builder.Build();
  if (!schema.ok()) std::abort();
  return std::make_unique<Schema>(std::move(schema).value());
}

void BM_ComputeRelations(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  auto alphabet = std::make_shared<Alphabet>();
  auto source = BuildChain(alphabet, depth, 200, "S");
  auto target = BuildChain(alphabet, depth, 100, "T");
  size_t subsumed = 0, nondisjoint = 0;
  for (auto _ : state) {
    auto relations = core::TypeRelations::Compute(source.get(), target.get());
    benchmark::DoNotOptimize(relations.ok());
    subsumed = relations->CountSubsumed();
    nondisjoint = relations->CountNonDisjoint();
  }
  state.counters["types_per_schema"] = depth + 1;
  state.counters["subsumed_pairs"] = static_cast<double>(subsumed);
  state.counters["nondisjoint_pairs"] = static_cast<double>(nondisjoint);
}

void BM_ComputeRelationsNoAutomata(benchmark::State& state) {
  // Relations only — without prebuilding the §4 pair/single automata —
  // isolates the fixpoint cost.
  int depth = static_cast<int>(state.range(0));
  auto alphabet = std::make_shared<Alphabet>();
  auto source = BuildChain(alphabet, depth, 200, "S");
  auto target = BuildChain(alphabet, depth, 100, "T");
  core::TypeRelations::Options options;
  options.build_pair_automata = false;
  options.build_single_automata = false;
  for (auto _ : state) {
    auto relations =
        core::TypeRelations::Compute(source.get(), target.get(), options);
    benchmark::DoNotOptimize(relations.ok());
  }
  state.counters["types_per_schema"] = depth + 1;
}

BENCHMARK(BM_ComputeRelations)->Arg(4)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_ComputeRelationsNoAutomata)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("preprocess")
