// Ablation A5 — the §3.4 DTD optimization: when every label has one type
// and the document offers direct label access (xml::LabelIndex), cast
// validation can jump straight to the instances of the few labels whose
// type pairs are neither subsumed nor disjoint.
//
// Compared on the experiment-2 pair (both PO schemas are label-determined):
//   * DtdIndexValidator with a prebuilt index (the paper's assumption),
//   * DtdIndexValidator including index construction (the honest total),
//   * top-down CastValidator (§3.2, no index),
//   * FullValidator (baseline).

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"
#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "core/dtd_index_validator.h"
#include "core/full_validator.h"
#include "workload/po_generator.h"
#include "xml/label_index.h"

namespace {

using namespace xmlreval;

xml::Document MakeDoc(size_t items) {
  workload::PoGeneratorOptions options;
  options.item_count = items;
  options.quantity_max = 99;
  return workload::GeneratePurchaseOrder(options);
}

void BM_DtdIndex_Prebuilt(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  auto validator = core::DtdIndexValidator::Create(pair.relations.get());
  if (!validator.ok()) std::abort();
  xml::Document doc = MakeDoc(state.range(0));
  xml::LabelIndex index = xml::LabelIndex::Build(doc);
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator->Validate(doc, index);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

void BM_DtdIndex_IncludingBuild(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  auto validator = core::DtdIndexValidator::Create(pair.relations.get());
  if (!validator.ok()) std::abort();
  xml::Document doc = MakeDoc(state.range(0));
  for (auto _ : state) {
    xml::LabelIndex index = xml::LabelIndex::Build(doc);
    core::ValidationReport report = validator->Validate(doc, index);
    benchmark::DoNotOptimize(report.valid);
  }
}

void BM_TopDownCast(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::CastValidator validator(pair.relations.get());
  xml::Document doc = MakeDoc(state.range(0));
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

void BM_FullBaseline(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::FullValidator validator(pair.target.get());
  xml::Document doc = MakeDoc(state.range(0));
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

#define GRID ->Arg(50)->Arg(200)->Arg(1000)
BENCHMARK(BM_DtdIndex_Prebuilt) GRID;
BENCHMARK(BM_DtdIndex_IncludingBuild) GRID;
BENCHMARK(BM_TopDownCast) GRID;
BENCHMARK(BM_FullBaseline) GRID;

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("dtd_index")
