// Ablation A2 — string revalidation with modifications (§4.3): forward vs
// reverse scanning as the edit position moves through the string.
//
// Setup: the single-schema update problem over a = b = (h, m*, t). One
// symbol of an n-symbol string in L(a) is replaced at a position given as
// a percentage of n. The paper's claim: scanning forward costs ~position
// symbols, scanning backward ~n-position; choosing by edit locality makes
// the cost min(position, n-position) ≪ n, whereas a fresh b_immed scan
// always pays O(n).

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"

#include <vector>

#include "automata/regex_parser.h"
#include "core/string_revalidator.h"

namespace {

using namespace xmlreval;
using automata::Symbol;

struct Fixture {
  automata::Alphabet alphabet;
  std::unique_ptr<core::StringRevalidator> reval;
  std::vector<Symbol> old_s;
  std::vector<Symbol> new_s;
};

std::unique_ptr<Fixture> Make(size_t n, int edit_percent, bool enable_reverse) {
  auto f = std::make_unique<Fixture>();
  for (const char* s : {"h", "m", "t", "x"}) f->alphabet.Intern(s);
  auto regex = automata::ParseRegex("(h,m*,t)", &f->alphabet);
  auto dfa = automata::CompileRegex(*regex, f->alphabet.size());
  core::StringRevalidator::Options options;
  options.enable_reverse = enable_reverse;
  auto reval = core::StringRevalidator::CreateSingle(*dfa, options);
  f->reval =
      std::make_unique<core::StringRevalidator>(std::move(reval).value());

  Symbol m = *f->alphabet.Find("m");
  f->old_s.push_back(*f->alphabet.Find("h"));
  for (size_t i = 2; i < n; ++i) f->old_s.push_back(m);
  f->old_s.push_back(*f->alphabet.Find("t"));

  // Replace one interior 'm' with another 'm'-run edit that preserves
  // validity: swap m -> m at the position... to make a REAL difference we
  // replace with a fresh 'm' after deleting and inserting — net effect: the
  // string differs at exactly one position but stays in L(a). Use an
  // insert+delete pair at the position instead: delete one m, insert two.
  size_t pos = 1 + (n - 2) * static_cast<size_t>(edit_percent) / 100;
  if (pos >= f->old_s.size() - 1) pos = f->old_s.size() - 2;
  f->new_s = f->old_s;
  // Insert an extra m at pos: string lengths differ so prefix/suffix
  // analysis sees a genuine edit at that location.
  f->new_s.insert(f->new_s.begin() + pos, m);
  return f;
}

void BM_ModifiedAdaptive(benchmark::State& state) {
  auto f = Make(4096, static_cast<int>(state.range(0)), true);
  size_t scanned = 0;
  bool backward = false;
  for (auto _ : state) {
    core::RevalidationResult r = f->reval->RevalidateModified(f->old_s, f->new_s);
    benchmark::DoNotOptimize(r.accepted);
    scanned = r.symbols_scanned;
    backward = r.scanned_backward;
  }
  state.counters["symbols_scanned"] = static_cast<double>(scanned);
  state.counters["backward"] = backward ? 1 : 0;
}

void BM_ModifiedForwardOnly(benchmark::State& state) {
  auto f = Make(4096, static_cast<int>(state.range(0)), false);
  size_t scanned = 0;
  for (auto _ : state) {
    core::RevalidationResult r = f->reval->RevalidateModified(f->old_s, f->new_s);
    benchmark::DoNotOptimize(r.accepted);
    scanned = r.symbols_scanned;
  }
  state.counters["symbols_scanned"] = static_cast<double>(scanned);
}

void BM_FreshScan(benchmark::State& state) {
  auto f = Make(4096, static_cast<int>(state.range(0)), false);
  size_t scanned = 0;
  for (auto _ : state) {
    core::RevalidationResult r = f->reval->ValidateFresh(f->new_s);
    benchmark::DoNotOptimize(r.accepted);
    scanned = r.symbols_scanned;
  }
  state.counters["symbols_scanned"] = static_cast<double>(scanned);
}

// Argument: edit position as percent of the string length.
#define POSITIONS ->Arg(1)->Arg(25)->Arg(50)->Arg(75)->Arg(99)
BENCHMARK(BM_ModifiedAdaptive) POSITIONS;
BENCHMARK(BM_ModifiedForwardOnly) POSITIONS;
BENCHMARK(BM_FreshScan) POSITIONS;

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("string_mods")
