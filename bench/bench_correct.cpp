// Ablation A7 — document correction cost (the paper's §7 future work,
// implemented in core/corrector.h): how does repairing a document to the
// target schema scale with document size and with the number of
// violations?
//
//   * CorrectClean      — correction of an already-valid document (pure
//     verification overhead of the corrector's traversal; subsumed
//     subtrees are skipped exactly as in cast validation).
//   * CorrectQuantities — N of 500 quantities violate the target facet;
//     each needs one text rewrite.
//   * CorrectMissing    — the billTo block is absent; one minimal-subtree
//     insertion (13 nodes) repairs it regardless of document size.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"
#include "bench/bench_util.h"
#include "core/corrector.h"
#include "workload/po_generator.h"
#include "xml/label_index.h"

namespace {

using namespace xmlreval;

void BM_CorrectClean(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::DocumentCorrector corrector(pair.relations.get());
  workload::PoGeneratorOptions options;
  options.item_count = state.range(0);
  options.quantity_max = 99;
  for (auto _ : state) {
    state.PauseTiming();
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    state.ResumeTiming();
    auto report = corrector.Correct(&doc);
    benchmark::DoNotOptimize(report.ok());
  }
}

void BM_CorrectQuantities(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment2Pair();
  core::DocumentCorrector corrector(pair.relations.get());
  size_t violations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // state.range(0) of the 500 items violate maxExclusive=100.
    workload::PoGeneratorOptions options;
    options.item_count = 500;
    options.quantity_max = 99;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    xml::LabelIndex index = xml::LabelIndex::Build(doc);
    for (long i = 0; i < state.range(0); ++i) {
      xml::NodeId q = index.Instances("quantity")[(i * 13) % 500];
      (void)doc.SetText(doc.first_child(q), "150");
    }
    state.ResumeTiming();
    auto report = corrector.Correct(&doc);
    benchmark::DoNotOptimize(report.ok());
    violations = report->steps.size();
  }
  state.counters["repairs"] = static_cast<double>(violations);
}

void BM_CorrectMissingBillTo(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment1Pair();
  core::DocumentCorrector corrector(pair.relations.get());
  workload::PoGeneratorOptions options;
  options.item_count = state.range(0);
  options.include_bill_to = false;
  for (auto _ : state) {
    state.PauseTiming();
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    state.ResumeTiming();
    auto report = corrector.Correct(&doc);
    benchmark::DoNotOptimize(report.ok());
  }
}

BENCHMARK(BM_CorrectClean)->Arg(50)->Arg(500);
BENCHMARK(BM_CorrectQuantities)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_CorrectMissingBillTo)->Arg(50)->Arg(500);

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("correct")
