// JSON-emitting replacement for BENCHMARK_MAIN().
//
// Every bench binary writes a machine-readable BENCH_<name>.json next to
// its console output (the same WriteBenchJson format bench_binding
// pioneered), so CI and scripts consume one uniform artifact per binary
// instead of scraping google-benchmark's console table. Usage:
//
//   #include "bench/bench_json_main.h"
//   ...BENCHMARK(...) registrations...
//   XMLREVAL_BENCH_JSON_MAIN("service")   // → BENCH_service.json
//
// Each google-benchmark run contributes "<run name>_real_ns" (the
// per-iteration adjusted real time) plus one entry per user counter;
// names are sanitized to [A-Za-z0-9_] for flat JSON keys.

#ifndef XMLREVAL_BENCH_BENCH_JSON_MAIN_H_
#define XMLREVAL_BENCH_BENCH_JSON_MAIN_H_

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

namespace xmlreval::bench {

inline std::string SanitizeMetricKey(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

/// ConsoleReporter that also accumulates (key, value) pairs for
/// WriteBenchJson. Console output stays untouched.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string key = SanitizeMetricKey(run.benchmark_name());
      metrics_.emplace_back(key + "_real_ns", run.GetAdjustedRealTime());
      for (const auto& [name, counter] : run.counters) {
        metrics_.emplace_back(key + "_" + SanitizeMetricKey(name),
                              counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

inline int RunBenchmarksToJson(const char* bench_name, int argc, char** argv) {
  ConsumeForceFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  std::string path = std::string("BENCH_") + bench_name + ".json";
  // Every artifact records the cores the run actually had: speedup
  // assertions downstream (perf-smoke) are meaningless on starved
  // containers and gate on this field.
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("hardware_concurrency",
                       double(std::thread::hardware_concurrency()));
  metrics.insert(metrics.end(), reporter.metrics().begin(),
                 reporter.metrics().end());
  WriteBenchJson(path.c_str(), bench_name, metrics);
  benchmark::Shutdown();
  return 0;
}

}  // namespace xmlreval::bench

#define XMLREVAL_BENCH_JSON_MAIN(name)                                  \
  int main(int argc, char** argv) {                                     \
    return ::xmlreval::bench::RunBenchmarksToJson(name, argc, argv);    \
  }

#endif  // XMLREVAL_BENCH_BENCH_JSON_MAIN_H_
