// Ablation A4 — schema cast WITH modifications (§3.3) vs the alternatives,
// varying the number of edits applied to a 500-item purchase order.
//
// Compared mechanisms, after k random text edits (quantity rewrites):
//   * ModValidator     — the §3.3 algorithm: cast shortcuts off the edit
//     spine, content re-checks on it.
//   * FullValidator    — revalidate the edited document from scratch
//     against the target schema (what a system without update tracking
//     must do).
//
// The schema pair is the SINGLE-SCHEMA one (source == target == Figure 2),
// i.e. the update problem: untouched subtrees are subsumption-skipped, so
// the incremental validator's cost is governed by the edit count (each
// edit contributes its root-to-leaf spine plus sibling lookups), while
// full revalidation is flat at O(document). The crossover as k grows is
// the paper's stated boundary for when incremental validation pays off.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"
#include "bench/bench_util.h"
#include "core/full_validator.h"
#include "core/mod_validator.h"
#include "workload/po_generator.h"
#include "xml/editor.h"
#include "xml/label_index.h"

namespace {

using namespace xmlreval;

constexpr size_t kItems = 500;

// Applies k quantity text edits (all staying within the facet) and returns
// the sealed index.
xml::ModificationIndex ApplyEdits(xml::Document* doc, size_t k) {
  xml::LabelIndex index = xml::LabelIndex::Build(*doc);
  const auto& quantities = index.Instances("quantity");
  xml::DocumentEditor editor(doc);
  for (size_t i = 0; i < k; ++i) {
    xml::NodeId q = quantities[(i * 37) % quantities.size()];
    if (!editor.UpdateText(doc->first_child(q),
                           std::to_string(1 + (i * 7) % 98))
             .ok()) {
      std::abort();
    }
  }
  return editor.Seal();
}

void BM_IncrementalModValidator(benchmark::State& state) {
  bench::SchemaPair& pair = bench::SingleSchemaPair();
  core::ModValidator validator(pair.relations.get());
  workload::PoGeneratorOptions options;
  options.item_count = kItems;
  options.quantity_max = 99;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  xml::ModificationIndex mods =
      ApplyEdits(&doc, static_cast<size_t>(state.range(0)));
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc, mods);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

void BM_FullRevalidation(benchmark::State& state) {
  bench::SchemaPair& pair = bench::SingleSchemaPair();
  core::FullValidator validator(pair.target.get());
  workload::PoGeneratorOptions options;
  options.item_count = kItems;
  options.quantity_max = 99;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  xml::ModificationIndex mods =
      ApplyEdits(&doc, static_cast<size_t>(state.range(0)));
  (void)mods;  // text edits are applied in place; full validation reads them
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

#define EDIT_GRID ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
BENCHMARK(BM_IncrementalModValidator) EDIT_GRID;
BENCHMARK(BM_FullRevalidation) EDIT_GRID;

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("mods")
