// Shared fixtures for the benchmark binaries: the paper's schema pairs,
// preprocessed once per process.

#ifndef XMLREVAL_BENCH_BENCH_UTIL_H_
#define XMLREVAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "workload/po_schemas.h"

namespace xmlreval::bench {

struct SchemaPair {
  std::shared_ptr<automata::Alphabet> alphabet;
  std::unique_ptr<schema::Schema> source;
  std::unique_ptr<schema::Schema> target;
  std::unique_ptr<core::TypeRelations> relations;
};

inline SchemaPair LoadPair(const char* source_xsd, const char* target_xsd) {
  SchemaPair pair;
  pair.alphabet = std::make_shared<automata::Alphabet>();
  auto source = schema::ParseXsd(source_xsd, pair.alphabet);
  if (!source.ok()) {
    std::fprintf(stderr, "source schema: %s\n",
                 source.status().ToString().c_str());
    std::abort();
  }
  pair.source = std::make_unique<schema::Schema>(std::move(source).value());
  auto target = schema::ParseXsd(target_xsd, pair.alphabet);
  if (!target.ok()) {
    std::fprintf(stderr, "target schema: %s\n",
                 target.status().ToString().c_str());
    std::abort();
  }
  pair.target = std::make_unique<schema::Schema>(std::move(target).value());
  auto relations =
      core::TypeRelations::Compute(pair.source.get(), pair.target.get());
  if (!relations.ok()) {
    std::fprintf(stderr, "relations: %s\n",
                 relations.status().ToString().c_str());
    std::abort();
  }
  pair.relations =
      std::make_unique<core::TypeRelations>(std::move(relations).value());
  return pair;
}

/// Experiment 1 pair: Figure 1a (billTo optional) → Figure 2.
inline SchemaPair& Experiment1Pair() {
  static SchemaPair pair =
      LoadPair(workload::kSourceXsd, workload::kTargetXsd);
  return pair;
}

/// Experiment 2 pair: Figure 2 with quantity<200 → Figure 2 (quantity<100).
inline SchemaPair& Experiment2Pair() {
  static SchemaPair pair =
      LoadPair(workload::kRelaxedQuantityXsd, workload::kTargetXsd);
  return pair;
}

/// Single-schema pair (source == target == Figure 2): the update problem.
inline SchemaPair& SingleSchemaPair() {
  static SchemaPair pair = LoadPair(workload::kTargetXsd, workload::kTargetXsd);
  return pair;
}

/// The item-count grid of the paper's Table 2 / Figure 3.
inline constexpr size_t kItemGrid[] = {2, 50, 100, 200, 500, 1000};

/// Process-wide --force flag: lets WriteBenchJson overwrite an artifact
/// recorded on a machine with a different core count (see ConsumeForceFlag).
inline bool& ForceBenchOverwrite() {
  static bool force = false;
  return force;
}

/// Strips every `--force` from argv (before google-benchmark's parser can
/// reject it) and records it for WriteBenchJson's stale-artifact guard.
inline void ConsumeForceFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--force") == 0) {
      ForceBenchOverwrite() = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// `hardware_concurrency` recorded in an existing artifact at `path`, or
/// -1 when the file (or the key) is absent.
inline double RecordedHardwareConcurrency(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1.0;
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  const char* key = "\"hardware_concurrency\":";
  const char* at = std::strstr(contents.c_str(), key);
  if (at == nullptr) return -1.0;
  return std::strtod(at + std::strlen(key), nullptr);
}

/// Writes a flat JSON object of numeric metrics (tagged with the benchmark
/// name) so CI and scripts can consume results without scraping stdout.
/// Emits {"bench": "<name>", "<key>": <value>, ...} to `path`.
///
/// Stale-artifact guard: committed artifacts are only comparable to reruns
/// on the same machine shape, so an existing file recorded under a
/// DIFFERENT hardware_concurrency is preserved — the write is refused with
/// instructions to pass --force (see ConsumeForceFlag) to override.
inline void WriteBenchJson(
    const char* path, const char* bench,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const double recorded = RecordedHardwareConcurrency(path);
  const double current = double(std::thread::hardware_concurrency());
  if (recorded >= 0 && recorded != current && !ForceBenchOverwrite()) {
    std::fprintf(stderr,
                 "REFUSING to overwrite %s: it records "
                 "hardware_concurrency=%g but this machine has %g.\n"
                 "Numbers from different machine shapes are not comparable; "
                 "rerun with --force to overwrite anyway.\n",
                 path, recorded, current);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\"", bench);
  for (const auto& [key, value] : metrics) {
    std::fprintf(f, ",\n  \"%s\": %.6g", key.c_str(), value);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

}  // namespace xmlreval::bench

#endif  // XMLREVAL_BENCH_BENCH_UTIL_H_
