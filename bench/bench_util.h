// Shared fixtures for the benchmark binaries: the paper's schema pairs,
// preprocessed once per process.

#ifndef XMLREVAL_BENCH_BENCH_UTIL_H_
#define XMLREVAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "workload/po_schemas.h"

namespace xmlreval::bench {

struct SchemaPair {
  std::shared_ptr<automata::Alphabet> alphabet;
  std::unique_ptr<schema::Schema> source;
  std::unique_ptr<schema::Schema> target;
  std::unique_ptr<core::TypeRelations> relations;
};

inline SchemaPair LoadPair(const char* source_xsd, const char* target_xsd) {
  SchemaPair pair;
  pair.alphabet = std::make_shared<automata::Alphabet>();
  auto source = schema::ParseXsd(source_xsd, pair.alphabet);
  if (!source.ok()) {
    std::fprintf(stderr, "source schema: %s\n",
                 source.status().ToString().c_str());
    std::abort();
  }
  pair.source = std::make_unique<schema::Schema>(std::move(source).value());
  auto target = schema::ParseXsd(target_xsd, pair.alphabet);
  if (!target.ok()) {
    std::fprintf(stderr, "target schema: %s\n",
                 target.status().ToString().c_str());
    std::abort();
  }
  pair.target = std::make_unique<schema::Schema>(std::move(target).value());
  auto relations =
      core::TypeRelations::Compute(pair.source.get(), pair.target.get());
  if (!relations.ok()) {
    std::fprintf(stderr, "relations: %s\n",
                 relations.status().ToString().c_str());
    std::abort();
  }
  pair.relations =
      std::make_unique<core::TypeRelations>(std::move(relations).value());
  return pair;
}

/// Experiment 1 pair: Figure 1a (billTo optional) → Figure 2.
inline SchemaPair& Experiment1Pair() {
  static SchemaPair pair =
      LoadPair(workload::kSourceXsd, workload::kTargetXsd);
  return pair;
}

/// Experiment 2 pair: Figure 2 with quantity<200 → Figure 2 (quantity<100).
inline SchemaPair& Experiment2Pair() {
  static SchemaPair pair =
      LoadPair(workload::kRelaxedQuantityXsd, workload::kTargetXsd);
  return pair;
}

/// Single-schema pair (source == target == Figure 2): the update problem.
inline SchemaPair& SingleSchemaPair() {
  static SchemaPair pair = LoadPair(workload::kTargetXsd, workload::kTargetXsd);
  return pair;
}

/// The item-count grid of the paper's Table 2 / Figure 3.
inline constexpr size_t kItemGrid[] = {2, 50, 100, 200, 500, 1000};

/// Writes a flat JSON object of numeric metrics (tagged with the benchmark
/// name) so CI and scripts can consume results without scraping stdout.
/// Emits {"bench": "<name>", "<key>": <value>, ...} to `path`.
inline void WriteBenchJson(
    const char* path, const char* bench,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\"", bench);
  for (const auto& [key, value] : metrics) {
    std::fprintf(f, ",\n  \"%s\": %.6g", key.c_str(), value);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

}  // namespace xmlreval::bench

#endif  // XMLREVAL_BENCH_BENCH_UTIL_H_
