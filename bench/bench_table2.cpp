// Table 2 — "File sizes for input documents."
//
// Regenerates the paper's input corpus (purchase orders conforming to the
// Figure 2 schema with 2..1000 item elements) and reports serialized byte
// sizes next to the paper's. Absolute bytes depend on the exact values and
// whitespace the authors used; the shape — linear growth at ~216 bytes per
// item — is the comparison that matters.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/po_generator.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xmlreval;
  bench::ConsumeForceFlag(&argc, argv);

  // Paper's Table 2 values for reference.
  constexpr size_t kPaperSizes[] = {990, 11358, 22158, 43758, 108558, 216558};

  std::printf("Table 2: file sizes for input documents\n");
  std::printf("%-12s %-16s %-16s %s\n", "# items", "ours (bytes)",
              "paper (bytes)", "ours bytes/item");
  std::vector<std::pair<std::string, double>> metrics;
  size_t prev_size = 0, prev_items = 0;
  for (size_t i = 0; i < 6; ++i) {
    size_t items = bench::kItemGrid[i];
    workload::PoGeneratorOptions options;
    options.item_count = items;
    options.ship_date_percent = 50;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    std::string text = xml::Serialize(doc);
    double per_item =
        prev_items == 0
            ? 0.0
            : double(text.size() - prev_size) / double(items - prev_items);
    std::printf("%-12zu %-16zu %-16zu %.1f\n", items, text.size(),
                kPaperSizes[i], per_item);
    metrics.emplace_back("bytes_items_" + std::to_string(items),
                         double(text.size()));
    metrics.emplace_back("paper_bytes_items_" + std::to_string(items),
                         double(kPaperSizes[i]));
    prev_size = text.size();
    prev_items = items;
  }
  std::printf(
      "\n(paper: ~216 bytes/item marginal growth; both corpora scale "
      "linearly in the item count)\n");
  bench::WriteBenchJson("BENCH_table2.json", "table2", metrics);
  return 0;
}
