// Ablation A6 — streaming vs DOM validation: the paper's memory argument
// (§7: memory depends on the schemas, not the document) quantified.
//
// Pipelines compared, from XML TEXT to a verdict (experiment-1 pair, so
// the cast skips everything under the root):
//   * StreamingCastValidate      — SAX events, O(depth) live frames
//   * StreamingValidate          — SAX full validation (baseline)
//   * DOM parse + CastValidator  — what a DOM-based system pays end to end
//   * DOM parse + FullValidator
//
// The live-memory metric is reported as a counter: live_frames for the
// streaming validators (peak open-element stack) vs dom_nodes for the DOM
// pipelines (every node is materialized before validation starts).

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"
#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "core/streaming_validator.h"
#include "workload/po_generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

using namespace xmlreval;

std::string MakeText(size_t items) {
  workload::PoGeneratorOptions options;
  options.item_count = items;
  return xml::Serialize(workload::GeneratePurchaseOrder(options));
}

void BM_StreamingCast(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment1Pair();
  std::string text = MakeText(state.range(0));
  uint64_t frames = 0;
  for (auto _ : state) {
    core::StreamingReport report =
        core::StreamingCastValidate(text, *pair.relations);
    benchmark::DoNotOptimize(report.valid);
    frames = report.max_live_frames;
  }
  state.counters["live_frames"] = static_cast<double>(frames);
  state.counters["input_bytes"] = static_cast<double>(text.size());
}

void BM_StreamingFull(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment1Pair();
  std::string text = MakeText(state.range(0));
  uint64_t frames = 0;
  for (auto _ : state) {
    core::StreamingReport report =
        core::StreamingValidate(text, *pair.target);
    benchmark::DoNotOptimize(report.valid);
    frames = report.max_live_frames;
  }
  state.counters["live_frames"] = static_cast<double>(frames);
}

void BM_DomCast(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment1Pair();
  core::CastValidator validator(pair.relations.get());
  std::string text = MakeText(state.range(0));
  uint64_t nodes = 0;
  for (auto _ : state) {
    auto doc = xml::ParseXml(text);
    core::ValidationReport report = validator.Validate(*doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = doc->NodeCount();
  }
  state.counters["dom_nodes"] = static_cast<double>(nodes);
}

void BM_DomFull(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment1Pair();
  core::FullValidator validator(pair.target.get());
  std::string text = MakeText(state.range(0));
  uint64_t nodes = 0;
  for (auto _ : state) {
    auto doc = xml::ParseXml(text);
    core::ValidationReport report = validator.Validate(*doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = doc->NodeCount();
  }
  state.counters["dom_nodes"] = static_cast<double>(nodes);
}

#define GRID ->Arg(50)->Arg(500)->Arg(5000)
BENCHMARK(BM_StreamingCast) GRID;
BENCHMARK(BM_StreamingFull) GRID;
BENCHMARK(BM_DomCast) GRID;
BENCHMARK(BM_DomFull) GRID;

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("streaming")
