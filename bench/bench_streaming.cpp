// Ablation A6 — the streaming cast engine quantified: the paper's memory
// argument (§7: live state depends on the schemas and document DEPTH, not
// document SIZE) plus the raw-byte skip-scanner speedup that R_sub
// subsumption buys.
//
// Two corpora stress the two axes:
//
//   * WIDE — high fanout, heavily subsumed: source r(rec*) → target
//     r(rec+) with identical rec(k,v) declarations, so every rec pair is
//     in R_sub and the session byte-skips ~all of the payload. This is
//     where skip-scanning pays: the A/B is
//       skip_scan   — StreamingCastSession, subsumed subtrees handed to
//                     the SIMD SkipScanner (never tokenized)
//       tokenize    — same session with StreamingCastOptions{skip_scan =
//                     false}: every byte is tokenized, validation is
//                     merely suppressed inside subsumed subtrees
//       legacy      — StreamingCastValidate (the pre-session SAX path)
//     BM_WideSkipSpeedup interleaves skip and tokenize within each
//     iteration (back to back on the same buffer) so frequency scaling or
//     cache warm-up cannot favor one side; its `speedup` counter is the
//     acceptance ratio.
//
//   * DEEP — a 100k-deep single chain under a NON-subsumed pair (the
//     target drops a sibling the source allows, so no subtree can be
//     skipped and every element opens a frame). max_live_frames == depth
//     here: the honest worst case for the streaming memory claim.
//
// Counters (exported to BENCH_streaming.json by XMLREVAL_BENCH_JSON_MAIN):
//   ns_per_node           wall ns per document ELEMENT (same denominator —
//                         the DOM node count — for every pipeline, so
//                         skip-scan runs aren't flattered by visiting less)
//   bytes_skipped_pct     % of input bytes the SkipScanner consumed
//   max_live_frames       peak open-element stack (streaming memory)
//   stream_live_bytes     max_live_frames * ~frame + peak carry buffer
//   dom_peak_bytes        Document::MemoryUsage().total() after parse
//   dom_vs_stream_mem_ratio  dom_peak_bytes / stream_live_bytes
//   speedup               tokenize-everything ns / skip-scan ns (wide)

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench/bench_json_main.h"
#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "core/streaming_validator.h"
#include "schema/dtd_parser.h"
#include "xml/parser.h"

namespace {

using namespace xmlreval;

// An open frame is {TypeId, Symbol, bool, StateId, std::string}; 64 bytes
// is a round upper bound for the struct itself (text capacity is counted
// via peak_carry for the parser side and is empty for complex types).
constexpr double kFrameBytes = 64.0;

bench::SchemaPair LoadDtdPair(const char* source_dtd, const char* target_dtd,
                              std::vector<std::string> roots) {
  bench::SchemaPair pair;
  pair.alphabet = std::make_shared<automata::Alphabet>();
  schema::DtdParseOptions options;
  options.roots = std::move(roots);
  auto source = schema::ParseDtd(source_dtd, pair.alphabet, options);
  if (!source.ok()) std::abort();
  pair.source = std::make_unique<schema::Schema>(std::move(source).value());
  auto target = schema::ParseDtd(target_dtd, pair.alphabet, options);
  if (!target.ok()) std::abort();
  pair.target = std::make_unique<schema::Schema>(std::move(target).value());
  auto relations =
      core::TypeRelations::Compute(pair.source.get(), pair.target.get());
  if (!relations.ok()) std::abort();
  pair.relations =
      std::make_unique<core::TypeRelations>(std::move(relations).value());
  return pair;
}

/// Wide corpus: every <rec> pair is subsumed (identical declarations), the
/// root pair is not (rec* vs rec+), so the session validates the root's
/// content model and byte-skips each rec subtree.
bench::SchemaPair& WidePair() {
  static bench::SchemaPair pair = LoadDtdPair(
      "<!ELEMENT r (rec*)>"
      "<!ELEMENT rec (k, v+)>"
      "<!ELEMENT k (#PCDATA)>"
      "<!ELEMENT v (#PCDATA)>",
      "<!ELEMENT r (rec+)>"
      "<!ELEMENT rec (k, v+)>"
      "<!ELEMENT k (#PCDATA)>"
      "<!ELEMENT v (#PCDATA)>",
      {"r"});
  return pair;
}

std::string WideText(size_t recs) {
  std::string text = "<r>";
  text.reserve(recs * 300 + 8);
  for (size_t i = 0; i < recs; ++i) {
    text += "<rec><k>key</k>";
    for (int v = 0; v < 8; ++v) text += "<v>value-of-record-field</v>";
    text += "</rec>";
  }
  text += "</r>";
  return text;
}

/// Deep corpus: the target forbids the <pad> sibling the source allows, so
/// (n, n) is NOT subsumed — every level of the chain opens a live frame.
bench::SchemaPair& DeepPair() {
  static bench::SchemaPair pair = LoadDtdPair(
      "<!ELEMENT n (n?, pad*)>"
      "<!ELEMENT pad EMPTY>",
      "<!ELEMENT n (n?)>"
      "<!ELEMENT pad EMPTY>",
      {"n"});
  return pair;
}

std::string DeepText(size_t depth) {
  std::string text;
  text.reserve(depth * 8);
  for (size_t i = 0; i < depth; ++i) text += "<n>";
  for (size_t i = 0; i < depth; ++i) text += "</n>";
  return text;
}

uint64_t DomNodeCount(const std::string& text) {
  auto doc = xml::ParseXml(text);
  if (!doc.ok()) std::abort();
  return doc.value().NodeCount();
}

core::StreamingReport RunSession(const core::TypeRelations& relations,
                                 const std::string& text, bool skip_scan) {
  core::StreamingCastOptions options;
  options.skip_scan = skip_scan;
  core::StreamingCastSession session(relations, options);
  Status fed = session.Feed(text);
  (void)fed;
  return session.Finish();
}

double StreamLiveBytes(const core::StreamingReport& report) {
  return static_cast<double>(report.max_live_frames) * kFrameBytes +
         static_cast<double>(report.peak_carry_bytes);
}

void SessionCounters(benchmark::State& state, const std::string& text,
                     const core::StreamingReport& report, uint64_t doc_nodes,
                     double total_ns) {
  state.counters["ns_per_node"] =
      total_ns / (static_cast<double>(state.iterations()) *
                  static_cast<double>(doc_nodes));
  state.counters["bytes_skipped_pct"] =
      100.0 * static_cast<double>(report.bytes_skipped) /
      static_cast<double>(text.size());
  state.counters["max_live_frames"] =
      static_cast<double>(report.max_live_frames);
  state.counters["stream_live_bytes"] = StreamLiveBytes(report);
}

void BM_WideSkipScan(benchmark::State& state) {
  bench::SchemaPair& pair = WidePair();
  std::string text = WideText(state.range(0));
  uint64_t doc_nodes = DomNodeCount(text);
  core::StreamingReport report;
  double total_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    report = RunSession(*pair.relations, text, /*skip_scan=*/true);
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    benchmark::DoNotOptimize(report.valid);
  }
  if (!report.valid) std::abort();
  SessionCounters(state, text, report, doc_nodes, total_ns);
}

void BM_WideTokenizeAll(benchmark::State& state) {
  bench::SchemaPair& pair = WidePair();
  std::string text = WideText(state.range(0));
  uint64_t doc_nodes = DomNodeCount(text);
  core::StreamingReport report;
  double total_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    report = RunSession(*pair.relations, text, /*skip_scan=*/false);
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    benchmark::DoNotOptimize(report.valid);
  }
  if (!report.valid) std::abort();
  SessionCounters(state, text, report, doc_nodes, total_ns);
}

void BM_WideLegacy(benchmark::State& state) {
  bench::SchemaPair& pair = WidePair();
  std::string text = WideText(state.range(0));
  uint64_t doc_nodes = DomNodeCount(text);
  core::StreamingReport report;
  double total_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    report = core::StreamingCastValidate(text, *pair.relations);
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    benchmark::DoNotOptimize(report.valid);
  }
  if (!report.valid) std::abort();
  report.bytes_skipped = 0;  // legacy path tokenizes everything
  SessionCounters(state, text, report, doc_nodes, total_ns);
}

/// The acceptance A/B: one skip-scan pass and one tokenize-everything pass
/// back to back inside each iteration, same buffer, alternating — the
/// `speedup` counter is immune to run-order effects.
void BM_WideSkipSpeedup(benchmark::State& state) {
  bench::SchemaPair& pair = WidePair();
  std::string text = WideText(state.range(0));
  double skip_ns = 0;
  double tokenize_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    core::StreamingReport a = RunSession(*pair.relations, text, true);
    auto t1 = std::chrono::steady_clock::now();
    core::StreamingReport b = RunSession(*pair.relations, text, false);
    auto t2 = std::chrono::steady_clock::now();
    if (a.valid != b.valid) std::abort();
    skip_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    tokenize_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
  }
  state.counters["speedup"] = tokenize_ns / skip_ns;
}

void BM_WideDom(benchmark::State& state) {
  bench::SchemaPair& pair = WidePair();
  core::CastValidator validator(pair.relations.get());
  std::string text = WideText(state.range(0));
  uint64_t doc_nodes = DomNodeCount(text);
  core::StreamingReport stream =
      RunSession(*pair.relations, text, /*skip_scan=*/true);
  double dom_bytes = 0;
  double total_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto doc = xml::ParseXml(text);
    core::ValidationReport report = validator.Validate(doc.value());
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    benchmark::DoNotOptimize(report.valid);
    dom_bytes = static_cast<double>(doc.value().MemoryUsage().total());
  }
  state.counters["ns_per_node"] =
      total_ns / (static_cast<double>(state.iterations()) *
                  static_cast<double>(doc_nodes));
  state.counters["dom_peak_bytes"] = dom_bytes;
  state.counters["dom_vs_stream_mem_ratio"] =
      dom_bytes / StreamLiveBytes(stream);
}

void BM_DeepStreaming(benchmark::State& state) {
  bench::SchemaPair& pair = DeepPair();
  std::string text = DeepText(state.range(0));
  uint64_t doc_nodes = DomNodeCount(text);
  core::StreamingReport report;
  double total_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    report = RunSession(*pair.relations, text, /*skip_scan=*/true);
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    benchmark::DoNotOptimize(report.valid);
  }
  if (!report.valid) std::abort();
  if (report.max_live_frames != static_cast<uint64_t>(state.range(0))) {
    std::abort();  // the deep pair must not be subsumed
  }
  SessionCounters(state, text, report, doc_nodes, total_ns);
}

void BM_DeepDom(benchmark::State& state) {
  bench::SchemaPair& pair = DeepPair();
  core::CastValidator validator(pair.relations.get());
  std::string text = DeepText(state.range(0));
  uint64_t doc_nodes = DomNodeCount(text);
  core::StreamingReport stream =
      RunSession(*pair.relations, text, /*skip_scan=*/true);
  double dom_bytes = 0;
  double total_ns = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto doc = xml::ParseXml(text);
    core::ValidationReport report = validator.Validate(doc.value());
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    benchmark::DoNotOptimize(report.valid);
    dom_bytes = static_cast<double>(doc.value().MemoryUsage().total());
  }
  state.counters["ns_per_node"] =
      total_ns / (static_cast<double>(state.iterations()) *
                  static_cast<double>(doc_nodes));
  state.counters["dom_peak_bytes"] = dom_bytes;
  state.counters["dom_vs_stream_mem_ratio"] =
      dom_bytes / StreamLiveBytes(stream);
}

#define WIDE_GRID ->Arg(1000)->Arg(20000)
#define DEEP_GRID ->Arg(1000)->Arg(100000)
BENCHMARK(BM_WideSkipScan) WIDE_GRID;
BENCHMARK(BM_WideTokenizeAll) WIDE_GRID;
BENCHMARK(BM_WideLegacy) WIDE_GRID;
BENCHMARK(BM_WideSkipSpeedup) WIDE_GRID;
BENCHMARK(BM_WideDom) WIDE_GRID;
BENCHMARK(BM_DeepStreaming) DEEP_GRID;
BENCHMARK(BM_DeepDom) DEEP_GRID;

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("streaming")
