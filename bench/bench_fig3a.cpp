// Figure 3a — Experiment 1: validation time vs. item count when casting
// from the Figure 1a schema (billTo optional) to the Figure 2 schema
// (billTo required).
//
// Paper's claim: the schema-cast validator's time is CONSTANT in the
// document size (it decides at the root's content model and skips every
// subsumed subtree), while the Xerces baseline (full validation, here
// FullValidator) grows linearly. Expect the SchemaCast/* series to be flat
// and Baseline/* to scale with the argument.

#include <benchmark/benchmark.h>

#include "bench/bench_json_main.h"
#include "bench/bench_util.h"
#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "workload/po_generator.h"

namespace {

using namespace xmlreval;

xml::Document MakeDoc(size_t items) {
  workload::PoGeneratorOptions options;
  options.item_count = items;
  return workload::GeneratePurchaseOrder(options);
}

void BM_Fig3a_SchemaCast(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment1Pair();
  core::CastValidator validator(pair.relations.get());
  xml::Document doc = MakeDoc(state.range(0));
  (void)doc.Bind(pair.alphabet);  // symbol path: no Find per node
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

void BM_Fig3a_Baseline(benchmark::State& state) {
  bench::SchemaPair& pair = bench::Experiment1Pair();
  core::FullValidator validator(pair.target.get());
  xml::Document doc = MakeDoc(state.range(0));
  (void)doc.Bind(pair.alphabet);  // symbol path: no Find per node
  uint64_t nodes = 0;
  for (auto _ : state) {
    core::ValidationReport report = validator.Validate(doc);
    benchmark::DoNotOptimize(report.valid);
    nodes = report.counters.nodes_visited;
  }
  state.counters["nodes_visited"] = static_cast<double>(nodes);
}

void ItemGrid(benchmark::internal::Benchmark* b) {
  for (size_t items : bench::kItemGrid) b->Arg(static_cast<long>(items));
}

BENCHMARK(BM_Fig3a_SchemaCast)->Apply(ItemGrid);
BENCHMARK(BM_Fig3a_Baseline)->Apply(ItemGrid);

}  // namespace

XMLREVAL_BENCH_JSON_MAIN("fig3a")
