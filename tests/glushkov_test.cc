#include "automata/glushkov.h"

#include <gtest/gtest.h>

#include "automata/dfa.h"
#include "automata/regex_parser.h"
#include "tests/test_util.h"

namespace xmlreval::automata {
namespace {

GlushkovResult BuildOrDie(const std::string& regex, Alphabet* alphabet) {
  auto parsed = ParseRegex(regex, alphabet);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto expanded = ExpandRepeats(*parsed);
  EXPECT_TRUE(expanded.ok()) << expanded.status().ToString();
  auto result = BuildGlushkov(*expanded, alphabet->size());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// Acceptance through the raw Glushkov NFA via determinization.
bool Accepts(const GlushkovResult& g, const std::vector<Symbol>& word) {
  return DeterminizeNfa(g.nfa).Accepts(word);
}

TEST(GlushkovTest, EpsilonAcceptsOnlyEmpty) {
  Alphabet alphabet;
  alphabet.Intern("a");
  GlushkovResult g = BuildOrDie("()", &alphabet);
  EXPECT_TRUE(Accepts(g, {}));
  EXPECT_FALSE(Accepts(g, testutil::Word("a", &alphabet)));
}

TEST(GlushkovTest, SymbolAcceptsExactlyItself) {
  Alphabet alphabet;
  GlushkovResult g = BuildOrDie("a", &alphabet);
  EXPECT_FALSE(Accepts(g, {}));
  EXPECT_TRUE(Accepts(g, testutil::Word("a", &alphabet)));
  EXPECT_FALSE(Accepts(g, testutil::Word("aa", &alphabet)));
}

TEST(GlushkovTest, PaperContentModel) {
  // The POType1 content model: shipTo billTo? items.
  Alphabet alphabet;
  GlushkovResult g = BuildOrDie("(shipTo, billTo?, items)", &alphabet);
  EXPECT_TRUE(g.one_unambiguous);
  auto word = [&](std::initializer_list<const char*> labels) {
    std::vector<Symbol> out;
    for (const char* l : labels) out.push_back(alphabet.Intern(l));
    return out;
  };
  EXPECT_TRUE(Accepts(g, word({"shipTo", "billTo", "items"})));
  EXPECT_TRUE(Accepts(g, word({"shipTo", "items"})));
  EXPECT_FALSE(Accepts(g, word({"shipTo", "billTo"})));
  EXPECT_FALSE(Accepts(g, word({"billTo", "shipTo", "items"})));
  EXPECT_FALSE(Accepts(g, word({"shipTo", "billTo", "billTo", "items"})));
}

TEST(GlushkovTest, StarAndPlusSemantics) {
  Alphabet alphabet;
  GlushkovResult star = BuildOrDie("(a,b)*", &alphabet);
  EXPECT_TRUE(Accepts(star, {}));
  EXPECT_TRUE(Accepts(star, testutil::Word("ab", &alphabet)));
  EXPECT_TRUE(Accepts(star, testutil::Word("abab", &alphabet)));
  EXPECT_FALSE(Accepts(star, testutil::Word("aba", &alphabet)));

  GlushkovResult plus = BuildOrDie("(a,b)+", &alphabet);
  EXPECT_FALSE(Accepts(plus, {}));
  EXPECT_TRUE(Accepts(plus, testutil::Word("ab", &alphabet)));
}

TEST(GlushkovTest, DetectsAmbiguity) {
  // (a|b)*a is the classic non-1-unambiguous expression.
  Alphabet alphabet;
  GlushkovResult g = BuildOrDie("((a|b)*,a)", &alphabet);
  EXPECT_FALSE(g.one_unambiguous);
  EXPECT_EQ(alphabet.Name(g.conflict_symbol), "a");
}

TEST(GlushkovTest, OptionalOptionalSameSymbolIsAmbiguous) {
  // a?a? has two first-positions on 'a' — not 1-unambiguous even though
  // the language is {ε, a, aa}.
  Alphabet alphabet;
  GlushkovResult g = BuildOrDie("(a?,a?)", &alphabet);
  EXPECT_FALSE(g.one_unambiguous);
}

TEST(GlushkovTest, NestedOptionalSameSymbolIsDeterministic) {
  // (a(a)?)? — the encoding ExpandRepeats uses for a{0,2} — IS
  // 1-unambiguous and accepts the same language as a?a?.
  Alphabet alphabet;
  GlushkovResult g = BuildOrDie("(a,(a)?)?", &alphabet);
  EXPECT_TRUE(g.one_unambiguous);
  EXPECT_TRUE(Accepts(g, {}));
  EXPECT_TRUE(Accepts(g, testutil::Word("a", &alphabet)));
  EXPECT_TRUE(Accepts(g, testutil::Word("aa", &alphabet)));
  EXPECT_FALSE(Accepts(g, testutil::Word("aaa", &alphabet)));
}

TEST(GlushkovTest, DeterministicExpressionYieldsDeterministicNfa) {
  // For a 1-unambiguous expression the Glushkov NFA is a DFA: every state
  // has at most one target per symbol.
  Alphabet alphabet;
  GlushkovResult g = BuildOrDie("(a,(b|c)*,d?)", &alphabet);
  ASSERT_TRUE(g.one_unambiguous);
  for (StateId q = 0; q < g.nfa.num_states(); ++q) {
    for (const auto& [sym, targets] : g.nfa.TransitionsFrom(q)) {
      EXPECT_LE(targets.size(), 1u);
    }
  }
}

TEST(GlushkovTest, RejectsUnexpandedRepeats) {
  Alphabet alphabet;
  auto parsed = ParseRegex("a{2,3}", &alphabet);
  ASSERT_TRUE(parsed.ok());
  Result<GlushkovResult> result = BuildGlushkov(*parsed, alphabet.size());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GlushkovTest, EmptySetAcceptsNothing) {
  Alphabet alphabet;
  alphabet.Intern("a");
  RegexPtr r = Regex::EmptySet();
  ASSERT_OK_AND_ASSIGN(GlushkovResult g, BuildGlushkov(r, alphabet.size()));
  EXPECT_FALSE(Accepts(g, {}));
  EXPECT_FALSE(Accepts(g, testutil::Word("a", &alphabet)));
}

}  // namespace
}  // namespace xmlreval::automata
