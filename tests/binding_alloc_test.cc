// Allocation discipline of the bound validation hot loop.
//
// Replaces global operator new/delete with counting versions and checks
// that cast-validating a BOUND document performs no per-node heap
// allocations: the allocation count for a large document equals the count
// for a small one (what remains is O(depth) bookkeeping — the Dewey path
// vector — and is identical for both purchase orders, whose depth does
// not depend on the item count).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/cast_validator.h"
#include "core/relations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "xml/tree.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_allocs{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xmlreval {
namespace {

struct Fixture {
  std::shared_ptr<automata::Alphabet> alphabet;
  std::unique_ptr<schema::Schema> source;
  std::unique_ptr<schema::Schema> target;
  std::unique_ptr<core::TypeRelations> relations;
};

Fixture MakeFixture() {
  Fixture f;
  f.alphabet = std::make_shared<automata::Alphabet>();
  auto source = schema::ParseXsd(workload::kRelaxedQuantityXsd, f.alphabet);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  f.source = std::make_unique<schema::Schema>(std::move(source).value());
  auto target = schema::ParseXsd(workload::kTargetXsd, f.alphabet);
  EXPECT_TRUE(target.ok()) << target.status().ToString();
  f.target = std::make_unique<schema::Schema>(std::move(target).value());
  auto relations =
      core::TypeRelations::Compute(f.source.get(), f.target.get());
  EXPECT_TRUE(relations.ok()) << relations.status().ToString();
  f.relations =
      std::make_unique<core::TypeRelations>(std::move(relations).value());
  return f;
}

size_t AllocsDuringValidate(const core::CastValidator& validator,
                            const xml::Document& doc) {
  // One warm-up run, then count.
  core::ValidationReport warm = validator.Validate(doc);
  EXPECT_TRUE(warm.valid) << warm.violation;
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  core::ValidationReport report = validator.Validate(doc);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_TRUE(report.valid) << report.violation;
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(BindingAllocTest, BoundCastValidationDoesNotAllocatePerNode) {
  Fixture f = MakeFixture();
  core::CastValidator validator(f.relations.get());

  workload::PoGeneratorOptions small_opts;
  small_opts.item_count = 50;
  xml::Document small_doc = workload::GeneratePurchaseOrder(small_opts);
  ASSERT_OK(small_doc.Bind(f.alphabet));

  workload::PoGeneratorOptions big_opts;
  big_opts.item_count = 1000;
  xml::Document big_doc = workload::GeneratePurchaseOrder(big_opts);
  ASSERT_OK(big_doc.Bind(f.alphabet));

  size_t small_allocs = AllocsDuringValidate(validator, small_doc);
  size_t big_allocs = AllocsDuringValidate(validator, big_doc);

  // 20x the nodes, same allocation count: nothing in the bound hot loop
  // allocates per node. (Both runs pay the same O(depth) path-vector
  // growth; purchase-order depth is independent of the item count.)
  EXPECT_EQ(big_allocs, small_allocs)
      << "bound hot loop allocated per node: " << small_allocs << " vs "
      << big_allocs;
}

// The observability layer must not change the hot loop's allocation
// profile in either state: disabled instrumentation is a relaxed load and
// nothing else; enabled tracing records one fixed-size event per document
// into a PREALLOCATED ring — still zero allocations per node or per span.
TEST(BindingAllocTest, ObservabilityStatesDoNotAddAllocations) {
  Fixture f = MakeFixture();
  core::CastValidator validator(f.relations.get());

  workload::PoGeneratorOptions opts;
  opts.item_count = 500;
  xml::Document doc = workload::GeneratePurchaseOrder(opts);
  ASSERT_OK(doc.Bind(f.alphabet));

  // Warm the trace sink's ring and thread id outside the counted region.
  obs::TraceSink::Global().Clear();
  obs::TraceSink::CurrentThreadId();

  obs::SetEnabled(false);
  obs::SetTraceEnabled(false);
  size_t disabled_allocs = AllocsDuringValidate(validator, doc);

  obs::SetEnabled(true);
  size_t default_allocs = AllocsDuringValidate(validator, doc);

  obs::SetTraceEnabled(true);
  size_t traced_allocs = AllocsDuringValidate(validator, doc);
  obs::SetTraceEnabled(false);
#ifndef XMLREVAL_OBS_DISABLED
  // The traced runs really did hit the sink (warm-up + counted pass).
  EXPECT_GE(obs::TraceSink::Global().size(), 2u);
#endif
  obs::TraceSink::Global().Clear();

  EXPECT_EQ(default_allocs, disabled_allocs)
      << "enabling metrics changed the bound-cast allocation profile";
  EXPECT_EQ(traced_allocs, disabled_allocs)
      << "span recording allocated (ring should be preallocated)";
}

}  // namespace
}  // namespace xmlreval
