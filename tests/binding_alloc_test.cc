// Allocation discipline of the bound validation hot loop.
//
// Replaces global operator new/delete with counting versions and checks
// that cast-validating a BOUND document with a warmed CastScratch performs
// ZERO heap allocations: the explicit frontier and the multi-chunk
// simple-value buffer both live in caller-owned scratch whose capacity
// survives across runs, and the single-text-child fast path validates a
// string_view straight out of the document without materializing anything.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/cast_validator.h"
#include "core/relations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "xml/tree.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_allocs{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xmlreval {
namespace {

struct Fixture {
  std::shared_ptr<automata::Alphabet> alphabet;
  std::unique_ptr<schema::Schema> source;
  std::unique_ptr<schema::Schema> target;
  std::unique_ptr<core::TypeRelations> relations;
};

Fixture MakeFixture() {
  Fixture f;
  f.alphabet = std::make_shared<automata::Alphabet>();
  auto source = schema::ParseXsd(workload::kRelaxedQuantityXsd, f.alphabet);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  f.source = std::make_unique<schema::Schema>(std::move(source).value());
  auto target = schema::ParseXsd(workload::kTargetXsd, f.alphabet);
  EXPECT_TRUE(target.ok()) << target.status().ToString();
  f.target = std::make_unique<schema::Schema>(std::move(target).value());
  auto relations =
      core::TypeRelations::Compute(f.source.get(), f.target.get());
  EXPECT_TRUE(relations.ok()) << relations.status().ToString();
  f.relations =
      std::make_unique<core::TypeRelations>(std::move(relations).value());
  return f;
}

size_t AllocsDuringValidate(const core::CastValidator& validator,
                            const xml::Document& doc,
                            core::CastScratch* scratch = nullptr) {
  // One warm-up run (grows scratch capacity if provided), then count.
  core::ValidationReport warm =
      scratch ? validator.Validate(doc, scratch) : validator.Validate(doc);
  EXPECT_TRUE(warm.valid) << warm.violation;
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  core::ValidationReport report =
      scratch ? validator.Validate(doc, scratch) : validator.Validate(doc);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_TRUE(report.valid) << report.violation;
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(BindingAllocTest, BoundCastValidationWithScratchIsZeroAllocation) {
  Fixture f = MakeFixture();
  core::CastValidator validator(f.relations.get());

  for (size_t item_count : {size_t{50}, size_t{1000}}) {
    workload::PoGeneratorOptions opts;
    opts.item_count = item_count;
    xml::Document doc = workload::GeneratePurchaseOrder(opts);
    ASSERT_OK(doc.Bind(f.alphabet));

    core::CastScratch scratch;
    size_t allocs = AllocsDuringValidate(validator, doc, &scratch);
    EXPECT_EQ(allocs, 0u)
        << "bound hot loop allocated with warmed scratch (item_count="
        << item_count << ")";
  }
}

// A simple value split across several text nodes cannot use the
// string_view fast path; it is assembled into the scratch's reusable
// buffer instead — still zero allocations once the buffer holds capacity.
TEST(BindingAllocTest, MultiChunkSimpleValueReusesScratchBuffer) {
  auto alphabet = std::make_shared<automata::Alphabet>();
  auto src = schema::ParseXsd(R"(
    <schema><element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="v" type="integer"/>
      </sequence></complexType></schema>)",
                              alphabet);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  auto tgt = schema::ParseXsd(R"(
    <schema><element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="v" type="positiveInteger"/>
      </sequence></complexType></schema>)",
                              alphabet);
  ASSERT_TRUE(tgt.ok()) << tgt.status().ToString();
  schema::Schema source = std::move(src).value();
  schema::Schema target = std::move(tgt).value();
  auto relations = core::TypeRelations::Compute(&source, &target);
  ASSERT_TRUE(relations.ok()) << relations.status().ToString();
  core::CastValidator validator(&*relations);

  // <v> holds TWO text chunks ("4" + "2" = value "42") — only reachable
  // through the tree API; the parser coalesces adjacent text.
  xml::Document doc;
  xml::NodeId r = doc.CreateElement("r");
  xml::NodeId v = doc.CreateElement("v");
  ASSERT_OK(doc.SetRoot(r));
  ASSERT_OK(doc.AppendChild(r, v));
  ASSERT_OK(doc.AppendChild(v, doc.CreateText("4")));
  ASSERT_OK(doc.AppendChild(v, doc.CreateText("2")));
  ASSERT_OK(doc.Bind(alphabet));

  core::CastScratch scratch;
  size_t allocs = AllocsDuringValidate(validator, doc, &scratch);
  EXPECT_EQ(allocs, 0u)
      << "multi-chunk simple value allocated despite warmed scratch";
}

// The SoA accessor surface itself: a raw HotView preorder walk over the
// whole document — kind checks, symbol reads, link chasing, prefetches —
// touches only the parallel columns and must never materialize a string
// or any other heap block. This is the layer the cast frontier loop sits
// on; if it allocates, "zero allocations per node" is unrecoverable above.
TEST(BindingAllocTest, HotViewPreorderWalkIsZeroAllocation) {
  Fixture f = MakeFixture();
  workload::PoGeneratorOptions opts;
  opts.item_count = 1000;
  xml::Document doc = workload::GeneratePurchaseOrder(opts);
  ASSERT_OK(doc.Bind(f.alphabet));

  std::vector<xml::NodeId> stack;
  stack.reserve(doc.NodeCount());  // pre-size outside the counted region

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const xml::Document::HotView hv = doc.hot_view();
  size_t elements = 0, texts = 0;
  uint64_t symbol_sum = 0;
  stack.push_back(doc.root());
  while (!stack.empty()) {
    xml::NodeId node = stack.back();
    stack.pop_back();
    if (!stack.empty()) hv.PrefetchRow(stack.back());
    if (hv.IsText(node)) {
      ++texts;
      continue;
    }
    ++elements;
    symbol_sum += hv.symbol[node];
    for (xml::NodeId c = hv.last_child[node]; c != xml::kInvalidNode;
         c = hv.prev_sibling[c]) {
      stack.push_back(c);
    }
  }
  g_counting.store(false, std::memory_order_relaxed);

  EXPECT_EQ(elements + texts, doc.NodeCount());
  EXPECT_GT(symbol_sum, 0u);  // bound symbols actually read
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "HotView column walk allocated";
}

// Shrinking payload edits overwrite the string arena in place: renaming
// to a shorter label and rewriting a text node with shorter content must
// not touch the heap (growing edits may append to the arena).
TEST(BindingAllocTest, ShrinkingRenameAndSetTextAreZeroAllocation) {
  xml::Document doc;
  xml::NodeId root = doc.CreateElement("purchaseOrder");
  ASSERT_OK(doc.SetRoot(root));
  xml::NodeId t = doc.CreateText("0123456789");
  ASSERT_OK(doc.AppendChild(root, t));

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  Status rename_status = doc.Rename(root, "po");
  Status text_status = doc.SetText(t, "42");
  g_counting.store(false, std::memory_order_relaxed);

  ASSERT_OK(rename_status);
  ASSERT_OK(text_status);
  EXPECT_EQ(doc.label(root), "po");
  EXPECT_EQ(doc.text(t), "42");
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u)
      << "shrinking payload edits should reuse the arena bytes in place";
}

// The observability layer must not change the hot loop's allocation
// profile in either state: disabled instrumentation is a relaxed load and
// nothing else; enabled tracing records one fixed-size event per document
// into a PREALLOCATED ring — still zero allocations per node or per span.
TEST(BindingAllocTest, ObservabilityStatesDoNotAddAllocations) {
  Fixture f = MakeFixture();
  core::CastValidator validator(f.relations.get());

  workload::PoGeneratorOptions opts;
  opts.item_count = 500;
  xml::Document doc = workload::GeneratePurchaseOrder(opts);
  ASSERT_OK(doc.Bind(f.alphabet));

  // Warm the trace sink's ring and thread id outside the counted region.
  obs::TraceSink::Global().Clear();
  obs::TraceSink::CurrentThreadId();

  obs::SetEnabled(false);
  obs::SetTraceEnabled(false);
  size_t disabled_allocs = AllocsDuringValidate(validator, doc);

  obs::SetEnabled(true);
  size_t default_allocs = AllocsDuringValidate(validator, doc);

  obs::SetTraceEnabled(true);
  size_t traced_allocs = AllocsDuringValidate(validator, doc);
  obs::SetTraceEnabled(false);
#ifndef XMLREVAL_OBS_DISABLED
  // The traced runs really did hit the sink (warm-up + counted pass).
  EXPECT_GE(obs::TraceSink::Global().size(), 2u);
#endif
  obs::TraceSink::Global().Clear();

  EXPECT_EQ(default_allocs, disabled_allocs)
      << "enabling metrics changed the bound-cast allocation profile";
  EXPECT_EQ(traced_allocs, disabled_allocs)
      << "span recording allocated (ring should be preallocated)";
}

}  // namespace
}  // namespace xmlreval
