// Whole-pipeline property tests over RANDOM schema pairs: generate a
// schema S, mutate it into S', sample documents valid under S, and require
// every component to agree with ground truth. This is the widest net in
// the suite — any soundness bug in the relations, a validator, the
// corrector, or the streaming path shows up here as a disagreement.

#include <gtest/gtest.h>

#include "core/cast_validator.h"
#include "core/corrector.h"
#include "core/full_validator.h"
#include "core/mod_validator.h"
#include "core/relations.h"
#include "core/streaming_validator.h"
#include "schema/abstract_schema.h"
#include "tests/test_util.h"
#include "workload/random_docs.h"
#include "workload/random_schemas.h"
#include "workload/update_workload.h"
#include "xml/editor.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval::core {
namespace {

using schema::Schema;

struct RandomPair {
  std::shared_ptr<schema::Alphabet> alphabet;
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;
};

RandomPair MakePair(uint64_t seed) {
  RandomPair pair;
  pair.alphabet = std::make_shared<schema::Alphabet>();
  workload::RandomSchemaOptions schema_options;
  schema_options.seed = seed;
  schema_options.complex_types = 3 + seed % 4;
  schema_options.all_group_percent = 25;  // exercise preset-DFA types
  auto source = workload::GenerateRandomSchema(pair.alphabet, schema_options);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  pair.source = std::make_unique<Schema>(std::move(source).value());
  workload::MutationOptions mutation_options;
  mutation_options.seed = seed * 7 + 1;
  mutation_options.mutations = 1 + seed % 4;
  auto target = workload::MutateSchema(*pair.source, mutation_options);
  EXPECT_TRUE(target.ok()) << target.status().ToString();
  pair.target = std::make_unique<Schema>(std::move(target).value());
  auto relations =
      TypeRelations::Compute(pair.source.get(), pair.target.get());
  EXPECT_TRUE(relations.ok()) << relations.status().ToString();
  pair.relations =
      std::make_unique<TypeRelations>(std::move(relations).value());
  return pair;
}

class PipelineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineProperty, SampledDocumentsAreSourceValid) {
  RandomPair pair = MakePair(GetParam());
  FullValidator source_full(pair.source.get());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed;
    options.root_label = "root";
    options.max_elements = 50;
    auto doc = workload::SampleDocument(*pair.source, options);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    ValidationReport report = source_full.Validate(*doc);
    EXPECT_TRUE(report.valid)
        << "pair seed " << GetParam() << ", doc seed " << seed << ": "
        << report.violation;
  }
}

TEST_P(PipelineProperty, CastAgreesWithFullValidation) {
  RandomPair pair = MakePair(GetParam());
  CastValidator cast(pair.relations.get());
  FullValidator target_full(pair.target.get());
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 17;
    options.root_label = "root";
    options.max_elements = 50;
    auto doc = workload::SampleDocument(*pair.source, options);
    ASSERT_TRUE(doc.ok());
    ValidationReport cast_report = cast.Validate(*doc);
    ValidationReport full_report = target_full.Validate(*doc);
    EXPECT_EQ(cast_report.valid, full_report.valid)
        << "pair seed " << GetParam() << ", doc seed " << seed
        << "\n  cast: " << cast_report.violation
        << "\n  full: " << full_report.violation << "\n  doc:\n"
        << xml::Serialize(*doc);
    EXPECT_LE(cast_report.counters.nodes_visited,
              full_report.counters.nodes_visited + 1);
  }
}

TEST_P(PipelineProperty, StreamingCastAgreesWithDomCast) {
  RandomPair pair = MakePair(GetParam());
  CastValidator cast(pair.relations.get());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 23 + 5;
    options.root_label = "root";
    options.max_elements = 40;
    auto doc = workload::SampleDocument(*pair.source, options);
    ASSERT_TRUE(doc.ok());
    std::string text = xml::Serialize(*doc);
    StreamingReport streamed = StreamingCastValidate(text, *pair.relations);
    ValidationReport reference = cast.Validate(*doc);
    EXPECT_EQ(streamed.valid, reference.valid)
        << "pair seed " << GetParam() << ", doc seed " << seed
        << "\n  stream: " << streamed.violation
        << "\n  dom: " << reference.violation;
  }
}

TEST_P(PipelineProperty, ModValidatorAgreesWithGroundTruth) {
  RandomPair pair = MakePair(GetParam());
  ModValidator incremental(pair.relations.get());
  FullValidator target_full(pair.target.get());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 29 + 3;
    options.root_label = "root";
    options.max_elements = 40;
    auto doc = workload::SampleDocument(*pair.source, options);
    ASSERT_TRUE(doc.ok());

    xml::DocumentEditor editor(&*doc);
    workload::UpdateWorkloadOptions update_options;
    update_options.seed = seed * 31 + GetParam();
    update_options.edit_count = 1 + seed % 4;
    auto applied =
        workload::ApplyRandomUpdates(&*doc, &editor, update_options);
    ASSERT_TRUE(applied.ok());

    xml::ModificationIndex mods = editor.Seal();
    ValidationReport incremental_report = incremental.Validate(*doc, mods);
    ASSERT_OK(editor.Commit());
    ValidationReport ground_truth = target_full.Validate(*doc);
    EXPECT_EQ(incremental_report.valid, ground_truth.valid)
        << "pair seed " << GetParam() << ", doc seed " << seed
        << "\n  incremental: " << incremental_report.violation
        << "\n  ground truth: " << ground_truth.violation << "\n  doc:\n"
        << xml::Serialize(*doc);
  }
}

// Binding-coherence invariant: after arbitrary edit batches and parse
// round-trips, every live element of a bound document satisfies
// symbol(n) == alphabet.Find(label(n)) (kUnboundSymbol on a miss).
void ExpectBindingCoherent(const xml::Document& doc,
                           const schema::Alphabet& alphabet,
                           uint64_t pair_seed, uint64_t doc_seed) {
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    if (!doc.IsAlive(n) || !doc.IsElement(n)) continue;
    auto found = alphabet.Find(doc.label(n));
    automata::Symbol want = found ? *found : automata::kUnboundSymbol;
    ASSERT_EQ(doc.symbol(n), want)
        << "pair seed " << pair_seed << ", doc seed " << doc_seed
        << ", label " << doc.label(n);
  }
}

TEST_P(PipelineProperty, BindingStaysCoherentUnderEditsAndRoundTrips) {
  RandomPair pair = MakePair(GetParam());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 37 + 11;
    options.root_label = "root";
    options.max_elements = 40;
    auto doc = workload::SampleDocument(*pair.source, options);
    ASSERT_TRUE(doc.ok());
    ASSERT_OK(doc->Bind(pair.alphabet));
    ExpectBindingCoherent(*doc, *pair.alphabet, GetParam(), seed);

    // Random edit batch (insert/delete/rename mix), then commit.
    xml::DocumentEditor editor(&*doc);
    workload::UpdateWorkloadOptions update_options;
    update_options.seed = seed * 41 + GetParam();
    update_options.edit_count = 1 + seed % 5;
    auto applied =
        workload::ApplyRandomUpdates(&*doc, &editor, update_options);
    ASSERT_TRUE(applied.ok());
    editor.Seal();
    ASSERT_OK(editor.Commit());
    ExpectBindingCoherent(*doc, *pair.alphabet, GetParam(), seed);

    // Serialize → reparse with an interning alphabet: coherent again.
    std::string text = xml::Serialize(*doc);
    xml::ParseOptions parse_options;
    parse_options.intern_alphabet = pair.alphabet;
    auto reparsed = xml::ParseXml(text, parse_options);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    ASSERT_TRUE(reparsed->BoundTo(*pair.alphabet));
    ExpectBindingCoherent(*reparsed, *pair.alphabet, GetParam(), seed);
  }
}

TEST_P(PipelineProperty, BoundAndUnboundValidationAgree) {
  RandomPair pair = MakePair(GetParam());
  CastValidator cast(pair.relations.get());
  FullValidator target_full(pair.target.get());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 43 + 7;
    options.root_label = "root";
    options.max_elements = 40;
    auto doc = workload::SampleDocument(*pair.source, options);
    ASSERT_TRUE(doc.ok());

    ValidationReport unbound_cast = cast.Validate(*doc);
    ValidationReport unbound_full = target_full.Validate(*doc);
    ASSERT_OK(doc->Bind(pair.alphabet));
    ValidationReport bound_cast = cast.Validate(*doc);
    ValidationReport bound_full = target_full.Validate(*doc);

    EXPECT_EQ(bound_cast.valid, unbound_cast.valid)
        << "pair seed " << GetParam() << ", doc seed " << seed
        << "\n  bound: " << bound_cast.violation
        << "\n  unbound: " << unbound_cast.violation;
    EXPECT_EQ(bound_full.valid, unbound_full.valid)
        << "pair seed " << GetParam() << ", doc seed " << seed
        << "\n  bound: " << bound_full.violation
        << "\n  unbound: " << unbound_full.violation;
    // Same traversal either way — only the symbol source differs.
    EXPECT_EQ(bound_cast.counters.nodes_visited,
              unbound_cast.counters.nodes_visited);
  }
}

TEST_P(PipelineProperty, CorrectorProducesTargetValidDocuments) {
  RandomPair pair = MakePair(GetParam());
  DocumentCorrector corrector(pair.relations.get());
  FullValidator target_full(pair.target.get());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 41 + 7;
    options.root_label = "root";
    options.max_elements = 40;
    auto doc = workload::SampleDocument(*pair.source, options);
    ASSERT_TRUE(doc.ok());
    auto report = corrector.Correct(&*doc);
    ASSERT_TRUE(report.ok())
        << "pair seed " << GetParam() << ": " << report.status().ToString();
    ValidationReport check = target_full.Validate(*doc);
    EXPECT_TRUE(check.valid)
        << "pair seed " << GetParam() << ", doc seed " << seed << ": "
        << check.violation << " after " << report->steps.size()
        << " repairs\n  doc:\n"
        << xml::Serialize(*doc);
  }
}

TEST_P(PipelineProperty, SubsumptionIsSemanticallySound) {
  // For every subsumed pair (s, t): a document sampled with s at the root
  // must be valid for t. Checked via per-type subtree validation.
  RandomPair pair = MakePair(GetParam());
  FullValidator target_full(pair.target.get());
  // Sample docs from the source root and spot-check the subsumed root pair
  // (deep per-type sampling is covered by the cast-agreement test).
  schema::TypeId s_root =
      pair.source->RootType(*pair.alphabet->Find("root"));
  schema::TypeId t_root =
      pair.target->RootType(*pair.alphabet->Find("root"));
  if (!pair.relations->Subsumed(s_root, t_root)) return;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 53;
    options.root_label = "root";
    options.max_elements = 40;
    auto doc = workload::SampleDocument(*pair.source, options);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(target_full.Validate(*doc).valid)
        << "R_sub claimed subsumption but a source document is "
           "target-invalid (pair seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace xmlreval::core
