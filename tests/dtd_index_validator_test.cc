#include "core/dtd_index_validator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/full_validator.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "workload/random_docs.h"
#include "xml/parser.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;

struct Fixture {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void Load(const char* source_dtd, const char* target_dtd) {
    auto s = ParseDtd(source_dtd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = ParseDtd(target_dtd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

TEST(DtdIndexValidatorTest, PurchaseOrderCast) {
  Fixture f;
  f.Load(workload::kSourceDtd, workload::kPurchaseOrderDtd);
  ASSERT_OK_AND_ASSIGN(DtdIndexValidator validator,
                       DtdIndexValidator::Create(f.relations.get()));
  // Only purchaseOrder's content differs (billTo? vs billTo).
  std::vector<std::string> checked = validator.CheckedLabels();
  ASSERT_EQ(checked.size(), 1u);
  EXPECT_EQ(checked[0], "purchaseOrder");

  workload::PoGeneratorOptions options;
  options.item_count = 30;
  xml::Document with_bill = workload::GeneratePurchaseOrder(options);
  xml::LabelIndex index = xml::LabelIndex::Build(with_bill);
  ValidationReport r = validator.Validate(with_bill, index);
  EXPECT_TRUE(r.valid) << r.violation;
  // One instance of purchaseOrder checked — nothing else visited.
  EXPECT_EQ(r.counters.elements_visited, 1u);

  options.include_bill_to = false;
  xml::Document without_bill = workload::GeneratePurchaseOrder(options);
  xml::LabelIndex index2 = xml::LabelIndex::Build(without_bill);
  ValidationReport r2 = validator.Validate(without_bill, index2);
  EXPECT_FALSE(r2.valid);
}

TEST(DtdIndexValidatorTest, DisjointLabelRejectsViaIndex) {
  Fixture f;
  f.Load("<!ELEMENT r (x*)><!ELEMENT x (a)><!ELEMENT a EMPTY>"
         "<!ELEMENT b EMPTY>",
         "<!ELEMENT r (x*)><!ELEMENT x (b)><!ELEMENT a EMPTY>"
         "<!ELEMENT b EMPTY>");
  ASSERT_OK_AND_ASSIGN(DtdIndexValidator validator,
                       DtdIndexValidator::Create(f.relations.get()));
  auto doc = xml::ParseXml("<r><x><a/></x></r>");
  ASSERT_TRUE(doc.ok());
  xml::LabelIndex index = xml::LabelIndex::Build(*doc);
  ValidationReport r = validator.Validate(*doc, index);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.counters.disjoint_rejects, 1u);
  // An r with no x children has no disjoint-label instances: valid.
  auto empty = xml::ParseXml("<r/>");
  ASSERT_TRUE(empty.ok());
  xml::LabelIndex empty_index = xml::LabelIndex::Build(*empty);
  EXPECT_TRUE(validator.Validate(*empty, empty_index).valid);
}

TEST(DtdIndexValidatorTest, RejectsNonDtdSchemas) {
  // XSD where 'v' has different types under different parents.
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="x" type="X"/>
        <element name="y" type="Y"/>
      </sequence></complexType>
      <complexType name="X"><sequence>
        <element name="v" type="integer"/>
      </sequence></complexType>
      <complexType name="Y"><sequence>
        <element name="v" type="string"/>
      </sequence></complexType>
    </schema>)";
  auto s = schema::ParseXsd(xsd, alphabet);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  Schema source = std::move(s).value();
  auto t = schema::ParseXsd(xsd, alphabet);
  ASSERT_TRUE(t.ok());
  Schema target = std::move(t).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&source, &target));
  Result<DtdIndexValidator> validator = DtdIndexValidator::Create(&relations);
  ASSERT_FALSE(validator.ok());
  EXPECT_EQ(validator.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DtdIndexValidatorTest, AgreesWithFullValidation) {
  Fixture f;
  f.Load("<!ELEMENT r (rec*)><!ELEMENT rec (k, v?)>"
         "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
         "<!ELEMENT r (rec*)><!ELEMENT rec (k, v)>"
         "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>");
  ASSERT_OK_AND_ASSIGN(DtdIndexValidator validator,
                       DtdIndexValidator::Create(f.relations.get()));
  FullValidator full(f.target.get());
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed;
    options.root_label = "r";
    options.max_elements = 25;
    auto doc = workload::SampleDocument(*f.source, options);
    ASSERT_TRUE(doc.ok());
    xml::LabelIndex index = xml::LabelIndex::Build(*doc);
    EXPECT_EQ(validator.Validate(*doc, index).valid,
              full.Validate(*doc).valid)
        << "seed=" << seed;
  }
}

TEST(DtdIndexValidatorTest, ChecksSimpleTypesWhenTheyDiffer) {
  // With DTDs all leaves are strings, so craft DTD-like XSDs instead:
  // every label has one type, but quantity's facet differs.
  auto alphabet = std::make_shared<Alphabet>();
  auto s = schema::ParseXsd(workload::kRelaxedQuantityXsd, alphabet);
  ASSERT_TRUE(s.ok());
  Schema source = std::move(s).value();
  auto t = schema::ParseXsd(workload::kTargetXsd, alphabet);
  ASSERT_TRUE(t.ok());
  Schema target = std::move(t).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&source, &target));
  ASSERT_OK_AND_ASSIGN(DtdIndexValidator validator,
                       DtdIndexValidator::Create(&relations));
  // Non-subsumption propagates from quantity up its ancestor chain
  // (Definition 4's refinement), so the checked set is exactly
  // {purchaseOrder, items, item, quantity} — the spine to the difference.
  std::vector<std::string> checked = validator.CheckedLabels();
  std::sort(checked.begin(), checked.end());
  EXPECT_EQ(checked, (std::vector<std::string>{"item", "items",
                                               "purchaseOrder", "quantity"}));

  workload::PoGeneratorOptions options;
  options.item_count = 40;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  xml::LabelIndex index = xml::LabelIndex::Build(doc);
  ValidationReport r = validator.Validate(doc, index);
  EXPECT_TRUE(r.valid) << r.violation;
  EXPECT_EQ(r.counters.simple_checks, 40u);

  options.quantity_min = 120;
  options.quantity_max = 190;
  xml::Document bad = workload::GeneratePurchaseOrder(options);
  xml::LabelIndex bad_index = xml::LabelIndex::Build(bad);
  EXPECT_FALSE(validator.Validate(bad, bad_index).valid);
}

}  // namespace
}  // namespace xmlreval::core
