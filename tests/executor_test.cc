// The work-stealing Executor and TaskGroup (src/common/executor.h).

#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace xmlreval::common {
namespace {

// The old ThreadPool contract, inherited by the executor: everything
// accepted before destruction runs.
TEST(ExecutorTest, RunsAllTasksAndDrainsOnShutdown) {
  std::atomic<int> ran{0};
  {
    Executor::Options options;
    options.threads = 4;
    options.queue_capacity = 8;
    Executor executor(options);
    EXPECT_EQ(executor.thread_count(), 4u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(executor.Submit([&] { ran.fetch_add(1); }));
    }
  }  // destructor drains + joins
  EXPECT_EQ(ran.load(), 100);
}

// Regression: a Push accepted just before Shutdown's Close() must run even
// when every worker's scan raced ahead of it. Workers used to exit on the
// first empty scan that observed stop_, dropping such a task (and hanging
// any caller waiting on its completion). Hammer the Submit/Shutdown race
// and check accepted == executed every round.
TEST(ExecutorTest, SubmitRacingShutdownNeverDropsAcceptedTask) {
  for (int round = 0; round < 50; ++round) {
    Executor::Options options;
    options.threads = 2;
    options.queue_capacity = 4;
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    Executor executor(options);
    std::thread submitter([&] {
      while (executor.Submit([&] { executed.fetch_add(1); })) {
        accepted.fetch_add(1);
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(50 * (round % 5)));
    executor.Shutdown();
    submitter.join();
    EXPECT_EQ(accepted.load(), executed.load()) << "round " << round;
  }
}

TEST(ExecutorTest, SubmitRefusedAfterShutdown) {
  Executor executor(Executor::Options{.threads = 2});
  executor.Shutdown();
  EXPECT_FALSE(executor.Submit([] {}));
  executor.Shutdown();  // idempotent
}

TEST(ExecutorTest, StatsCountSubmittedAndExecuted) {
  Executor executor(Executor::Options{.threads = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(executor.Submit([&] { ran.fetch_add(1); }));
  }
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 50);
  Executor::Stats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 50u);
  EXPECT_EQ(stats.executed, 50u);
}

// A worker-side fan-out that the spawning worker cannot drain alone (it
// blocks in the middle) forces peers to steal from its deque.
TEST(ExecutorTest, IdleWorkersStealFromBusyPeer) {
  Executor executor(Executor::Options{.threads = 4});
  constexpr int kSubtasks = 64;
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  TaskGroup group(&executor);
  group.Spawn([&] {
    // Fan out onto THIS worker's deque, then park until someone else has
    // made progress — the only way `ran` can move is via stealing.
    TaskGroup inner(&executor);
    for (int i = 0; i < kSubtasks; ++i) {
      inner.Spawn([&] { ran.fetch_add(1); });
    }
    while (ran.load() < kSubtasks / 2 && !release.load()) {
      std::this_thread::yield();
    }
    inner.Wait();
  });
  // Safety valve so a broken steal path fails the assertions instead of
  // hanging the suite.
  std::atomic<bool> done{false};
  std::thread watchdog([&] {
    for (int i = 0; i < 300 && !done.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    release.store(true);
  });
  group.Wait();
  release.store(true);
  done.store(true);
  watchdog.join();
  EXPECT_EQ(ran.load(), kSubtasks);
  EXPECT_GT(executor.stats().stolen, 0u);
}

TEST(ExecutorTest, OnWorkerThreadDistinguishesWorkers) {
  Executor executor(Executor::Options{.threads = 1});
  EXPECT_FALSE(executor.OnWorkerThread());
  std::atomic<bool> on_worker{false};
  TaskGroup group(&executor);
  group.Spawn([&] { on_worker.store(executor.OnWorkerThread()); });
  group.Wait();
  EXPECT_TRUE(on_worker.load());
}

TEST(ExecutorTest, QueueDepthHookMirrorsQueueAndSettlesToZero) {
  std::atomic<int64_t> depth{0};
  std::atomic<int64_t> max_depth{0};
  Executor::Options options;
  options.threads = 2;
  options.depth_hook = [&](int64_t delta) {
    int64_t now = depth.fetch_add(delta) + delta;
    int64_t seen = max_depth.load();
    while (now > seen && !max_depth.compare_exchange_weak(seen, now)) {
    }
  };
  {
    Executor executor(options);
    std::atomic<bool> gate{false};
    TaskGroup group(&executor);
    for (int i = 0; i < 32; ++i) {
      group.Spawn([&] {
        while (!gate.load()) std::this_thread::yield();
      });
    }
    gate.store(true);
    group.Wait();
    EXPECT_EQ(executor.QueueDepth(), 0u);
  }
  EXPECT_EQ(depth.load(), 0);
  EXPECT_GT(max_depth.load(), 0);
}

// HasIdleWorker is the lazy-splitting heuristic: with a single worker
// busy, it must read false (1-thread runs never split).
TEST(ExecutorTest, SingleBusyWorkerReportsNoIdlePeer) {
  Executor executor(Executor::Options{.threads = 1});
  std::atomic<bool> checked{false};
  bool idle_seen = true;
  TaskGroup group(&executor);
  group.Spawn([&] {
    idle_seen = executor.HasIdleWorker();
    checked.store(true);
  });
  group.Wait();
  ASSERT_TRUE(checked.load());
  EXPECT_FALSE(idle_seen);
}

// Tasks spawned BY running tasks after Shutdown began still run before
// the workers exit (the drain guarantee the cast engine relies on).
TEST(ExecutorTest, WorkerSideSpawnsDuringDrainStillRun) {
  std::atomic<int> ran{0};
  {
    Executor executor(Executor::Options{.threads = 2});
    TaskGroup group(&executor);
    group.Spawn([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      TaskGroup inner(&executor);
      for (int i = 0; i < 8; ++i) inner.Spawn([&] { ran.fetch_add(1); });
      inner.Wait();
    });
    // Destructor path: Shutdown may begin while the outer task sleeps.
    group.Wait();
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(TaskGroupTest, WaitCoversTransitiveSpawns) {
  Executor executor(Executor::Options{.threads = 4});
  std::atomic<int> ran{0};
  TaskGroup group(&executor);
  for (int i = 0; i < 4; ++i) {
    group.Spawn([&] {
      for (int j = 0; j < 4; ++j) {
        group.Spawn([&] { ran.fetch_add(1); });
      }
      ran.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 4 + 16);
}

TEST(TaskGroupTest, SpawnAfterShutdownRunsInline) {
  Executor executor(Executor::Options{.threads = 2});
  executor.Shutdown();
  std::atomic<int> ran{0};
  TaskGroup group(&executor);
  group.Spawn([&] { ran.fetch_add(1); });
  group.Wait();  // inline fallback already finished it
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace xmlreval::common
