#include "xml/tree.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xmlreval::xml {
namespace {

TEST(DocumentTest, BuildSmallTree) {
  Document doc;
  NodeId root = doc.CreateElement("root");
  ASSERT_OK(doc.SetRoot(root));
  NodeId a = doc.CreateElement("a");
  NodeId b = doc.CreateElement("b");
  ASSERT_OK(doc.AppendChild(root, a));
  ASSERT_OK(doc.AppendChild(root, b));
  NodeId text = doc.CreateText("hello");
  ASSERT_OK(doc.AppendChild(a, text));

  EXPECT_EQ(doc.root(), root);
  EXPECT_EQ(doc.first_child(root), a);
  EXPECT_EQ(doc.last_child(root), b);
  EXPECT_EQ(doc.next_sibling(a), b);
  EXPECT_EQ(doc.prev_sibling(b), a);
  EXPECT_EQ(doc.parent(a), root);
  EXPECT_EQ(doc.label(a), "a");
  EXPECT_EQ(doc.text(text), "hello");
  EXPECT_TRUE(doc.IsElement(a));
  EXPECT_TRUE(doc.IsText(text));
  EXPECT_EQ(doc.CountChildren(root), 2u);
  EXPECT_EQ(doc.SubtreeSize(root), 4u);
}

TEST(DocumentTest, InsertBeforeAfterFirstChild) {
  Document doc;
  NodeId root = doc.CreateElement("r");
  ASSERT_OK(doc.SetRoot(root));
  NodeId b = doc.CreateElement("b");
  ASSERT_OK(doc.AppendChild(root, b));
  NodeId a = doc.CreateElement("a");
  ASSERT_OK(doc.InsertBefore(b, a));
  NodeId c = doc.CreateElement("c");
  ASSERT_OK(doc.InsertAfter(b, c));
  NodeId zero = doc.CreateElement("zero");
  ASSERT_OK(doc.InsertFirstChild(root, zero));

  std::vector<std::string> labels;
  for (NodeId n : doc.Children(root)) labels.emplace_back(doc.label(n));
  EXPECT_EQ(labels, (std::vector<std::string>{"zero", "a", "b", "c"}));
}

TEST(DocumentTest, RemoveLeafSplicesSiblings) {
  Document doc;
  NodeId root = doc.CreateElement("r");
  ASSERT_OK(doc.SetRoot(root));
  NodeId a = doc.CreateElement("a");
  NodeId b = doc.CreateElement("b");
  NodeId c = doc.CreateElement("c");
  ASSERT_OK(doc.AppendChild(root, a));
  ASSERT_OK(doc.AppendChild(root, b));
  ASSERT_OK(doc.AppendChild(root, c));

  ASSERT_OK(doc.RemoveLeaf(b));
  EXPECT_FALSE(doc.IsAlive(b));
  EXPECT_EQ(doc.next_sibling(a), c);
  EXPECT_EQ(doc.prev_sibling(c), a);
  EXPECT_EQ(doc.CountChildren(root), 2u);

  // Removing head and tail.
  ASSERT_OK(doc.RemoveLeaf(a));
  EXPECT_EQ(doc.first_child(root), c);
  ASSERT_OK(doc.RemoveLeaf(c));
  EXPECT_FALSE(doc.HasChildren(root));
}

TEST(DocumentTest, RemoveLeafRejectsInteriorNodes) {
  Document doc;
  NodeId root = doc.CreateElement("r");
  ASSERT_OK(doc.SetRoot(root));
  NodeId a = doc.CreateElement("a");
  ASSERT_OK(doc.AppendChild(root, a));
  NodeId leaf = doc.CreateElement("leaf");
  ASSERT_OK(doc.AppendChild(a, leaf));
  EXPECT_EQ(doc.RemoveLeaf(a).code(), StatusCode::kFailedPrecondition);
  ASSERT_OK(doc.RemoveLeaf(leaf));
  ASSERT_OK(doc.RemoveLeaf(a));  // now a leaf
}

TEST(DocumentTest, AttachmentErrors) {
  Document doc;
  NodeId root = doc.CreateElement("r");
  ASSERT_OK(doc.SetRoot(root));
  NodeId a = doc.CreateElement("a");
  ASSERT_OK(doc.AppendChild(root, a));
  // Already attached.
  EXPECT_FALSE(doc.AppendChild(root, a).ok());
  // Second root.
  NodeId other = doc.CreateElement("other");
  EXPECT_FALSE(doc.SetRoot(other).ok());
  // Text as root.
  Document doc2;
  NodeId t = doc2.CreateText("x");
  EXPECT_FALSE(doc2.SetRoot(t).ok());
  // Insert relative to a detached node.
  Document doc3;
  NodeId lone = doc3.CreateElement("lone");
  NodeId n = doc3.CreateElement("n");
  EXPECT_EQ(doc3.InsertBefore(lone, n).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DocumentTest, RenameAndSetText) {
  Document doc;
  NodeId root = doc.CreateElement("r");
  ASSERT_OK(doc.SetRoot(root));
  ASSERT_OK(doc.Rename(root, "renamed"));
  EXPECT_EQ(doc.label(root), "renamed");
  EXPECT_FALSE(doc.Rename(root, "bad name").ok());
  NodeId t = doc.CreateText("old");
  ASSERT_OK(doc.AppendChild(root, t));
  ASSERT_OK(doc.SetText(t, "new"));
  EXPECT_EQ(doc.text(t), "new");
  EXPECT_FALSE(doc.SetText(root, "x").ok());
  EXPECT_FALSE(doc.Rename(t, "x").ok());
}

TEST(DocumentTest, AttributesRoundTrip) {
  Document doc;
  NodeId e = doc.CreateElement("e");
  ASSERT_OK(doc.AddAttribute(e, "name", "value"));
  ASSERT_OK(doc.AddAttribute(e, "other", "x"));
  ASSERT_EQ(doc.attributes(e).size(), 2u);
  ASSERT_NE(doc.FindAttribute(e, "name"), nullptr);
  EXPECT_EQ(*doc.FindAttribute(e, "name"), "value");
  EXPECT_EQ(doc.FindAttribute(e, "missing"), nullptr);
}

TEST(DocumentTest, SimpleContentConcatenatesTextChildren) {
  Document doc;
  NodeId e = doc.CreateElement("e");
  ASSERT_OK(doc.AppendChild(e, doc.CreateText("12")));
  ASSERT_OK(doc.AppendChild(e, doc.CreateText("34")));
  EXPECT_EQ(doc.SimpleContent(e), "1234");
}

TEST(DocumentTest, HasOnlyWhitespaceText) {
  Document doc;
  NodeId e = doc.CreateElement("e");
  ASSERT_OK(doc.AppendChild(e, doc.CreateText("  \n")));
  EXPECT_TRUE(doc.HasOnlyWhitespaceText(e));
  ASSERT_OK(doc.AppendChild(e, doc.CreateText("x")));
  EXPECT_FALSE(doc.HasOnlyWhitespaceText(e));
}

TEST(DocumentTest, ElementChildrenSkipsText) {
  Document doc;
  NodeId e = doc.CreateElement("e");
  ASSERT_OK(doc.AppendChild(e, doc.CreateText("t")));
  ASSERT_OK(doc.AppendChild(e, doc.CreateElement("a")));
  ASSERT_OK(doc.AppendChild(e, doc.CreateText("t2")));
  ASSERT_OK(doc.AppendChild(e, doc.CreateElement("b")));
  EXPECT_EQ(ElementChildren(doc, e).size(), 2u);
  auto labels = ChildLabelString(doc, e);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], "a");
  EXPECT_EQ(labels[1], "b");
}

}  // namespace
}  // namespace xmlreval::xml
