#include "schema/xsd_writer.h"

#include <gtest/gtest.h>

#include "core/relations.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_schemas.h"
#include "workload/random_schemas.h"

namespace xmlreval::schema {
namespace {

// Semantic round-trip check: every type of the reparsed schema must be
// MUTUALLY subsumed with its namesake in the original (same alphabet, so
// the relations are directly computable).
void ExpectEquivalent(const Schema& original, const Schema& reparsed) {
  auto forward = core::TypeRelations::Compute(&original, &reparsed);
  ASSERT_TRUE(forward.ok()) << forward.status().ToString();
  auto backward = core::TypeRelations::Compute(&reparsed, &original);
  ASSERT_TRUE(backward.ok()) << backward.status().ToString();
  for (TypeId t = 0; t < original.num_types(); ++t) {
    auto other = reparsed.FindType(original.TypeName(t));
    // Plain builtins may be folded into interned declarations on reparse;
    // only named types must round-trip by name.
    if (!other) continue;
    EXPECT_TRUE(forward->Subsumed(t, *other))
        << "type '" << original.TypeName(t) << "' lost generality";
    EXPECT_TRUE(backward->Subsumed(*other, t))
        << "type '" << original.TypeName(t) << "' gained generality";
  }
  // Roots must match exactly.
  for (const auto& [sym, t] : original.roots()) {
    EXPECT_NE(reparsed.RootType(sym), kInvalidType)
        << "root '" << original.alphabet()->Name(sym) << "' lost";
  }
}

TEST(XsdWriterTest, PaperSchemasRoundTrip) {
  for (const char* xsd :
       {workload::kSourceXsd, workload::kTargetXsd,
        workload::kRelaxedQuantityXsd}) {
    auto alphabet = std::make_shared<Alphabet>();
    auto original = ParseXsd(xsd, alphabet);
    ASSERT_TRUE(original.ok()) << original.status().ToString();
    ASSERT_OK_AND_ASSIGN(std::string text, WriteXsd(*original));
    auto reparsed = ParseXsd(text, alphabet);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << "\nwritten:\n" << text;
    ExpectEquivalent(*original, *reparsed);
  }
}

TEST(XsdWriterTest, DtdSchemasRenderAsXsd) {
  auto alphabet = std::make_shared<Alphabet>();
  auto original = ParseDtd(workload::kPurchaseOrderDtd, alphabet);
  ASSERT_TRUE(original.ok());
  ASSERT_OK_AND_ASSIGN(std::string text, WriteXsd(*original));
  // DTD types are open: the rendering must carry <anyAttribute/>.
  EXPECT_NE(text.find("<xsd:anyAttribute/>"), std::string::npos);
  auto reparsed = ParseXsd(text, alphabet);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\nwritten:\n" << text;
  ExpectEquivalent(*original, *reparsed);
}

TEST(XsdWriterTest, FacetsAndAttributesSurvive) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence>
          <element name="q">
            <simpleType>
              <restriction base="positiveInteger">
                <maxExclusive value="100"/>
              </restriction>
            </simpleType>
          </element>
          <element name="tag" minOccurs="0" maxOccurs="5">
            <simpleType>
              <restriction base="string">
                <enumeration value="red"/>
                <enumeration value="blue"/>
              </restriction>
            </simpleType>
          </element>
        </sequence>
        <attribute name="id" type="string" use="required"/>
        <attribute name="weight">
          <simpleType>
            <restriction base="decimal">
              <minInclusive value="0.5"/>
            </restriction>
          </simpleType>
        </attribute>
      </complexType>
    </schema>)";
  auto original = ParseXsd(xsd, alphabet);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_OK_AND_ASSIGN(std::string text, WriteXsd(*original));
  auto reparsed = ParseXsd(text, alphabet);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\nwritten:\n" << text;
  ExpectEquivalent(*original, *reparsed);
  // Spot-check rendered artifacts.
  EXPECT_NE(text.find("maxExclusive"), std::string::npos);
  EXPECT_NE(text.find("use=\"required\""), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
  EXPECT_NE(text.find("maxOccurs=\"5\""), std::string::npos);
}

TEST(XsdWriterTest, AllGroupsRejected) {
  auto alphabet = std::make_shared<Alphabet>();
  auto original = ParseXsd(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <all><element name="x" type="string"/></all>
      </complexType>
    </schema>)",
                           alphabet);
  ASSERT_TRUE(original.ok());
  Result<std::string> text = WriteXsd(*original);
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kUnsupported);
}

// Property: random schemas round-trip semantically.
class WriterRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriterRoundTrip, RandomSchemasAreEquivalentAfterReparse) {
  auto alphabet = std::make_shared<Alphabet>();
  workload::RandomSchemaOptions options;
  options.seed = GetParam();
  options.complex_types = 3 + GetParam() % 4;
  auto original = workload::GenerateRandomSchema(alphabet, options);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_OK_AND_ASSIGN(std::string text, WriteXsd(*original));
  auto reparsed = ParseXsd(text, alphabet);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\nwritten:\n" << text;
  ExpectEquivalent(*original, *reparsed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriterRoundTrip,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace xmlreval::schema
