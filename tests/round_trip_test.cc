// Serialize → parse → serialize fixpoint over random valid documents from
// random schemas: the printed form must reparse to an identical tree
// (checked by comparing the second serialization byte-for-byte), and the
// reparsed document must validate exactly like the original.

#include <gtest/gtest.h>

#include "core/full_validator.h"
#include "tests/test_util.h"
#include "workload/random_docs.h"
#include "workload/random_schemas.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval {
namespace {

class RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTrip, SerializeParseSerializeIsAFixpoint) {
  auto alphabet = std::make_shared<schema::Alphabet>();
  workload::RandomSchemaOptions schema_options;
  schema_options.seed = GetParam();
  schema_options.complex_types = 3 + GetParam() % 3;
  schema_options.attribute_percent = 60;
  schema_options.all_group_percent = 20;
  auto schema = workload::GenerateRandomSchema(alphabet, schema_options);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  core::FullValidator validator(&*schema);

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 13 + GetParam();
    options.root_label = "root";
    options.max_elements = 40;
    auto doc = workload::SampleDocument(*schema, options);
    ASSERT_TRUE(doc.ok());

    for (bool pretty : {true, false}) {
      xml::SerializeOptions serialize_options;
      serialize_options.pretty = pretty;
      std::string first = xml::Serialize(*doc, serialize_options);
      auto reparsed = xml::ParseXml(first);
      ASSERT_TRUE(reparsed.ok())
          << reparsed.status().ToString() << "\ntext:\n" << first;
      std::string second = xml::Serialize(*reparsed, serialize_options);
      EXPECT_EQ(first, second) << "pretty=" << pretty;
      // Same verdict (and same work) on the reparsed tree.
      core::ValidationReport a = validator.Validate(*doc);
      core::ValidationReport b = validator.Validate(*reparsed);
      EXPECT_EQ(a.valid, b.valid);
      EXPECT_EQ(a.counters.nodes_visited, b.counters.nodes_visited);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace xmlreval
