#include "core/corrector.h"

#include <gtest/gtest.h>

#include "core/full_validator.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "workload/random_docs.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;
using testutil::CompileOrDie;
using testutil::Word;

// ---- MinimalStringRepair ---------------------------------------------------

std::vector<automata::Symbol> Apply(
    const std::vector<StringEditOp>& ops,
    std::span<const automata::Symbol> word) {
  std::vector<automata::Symbol> out;
  size_t pos = 0;
  for (const StringEditOp& op : ops) {
    while (pos < op.position) out.push_back(word[pos++]);
    switch (op.kind) {
      case StringEditOp::Kind::kKeep:
        out.push_back(word[pos++]);
        break;
      case StringEditOp::Kind::kDelete:
        ++pos;
        break;
      case StringEditOp::Kind::kInsert:
        out.push_back(op.symbol);
        break;
    }
  }
  while (pos < word.size()) out.push_back(word[pos++]);
  return out;
}

size_t CostOf(const std::vector<StringEditOp>& ops) {
  size_t cost = 0;
  for (const StringEditOp& op : ops) {
    if (op.kind != StringEditOp::Kind::kKeep) ++cost;
  }
  return cost;
}

TEST(MinimalStringRepairTest, AlreadyValidNeedsNoOps) {
  automata::Alphabet alphabet;
  automata::Dfa dfa = CompileOrDie("(a,b,c)", &alphabet);
  std::vector<bool> all(alphabet.size(), true);
  ASSERT_OK_AND_ASSIGN(auto ops,
                       MinimalStringRepair(dfa, Word("abc", &alphabet), all));
  EXPECT_EQ(CostOf(ops), 0u);
  EXPECT_TRUE(dfa.Accepts(Apply(ops, Word("abc", &alphabet))));
}

TEST(MinimalStringRepairTest, SingleInsert) {
  automata::Alphabet alphabet;
  automata::Dfa dfa = CompileOrDie("(a,b,c)", &alphabet);
  std::vector<bool> all(alphabet.size(), true);
  ASSERT_OK_AND_ASSIGN(auto ops,
                       MinimalStringRepair(dfa, Word("ac", &alphabet), all));
  EXPECT_EQ(CostOf(ops), 1u);
  EXPECT_TRUE(dfa.Accepts(Apply(ops, Word("ac", &alphabet))));
}

TEST(MinimalStringRepairTest, SingleDelete) {
  automata::Alphabet alphabet;
  automata::Dfa dfa = CompileOrDie("(a,c)", &alphabet);
  alphabet.Intern("b");
  automata::Dfa padded = dfa.PaddedTo(alphabet.size());
  std::vector<bool> all(alphabet.size(), true);
  ASSERT_OK_AND_ASSIGN(auto ops,
                       MinimalStringRepair(padded, Word("abc", &alphabet), all));
  EXPECT_EQ(CostOf(ops), 1u);
  EXPECT_TRUE(padded.Accepts(Apply(ops, Word("abc", &alphabet))));
}

TEST(MinimalStringRepairTest, EmptyWordBuildsShortestString) {
  automata::Alphabet alphabet;
  automata::Dfa dfa = CompileOrDie("(a,(b|c),a)", &alphabet);
  std::vector<bool> all(alphabet.size(), true);
  ASSERT_OK_AND_ASSIGN(auto ops, MinimalStringRepair(dfa, {}, all));
  EXPECT_EQ(CostOf(ops), 3u);
  EXPECT_TRUE(dfa.Accepts(Apply(ops, {})));
}

TEST(MinimalStringRepairTest, RespectsInsertableMask) {
  automata::Alphabet alphabet;
  automata::Dfa dfa = CompileOrDie("((a|b),c)", &alphabet);
  std::vector<bool> no_a(alphabet.size(), true);
  no_a[*alphabet.Find("a")] = false;
  ASSERT_OK_AND_ASSIGN(auto ops,
                       MinimalStringRepair(dfa, Word("c", &alphabet), no_a));
  // The repair must use 'b', not 'a'.
  for (const StringEditOp& op : ops) {
    if (op.kind == StringEditOp::Kind::kInsert) {
      EXPECT_EQ(op.symbol, *alphabet.Find("b"));
    }
  }
  EXPECT_TRUE(dfa.Accepts(Apply(ops, Word("c", &alphabet))));
}

TEST(MinimalStringRepairTest, FailsWhenNoRepairExists) {
  automata::Alphabet alphabet;
  automata::Dfa dfa = CompileOrDie("(a,b)", &alphabet);
  std::vector<bool> none(alphabet.size(), false);
  // Cannot insert anything and the word is unfixable by deletes alone.
  Result<std::vector<StringEditOp>> ops =
      MinimalStringRepair(dfa, Word("b", &alphabet), none);
  ASSERT_FALSE(ops.ok());
  EXPECT_EQ(ops.status().code(), StatusCode::kFailedPrecondition);
}

// Property: repairs are valid and minimal (vs brute force over all words
// reachable with cost ≤ found cost).
class RepairProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(RepairProperty, RepairsAreValidAndMinimal) {
  automata::Alphabet alphabet;
  automata::Dfa dfa = CompileOrDie(GetParam(), &alphabet);
  std::vector<bool> all(alphabet.size(), true);
  testutil::ForAllWords(alphabet.size(), 4,
                        [&](const std::vector<automata::Symbol>& word) {
    ASSERT_OK_AND_ASSIGN(auto ops, MinimalStringRepair(dfa, word, all));
    std::vector<automata::Symbol> fixed = Apply(ops, word);
    ASSERT_TRUE(dfa.Accepts(fixed))
        << "repair of a word of length " << word.size() << " is invalid";
    size_t cost = CostOf(ops);
    if (dfa.Accepts(word)) {
      EXPECT_EQ(cost, 0u);
    } else {
      EXPECT_GE(cost, 1u);
      // Minimality spot-check: no single-op fix may exist if cost > 1.
      if (cost > 1) {
        bool one_op_fix = false;
        // All single deletions.
        for (size_t i = 0; i < word.size() && !one_op_fix; ++i) {
          std::vector<automata::Symbol> w = word;
          w.erase(w.begin() + i);
          one_op_fix = dfa.Accepts(w);
        }
        // All single insertions.
        for (size_t i = 0; i <= word.size() && !one_op_fix; ++i) {
          for (automata::Symbol s = 0; s < alphabet.size() && !one_op_fix;
               ++s) {
            std::vector<automata::Symbol> w = word;
            w.insert(w.begin() + i, s);
            one_op_fix = dfa.Accepts(w);
          }
        }
        EXPECT_FALSE(one_op_fix) << "repair used " << cost
                                 << " ops but a 1-op fix exists";
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Dfas, RepairProperty,
                         ::testing::Values("(a,b,c)", "(a,b)*", "((a|b),c?)",
                                           "(a+,b?)", "((a,b)|(b,a))"));

// ---- DocumentCorrector ----------------------------------------------------

struct Fixture {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void LoadXsd(const char* source_xsd, const char* target_xsd) {
    auto s = schema::ParseXsd(source_xsd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = schema::ParseXsd(target_xsd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }

  void LoadDtd(const char* source_dtd, const char* target_dtd) {
    auto s = ParseDtd(source_dtd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = ParseDtd(target_dtd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

TEST(DocumentCorrectorTest, AlreadyValidDocumentUntouched) {
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  DocumentCorrector corrector(f.relations.get());
  workload::PoGeneratorOptions options;
  options.item_count = 5;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  std::string before = xml::Serialize(doc);
  ASSERT_OK_AND_ASSIGN(CorrectionReport report, corrector.Correct(&doc));
  EXPECT_FALSE(report.changed());
  EXPECT_EQ(xml::Serialize(doc), before);
}

TEST(DocumentCorrectorTest, InsertsMissingBillTo) {
  // The paper's Figure 1 cast failure, repaired: the corrector must insert
  // a minimal billTo (USAddress) block.
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  DocumentCorrector corrector(f.relations.get());
  workload::PoGeneratorOptions options;
  options.item_count = 5;
  options.include_bill_to = false;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  ASSERT_FALSE(FullValidator(f.target.get()).Validate(doc).valid);

  ASSERT_OK_AND_ASSIGN(CorrectionReport report, corrector.Correct(&doc));
  ASSERT_TRUE(report.changed());
  EXPECT_EQ(report.steps.size(), 1u);
  EXPECT_EQ(report.steps[0].kind, CorrectionStep::Kind::kInsertElement);
  ValidationReport check = FullValidator(f.target.get()).Validate(doc);
  EXPECT_TRUE(check.valid) << check.violation;
  // The inserted block landed between shipTo and items.
  auto kids = xml::ElementChildren(doc, doc.root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(doc.label(kids[1]), "billTo");
  EXPECT_EQ(xml::ElementChildren(doc, kids[1]).size(), 6u);  // full address
}

TEST(DocumentCorrectorTest, RewritesOutOfRangeQuantities) {
  Fixture f;
  f.LoadXsd(workload::kRelaxedQuantityXsd, workload::kTargetXsd);
  DocumentCorrector corrector(f.relations.get());
  workload::PoGeneratorOptions options;
  options.item_count = 6;
  options.quantity_min = 150;  // all violate maxExclusive=100
  options.quantity_max = 180;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  ASSERT_OK_AND_ASSIGN(CorrectionReport report, corrector.Correct(&doc));
  EXPECT_EQ(report.steps.size(), 6u);
  for (const CorrectionStep& step : report.steps) {
    EXPECT_EQ(step.kind, CorrectionStep::Kind::kRewriteText);
  }
  EXPECT_TRUE(FullValidator(f.target.get()).Validate(doc).valid);
}

TEST(DocumentCorrectorTest, DeletesDisallowedElements) {
  Fixture f;
  f.LoadDtd("<!ELEMENT r (a, x?, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
            "<!ELEMENT x (y)><!ELEMENT y (#PCDATA)>",
            "<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
            "<!ELEMENT x (y)><!ELEMENT y (#PCDATA)>");
  DocumentCorrector corrector(f.relations.get());
  auto doc = xml::ParseXml("<r><a/><x><y>deep</y></x><b/></r>");
  ASSERT_TRUE(doc.ok());
  ASSERT_OK_AND_ASSIGN(CorrectionReport report, corrector.Correct(&*doc));
  ASSERT_EQ(report.steps.size(), 1u);
  EXPECT_EQ(report.steps[0].kind, CorrectionStep::Kind::kDeleteSubtree);
  xml::SerializeOptions compact;
  compact.pretty = false;
  compact.xml_declaration = false;
  EXPECT_EQ(xml::Serialize(*doc, compact), "<r><a/><b/></r>");
}

TEST(DocumentCorrectorTest, MinimalSubtreeSizes) {
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  DocumentCorrector corrector(f.relations.get());
  // USAddress: element + 6 children + 6 text leaves = 13.
  TypeId addr = *f.target->FindType("USAddress");
  EXPECT_EQ(*corrector.MinimalSubtreeSize(addr), 13u);
  // Items: element alone (item is optional).
  TypeId items = *f.target->FindType("Items");
  EXPECT_EQ(*corrector.MinimalSubtreeSize(items), 1u);
  // POType2: 1 + shipTo(13) + billTo(13) + items(1) = 28.
  TypeId po = *f.target->FindType("POType2");
  EXPECT_EQ(*corrector.MinimalSubtreeSize(po), 28u);
}

TEST(DocumentCorrectorTest, CorrectWithEditorLeavesDeltaEncoding) {
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  DocumentCorrector corrector(f.relations.get());
  workload::PoGeneratorOptions options;
  options.item_count = 2;
  options.include_bill_to = false;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  xml::DocumentEditor editor(&doc);
  ASSERT_OK_AND_ASSIGN(CorrectionReport report,
                       corrector.CorrectWithEditor(&doc, &editor));
  EXPECT_TRUE(report.changed());
  xml::ModificationIndex mods = editor.Seal();
  EXPECT_GT(mods.update_count(), 0u);
  ASSERT_OK(editor.Commit());
  EXPECT_TRUE(FullValidator(f.target.get()).Validate(doc).valid);
}

TEST(DocumentCorrectorTest, RootNotInTargetFails) {
  Fixture f;
  f.LoadDtd("<!ELEMENT r (a)><!ELEMENT a EMPTY>",
            "<!ELEMENT other (a)><!ELEMENT a EMPTY>");
  schema::DtdParseOptions unused;
  DocumentCorrector corrector(f.relations.get());
  auto doc = xml::ParseXml("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  Result<CorrectionReport> report = corrector.Correct(&*doc);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

// Soundness property: for random source-valid documents across several
// schema pairs, Correct always yields a target-valid document.
class CorrectionSoundness
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static constexpr const char* kSchemas[] = {
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, v?)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      "<!ELEMENT r (rec+)><!ELEMENT rec (k, v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      "<!ELEMENT r (rec*)><!ELEMENT rec (v?, k)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      "<!ELEMENT r (rec, rec)><!ELEMENT rec (k)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
  };
};

TEST_P(CorrectionSoundness, CorrectedDocumentsAreTargetValid) {
  auto [source_idx, target_idx] = GetParam();
  Fixture f;
  schema::DtdParseOptions dtd_options;
  dtd_options.roots = {"r"};
  auto s = ParseDtd(kSchemas[source_idx], f.alphabet, dtd_options);
  ASSERT_TRUE(s.ok());
  f.source = std::make_unique<Schema>(std::move(s).value());
  auto t = ParseDtd(kSchemas[target_idx], f.alphabet, dtd_options);
  ASSERT_TRUE(t.ok());
  f.target = std::make_unique<Schema>(std::move(t).value());
  auto r = TypeRelations::Compute(f.source.get(), f.target.get());
  ASSERT_TRUE(r.ok());
  f.relations = std::make_unique<TypeRelations>(std::move(r).value());

  DocumentCorrector corrector(f.relations.get());
  FullValidator full(f.target.get());
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed;
    options.root_label = "r";
    options.max_elements = 25;
    auto doc = workload::SampleDocument(*f.source, options);
    ASSERT_TRUE(doc.ok());
    ASSERT_OK_AND_ASSIGN(CorrectionReport report, corrector.Correct(&*doc));
    ValidationReport check = full.Validate(*doc);
    EXPECT_TRUE(check.valid)
        << "source=" << source_idx << " target=" << target_idx
        << " seed=" << seed << ": " << check.violation << " after "
        << report.steps.size() << " repairs";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemaPairs, CorrectionSoundness,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4)));

}  // namespace
}  // namespace xmlreval::core
