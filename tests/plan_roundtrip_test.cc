// Plan artifact round trips: serialize → deserialize → the loaded plan is
// indistinguishable from the cold compile. DFA tables, packed relation
// bytes, and analyzer safety tables must re-encode byte-identically, and
// cast verdicts must agree on generated documents.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer_codec.h"
#include "analysis/update_analyzer.h"
#include "core/cast_validator.h"
#include "core/relations_codec.h"
#include "schema/dtd_parser.h"
#include "schema/schema_codec.h"
#include "schema/xsd_parser.h"
#include "service/plan_cache.h"
#include "service/validation_service.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"

namespace xmlreval {
namespace {

using service::PlanBundle;
using service::PlanCache;
using service::PlanKey;
using service::SchemaFormat;

struct CorpusPair {
  const char* name;
  SchemaFormat source_format;
  const char* source_text;
  SchemaFormat target_format;
  const char* target_text;
};

const CorpusPair kCorpus[] = {
    {"exp1", SchemaFormat::kXsd, workload::kSourceXsd, SchemaFormat::kXsd,
     workload::kTargetXsd},
    {"exp2", SchemaFormat::kXsd, workload::kRelaxedQuantityXsd,
     SchemaFormat::kXsd, workload::kTargetXsd},
    {"self", SchemaFormat::kXsd, workload::kTargetXsd, SchemaFormat::kXsd,
     workload::kTargetXsd},
    {"dtd", SchemaFormat::kDtd, workload::kSourceDtd, SchemaFormat::kDtd,
     workload::kPurchaseOrderDtd},
};

std::string MakeTempDir() {
  char tmpl[] = "/tmp/xmlreval_plan_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

struct ColdPair {
  std::shared_ptr<automata::Alphabet> alphabet;
  std::shared_ptr<const schema::Schema> source;
  std::shared_ptr<const schema::Schema> target;
  std::shared_ptr<const core::TypeRelations> relations;
  std::shared_ptr<const analysis::UpdateAnalyzer> analyzer;
};

ColdPair CompileCold(const CorpusPair& pair) {
  ColdPair cold;
  cold.alphabet = std::make_shared<automata::Alphabet>();
  auto parse = [&](SchemaFormat format,
                   const char* text) -> Result<schema::Schema> {
    return format == SchemaFormat::kDtd
               ? schema::ParseDtd(text, cold.alphabet)
               : schema::ParseXsd(text, cold.alphabet);
  };
  auto source = parse(pair.source_format, pair.source_text);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  cold.source =
      std::make_shared<const schema::Schema>(std::move(source).value());
  auto target = parse(pair.target_format, pair.target_text);
  EXPECT_TRUE(target.ok()) << target.status().ToString();
  cold.target =
      std::make_shared<const schema::Schema>(std::move(target).value());
  auto relations =
      core::TypeRelations::Compute(cold.source.get(), cold.target.get());
  EXPECT_TRUE(relations.ok()) << relations.status().ToString();
  cold.relations = std::make_shared<const core::TypeRelations>(
      std::move(relations).value());
  auto analyzer = analysis::UpdateAnalyzer::Compile(cold.relations);
  if (analyzer.ok()) {
    cold.analyzer = std::make_shared<const analysis::UpdateAnalyzer>(
        std::move(analyzer).value());
  }
  return cold;
}

PlanKey KeyOf(const CorpusPair& pair) {
  PlanKey key;
  key.source_format = pair.source_format;
  key.source_text = pair.source_text;
  key.target_format = pair.target_format;
  key.target_text = pair.target_text;
  return key;
}

std::string EncodeSchema(const schema::Schema& s) {
  common::ByteWriter w;
  schema::SchemaCodec::Encode(s, &w);
  return w.Take();
}

std::string EncodeRelations(const core::TypeRelations& r) {
  common::ByteWriter w;
  core::RelationsCodec::Encode(r, &w);
  return w.Take();
}

std::string EncodeAnalyzer(const analysis::UpdateAnalyzer& a) {
  common::ByteWriter w;
  analysis::AnalyzerCodec::Encode(a, &w);
  return w.Take();
}

TEST(PlanRoundTripTest, SaveLoadIsByteFaithfulForCorpusPairs) {
  for (const CorpusPair& pair : kCorpus) {
    SCOPED_TRACE(pair.name);
    ColdPair cold = CompileCold(pair);
    ASSERT_NE(cold.relations, nullptr);

    const std::string dir = MakeTempDir();
    obs::MetricsRegistry metrics;
    PlanCache cache(dir, &metrics);
    PlanKey key = KeyOf(pair);
    ASSERT_OK(cache.Save(key, *cold.source, *cold.target, *cold.relations,
                         cold.analyzer.get()));
    ASSERT_OK_AND_ASSIGN(PlanBundle bundle, cache.Load(key));
    EXPECT_GT(bundle.bytes_mapped, 0u);

    // Schemas: same type universe, and re-encoding the loaded schema is
    // byte-identical to re-encoding the cold one (covers DFA tables,
    // child maps, facets, roots, productivity — everything the codec
    // writes).
    ASSERT_EQ(bundle.source->num_types(), cold.source->num_types());
    ASSERT_EQ(bundle.target->num_types(), cold.target->num_types());
    EXPECT_EQ(EncodeSchema(*bundle.source), EncodeSchema(*cold.source));
    EXPECT_EQ(EncodeSchema(*bundle.target), EncodeSchema(*cold.target));

    // Content DFA equivalence, table by table.
    for (schema::TypeId t = 0; t < cold.source->num_types(); ++t) {
      if (!cold.source->IsComplex(t)) continue;
      const automata::Dfa& a = cold.source->ContentDfa(t);
      const automata::Dfa& b = bundle.source->ContentDfa(t);
      ASSERT_EQ(a.num_states(), b.num_states());
      ASSERT_EQ(a.start_state(), b.start_state());
      for (automata::StateId q = 0; q < a.num_states(); ++q) {
        ASSERT_EQ(a.IsAccepting(q), b.IsAccepting(q));
        for (automata::Symbol s = 0; s < a.alphabet_size(); ++s) {
          ASSERT_EQ(a.Next(q, s), b.Next(q, s));
        }
      }
    }

    // Relations: byte-identical re-encode, and identical decisions.
    EXPECT_EQ(EncodeRelations(*bundle.relations),
              EncodeRelations(*cold.relations));
    for (schema::TypeId s = 0; s < cold.source->num_types(); ++s) {
      for (schema::TypeId t = 0; t < cold.target->num_types(); ++t) {
        ASSERT_EQ(bundle.relations->Subsumed(s, t),
                  cold.relations->Subsumed(s, t));
        ASSERT_EQ(bundle.relations->Disjoint(s, t),
                  cold.relations->Disjoint(s, t));
      }
    }

    // Analyzer tables: byte-identical when present.
    ASSERT_EQ(bundle.analyzer != nullptr, cold.analyzer != nullptr);
    if (cold.analyzer != nullptr) {
      EXPECT_EQ(EncodeAnalyzer(*bundle.analyzer),
                EncodeAnalyzer(*cold.analyzer));
    }

    // Cast verdicts agree on a generated document.
    workload::PoGeneratorOptions options;
    options.item_count = 8;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    core::CastValidator cold_validator(cold.relations.get());
    core::CastValidator warm_validator(bundle.relations.get());
    core::ValidationReport cold_report = cold_validator.Validate(doc);
    core::ValidationReport warm_report = warm_validator.Validate(doc);
    EXPECT_EQ(cold_report.valid, warm_report.valid);

    std::remove(cache.PlanPath(key).c_str());
    std::remove(cache.LockPath(key).c_str());
    rmdir(dir.c_str());
  }
}

TEST(PlanRoundTripTest, ReverseAutomataSurviveTheRoundTrip) {
  ColdPair cold;
  cold.alphabet = std::make_shared<automata::Alphabet>();
  auto source = schema::ParseXsd(workload::kRelaxedQuantityXsd, cold.alphabet);
  ASSERT_TRUE(source.ok());
  cold.source =
      std::make_shared<const schema::Schema>(std::move(source).value());
  auto target = schema::ParseXsd(workload::kTargetXsd, cold.alphabet);
  ASSERT_TRUE(target.ok());
  cold.target =
      std::make_shared<const schema::Schema>(std::move(target).value());
  core::TypeRelations::Options options;
  options.build_reverse_automata = true;
  auto relations = core::TypeRelations::Compute(cold.source.get(),
                                                cold.target.get(), options);
  ASSERT_TRUE(relations.ok());
  cold.relations = std::make_shared<const core::TypeRelations>(
      std::move(relations).value());

  const std::string dir = MakeTempDir();
  obs::MetricsRegistry metrics;
  PlanCache cache(dir, &metrics);
  PlanKey key;
  key.source_text = workload::kRelaxedQuantityXsd;
  key.target_text = workload::kTargetXsd;
  key.reverse_automata = true;
  ASSERT_OK(cache.Save(key, *cold.source, *cold.target, *cold.relations,
                       nullptr));
  ASSERT_OK_AND_ASSIGN(PlanBundle bundle, cache.Load(key));
  EXPECT_EQ(bundle.analyzer, nullptr);
  EXPECT_EQ(EncodeRelations(*bundle.relations),
            EncodeRelations(*cold.relations));

  std::remove(cache.PlanPath(key).c_str());
  std::remove(cache.LockPath(key).c_str());
  rmdir(dir.c_str());
}

TEST(PlanRoundTripTest, ServiceWarmStartMatchesColdVerdicts) {
  service::ValidationService::PlanPairSpec spec;
  spec.source_key = "src";
  spec.source_text = workload::kRelaxedQuantityXsd;
  spec.target_key = "tgt";
  spec.target_text = workload::kTargetXsd;

  const std::string dir = MakeTempDir();
  workload::PoGeneratorOptions doc_options;
  doc_options.item_count = 8;
  xml::Document doc = workload::GeneratePurchaseOrder(doc_options);

  bool cold_valid = false;
  {
    service::ValidationService::Options options;
    options.plan_cache_dir = dir;
    service::ValidationService svc(options);
    ASSERT_OK_AND_ASSIGN(auto handles, svc.RegisterPlanPair(spec));
    EXPECT_FALSE(handles.warm);
    ASSERT_OK_AND_ASSIGN(auto report,
                         svc.Cast(handles.source, handles.target, doc));
    cold_valid = report.valid;
    EXPECT_EQ(svc.plan_cache()->GetStats().saves, 1u);
  }
  {
    service::ValidationService::Options options;
    options.plan_cache_dir = dir;
    service::ValidationService svc(options);
    ASSERT_OK_AND_ASSIGN(auto handles, svc.RegisterPlanPair(spec));
    EXPECT_TRUE(handles.warm);
    ASSERT_OK_AND_ASSIGN(auto report,
                         svc.Cast(handles.source, handles.target, doc));
    EXPECT_EQ(report.valid, cold_valid);
    service::PlanCache::Stats stats = svc.plan_cache()->GetStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 0u);
    // The relations cache was seeded — the cast above must not have run a
    // fixpoint.
    EXPECT_EQ(svc.cache().stats().computations, 0u);
  }

  // Clean the plan dir.
  PlanKey key;
  key.source_text = spec.source_text;
  key.target_text = spec.target_text;
  obs::MetricsRegistry metrics;
  PlanCache cache(dir, &metrics);
  std::remove(cache.PlanPath(key).c_str());
  std::remove(cache.LockPath(key).c_str());
  rmdir(dir.c_str());
}

}  // namespace
}  // namespace xmlreval
