#include "xml/push_parser.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tests/test_util.h"
#include "xml/sax.h"

namespace xmlreval::xml {
namespace {

// Records events as compact strings: "+tag a=v", "-tag", "t:text", "d:name".
class Recorder : public SaxHandler {
 public:
  Status Doctype(std::string_view name, std::string_view subset) override {
    events.push_back("d:" + std::string(name) + "[" + std::string(subset) +
                     "]");
    return Status::OK();
  }
  Status StartElement(std::string_view name,
                      const std::vector<SaxAttribute>& attrs) override {
    std::string e = "+" + std::string(name);
    for (const SaxAttribute& a : attrs) {
      e += " " + std::string(a.name) + "=" + std::string(a.value);
    }
    events.push_back(e);
    return Status::OK();
  }
  Status EndElement(std::string_view name) override {
    events.push_back("-" + std::string(name));
    return Status::OK();
  }
  Status Characters(std::string_view text) override {
    events.push_back("t:" + std::string(text));
    return Status::OK();
  }

  std::vector<std::string> events;
};

struct PushOutcome {
  Status status = Status::OK();
  std::vector<std::string> events;
  uint64_t peak_carry = 0;
};

PushOutcome RunPush(std::string_view doc, size_t chunk,
                    const ParseOptions& options = {}) {
  Recorder recorder;
  PushParser parser(&recorder, options);
  PushOutcome out;
  for (size_t pos = 0; pos < doc.size(); pos += chunk) {
    Status s = parser.Feed(doc.substr(pos, std::min(chunk, doc.size() - pos)));
    if (!s.ok()) {
      out.status = s;
      break;
    }
  }
  if (out.status.ok()) out.status = parser.Finish();
  out.events = std::move(recorder.events);
  out.peak_carry = parser.peak_carry_bytes();
  return out;
}

const size_t kChunks[] = {1, 2, 3, 5, 17, 4096};

// For every chunking, the push parser must agree with the one-shot event
// parser on events and success, and with its own one-shot run byte for
// byte (including the error message, whose offsets must not depend on
// chunk boundaries).
void ExpectParity(std::string_view doc, const ParseOptions& options = {}) {
  Recorder reference;
  Status ref_status = ParseXmlEvents(doc, &reference, options);
  PushOutcome oneshot = RunPush(doc, doc.size() ? doc.size() : 1, options);
  EXPECT_EQ(oneshot.status.ok(), ref_status.ok()) << doc;
  if (!ref_status.ok()) {
    EXPECT_EQ(oneshot.status.code(), ref_status.code()) << doc;
  } else {
    EXPECT_EQ(oneshot.events, reference.events) << doc;
  }
  for (size_t chunk : kChunks) {
    PushOutcome chunked = RunPush(doc, chunk, options);
    EXPECT_EQ(chunked.status.code(), oneshot.status.code())
        << doc << " chunk=" << chunk;
    EXPECT_EQ(chunked.status.message(), oneshot.status.message())
        << doc << " chunk=" << chunk;
    EXPECT_EQ(chunked.events, oneshot.events) << doc << " chunk=" << chunk;
  }
}

TEST(PushParserTest, ValidCorpusParity) {
  const std::string_view docs[] = {
      "<a/>",
      "<a x=\"1\" y='two'><b>hi</b><c/></a>",
      "<?xml version=\"1.0\"?>\n<!-- head --><root>text</root>\n<!-- tail -->",
      "<!DOCTYPE note [<!ELEMENT note EMPTY>]><note/>",
      "<!DOCTYPE r SYSTEM \"some>file.dtd\"><r/>",
      "<a>one<!-- gap -->two</a>",
      "<a>pre<![CDATA[ <raw> & stuff ]]>post</a>",
      "<a>x<?pi data?>y</a>",
      "<a>&lt;&amp;&gt;&quot;&apos;</a>",
      "<a>&#65;&#x42;&#x1F600;</a>",
      "<a attr=\"a&amp;b&#33;\">v</a>",
      "<a>\n  <b/>\n</a>",
      "<deep><deep><deep>x</deep></deep></deep>",
      "<a><![CDATA[]]]></a>",
      "<a><![CDATA[a]]b]]>c</a>",
  };
  for (std::string_view doc : docs) ExpectParity(doc);
}

TEST(PushParserTest, WhitespaceModeParity) {
  ParseOptions keep;
  keep.skip_whitespace_text = false;
  ExpectParity("<a>\n<b/> </a>", keep);
  ExpectParity("<a> mixed <b/>\n\t</a>", keep);
}

TEST(PushParserTest, MalformedCorpusParity) {
  const std::string_view docs[] = {
      "<a><b></a></b>",
      "<a>text",
      "<a x=\"1\" x=\"2\"/>",
      "<a x=\"<\"/>",
      "<a></a><b/>",
      "<a>tail</a>junk",
      "<a><!-- -- --></a>",
      "<a>&undefined;</a>",
      "<a>&#xZZ;</a>",
      "<a>&#;</a>",
      "<a><3/></a>",
      "text only",
      "<a x=1/>",
      "<a x></a>",
      "</a>",
      "<a/><!-- ok --><![CDATA[no]]>",
  };
  for (std::string_view doc : docs) ExpectParity(doc);
}

TEST(PushParserTest, EveryPrefixOfValidDocFails) {
  // No epilog whitespace: only the complete document may succeed.
  std::string doc =
      "<!DOCTYPE a [<!ELEMENT a ANY>]>"
      "<a n=\"&amp;\"><!-- c --><b><![CDATA[x]]>&#65;</b><c/></a>";
  for (size_t cut = 0; cut < doc.size(); ++cut) {
    PushOutcome out = RunPush(std::string_view(doc).substr(0, cut), 3);
    EXPECT_FALSE(out.status.ok()) << "cut=" << cut;
  }
  EXPECT_OK(RunPush(doc, 3).status);
}

TEST(PushParserTest, ErrorOffsetsAreBytePositions) {
  PushOutcome out = RunPush("<a></b>", 2);
  ASSERT_FALSE(out.status.ok());
  EXPECT_NE(out.status.message().find("XML parse error at byte 3"),
            std::string::npos)
      << out.status.message();
}

TEST(PushParserTest, CarryStaysBoundedOnTinyChunks) {
  // One-byte chunks force maximal carrying; the carry buffer must still be
  // bounded by the longest markup construct, not the document size.
  std::string doc = "<root>";
  for (int i = 0; i < 200; ++i) doc += "<item key=\"value\">text</item>";
  doc += "</root>";
  PushOutcome out = RunPush(doc, 1);
  EXPECT_OK(out.status);
  EXPECT_LE(out.peak_carry, 64u);
}

// Handler that skips every element named `skip`.
class Skipper : public Recorder {
 public:
  Status StartElement(std::string_view name,
                      const std::vector<SaxAttribute>& attrs) override {
    Status s = Recorder::StartElement(name, attrs);
    if (name == "skip") parser->SkipCurrentSubtree();
    return s;
  }
  PushParser* parser = nullptr;
};

struct SkipOutcome {
  Status status = Status::OK();
  std::vector<std::string> events;
  uint64_t bytes_skipped = 0;
  uint64_t bytes_fed = 0;
};

SkipOutcome RunSkip(std::string_view doc, size_t chunk) {
  Skipper skipper;
  PushParser parser(&skipper);
  skipper.parser = &parser;
  SkipOutcome out;
  for (size_t pos = 0; pos < doc.size() && out.status.ok(); pos += chunk) {
    out.status =
        parser.Feed(doc.substr(pos, std::min(chunk, doc.size() - pos)));
  }
  if (out.status.ok()) out.status = parser.Finish();
  out.events = std::move(skipper.events);
  out.bytes_skipped = parser.bytes_skipped();
  out.bytes_fed = parser.bytes_fed();
  return out;
}

TEST(PushParserTest, SkipSuppressesSubtreeEvents) {
  std::string doc =
      "<r><keep>a</keep>"
      "<skip><skip>nested</skip><x y=\"&bad;\">not parsed</x></skip>"
      "<keep>b</keep></r>";
  for (size_t chunk : kChunks) {
    SkipOutcome out = RunSkip(doc, chunk);
    EXPECT_OK(out.status);
    // The skipped element's own StartElement fires (that is where the skip
    // decision is made) but nothing else from the subtree — including its
    // EndElement — and malformed entities inside are never seen.
    EXPECT_EQ(out.events,
              (std::vector<std::string>{"+r", "+keep", "t:a", "-keep",
                                        "+skip", "+keep", "t:b", "-keep",
                                        "-r"}))
        << "chunk=" << chunk;
    EXPECT_GT(out.bytes_skipped, 0u) << "chunk=" << chunk;
    EXPECT_EQ(out.bytes_fed, doc.size()) << "chunk=" << chunk;
  }
}

TEST(PushParserTest, SelfClosingSkipOnlyDropsEndElement) {
  SkipOutcome out = RunSkip("<r><skip a=\"1\"/><b/></r>", 2);
  EXPECT_OK(out.status);
  EXPECT_EQ(out.events,
            (std::vector<std::string>{"+r", "+skip a=1", "+b", "-b", "-r"}));
  EXPECT_EQ(out.bytes_skipped, 0u);  // nothing handed to the byte scanner
}

TEST(PushParserTest, SkippedRootReachesEpilog) {
  SkipOutcome out = RunSkip("<skip><a>x</a><b/></skip>\n<!-- tail -->", 3);
  EXPECT_OK(out.status);
  EXPECT_EQ(out.events, (std::vector<std::string>{"+skip"}));
  EXPECT_GT(out.bytes_skipped, 0u);
}

TEST(PushParserTest, SkipScannerStillChecksStructure) {
  // Mismatched nesting depth inside a skipped subtree: input truncation is
  // still detected at Finish.
  SkipOutcome out = RunSkip("<r><skip><unclosed></skip>", 4);
  EXPECT_FALSE(out.status.ok());
}

TEST(PushParserTest, TruncatedMidSkipFails) {
  std::string doc = "<r><skip><a><![CDATA[big";
  SkipOutcome out = RunSkip(doc, 5);
  ASSERT_FALSE(out.status.ok());
  EXPECT_NE(out.status.message().find("skipped subtree"), std::string::npos)
      << out.status.message();
}

TEST(PushParserTest, FeedAfterFinishIsLatched) {
  Recorder recorder;
  PushParser parser(&recorder);
  ASSERT_OK(parser.Feed("<a/>"));
  ASSERT_OK(parser.Finish());
  Status again = parser.Feed("<b/>");
  EXPECT_FALSE(again.ok());
}

}  // namespace
}  // namespace xmlreval::xml
