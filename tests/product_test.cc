#include "automata/product.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xmlreval::automata {
namespace {

using testutil::CompileOrDie;
using testutil::ForAllWords;
using testutil::Word;

TEST(ProductTest, IntersectionLanguage) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("(a,(b|c))", &alphabet);
  Dfa b = CompileOrDie("((a|b),b)", &alphabet);
  Dfa c = ProductOf(a, b.PaddedTo(alphabet.size()).Minimize());
  // Pad a too (same alphabet here, but keep the sizes honest).
  ForAllWords(alphabet.size(), 3, [&](const std::vector<Symbol>& word) {
    EXPECT_EQ(c.Accepts(word), a.Accepts(word) && b.Accepts(word));
  });
}

TEST(LanguageContainsTest, BasicCases) {
  Alphabet alphabet;
  Dfa optional_b = CompileOrDie("(a,b?,c)", &alphabet);
  Dfa required_b = CompileOrDie("(a,b,c)", &alphabet);
  // Required ⊆ optional, not vice versa — the paper's Figure 1 situation.
  EXPECT_TRUE(LanguageContains(required_b, optional_b));
  EXPECT_FALSE(LanguageContains(optional_b, required_b));
  EXPECT_TRUE(LanguageContains(required_b, required_b));
}

TEST(LanguageContainsTest, StarHierarchy) {
  Alphabet alphabet;
  Dfa plus = CompileOrDie("(a,b)+", &alphabet);
  Dfa star = CompileOrDie("(a,b)*", &alphabet);
  Dfa universal = CompileOrDie("(a|b)*", &alphabet);
  EXPECT_TRUE(LanguageContains(plus, star));
  EXPECT_FALSE(LanguageContains(star, plus));
  EXPECT_TRUE(LanguageContains(star, universal));
  EXPECT_FALSE(LanguageContains(universal, star));
}

TEST(LanguageEqualsTest, EquivalentExpressionsCompareEqual) {
  Alphabet alphabet;
  Dfa x = CompileOrDie("(a,(b,a)*)", &alphabet);
  Dfa y = CompileOrDie("((a,b)*,a)", &alphabet);
  EXPECT_TRUE(LanguageEquals(x, y));
  Dfa z = CompileOrDie("(a,(b,a)+)", &alphabet);
  EXPECT_FALSE(LanguageEquals(x, z));
}

TEST(IntersectionNonEmptyFilteredTest, RespectsTheFilter) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("((a,b)|(c,d))", &alphabet);
  Dfa b = CompileOrDie("((a,b)|(c,d))", &alphabet);
  std::vector<bool> all(alphabet.size(), true);
  EXPECT_TRUE(IntersectionNonEmptyFiltered(a, b, all));

  // Forbid 'b': only (c,d) remains.
  std::vector<bool> no_b = all;
  no_b[*alphabet.Find("b")] = false;
  EXPECT_TRUE(IntersectionNonEmptyFiltered(a, b, no_b));

  // Forbid 'b' and 'd': nothing remains.
  std::vector<bool> no_bd = no_b;
  no_bd[*alphabet.Find("d")] = false;
  EXPECT_FALSE(IntersectionNonEmptyFiltered(a, b, no_bd));
}

TEST(IntersectionNonEmptyFilteredTest, EpsilonInBothIsNonEmpty) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("a*", &alphabet);
  Dfa b = CompileOrDie("(a,a)*", &alphabet);
  std::vector<bool> none(alphabet.size(), false);
  // ε is in both languages, and ε ∈ P* for any P.
  EXPECT_TRUE(IntersectionNonEmptyFiltered(a, b, none));
}

TEST(LanguageNonEmptyFilteredTest, ProductivityStyleQueries) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("((a,b)|c)", &alphabet);
  std::vector<bool> only_c(alphabet.size(), false);
  only_c[*alphabet.Find("c")] = true;
  EXPECT_TRUE(LanguageNonEmptyFiltered(dfa, only_c));
  std::vector<bool> only_a(alphabet.size(), false);
  only_a[*alphabet.Find("a")] = true;
  EXPECT_FALSE(LanguageNonEmptyFiltered(dfa, only_a));
}

TEST(StateContainmentTableTest, MatchesBruteForce) {
  // contains[(qa,qb)] must equal "every word accepted from qa is accepted
  // from qb", verified exhaustively on short words.
  Alphabet alphabet;
  Dfa a = CompileOrDie("(a,b?,c)", &alphabet);
  Dfa b = CompileOrDie("(a,b,c)", &alphabet);
  std::vector<bool> table = StateContainmentTable(a, b);
  PairEncoding enc{b.num_states()};

  // Brute force: for words up to length 6 (longer than any live path in
  // these DFAs), find a counterexample word for each pair.
  std::vector<bool> brute(a.num_states() * b.num_states(), true);
  ForAllWords(alphabet.size(), 6, [&](const std::vector<Symbol>& word) {
    for (StateId qa = 0; qa < a.num_states(); ++qa) {
      for (StateId qb = 0; qb < b.num_states(); ++qb) {
        if (a.IsAccepting(a.Run(word, qa)) &&
            !b.IsAccepting(b.Run(word, qb))) {
          brute[enc.Encode(qa, qb)] = false;
        }
      }
    }
  });
  EXPECT_EQ(table, brute);
}

TEST(StateContainmentTableTest, StartPairMatchesLanguageContainment) {
  Alphabet alphabet;
  Dfa req = CompileOrDie("(a,b,c)", &alphabet);
  Dfa opt = CompileOrDie("(a,b?,c)", &alphabet);
  {
    std::vector<bool> table = StateContainmentTable(req, opt);
    PairEncoding enc{opt.num_states()};
    EXPECT_TRUE(table[enc.Encode(req.start_state(), opt.start_state())]);
  }
  {
    std::vector<bool> table = StateContainmentTable(opt, req);
    PairEncoding enc{req.num_states()};
    EXPECT_FALSE(table[enc.Encode(opt.start_state(), req.start_state())]);
  }
}

}  // namespace
}  // namespace xmlreval::automata

namespace xmlreval::automata {
namespace {

// Theorem 4: Definition 7 (IA = pairs with L(q_a) ⊆ L(q_b)) and
// Definition 8 (no reachable pair accepts-in-a while rejecting-in-b) agree.
// StateContainmentTable implements Definition 8; Definition 7 is checked
// directly by re-rooting each automaton at the pair's states and running
// the language-containment test.
class Theorem4Equivalence
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(Theorem4Equivalence, DefinitionsAgree) {
  Alphabet alphabet;
  Dfa a = testutil::CompileOrDie(GetParam().first, &alphabet);
  Dfa b = testutil::CompileOrDie(GetParam().second, &alphabet);
  std::vector<bool> table = StateContainmentTable(a, b);  // Definition 8
  PairEncoding enc{b.num_states()};
  for (StateId qa = 0; qa < a.num_states(); ++qa) {
    for (StateId qb = 0; qb < b.num_states(); ++qb) {
      Dfa a_from = a;
      a_from.set_start_state(qa);
      Dfa b_from = b;
      b_from.set_start_state(qb);
      bool definition7 = LanguageContains(a_from, b_from);
      EXPECT_EQ(table[enc.Encode(qa, qb)], definition7)
          << "pair (" << qa << ", " << qb << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, Theorem4Equivalence,
    ::testing::Values(std::make_pair("(a,b?,c)", "(a,b,c)"),
                      std::make_pair("(a|b)*", "((a,b)|(b,a))*"),
                      std::make_pair("((a,b)+,c?)", "((a|b)*,c)"),
                      std::make_pair("(a*,b*)", "(a,b)*")));

}  // namespace
}  // namespace xmlreval::automata
