#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "xml/parser.h"

namespace xmlreval::xml {
namespace {

TEST(SerializerTest, EmitsDeclarationAndRoot) {
  Document doc;
  ASSERT_OK(doc.SetRoot(doc.CreateElement("root")));
  std::string text = Serialize(doc);
  EXPECT_NE(text.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(text.find("<root/>"), std::string::npos);
}

TEST(SerializerTest, EscapesTextAndAttributes) {
  Document doc;
  NodeId root = doc.CreateElement("e");
  ASSERT_OK(doc.SetRoot(root));
  ASSERT_OK(doc.AddAttribute(root, "a", "x<y&\"z"));
  ASSERT_OK(doc.AppendChild(root, doc.CreateText("1<2&3")));
  std::string text = Serialize(doc);
  EXPECT_NE(text.find("a=\"x&lt;y&amp;&quot;z\""), std::string::npos);
  EXPECT_NE(text.find("1&lt;2&amp;3"), std::string::npos);
}

TEST(SerializerTest, SimpleContentStaysInline) {
  Document doc;
  NodeId root = doc.CreateElement("r");
  ASSERT_OK(doc.SetRoot(root));
  NodeId leaf = doc.CreateElement("leaf");
  ASSERT_OK(doc.AppendChild(root, leaf));
  ASSERT_OK(doc.AppendChild(leaf, doc.CreateText("42")));
  std::string text = Serialize(doc);
  EXPECT_NE(text.find("<leaf>42</leaf>"), std::string::npos);
}

TEST(SerializerTest, RoundTripPreservesStructure) {
  workload::PoGeneratorOptions options;
  options.item_count = 5;
  Document original = workload::GeneratePurchaseOrder(options);
  std::string text = Serialize(original);
  ASSERT_OK_AND_ASSIGN(Document reparsed, ParseXml(text));
  // Same shape: compare recursive (label, simple-content) structure.
  std::string again = Serialize(reparsed);
  EXPECT_EQ(text, again);
}

TEST(SerializerTest, CompactModeHasNoIndentation) {
  Document doc;
  NodeId root = doc.CreateElement("a");
  ASSERT_OK(doc.SetRoot(root));
  ASSERT_OK(doc.AppendChild(root, doc.CreateElement("b")));
  SerializeOptions options;
  options.pretty = false;
  options.xml_declaration = false;
  EXPECT_EQ(Serialize(doc, options), "<a><b/></a>");
}

TEST(SerializerTest, SubtreeSerialization) {
  ASSERT_OK_AND_ASSIGN(Document doc,
                       ParseXml("<a><b><c>1</c></b></a>"));
  NodeId b = ElementChildren(doc, doc.root())[0];
  SerializeOptions options;
  options.pretty = false;
  options.xml_declaration = false;
  EXPECT_EQ(SerializeSubtree(doc, b, options), "<b><c>1</c></b>");
}

}  // namespace
}  // namespace xmlreval::xml
