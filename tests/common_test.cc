#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "tests/test_util.h"

namespace xmlreval {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "parse-error: bad token");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("type 'T'").WithContext("schema 'S'");
  EXPECT_EQ(s.message(), "schema 'S': type 'T'");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_TRUE(Status().WithContext("x").ok());
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::Internal("boom");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
  EXPECT_EQ(err.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ASSIGN_OR_RETURN(int h, Half(x));
  ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \r\n\t "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, XmlNames) {
  EXPECT_TRUE(IsValidXmlName("purchaseOrder"));
  EXPECT_TRUE(IsValidXmlName("_x-1.2"));
  EXPECT_TRUE(IsValidXmlName("xsd:element"));
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1abc"));
  EXPECT_FALSE(IsValidXmlName("a b"));
}

TEST(StringUtilTest, EscapeXmlText) {
  EXPECT_EQ(EscapeXmlText("a<b&c>\"d'"),
            "a&lt;b&amp;c&gt;&quot;d&apos;");
  EXPECT_EQ(EscapeXmlText("plain"), "plain");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  99 "), 99);
  EXPECT_EQ(*ParseInt64("+7"), 7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4.5").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("-").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());
}

TEST(StringUtilTest, ParseDecimalScaled) {
  constexpr int64_t kScale = 1000000000;
  EXPECT_EQ(*ParseDecimalScaled("100"), 100 * kScale);
  EXPECT_EQ(*ParseDecimalScaled("3.5"), 3 * kScale + kScale / 2);
  EXPECT_EQ(*ParseDecimalScaled("-2.25"), -(2 * kScale + kScale / 4));
  EXPECT_EQ(*ParseDecimalScaled(".5"), kScale / 2);
  EXPECT_EQ(*ParseDecimalScaled("0.000000001"), 1);
  EXPECT_FALSE(ParseDecimalScaled("").ok());
  EXPECT_FALSE(ParseDecimalScaled(".").ok());
  EXPECT_FALSE(ParseDecimalScaled("1.2.3").ok());
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

}  // namespace
}  // namespace xmlreval
