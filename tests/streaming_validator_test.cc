#include "core/streaming_validator.h"

#include <gtest/gtest.h>

#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "workload/random_docs.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;

struct Fixture {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void LoadXsd(const char* source_xsd, const char* target_xsd) {
    auto s = schema::ParseXsd(source_xsd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = schema::ParseXsd(target_xsd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

TEST(StreamingValidateTest, AcceptsAndRejectsLikeDomValidator) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = ParseDtd(
      "<!ELEMENT r (a+, b?)><!ELEMENT a (#PCDATA)><!ELEMENT b (c)>"
      "<!ELEMENT c EMPTY>",
      alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();
  FullValidator dom(&schema);

  for (const char* text :
       {"<r><a>1</a></r>", "<r><a>1</a><a>2</a><b><c/></b></r>", "<r/>",
        "<r><b><c/></b></r>", "<r><a>1</a><b/></r>",
        "<r><a><nested/></a></r>", "<r><a>1</a>stray</r>"}) {
    StreamingReport streamed = StreamingValidate(text, schema);
    auto doc = xml::ParseXml(text);
    ASSERT_TRUE(doc.ok());
    ValidationReport reference = dom.Validate(*doc);
    EXPECT_EQ(streamed.valid, reference.valid) << text;
    if (!streamed.valid) {
      EXPECT_FALSE(streamed.violation.empty()) << text;
    }
  }
}

TEST(StreamingValidateTest, MalformedInputReportsParseError) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = ParseDtd("<!ELEMENT r EMPTY>", alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();
  StreamingReport report = StreamingValidate("<r><broken</r>", schema);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.violation.find("parse-error"), std::string::npos);
}

TEST(StreamingValidateTest, LiveFramesTrackDepthNotSize) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = ParseDtd("<!ELEMENT n (n*)>", alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();

  // Wide: 1000 siblings, depth 2.
  std::string wide = "<n>";
  for (int i = 0; i < 1000; ++i) wide += "<n/>";
  wide += "</n>";
  StreamingReport wide_report = StreamingValidate(wide, schema);
  ASSERT_TRUE(wide_report.valid) << wide_report.violation;
  EXPECT_EQ(wide_report.max_live_frames, 2u);

  // Deep: depth 1000.
  std::string deep;
  for (int i = 0; i < 1000; ++i) deep += "<n>";
  for (int i = 0; i < 1000; ++i) deep += "</n>";
  StreamingReport deep_report = StreamingValidate(deep, schema);
  ASSERT_TRUE(deep_report.valid);
  EXPECT_EQ(deep_report.max_live_frames, 1000u);
}

TEST(StreamingCastTest, Experiment1IsConstantWork) {
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  uint64_t visited_small = 0, visited_large = 0;
  for (auto [items, out] :
       {std::pair<size_t, uint64_t*>{2, &visited_small},
        std::pair<size_t, uint64_t*>{500, &visited_large}}) {
    workload::PoGeneratorOptions options;
    options.item_count = items;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    std::string text = xml::Serialize(doc);
    StreamingReport report = StreamingCastValidate(text, *f.relations);
    ASSERT_TRUE(report.valid) << report.violation;
    *out = report.counters.nodes_visited;
    // Streaming keeps at most the open path; far below the node count.
    EXPECT_LE(report.max_live_frames, 6u);
  }
  EXPECT_EQ(visited_small, visited_large)
      << "experiment 1 streaming cast must not scale with the document";
}

TEST(StreamingCastTest, RejectsMissingBillTo) {
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  workload::PoGeneratorOptions options;
  options.item_count = 5;
  options.include_bill_to = false;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  StreamingReport report =
      StreamingCastValidate(xml::Serialize(doc), *f.relations);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.violation.find("content model"), std::string::npos);
}

TEST(StreamingCastTest, Experiment2ChecksQuantities) {
  Fixture f;
  f.LoadXsd(workload::kRelaxedQuantityXsd, workload::kTargetXsd);
  workload::PoGeneratorOptions options;
  options.item_count = 30;
  options.quantity_max = 99;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  StreamingReport ok = StreamingCastValidate(xml::Serialize(doc), *f.relations);
  EXPECT_TRUE(ok.valid) << ok.violation;
  EXPECT_EQ(ok.counters.simple_checks, 30u);

  options.quantity_min = 150;
  options.quantity_max = 190;
  xml::Document bad = workload::GeneratePurchaseOrder(options);
  StreamingReport rejected =
      StreamingCastValidate(xml::Serialize(bad), *f.relations);
  EXPECT_FALSE(rejected.valid);
  EXPECT_NE(rejected.violation.find("maxExclusive"), std::string::npos);
}

// Agreement property: streaming cast == DOM cast on random documents.
class StreamingAgreement : public ::testing::TestWithParam<int> {};

TEST_P(StreamingAgreement, MatchesDomCastValidator) {
  auto alphabet = std::make_shared<Alphabet>();
  schema::DtdParseOptions roots;
  roots.roots = {"r"};
  auto s = ParseDtd(
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, v?)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      alphabet, roots);
  ASSERT_TRUE(s.ok());
  Schema source = std::move(s).value();
  auto t = ParseDtd(
      "<!ELEMENT r (rec+)><!ELEMENT rec (k, v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      alphabet, roots);
  ASSERT_TRUE(t.ok());
  Schema target = std::move(t).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&source, &target));
  CastValidator dom(&relations);

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 31 + GetParam();
    options.root_label = "r";
    options.max_elements = 30;
    auto doc = workload::SampleDocument(source, options);
    ASSERT_TRUE(doc.ok());
    std::string text = xml::Serialize(*doc);
    StreamingReport streamed = StreamingCastValidate(text, relations);
    ValidationReport reference = dom.Validate(*doc);
    EXPECT_EQ(streamed.valid, reference.valid)
        << "seed=" << seed << "\nstream: " << streamed.violation
        << "\ndom: " << reference.violation;
    if (streamed.valid) {
      // Same counting discipline: identical node-visit totals.
      EXPECT_EQ(streamed.counters.nodes_visited,
                reference.counters.nodes_visited);
      EXPECT_EQ(streamed.counters.subtrees_skipped,
                reference.counters.subtrees_skipped);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingAgreement, ::testing::Range(0, 8));

}  // namespace
}  // namespace xmlreval::core
