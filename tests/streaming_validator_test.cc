#include "core/streaming_validator.h"

#include <gtest/gtest.h>

#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "workload/random_docs.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;

struct Fixture {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void LoadXsd(const char* source_xsd, const char* target_xsd) {
    auto s = schema::ParseXsd(source_xsd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = schema::ParseXsd(target_xsd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

TEST(StreamingValidateTest, AcceptsAndRejectsLikeDomValidator) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = ParseDtd(
      "<!ELEMENT r (a+, b?)><!ELEMENT a (#PCDATA)><!ELEMENT b (c)>"
      "<!ELEMENT c EMPTY>",
      alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();
  FullValidator dom(&schema);

  for (const char* text :
       {"<r><a>1</a></r>", "<r><a>1</a><a>2</a><b><c/></b></r>", "<r/>",
        "<r><b><c/></b></r>", "<r><a>1</a><b/></r>",
        "<r><a><nested/></a></r>", "<r><a>1</a>stray</r>"}) {
    StreamingReport streamed = StreamingValidate(text, schema);
    auto doc = xml::ParseXml(text);
    ASSERT_TRUE(doc.ok());
    ValidationReport reference = dom.Validate(*doc);
    EXPECT_EQ(streamed.valid, reference.valid) << text;
    if (!streamed.valid) {
      EXPECT_FALSE(streamed.violation.empty()) << text;
    }
  }
}

TEST(StreamingValidateTest, MalformedInputReportsParseError) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = ParseDtd("<!ELEMENT r EMPTY>", alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();
  StreamingReport report = StreamingValidate("<r><broken</r>", schema);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.violation.find("parse-error"), std::string::npos);
}

TEST(StreamingValidateTest, LiveFramesTrackDepthNotSize) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = ParseDtd("<!ELEMENT n (n*)>", alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();

  // Wide: 1000 siblings, depth 2.
  std::string wide = "<n>";
  for (int i = 0; i < 1000; ++i) wide += "<n/>";
  wide += "</n>";
  StreamingReport wide_report = StreamingValidate(wide, schema);
  ASSERT_TRUE(wide_report.valid) << wide_report.violation;
  EXPECT_EQ(wide_report.max_live_frames, 2u);

  // Deep: depth 1000.
  std::string deep;
  for (int i = 0; i < 1000; ++i) deep += "<n>";
  for (int i = 0; i < 1000; ++i) deep += "</n>";
  StreamingReport deep_report = StreamingValidate(deep, schema);
  ASSERT_TRUE(deep_report.valid);
  EXPECT_EQ(deep_report.max_live_frames, 1000u);
}

TEST(StreamingCastTest, Experiment1IsConstantWork) {
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  uint64_t visited_small = 0, visited_large = 0;
  for (auto [items, out] :
       {std::pair<size_t, uint64_t*>{2, &visited_small},
        std::pair<size_t, uint64_t*>{500, &visited_large}}) {
    workload::PoGeneratorOptions options;
    options.item_count = items;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    std::string text = xml::Serialize(doc);
    StreamingReport report = StreamingCastValidate(text, *f.relations);
    ASSERT_TRUE(report.valid) << report.violation;
    *out = report.counters.nodes_visited;
    // Streaming keeps at most the open path; far below the node count.
    EXPECT_LE(report.max_live_frames, 6u);
  }
  EXPECT_EQ(visited_small, visited_large)
      << "experiment 1 streaming cast must not scale with the document";
}

TEST(StreamingCastTest, RejectsMissingBillTo) {
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  workload::PoGeneratorOptions options;
  options.item_count = 5;
  options.include_bill_to = false;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  StreamingReport report =
      StreamingCastValidate(xml::Serialize(doc), *f.relations);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.violation.find("content model"), std::string::npos);
}

TEST(StreamingCastTest, Experiment2ChecksQuantities) {
  Fixture f;
  f.LoadXsd(workload::kRelaxedQuantityXsd, workload::kTargetXsd);
  workload::PoGeneratorOptions options;
  options.item_count = 30;
  options.quantity_max = 99;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  StreamingReport ok = StreamingCastValidate(xml::Serialize(doc), *f.relations);
  EXPECT_TRUE(ok.valid) << ok.violation;
  EXPECT_EQ(ok.counters.simple_checks, 30u);

  options.quantity_min = 150;
  options.quantity_max = 190;
  xml::Document bad = workload::GeneratePurchaseOrder(options);
  StreamingReport rejected =
      StreamingCastValidate(xml::Serialize(bad), *f.relations);
  EXPECT_FALSE(rejected.valid);
  EXPECT_NE(rejected.violation.find("maxExclusive"), std::string::npos);
}

// Agreement property: streaming cast == DOM cast on random documents.
class StreamingAgreement : public ::testing::TestWithParam<int> {};

TEST_P(StreamingAgreement, MatchesDomCastValidator) {
  auto alphabet = std::make_shared<Alphabet>();
  schema::DtdParseOptions roots;
  roots.roots = {"r"};
  auto s = ParseDtd(
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, v?)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      alphabet, roots);
  ASSERT_TRUE(s.ok());
  Schema source = std::move(s).value();
  auto t = ParseDtd(
      "<!ELEMENT r (rec+)><!ELEMENT rec (k, v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      alphabet, roots);
  ASSERT_TRUE(t.ok());
  Schema target = std::move(t).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&source, &target));
  CastValidator dom(&relations);

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    workload::RandomDocOptions options;
    options.seed = seed * 31 + GetParam();
    options.root_label = "r";
    options.max_elements = 30;
    auto doc = workload::SampleDocument(source, options);
    ASSERT_TRUE(doc.ok());
    std::string text = xml::Serialize(*doc);
    StreamingReport streamed = StreamingCastValidate(text, relations);
    ValidationReport reference = dom.Validate(*doc);
    EXPECT_EQ(streamed.valid, reference.valid)
        << "seed=" << seed << "\nstream: " << streamed.violation
        << "\ndom: " << reference.violation;
    if (streamed.valid) {
      // Same counting discipline: identical node-visit totals.
      EXPECT_EQ(streamed.counters.nodes_visited,
                reference.counters.nodes_visited);
      EXPECT_EQ(streamed.counters.subtrees_skipped,
                reference.counters.subtrees_skipped);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingAgreement, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// StreamingCastSession: the incremental push API.

// A source/target pair whose `rec` declarations are identical, so every
// (rec, rec) pair is subsumed and sessions hand rec subtrees to the
// raw-byte skip scanner.
struct SubsumedFixture {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void Load() {
    schema::DtdParseOptions roots;
    roots.roots = {"r"};
    auto s = ParseDtd(
        "<!ELEMENT r (rec*)><!ELEMENT rec (k, v)>"
        "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
        alphabet, roots);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = ParseDtd(
        "<!ELEMENT r (rec+)><!ELEMENT rec (k, v)>"
        "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
        alphabet, roots);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

StreamingReport FeedSession(const TypeRelations& relations,
                            std::string_view text, size_t chunk,
                            const StreamingCastOptions& options = {}) {
  StreamingCastSession session(relations, options);
  for (size_t pos = 0; pos < text.size(); pos += chunk) {
    if (!session.Feed(text.substr(pos, std::min(chunk, text.size() - pos)))
             .ok()) {
      break;  // verdict decided early; Finish still yields the report
    }
  }
  return session.Finish();
}

TEST(StreamingCastSessionTest, MatchesLegacyAcrossChunkSizes) {
  SubsumedFixture f;
  f.Load();
  const char* docs[] = {
      "<r/>",
      "<r><rec><k>1</k><v>2</v></rec></r>",
      "<r><rec><k>1</k><v>2</v></rec><rec><k>3</k><v>4</v></rec></r>",
      "<r><other/></r>",                     // unbound label
      "<r><rec><k>1</k><v>2</v></rec>",      // truncated
  };
  for (const char* text : docs) {
    StreamingReport legacy = StreamingCastValidate(text, *f.relations);
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
      StreamingReport session = FeedSession(*f.relations, text, chunk);
      EXPECT_EQ(session.valid, legacy.valid)
          << text << " chunk=" << chunk << "\nsession: " << session.violation
          << "\nlegacy: " << legacy.violation;
      EXPECT_EQ(session.counters.nodes_visited, legacy.counters.nodes_visited)
          << text << " chunk=" << chunk;
      EXPECT_EQ(session.counters.subtrees_skipped,
                legacy.counters.subtrees_skipped)
          << text << " chunk=" << chunk;
      EXPECT_EQ(session.max_live_frames, legacy.max_live_frames)
          << text << " chunk=" << chunk;
      // Early aborts stop feeding mid-document; otherwise every byte is
      // accounted for.
      EXPECT_LE(session.bytes_fed, std::string_view(text).size());
      if (legacy.valid) {
        EXPECT_EQ(session.bytes_fed, std::string_view(text).size());
      }
    }
  }
}

TEST(StreamingCastSessionTest, SubsumedSubtreesAreByteSkipped) {
  SubsumedFixture f;
  f.Load();
  std::string text = "<r>";
  for (int i = 0; i < 50; ++i) text += "<rec><k>key</k><v>value</v></rec>";
  text += "</r>";

  StreamingReport with_skip = FeedSession(*f.relations, text, 97);
  ASSERT_TRUE(with_skip.valid) << with_skip.violation;
  EXPECT_EQ(with_skip.counters.subtrees_skipped, 50u);
  // Each rec body (from after "<rec>" through "</rec>") bypasses the
  // tokenizer entirely.
  EXPECT_GT(with_skip.bytes_skipped, 50u * 20u);
  EXPECT_LT(with_skip.bytes_skipped, text.size());
  // Skipped subtrees never open frames: only the root is ever live.
  EXPECT_EQ(with_skip.max_live_frames, 1u);

  StreamingCastOptions no_skip;
  no_skip.skip_scan = false;
  StreamingReport tokenized = FeedSession(*f.relations, text, 97, no_skip);
  ASSERT_TRUE(tokenized.valid) << tokenized.violation;
  EXPECT_EQ(tokenized.bytes_skipped, 0u);
  EXPECT_EQ(tokenized.counters.subtrees_skipped, 50u);
  EXPECT_EQ(tokenized.max_live_frames, with_skip.max_live_frames);
  EXPECT_EQ(tokenized.counters.nodes_visited, with_skip.counters.nodes_visited);
}

TEST(StreamingCastSessionTest, MalformedBytesInsideSkippedSubtreeRejected) {
  SubsumedFixture f;
  f.Load();
  // The rec subtree is only byte-scanned, but structural damage (a '<'
  // inside an attribute value) must still be caught.
  StreamingReport report = FeedSession(
      *f.relations, "<r><rec><k a=\"<\">1</k><v>2</v></rec></r>", 5);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.violation.find("parse-error"), std::string::npos)
      << report.violation;
}

TEST(StreamingCastSessionTest, ViolationPathMatchesDomValidator) {
  // Non-subsumed rec pair (source allows v to be absent, target does not),
  // so rec content is actually checked. Second rec (ordinal 1) is missing
  // <v>: the blamed element must match the DOM cast validator's Dewey path.
  auto alphabet = std::make_shared<Alphabet>();
  schema::DtdParseOptions roots;
  roots.roots = {"r"};
  auto s = ParseDtd(
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, v?)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      alphabet, roots);
  ASSERT_TRUE(s.ok());
  Schema source = std::move(s).value();
  auto t = ParseDtd(
      "<!ELEMENT r (rec+)><!ELEMENT rec (k, v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      alphabet, roots);
  ASSERT_TRUE(t.ok());
  Schema target = std::move(t).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&source, &target));

  const char* text =
      "<r><rec><k>1</k><v>2</v></rec><rec><k>3</k></rec></r>";
  auto doc = xml::ParseXml(text);
  ASSERT_TRUE(doc.ok());
  CastValidator dom(&relations);
  ValidationReport reference = dom.Validate(*doc);
  ASSERT_FALSE(reference.valid);

  StreamingReport session = FeedSession(relations, text, 3);
  ASSERT_FALSE(session.valid);
  ASSERT_TRUE(session.violation_path_known);
  EXPECT_EQ(xml::DeweyPath(session.violation_path).ToString(),
            reference.violation_path.ToString());
}

TEST(StreamingCastSessionTest, EarlyAbortLatchesStatus) {
  SubsumedFixture f;
  f.Load();
  StreamingCastSession session(*f.relations);
  ASSERT_OK(session.Feed("<r><oo"));  // tag still open: no verdict yet
  Status decided = session.Feed("ps></oops></r>");
  EXPECT_FALSE(decided.ok());
  EXPECT_TRUE(session.done());
  // Later feeds are no-ops returning the same status.
  Status again = session.Feed("<ignored/>");
  EXPECT_EQ(again.code(), decided.code());
  EXPECT_EQ(again.message(), decided.message());
  const StreamingReport& report = session.Finish();
  EXPECT_FALSE(report.valid);
}

TEST(StreamingCastSessionTest, FinishWithoutInputIsParseError) {
  SubsumedFixture f;
  f.Load();
  StreamingCastSession session(*f.relations);
  const StreamingReport& report = session.Finish();
  EXPECT_FALSE(report.valid);
  EXPECT_EQ(report.bytes_fed, 0u);
}

}  // namespace
}  // namespace xmlreval::core
