#include "schema/simple_types.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xmlreval::schema {
namespace {

constexpr int64_t kScale = 1000000000;

SimpleType Plain(AtomicKind kind) { return SimpleType{kind, {}}; }

SimpleType MaxExclusive(AtomicKind kind, int64_t bound) {
  SimpleType t{kind, {}};
  t.facets.max_exclusive = bound * kScale;
  return t;
}

TEST(AtomicKindTest, NamesRoundTrip) {
  EXPECT_EQ(*AtomicKindFromName("xsd:string"), AtomicKind::kString);
  EXPECT_EQ(*AtomicKindFromName("xs:positiveInteger"),
            AtomicKind::kPositiveInteger);
  EXPECT_EQ(*AtomicKindFromName("decimal"), AtomicKind::kDecimal);
  EXPECT_EQ(*AtomicKindFromName("xsd:date"), AtomicKind::kDate);
  EXPECT_FALSE(AtomicKindFromName("xsd:noSuchType").has_value());
}

TEST(ValidateSimpleValueTest, StringAcceptsAnything) {
  EXPECT_OK(ValidateSimpleValue(Plain(AtomicKind::kString), "anything at all"));
  EXPECT_OK(ValidateSimpleValue(Plain(AtomicKind::kString), ""));
}

TEST(ValidateSimpleValueTest, BooleanLexicalSpace) {
  SimpleType b = Plain(AtomicKind::kBoolean);
  EXPECT_OK(ValidateSimpleValue(b, "true"));
  EXPECT_OK(ValidateSimpleValue(b, "false"));
  EXPECT_OK(ValidateSimpleValue(b, "0"));
  EXPECT_OK(ValidateSimpleValue(b, "1"));
  EXPECT_FALSE(ValidateSimpleValue(b, "TRUE").ok());
  EXPECT_FALSE(ValidateSimpleValue(b, "2").ok());
}

TEST(ValidateSimpleValueTest, NumericKinds) {
  EXPECT_OK(ValidateSimpleValue(Plain(AtomicKind::kInteger), "-42"));
  EXPECT_FALSE(ValidateSimpleValue(Plain(AtomicKind::kInteger), "3.5").ok());
  EXPECT_OK(ValidateSimpleValue(Plain(AtomicKind::kDecimal), "3.5"));
  EXPECT_OK(ValidateSimpleValue(Plain(AtomicKind::kDecimal), "-42"));
  EXPECT_FALSE(ValidateSimpleValue(Plain(AtomicKind::kDecimal), "abc").ok());
  EXPECT_OK(ValidateSimpleValue(Plain(AtomicKind::kNonNegativeInteger), "0"));
  EXPECT_FALSE(
      ValidateSimpleValue(Plain(AtomicKind::kNonNegativeInteger), "-1").ok());
  EXPECT_OK(ValidateSimpleValue(Plain(AtomicKind::kPositiveInteger), "1"));
  EXPECT_FALSE(
      ValidateSimpleValue(Plain(AtomicKind::kPositiveInteger), "0").ok());
  // Whitespace is collapsed before checking.
  EXPECT_OK(ValidateSimpleValue(Plain(AtomicKind::kInteger), "  7 \n"));
}

TEST(ValidateSimpleValueTest, DateLexicalSpace) {
  SimpleType d = Plain(AtomicKind::kDate);
  EXPECT_OK(ValidateSimpleValue(d, "2004-03-31"));
  EXPECT_FALSE(ValidateSimpleValue(d, "2004-13-01").ok());
  EXPECT_FALSE(ValidateSimpleValue(d, "2004-00-10").ok());
  EXPECT_FALSE(ValidateSimpleValue(d, "04-03-31").ok());
  EXPECT_FALSE(ValidateSimpleValue(d, "2004/03/31").ok());
}

TEST(ValidateSimpleValueTest, PaperQuantityFacet) {
  // The experiment-2 type: positiveInteger with maxExclusive 100.
  SimpleType quantity = MaxExclusive(AtomicKind::kPositiveInteger, 100);
  EXPECT_OK(ValidateSimpleValue(quantity, "1"));
  EXPECT_OK(ValidateSimpleValue(quantity, "99"));
  EXPECT_FALSE(ValidateSimpleValue(quantity, "100").ok());
  EXPECT_FALSE(ValidateSimpleValue(quantity, "150").ok());
  EXPECT_FALSE(ValidateSimpleValue(quantity, "0").ok());
}

TEST(ValidateSimpleValueTest, RangeFacets) {
  SimpleType t = Plain(AtomicKind::kInteger);
  t.facets.min_inclusive = 10 * kScale;
  t.facets.max_inclusive = 20 * kScale;
  EXPECT_OK(ValidateSimpleValue(t, "10"));
  EXPECT_OK(ValidateSimpleValue(t, "20"));
  EXPECT_FALSE(ValidateSimpleValue(t, "9").ok());
  EXPECT_FALSE(ValidateSimpleValue(t, "21").ok());
  SimpleType ex = Plain(AtomicKind::kInteger);
  ex.facets.min_exclusive = 10 * kScale;
  EXPECT_FALSE(ValidateSimpleValue(ex, "10").ok());
  EXPECT_OK(ValidateSimpleValue(ex, "11"));
}

TEST(ValidateSimpleValueTest, LengthAndEnumerationFacets) {
  SimpleType t = Plain(AtomicKind::kString);
  t.facets.length = 2;
  EXPECT_OK(ValidateSimpleValue(t, "CA"));
  EXPECT_FALSE(ValidateSimpleValue(t, "CAL").ok());
  SimpleType e = Plain(AtomicKind::kString);
  e.facets.enumeration = {"red", "green"};
  EXPECT_OK(ValidateSimpleValue(e, "red"));
  EXPECT_FALSE(ValidateSimpleValue(e, "blue").ok());
}

TEST(SimpleSubsumedTest, KindHierarchy) {
  EXPECT_TRUE(SimpleSubsumed(Plain(AtomicKind::kPositiveInteger),
                             Plain(AtomicKind::kInteger)));
  EXPECT_TRUE(SimpleSubsumed(Plain(AtomicKind::kInteger),
                             Plain(AtomicKind::kDecimal)));
  EXPECT_TRUE(SimpleSubsumed(Plain(AtomicKind::kDate),
                             Plain(AtomicKind::kString)));
  EXPECT_FALSE(SimpleSubsumed(Plain(AtomicKind::kDecimal),
                              Plain(AtomicKind::kInteger)));
  EXPECT_FALSE(SimpleSubsumed(Plain(AtomicKind::kString),
                              Plain(AtomicKind::kDate)));
  EXPECT_TRUE(SimpleSubsumed(Plain(AtomicKind::kString),
                             Plain(AtomicKind::kString)));
}

TEST(SimpleSubsumedTest, PaperQuantityScenario) {
  SimpleType q100 = MaxExclusive(AtomicKind::kPositiveInteger, 100);
  SimpleType q200 = MaxExclusive(AtomicKind::kPositiveInteger, 200);
  // Experiment 1: identical facets — subsumed both ways.
  EXPECT_TRUE(SimpleSubsumed(q100, q100));
  // Experiment 2: <200 is NOT subsumed by <100, but <100 is by <200.
  EXPECT_FALSE(SimpleSubsumed(q200, q100));
  EXPECT_TRUE(SimpleSubsumed(q100, q200));
}

TEST(SimpleSubsumedTest, RangeContainment) {
  SimpleType narrow = Plain(AtomicKind::kInteger);
  narrow.facets.min_inclusive = 5 * kScale;
  narrow.facets.max_inclusive = 10 * kScale;
  SimpleType wide = Plain(AtomicKind::kInteger);
  wide.facets.min_inclusive = 0;
  wide.facets.max_inclusive = 100 * kScale;
  EXPECT_TRUE(SimpleSubsumed(narrow, wide));
  EXPECT_FALSE(SimpleSubsumed(wide, narrow));
  // An unbounded type is not subsumed by a bounded one.
  EXPECT_FALSE(SimpleSubsumed(Plain(AtomicKind::kInteger), wide));
}

TEST(SimpleSubsumedTest, EnumerationChecksEachValue) {
  SimpleType small = Plain(AtomicKind::kString);
  small.facets.enumeration = {"7", "9"};
  EXPECT_TRUE(SimpleSubsumed(small, Plain(AtomicKind::kInteger)));
  SimpleType mixed = Plain(AtomicKind::kString);
  mixed.facets.enumeration = {"7", "x"};
  EXPECT_FALSE(SimpleSubsumed(mixed, Plain(AtomicKind::kInteger)));
}

TEST(SimpleDisjointTest, LexicalDisjointness) {
  EXPECT_TRUE(SimpleDisjoint(Plain(AtomicKind::kDate),
                             Plain(AtomicKind::kInteger)));
  EXPECT_TRUE(SimpleDisjoint(Plain(AtomicKind::kDate),
                             Plain(AtomicKind::kBoolean)));
  // boolean shares "0"/"1" with the integers.
  EXPECT_FALSE(SimpleDisjoint(Plain(AtomicKind::kBoolean),
                              Plain(AtomicKind::kInteger)));
  // string overlaps everything.
  EXPECT_FALSE(SimpleDisjoint(Plain(AtomicKind::kString),
                              Plain(AtomicKind::kDate)));
}

TEST(SimpleDisjointTest, DisjointRanges) {
  SimpleType low = Plain(AtomicKind::kInteger);
  low.facets.max_inclusive = 10 * kScale;
  SimpleType high = Plain(AtomicKind::kInteger);
  high.facets.min_inclusive = 20 * kScale;
  EXPECT_TRUE(SimpleDisjoint(low, high));
  EXPECT_TRUE(SimpleDisjoint(high, low));
  SimpleType touching = Plain(AtomicKind::kInteger);
  touching.facets.min_inclusive = 10 * kScale;
  EXPECT_FALSE(SimpleDisjoint(low, touching));  // both accept 10
}

TEST(SimpleDisjointTest, DecimalExclusiveBoundsNotDisjoint) {
  // Over DECIMALS, x < 10 and x > 9 share e.g. 9.5 — not disjoint.
  SimpleType below = Plain(AtomicKind::kDecimal);
  below.facets.max_exclusive = 10 * kScale;
  SimpleType above = Plain(AtomicKind::kDecimal);
  above.facets.min_exclusive = 9 * kScale;
  EXPECT_FALSE(SimpleDisjoint(below, above));
  EXPECT_OK(ValidateSimpleValue(below, "9.5"));
  EXPECT_OK(ValidateSimpleValue(above, "9.5"));
}

TEST(SimpleDisjointTest, IntegerExclusiveBoundsDisjoint) {
  SimpleType below = Plain(AtomicKind::kInteger);
  below.facets.max_exclusive = 10 * kScale;   // ≤ 9
  SimpleType above = Plain(AtomicKind::kInteger);
  above.facets.min_exclusive = 9 * kScale;    // ≥ 10
  EXPECT_TRUE(SimpleDisjoint(below, above));
}

TEST(SimpleDisjointTest, EnumerationDisjointness) {
  SimpleType reds = Plain(AtomicKind::kString);
  reds.facets.enumeration = {"red", "crimson"};
  SimpleType blues = Plain(AtomicKind::kString);
  blues.facets.enumeration = {"blue", "navy"};
  EXPECT_TRUE(SimpleDisjoint(reds, blues));
  blues.facets.enumeration.push_back("red");
  EXPECT_FALSE(SimpleDisjoint(reds, blues));
}

TEST(SimpleDisjointTest, LengthWindows) {
  SimpleType short_s = Plain(AtomicKind::kString);
  short_s.facets.max_length = 2;
  SimpleType long_s = Plain(AtomicKind::kString);
  long_s.facets.min_length = 5;
  EXPECT_TRUE(SimpleDisjoint(short_s, long_s));
}

TEST(EffectiveNumericRangeTest, CombinesIntrinsicAndFacets) {
  SimpleType t = MaxExclusive(AtomicKind::kPositiveInteger, 100);
  NumericRange r;
  ASSERT_TRUE(EffectiveNumericRange(t, &r));
  EXPECT_EQ(*r.lo, 1 * kScale);
  EXPECT_EQ(*r.hi, 99 * kScale);
  EXPECT_FALSE(EffectiveNumericRange(Plain(AtomicKind::kString), &r));
}

// Soundness sweep: whenever SimpleSubsumed(a, b) holds, every probe value
// valid for a must be valid for b; whenever SimpleDisjoint(a, b) holds, no
// probe value may be valid for both.
class SimpleRelationSoundness
    : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  static std::vector<SimpleType> Types() {
    std::vector<SimpleType> types;
    for (AtomicKind kind :
         {AtomicKind::kString, AtomicKind::kBoolean, AtomicKind::kDecimal,
          AtomicKind::kInteger, AtomicKind::kNonNegativeInteger,
          AtomicKind::kPositiveInteger, AtomicKind::kDate}) {
      types.push_back(Plain(kind));
    }
    types.push_back(MaxExclusive(AtomicKind::kPositiveInteger, 100));
    types.push_back(MaxExclusive(AtomicKind::kPositiveInteger, 200));
    SimpleType enumt = Plain(AtomicKind::kString);
    enumt.facets.enumeration = {"1", "true", "2004-01-01", "xyz"};
    types.push_back(enumt);
    SimpleType len = Plain(AtomicKind::kString);
    len.facets.min_length = 3;
    len.facets.max_length = 5;
    types.push_back(len);
    return types;
  }

  static std::vector<std::string> Probes() {
    return {"",     "0",   "1",     "99",         "100",   "150",
            "200",  "-7",  "3.5",   "true",       "false", "2004-01-01",
            "abc",  "xyz", "ab",    "abcde",      "abcdef"};
  }
};

TEST_P(SimpleRelationSoundness, SubsumptionAndDisjointnessAreSound) {
  auto types = Types();
  const SimpleType& a = types[GetParam().first];
  const SimpleType& b = types[GetParam().second];
  bool subsumed = SimpleSubsumed(a, b);
  bool disjoint = SimpleDisjoint(a, b);
  EXPECT_FALSE(subsumed && disjoint) << "both relations cannot hold";
  for (const std::string& v : Probes()) {
    bool in_a = ValidateSimpleValue(a, v).ok();
    bool in_b = ValidateSimpleValue(b, v).ok();
    if (subsumed && in_a) {
      EXPECT_TRUE(in_b) << "subsumed but '" << v << "' only in a";
    }
    if (disjoint) {
      EXPECT_FALSE(in_a && in_b) << "disjoint but '" << v << "' in both";
    }
  }
}

static std::vector<std::pair<int, int>> AllPairs() {
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 11; ++i) {
    for (int j = 0; j < 11; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllTypePairs, SimpleRelationSoundness,
                         ::testing::ValuesIn(AllPairs()));

}  // namespace
}  // namespace xmlreval::schema
