// Tests for <xsd:all> — compiled to a subset (bitmask) DFA because all-
// groups are not expressible as 1-unambiguous regular expressions.

#include <gtest/gtest.h>

#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::Schema;

constexpr const char* kAllXsd = R"(
<schema>
  <element name="config" type="Config"/>
  <complexType name="Config">
    <all>
      <element name="host" type="string"/>
      <element name="port" type="positiveInteger"/>
      <element name="debug" type="boolean" minOccurs="0"/>
    </all>
  </complexType>
</schema>)";

Schema LoadOrDie(const char* xsd,
                 const std::shared_ptr<Alphabet>& alphabet) {
  auto parsed = schema::ParseXsd(xsd, alphabet);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(AllGroupTest, AcceptsEveryOrderingOfRequiredMembers) {
  auto alphabet = std::make_shared<Alphabet>();
  Schema schema = LoadOrDie(kAllXsd, alphabet);
  FullValidator validator(&schema);
  for (const char* text : {
           "<config><host>h</host><port>80</port></config>",
           "<config><port>80</port><host>h</host></config>",
           "<config><debug>true</debug><host>h</host><port>80</port>"
           "</config>",
           "<config><host>h</host><debug>false</debug><port>80</port>"
           "</config>",
           "<config><host>h</host><port>80</port><debug>1</debug></config>",
       }) {
    auto doc = xml::ParseXml(text);
    ASSERT_TRUE(doc.ok());
    ValidationReport report = validator.Validate(*doc);
    EXPECT_TRUE(report.valid) << text << ": " << report.violation;
  }
}

TEST(AllGroupTest, RejectsMissingDuplicateAndForeign) {
  auto alphabet = std::make_shared<Alphabet>();
  Schema schema = LoadOrDie(kAllXsd, alphabet);
  FullValidator validator(&schema);
  for (const char* text : {
           "<config><host>h</host></config>",                 // port missing
           "<config/>",                                       // all missing
           "<config><host>h</host><port>80</port><host>i</host>"
           "</config>",                                       // duplicate
           "<config><host>h</host><port>80</port><xx>1</xx></config>",
       }) {
    auto doc = xml::ParseXml(text);
    ASSERT_TRUE(doc.ok());
    EXPECT_FALSE(validator.Validate(*doc).valid) << text;
  }
}

TEST(AllGroupTest, OptionalGroupAcceptsEmpty) {
  auto alphabet = std::make_shared<Alphabet>();
  Schema schema = LoadOrDie(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <all minOccurs="0">
          <element name="a" type="string"/>
          <element name="b" type="string"/>
        </all>
      </complexType>
    </schema>)",
                            alphabet);
  FullValidator validator(&schema);
  auto empty = xml::ParseXml("<r/>");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(validator.Validate(*empty).valid);
  // But a PARTIAL group is still invalid (all-or-nothing for required
  // members once the group appears).
  auto partial = xml::ParseXml("<r><a>x</a></r>");
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(validator.Validate(*partial).valid);
  auto both = xml::ParseXml("<r><b>y</b><a>x</a></r>");
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(validator.Validate(*both).valid);
}

TEST(AllGroupTest, ParticipatesInSubsumption) {
  auto alphabet = std::make_shared<Alphabet>();
  Schema source = LoadOrDie(kAllXsd, alphabet);
  // Target: same group but debug REQUIRED — strictly smaller language.
  Schema target = LoadOrDie(R"(
    <schema>
      <element name="config" type="Config"/>
      <complexType name="Config">
        <all>
          <element name="host" type="string"/>
          <element name="port" type="positiveInteger"/>
          <element name="debug" type="boolean"/>
        </all>
      </complexType>
    </schema>)",
                            alphabet);
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&source, &target));
  schema::TypeId s = *source.FindType("Config");
  schema::TypeId t = *target.FindType("Config");
  EXPECT_FALSE(relations.Subsumed(s, t));
  EXPECT_FALSE(relations.Disjoint(s, t));
  ASSERT_OK_AND_ASSIGN(TypeRelations reverse,
                       TypeRelations::Compute(&target, &source));
  EXPECT_TRUE(reverse.Subsumed(t, s));  // required-debug ⊆ optional-debug

  // Cast validation works across the pair.
  CastValidator cast(&relations);
  auto with_debug = xml::ParseXml(
      "<config><debug>true</debug><host>h</host><port>1</port></config>");
  ASSERT_TRUE(with_debug.ok());
  EXPECT_TRUE(cast.Validate(*with_debug).valid);
  auto without_debug =
      xml::ParseXml("<config><host>h</host><port>1</port></config>");
  ASSERT_TRUE(without_debug.ok());
  EXPECT_FALSE(cast.Validate(*without_debug).valid);
}

TEST(AllGroupTest, AllVersusEquivalentSequence) {
  // A one-member all-group equals the one-element sequence.
  auto alphabet = std::make_shared<Alphabet>();
  Schema all_schema = LoadOrDie(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <all><element name="x" type="string"/></all>
      </complexType>
    </schema>)",
                                alphabet);
  Schema seq_schema = LoadOrDie(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence><element name="x" type="string"/></sequence>
      </complexType>
    </schema>)",
                                alphabet);
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&all_schema, &seq_schema));
  EXPECT_TRUE(relations.Subsumed(*all_schema.FindType("R"),
                                 *seq_schema.FindType("R")));
}

TEST(AllGroupTest, MemberLimitsEnforced) {
  auto alphabet = std::make_shared<Alphabet>();
  // 13 members: rejected.
  std::string big = "<schema><element name=\"r\" type=\"R\"/>"
                    "<complexType name=\"R\"><all>";
  for (int i = 0; i < 13; ++i) {
    big += "<element name=\"m" + std::to_string(i) + "\" type=\"string\"/>";
  }
  big += "</all></complexType></schema>";
  Result<Schema> result = schema::ParseXsd(big, alphabet);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
  // maxOccurs > 1 on a member: rejected.
  EXPECT_FALSE(schema::ParseXsd(R"(
    <schema><element name="r" type="R"/>
      <complexType name="R"><all>
        <element name="x" type="string" maxOccurs="2"/>
      </all></complexType></schema>)",
                                alphabet)
                   .ok());
  // Duplicate member: rejected.
  EXPECT_FALSE(schema::ParseXsd(R"(
    <schema><element name="r" type="R"/>
      <complexType name="R"><all>
        <element name="x" type="string"/>
        <element name="x" type="string"/>
      </all></complexType></schema>)",
                                alphabet)
                   .ok());
}

}  // namespace
}  // namespace xmlreval::core
