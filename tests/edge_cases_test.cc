// Cross-cutting edge cases that don't belong to a single module suite:
// degenerate automata, boundary character references, root renames, empty
// documents and empty content models, and other corners the main suites
// pass through only incidentally.

#include <gtest/gtest.h>

#include "automata/immediate.h"
#include "core/full_validator.h"
#include "core/mod_validator.h"
#include "core/relations.h"
#include "core/string_revalidator.h"
#include "schema/dtd_parser.h"
#include "tests/test_util.h"
#include "workload/random_docs.h"
#include "xml/editor.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval {
namespace {

using automata::Alphabet;
using automata::Dfa;
using automata::ImmediateDfa;
using automata::StateClass;
using automata::Symbol;
using testutil::CompileOrDie;
using testutil::Word;

TEST(DegenerateAutomataTest, EmptySetLanguage) {
  Alphabet alphabet;
  alphabet.Intern("a");
  auto dfa = automata::CompileRegex(automata::Regex::EmptySet(),
                                    alphabet.size());
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->IsEmptyLanguage());
  EXPECT_FALSE(dfa->AcceptsEmpty());
  // Its immediate automaton rejects instantly from the start state.
  ImmediateDfa immed = ImmediateDfa::FromSingle(*dfa);
  EXPECT_EQ(immed.Class(dfa->start_state()), StateClass::kImmediateReject);
  automata::ImmediateRunResult run = immed.Run(Word("a", &alphabet));
  EXPECT_EQ(run.symbols_scanned, 0u);
  EXPECT_TRUE(run.decided_early);
}

TEST(DegenerateAutomataTest, EpsilonOnlyLanguage) {
  Alphabet alphabet;
  alphabet.Intern("a");
  auto dfa = automata::CompileRegex(automata::Regex::Epsilon(),
                                    alphabet.size());
  ASSERT_TRUE(dfa.ok());
  EXPECT_TRUE(dfa->AcceptsEmpty());
  EXPECT_FALSE(dfa->Accepts(Word("a", &alphabet)));
  EXPECT_EQ(dfa->Minimize().num_states(), 2u);  // accept + sink
}

TEST(DegenerateAutomataTest, SingleSymbolAlphabetRevalidation) {
  Alphabet alphabet;
  Dfa even = CompileOrDie("(a,a)*", &alphabet);
  Dfa all = CompileOrDie("a*", &alphabet);
  ASSERT_OK_AND_ASSIGN(core::StringRevalidator reval,
                       core::StringRevalidator::Create(even, all));
  // even ⊆ all: immediate accept before any symbol.
  core::RevalidationResult r = reval.Revalidate(Word("aaaa", &alphabet));
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.symbols_scanned, 0u);
  // The opposite direction must scan (parity undecidable early).
  ASSERT_OK_AND_ASSIGN(core::StringRevalidator other,
                       core::StringRevalidator::Create(all, even));
  core::RevalidationResult r2 = other.Revalidate(Word("aaa", &alphabet));
  EXPECT_FALSE(r2.accepted);
  EXPECT_EQ(r2.symbols_scanned, 3u);  // must read to the end
}

TEST(ParserBoundaryTest, CharacterReferenceLimits) {
  // U+10FFFF is the last legal code point.
  ASSERT_OK_AND_ASSIGN(xml::Document doc,
                       xml::ParseXml("<e>&#x10FFFF;</e>"));
  EXPECT_EQ(doc.SimpleContent(doc.root()).size(), 4u);  // 4-byte UTF-8
  EXPECT_FALSE(xml::ParseXml("<e>&#x110000;</e>").ok());
  EXPECT_FALSE(xml::ParseXml("<e>&#;</e>").ok());
  EXPECT_FALSE(xml::ParseXml("<e>&#xZZ;</e>").ok());
}

TEST(ParserBoundaryTest, LargeAttributeValue) {
  std::string big(100000, 'v');
  ASSERT_OK_AND_ASSIGN(xml::Document doc,
                       xml::ParseXml("<e a=\"" + big + "\"/>"));
  EXPECT_EQ(doc.FindAttribute(doc.root(), "a")->size(), big.size());
}

TEST(ParserBoundaryTest, WhitespaceOnlyDocumentContent) {
  ASSERT_OK_AND_ASSIGN(xml::Document doc, xml::ParseXml("  \n <e/> \n "));
  EXPECT_EQ(doc.label(doc.root()), "e");
}

struct Fixture {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<schema::Schema> source;
  std::unique_ptr<schema::Schema> target;
  std::unique_ptr<core::TypeRelations> relations;

  void Load(const char* source_dtd, const char* target_dtd) {
    auto s = schema::ParseDtd(source_dtd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<schema::Schema>(std::move(s).value());
    auto t = schema::ParseDtd(target_dtd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<schema::Schema>(std::move(t).value());
    auto r = core::TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<core::TypeRelations>(std::move(r).value());
  }
};

TEST(ModValidatorEdgeTest, RootRenameResolvesTargetByNewLabel) {
  Fixture f;
  f.Load("<!ELEMENT old (a)><!ELEMENT new (a)><!ELEMENT a EMPTY>",
         "<!ELEMENT old (a)><!ELEMENT new (a)><!ELEMENT a EMPTY>");
  auto doc = xml::ParseXml("<old><a/></old>");
  ASSERT_TRUE(doc.ok());
  xml::DocumentEditor editor(&*doc);
  ASSERT_OK(editor.RenameElement(doc->root(), "new"));
  xml::ModificationIndex mods = editor.Seal();
  core::ModValidator validator(f.relations.get());
  core::ValidationReport report = validator.Validate(*doc, mods);
  EXPECT_TRUE(report.valid) << report.violation;
}

TEST(ModValidatorEdgeTest, RootRenameToUndeclaredLabelFails) {
  Fixture f;
  f.Load("<!ELEMENT old (a)><!ELEMENT a EMPTY>",
         "<!ELEMENT old (a)><!ELEMENT a EMPTY>");
  auto doc = xml::ParseXml("<old><a/></old>");
  ASSERT_TRUE(doc.ok());
  xml::DocumentEditor editor(&*doc);
  ASSERT_OK(editor.RenameElement(doc->root(), "nothere"));
  xml::ModificationIndex mods = editor.Seal();
  core::ModValidator validator(f.relations.get());
  core::ValidationReport report = validator.Validate(*doc, mods);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.violation.find("target"), std::string::npos);
}

TEST(ModValidatorEdgeTest, DeleteEverythingUnderOptionalParent) {
  Fixture f;
  f.Load("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>",
         "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>");
  auto doc = xml::ParseXml("<r><a>1</a><a>2</a></r>");
  ASSERT_TRUE(doc.ok());
  xml::DocumentEditor editor(&*doc);
  for (xml::NodeId a : xml::ElementChildren(*doc, doc->root())) {
    ASSERT_OK(editor.DeleteLeaf(doc->first_child(a)));  // the text
    ASSERT_OK(editor.DeleteLeaf(a));
  }
  xml::ModificationIndex mods = editor.Seal();
  core::ModValidator validator(f.relations.get());
  EXPECT_TRUE(validator.Validate(*doc, mods).valid);
  ASSERT_OK(editor.Commit());
  EXPECT_FALSE(doc->HasChildren(doc->root()));
}

TEST(RelationsEdgeTest, EmptyContentModelsCompareCorrectly) {
  Fixture f;
  f.Load("<!ELEMENT r EMPTY>", "<!ELEMENT r EMPTY>");
  EXPECT_TRUE(f.relations->Subsumed(*f.source->FindType("r"),
                                    *f.target->FindType("r")));
  Fixture g;
  g.Load("<!ELEMENT r EMPTY><!ELEMENT a EMPTY>",
         "<!ELEMENT r (a)><!ELEMENT a EMPTY>");
  // ε-only vs exactly-one-a: disjoint.
  EXPECT_TRUE(g.relations->Disjoint(*g.source->FindType("r"),
                                    *g.target->FindType("r")));
}

TEST(SerializerEdgeTest, RoundTripPreservesAttributes) {
  ASSERT_OK_AND_ASSIGN(
      xml::Document doc,
      xml::ParseXml("<r id=\"1\" note=\"a&amp;b\"><c x=\"'\"/></r>"));
  std::string text = xml::Serialize(doc);
  ASSERT_OK_AND_ASSIGN(xml::Document again, xml::ParseXml(text));
  EXPECT_EQ(*again.FindAttribute(again.root(), "note"), "a&b");
  auto kids = xml::ElementChildren(again, again.root());
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(*again.FindAttribute(kids[0], "x"), "'");
}

TEST(RandomDocEdgeTest, DefaultRootPickIsDeterministic) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = schema::ParseDtd(
      "<!ELEMENT zebra EMPTY><!ELEMENT aardvark EMPTY>", alphabet);
  ASSERT_TRUE(parsed.ok());
  schema::Schema schema = std::move(parsed).value();
  workload::RandomDocOptions options;  // no root_label
  auto doc = workload::SampleDocument(schema, options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->label(doc->root()), "aardvark");  // lexicographically first
}

TEST(AlphabetEdgeTest, HeterogeneousLookupAndGrowth) {
  Alphabet alphabet;
  Symbol a = alphabet.Intern("alpha");
  EXPECT_EQ(alphabet.Intern("alpha"), a);  // stable
  std::string_view view("alphabet");
  EXPECT_FALSE(alphabet.Find(view.substr(0, 5)).has_value() &&
               alphabet.Find(view.substr(0, 5)) != a);
  EXPECT_EQ(*alphabet.Find(view.substr(0, 5)), a);
  EXPECT_EQ(alphabet.Name(a), "alpha");
  // Growth keeps earlier ids valid.
  for (int i = 0; i < 1000; ++i) alphabet.Intern("s" + std::to_string(i));
  EXPECT_EQ(*alphabet.Find("alpha"), a);
}

}  // namespace
}  // namespace xmlreval
