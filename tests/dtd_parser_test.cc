#include "schema/dtd_parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/po_schemas.h"

namespace xmlreval::schema {
namespace {

TEST(DtdParserTest, ParsesPurchaseOrderDtd) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(
      Schema schema, ParseDtd(workload::kPurchaseOrderDtd, alphabet));
  ASSERT_TRUE(schema.FindType("purchaseOrder").has_value());
  TypeId po = *schema.FindType("purchaseOrder");
  EXPECT_TRUE(schema.IsComplex(po));
  TypeId quantity = *schema.FindType("quantity");
  EXPECT_TRUE(schema.IsSimple(quantity));
  // DTD property: the type of 'item' under items is the 'item' type.
  TypeId items = *schema.FindType("items");
  EXPECT_EQ(schema.ChildType(items, *alphabet->Find("item")),
            *schema.FindType("item"));
}

TEST(DtdParserTest, ContentModelSemantics) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(
      Schema schema,
      ParseDtd("<!ELEMENT r (a, b?, (c | d)+)>"
               "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
               "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
               alphabet));
  const automata::Dfa& dfa = schema.ContentDfa(*schema.FindType("r"));
  auto word = [&](std::initializer_list<const char*> labels) {
    std::vector<automata::Symbol> out;
    for (const char* l : labels) out.push_back(*alphabet->Find(l));
    return out;
  };
  EXPECT_TRUE(dfa.Accepts(word({"a", "b", "c"})));
  EXPECT_TRUE(dfa.Accepts(word({"a", "c", "d", "c"})));
  EXPECT_FALSE(dfa.Accepts(word({"a", "b"})));
  EXPECT_FALSE(dfa.Accepts(word({"b", "c"})));
}

TEST(DtdParserTest, EmptyAndAny) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(
      Schema schema,
      ParseDtd("<!ELEMENT e EMPTY><!ELEMENT any ANY><!ELEMENT t (#PCDATA)>",
               alphabet));
  const automata::Dfa& empty_dfa = schema.ContentDfa(*schema.FindType("e"));
  EXPECT_TRUE(empty_dfa.AcceptsEmpty());
  std::vector<automata::Symbol> t{*alphabet->Find("t")};
  EXPECT_FALSE(empty_dfa.Accepts(t));
  // ANY accepts any sequence of declared elements.
  const automata::Dfa& any_dfa = schema.ContentDfa(*schema.FindType("any"));
  EXPECT_TRUE(any_dfa.AcceptsEmpty());
  std::vector<automata::Symbol> te{*alphabet->Find("t"), *alphabet->Find("e")};
  EXPECT_TRUE(any_dfa.Accepts(te));
}

TEST(DtdParserTest, SkipsAttlistAndComments) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(
      Schema schema,
      ParseDtd("<!-- a comment -->"
               "<!ELEMENT note (#PCDATA)>"
               "<!ATTLIST note id CDATA #REQUIRED lang (en|fr) \"en\">"
               "<!NOTATION gif SYSTEM \"image/gif\">",
               alphabet));
  EXPECT_TRUE(schema.FindType("note").has_value());
}

TEST(DtdParserTest, ExplicitRoots) {
  auto alphabet = std::make_shared<Alphabet>();
  DtdParseOptions options;
  options.roots = {"r"};
  ASSERT_OK_AND_ASSIGN(
      Schema schema,
      ParseDtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>", alphabet, options));
  EXPECT_NE(schema.RootType(*alphabet->Find("r")), kInvalidType);
  EXPECT_EQ(schema.RootType(*alphabet->Find("a")), kInvalidType);
}

TEST(DtdParserTest, Errors) {
  auto alphabet = std::make_shared<Alphabet>();
  // Undeclared reference.
  EXPECT_FALSE(ParseDtd("<!ELEMENT r (ghost)>", alphabet).ok());
  // Duplicate declaration.
  EXPECT_FALSE(
      ParseDtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>", alphabet).ok());
  // Mixed content is unsupported.
  Result<Schema> mixed =
      ParseDtd("<!ELEMENT m (#PCDATA | a)*><!ELEMENT a EMPTY>", alphabet);
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kUnsupported);
  // Entities unsupported.
  EXPECT_EQ(ParseDtd("<!ENTITY x \"y\">", alphabet).status().code(),
            StatusCode::kUnsupported);
  // Empty DTD.
  EXPECT_FALSE(ParseDtd("", alphabet).ok());
  // Unknown root requested.
  DtdParseOptions options;
  options.roots = {"zzz"};
  EXPECT_FALSE(ParseDtd("<!ELEMENT a EMPTY>", alphabet, options).ok());
  // Garbage.
  EXPECT_FALSE(ParseDtd("<!WHAT a>", alphabet).ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT r (a", alphabet).ok());
}

TEST(DtdParserTest, SharedAlphabetAcrossTwoDtds) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(Schema source,
                       ParseDtd(workload::kSourceDtd, alphabet));
  ASSERT_OK_AND_ASSIGN(Schema target,
                       ParseDtd(workload::kPurchaseOrderDtd, alphabet));
  // Both schemas resolve 'item' to the same symbol.
  EXPECT_EQ(source.alphabet().get(), target.alphabet().get());
  EXPECT_TRUE(alphabet->Find("item").has_value());
}

}  // namespace
}  // namespace xmlreval::schema
