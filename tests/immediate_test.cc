#include "automata/immediate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xmlreval::automata {
namespace {

using testutil::CompileOrDie;
using testutil::ForAllWords;
using testutil::Word;

TEST(ImmediateSingleTest, ClassifiesUniversalAndDeadStates) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,b,(a|b)*)", &alphabet);
  ImmediateDfa immed = ImmediateDfa::FromSingle(dfa);
  EXPECT_EQ(immed.Class(dfa.Run(Word("ab", &alphabet))),
            StateClass::kImmediateAccept);
  EXPECT_EQ(immed.Class(dfa.Run(Word("b", &alphabet))),
            StateClass::kImmediateReject);
  EXPECT_EQ(immed.Class(dfa.start_state()), StateClass::kNormal);
}

TEST(ImmediateSingleTest, AcceptsSameLanguage) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("((a,b)+,c?)", &alphabet);
  ImmediateDfa immed = ImmediateDfa::FromSingle(dfa);
  ForAllWords(alphabet.size(), 5, [&](const std::vector<Symbol>& word) {
    ImmediateRunResult run = immed.Run(word);
    EXPECT_EQ(run.verdict == Verdict::kAccept, dfa.Accepts(word));
  });
}

TEST(ImmediateSingleTest, EarlyRejectOnDeadPrefix) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,b,c,d)", &alphabet);
  ImmediateDfa immed = ImmediateDfa::FromSingle(dfa);
  // "ba..." can never recover; rejection after 1 symbol.
  ImmediateRunResult run = immed.Run(Word("bacd", &alphabet));
  EXPECT_EQ(run.verdict, Verdict::kReject);
  EXPECT_TRUE(run.decided_early);
  EXPECT_EQ(run.symbols_scanned, 1u);
}

TEST(ImmediatePairTest, PaperFigure1Scenario) {
  // a = shipTo billTo? items (source), b = shipTo billTo items (target):
  // after reading "shipTo billTo" the remainder languages coincide, so
  // c_immed accepts after 2 of 3 symbols.
  Alphabet alphabet;
  Dfa a = CompileOrDie("(shipTo,billTo?,items)", &alphabet);
  Dfa b = CompileOrDie("(shipTo,billTo,items)", &alphabet);
  ImmediateDfa c = ImmediateDfa::FromPair(a, b);

  std::vector<Symbol> with_bill = {*alphabet.Find("shipTo"),
                                   *alphabet.Find("billTo"),
                                   *alphabet.Find("items")};
  ImmediateRunResult run = c.Run(with_bill);
  EXPECT_EQ(run.verdict, Verdict::kAccept);
  EXPECT_TRUE(run.decided_early);
  EXPECT_EQ(run.symbols_scanned, 2u);

  // Without billTo the string is in L(a) \ L(b); after "shipTo items" the
  // pair is dead (target needed billTo) — rejected by the second symbol.
  std::vector<Symbol> without_bill = {*alphabet.Find("shipTo"),
                                      *alphabet.Find("items")};
  run = c.Run(without_bill);
  EXPECT_EQ(run.verdict, Verdict::kReject);
  EXPECT_TRUE(run.decided_early);
  EXPECT_LE(run.symbols_scanned, 2u);
}

TEST(ImmediatePairTest, IdenticalAutomataAcceptInstantly) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("(x,(y|z)*)", &alphabet);
  ImmediateDfa c = ImmediateDfa::FromPair(a, a);
  // L(q0) ⊆ L(q0): the start state is immediate-accept; no symbol is read.
  ImmediateRunResult run = c.Run(Word("xyz", &alphabet));
  EXPECT_EQ(run.verdict, Verdict::kAccept);
  EXPECT_EQ(run.symbols_scanned, 0u);
}

TEST(ImmediatePairTest, VerdictMatchesMembershipForSourceStrings) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("((a|b)+,c?)", &alphabet);
  Dfa b = CompileOrDie("((a,b)*,c)", &alphabet);
  ImmediateDfa c = ImmediateDfa::FromPair(a, b);
  ForAllWords(alphabet.size(), 6, [&](const std::vector<Symbol>& word) {
    if (!a.Accepts(word)) return;  // Theorem 3 assumes s ∈ L(a)
    ImmediateRunResult run = c.Run(word);
    EXPECT_EQ(run.verdict == Verdict::kAccept, b.Accepts(word));
  });
}

// Proposition 3 (optimality): no immediate decision automaton for
// L(a) ∩ L(b) can decide earlier. Brute force the earliest SEMANTICALLY
// safe decision point for each string: after i symbols a decision is safe
// iff all extensions (up to a length covering the product's diameter)
// agree on the outcome "in L(a) → in L(b)" (accept) or "not in L(a)∩L(b)"
// (reject).
class OptimalityProperty
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(OptimalityProperty, DecidesAtTheEarliestSafePoint) {
  Alphabet alphabet;
  Dfa a = CompileOrDie(GetParam().first, &alphabet);
  Dfa b = CompileOrDie(GetParam().second, &alphabet);
  ImmediateDfa c = ImmediateDfa::FromPair(a, b);
  size_t diameter = a.num_states() * b.num_states() + 1;
  size_t ext = std::min<size_t>(diameter, 6);

  ForAllWords(alphabet.size(), 4, [&](const std::vector<Symbol>& word) {
    if (!a.Accepts(word)) return;
    ImmediateRunResult run = c.Run(word);

    // Brute-force earliest safe point.
    size_t earliest = word.size();
    for (size_t i = 0; i <= word.size(); ++i) {
      StateId qa = a.Run(std::span<const Symbol>(word).subspan(0, i));
      StateId qb = b.Run(std::span<const Symbol>(word).subspan(0, i));
      bool can_accept = true;   // L_ext(qa) ⊆ L_ext(qb) on bounded words
      bool can_reject = true;   // L_ext(qa) ∩ L_ext(qb) = ∅ on bounded words
      ForAllWords(alphabet.size(), ext, [&](const std::vector<Symbol>& w) {
        bool in_a = a.IsAccepting(a.Run(w, qa));
        bool in_b = b.IsAccepting(b.Run(w, qb));
        if (in_a && !in_b) can_accept = false;
        if (in_a && in_b) can_reject = false;
      });
      if (can_accept || can_reject) {
        earliest = i;
        break;
      }
    }
    // c_immed must not be later than the bounded-extension ideal. (It can
    // be EARLIER only if the bounded extension was too short, which the
    // diameter bound prevents for these small automata.)
    EXPECT_LE(run.symbols_scanned, earliest)
        << "string length " << word.size();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, OptimalityProperty,
    ::testing::Values(
        std::make_pair("(a,b?,c)", "(a,b,c)"),
        std::make_pair("(a|b)*", "(a,(a|b)*)"),
        std::make_pair("((a,b)*,c?)", "((a,b)+,c)"),
        std::make_pair("(a*,b)", "(a,a*,b)"),
        std::make_pair("((a|b),(a|b))", "((a,a)|(b,b))")));

TEST(ImmediatePairTest, CountClassTallies) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("(a,b?,c)", &alphabet);
  ImmediateDfa c = ImmediateDfa::FromPair(a, a);
  size_t total = c.CountClass(StateClass::kNormal) +
                 c.CountClass(StateClass::kImmediateAccept) +
                 c.CountClass(StateClass::kImmediateReject);
  EXPECT_EQ(total, c.dfa().num_states());
  EXPECT_GT(c.CountClass(StateClass::kImmediateAccept), 0u);
}

}  // namespace
}  // namespace xmlreval::automata
