// Tests for XSD named model groups (<group name/ref>) and attribute
// groups (<attributeGroup name/ref>).

#include <gtest/gtest.h>

#include "core/full_validator.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xmlreval::schema {
namespace {

TEST(XsdGroupTest, GroupRefSplicesParticle) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <group name="KeyValue">
        <sequence>
          <element name="k" type="string"/>
          <element name="v" type="integer"/>
        </sequence>
      </group>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence>
          <group ref="KeyValue" maxOccurs="unbounded"/>
        </sequence>
      </complexType>
      <element name="single" type="S"/>
      <complexType name="S">
        <sequence>
          <group ref="KeyValue" minOccurs="0"/>
        </sequence>
      </complexType>
    </schema>)";
  auto parsed = ParseXsd(xsd, alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Schema schema = std::move(parsed).value();
  core::FullValidator validator(&schema);
  auto check = [&](const char* text) {
    auto doc = xml::ParseXml(text);
    EXPECT_TRUE(doc.ok());
    return validator.Validate(*doc).valid;
  };
  EXPECT_TRUE(check("<r><k>a</k><v>1</v></r>"));
  EXPECT_TRUE(check("<r><k>a</k><v>1</v><k>b</k><v>2</v></r>"));
  EXPECT_FALSE(check("<r/>"));                  // at least one pair
  EXPECT_FALSE(check("<r><k>a</k></r>"));       // v missing
  EXPECT_TRUE(check("<single/>"));              // group optional in S
  EXPECT_TRUE(check("<single><k>a</k><v>1</v></single>"));
}

TEST(XsdGroupTest, GroupErrors) {
  auto alphabet = std::make_shared<Alphabet>();
  // Unknown ref.
  EXPECT_FALSE(ParseXsd(R"(
    <schema><element name="r" type="R"/>
      <complexType name="R"><sequence>
        <group ref="Nope"/>
      </sequence></complexType></schema>)",
                        alphabet)
                   .ok());
  // Cyclic groups.
  Result<Schema> cyclic = ParseXsd(R"(
    <schema>
      <group name="A"><sequence><group ref="B"/></sequence></group>
      <group name="B"><sequence><group ref="A"/></sequence></group>
      <element name="r" type="R"/>
      <complexType name="R"><sequence><group ref="A"/></sequence>
      </complexType>
    </schema>)",
                                   alphabet);
  ASSERT_FALSE(cyclic.ok());
  EXPECT_NE(cyclic.status().message().find("cyclic"), std::string::npos);
  // Group without a name at top level.
  EXPECT_FALSE(ParseXsd("<schema><group><sequence/></group></schema>",
                        alphabet)
                   .ok());
}

TEST(XsdAttributeGroupTest, RefSplicesAttributes) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <attributeGroup name="Audit">
        <attribute name="createdBy" type="string" use="required"/>
        <attribute name="version" type="positiveInteger"/>
      </attributeGroup>
      <element name="doc" type="Doc"/>
      <complexType name="Doc">
        <sequence><element name="body" type="string"/></sequence>
        <attributeGroup ref="Audit"/>
        <attribute name="title" type="string"/>
      </complexType>
    </schema>)";
  auto parsed = ParseXsd(xsd, alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Schema schema = std::move(parsed).value();
  const ComplexType& doc_type = schema.complex_type(*schema.FindType("Doc"));
  EXPECT_EQ(doc_type.attributes.size(), 3u);
  EXPECT_TRUE(doc_type.attributes.at("createdBy").required);

  core::FullValidator validator(&schema);
  auto ok = xml::ParseXml(
      "<doc createdBy=\"me\" version=\"2\" title=\"t\"><body>x</body></doc>");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(validator.Validate(*ok).valid);
  auto missing = xml::ParseXml("<doc title=\"t\"><body>x</body></doc>");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(validator.Validate(*missing).valid);
}

TEST(XsdAttributeGroupTest, GroupWithAnyAttributeOpensType) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <attributeGroup name="Open"><anyAttribute/></attributeGroup>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence/>
        <attributeGroup ref="Open"/>
      </complexType>
    </schema>)";
  auto parsed = ParseXsd(xsd, alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Schema schema = std::move(parsed).value();
  EXPECT_TRUE(schema.complex_type(*schema.FindType("R")).open_attributes);
}

}  // namespace
}  // namespace xmlreval::schema
