#include "core/cast_validator.h"

#include <gtest/gtest.h>

#include <string_view>

#include "core/full_validator.h"
#include "obs/trace.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/random_docs.h"
#include "xml/parser.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;

struct DtdPair {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void Load(const char* source_dtd, const char* target_dtd) {
    auto s = ParseDtd(source_dtd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = ParseDtd(target_dtd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

TEST(CastValidatorTest, SameSchemaAlwaysAccepts) {
  DtdPair p;
  p.Load("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>",
         "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>");
  auto doc = xml::ParseXml("<r><a>1</a><a>2</a></r>");
  ASSERT_TRUE(doc.ok());
  CastValidator cast(p.relations.get());
  ValidationReport r = cast.Validate(*doc);
  EXPECT_TRUE(r.valid);
  // Root pair is subsumed: the validator visits only the root.
  EXPECT_EQ(r.counters.nodes_visited, 1u);
  EXPECT_EQ(r.counters.subtrees_skipped, 1u);
}

TEST(CastValidatorTest, DisjointRootRejectsAtOnce) {
  DtdPair p;
  p.Load("<!ELEMENT r (a)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>",
         "<!ELEMENT r (b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>");
  auto doc = xml::ParseXml("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  CastValidator cast(p.relations.get());
  ValidationReport r = cast.Validate(*doc);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.counters.nodes_visited, 1u);
  EXPECT_EQ(r.counters.disjoint_rejects, 1u);
  EXPECT_NE(r.violation.find("disjoint"), std::string::npos);
}

TEST(CastValidatorTest, RootNotDeclaredInTarget) {
  DtdPair p;
  p.Load("<!ELEMENT r (a)><!ELEMENT a EMPTY>",
         "<!ELEMENT other (a)><!ELEMENT a EMPTY>");
  auto doc = xml::ParseXml("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  CastValidator cast(p.relations.get());
  ValidationReport r = cast.Validate(*doc);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("target"), std::string::npos);
}

TEST(CastValidatorTest, ContentModelNarrowing) {
  // Source allows a*, target wants exactly two a's.
  DtdPair p;
  p.Load("<!ELEMENT r (a*)><!ELEMENT a EMPTY>",
         "<!ELEMENT r (a,a)><!ELEMENT a EMPTY>");
  CastValidator cast(p.relations.get());
  auto ok_doc = xml::ParseXml("<r><a/><a/></r>");
  ASSERT_TRUE(ok_doc.ok());
  EXPECT_TRUE(cast.Validate(*ok_doc).valid);
  auto bad_doc = xml::ParseXml("<r><a/></r>");
  ASSERT_TRUE(bad_doc.ok());
  EXPECT_FALSE(cast.Validate(*bad_doc).valid);
  auto bad3 = xml::ParseXml("<r><a/><a/><a/></r>");
  ASSERT_TRUE(bad3.ok());
  EXPECT_FALSE(cast.Validate(*bad3).valid);
}

TEST(CastValidatorTest, SimpleValueRechecked) {
  // Same structure; target element content must be narrower... with DTDs
  // all PCDATA is string, so use XSD for the facet difference.
  auto alphabet = std::make_shared<Alphabet>();
  auto src = schema::ParseXsd(R"(
    <schema><element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="v" type="integer"/>
      </sequence></complexType></schema>)",
                              alphabet);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  auto tgt = schema::ParseXsd(R"(
    <schema><element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="v" type="positiveInteger"/>
      </sequence></complexType></schema>)",
                              alphabet);
  ASSERT_TRUE(tgt.ok()) << tgt.status().ToString();
  Schema source = std::move(src).value();
  Schema target = std::move(tgt).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&source, &target));
  CastValidator cast(&relations);
  auto ok_doc = xml::ParseXml("<r><v>5</v></r>");
  ASSERT_TRUE(ok_doc.ok());
  EXPECT_TRUE(cast.Validate(*ok_doc).valid);
  auto bad_doc = xml::ParseXml("<r><v>-5</v></r>");
  ASSERT_TRUE(bad_doc.ok());
  ValidationReport r = cast.Validate(*bad_doc);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.counters.simple_checks, 1u);
}

TEST(CastValidatorTest, ImmediateContentOptionDoesNotChangeVerdicts) {
  DtdPair p;
  p.Load("<!ELEMENT r ((a,b)|(c,d))*><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
         "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
         "<!ELEMENT r ((a,b)*,(c,d)*)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
         "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>");
  CastValidator with(p.relations.get());
  CastValidator::Options options;
  options.use_immediate_content = false;
  CastValidator without(p.relations.get(), options);
  for (const char* text :
       {"<r/>", "<r><a/><b/></r>", "<r><c/><d/><a/><b/></r>",
        "<r><a/><b/><c/><d/></r>", "<r><a/><b/><a/><b/><c/><d/></r>"}) {
    auto doc = xml::ParseXml(text);
    ASSERT_TRUE(doc.ok());
    ValidationReport r1 = with.Validate(*doc);
    ValidationReport r2 = without.Validate(*doc);
    EXPECT_EQ(r1.valid, r2.valid) << text;
    // The §4 machinery can only reduce DFA work.
    EXPECT_LE(r1.counters.dfa_steps, r2.counters.dfa_steps) << text;
  }
}

// Property: on documents sampled from the source schema, the cast verdict
// must equal the target full-validation verdict.
class CastAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static constexpr const char* kSchemas[] = {
      // 0: list of records with optional tail
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, v?)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      // 1: same but tail required
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      // 2: at least one record, reversed fields
      "<!ELEMENT r (rec+)><!ELEMENT rec (v?, k)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      // 3: wrapped records
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, k?, v*)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
  };
};

TEST_P(CastAgreement, CastEqualsFullOnSampledDocuments) {
  auto [source_idx, target_idx] = GetParam();
  DtdPair p;
  schema::DtdParseOptions options;
  options.roots = {"r"};
  auto s = ParseDtd(kSchemas[source_idx], p.alphabet, options);
  ASSERT_TRUE(s.ok());
  p.source = std::make_unique<Schema>(std::move(s).value());
  auto t = ParseDtd(kSchemas[target_idx], p.alphabet, options);
  ASSERT_TRUE(t.ok());
  p.target = std::make_unique<Schema>(std::move(t).value());
  ASSERT_OK_AND_ASSIGN(TypeRelations relations, TypeRelations::Compute(
                                                    p.source.get(),
                                                    p.target.get()));
  CastValidator cast(&relations);
  FullValidator full(p.target.get());

  for (uint64_t seed = 1; seed <= 25; ++seed) {
    workload::RandomDocOptions doc_options;
    doc_options.seed = seed;
    doc_options.max_elements = 40;
    doc_options.root_label = "r";
    auto doc = workload::SampleDocument(*p.source, doc_options);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    ASSERT_TRUE(FullValidator(p.source.get()).Validate(*doc).valid)
        << "sampler produced a source-invalid document, seed=" << seed;
    ValidationReport cast_report = cast.Validate(*doc);
    ValidationReport full_report = full.Validate(*doc);
    EXPECT_EQ(cast_report.valid, full_report.valid)
        << "seed=" << seed << " cast='" << cast_report.violation << "' full='"
        << full_report.violation << "'";
    EXPECT_LE(cast_report.counters.nodes_visited,
              full_report.counters.nodes_visited)
        << "cast may never visit more than full validation";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemaPairs, CastAgreement,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4)));

// Reusing one CastScratch across documents — including across a failing
// run, which must leave the scratch clean — changes nothing about the
// reports.
TEST(CastValidatorTest, ScratchReuseMatchesPlainValidate) {
  DtdPair p;
  p.Load("<!ELEMENT r (a*, b?)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>",
         "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>");
  CastValidator cast(p.relations.get());
  CastScratch scratch;
  for (const char* text : {"<r><a>1</a><a>2</a></r>", "<r><a>1</a><b/></r>",
                           "<r/>", "<r><b/></r>"}) {
    auto doc = xml::ParseXml(text);
    ASSERT_TRUE(doc.ok());
    ValidationReport plain = cast.Validate(*doc);
    ValidationReport reused = cast.Validate(*doc, &scratch);
    EXPECT_EQ(plain.valid, reused.valid) << text;
    EXPECT_EQ(plain.violation, reused.violation) << text;
    EXPECT_EQ(plain.violation_path.ToString(),
              reused.violation_path.ToString())
        << text;
    EXPECT_EQ(plain.counters.nodes_visited, reused.counters.nodes_visited)
        << text;
    EXPECT_EQ(plain.counters.dfa_steps, reused.counters.dfa_steps) << text;
  }
}

// ValidateSubtree is the ModValidator's workhorse; it now carries its own
// trace span so per-subtree work shows up in Chrome traces.
TEST(CastValidatorTest, ValidateSubtreeEmitsSubtreeSpan) {
#ifdef XMLREVAL_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out";
#endif
  DtdPair p;
  p.Load("<!ELEMENT r (a*, b?)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>",
         "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>");
  auto doc = xml::ParseXml("<r><a>1</a></r>");
  ASSERT_TRUE(doc.ok());
  auto sym = p.alphabet->Find("r");
  ASSERT_TRUE(sym.has_value());
  TypeId s_root = p.source->RootType(*sym);
  TypeId t_root = p.target->RootType(*sym);
  ASSERT_NE(s_root, schema::kInvalidType);
  ASSERT_NE(t_root, schema::kInvalidType);

  CastValidator cast(p.relations.get());
  obs::TraceSink::Global().Clear();
  obs::SetTraceEnabled(true);
  ValidationReport r =
      cast.ValidateSubtree(*doc, doc->root(), s_root, t_root);
  obs::SetTraceEnabled(false);
  EXPECT_TRUE(r.valid) << r.violation;

  bool saw_subtree_span = false;
  for (const auto& event : obs::TraceSink::Global().Events()) {
    if (std::string_view(event.name) == "cast.subtree") {
      saw_subtree_span = true;
    }
  }
  EXPECT_TRUE(saw_subtree_span);
  obs::TraceSink::Global().Clear();
}

}  // namespace
}  // namespace xmlreval::core
