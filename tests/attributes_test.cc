// End-to-end tests of attribute constraints — the extension beyond the
// paper's structural model: declaration via XSD, participation in R_sub /
// R_dis, checking in every validator, and repair by the corrector.

#include <gtest/gtest.h>

#include "core/cast_validator.h"
#include "core/corrector.h"
#include "core/full_validator.h"
#include "core/mod_validator.h"
#include "core/relations.h"
#include "core/streaming_validator.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "xml/editor.h"
#include "xml/parser.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::Schema;

// An order element with attributes: id required string, priority optional
// bounded integer.
constexpr const char* kAttrXsd = R"(
<schema>
  <element name="order" type="Order"/>
  <complexType name="Order">
    <sequence>
      <element name="sku" type="string"/>
    </sequence>
    <attribute name="id" type="string" use="required"/>
    <attribute name="priority" use="optional">
      <simpleType>
        <restriction base="integer">
          <minInclusive value="1"/>
          <maxInclusive value="5"/>
        </restriction>
      </simpleType>
    </attribute>
  </complexType>
</schema>)";

// Same structure, but priority becomes REQUIRED and its range tightens.
constexpr const char* kStrictAttrXsd = R"(
<schema>
  <element name="order" type="Order"/>
  <complexType name="Order">
    <sequence>
      <element name="sku" type="string"/>
    </sequence>
    <attribute name="id" type="string" use="required"/>
    <attribute name="priority" use="required">
      <simpleType>
        <restriction base="integer">
          <minInclusive value="1"/>
          <maxInclusive value="3"/>
        </restriction>
      </simpleType>
    </attribute>
  </complexType>
</schema>)";

struct Fixture {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void Load(const char* source_xsd, const char* target_xsd) {
    auto s = schema::ParseXsd(source_xsd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = schema::ParseXsd(target_xsd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

TEST(AttributeSchemaTest, XsdParsesDeclarations) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = schema::ParseXsd(kAttrXsd, alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Schema schema = std::move(parsed).value();
  const schema::ComplexType& order =
      schema.complex_type(*schema.FindType("Order"));
  ASSERT_EQ(order.attributes.size(), 2u);
  EXPECT_TRUE(order.attributes.at("id").required);
  EXPECT_FALSE(order.attributes.at("priority").required);
  EXPECT_EQ(order.attributes.at("priority").type.kind,
            schema::AtomicKind::kInteger);
  EXPECT_FALSE(order.open_attributes);
}

TEST(AttributeSchemaTest, DtdTypesAreOpen) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = schema::ParseDtd("<!ELEMENT r (a)><!ELEMENT a EMPTY>",
                                 alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();
  EXPECT_TRUE(schema.complex_type(*schema.FindType("r")).open_attributes);
}

TEST(AttributeSchemaTest, AnyAttributeMakesTypeOpen) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = schema::ParseXsd(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence><element name="x" type="string"/></sequence>
        <anyAttribute/>
      </complexType>
    </schema>)",
                                 alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Schema schema = std::move(parsed).value();
  EXPECT_TRUE(schema.complex_type(*schema.FindType("R")).open_attributes);
}

TEST(AttributeFullValidationTest, ChecksPresenceValueAndClosedness) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = schema::ParseXsd(kAttrXsd, alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();
  FullValidator validator(&schema);
  auto check = [&](const char* text) {
    auto doc = xml::ParseXml(text);
    EXPECT_TRUE(doc.ok());
    return validator.Validate(*doc);
  };
  EXPECT_TRUE(check("<order id=\"o1\"><sku>A</sku></order>").valid);
  EXPECT_TRUE(check("<order id=\"o1\" priority=\"3\"><sku>A</sku></order>")
                  .valid);
  // Missing required id.
  ValidationReport missing = check("<order><sku>A</sku></order>");
  EXPECT_FALSE(missing.valid);
  EXPECT_NE(missing.violation.find("required attribute 'id'"),
            std::string::npos);
  // Out-of-range priority.
  EXPECT_FALSE(
      check("<order id=\"x\" priority=\"9\"><sku>A</sku></order>").valid);
  // Undeclared attribute.
  ValidationReport undeclared =
      check("<order id=\"x\" color=\"red\"><sku>A</sku></order>");
  EXPECT_FALSE(undeclared.valid);
  EXPECT_NE(undeclared.violation.find("not declared"), std::string::npos);
}

TEST(AttributeRelationsTest, SubsumptionAccountsForAttributes) {
  Fixture f;
  f.Load(kAttrXsd, kStrictAttrXsd);
  schema::TypeId s = *f.source->FindType("Order");
  schema::TypeId t = *f.target->FindType("Order");
  // priority optional+wider in the source: not subsumed by the strict one
  // (a source-valid order without priority is target-invalid)...
  EXPECT_FALSE(f.relations->Subsumed(s, t));
  // ...but orders with priority in [1,3] satisfy both: not disjoint.
  EXPECT_FALSE(f.relations->Disjoint(s, t));
  // The reverse direction subsumes: required+narrow ⊆ optional+wide.
  ASSERT_OK_AND_ASSIGN(TypeRelations reverse,
                       TypeRelations::Compute(f.target.get(), f.source.get()));
  EXPECT_TRUE(reverse.Subsumed(t, s));
}

TEST(AttributeRelationsTest, RequiredAttributeCanForceDisjointness) {
  Fixture f;
  f.Load(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence><element name="x" type="string"/></sequence>
      </complexType>
    </schema>)",
         R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence><element name="x" type="string"/></sequence>
        <attribute name="version" type="integer" use="required"/>
      </complexType>
    </schema>)");
  schema::TypeId s = *f.source->FindType("R");
  schema::TypeId t = *f.target->FindType("R");
  // Source declares no attributes (closed): its instances can never carry
  // the required 'version' — the types are disjoint.
  EXPECT_TRUE(f.relations->Disjoint(s, t));
  CastValidator cast(f.relations.get());
  auto doc = xml::ParseXml("<r><x>1</x></r>");
  ASSERT_TRUE(doc.ok());
  ValidationReport report = cast.Validate(*doc);
  EXPECT_FALSE(report.valid);
  EXPECT_EQ(report.counters.disjoint_rejects, 1u);
}

TEST(AttributeCastTest, RechecksOnNonSubsumedPairs) {
  Fixture f;
  f.Load(kAttrXsd, kStrictAttrXsd);
  CastValidator cast(f.relations.get());
  auto run = [&](const char* text) {
    auto doc = xml::ParseXml(text);
    EXPECT_TRUE(doc.ok());
    EXPECT_TRUE(FullValidator(f.source.get()).Validate(*doc).valid);
    return cast.Validate(*doc);
  };
  EXPECT_TRUE(run("<order id=\"a\" priority=\"2\"><sku>S</sku></order>")
                  .valid);
  // Valid for source (priority optional) but target requires it.
  EXPECT_FALSE(run("<order id=\"a\"><sku>S</sku></order>").valid);
  // Priority 5 fits the source range, not the target's.
  EXPECT_FALSE(run("<order id=\"a\" priority=\"5\"><sku>S</sku></order>")
                   .valid);
}

TEST(AttributeStreamingTest, MatchesDomVerdicts) {
  Fixture f;
  f.Load(kAttrXsd, kStrictAttrXsd);
  CastValidator dom(f.relations.get());
  for (const char* text :
       {"<order id=\"a\" priority=\"2\"><sku>S</sku></order>",
        "<order id=\"a\"><sku>S</sku></order>",
        "<order id=\"a\" priority=\"4\"><sku>S</sku></order>"}) {
    auto doc = xml::ParseXml(text);
    ASSERT_TRUE(doc.ok());
    StreamingReport streamed = StreamingCastValidate(text, *f.relations);
    EXPECT_EQ(streamed.valid, dom.Validate(*doc).valid) << text;
  }
  // Streaming full validation too.
  StreamingReport full = StreamingValidate(
      "<order id=\"a\" color=\"x\"><sku>S</sku></order>", *f.target);
  EXPECT_FALSE(full.valid);
  EXPECT_NE(full.violation.find("not declared"), std::string::npos);
}

TEST(AttributeModValidatorTest, EditSpineRechecksAttributes) {
  Fixture f;
  f.Load(kAttrXsd, kStrictAttrXsd);
  ModValidator validator(f.relations.get());
  // priority missing: source-valid, target-invalid; edit the sku text so
  // the root is on the modified spine and the attribute check fires there.
  auto doc = xml::ParseXml("<order id=\"a\"><sku>S</sku></order>");
  ASSERT_TRUE(doc.ok());
  xml::DocumentEditor editor(&*doc);
  xml::NodeId sku = xml::ElementChildren(*doc, doc->root())[0];
  ASSERT_OK(editor.UpdateText(doc->first_child(sku), "S2"));
  xml::ModificationIndex mods = editor.Seal();
  ValidationReport report = validator.Validate(*doc, mods);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.violation.find("priority"), std::string::npos);
}

TEST(AttributeCorrectorTest, RepairsAttributeViolations) {
  Fixture f;
  f.Load(kAttrXsd, kStrictAttrXsd);
  DocumentCorrector corrector(f.relations.get());
  // Missing required priority AND an out-of-range one in a second doc.
  auto doc = xml::ParseXml("<order id=\"a\"><sku>S</sku></order>");
  ASSERT_TRUE(doc.ok());
  ASSERT_OK_AND_ASSIGN(CorrectionReport report, corrector.Correct(&*doc));
  ASSERT_TRUE(report.changed());
  EXPECT_EQ(report.steps[0].kind, CorrectionStep::Kind::kSetAttribute);
  EXPECT_TRUE(FullValidator(f.target.get()).Validate(*doc).valid);
  EXPECT_NE(doc->FindAttribute(doc->root(), "priority"), nullptr);

  auto doc2 = xml::ParseXml(
      "<order id=\"a\" priority=\"5\"><sku>S</sku></order>");
  ASSERT_TRUE(doc2.ok());
  ASSERT_OK_AND_ASSIGN(CorrectionReport report2, corrector.Correct(&*doc2));
  EXPECT_TRUE(report2.changed());
  EXPECT_TRUE(FullValidator(f.target.get()).Validate(*doc2).valid);
  // The repaired value is inside [1,3].
  int v = std::stoi(*doc2->FindAttribute(doc2->root(), "priority"));
  EXPECT_GE(v, 1);
  EXPECT_LE(v, 3);
}

TEST(AttributeCorrectorTest, DropsUndeclaredAndFillsInserted) {
  Fixture f;
  // Target requires 'version' on a child the corrector must MATERIALIZE.
  f.Load(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence><element name="meta" type="Meta" minOccurs="0"/></sequence>
        <anyAttribute/>
      </complexType>
      <complexType name="Meta">
        <sequence/>
        <attribute name="version" type="integer" use="required"/>
      </complexType>
    </schema>)",
         R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence><element name="meta" type="Meta"/></sequence>
      </complexType>
      <complexType name="Meta">
        <sequence/>
        <attribute name="version" type="integer" use="required"/>
      </complexType>
    </schema>)");
  DocumentCorrector corrector(f.relations.get());
  // Source-valid: no meta child, stray attribute on r (source r is open).
  auto doc = xml::ParseXml("<r junk=\"1\"/>");
  ASSERT_TRUE(doc.ok());
  ASSERT_OK_AND_ASSIGN(CorrectionReport report, corrector.Correct(&*doc));
  EXPECT_TRUE(FullValidator(f.target.get()).Validate(*doc).valid)
      << FullValidator(f.target.get()).Validate(*doc).violation;
  // junk removed, meta inserted WITH its required version attribute.
  EXPECT_EQ(doc->FindAttribute(doc->root(), "junk"), nullptr);
  auto kids = xml::ElementChildren(*doc, doc->root());
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_NE(doc->FindAttribute(kids[0], "version"), nullptr);
}

}  // namespace
}  // namespace xmlreval::core

namespace xmlreval::core {
namespace {

// XSD `fixed` attribute values: presence-optional, value-pinned.
TEST(FixedAttributeTest, EnforcedByValidatorsAndRepairedByCorrector) {
  Fixture f;
  const char* fixed_xsd = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence><element name="x" type="string"/></sequence>
        <attribute name="version" type="string" fixed="2.0"/>
        <attribute name="kind" type="string" use="required" fixed="po"/>
      </complexType>
    </schema>)";
  f.Load(fixed_xsd, fixed_xsd);
  FullValidator validator(f.target.get());
  auto check = [&](const char* text) {
    auto doc = xml::ParseXml(text);
    EXPECT_TRUE(doc.ok());
    return validator.Validate(*doc);
  };
  // Optional fixed attribute may be absent, or present with the value.
  EXPECT_TRUE(check("<r kind=\"po\"><x>a</x></r>").valid);
  EXPECT_TRUE(check("<r kind=\"po\" version=\"2.0\"><x>a</x></r>").valid);
  // Wrong fixed values rejected; missing required-fixed rejected.
  EXPECT_FALSE(check("<r kind=\"po\" version=\"3.0\"><x>a</x></r>").valid);
  EXPECT_FALSE(check("<r kind=\"invoice\"><x>a</x></r>").valid);
  EXPECT_FALSE(check("<r version=\"2.0\"><x>a</x></r>").valid);

  // Corrector pins wrong values to the fixed ones.
  DocumentCorrector corrector(f.relations.get());
  auto doc = xml::ParseXml("<r kind=\"po\" version=\"3.0\"><x>a</x></r>");
  ASSERT_TRUE(doc.ok());
  // Precondition needs source-validity; source == target here, so repair
  // against a deliberately-broken instance uses the open-enough source...
  // instead craft: source accepts any version (no fixed).
  Fixture g;
  g.Load(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence><element name="x" type="string"/></sequence>
        <attribute name="version" type="string"/>
        <attribute name="kind" type="string" use="required"/>
      </complexType>
    </schema>)",
         fixed_xsd);
  DocumentCorrector strict_corrector(g.relations.get());
  auto doc2 = xml::ParseXml("<r kind=\"invoice\" version=\"3.0\"><x>a</x></r>");
  ASSERT_TRUE(doc2.ok());
  ASSERT_TRUE(FullValidator(g.source.get()).Validate(*doc2).valid);
  auto report = strict_corrector.Correct(&*doc2);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(FullValidator(g.target.get()).Validate(*doc2).valid);
  EXPECT_EQ(*doc2->FindAttribute(doc2->root(), "version"), "2.0");
  EXPECT_EQ(*doc2->FindAttribute(doc2->root(), "kind"), "po");
}

TEST(FixedAttributeTest, ParticipatesInRelations) {
  Fixture f;
  // Source: kind fixed "po"; target: kind fixed "invoice" and required on
  // both sides → no instance satisfies both → disjoint.
  f.Load(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence/>
        <attribute name="kind" type="string" use="required" fixed="po"/>
      </complexType>
    </schema>)",
         R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence/>
        <attribute name="kind" type="string" use="required" fixed="invoice"/>
      </complexType>
    </schema>)");
  schema::TypeId s = *f.source->FindType("R");
  schema::TypeId t = *f.target->FindType("R");
  EXPECT_TRUE(f.relations->Disjoint(s, t));
  EXPECT_FALSE(f.relations->Subsumed(s, t));

  // Same fixed value on both sides: subsumed.
  Fixture g;
  const char* same = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence/>
        <attribute name="kind" type="string" use="required" fixed="po"/>
      </complexType>
    </schema>)";
  g.Load(same, same);
  EXPECT_TRUE(g.relations->Subsumed(*g.source->FindType("R"),
                                    *g.target->FindType("R")));
}

TEST(FixedAttributeTest, InvalidFixedValueRejectedAtBuild) {
  auto alphabet = std::make_shared<Alphabet>();
  Result<Schema> bad = schema::ParseXsd(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence/>
        <attribute name="n" type="positiveInteger" fixed="zero"/>
      </complexType>
    </schema>)",
                                        alphabet);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidSchema);
}

}  // namespace
}  // namespace xmlreval::core
