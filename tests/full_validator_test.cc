#include "core/full_validator.h"

#include <gtest/gtest.h>

#include "schema/dtd_parser.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;

class FullValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_ = std::make_shared<Alphabet>();
    auto schema = ParseDtd(
        "<!ELEMENT library (book+, magazine*)>"
        "<!ELEMENT book (title, author+)>"
        "<!ELEMENT magazine (title)>"
        "<!ELEMENT title (#PCDATA)>"
        "<!ELEMENT author (#PCDATA)>",
        alphabet_);
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::make_unique<Schema>(std::move(schema).value());
  }

  ValidationReport Validate(const std::string& text) {
    auto doc = xml::ParseXml(text);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    FullValidator validator(schema_.get());
    return validator.Validate(*doc);
  }

  std::shared_ptr<Alphabet> alphabet_;
  std::unique_ptr<Schema> schema_;
};

TEST_F(FullValidatorTest, AcceptsValidDocument) {
  ValidationReport r = Validate(
      "<library>"
      "<book><title>T1</title><author>A</author><author>B</author></book>"
      "<magazine><title>M</title></magazine>"
      "</library>");
  EXPECT_TRUE(r.valid) << r.violation;
  EXPECT_GT(r.counters.nodes_visited, 0u);
  EXPECT_GT(r.counters.dfa_steps, 0u);
  EXPECT_GT(r.counters.simple_checks, 0u);
}

TEST_F(FullValidatorTest, RejectsUndeclaredRoot) {
  ValidationReport r = Validate("<junk/>");
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("root"), std::string::npos);
}

TEST_F(FullValidatorTest, RejectsContentModelViolation) {
  // library requires at least one book.
  ValidationReport r = Validate("<library/>");
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("content model"), std::string::npos);
}

TEST_F(FullValidatorTest, RejectsWrongOrder) {
  ValidationReport r = Validate(
      "<library>"
      "<magazine><title>M</title></magazine>"
      "<book><title>T</title><author>A</author></book>"
      "</library>");
  EXPECT_FALSE(r.valid);
}

TEST_F(FullValidatorTest, RejectsUnknownElement) {
  ValidationReport r = Validate(
      "<library><book><title>T</title><author>A</author>"
      "<isbn>123</isbn></book></library>");
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("isbn"), std::string::npos);
}

TEST_F(FullValidatorTest, RejectsElementUnderSimpleType) {
  ValidationReport r = Validate(
      "<library><book><title><b>no</b></title>"
      "<author>A</author></book></library>");
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("simple"), std::string::npos);
}

TEST_F(FullValidatorTest, RejectsTextUnderComplexType) {
  ValidationReport r = Validate(
      "<library>stray text<book><title>T</title><author>A</author></book>"
      "</library>");
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("character data"), std::string::npos);
}

TEST_F(FullValidatorTest, ViolationPathPointsAtOffendingNode) {
  ValidationReport r = Validate(
      "<library>"
      "<book><title>T</title><author>A</author></book>"
      "<book><title>T2</title><oops/></book>"
      "</library>");
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.violation_path.ToString(), "1.1");  // second book, second child
}

TEST_F(FullValidatorTest, EmptySimpleContentIsValidString) {
  ValidationReport r = Validate(
      "<library><book><title/><author>A</author></book></library>");
  EXPECT_TRUE(r.valid) << r.violation;
}

TEST_F(FullValidatorTest, CountsAreExact) {
  // <library><book><title>T</title><author>A</author></book></library>
  // visits: library, book, title, text, author, text = 6 nodes.
  ValidationReport r = Validate(
      "<library><book><title>T</title><author>A</author></book></library>");
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.counters.elements_visited, 4u);
  EXPECT_EQ(r.counters.text_nodes_visited, 2u);
  EXPECT_EQ(r.counters.nodes_visited, 6u);
  // DFA steps: 1 (book under library) + 2 (title author) = 3.
  EXPECT_EQ(r.counters.dfa_steps, 3u);
  EXPECT_EQ(r.counters.simple_checks, 2u);
}

TEST_F(FullValidatorTest, ValidateSubtree) {
  auto doc = xml::ParseXml(
      "<library><book><title>T</title><author>A</author></book></library>");
  ASSERT_TRUE(doc.ok());
  FullValidator validator(schema_.get());
  xml::NodeId book = xml::ElementChildren(*doc, doc->root())[0];
  ValidationReport r =
      validator.ValidateSubtree(*doc, book, *schema_->FindType("book"));
  EXPECT_TRUE(r.valid);
  // Wrong type for the subtree:
  ValidationReport wrong =
      validator.ValidateSubtree(*doc, book, *schema_->FindType("magazine"));
  EXPECT_FALSE(wrong.valid);
}

}  // namespace
}  // namespace xmlreval::core
