// Causal tracing across the work-stealing fan-out: on a ≥4-thread
// parallel cast, EVERY cast.task span must be reachable from the request
// via Chrome flow events — each task's 'f' (flow finish) binds inside the
// task's span, shares its id with exactly one 's' (flow start) emitted by
// the spawner, and carries the request's trace_id. Plus the tail-sampling
// contract on the sink: staged events only surface for kept traces.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/json.h"
#include "core/parallel_cast_validator.h"
#include "core/relations.h"
#include "obs/trace.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "xml/tree.h"

#ifdef XMLREVAL_OBS_DISABLED
#define SKIP_IF_OBS_COMPILED_OUT() \
  GTEST_SKIP() << "instrumentation compiled out (XMLREVAL_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_COMPILED_OUT() (void)0
#endif

namespace xmlreval::obs {
namespace {

class TraceGuard {
 public:
  TraceGuard() {
    TraceSink::Global().Clear();
    SetTraceEnabled(true);
  }
  ~TraceGuard() {
    SetTraceEnabled(false);
    TraceSink::Global().SetTailSampling(false);
    TraceSink::Global().Clear();
  }
};

// One exported Chrome trace event, decoded just enough for flow checks.
struct DecodedEvent {
  std::string name;
  std::string ph;
  uint64_t ts = 0;
  uint64_t dur = 0;
  uint64_t tid = 0;
  uint64_t id = 0;        // flow events only
  uint64_t trace_id = 0;  // args.trace_id
};

std::vector<DecodedEvent> DecodeExport() {
  auto parsed = json::Parse(TraceSink::Global().ExportChromeJson());
  EXPECT_TRUE(parsed.ok());
  std::vector<DecodedEvent> out;
  const json::Value* events = parsed->Find("traceEvents");
  if (events == nullptr || !events->is_array()) return out;
  for (const json::Value& e : events->AsArray()) {
    DecodedEvent d;
    d.name = e.Find("name")->AsString();
    d.ph = e.Find("ph")->AsString();
    d.ts = static_cast<uint64_t>(e.Find("ts")->AsNumber());
    if (const json::Value* v = e.Find("dur"); v != nullptr) {
      d.dur = static_cast<uint64_t>(v->AsNumber());
    }
    if (const json::Value* v = e.Find("tid"); v != nullptr) {
      d.tid = static_cast<uint64_t>(v->AsNumber());
    }
    if (const json::Value* v = e.Find("id"); v != nullptr) {
      d.id = static_cast<uint64_t>(v->AsNumber());
    }
    if (const json::Value* args = e.Find("args"); args != nullptr) {
      if (const json::Value* v = args->Find("trace_id"); v != nullptr) {
        d.trace_id = static_cast<uint64_t>(v->AsNumber());
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

TEST(ObsCausalTest, EveryStolenCastTaskIsFlowLinkedToItsSpawner) {
  SKIP_IF_OBS_COMPILED_OUT();
  TraceGuard guard;

  auto alphabet = std::make_shared<schema::Alphabet>();
  auto src = schema::ParseXsd(workload::kRelaxedQuantityXsd, alphabet);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  auto tgt = schema::ParseXsd(workload::kTargetXsd, alphabet);
  ASSERT_TRUE(tgt.ok()) << tgt.status().ToString();
  core::Schema source = std::move(src).value();
  core::Schema target = std::move(tgt).value();
  ASSERT_OK_AND_ASSIGN(core::TypeRelations relations,
                       core::TypeRelations::Compute(&source, &target));

  workload::PoGeneratorOptions po;
  po.item_count = 1000;
  xml::Document doc = workload::GeneratePurchaseOrder(po);
  ASSERT_OK(doc.Bind(alphabet));

  common::Executor executor(common::Executor::Options{.threads = 4});
  core::ParallelCastValidator::Options options;
  options.spawn_threshold = 4;  // force real fan-out even on small docs
  core::ParallelCastValidator parallel(&relations, &executor, options);
  // The donation gate requires an observably idle worker, and on a loaded
  // (or single-core) machine the pool's threads can still be starting up
  // when a small document's walk already finished — no fan-out, nothing to
  // flow-link. Retry with a fresh sink until the split actually happened.
  core::ParallelCastValidator::RunStats stats;
  for (int attempt = 0; attempt < 100 && stats.tasks < 2; ++attempt) {
    TraceSink::Global().Clear();
    stats = {};
    core::ValidationReport report = parallel.Validate(doc, &stats);
    ASSERT_TRUE(report.valid);
    if (stats.tasks < 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(stats.tasks, 2u) << "no fan-out after retries";

  std::vector<DecodedEvent> events = DecodeExport();
  ASSERT_FALSE(events.empty());

  // The request id stamped by the validator's RequestScope: all spans of
  // the run carry it.
  uint64_t request_id = 0;
  for (const DecodedEvent& e : events) {
    if (e.ph == "X" && e.name == "cast.traverse") request_id = e.trace_id;
  }
  ASSERT_NE(request_id, 0u);

  std::map<uint64_t, size_t> starts;    // flow id → 's' count
  std::map<uint64_t, size_t> finishes;  // flow id → 'f' count
  std::map<uint64_t, size_t> tasks_by_tid;
  std::map<uint64_t, size_t> finishes_by_tid;
  size_t tasks = 0;
  for (const DecodedEvent& e : events) {
    if (e.ph == "s") {
      EXPECT_EQ(e.name, "cast.flow");
      EXPECT_EQ(e.trace_id, request_id);
      ++starts[e.id];
    } else if (e.ph == "f") {
      EXPECT_EQ(e.name, "cast.flow");
      EXPECT_EQ(e.trace_id, request_id);
      ++finishes[e.id];
      ++finishes_by_tid[e.tid];
      // The finish shares its task span's start timestamp, so Perfetto's
      // bp:"e" binding resolves to that slice.
      bool inside_task = false;
      for (const DecodedEvent& t : events) {
        if (t.ph == "X" && t.name == "cast.task" && t.tid == e.tid &&
            e.ts >= t.ts && e.ts <= t.ts + t.dur) {
          inside_task = true;
          break;
        }
      }
      EXPECT_TRUE(inside_task) << "flow finish outside any cast.task slice";
    } else if (e.ph == "X" && e.name == "cast.task") {
      ++tasks;
      ++tasks_by_tid[e.tid];
      EXPECT_EQ(e.trace_id, request_id);
    }
  }
  EXPECT_EQ(tasks, stats.tasks);
  // One inbound flow finish per task, settled per thread: a worker that
  // ran N tasks consumed exactly N flow edges.
  EXPECT_EQ(tasks_by_tid, finishes_by_tid);
  // Flow edges pair up 1:1 — every spawned task was picked up, every
  // pickup has a spawner.
  EXPECT_EQ(starts.size(), finishes.size());
  EXPECT_EQ(starts.size(), tasks);
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1u) << "flow id " << id << " started twice";
    EXPECT_EQ(finishes.count(id), 1u) << "flow id " << id << " never consumed";
  }
  for (const auto& [id, n] : finishes) {
    EXPECT_EQ(n, 1u) << "flow id " << id << " consumed twice";
  }
}

// ------------------------------------------------------- tail sampling

TEST(ObsCausalTest, TailSamplingKeepsResolvedTracesAndDropsTheRest) {
  SKIP_IF_OBS_COMPILED_OUT();
  TraceGuard guard;
  TraceSink& sink = TraceSink::Global();
  sink.SetTailSampling(true);

  uint64_t kept_id = 0;
  uint64_t dropped_id = 0;
  {
    RequestScope scope;
    kept_id = scope.trace_id();
    ASSERT_NE(kept_id, 0u);
    { Span span("kept.work"); }
    // Events are staged, not yet visible.
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.staged(), 1u);
    scope.set_keep(true);
  }
  {
    RequestScope scope;
    dropped_id = scope.trace_id();
    { Span span("dropped.work"); }
    scope.set_keep(false);
  }
  EXPECT_NE(kept_id, dropped_id);
  EXPECT_EQ(sink.staged(), 0u);

  std::vector<TraceSink::Event> events = sink.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "kept.work");
  EXPECT_EQ(events[0].trace_id, kept_id);
  EXPECT_EQ(sink.tail_dropped(), 1u);
}

TEST(ObsCausalTest, NestedScopeAdoptsAndHintsKeepToOwner) {
  SKIP_IF_OBS_COMPILED_OUT();
  TraceGuard guard;
  TraceSink& sink = TraceSink::Global();
  sink.SetTailSampling(true);

  {
    RequestScope owner;
    ASSERT_TRUE(owner.owns());
    owner.set_keep(false);  // owner itself votes drop...
    {
      RequestScope nested;
      EXPECT_FALSE(nested.owns());
      EXPECT_EQ(nested.trace_id(), owner.trace_id());
      { Span span("nested.work"); }
      HintKeepTrace();  // ...but a nested sampler saw something tail-worthy
    }
  }
  // The hint overrides the owner's drop: the trace survived.
  std::vector<TraceSink::Event> events = sink.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "nested.work");
}

}  // namespace
}  // namespace xmlreval::obs
