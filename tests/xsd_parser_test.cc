#include "schema/xsd_parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/po_schemas.h"

namespace xmlreval::schema {
namespace {

TEST(XsdParserTest, ParsesPaperTargetSchema) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(Schema schema,
                       ParseXsd(workload::kTargetXsd, alphabet));
  // Global elements become roots.
  EXPECT_NE(schema.RootType(*alphabet->Find("purchaseOrder")), kInvalidType);
  EXPECT_NE(schema.RootType(*alphabet->Find("comment")), kInvalidType);
  // Named complex types exist.
  ASSERT_TRUE(schema.FindType("POType2").has_value());
  ASSERT_TRUE(schema.FindType("USAddress").has_value());
  ASSERT_TRUE(schema.FindType("Items").has_value());
  ASSERT_TRUE(schema.FindType("Item").has_value());
  // purchaseOrder's type is POType2.
  EXPECT_EQ(schema.RootType(*alphabet->Find("purchaseOrder")),
            *schema.FindType("POType2"));
  // Item's quantity child is an anonymous simple type with the facet.
  TypeId item = *schema.FindType("Item");
  TypeId quantity = schema.ChildType(item, *alphabet->Find("quantity"));
  ASSERT_NE(quantity, kInvalidType);
  ASSERT_TRUE(schema.IsSimple(quantity));
  const SimpleType& qt = schema.simple_type(quantity);
  EXPECT_EQ(qt.kind, AtomicKind::kPositiveInteger);
  ASSERT_TRUE(qt.facets.max_exclusive.has_value());
  EXPECT_EQ(*qt.facets.max_exclusive, 100ll * 1000000000);
}

TEST(XsdParserTest, ContentModelCompiles) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(Schema schema,
                       ParseXsd(workload::kTargetXsd, alphabet));
  const automata::Dfa& dfa = schema.ContentDfa(*schema.FindType("POType2"));
  auto word = [&](std::initializer_list<const char*> labels) {
    std::vector<automata::Symbol> out;
    for (const char* l : labels) out.push_back(*alphabet->Find(l));
    return out;
  };
  EXPECT_TRUE(dfa.Accepts(word({"shipTo", "billTo", "items"})));
  EXPECT_FALSE(dfa.Accepts(word({"shipTo", "items"})));  // billTo required

  const automata::Dfa& items = schema.ContentDfa(*schema.FindType("Items"));
  EXPECT_TRUE(items.AcceptsEmpty());  // minOccurs=0
  EXPECT_TRUE(items.Accepts(word({"item", "item", "item"})));
}

TEST(XsdParserTest, SourceSchemaBillToOptional) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(Schema schema,
                       ParseXsd(workload::kSourceXsd, alphabet));
  const automata::Dfa& dfa = schema.ContentDfa(*schema.FindType("POType1"));
  auto word = [&](std::initializer_list<const char*> labels) {
    std::vector<automata::Symbol> out;
    for (const char* l : labels) out.push_back(*alphabet->Find(l));
    return out;
  };
  EXPECT_TRUE(dfa.Accepts(word({"shipTo", "billTo", "items"})));
  EXPECT_TRUE(dfa.Accepts(word({"shipTo", "items"})));
}

TEST(XsdParserTest, ChoiceAndNestedParticles) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence>
          <element name="head" type="string"/>
          <choice minOccurs="0" maxOccurs="unbounded">
            <element name="a" type="string"/>
            <sequence>
              <element name="b" type="string"/>
              <element name="c" type="string"/>
            </sequence>
          </choice>
        </sequence>
      </complexType>
    </schema>)";
  ASSERT_OK_AND_ASSIGN(Schema schema, ParseXsd(xsd, alphabet));
  const automata::Dfa& dfa = schema.ContentDfa(*schema.FindType("R"));
  auto word = [&](std::initializer_list<const char*> labels) {
    std::vector<automata::Symbol> out;
    for (const char* l : labels) out.push_back(*alphabet->Find(l));
    return out;
  };
  EXPECT_TRUE(dfa.Accepts(word({"head"})));
  EXPECT_TRUE(dfa.Accepts(word({"head", "a", "b", "c", "a"})));
  EXPECT_FALSE(dfa.Accepts(word({"head", "b"})));  // c must follow b
}

TEST(XsdParserTest, ElementRef) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <element name="leaf" type="string"/>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence>
          <element ref="leaf" maxOccurs="3"/>
        </sequence>
      </complexType>
    </schema>)";
  ASSERT_OK_AND_ASSIGN(Schema schema, ParseXsd(xsd, alphabet));
  TypeId r = *schema.FindType("R");
  TypeId leaf_type = schema.ChildType(r, *alphabet->Find("leaf"));
  EXPECT_TRUE(schema.IsSimple(leaf_type));
}

TEST(XsdParserTest, NamedSimpleTypeAndSharing) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <simpleType name="Score">
        <restriction base="integer">
          <minInclusive value="0"/>
          <maxInclusive value="10"/>
        </restriction>
      </simpleType>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence>
          <element name="s1" type="Score"/>
          <element name="s2" type="Score"/>
        </sequence>
      </complexType>
    </schema>)";
  ASSERT_OK_AND_ASSIGN(Schema schema, ParseXsd(xsd, alphabet));
  TypeId r = *schema.FindType("R");
  // Identical restrictions share one interned declaration.
  EXPECT_EQ(schema.ChildType(r, *alphabet->Find("s1")),
            schema.ChildType(r, *alphabet->Find("s2")));
}

TEST(XsdParserTest, SimpleTypeDerivationChain) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <simpleType name="Pos"><restriction base="integer">
        <minInclusive value="1"/></restriction></simpleType>
      <simpleType name="Small"><restriction base="Pos">
        <maxInclusive value="5"/></restriction></simpleType>
      <element name="x" type="Small"/>
    </schema>)";
  ASSERT_OK_AND_ASSIGN(Schema schema, ParseXsd(xsd, alphabet));
  TypeId x = schema.RootType(*alphabet->Find("x"));
  const SimpleType& t = schema.simple_type(x);
  EXPECT_EQ(*t.facets.min_inclusive, 1ll * 1000000000);
  EXPECT_EQ(*t.facets.max_inclusive, 5ll * 1000000000);
}

TEST(XsdParserTest, RecursiveComplexType) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <element name="tree" type="Tree"/>
      <complexType name="Tree">
        <sequence>
          <element name="value" type="integer"/>
          <element name="tree" type="Tree" minOccurs="0" maxOccurs="2"/>
        </sequence>
      </complexType>
    </schema>)";
  ASSERT_OK_AND_ASSIGN(Schema schema, ParseXsd(xsd, alphabet));
  TypeId tree = *schema.FindType("Tree");
  EXPECT_EQ(schema.ChildType(tree, *alphabet->Find("tree")), tree);
  EXPECT_TRUE(schema.IsProductive(tree));
}

TEST(XsdParserTest, EnumerationFacet) {
  auto alphabet = std::make_shared<Alphabet>();
  const char* xsd = R"(
    <schema>
      <element name="color">
        <simpleType>
          <restriction base="string">
            <enumeration value="red"/>
            <enumeration value="green"/>
          </restriction>
        </simpleType>
      </element>
    </schema>)";
  ASSERT_OK_AND_ASSIGN(Schema schema, ParseXsd(xsd, alphabet));
  TypeId color = schema.RootType(*alphabet->Find("color"));
  EXPECT_EQ(schema.simple_type(color).facets.enumeration.size(), 2u);
}

TEST(XsdParserTest, Errors) {
  auto alphabet = std::make_shared<Alphabet>();
  // Unknown type reference.
  EXPECT_FALSE(
      ParseXsd("<schema><element name=\"x\" type=\"Nope\"/></schema>",
               alphabet)
          .ok());
  // Element without a type.
  EXPECT_FALSE(
      ParseXsd("<schema><element name=\"x\"/></schema>", alphabet).ok());
  // Unsupported construct.
  Result<Schema> any = ParseXsd(
      "<schema><element name=\"r\"><complexType><sequence><any/></sequence>"
      "</complexType></element></schema>",
      alphabet);
  ASSERT_FALSE(any.ok());
  EXPECT_EQ(any.status().code(), StatusCode::kUnsupported);
  // Root must be <schema>.
  EXPECT_FALSE(ParseXsd("<notschema/>", alphabet).ok());
  // Cyclic simple derivation.
  EXPECT_FALSE(ParseXsd(R"(
    <schema>
      <simpleType name="A"><restriction base="B"/></simpleType>
      <simpleType name="B"><restriction base="A"/></simpleType>
      <element name="x" type="A"/>
    </schema>)",
                        alphabet)
                   .ok());
  // UPA violation: two consecutive optional 'a' particles.
  Result<Schema> upa = ParseXsd(R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R">
        <sequence>
          <element name="a" type="string" minOccurs="0"/>
          <element name="a" type="string" minOccurs="0"/>
        </sequence>
      </complexType>
    </schema>)",
                                alphabet);
  ASSERT_FALSE(upa.ok());
  EXPECT_EQ(upa.status().code(), StatusCode::kInvalidSchema);
}

TEST(XsdParserTest, PrefixedAndUnprefixedNodesBothWork) {
  auto alphabet = std::make_shared<Alphabet>();
  ASSERT_OK_AND_ASSIGN(
      Schema schema,
      ParseXsd("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">"
               "<xs:element name=\"e\" type=\"xs:string\"/></xs:schema>",
               alphabet));
  EXPECT_NE(schema.RootType(*alphabet->Find("e")), kInvalidType);
}

}  // namespace
}  // namespace xmlreval::schema
