// obs/metrics: bucket math, quantile derivation, registry identity,
// snapshot rendering (Prometheus + JSON round-trip through common/json),
// the runtime switch, and a concurrent record/snapshot hammer (the TSan CI
// job runs this file under -fsanitize=thread).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/json.h"

// Some tests assert that instrumentation actually records samples; with
// the compile-time escape hatch active there is nothing to observe.
#ifdef XMLREVAL_OBS_DISABLED
#define SKIP_IF_OBS_COMPILED_OUT() \
  GTEST_SKIP() << "instrumentation compiled out (XMLREVAL_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_COMPILED_OUT() (void)0
#endif


namespace xmlreval::obs {
namespace {

class ObsEnabledGuard {
 public:
  ObsEnabledGuard() { SetEnabled(true); }
  ~ObsEnabledGuard() { SetEnabled(true); }
};

TEST(HistogramBucketTest, IndexMatchesBitWidth) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Everything wider than the last bucket's bound collapses into it.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);
}

TEST(HistogramBucketTest, BoundsArePowerOfTwoMinusOne) {
  EXPECT_EQ(Histogram::BucketBound(0), 0u);
  EXPECT_EQ(Histogram::BucketBound(1), 1u);
  EXPECT_EQ(Histogram::BucketBound(2), 3u);
  EXPECT_EQ(Histogram::BucketBound(10), 1023u);
  // Every value lands in a bucket whose bound is >= the value and whose
  // predecessor's bound is < the value: the defining invariant.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{5}, uint64_t{100},
                     uint64_t{65536}, uint64_t{1} << 38}) {
    size_t i = Histogram::BucketIndex(v);
    EXPECT_GE(Histogram::BucketBound(i), v) << v;
    if (i > 0) EXPECT_LT(Histogram::BucketBound(i - 1), v) << v;
  }
}

TEST(MetricsRegistryTest, SameNameAndLabelsSharePointer) {
  MetricsRegistry registry;
  Counter* a = registry.counter("requests");
  Counter* b = registry.counter("requests");
  EXPECT_EQ(a, b);
  // Label order is canonicalized: these are the same metric.
  Counter* c1 =
      registry.counter("lat", {{"op", "cast"}, {"pair", "a->b"}});
  Counter* c2 =
      registry.counter("lat", {{"pair", "a->b"}, {"op", "cast"}});
  EXPECT_EQ(c1, c2);
  // Different labels are a different metric.
  EXPECT_NE(c1, registry.counter("lat", {{"op", "validate"}}));
  // Registries are isolated namespaces.
  MetricsRegistry other;
  EXPECT_NE(a, other.counter("requests"));
}

TEST(MetricsRegistryTest, SnapshotReflectsRecordedValues) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  MetricsRegistry registry;
  registry.counter("hits")->Add(3);
  registry.gauge("inflight")->Set(-2);
  Histogram* hist = registry.histogram("lat", {{"op", "cast"}});
  hist->Record(0);
  hist->Record(5);
  hist->Record(100);

  MetricsSnapshot snapshot = registry.Snapshot();
  const CounterSnapshot* hits = snapshot.FindCounter("hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->value, 3u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, -2);
  const HistogramSnapshot* lat =
      snapshot.FindHistogram("lat", {{"op", "cast"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 3u);
  EXPECT_EQ(lat->sum, 105u);
  EXPECT_EQ(lat->max, 100u);
  EXPECT_DOUBLE_EQ(lat->Mean(), 35.0);
  // Count is derived from the buckets — single source of truth.
  uint64_t bucket_total = 0;
  for (uint64_t b : lat->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, lat->count);
}

TEST(MetricsRegistryTest, QuantilesInterpolateAndClampToMax) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  MetricsRegistry registry;
  Histogram* hist = registry.histogram("lat");
  // 100 samples of value 10 (bucket 4, range [8, 15]).
  for (int i = 0; i < 100; ++i) hist->Record(10);
  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* lat = snapshot.FindHistogram("lat");
  ASSERT_NE(lat, nullptr);
  // Any quantile must fall inside the only occupied bucket, and never
  // above the observed max.
  for (double q : {0.5, 0.9, 0.99}) {
    double v = lat->Quantile(q);
    EXPECT_GE(v, 7.0) << q;
    EXPECT_LE(v, 10.0) << q;  // clamped to max, not the bucket bound (15)
  }
  EXPECT_EQ(lat->Quantile(1.0), 10.0);
}

TEST(MetricsRegistryTest, RuntimeSwitchGatesHistogramsNotCounters) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  MetricsRegistry registry;
  Counter* counter = registry.counter("always");
  Histogram* hist = registry.histogram("gated");
  SetEnabled(false);
  counter->Add();
  hist->Record(42);
  SetEnabled(true);
  EXPECT_EQ(counter->Value(), 1u);  // counters are API contract
  EXPECT_EQ(hist->Count(), 0u);     // histograms pause
  hist->Record(42);
  EXPECT_EQ(hist->Count(), 1u);
}

TEST(MetricsSnapshotTest, PrometheusTextHasFamiliesAndCumulativeBuckets) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  MetricsRegistry registry;
  registry.counter("xmlreval_requests_total", {{"op", "cast"}})->Add(7);
  Histogram* hist = registry.histogram("xmlreval_latency_us");
  hist->Record(1);
  hist->Record(3);
  std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE xmlreval_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("xmlreval_requests_total{op=\"cast\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE xmlreval_latency_us histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" sees 1 sample, le="3" both, +Inf == count.
  EXPECT_NE(text.find("xmlreval_latency_us_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xmlreval_latency_us_bucket{le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("xmlreval_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("xmlreval_latency_us_sum 4"), std::string::npos);
  EXPECT_NE(text.find("xmlreval_latency_us_count 2"), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonRoundTripsThroughCommonJson) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  MetricsRegistry registry;
  registry.counter("c", {{"k", "v\"quoted\""}})->Add(9);
  Histogram* hist = registry.histogram("h");
  for (int i = 0; i < 10; ++i) hist->Record(100);
  auto parsed = json::Parse(registry.Snapshot().ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->AsArray().size(), 1u);
  const json::Value& c = counters->AsArray()[0];
  EXPECT_EQ(c.Find("name")->AsString(), "c");
  EXPECT_EQ(c.Find("labels")->AsObject().at("k").AsString(), "v\"quoted\"");
  EXPECT_EQ(c.Find("value")->AsNumber(), 9.0);

  const json::Value* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_EQ(histograms->AsArray().size(), 1u);
  const json::Value& h = histograms->AsArray()[0];
  EXPECT_EQ(h.Find("count")->AsNumber(), 10.0);
  EXPECT_EQ(h.Find("sum")->AsNumber(), 1000.0);
  EXPECT_EQ(h.Find("max")->AsNumber(), 100.0);
  EXPECT_GT(h.Find("p99")->AsNumber(), 0.0);
  // Sparse buckets: one [bound, count] pair.
  const json::Value* buckets = h.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->AsArray().size(), 1u);
  EXPECT_EQ(buckets->AsArray()[0].AsArray()[1].AsNumber(), 10.0);
}

// Concurrency hammer: writers record into one histogram + counter while a
// reader snapshots continuously. Run under TSan this proves the record
// path and Snapshot() are race-free; the final totals prove no update is
// lost.
TEST(MetricsConcurrencyTest, ConcurrentRecordAndSnapshot) {
  SKIP_IF_OBS_COMPILED_OUT();
  ObsEnabledGuard guard;
  MetricsRegistry registry;
  Counter* counter = registry.counter("hammer_total");
  Histogram* hist = registry.histogram("hammer_us");
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snapshot = registry.Snapshot();
      const HistogramSnapshot* h = snapshot.FindHistogram("hammer_us");
      ASSERT_NE(h, nullptr);
      // Monotone consistency: counts never exceed the final total.
      ASSERT_LE(h->count, uint64_t{kWriters} * kPerWriter);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        counter->Add();
        hist->Record(static_cast<uint64_t>((w * 31 + i) % 5000));
        // Registry lookups from workers race against Snapshot too.
        if (i % 1024 == 0) registry.counter("hammer_total");
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(counter->Value(), uint64_t{kWriters} * kPerWriter);
  EXPECT_EQ(hist->Count(), uint64_t{kWriters} * kPerWriter);
  MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.FindHistogram("hammer_us")->count,
            uint64_t{kWriters} * kPerWriter);
}

}  // namespace
}  // namespace xmlreval::obs
