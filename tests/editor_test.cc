#include "xml/editor.h"

#include <gtest/gtest.h>

#include <memory>

#include "automata/alphabet.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval::xml {
namespace {

SerializeOptions Compact() {
  SerializeOptions options;
  options.pretty = false;
  options.xml_declaration = false;
  return options;
}

TEST(EditorTest, RenameRecordsOldLabel) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  DocumentEditor editor(&doc);
  ASSERT_OK(editor.RenameElement(a, "b"));
  EXPECT_EQ(doc.label(a), "b");
  ModificationIndex mods = editor.Seal();
  EXPECT_EQ(mods.Kind(a), DeltaKind::kRenamed);
  EXPECT_EQ(*mods.OldLabel(doc, a), "a");
  EXPECT_EQ(*mods.NewLabel(doc, a), "b");
  EXPECT_EQ(mods.update_count(), 1u);
}

TEST(EditorTest, DoubleRenameKeepsOriginalOldLabel) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  DocumentEditor editor(&doc);
  ASSERT_OK(editor.RenameElement(a, "b"));
  ASSERT_OK(editor.RenameElement(a, "c"));
  ModificationIndex mods = editor.Seal();
  EXPECT_EQ(*mods.OldLabel(doc, a), "a");
  EXPECT_EQ(*mods.NewLabel(doc, a), "c");
}

TEST(EditorTest, InsertedNodeHasNoOldLabel) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  DocumentEditor editor(&doc);
  ASSERT_OK_AND_ASSIGN(NodeId fresh, editor.InsertElementAfter(a, "x"));
  ModificationIndex mods = editor.Seal();
  EXPECT_EQ(mods.Kind(fresh), DeltaKind::kInserted);
  EXPECT_FALSE(mods.OldLabel(doc, fresh).has_value());
  EXPECT_EQ(*mods.NewLabel(doc, fresh), "x");
}

TEST(EditorTest, DeletedNodeStaysLinkedUntilCommit) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/><b/></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  DocumentEditor editor(&doc);
  ASSERT_OK(editor.DeleteLeaf(a));
  // Still physically present (the Δ^a_ε encoding).
  EXPECT_EQ(doc.CountChildren(doc.root()), 2u);
  ModificationIndex mods = editor.Seal();
  EXPECT_TRUE(mods.IsDeleted(a));
  EXPECT_EQ(*mods.OldLabel(doc, a), "a");
  EXPECT_FALSE(mods.NewLabel(doc, a).has_value());
  ASSERT_OK(editor.Commit());
  EXPECT_EQ(Serialize(doc, Compact()), "<r><b/></r>");
}

TEST(EditorTest, DeleteRequiresEffectiveLeaf) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a><b/></a></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  NodeId b = ElementChildren(doc, a)[0];
  DocumentEditor editor(&doc);
  EXPECT_EQ(editor.DeleteLeaf(a).code(), StatusCode::kFailedPrecondition);
  ASSERT_OK(editor.DeleteLeaf(b));
  // After deleting b, a is an EFFECTIVE leaf even though b is still linked.
  ASSERT_OK(editor.DeleteLeaf(a));
  editor.Seal();
  ASSERT_OK(editor.Commit());
  EXPECT_EQ(Serialize(doc, Compact()), "<r/>");
}

TEST(EditorTest, CannotDeleteRoot) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r/>"));
  DocumentEditor editor(&doc);
  EXPECT_FALSE(editor.DeleteLeaf(doc.root()).ok());
}

TEST(EditorTest, InsertThenDeleteNeverExisted) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  DocumentEditor editor(&doc);
  ASSERT_OK_AND_ASSIGN(NodeId fresh, editor.InsertElementBefore(a, "x"));
  ASSERT_OK(editor.DeleteLeaf(fresh));
  ModificationIndex mods = editor.Seal();
  // Absent from BOTH projections.
  EXPECT_FALSE(mods.OldLabel(doc, fresh).has_value());
  EXPECT_FALSE(mods.NewLabel(doc, fresh).has_value());
  ASSERT_OK(editor.Commit());
  EXPECT_EQ(Serialize(doc, Compact()), "<r><a/></r>");
}

TEST(EditorTest, RenameThenDeleteKeepsOriginalLabel) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  DocumentEditor editor(&doc);
  ASSERT_OK(editor.RenameElement(a, "b"));
  ASSERT_OK(editor.DeleteLeaf(a));
  ModificationIndex mods = editor.Seal();
  EXPECT_EQ(*mods.OldLabel(doc, a), "a");  // label in T, pre-rename
  EXPECT_FALSE(mods.NewLabel(doc, a).has_value());
}

TEST(EditorTest, UpdateTextMarksNode) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><q>5</q></r>"));
  NodeId q = ElementChildren(doc, doc.root())[0];
  NodeId text = doc.first_child(q);
  DocumentEditor editor(&doc);
  ASSERT_OK(editor.UpdateText(text, "150"));
  EXPECT_EQ(doc.text(text), "150");
  ModificationIndex mods = editor.Seal();
  EXPECT_EQ(mods.Kind(text), DeltaKind::kTextEdited);
  EXPECT_TRUE(mods.SubtreeModified(DeweyPath::Of(doc, q)));
}

TEST(EditorTest, SealBuildsTrieOverTouchedPaths) {
  ASSERT_OK_AND_ASSIGN(Document doc,
                       ParseXml("<r><a><x/></a><b><y/></b></r>"));
  auto kids = ElementChildren(doc, doc.root());
  NodeId y = ElementChildren(doc, kids[1])[0];
  DocumentEditor editor(&doc);
  ASSERT_OK(editor.RenameElement(y, "z"));
  ModificationIndex mods = editor.Seal();
  EXPECT_TRUE(mods.SubtreeModified(DeweyPath()));            // root
  EXPECT_TRUE(mods.SubtreeModified(DeweyPath::Of(doc, kids[1])));
  EXPECT_TRUE(mods.SubtreeModified(DeweyPath::Of(doc, y)));
  EXPECT_FALSE(mods.SubtreeModified(DeweyPath::Of(doc, kids[0])));
}

TEST(EditorTest, OperationsRejectedAfterSeal) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  DocumentEditor editor(&doc);
  editor.Seal();
  EXPECT_EQ(editor.RenameElement(a, "b").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(editor.InsertElementAfter(a, "x").ok());
  EXPECT_FALSE(editor.DeleteLeaf(a).ok());
}

TEST(EditorTest, CommitRequiresSeal) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r/>"));
  DocumentEditor editor(&doc);
  EXPECT_EQ(editor.Commit().code(), StatusCode::kFailedPrecondition);
}

TEST(EditorTest, TextInsertions) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/></r>"));
  NodeId a = ElementChildren(doc, doc.root())[0];
  DocumentEditor editor(&doc);
  ASSERT_OK_AND_ASSIGN(NodeId t, editor.InsertTextFirstChild(a, "42"));
  ModificationIndex mods = editor.Seal();
  EXPECT_TRUE(mods.IsInserted(t));
  ASSERT_OK(editor.Commit());
  EXPECT_EQ(Serialize(doc, Compact()), "<r><a>42</a></r>");
}

TEST(EditorTest, OutOfAlphabetEditsYieldUnboundSymbols) {
  // Edits on a bound document may introduce labels outside the shared Σ
  // (Bind is find-only). The editor keeps the binding coherent: such
  // nodes carry kUnboundSymbol — the signal the update analyzer keys on
  // to refuse a safe/fatal verdict — and renaming back into Σ restores a
  // real symbol.
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r><a/></r>"));
  auto alphabet = std::make_shared<automata::Alphabet>();
  alphabet->Intern("r");
  alphabet->Intern("a");
  ASSERT_OK(doc.Bind(alphabet));
  NodeId a = ElementChildren(doc, doc.root())[0];
  ASSERT_EQ(doc.symbol(a), *alphabet->Find("a"));

  DocumentEditor editor(&doc);
  ASSERT_OK(editor.RenameElement(a, "zzz_wild"));
  EXPECT_EQ(doc.symbol(a), automata::kUnboundSymbol);

  ASSERT_OK_AND_ASSIGN(NodeId wild,
                       editor.InsertElementFirstChild(doc.root(), "wild"));
  EXPECT_EQ(doc.symbol(wild), automata::kUnboundSymbol);

  ASSERT_OK(editor.RenameElement(a, "a"));
  EXPECT_EQ(doc.symbol(a), *alphabet->Find("a"));

  ModificationIndex mods = editor.Seal();
  EXPECT_TRUE(mods.IsInserted(wild));
  ASSERT_OK(editor.Commit());
  EXPECT_EQ(Serialize(doc, Compact()), "<r><wild/><a/></r>");
}

}  // namespace
}  // namespace xmlreval::xml
