#include "xml/label_index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "xml/dewey.h"
#include "xml/parser.h"

namespace xmlreval::xml {
namespace {

TEST(LabelIndexTest, IndexesAllInstancesInDocumentOrder) {
  ASSERT_OK_AND_ASSIGN(Document doc,
                       ParseXml("<r><a/><b><a/><c/></b><a/></r>"));
  LabelIndex index = LabelIndex::Build(doc);
  EXPECT_EQ(index.TotalElements(), 6u);
  const auto& as = index.Instances("a");
  ASSERT_EQ(as.size(), 3u);
  // Document order: the nested <a> sits between the two top-level ones.
  EXPECT_EQ(DeweyPath::Of(doc, as[0]).ToString(), "0");
  EXPECT_EQ(DeweyPath::Of(doc, as[1]).ToString(), "1.0");
  EXPECT_EQ(DeweyPath::Of(doc, as[2]).ToString(), "2");
  EXPECT_EQ(index.Instances("c").size(), 1u);
  EXPECT_TRUE(index.Instances("missing").empty());
}

TEST(LabelIndexTest, EmptyDocument) {
  Document doc;
  LabelIndex index = LabelIndex::Build(doc);
  EXPECT_EQ(index.TotalElements(), 0u);
  EXPECT_TRUE(index.Labels().empty());
}

TEST(LabelIndexTest, PurchaseOrderCounts) {
  workload::PoGeneratorOptions options;
  options.item_count = 25;
  options.ship_date_percent = 100;
  Document doc = workload::GeneratePurchaseOrder(options);
  LabelIndex index = LabelIndex::Build(doc);
  EXPECT_EQ(index.Instances("item").size(), 25u);
  EXPECT_EQ(index.Instances("quantity").size(), 25u);
  EXPECT_EQ(index.Instances("shipDate").size(), 25u);
  EXPECT_EQ(index.Instances("purchaseOrder").size(), 1u);
  EXPECT_EQ(index.Instances("name").size(), 2u);  // shipTo + billTo
}

}  // namespace
}  // namespace xmlreval::xml
