#include "schema/abstract_schema.h"

#include <gtest/gtest.h>

#include "automata/regex_parser.h"
#include "tests/test_util.h"

namespace xmlreval::schema {
namespace {

using automata::ParseRegex;
using automata::RegexPtr;

RegexPtr Rx(const std::string& text, Alphabet* alphabet) {
  auto r = ParseRegex(text, alphabet);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

TEST(SchemaBuilderTest, BuildsSmallSchema) {
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId text, builder.DeclareSimpleType(
                                        "Text", SimpleType{}));
  ASSERT_OK_AND_ASSIGN(TypeId book, builder.DeclareComplexType("Book"));
  ASSERT_OK(builder.SetContentModel(book, Rx("(title,author+)", alphabet.get())));
  ASSERT_OK(builder.MapChild(book, "title", text));
  ASSERT_OK(builder.MapChild(book, "author", text));
  ASSERT_OK(builder.AddRoot("book", book));
  ASSERT_OK_AND_ASSIGN(Schema schema, builder.Build());

  EXPECT_EQ(schema.num_types(), 2u);
  EXPECT_TRUE(schema.IsSimple(text));
  EXPECT_TRUE(schema.IsComplex(book));
  EXPECT_EQ(schema.TypeName(book), "Book");
  EXPECT_EQ(*schema.FindType("Book"), book);
  EXPECT_FALSE(schema.FindType("Nope").has_value());
  EXPECT_EQ(schema.RootType(*alphabet->Find("book")), book);
  EXPECT_EQ(schema.ChildType(book, *alphabet->Find("title")), text);
  EXPECT_FALSE(alphabet->Find("nothere").has_value());
  EXPECT_EQ(schema.ChildType(book, alphabet->Intern("nothere")), kInvalidType);
  EXPECT_TRUE(schema.IsProductive(book));
}

TEST(SchemaBuilderTest, RejectsDuplicateTypeNames) {
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK(builder.DeclareComplexType("T").status());
  EXPECT_FALSE(builder.DeclareComplexType("T").ok());
  EXPECT_FALSE(builder.DeclareSimpleType("T", SimpleType{}).ok());
}

TEST(SchemaBuilderTest, RejectsUntypedContentModelLabel) {
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId t, builder.DeclareComplexType("T"));
  ASSERT_OK(builder.SetContentModel(t, Rx("(a,b)", alphabet.get())));
  ASSERT_OK(builder.MapChild(t, "a", t));
  // 'b' has no types_τ entry.
  Result<Schema> result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidSchema);
}

TEST(SchemaBuilderTest, RejectsInconsistentChildTyping) {
  // Same label, two different types within one parent type.
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId s1, builder.DeclareSimpleType("S1", SimpleType{}));
  ASSERT_OK_AND_ASSIGN(
      TypeId s2, builder.DeclareSimpleType(
                     "S2", SimpleType{AtomicKind::kInteger, {}}));
  ASSERT_OK_AND_ASSIGN(TypeId t, builder.DeclareComplexType("T"));
  ASSERT_OK(builder.MapChild(t, "a", s1));
  Status second = builder.MapChild(t, "a", s2);
  EXPECT_EQ(second.code(), StatusCode::kInvalidSchema);
}

TEST(SchemaBuilderTest, AllowsSameLabelDifferentTypesAcrossParents) {
  // XML Schema's flexibility: 'a' can have different types under different
  // parent types.
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId s1, builder.DeclareSimpleType("S1", SimpleType{}));
  ASSERT_OK_AND_ASSIGN(
      TypeId s2, builder.DeclareSimpleType(
                     "S2", SimpleType{AtomicKind::kInteger, {}}));
  ASSERT_OK_AND_ASSIGN(TypeId t1, builder.DeclareComplexType("T1"));
  ASSERT_OK_AND_ASSIGN(TypeId t2, builder.DeclareComplexType("T2"));
  ASSERT_OK(builder.SetContentModel(t1, Rx("a", alphabet.get())));
  ASSERT_OK(builder.SetContentModel(t2, Rx("a", alphabet.get())));
  ASSERT_OK(builder.MapChild(t1, "a", s1));
  ASSERT_OK(builder.MapChild(t2, "a", s2));
  ASSERT_OK(builder.AddRoot("r1", t1));
  ASSERT_OK(builder.AddRoot("r2", t2));
  EXPECT_TRUE(builder.Build().ok());
}

TEST(SchemaBuilderTest, RejectsNonDeterministicContentModel) {
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId s, builder.DeclareSimpleType("S", SimpleType{}));
  ASSERT_OK_AND_ASSIGN(TypeId t, builder.DeclareComplexType("T"));
  ASSERT_OK(builder.SetContentModel(t, Rx("((a|b)*,a)", alphabet.get())));
  ASSERT_OK(builder.MapChild(t, "a", s));
  ASSERT_OK(builder.MapChild(t, "b", s));
  ASSERT_OK(builder.AddRoot("t", t));
  Result<Schema> strict = builder.Build();
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidSchema);
}

TEST(SchemaBuilderTest, NonDeterministicAllowedWhenRelaxed) {
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId s, builder.DeclareSimpleType("S", SimpleType{}));
  ASSERT_OK_AND_ASSIGN(TypeId t, builder.DeclareComplexType("T"));
  ASSERT_OK(builder.SetContentModel(t, Rx("((a|b)*,a)", alphabet.get())));
  ASSERT_OK(builder.MapChild(t, "a", s));
  ASSERT_OK(builder.MapChild(t, "b", s));
  ASSERT_OK(builder.AddRoot("t", t));
  SchemaBuilder::BuildOptions options;
  options.require_deterministic = false;
  EXPECT_TRUE(builder.Build(options).ok());
}

TEST(SchemaBuilderTest, ProductivityAnalysis) {
  // Loop: type L requires a child of type L — never productive.
  // Type P offers (l | e) where e is simple: productive via e.
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId e, builder.DeclareSimpleType("E", SimpleType{}));
  ASSERT_OK_AND_ASSIGN(TypeId loop, builder.DeclareComplexType("Loop"));
  ASSERT_OK(builder.SetContentModel(loop, Rx("l", alphabet.get())));
  ASSERT_OK(builder.MapChild(loop, "l", loop));
  ASSERT_OK_AND_ASSIGN(TypeId p, builder.DeclareComplexType("P"));
  ASSERT_OK(builder.SetContentModel(p, Rx("(l|e)", alphabet.get())));
  ASSERT_OK(builder.MapChild(p, "l", loop));
  ASSERT_OK(builder.MapChild(p, "e", e));
  ASSERT_OK(builder.AddRoot("p", p));
  ASSERT_OK_AND_ASSIGN(Schema schema, builder.Build());

  EXPECT_TRUE(schema.IsProductive(e));
  EXPECT_FALSE(schema.IsProductive(loop));
  EXPECT_TRUE(schema.IsProductive(p));
  // After pruning, P's content DFA must reject "l" (its type is dead).
  const automata::Dfa& dfa = schema.ContentDfa(p);
  std::vector<automata::Symbol> l{*alphabet->Find("l")};
  std::vector<automata::Symbol> ee{*alphabet->Find("e")};
  EXPECT_FALSE(dfa.Accepts(l));
  EXPECT_TRUE(dfa.Accepts(ee));
}

TEST(SchemaBuilderTest, NonProductiveRootRejected) {
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId loop, builder.DeclareComplexType("Loop"));
  ASSERT_OK(builder.SetContentModel(loop, Rx("l", alphabet.get())));
  ASSERT_OK(builder.MapChild(loop, "l", loop));
  ASSERT_OK(builder.AddRoot("l", loop));
  Result<Schema> result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("non-productive"),
            std::string::npos);
}

TEST(SchemaBuilderTest, EmptyContentModelViaEpsilon) {
  auto alphabet = std::make_shared<Alphabet>();
  alphabet->Intern("unused");
  SchemaBuilder builder(alphabet);
  ASSERT_OK_AND_ASSIGN(TypeId t, builder.DeclareComplexType("Empty"));
  ASSERT_OK(builder.SetContentModel(t, automata::Regex::Epsilon()));
  ASSERT_OK(builder.AddRoot("empty", t));
  ASSERT_OK_AND_ASSIGN(Schema schema, builder.Build());
  EXPECT_TRUE(schema.IsProductive(t));
  EXPECT_TRUE(schema.ContentDfa(t).AcceptsEmpty());
}

TEST(SchemaBuilderTest, MissingContentModelFails) {
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK(builder.DeclareComplexType("T").status());
  Result<Schema> result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("no content model"),
            std::string::npos);
}

TEST(SchemaBuilderTest, BuilderUnusableAfterBuild) {
  auto alphabet = std::make_shared<Alphabet>();
  SchemaBuilder builder(alphabet);
  ASSERT_OK(builder.DeclareSimpleType("S", SimpleType{}).status());
  ASSERT_TRUE(builder.Build().ok());
  EXPECT_FALSE(builder.DeclareComplexType("T2").ok());
  EXPECT_FALSE(builder.Build().ok());
}

}  // namespace
}  // namespace xmlreval::schema
