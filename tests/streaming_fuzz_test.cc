// Differential fuzzing of the incremental streaming cast engine.
//
// Thousands of random documents over random related schema pairs are fed
// to StreamingCastSession in random 1..4096-byte chunks and checked two
// ways:
//   1. Verdict parity with the DOM pipeline (ParseXml + CastValidator) —
//      including truncated inputs, where the cut can land mid-skip, inside
//      markup, or inside a text run.
//   2. Determinism: a chunked session and a one-shot session must produce
//      byte-for-byte identical reports (verdict, message, blamed path,
//      counters, byte accounting) — chunk boundaries must never leak into
//      results.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <string_view>

#include "core/cast_validator.h"
#include "core/relations.h"
#include "core/streaming_validator.h"
#include "schema/abstract_schema.h"
#include "tests/test_util.h"
#include "workload/random_docs.h"
#include "workload/random_schemas.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval::core {
namespace {

using schema::Schema;

struct RandomPair {
  std::shared_ptr<schema::Alphabet> alphabet;
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;
};

RandomPair MakePair(uint64_t seed) {
  RandomPair pair;
  pair.alphabet = std::make_shared<schema::Alphabet>();
  workload::RandomSchemaOptions schema_options;
  schema_options.seed = seed;
  schema_options.complex_types = 3 + seed % 5;
  auto source = workload::GenerateRandomSchema(pair.alphabet, schema_options);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  pair.source = std::make_unique<Schema>(std::move(source).value());
  workload::MutationOptions mutation_options;
  mutation_options.seed = seed * 13 + 5;
  mutation_options.mutations = seed % 5;  // 0 = identical pair: max skipping
  auto target = workload::MutateSchema(*pair.source, mutation_options);
  EXPECT_TRUE(target.ok()) << target.status().ToString();
  pair.target = std::make_unique<Schema>(std::move(target).value());
  auto relations =
      TypeRelations::Compute(pair.source.get(), pair.target.get());
  EXPECT_TRUE(relations.ok()) << relations.status().ToString();
  pair.relations =
      std::make_unique<TypeRelations>(std::move(relations).value());
  return pair;
}

StreamingReport RunSession(const TypeRelations& relations,
                           std::string_view text, std::mt19937_64* rng) {
  StreamingCastSession session(relations);
  size_t pos = 0;
  while (pos < text.size()) {
    size_t chunk = rng == nullptr
                       ? text.size()
                       : std::uniform_int_distribution<size_t>(1, 4096)(*rng);
    chunk = std::min(chunk, text.size() - pos);
    if (!session.Feed(text.substr(pos, chunk)).ok()) break;
    pos += chunk;
  }
  return session.Finish();
}

// The ground truth for arbitrary bytes: parse; parse failure means the
// session must fail; otherwise the DOM cast validator's verdict.
struct DomVerdict {
  bool parsed = false;
  bool valid = false;
  std::string violation;
};

DomVerdict DomCast(const TypeRelations& relations, std::string_view text) {
  DomVerdict v;
  auto doc = xml::ParseXml(text);
  if (!doc.ok()) return v;
  v.parsed = true;
  CastValidator cast(&relations);
  ValidationReport report = cast.Validate(*doc);
  v.valid = report.valid;
  v.violation = report.violation;
  return v;
}

void ExpectReportsIdentical(const StreamingReport& a, const StreamingReport& b,
                            const std::string& context) {
  EXPECT_EQ(a.valid, b.valid) << context;
  EXPECT_EQ(a.violation, b.violation) << context;
  EXPECT_EQ(a.violation_path_known, b.violation_path_known) << context;
  EXPECT_EQ(a.violation_path, b.violation_path) << context;
  EXPECT_EQ(a.max_live_frames, b.max_live_frames) << context;
  EXPECT_EQ(a.bytes_skipped, b.bytes_skipped) << context;
  EXPECT_EQ(a.counters.nodes_visited, b.counters.nodes_visited) << context;
  EXPECT_EQ(a.counters.subtrees_skipped, b.counters.subtrees_skipped)
      << context;
  EXPECT_EQ(a.counters.dfa_steps, b.counters.dfa_steps) << context;
  EXPECT_EQ(a.counters.simple_checks, b.counters.simple_checks) << context;
  EXPECT_EQ(a.counters.attr_checks, b.counters.attr_checks) << context;
}

// Sharded so the ~10k documents spread across parallel ctest workers.
class StreamingFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingFuzz, SessionAgreesWithDomPipeline) {
  const uint64_t shard = GetParam();
  std::mt19937_64 rng(0x5eed0000 + shard);
  uint64_t total_skipped_bytes = 0;
  uint64_t docs = 0;

  for (uint64_t pair_seed = 1; pair_seed <= 7; ++pair_seed) {
    RandomPair pair = MakePair(shard * 101 + pair_seed);
    for (uint64_t doc_seed = 1; doc_seed <= 90; ++doc_seed) {
      workload::RandomDocOptions options;
      options.seed = doc_seed * 61 + shard;
      options.root_label = "root";
      options.max_elements = 1 + static_cast<size_t>(rng() % 60);
      auto doc = workload::SampleDocument(*pair.source, options);
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
      std::string text = xml::Serialize(*doc);

      // Every third document is truncated at a random byte so cuts land
      // mid-tag, mid-text, and mid-skip.
      if (docs % 3 == 2 && text.size() > 1) {
        text.resize(1 + rng() % (text.size() - 1));
      }
      ++docs;
      std::string context = "shard=" + std::to_string(shard) +
                            " pair=" + std::to_string(pair_seed) +
                            " doc=" + std::to_string(doc_seed);

      StreamingReport chunked = RunSession(*pair.relations, text, &rng);
      StreamingReport oneshot = RunSession(*pair.relations, text, nullptr);
      ExpectReportsIdentical(chunked, oneshot, context);
      total_skipped_bytes += chunked.bytes_skipped;

      DomVerdict dom = DomCast(*pair.relations, text);
      if (!dom.parsed) {
        EXPECT_FALSE(chunked.valid) << context << "\ntext: " << text;
      } else {
        EXPECT_EQ(chunked.valid, dom.valid)
            << context << "\nstream: " << chunked.violation
            << "\ndom: " << dom.violation << "\ntext: " << text;
      }
    }
  }
  EXPECT_GE(docs, 630u);
  // The corpus includes identical source/target pairs, so the raw-byte
  // skip path must actually fire.
  EXPECT_GT(total_skipped_bytes, 0u) << "skip scanner never engaged";
}

// 16 shards x 630 documents ≈ 10k fuzzed documents.
INSTANTIATE_TEST_SUITE_P(Shards, StreamingFuzz,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace xmlreval::core
