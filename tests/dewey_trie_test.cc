#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/dewey.h"
#include "xml/parser.h"
#include "xml/path_trie.h"

namespace xmlreval::xml {
namespace {

DeweyPath P(std::vector<uint32_t> components) {
  return DeweyPath(std::move(components));
}

TEST(DeweyPathTest, OfComputesOrdinals) {
  ASSERT_OK_AND_ASSIGN(Document doc,
                       ParseXml("<r><a/><b><c/><d/></b></r>"));
  NodeId root = doc.root();
  auto kids = ElementChildren(doc, root);
  auto grand = ElementChildren(doc, kids[1]);
  EXPECT_EQ(DeweyPath::Of(doc, root), P({}));
  EXPECT_EQ(DeweyPath::Of(doc, kids[0]), P({0}));
  EXPECT_EQ(DeweyPath::Of(doc, kids[1]), P({1}));
  EXPECT_EQ(DeweyPath::Of(doc, grand[0]), P({1, 0}));
  EXPECT_EQ(DeweyPath::Of(doc, grand[1]), P({1, 1}));
}

TEST(DeweyPathTest, OfCountsTextSiblings) {
  ParseOptions options;
  options.skip_whitespace_text = false;
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<r>x<a/>y<b/></r>", options));
  auto kids = ElementChildren(doc, doc.root());
  EXPECT_EQ(DeweyPath::Of(doc, kids[0]), P({1}));  // after text "x"
  EXPECT_EQ(DeweyPath::Of(doc, kids[1]), P({3}));
}

TEST(DeweyPathTest, PrefixAndOrdering) {
  EXPECT_TRUE(P({}).IsPrefixOf(P({1, 2})));
  EXPECT_TRUE(P({1}).IsPrefixOf(P({1, 2})));
  EXPECT_TRUE(P({1, 2}).IsPrefixOf(P({1, 2})));
  EXPECT_FALSE(P({1, 2}).IsPrefixOf(P({1})));
  EXPECT_FALSE(P({2}).IsPrefixOf(P({1, 2})));
  EXPECT_LT(P({1}), P({1, 0}));
  EXPECT_LT(P({0, 9}), P({1}));
}

TEST(DeweyPathTest, ChildAndToString) {
  DeweyPath p = P({}).Child(2).Child(0);
  EXPECT_EQ(p, P({2, 0}));
  EXPECT_EQ(p.ToString(), "2.0");
  EXPECT_EQ(P({}).ToString(), "ε");
}

TEST(PathTrieTest, EmptyTrie) {
  PathTrie trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.ContainsPrefixedBy(P({0})));
  EXPECT_FALSE(trie.ContainsExactly(P({})));
}

TEST(PathTrieTest, PrefixSemantics) {
  PathTrie trie;
  trie.Insert(P({1, 2, 3}));
  // Ancestors "contain a modification below them".
  EXPECT_TRUE(trie.ContainsPrefixedBy(P({})));
  EXPECT_TRUE(trie.ContainsPrefixedBy(P({1})));
  EXPECT_TRUE(trie.ContainsPrefixedBy(P({1, 2})));
  EXPECT_TRUE(trie.ContainsPrefixedBy(P({1, 2, 3})));
  // Descendants of the modified node are NOT automatically modified...
  EXPECT_FALSE(trie.ContainsPrefixedBy(P({1, 2, 3, 0})));
  // ...and siblings are untouched.
  EXPECT_FALSE(trie.ContainsPrefixedBy(P({1, 3})));
  EXPECT_FALSE(trie.ContainsPrefixedBy(P({0})));

  EXPECT_TRUE(trie.ContainsExactly(P({1, 2, 3})));
  EXPECT_FALSE(trie.ContainsExactly(P({1, 2})));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PathTrieTest, MultipleInsertsAndClear) {
  PathTrie trie;
  trie.Insert(P({0}));
  trie.Insert(P({2, 1}));
  trie.Insert(P({2, 1}));  // duplicate
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_TRUE(trie.ContainsPrefixedBy(P({2})));
  trie.Clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.ContainsPrefixedBy(P({0})));
}

TEST(TrieCursorTest, LockstepNavigation) {
  PathTrie trie;
  trie.Insert(P({1, 0}));
  TrieCursor root(trie);
  EXPECT_TRUE(root.SubtreeModified());
  EXPECT_FALSE(root.ExactlyHere());

  TrieCursor wrong = root.Descend(0);
  EXPECT_TRUE(wrong.Null());
  EXPECT_FALSE(wrong.SubtreeModified());
  // Descending a null cursor stays null.
  EXPECT_TRUE(wrong.Descend(5).Null());

  TrieCursor right = root.Descend(1);
  ASSERT_FALSE(right.Null());
  TrieCursor leaf = right.Descend(0);
  ASSERT_FALSE(leaf.Null());
  EXPECT_TRUE(leaf.ExactlyHere());
  EXPECT_TRUE(leaf.Descend(7).Null());
}

TEST(PathTrieTest, RootInsertMarksEverything) {
  PathTrie trie;
  trie.Insert(P({}));
  EXPECT_TRUE(trie.ContainsPrefixedBy(P({})));
  EXPECT_TRUE(trie.ContainsExactly(P({})));
  TrieCursor cursor(trie);
  EXPECT_TRUE(cursor.ExactlyHere());
}

}  // namespace
}  // namespace xmlreval::xml
