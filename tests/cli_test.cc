// Integration tests for the xmlreval CLI: spawn the real binary (path
// injected by CMake) against files written to a temp directory and check
// exit codes + output fragments.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/json.h"

// Some tests assert that instrumentation actually records samples; with
// the compile-time escape hatch active there is nothing to observe.
#ifdef XMLREVAL_OBS_DISABLED
#define SKIP_IF_OBS_COMPILED_OUT() \
  GTEST_SKIP() << "instrumentation compiled out (XMLREVAL_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_COMPILED_OUT() (void)0
#endif


#ifndef XMLREVAL_CLI_PATH
#error "XMLREVAL_CLI_PATH must be defined by the build"
#endif

namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "xmlreval_cli_" +
           std::to_string(::getpid());
    ASSERT_EQ(system(("mkdir -p " + dir_).c_str()), 0);
    WriteFile("v1.dtd",
              "<!ELEMENT note (to, from, body?)>\n"
              "<!ELEMENT to (#PCDATA)><!ELEMENT from (#PCDATA)>\n"
              "<!ELEMENT body (#PCDATA)>\n");
    WriteFile("v2.dtd",
              "<!ELEMENT note (to, from, body)>\n"
              "<!ELEMENT to (#PCDATA)><!ELEMENT from (#PCDATA)>\n"
              "<!ELEMENT body (#PCDATA)>\n");
    WriteFile("ok.xml",
              "<note><to>a</to><from>b</from><body>c</body></note>");
    WriteFile("nobody.xml", "<note><to>a</to><from>b</from></note>");
    WriteFile("broken.xml", "<note><to>a</to>");
  }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ + "/" + name);
    out << content;
  }

  // Runs the CLI; returns the exit code (stdout/stderr to a capture file).
  int Run(const std::string& args) {
    std::string command = std::string(XMLREVAL_CLI_PATH) + " " + args +
                          " > " + dir_ + "/out.txt 2>&1";
    int status = system(command.c_str());
    return WEXITSTATUS(status);
  }

  // Runs the CLI with stdout captured to `outfile` (stderr discarded).
  int RunTo(const std::string& args, const std::string& outfile) {
    std::string command = std::string(XMLREVAL_CLI_PATH) + " " + args +
                          " > " + outfile + " 2> " + dir_ + "/err.txt";
    int status = system(command.c_str());
    return WEXITSTATUS(status);
  }

  std::string Output() {
    std::ifstream in(dir_ + "/out.txt");
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  std::string P(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(CliTest, ValidateValidAndInvalid) {
  EXPECT_EQ(Run("validate " + P("v1.dtd") + " " + P("ok.xml")), 0);
  EXPECT_NE(Output().find("VALID"), std::string::npos);
  EXPECT_EQ(Run("validate " + P("v2.dtd") + " " + P("nobody.xml")), 1);
  EXPECT_NE(Output().find("INVALID"), std::string::npos);
}

TEST_F(CliTest, CastChecksPreconditionThenTarget) {
  EXPECT_EQ(Run("cast " + P("v1.dtd") + " " + P("v2.dtd") + " " + P("ok.xml")),
            0);
  EXPECT_EQ(
      Run("cast " + P("v1.dtd") + " " + P("v2.dtd") + " " + P("nobody.xml")),
      1);
  // A document violating the SOURCE schema is a usage error (exit 2), not
  // an "invalid" verdict.
  WriteFile("alien.xml", "<other/>");
  EXPECT_EQ(
      Run("cast " + P("v1.dtd") + " " + P("v2.dtd") + " " + P("alien.xml")),
      2);
}

TEST_F(CliTest, CastStreamVerdictsAndAccounting) {
  // Valid cast from a file, tiny chunks to force carry across boundaries.
  EXPECT_EQ(Run("cast " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " --stream --chunk-bytes 3"),
            0);
  std::string out = Output();
  EXPECT_NE(out.find("VALID"), std::string::npos);
  EXPECT_NE(out.find("stream: bytes_fed="), std::string::npos);

  // Same input from stdin via '-': identical accounting line.
  EXPECT_EQ(Run("cast " + P("v1.dtd") + " " + P("v2.dtd") +
                " - --stream --chunk-bytes 3 < " + P("ok.xml")),
            0);
  EXPECT_EQ(Output(), out);

  // Invalid under the target → exit 1; stream mode trusts the source
  // precondition, so the missing <body> surfaces as the violation.
  EXPECT_EQ(Run("cast " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("nobody.xml") + " --stream"),
            1);
  EXPECT_NE(Output().find("INVALID"), std::string::npos);

  // Truncated input is an input error (exit 2), not a verdict.
  EXPECT_EQ(Run("cast " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("broken.xml") + " --stream"),
            2);
}

TEST_F(CliTest, ServeBatchStreamThresholdRoutesCasts) {
  SKIP_IF_OBS_COMPILED_OUT();
  EXPECT_EQ(RunTo("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                      P("ok.xml") + " --stream-threshold-bytes 1" +
                      " --metrics-out " + P("m.json"),
                  P("batch.txt")),
            0);
  std::ifstream in(P("m.json"));
  std::string metrics((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  // The one cast item is >= 1 byte, so it went through the stream path:
  // one cast_stream op, zero plain casts, and ok.xml's 51 bytes on the
  // stream byte counter.
  EXPECT_NE(metrics.find("{\"op\":\"cast_stream\"},\"value\":1"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("{\"op\":\"cast\"},\"value\":0"), std::string::npos)
      << metrics;
  EXPECT_NE(
      metrics.find("\"xmlreval_stream_bytes_total\",\"labels\":{},\"value\":51"),
      std::string::npos)
      << metrics;
}

TEST_F(CliTest, CorrectWritesRepairedDocument) {
  EXPECT_EQ(Run("correct " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("nobody.xml") + " -o " + P("fixed.xml")),
            0);
  EXPECT_NE(Output().find("1 repair(s)"), std::string::npos);
  // The repaired document passes a v2 validate.
  EXPECT_EQ(Run("validate " + P("v2.dtd") + " " + P("fixed.xml")), 0);
}

TEST_F(CliTest, SampleProducesValidDocument) {
  EXPECT_EQ(RunTo("sample " + P("v2.dtd") + " --root note --seed 9",
                  P("sampled.xml")),
            0);
  EXPECT_EQ(Run("validate " + P("v2.dtd") + " " + P("sampled.xml")), 0);
}

TEST_F(CliTest, RelationsDumpsPairs) {
  EXPECT_EQ(Run("relations " + P("v1.dtd") + " " + P("v2.dtd")), 0);
  std::string out = Output();
  EXPECT_NE(out.find("<="), std::string::npos);
}

TEST_F(CliTest, ExportConvertsDtdToParseableXsd) {
  EXPECT_EQ(RunTo("export " + P("v1.dtd"), P("v1.xsd")), 0);
  // The exported XSD loads and validates the same documents.
  EXPECT_EQ(Run("validate " + P("v1.xsd") + " " + P("ok.xml")), 0);
  EXPECT_EQ(Run("validate " + P("v1.xsd") + " " + P("nobody.xml")), 0);
}

TEST_F(CliTest, ErrorsAreUsageExitCode) {
  EXPECT_EQ(Run(""), 2);
  EXPECT_EQ(Run("frobnicate x y"), 2);
  // Unknown subcommands print the usage text, which documents serve-batch.
  EXPECT_NE(Output().find("usage:"), std::string::npos);
  EXPECT_NE(Output().find("serve-batch"), std::string::npos);
  EXPECT_EQ(Run("validate " + P("missing.dtd") + " " + P("ok.xml")), 2);
  EXPECT_EQ(Run("validate " + P("v1.dtd") + " " + P("broken.xml")), 2);
}

TEST_F(CliTest, ServeBatchCastsAllDocuments) {
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " --threads 2 --repeat 3"),
            0);
  std::string out = Output();
  EXPECT_NE(out.find("ok.xml: VALID"), std::string::npos);
  EXPECT_NE(out.find("3 documents"), std::string::npos);
  EXPECT_NE(out.find("1 fixpoint(s) computed"), std::string::npos);

  // A batch containing an invalid document exits 1 and names the culprit.
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " " + P("nobody.xml")),
            1);
  EXPECT_NE(Output().find("nobody.xml: INVALID"), std::string::npos);

  // Malformed XML is an item-level error: exit 2.
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("broken.xml")),
            2);

  // Usage errors: missing documents, bad flag, zero repeat.
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd")), 2);
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " --bogus"),
            2);
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " --repeat 0"),
            2);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Finds entry by name (and optional single label) in a metrics-dump array.
const xmlreval::json::Value* FindMetric(const xmlreval::json::Value& dump,
                                        const char* section,
                                        const std::string& name,
                                        const std::string& op = "") {
  const xmlreval::json::Value* entries = dump.Find(section);
  if (entries == nullptr || !entries->is_array()) return nullptr;
  for (const auto& e : entries->AsArray()) {
    const xmlreval::json::Value* n = e.Find("name");
    if (n == nullptr || n->AsString() != name) continue;
    if (!op.empty()) {
      const xmlreval::json::Value* labels = e.Find("labels");
      const xmlreval::json::Value* v =
          labels != nullptr ? labels->Find("op") : nullptr;
      if (v == nullptr || v->AsString() != op) continue;
    }
    return &e;
  }
  return nullptr;
}

TEST_F(CliTest, ServeBatchWritesMetricsDumpThatReconciles) {
  SKIP_IF_OBS_COMPILED_OUT();
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " --repeat 4 --metrics-out " +
                P("metrics.json")),
            0);
  auto dump = xmlreval::json::Parse(Slurp(P("metrics.json")));
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();

  const auto* requests =
      FindMetric(*dump, "counters", "xmlreval_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->Find("value")->AsNumber(), 4.0);
  // The cast latency histogram's count reconciles with the op counter.
  const auto* cast_requests =
      FindMetric(*dump, "counters", "xmlreval_op_requests_total", "cast");
  const auto* cast_latency = FindMetric(
      *dump, "histograms", "xmlreval_request_latency_us", "cast");
  ASSERT_NE(cast_requests, nullptr);
  ASSERT_NE(cast_latency, nullptr);
  EXPECT_EQ(cast_requests->Find("value")->AsNumber(), 4.0);
  EXPECT_EQ(cast_latency->Find("count")->AsNumber(), 4.0);
  const auto* service_us =
      FindMetric(*dump, "histograms", "xmlreval_batch_service_us");
  ASSERT_NE(service_us, nullptr);
  EXPECT_EQ(service_us->Find("count")->AsNumber(), 4.0);

  // Non-.json paths get Prometheus text exposition.
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " --metrics-out " + P("metrics.prom")),
            0);
  std::string prom = Slurp(P("metrics.prom"));
  EXPECT_NE(prom.find("# TYPE xmlreval_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("xmlreval_request_latency_us_bucket"),
            std::string::npos);
}

TEST_F(CliTest, ServeBatchWritesPerfettoLoadableTrace) {
  SKIP_IF_OBS_COMPILED_OUT();
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " --repeat 2 --trace-out " + P("trace.json")),
            0);
  auto trace = xmlreval::json::Parse(Slurp(P("trace.json")));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const auto* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->AsArray().empty());
  bool saw_traverse = false;
  for (const auto& e : events->AsArray()) {
    // Complete spans plus Chrome flow events (cross-thread causal arrows).
    std::string ph = e.Find("ph")->AsString();
    EXPECT_TRUE(ph == "X" || ph == "s" || ph == "t" || ph == "f") << ph;
    ASSERT_NE(e.Find("ts"), nullptr);
    if (ph == "X") {
      ASSERT_NE(e.Find("dur"), nullptr);
    } else {
      // Flow events bind via a shared id, not a duration.
      ASSERT_NE(e.Find("id"), nullptr);
    }
    if (e.Find("name")->AsString() == "cast.traverse") saw_traverse = true;
  }
  EXPECT_TRUE(saw_traverse);
}

TEST_F(CliTest, StatsPrettyPrintsAndRejectsGarbage) {
  EXPECT_EQ(Run("serve-batch " + P("v1.dtd") + " " + P("v2.dtd") + " " +
                P("ok.xml") + " --metrics-out " + P("metrics.json")),
            0);
  EXPECT_EQ(Run("stats " + P("metrics.json")), 0);
  std::string out = Output();
  EXPECT_NE(out.find("counters:"), std::string::npos);
  EXPECT_NE(out.find("xmlreval_requests_total"), std::string::npos);
  EXPECT_NE(out.find("histograms:"), std::string::npos);
  EXPECT_NE(out.find("xmlreval_request_latency_us{op=cast}"),
            std::string::npos);

  WriteFile("garbage.json", "{not json");
  EXPECT_EQ(Run("stats " + P("garbage.json")), 2);
  EXPECT_EQ(Run("stats " + P("missing.json")), 2);
  EXPECT_EQ(Run("stats"), 2);
}

// ------------------------------------------------------- analyze-updates

class AnalyzeUpdatesCliTest : public CliTest {
 protected:
  void SetUp() override {
    CliTest::SetUp();
    WriteFile("star.dtd",
              "<!ELEMENT feed ((entry|note)*)>\n"
              "<!ELEMENT entry (#PCDATA)><!ELEMENT note (#PCDATA)>\n"
              "<!ELEMENT meta (title)><!ELEMENT title (#PCDATA)>\n");
    WriteFile("feed.xml",
              "<feed><entry>a</entry><note>b</note>"
              "<entry>c</entry><note>d</note></feed>");
  }

  std::string Base() {
    return "analyze-updates " + P("star.dtd") + " " + P("star.dtd") + " " +
           P("feed.xml");
  }
};

TEST_F(AnalyzeUpdatesCliTest, SafeStreamShortCircuits) {
  // The generator is deterministic under --seed; seed 2 draws one
  // statically safe edit.
  EXPECT_EQ(Run(Base() + " --edits 1 --seed 2"), 0);
  std::string out = Output();
  EXPECT_NE(out.find("1 safe, 0 fatal, 0 unknown"), std::string::npos) << out;
  EXPECT_NE(out.find("short-circuited"), std::string::npos) << out;
  EXPECT_NE(out.find("analyze-updates: VALID"), std::string::npos) << out;
}

TEST_F(AnalyzeUpdatesCliTest, FatalStreamShortCircuitsAsInvalid) {
  // Seed 1 draws a root rename to a disjoint type: statically fatal.
  EXPECT_EQ(Run(Base() + " --edits 1 --seed 1"), 1);
  std::string out = Output();
  EXPECT_NE(out.find("0 safe, 1 fatal, 0 unknown"), std::string::npos) << out;
  EXPECT_NE(out.find("stream verdict: fatal"), std::string::npos) << out;
  EXPECT_NE(out.find("analyze-updates: INVALID"), std::string::npos) << out;
}

TEST_F(AnalyzeUpdatesCliTest, UndecidedStreamFallsBackAndDumpsMetrics) {
  SKIP_IF_OBS_COMPILED_OUT();
  // Seed 3 with 6 edits entangles everything: fallback path, valid result.
  EXPECT_EQ(
      Run(Base() + " --edits 6 --seed 3 --metrics-out " + P("metrics.json")),
      0);
  std::string out = Output();
  EXPECT_NE(out.find("fell back to incremental revalidation"),
            std::string::npos)
      << out;

  auto dump = xmlreval::json::Parse(Slurp(P("metrics.json")));
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  // One edit_stream request took the fallback path; per-op verdict
  // counters account for all six operations.
  const xmlreval::json::Value* counters = dump->Find("counters");
  ASSERT_NE(counters, nullptr);
  double fallback = 0.0;
  double ops = 0.0;
  for (const auto& e : counters->AsArray()) {
    const std::string& name = e.Find("name")->AsString();
    if (name == "xmlreval_edit_streams_total") {
      const xmlreval::json::Value* labels = e.Find("labels");
      if (labels != nullptr && labels->Find("path") != nullptr &&
          labels->Find("path")->AsString() == "fallback") {
        fallback += e.Find("value")->AsNumber();
      }
    } else if (name == "xmlreval_edit_ops_total") {
      ops += e.Find("value")->AsNumber();
    }
  }
  EXPECT_EQ(fallback, 1.0);
  EXPECT_EQ(ops, 6.0);
}

TEST_F(AnalyzeUpdatesCliTest, UsageErrors) {
  EXPECT_EQ(Run("analyze-updates " + P("star.dtd") + " " + P("star.dtd")), 2);
  EXPECT_EQ(Run(Base() + " --safe-percent 150"), 2);
  EXPECT_EQ(Run(Base() + " --bogus-flag"), 2);
}

}  // namespace
