// Single-flight compilation under the plan cache: many services racing
// cold on one empty cache dir must publish exactly one artifact, compile
// at most once after the artifact exists, and all end up serviceable.
// Covers both thread racing (TSan-visible) and fork()-based multi-process
// racing (the flock path's real target).

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/plan_cache.h"
#include "service/validation_service.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"

namespace xmlreval::service {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/xmlreval_plan_race_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

void RemoveDirRecursive(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = readdir(d)) {
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      unlink((dir + "/" + entry->d_name).c_str());
    }
    closedir(d);
  }
  rmdir(dir.c_str());
}

ValidationService::PlanPairSpec Spec() {
  ValidationService::PlanPairSpec spec;
  spec.source_key = "src";
  spec.source_text = workload::kRelaxedQuantityXsd;
  spec.target_key = "tgt";
  spec.target_text = workload::kTargetXsd;
  return spec;
}

size_t CountPlanFiles(const std::string& dir) {
  size_t count = 0;
  if (DIR* d = opendir(dir.c_str())) {
    while (dirent* entry = readdir(d)) {
      std::string name = entry->d_name;
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".xrp") == 0) {
        ++count;
      }
    }
    closedir(d);
  }
  return count;
}

TEST(PlanConcurrencyTest, ThreadsRacingColdCompileOnce) {
  const std::string dir = MakeTempDir();
  constexpr int kThreads = 8;

  workload::PoGeneratorOptions doc_options;
  doc_options.item_count = 4;
  xml::Document doc = workload::GeneratePurchaseOrder(doc_options);

  std::atomic<int> saves{0};
  std::atomic<int> warm{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Each thread owns a full service — separate registries, separate
      // PlanCache instances, shared directory. Exactly what N independent
      // server processes look like, minus the address-space isolation.
      ValidationService::Options options;
      options.plan_cache_dir = dir;
      ValidationService svc(options);
      auto handles = svc.RegisterPlanPair(Spec());
      if (!handles.ok()) {
        ++failures;
        return;
      }
      auto report = svc.Cast(handles->source, handles->target, doc);
      if (!report.ok() || !report->valid) ++failures;
      if (handles->warm) ++warm;
      saves += int(svc.plan_cache()->GetStats().saves);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  // The flock single-flight admits exactly one compiler; everyone else
  // either mapped the artifact it published or recompiled nothing.
  EXPECT_EQ(saves.load(), 1);
  EXPECT_EQ(warm.load(), kThreads - 1);
  EXPECT_EQ(CountPlanFiles(dir), 1u);

  // A fresh service over the now-populated dir warm-starts immediately.
  ValidationService::Options options;
  options.plan_cache_dir = dir;
  ValidationService svc(options);
  ASSERT_OK_AND_ASSIGN(auto handles, svc.RegisterPlanPair(Spec()));
  EXPECT_TRUE(handles.warm);
  RemoveDirRecursive(dir);
}

TEST(PlanConcurrencyTest, ForkedProcessesRacingColdCompileOnce) {
  const std::string dir = MakeTempDir();
  constexpr int kProcs = 6;

  std::vector<pid_t> pids;
  for (int p = 0; p < kProcs; ++p) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: register the pair through the shared cache dir, cast once,
      // exit with a code that encodes the outcome.
      //   0 = cold compile (this child published), 1 = warm, 2 = failure
      workload::PoGeneratorOptions doc_options;
      doc_options.item_count = 4;
      xml::Document doc = workload::GeneratePurchaseOrder(doc_options);
      ValidationService::Options options;
      options.plan_cache_dir = dir;
      ValidationService svc(options);
      auto handles = svc.RegisterPlanPair(Spec());
      if (!handles.ok()) _exit(2);
      auto report = svc.Cast(handles->source, handles->target, doc);
      if (!report.ok() || !report->valid) _exit(2);
      if (svc.plan_cache()->GetStats().saves > 1) _exit(2);
      _exit(handles->warm ? 1 : 0);
    }
    pids.push_back(pid);
  }

  int cold = 0, warm_count = 0, failed = 0;
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
    switch (WEXITSTATUS(status)) {
      case 0: ++cold; break;
      case 1: ++warm_count; break;
      default: ++failed; break;
    }
  }

  EXPECT_EQ(failed, 0);
  // Exactly one process went down the compile-and-publish path; the flock
  // held everyone else until the artifact appeared, then they mapped it.
  EXPECT_EQ(cold, 1);
  EXPECT_EQ(warm_count, kProcs - 1);
  EXPECT_EQ(CountPlanFiles(dir), 1u);
  RemoveDirRecursive(dir);
}

TEST(PlanConcurrencyTest, RepeatedRoundsStayStable) {
  // Several sequential rounds of racing threads over the SAME dir: round 1
  // compiles once, every later round is all-warm with zero new saves.
  const std::string dir = MakeTempDir();
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> saves{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        ValidationService::Options options;
        options.plan_cache_dir = dir;
        ValidationService svc(options);
        auto handles = svc.RegisterPlanPair(Spec());
        if (!handles.ok()) {
          ++failures;
          return;
        }
        saves += int(svc.plan_cache()->GetStats().saves);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0) << "round " << round;
    EXPECT_EQ(saves.load(), round == 0 ? 1 : 0) << "round " << round;
  }
  EXPECT_EQ(CountPlanFiles(dir), 1u);
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace xmlreval::service
