// RelationsCache: single-flight under contention, LRU eviction, stats.
//
// The acceptance bar for the serving layer: N threads hammering
// overlapping (S, S') pairs must observe exactly one fixpoint computation
// per distinct pair (single-flight), correct verdicts, and consistent
// stats. Plus an eviction unit test with a tiny capacity.

#include "service/relations_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "service/schema_registry.h"
#include "xml/parser.h"

namespace xmlreval::service {
namespace {

constexpr const char* kSourceDtd = R"(
<!ELEMENT root (a, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
)";

// Four targets with distinct relationships to the source: identical
// (subsumed), b required, b repeatable, a optional.
constexpr const char* kTargetDtds[] = {
    R"(<!ELEMENT root (a, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>)",
    R"(<!ELEMENT root (a, b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>)",
    R"(<!ELEMENT root (a, b*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>)",
    R"(<!ELEMENT root (a?, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>)",
};

class RelationsCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema::DtdParseOptions options;
    options.roots = {"root"};
    auto source = registry_.RegisterDtd("source", kSourceDtd, options);
    ASSERT_TRUE(source.ok()) << source.status();
    source_ = *source;
    for (int i = 0; i < 4; ++i) {
      auto target = registry_.RegisterDtd("target-" + std::to_string(i),
                                          kTargetDtds[i], options);
      ASSERT_TRUE(target.ok()) << target.status();
      targets_[i] = *target;
    }
  }

  SchemaRegistry registry_;
  SchemaHandle source_ = kInvalidSchemaHandle;
  SchemaHandle targets_[4] = {};
};

TEST_F(RelationsCacheTest, ComputesOnceThenHits) {
  RelationsCache cache(&registry_);
  auto first = cache.Get(source_, targets_[0]);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = cache.Get(source_, targets_[0]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared instance

  RelationsCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(RelationsCacheTest, InvalidHandleFailsAndDoesNotPoison) {
  RelationsCache cache(&registry_);
  auto bad = cache.Get(source_, 9999);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The failed entry is dropped; the cache holds nothing and a valid
  // request afterwards works.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.Get(source_, targets_[0]).ok());
}

// 8 threads x 4 distinct pairs, overlapping request streams: exactly 4
// fixpoint computations (single-flight), one shared instance per pair,
// verdicts identical to full validation.
TEST_F(RelationsCacheTest, SingleFlightUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 50;
  RelationsCache cache(&registry_);

  // Per-thread documents (the cast precondition holds for both).
  auto doc_with_b = xml::ParseXml("<root><a>x</a><b>y</b></root>");
  auto doc_without_b = xml::ParseXml("<root><a>x</a></root>");
  ASSERT_TRUE(doc_with_b.ok());
  ASSERT_TRUE(doc_without_b.ok());

  // Expected verdicts from the full-validation baseline.
  bool expect_with_b[4];
  bool expect_without_b[4];
  for (int i = 0; i < 4; ++i) {
    core::FullValidator full(registry_.schema(targets_[i]).get());
    expect_with_b[i] = full.Validate(*doc_with_b).valid;
    expect_without_b[i] = full.Validate(*doc_without_b).valid;
  }

  std::atomic<bool> start{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  const core::TypeRelations* observed[kThreads][4] = {};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int round = 0; round < kRoundsPerThread; ++round) {
        // Overlap: every thread touches every pair, staggered start.
        int pair = (round + t) % 4;
        auto relations = cache.Get(source_, targets_[pair]);
        if (!relations.ok()) {
          failures.fetch_add(1);
          continue;
        }
        observed[t][pair] = relations->get();
        core::CastValidator validator(relations->get());
        bool with_b = validator.Validate(*doc_with_b).valid;
        bool without_b = validator.Validate(*doc_without_b).valid;
        if (with_b != expect_with_b[pair] ||
            without_b != expect_without_b[pair]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  RelationsCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.computations, 4u) << "single-flight violated";
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kRoundsPerThread);
  EXPECT_EQ(cache.size(), 4u);

  // Every thread saw the same TypeRelations instance per pair.
  for (int pair = 0; pair < 4; ++pair) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(observed[t][pair], observed[0][pair]);
    }
  }
}

TEST_F(RelationsCacheTest, LruEvictionWithTinyCapacity) {
  RelationsCache::Options options;
  options.capacity = 2;
  RelationsCache cache(&registry_, options);

  ASSERT_TRUE(cache.Get(source_, targets_[0]).ok());
  ASSERT_TRUE(cache.Get(source_, targets_[1]).ok());
  EXPECT_EQ(cache.size(), 2u);

  // Touch pair 0 so pair 1 is the LRU victim.
  ASSERT_TRUE(cache.Get(source_, targets_[0]).ok());
  ASSERT_TRUE(cache.Get(source_, targets_[2]).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Pair 0 survived (hit, no recompute); pair 1 was evicted (recompute).
  uint64_t computations = cache.stats().computations;
  ASSERT_TRUE(cache.Get(source_, targets_[0]).ok());
  EXPECT_EQ(cache.stats().computations, computations);
  ASSERT_TRUE(cache.Get(source_, targets_[1]).ok());
  EXPECT_EQ(cache.stats().computations, computations + 1);
}

TEST_F(RelationsCacheTest, EvictedEntryStaysAliveForHolders) {
  RelationsCache::Options options;
  options.capacity = 1;
  RelationsCache cache(&registry_, options);

  auto held = cache.Get(source_, targets_[1]);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(cache.Get(source_, targets_[2]).ok());  // evicts pair 1
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The evicted relations remain usable through the held shared_ptr.
  auto doc = xml::ParseXml("<root><a>x</a><b>y</b></root>");
  ASSERT_TRUE(doc.ok());
  core::CastValidator validator(held->get());
  EXPECT_TRUE(validator.Validate(*doc).valid);
}

TEST_F(RelationsCacheTest, AnalyzersCompileOnceAndShareRelations) {
  RelationsCache cache(&registry_);
  auto first = cache.GetAnalyzer(source_, targets_[1]);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = cache.GetAnalyzer(source_, targets_[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared analyzer
  EXPECT_EQ(cache.stats().analyzer_compilations, 1u);

  // The analyzer rides on the SAME cached relations instance the
  // validators use — compiling it populated the relations cache too.
  auto relations = cache.Get(source_, targets_[1]);
  ASSERT_TRUE(relations.ok());
  EXPECT_EQ(&(*first)->relations(), relations->get());
  EXPECT_EQ(cache.stats().computations, 1u);

  // A second pair compiles its own analyzer.
  ASSERT_TRUE(cache.GetAnalyzer(source_, targets_[2]).ok());
  EXPECT_EQ(cache.stats().analyzer_compilations, 2u);
}

TEST_F(RelationsCacheTest, AnalyzerBadHandleFailsAndDoesNotPoison) {
  RelationsCache cache(&registry_);
  EXPECT_FALSE(cache.GetAnalyzer(source_, 9999).ok());
  EXPECT_TRUE(cache.GetAnalyzer(source_, targets_[0]).ok());
  EXPECT_EQ(cache.stats().analyzer_compilations, 1u);
}

// Analyzer single-flight: hammering one pair from many threads compiles
// exactly once and every thread gets the same instance.
TEST_F(RelationsCacheTest, AnalyzerSingleFlightUnderContention) {
  constexpr int kThreads = 8;
  RelationsCache cache(&registry_);
  std::atomic<bool> go{false};
  std::atomic<const void*> seen{nullptr};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 20; ++i) {
        auto analyzer = cache.GetAnalyzer(source_, targets_[3]);
        ASSERT_TRUE(analyzer.ok());
        const void* expected = nullptr;
        const void* mine = analyzer->get();
        if (!seen.compare_exchange_strong(expected, mine)) {
          EXPECT_EQ(expected, mine);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& thread : workers) thread.join();
  EXPECT_EQ(cache.stats().analyzer_compilations, 1u);
}

}  // namespace
}  // namespace xmlreval::service
