#include "xml/sax.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/test_util.h"

namespace xmlreval::xml {
namespace {

// Records events as compact strings: "+tag", "-tag", "t:text", "d:name".
class Recorder : public SaxHandler {
 public:
  Status Doctype(std::string_view name, std::string_view subset) override {
    events.push_back("d:" + std::string(name) + "[" + std::string(subset) +
                     "]");
    return Status::OK();
  }
  Status StartElement(std::string_view name,
                      const std::vector<SaxAttribute>& attrs) override {
    std::string e = "+" + std::string(name);
    for (const SaxAttribute& a : attrs) {
      e += " " + std::string(a.name) + "=" + std::string(a.value);
    }
    events.push_back(e);
    return Status::OK();
  }
  Status EndElement(std::string_view name) override {
    events.push_back("-" + std::string(name));
    return Status::OK();
  }
  Status Characters(std::string_view text) override {
    events.push_back("t:" + std::string(text));
    return Status::OK();
  }

  std::vector<std::string> events;
};

TEST(SaxTest, EventOrder) {
  Recorder recorder;
  ASSERT_OK(ParseXmlEvents("<a x=\"1\"><b>hi</b><c/></a>", &recorder));
  EXPECT_EQ(recorder.events,
            (std::vector<std::string>{"+a x=1", "+b", "t:hi", "-b", "+c",
                                      "-c", "-a"}));
}

TEST(SaxTest, DoctypeEvent) {
  Recorder recorder;
  ASSERT_OK(ParseXmlEvents(
      "<!DOCTYPE note [<!ELEMENT note EMPTY>]><note/>", &recorder));
  ASSERT_GE(recorder.events.size(), 1u);
  EXPECT_EQ(recorder.events[0], "d:note[<!ELEMENT note EMPTY>]");
}

TEST(SaxTest, WhitespaceSkipping) {
  Recorder recorder;
  ASSERT_OK(ParseXmlEvents("<a>\n  <b/>\n</a>", &recorder));
  EXPECT_EQ(recorder.events,
            (std::vector<std::string>{"+a", "+b", "-b", "-a"}));

  Recorder keep;
  ParseOptions options;
  options.skip_whitespace_text = false;
  ASSERT_OK(ParseXmlEvents("<a>\n<b/></a>", &keep, options));
  EXPECT_EQ(keep.events,
            (std::vector<std::string>{"+a", "t:\n", "+b", "-b", "-a"}));
}

TEST(SaxTest, HandlerStatusAbortsParse) {
  class Bomb : public SaxHandler {
   public:
    Status StartElement(std::string_view name,
                        const std::vector<SaxAttribute>&) override {
      if (name == "boom") return Status::Internal("stop here");
      ++opened;
      return Status::OK();
    }
    int opened = 0;
  };
  Bomb bomb;
  Status status = ParseXmlEvents("<a><ok/><boom/><never/></a>", &bomb);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(bomb.opened, 2);  // a, ok — parsing stopped before 'never'
}

TEST(SaxTest, WellFormednessStillEnforced) {
  Recorder recorder;
  EXPECT_FALSE(ParseXmlEvents("<a><b></a></b>", &recorder).ok());
  EXPECT_FALSE(ParseXmlEvents("<a>", &recorder).ok());
  EXPECT_FALSE(ParseXmlEvents("", &recorder).ok());
}

TEST(SaxTest, CoalescedTextAcrossCdata) {
  Recorder recorder;
  ASSERT_OK(ParseXmlEvents("<a>x<![CDATA[y]]>z</a>", &recorder));
  EXPECT_EQ(recorder.events,
            (std::vector<std::string>{"+a", "t:xyz", "-a"}));
}

TEST(SaxTest, SelfClosingRootEmitsBothEvents) {
  Recorder recorder;
  ASSERT_OK(ParseXmlEvents("<only/>", &recorder));
  EXPECT_EQ(recorder.events, (std::vector<std::string>{"+only", "-only"}));
}

}  // namespace
}  // namespace xmlreval::xml
