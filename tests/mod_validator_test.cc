#include "core/mod_validator.h"

#include <gtest/gtest.h>

#include "core/full_validator.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "workload/random_docs.h"
#include "workload/update_workload.h"
#include "xml/label_index.h"
#include "xml/parser.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;
using xml::DocumentEditor;
using xml::ModificationIndex;

struct Fixture {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void LoadDtd(const char* source_dtd, const char* target_dtd) {
    auto s = ParseDtd(source_dtd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = ParseDtd(target_dtd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }

  void LoadXsd(const char* source_xsd, const char* target_xsd) {
    auto s = schema::ParseXsd(source_xsd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = schema::ParseXsd(target_xsd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

TEST(ModValidatorTest, NoEditsEqualsPlainCast) {
  Fixture f;
  f.LoadDtd("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>",
            "<!ELEMENT r (a+)><!ELEMENT a (#PCDATA)>");
  auto doc = xml::ParseXml("<r><a>1</a></r>");
  ASSERT_TRUE(doc.ok());
  DocumentEditor editor(&*doc);
  ModificationIndex mods = editor.Seal();
  ModValidator validator(f.relations.get());
  ValidationReport r = validator.Validate(*doc, mods);
  EXPECT_TRUE(r.valid) << r.violation;
}

TEST(ModValidatorTest, InsertMakesInvalidDocumentValid) {
  // Source allows a*, target requires a+. Start with zero a's (invalid for
  // target), insert one — now valid.
  Fixture f;
  f.LoadDtd("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>",
            "<!ELEMENT r (a+)><!ELEMENT a (#PCDATA)>");
  auto doc = xml::ParseXml("<r/>");
  ASSERT_TRUE(doc.ok());
  ModValidator validator(f.relations.get());
  {
    DocumentEditor editor(&*doc);
    ModificationIndex empty = editor.Seal();
    EXPECT_FALSE(validator.Validate(*doc, empty).valid);
  }
  auto doc2 = xml::ParseXml("<r/>");
  ASSERT_TRUE(doc2.ok());
  DocumentEditor editor(&*doc2);
  ASSERT_OK(editor.InsertElementFirstChild(doc2->root(), "a").status());
  ModificationIndex mods = editor.Seal();
  ValidationReport r = validator.Validate(*doc2, mods);
  EXPECT_TRUE(r.valid) << r.violation;
}

TEST(ModValidatorTest, DeleteBreaksValidity) {
  Fixture f;
  f.LoadDtd("<!ELEMENT r (a,b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>",
            "<!ELEMENT r (a,b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>");
  auto doc = xml::ParseXml("<r><a/><b/></r>");
  ASSERT_TRUE(doc.ok());
  DocumentEditor editor(&*doc);
  ASSERT_OK(editor.DeleteLeaf(xml::ElementChildren(*doc, doc->root())[1]));
  ModificationIndex mods = editor.Seal();
  ModValidator validator(f.relations.get());
  ValidationReport r = validator.Validate(*doc, mods);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("content model"), std::string::npos);
}

TEST(ModValidatorTest, RenameHandledThroughProjections) {
  Fixture f;
  f.LoadDtd("<!ELEMENT r (a|b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>",
            "<!ELEMENT r (b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>");
  auto doc = xml::ParseXml("<r><a/></r>");
  ASSERT_TRUE(doc.ok());
  ModValidator validator(f.relations.get());
  DocumentEditor editor(&*doc);
  ASSERT_OK(editor.RenameElement(xml::ElementChildren(*doc, doc->root())[0],
                                 "b"));
  ModificationIndex mods = editor.Seal();
  ValidationReport r = validator.Validate(*doc, mods);
  EXPECT_TRUE(r.valid) << r.violation;
}

TEST(ModValidatorTest, TextEditRevalidatesFacet) {
  Fixture f;
  f.LoadXsd(workload::kRelaxedQuantityXsd, workload::kTargetXsd);
  workload::PoGeneratorOptions options;
  options.item_count = 5;
  options.quantity_max = 50;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  ModValidator validator(f.relations.get());

  // Edit one quantity to 150: fine for the relaxed source, NOT for target.
  xml::LabelIndex index = xml::LabelIndex::Build(doc);
  xml::NodeId quantity = index.Instances("quantity")[2];
  DocumentEditor editor(&doc);
  ASSERT_OK(editor.UpdateText(doc.first_child(quantity), "150"));
  ModificationIndex mods = editor.Seal();
  ValidationReport r = validator.Validate(doc, mods);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("maxExclusive"), std::string::npos);
}

TEST(ModValidatorTest, UnmodifiedSubtreesUseCastShortcuts) {
  Fixture f;
  f.LoadXsd(workload::kTargetXsd, workload::kTargetXsd);
  workload::PoGeneratorOptions options;
  options.item_count = 100;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  ModValidator validator(f.relations.get());

  // Edit one item's quantity; everything else must be skipped via R_sub.
  xml::LabelIndex index = xml::LabelIndex::Build(doc);
  xml::NodeId quantity = index.Instances("quantity")[50];
  DocumentEditor editor(&doc);
  ASSERT_OK(editor.UpdateText(doc.first_child(quantity), "42"));
  ModificationIndex mods = editor.Seal();
  ValidationReport r = validator.Validate(doc, mods);
  EXPECT_TRUE(r.valid) << r.violation;
  // Work is bounded by the spine to the edit plus one subsumption lookup
  // per child of each spine node (the 99 untouched items are each visited
  // once and skipped) — far below full validation, which descends into
  // every item subtree.
  ValidationReport full = FullValidator(f.target.get()).Validate(doc);
  EXPECT_LT(r.counters.nodes_visited, 130u);
  EXPECT_LT(r.counters.nodes_visited, full.counters.nodes_visited / 5);
  EXPECT_GE(r.counters.subtrees_skipped, 99u);
}

TEST(ModValidatorTest, InsertedSubtreeFullyValidated) {
  Fixture f;
  f.LoadDtd(
      "<!ELEMENT r (item*)><!ELEMENT item (k,v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      "<!ELEMENT r (item*)><!ELEMENT item (k,v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>");
  auto doc = xml::ParseXml("<r><item><k>a</k><v>1</v></item></r>");
  ASSERT_TRUE(doc.ok());
  ModValidator validator(f.relations.get());

  // Insert a structurally INVALID item (missing v).
  DocumentEditor editor(&*doc);
  ASSERT_OK_AND_ASSIGN(
      xml::NodeId item,
      editor.InsertElementAfter(xml::ElementChildren(*doc, doc->root())[0],
                                "item"));
  ASSERT_OK_AND_ASSIGN(xml::NodeId k,
                       editor.InsertElementFirstChild(item, "k"));
  ASSERT_OK(editor.InsertTextFirstChild(k, "key").status());
  ModificationIndex mods = editor.Seal();
  ValidationReport r = validator.Validate(*doc, mods);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.violation.find("item"), std::string::npos);
}

TEST(ModValidatorTest, CrossSchemaCastWithEdits) {
  // The paper's full scenario: document valid under Fig 1a (no billTo),
  // user ADDS a billTo subtree, then casts to Fig 2 — valid.
  Fixture f;
  f.LoadXsd(workload::kSourceXsd, workload::kTargetXsd);
  workload::PoGeneratorOptions options;
  options.item_count = 10;
  options.include_bill_to = false;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  ModValidator validator(f.relations.get());
  {
    DocumentEditor probe(&doc);
    ModificationIndex empty = probe.Seal();
    EXPECT_FALSE(validator.Validate(doc, empty).valid);
  }
  DocumentEditor editor(&doc);
  xml::NodeId ship = xml::ElementChildren(doc, doc.root())[0];
  ASSERT_OK_AND_ASSIGN(xml::NodeId bill,
                       editor.InsertElementAfter(ship, "billTo"));
  for (const char* field :
       {"country", "zip", "state", "city", "street", "name"}) {
    ASSERT_OK_AND_ASSIGN(xml::NodeId e,
                         editor.InsertElementFirstChild(bill, field));
    ASSERT_OK(editor
                  .InsertTextFirstChild(
                      e, std::string(field) == "zip" ? "94103" : "x")
                  .status());
  }
  ModificationIndex mods = editor.Seal();
  ValidationReport r = validator.Validate(doc, mods);
  EXPECT_TRUE(r.valid) << r.violation;
}

// Ground-truth property: for random documents and random edit batches, the
// incremental verdict must equal full target-validation of the committed
// document.
class ModAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ModAgreement, MatchesFullValidationOfCommittedDocument) {
  Fixture f;
  f.LoadDtd(
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, v?)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      "<!ELEMENT r (rec+)><!ELEMENT rec (k, v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>");
  ModValidator validator(f.relations.get());

  for (uint64_t seed = 1; seed <= 10; ++seed) {
    workload::RandomDocOptions doc_options;
    doc_options.seed = seed * 1000 + GetParam();
    doc_options.max_elements = 30;
    doc_options.root_label = "r";
    auto doc = workload::SampleDocument(*f.source, doc_options);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();

    DocumentEditor editor(&*doc);
    workload::UpdateWorkloadOptions update_options;
    update_options.seed = seed * 77 + GetParam();
    update_options.edit_count = 1 + (seed % 5);
    update_options.label_pool = {"rec", "k", "v"};
    auto applied = workload::ApplyRandomUpdates(&*doc, &editor, update_options);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();

    ModificationIndex mods = editor.Seal();
    ValidationReport incremental = validator.Validate(*doc, mods);

    ASSERT_OK(editor.Commit());
    ValidationReport ground_truth = FullValidator(f.target.get()).Validate(*doc);

    EXPECT_EQ(incremental.valid, ground_truth.valid)
        << "seed=" << seed << " param=" << GetParam() << "\n  incremental: "
        << incremental.violation << "\n  ground truth: "
        << ground_truth.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModAgreement, ::testing::Range(0, 12));

// Same property on the paper's purchase-order schemas with facet edits.
class PoModAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PoModAgreement, MatchesGroundTruth) {
  Fixture f;
  f.LoadXsd(workload::kRelaxedQuantityXsd, workload::kTargetXsd);
  ModValidator validator(f.relations.get());

  workload::PoGeneratorOptions po_options;
  po_options.item_count = 12;
  po_options.seed = GetParam();
  po_options.quantity_max = 80;
  xml::Document doc = workload::GeneratePurchaseOrder(po_options);

  DocumentEditor editor(&doc);
  workload::UpdateWorkloadOptions update_options;
  update_options.seed = GetParam() * 13 + 5;
  update_options.edit_count = 3;
  auto applied = workload::ApplyRandomUpdates(&doc, &editor, update_options);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  ModificationIndex mods = editor.Seal();
  ValidationReport incremental = validator.Validate(doc, mods);
  ASSERT_OK(editor.Commit());
  ValidationReport ground_truth = FullValidator(f.target.get()).Validate(doc);
  EXPECT_EQ(incremental.valid, ground_truth.valid)
      << "param=" << GetParam() << "\n  incremental: " << incremental.violation
      << "\n  ground truth: " << ground_truth.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoModAgreement, ::testing::Range(1, 26));

}  // namespace
}  // namespace xmlreval::core

namespace xmlreval::core {
namespace {

// §4.3's direction choice: with reverse automata prebuilt, an append-heavy
// edit is verified by scanning backward over the few changed symbols
// instead of forward over the whole child list.
TEST(ModValidatorReverseTest, AppendScansBackward) {
  Fixture f;
  auto alphabet = f.alphabet;
  schema::DtdParseOptions roots;
  roots.roots = {"r"};
  auto s = schema::ParseDtd("<!ELEMENT r (item*)><!ELEMENT item (#PCDATA)>",
                            alphabet, roots);
  ASSERT_TRUE(s.ok());
  f.source = std::make_unique<Schema>(std::move(s).value());
  auto t = schema::ParseDtd("<!ELEMENT r (item+)><!ELEMENT item (#PCDATA)>",
                            alphabet, roots);
  ASSERT_TRUE(t.ok());
  f.target = std::make_unique<Schema>(std::move(t).value());

  TypeRelations::Options forward_only;
  auto rel_fwd = TypeRelations::Compute(f.source.get(), f.target.get(),
                                        forward_only);
  ASSERT_TRUE(rel_fwd.ok());
  TypeRelations::Options with_reverse = forward_only;
  with_reverse.build_reverse_automata = true;
  auto rel_rev = TypeRelations::Compute(f.source.get(), f.target.get(),
                                        with_reverse);
  ASSERT_TRUE(rel_rev.ok());
  ASSERT_NE(rel_rev->ReversePairAutomaton(*f.source->FindType("r"),
                                          *f.target->FindType("r")),
            nullptr);

  auto run = [&](const TypeRelations& relations) {
    // 400 items, append one at the END.
    std::string text = "<r>";
    for (int i = 0; i < 400; ++i) text += "<item>x</item>";
    text += "</r>";
    auto doc = xml::ParseXml(text);
    EXPECT_TRUE(doc.ok());
    xml::DocumentEditor editor(&*doc);
    xml::NodeId last = doc->last_child(doc->root());
    auto inserted = editor.InsertElementAfter(last, "item");
    EXPECT_TRUE(inserted.ok());
    EXPECT_TRUE(editor.InsertTextFirstChild(*inserted, "y").ok());
    xml::ModificationIndex mods = editor.Seal();
    ModValidator validator(&relations);
    return validator.Validate(*doc, mods);
  };

  ValidationReport forward = run(*rel_fwd);
  ValidationReport backward = run(*rel_rev);
  ASSERT_TRUE(forward.valid) << forward.violation;
  ASSERT_TRUE(backward.valid) << backward.violation;
  // Forward must re-scan the unmodified 400-symbol prefix; backward decides
  // within a few symbols of the appended tail.
  EXPECT_GT(forward.counters.dfa_steps, 300u);
  EXPECT_LT(backward.counters.dfa_steps, 20u);
}

// Agreement must be unaffected by the reverse machinery.
TEST(ModValidatorReverseTest, VerdictsUnchangedWithReverseAutomata) {
  Fixture f;
  f.LoadDtd(
      "<!ELEMENT r (rec*)><!ELEMENT rec (k, v?)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>",
      "<!ELEMENT r (rec+)><!ELEMENT rec (k, v)>"
      "<!ELEMENT k (#PCDATA)><!ELEMENT v (#PCDATA)>");
  TypeRelations::Options with_reverse;
  with_reverse.build_reverse_automata = true;
  auto rel_rev = TypeRelations::Compute(f.source.get(), f.target.get(),
                                        with_reverse);
  ASSERT_TRUE(rel_rev.ok());
  ModValidator plain(f.relations.get());
  ModValidator reversed(&*rel_rev);

  for (uint64_t seed = 1; seed <= 15; ++seed) {
    workload::RandomDocOptions doc_options;
    doc_options.seed = seed * 101;
    doc_options.max_elements = 30;
    doc_options.root_label = "r";
    auto doc1 = workload::SampleDocument(*f.source, doc_options);
    ASSERT_TRUE(doc1.ok());
    auto doc2 = workload::SampleDocument(*f.source, doc_options);
    ASSERT_TRUE(doc2.ok());

    auto edit = [&](xml::Document* doc, const TypeRelations& relations) {
      xml::DocumentEditor editor(doc);
      workload::UpdateWorkloadOptions update_options;
      update_options.seed = seed * 7;
      update_options.edit_count = 2;
      update_options.label_pool = {"rec", "k", "v"};
      auto applied = workload::ApplyRandomUpdates(doc, &editor, update_options);
      EXPECT_TRUE(applied.ok());
      xml::ModificationIndex mods = editor.Seal();
      ModValidator validator(&relations);
      return validator.Validate(*doc, mods).valid;
    };
    EXPECT_EQ(edit(&*doc1, *f.relations), edit(&*doc2, *rel_rev))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace xmlreval::core
