#include "automata/lazy_dfa.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "automata/glushkov.h"
#include "automata/regex_parser.h"
#include "tests/test_util.h"

namespace xmlreval::automata {
namespace {

using testutil::CompileOrDie;
using testutil::ForAllWords;
using testutil::Word;

// Builds a LazyDfa for the same Glushkov NFA CompileRegex determinizes.
LazyDfa LazyOf(const std::string& regex, Alphabet* alphabet) {
  auto parsed = ParseRegex(regex, alphabet);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto expanded = ExpandRepeats(*parsed);
  EXPECT_TRUE(expanded.ok());
  auto g = BuildGlushkov(*expanded, alphabet->size());
  EXPECT_TRUE(g.ok());
  return LazyDfa(std::move(g->nfa));
}

bool LazyAccepts(const LazyDfa& lazy, const std::vector<Symbol>& word) {
  StateId q = lazy.start_state();
  for (Symbol s : word) q = lazy.Step(q, s);
  return lazy.IsAccepting(q);
}

TEST(LazyDfaTest, AgreesWithEagerOnAllShortWords) {
  const char* kExprs[] = {"a",          "(a,b,c)",       "(a|b|c)",
                          "(a,b)*",     "(a?,b)",        "((a,b)|(a,c))",
                          "(a,b?,c*)",  "(a+,b+)",       "((a|b)*,c)",
                          "((a,a)|(b,b))*"};
  for (const char* expr : kExprs) {
    Alphabet alphabet;
    Dfa eager = CompileOrDie(expr, &alphabet);
    Alphabet lazy_alphabet;
    LazyDfa lazy = LazyOf(expr, &lazy_alphabet);
    ASSERT_EQ(alphabet.size(), lazy_alphabet.size());
    ForAllWords(alphabet.size(), 5, [&](const std::vector<Symbol>& word) {
      ASSERT_EQ(eager.Accepts(word), LazyAccepts(lazy, word))
          << expr << " disagrees on a word of length " << word.size();
    });
    EXPECT_EQ(eager.AcceptsEmpty(), lazy.AcceptsEmpty()) << expr;
  }
}

TEST(LazyDfaTest, ExpandsOnlyVisitedStates) {
  // A deep concat has ~n live subsets; stepping one prefix must not expand
  // the whole chain.
  Alphabet alphabet;
  LazyDfa lazy = LazyOf("(a,b,c,d,e,f,g,h)", &alphabet);
  size_t before = lazy.num_expanded_states();
  StateId q = lazy.Step(lazy.start_state(), alphabet.Intern("a"));
  q = lazy.Step(q, alphabet.Intern("b"));
  (void)q;
  size_t after = lazy.num_expanded_states();
  EXPECT_GT(after, before);
  // 8-symbol chain → 9+ subsets total; two steps expand ≤ 4 states
  // (sink + start + the two stepped-from states).
  EXPECT_LE(after, 4u);
}

TEST(LazyDfaTest, RestrictToRoutesPrunedSymbolsToSink) {
  Alphabet alphabet;
  Symbol a = alphabet.Intern("a");
  Symbol b = alphabet.Intern("b");
  LazyDfa lazy = LazyOf("((a|b),a)", &alphabet);
  // Prune b: the language restricted to {a} is exactly "aa".
  std::vector<bool> allowed(alphabet.size(), true);
  allowed[b] = false;
  lazy.RestrictTo(allowed);
  EXPECT_TRUE(LazyAccepts(lazy, {a, a}));
  EXPECT_FALSE(LazyAccepts(lazy, {b, a}));
  EXPECT_FALSE(LazyAccepts(lazy, {a}));
  // Once in the sink, no word escapes.
  StateId q = lazy.Step(lazy.start_state(), b);
  q = lazy.Step(q, a);
  q = lazy.Step(q, a);
  EXPECT_FALSE(lazy.IsAccepting(q));
}

TEST(LazyDfaTest, MaterializedMatchesEagerPipeline) {
  const char* kExprs[] = {"(a,(b|c)*,d?)", "((a,b)+|c)", "(a*,b*)"};
  for (const char* expr : kExprs) {
    Alphabet alphabet;
    Dfa eager = CompileOrDie(expr, &alphabet);
    Alphabet lazy_alphabet;
    LazyDfa lazy = LazyOf(expr, &lazy_alphabet);
    // Partially expand first — materialization must complete the sweep.
    (void)lazy.Step(lazy.start_state(), 0);
    const Dfa& materialized = lazy.Materialized();
    EXPECT_TRUE(lazy.is_materialized());
    // Minimized on both sides → identical state counts and language.
    EXPECT_EQ(materialized.num_states(), eager.num_states()) << expr;
    ForAllWords(alphabet.size(), 5, [&](const std::vector<Symbol>& word) {
      ASSERT_EQ(eager.Accepts(word), materialized.Accepts(word)) << expr;
    });
  }
}

TEST(LazyDfaTest, MaterializedIsStableAcrossCalls) {
  Alphabet alphabet;
  LazyDfa lazy = LazyOf("(a,b)*", &alphabet);
  const Dfa& first = lazy.Materialized();
  const Dfa& second = lazy.Materialized();
  EXPECT_EQ(&first, &second);
}

TEST(LazyDfaTest, ConcurrentSteppingIsRaceFree) {
  Alphabet alphabet;
  Symbol a = alphabet.Intern("a");
  Symbol b = alphabet.Intern("b");
  LazyDfa lazy = LazyOf("((a,b)|(a,a))*", &alphabet);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> accepted(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(t);
      for (int i = 0; i < 500; ++i) {
        StateId q = lazy.start_state();
        int len = int(rng() % 8);
        for (int j = 0; j < len; ++j) {
          q = lazy.Step(q, rng() % 2 == 0 ? a : b);
        }
        accepted[t] += lazy.IsAccepting(q) ? 1 : 0;
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every thread saw SOME accepting states (the empty word accepts).
  for (int t = 0; t < kThreads; ++t) EXPECT_GT(accepted[t], 0);
}

TEST(NfaEmptinessTest, FilteredEmptinessMatchesRestrictedLanguage) {
  Alphabet alphabet;
  Symbol a = alphabet.Intern("a");
  Symbol b = alphabet.Intern("b");
  (void)a;
  auto parsed = ParseRegex("((a|b),b)", &alphabet);
  ASSERT_TRUE(parsed.ok());
  auto g = BuildGlushkov(*parsed, alphabet.size());
  ASSERT_TRUE(g.ok());
  std::vector<bool> all(alphabet.size(), true);
  EXPECT_TRUE(NfaLanguageNonEmptyFiltered(g->nfa, all));
  // Without b no word completes ((a|b),b).
  std::vector<bool> no_b(alphabet.size(), true);
  no_b[b] = false;
  EXPECT_FALSE(NfaLanguageNonEmptyFiltered(g->nfa, no_b));
}

TEST(NfaEmptinessTest, EmptyWordCountsWithoutAnySymbols) {
  Alphabet alphabet;
  alphabet.Intern("a");
  auto parsed = ParseRegex("a*", &alphabet);
  ASSERT_TRUE(parsed.ok());
  auto g = BuildGlushkov(*parsed, alphabet.size());
  ASSERT_TRUE(g.ok());
  std::vector<bool> none(alphabet.size(), false);
  // ε ∈ L(a*) even with every symbol pruned.
  EXPECT_TRUE(NfaLanguageNonEmptyFiltered(g->nfa, none));
}

}  // namespace
}  // namespace xmlreval::automata
