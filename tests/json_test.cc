// common/json: the strict little parser behind `xmlreval stats`, the CI
// metrics reconciliation, and the trace golden test.

#include "common/json.h"

#include <gtest/gtest.h>

namespace xmlreval::json {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("-12.5e2")->AsNumber(), -1250.0);
  EXPECT_EQ(Parse("\"a\\n\\\"b\\\"\\u0041\"")->AsString(), "a\n\"b\"A");
}

TEST(JsonParseTest, NestedContainers) {
  auto v = Parse(R"({"a": [1, {"b": "c"}, []], "d": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const Value* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[0].AsNumber(), 1.0);
  EXPECT_EQ(a->AsArray()[1].Find("b")->AsString(), "c");
  EXPECT_TRUE(a->AsArray()[2].AsArray().empty());
  EXPECT_TRUE(v->Find("d")->AsObject().empty());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("1 trailing").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
}

TEST(JsonParseTest, DepthLimitStopsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Parse(deep).ok());
  std::string ok(64, '[');
  ok += std::string(64, ']');
  EXPECT_TRUE(Parse(ok).ok());
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(Escape("plain"), "plain");
  EXPECT_EQ(Escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  // Round-trip: escaping then parsing yields the original.
  auto v = Parse("\"" + Escape("tab\there \x01 end") + "\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsString(), "tab\there \x01 end");
}

}  // namespace
}  // namespace xmlreval::json
