#include "core/string_revalidator.h"

#include <gtest/gtest.h>

#include <random>

#include "tests/test_util.h"

namespace xmlreval::core {
namespace {

using automata::Alphabet;
using testutil::CompileOrDie;
using testutil::ForAllWords;
using testutil::Word;

TEST(StringRevalidatorTest, RevalidateAgreesWithMembership) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("((a|b)+,c?)", &alphabet);
  Dfa b = CompileOrDie("((a,b)*,c)", &alphabet);
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::Create(a, b));
  ForAllWords(alphabet.size(), 6, [&](const std::vector<Symbol>& word) {
    if (!a.Accepts(word)) return;
    RevalidationResult r = reval.Revalidate(word);
    EXPECT_EQ(r.accepted, b.Accepts(word));
    EXPECT_LE(r.symbols_scanned, word.size());
  });
}

TEST(StringRevalidatorTest, PaperBillToExample) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("(shipTo,billTo?,items)", &alphabet);
  Dfa b = CompileOrDie("(shipTo,billTo,items)", &alphabet);
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::Create(a, b));
  std::vector<Symbol> with_bill{*alphabet.Find("shipTo"),
                                *alphabet.Find("billTo"),
                                *alphabet.Find("items")};
  RevalidationResult r = reval.Revalidate(with_bill);
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.decided_early);
  EXPECT_EQ(r.symbols_scanned, 2u);  // decided right after billTo
}

TEST(StringRevalidatorTest, ValidateFreshUsesOnlyTarget) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("(a,b)", &alphabet);
  Dfa b = CompileOrDie("(a,b,(a|b)*)", &alphabet);
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::Create(a, b));
  // "ba" is NOT in L(a); ValidateFresh still gives the right answer.
  RevalidationResult r = reval.ValidateFresh(Word("ba", &alphabet));
  EXPECT_FALSE(r.accepted);
  // And early: after 'b' the target is dead.
  EXPECT_TRUE(r.decided_early);
  EXPECT_EQ(r.symbols_scanned, 1u);
}

TEST(StringRevalidatorTest, SingleSchemaUpdateProblem) {
  // b == a: "is the string still valid after edits?"
  Alphabet alphabet;
  Dfa a = CompileOrDie("(a,b)+", &alphabet);
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::CreateSingle(a));
  std::vector<Symbol> old_s = Word("abab", &alphabet);
  std::vector<Symbol> still_ok = Word("ababab", &alphabet);
  std::vector<Symbol> broken = Word("aabab", &alphabet);
  EXPECT_TRUE(reval.RevalidateModified(old_s, still_ok).accepted);
  EXPECT_FALSE(reval.RevalidateModified(old_s, broken).accepted);
}

TEST(StringRevalidatorTest, ModifiedForwardThreePhase) {
  Alphabet alphabet;
  for (const char* n : {"a", "b", "x", "y"}) alphabet.Intern(n);
  Dfa a = CompileOrDie("(x,(a|b)*)", &alphabet);
  Dfa b = CompileOrDie("(y,(a|b)*)", &alphabet);
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::Create(a, b));
  // old = x a b a ∈ L(a); new = y a b a (prefix edit).
  std::vector<Symbol> old_s = Word("xaba", &alphabet);
  std::vector<Symbol> new_s = Word("yaba", &alphabet);
  RevalidationResult r =
      reval.RevalidateModifiedForward(old_s, new_s, /*unmodified_from=*/1);
  EXPECT_TRUE(r.accepted);
  // After scanning 'y' with b_immed and landing in the product, the suffix
  // languages coincide — early accept without scanning all of "aba".
  EXPECT_LT(r.symbols_scanned, new_s.size());
}

TEST(StringRevalidatorTest, ModifiedPicksBackwardForSuffixEdits) {
  Alphabet alphabet;
  for (const char* n : {"a", "b", "x", "y"}) alphabet.Intern(n);
  Dfa a = CompileOrDie("((a|b)*,x)", &alphabet);
  Dfa b = CompileOrDie("((a|b)*,y)", &alphabet);
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::Create(a, b));
  // Append-style edit: long unmodified prefix, tail changed.
  std::vector<Symbol> old_s = Word("ababababx", &alphabet);
  std::vector<Symbol> new_s = Word("ababababy", &alphabet);
  RevalidationResult r = reval.RevalidateModified(old_s, new_s);
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.scanned_backward);
  // Only the changed tail (plus possibly one resolution step) is scanned.
  EXPECT_LE(r.symbols_scanned, 2u);
}

TEST(StringRevalidatorTest, ReverseDisabledStillCorrect) {
  Alphabet alphabet;
  for (const char* n : {"a", "b", "x", "y"}) alphabet.Intern(n);
  Dfa a = CompileOrDie("((a|b)*,x)", &alphabet);
  Dfa b = CompileOrDie("((a|b)*,y)", &alphabet);
  StringRevalidator::Options options;
  options.enable_reverse = false;
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::Create(a, b, options));
  std::vector<Symbol> old_s = Word("ababx", &alphabet);
  std::vector<Symbol> new_s = Word("ababy", &alphabet);
  RevalidationResult r = reval.RevalidateModified(old_s, new_s);
  EXPECT_TRUE(r.accepted);
  EXPECT_FALSE(r.scanned_backward);
}

TEST(StringRevalidatorTest, RejectsMismatchedAlphabets) {
  Alphabet small, big;
  Dfa a = CompileOrDie("(a,b)", &small);
  Dfa b = CompileOrDie("(a,b,c)", &big);
  Result<StringRevalidator> reval = StringRevalidator::Create(a, b);
  ASSERT_FALSE(reval.ok());
  // Padding fixes it.
  ASSERT_TRUE(
      StringRevalidator::Create(a.PaddedTo(b.alphabet_size()), b).ok());
}

// Property: for random edits of random source strings, RevalidateModified
// must agree with direct membership, in both scan directions.
class ModifiedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ModifiedEquivalence, MatchesDirectMembership) {
  std::mt19937_64 rng(GetParam());
  Alphabet alphabet;
  Dfa a = CompileOrDie("((a,b)|(c,d))*", &alphabet);
  Dfa b = CompileOrDie("((a,b)*,(c,d)*)", &alphabet);
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::Create(a, b));

  // Build a random string in L(a): a sequence of "ab"/"cd" blocks.
  std::vector<Symbol> old_s;
  size_t blocks = rng() % 8;
  for (size_t i = 0; i < blocks; ++i) {
    if (rng() & 1) {
      old_s.push_back(*alphabet.Find("a"));
      old_s.push_back(*alphabet.Find("b"));
    } else {
      old_s.push_back(*alphabet.Find("c"));
      old_s.push_back(*alphabet.Find("d"));
    }
  }
  ASSERT_TRUE(a.Accepts(old_s));

  for (int edit = 0; edit < 20; ++edit) {
    std::vector<Symbol> new_s = old_s;
    int op = rng() % 3;
    if (op == 0 && !new_s.empty()) {
      new_s[rng() % new_s.size()] = static_cast<Symbol>(rng() % alphabet.size());
    } else if (op == 1) {
      new_s.insert(new_s.begin() + rng() % (new_s.size() + 1),
                   static_cast<Symbol>(rng() % alphabet.size()));
    } else if (!new_s.empty()) {
      new_s.erase(new_s.begin() + rng() % new_s.size());
    }
    RevalidationResult r = reval.RevalidateModified(old_s, new_s);
    EXPECT_EQ(r.accepted, b.Accepts(new_s))
        << "seed=" << GetParam() << " edit=" << edit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModifiedEquivalence,
                         ::testing::Range(1, 21));

TEST(StringRevalidatorTest, EmptyStrings) {
  Alphabet alphabet;
  Dfa a = CompileOrDie("a*", &alphabet);
  Dfa b = CompileOrDie("a+", &alphabet);
  ASSERT_OK_AND_ASSIGN(StringRevalidator reval,
                       StringRevalidator::Create(a, b));
  EXPECT_FALSE(reval.Revalidate({}).accepted);   // ε ∈ L(a) \ L(b)
  EXPECT_FALSE(reval.RevalidateModified({}, {}).accepted);
  std::vector<Symbol> one = Word("a", &alphabet);
  EXPECT_TRUE(reval.RevalidateModified({}, one).accepted);
  EXPECT_FALSE(reval.RevalidateModified(one, {}).accepted);
}

}  // namespace
}  // namespace xmlreval::core
