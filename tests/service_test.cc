// ValidationService, SchemaRegistry, and the batch pipeline.

#include "service/validation_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "core/relations.h"
#include "obs/metrics.h"
#include "xml/editor.h"
#include "xml/parser.h"

// Some tests assert that instrumentation actually records samples; with
// the compile-time escape hatch active there is nothing to observe.
#ifdef XMLREVAL_OBS_DISABLED
#define SKIP_IF_OBS_COMPILED_OUT() \
  GTEST_SKIP() << "instrumentation compiled out (XMLREVAL_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_COMPILED_OUT() (void)0
#endif


namespace xmlreval::service {
namespace {

constexpr const char* kV1Dtd = R"(
<!ELEMENT note (to, from, body?)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT body (#PCDATA)>
)";

constexpr const char* kV2Dtd = R"(
<!ELEMENT note (to, from, body)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT body (#PCDATA)>
)";

constexpr const char* kFullNote =
    "<note><to>a</to><from>b</from><body>c</body></note>";
constexpr const char* kBodylessNote = "<note><to>a</to><from>b</from></note>";

schema::DtdParseOptions NoteOptions() {
  schema::DtdParseOptions options;
  options.roots = {"note"};
  return options;
}

// ---------------------------------------------------------------- registry

TEST(SchemaRegistryTest, VersionsAndDedup) {
  SchemaRegistry registry;
  auto v1 = registry.RegisterDtd("note", kV1Dtd, NoteOptions());
  ASSERT_TRUE(v1.ok()) << v1.status();

  // Byte-identical re-registration is idempotent.
  auto again = registry.RegisterDtd("note", kV1Dtd, NoteOptions());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*v1, *again);
  EXPECT_EQ(registry.VersionCount("note"), 1u);

  // Different text bumps the version.
  auto v2 = registry.RegisterDtd("note", kV2Dtd, NoteOptions());
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(*v1, *v2);
  EXPECT_EQ(registry.VersionCount("note"), 2u);
  EXPECT_EQ(registry.size(), 2u);

  // Resolve: latest by default, any version explicitly.
  ASSERT_TRUE(registry.Resolve("note").ok());
  EXPECT_EQ(*registry.Resolve("note"), *v2);
  EXPECT_EQ(*registry.Resolve("note", 1), *v1);
  EXPECT_EQ(*registry.Resolve("note", 2), *v2);
  EXPECT_FALSE(registry.Resolve("note", 3).ok());
  EXPECT_FALSE(registry.Resolve("unknown").ok());

  auto info = registry.info(*v2);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->key, "note");
  EXPECT_EQ(info->version, 2u);
  EXPECT_FALSE(registry.info(999).ok());
  EXPECT_EQ(registry.schema(999), nullptr);
}

TEST(SchemaRegistryTest, RejectsBadInput) {
  SchemaRegistry registry;
  EXPECT_FALSE(registry.RegisterDtd("", kV1Dtd).ok());
  EXPECT_FALSE(registry.RegisterDtd("broken", "<!ELEMENT").ok());
  EXPECT_FALSE(registry.RegisterXsd("broken", "not xsd at all").ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(SchemaRegistryTest, RegisterSchemaRequiresSharedAlphabet) {
  SchemaRegistry registry;
  auto foreign = schema::ParseDtd(
      kV1Dtd, std::make_shared<automata::Alphabet>(), NoteOptions());
  ASSERT_TRUE(foreign.ok());
  EXPECT_FALSE(
      registry.RegisterSchema("note", std::move(foreign).value()).ok());

  auto native = schema::ParseDtd(kV1Dtd, registry.alphabet(), NoteOptions());
  ASSERT_TRUE(native.ok());
  EXPECT_TRUE(
      registry.RegisterSchema("note", std::move(native).value()).ok());
}

// All schemas of one registry share one alphabet, so any registered pair
// is castable.
TEST(SchemaRegistryTest, CrossSchemaRelationsWork) {
  SchemaRegistry registry;
  auto v1 = registry.RegisterDtd("v1", kV1Dtd, NoteOptions());
  auto v2 = registry.RegisterDtd("v2", kV2Dtd, NoteOptions());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  auto relations = core::TypeRelations::Compute(registry.schema(*v1).get(),
                                                registry.schema(*v2).get());
  EXPECT_TRUE(relations.ok()) << relations.status();
}

// ------------------------------------------------------------ primitives

TEST(BoundedQueueTest, FifoAndClose) {
  common::BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);

  EXPECT_TRUE(queue.Push(3));
  queue.Close();
  EXPECT_FALSE(queue.Push(4));   // refused after close...
  EXPECT_EQ(queue.Pop(), 3);     // ...but accepted items drain
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  common::BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full, non-blocking refusal
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(BoundedQueueTest, PushBlocksUntilSpace) {
  common::BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.Push(2);  // blocks: queue is full
    pushed.store(true);
  });
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop(), 1);  // frees a slot
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop(), 2);
}

// The work-stealing Executor behind SubmitBatch has its own suite in
// executor_test.cc.

// --------------------------------------------------------------- service

class ValidationServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto v1 = service_.registry().RegisterDtd("v1", kV1Dtd, NoteOptions());
    auto v2 = service_.registry().RegisterDtd("v2", kV2Dtd, NoteOptions());
    ASSERT_TRUE(v1.ok()) << v1.status();
    ASSERT_TRUE(v2.ok()) << v2.status();
    v1_ = *v1;
    v2_ = *v2;
  }

  ValidationService service_;
  SchemaHandle v1_ = kInvalidSchemaHandle;
  SchemaHandle v2_ = kInvalidSchemaHandle;
};

TEST_F(ValidationServiceTest, ValidateMatchesFullValidator) {
  auto doc = xml::ParseXml(kBodylessNote);
  ASSERT_TRUE(doc.ok());

  auto v1_report = service_.Validate(v1_, *doc);
  ASSERT_TRUE(v1_report.ok());
  EXPECT_TRUE(v1_report->valid);

  auto v2_report = service_.Validate(v2_, *doc);
  ASSERT_TRUE(v2_report.ok());
  EXPECT_FALSE(v2_report->valid);
  EXPECT_FALSE(v2_report->violation.empty());

  EXPECT_FALSE(service_.Validate(777, *doc).ok());
}

TEST_F(ValidationServiceTest, CastMatchesBareCastValidator) {
  auto full_note = xml::ParseXml(kFullNote);
  auto bodyless = xml::ParseXml(kBodylessNote);
  ASSERT_TRUE(full_note.ok());
  ASSERT_TRUE(bodyless.ok());

  auto relations = core::TypeRelations::Compute(
      service_.registry().schema(v1_).get(),
      service_.registry().schema(v2_).get());
  ASSERT_TRUE(relations.ok());
  core::CastValidator bare(&*relations);

  for (const xml::Document* doc : {&*full_note, &*bodyless}) {
    auto via_service = service_.Cast(v1_, v2_, *doc);
    ASSERT_TRUE(via_service.ok()) << via_service.status();
    core::ValidationReport direct = bare.Validate(*doc);
    EXPECT_EQ(via_service->valid, direct.valid);
    EXPECT_EQ(via_service->counters.nodes_visited,
              direct.counters.nodes_visited);
  }

  // Both casts shared one cached fixpoint.
  EXPECT_EQ(service_.cache().stats().computations, 1u);
}

TEST_F(ValidationServiceTest, CastStreamMatchesDomCast) {
  for (const char* text : {kFullNote, kBodylessNote}) {
    auto doc = xml::ParseXml(text);
    ASSERT_TRUE(doc.ok());
    auto dom = service_.Cast(v1_, v2_, *doc);
    ASSERT_TRUE(dom.ok()) << dom.status();
    auto streamed = service_.CastStream(v1_, v2_, text);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_EQ(streamed->valid, dom->valid) << text;
  }
  ValidationService::Counters counters = service_.counters();
  EXPECT_EQ(counters.cast_streams, 2u);
  EXPECT_EQ(counters.stream_bytes,
            std::string(kFullNote).size() + std::string(kBodylessNote).size());
  EXPECT_EQ(counters.requests, counters.valid + counters.invalid +
                                   counters.errors);
}

TEST_F(ValidationServiceTest, CastStreamParseErrorIsAnError) {
  auto broken = service_.CastStream(v1_, v2_, "<note><to>a</to");
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kParseError);

  // Bad handles are booked too: the counter identity must still hold.
  EXPECT_FALSE(service_.CastStream(777, v2_, kFullNote).ok());
  ValidationService::Counters counters = service_.counters();
  EXPECT_EQ(counters.errors, 2u);
  EXPECT_EQ(counters.requests, counters.valid + counters.invalid +
                                   counters.errors);
}

TEST_F(ValidationServiceTest, CastStreamSessionFeedsIncrementally) {
  // Identical pair: the root is subsumed, so the engine byte-skips the
  // document body without tokenizing it.
  auto session = service_.StartCastStream(v1_, v1_);
  ASSERT_TRUE(session.ok()) << session.status();
  std::string text = kFullNote;
  for (size_t pos = 0; pos < text.size(); pos += 7) {
    Status fed = (*session)->Feed(std::string_view(text).substr(pos, 7));
    if (!fed.ok()) break;
  }
  auto report = (*session)->Finish();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->valid);
  const core::StreamingReport& streamed = (*session)->streaming_report();
  EXPECT_EQ(streamed.bytes_fed, text.size());
  EXPECT_GT(streamed.bytes_skipped, 0u);
  // Finish is idempotent and books exactly one request.
  ASSERT_TRUE((*session)->Finish().ok());
  EXPECT_EQ(service_.counters().cast_streams, 1u);
}

TEST_F(ValidationServiceTest, BatchRoutesLargeCastsThroughStreaming) {
  ValidationService::Options options;
  options.batch_threads = 2;
  options.stream_threshold_bytes = 1;  // everything streams
  ValidationService service(options);
  auto v1 = service.registry().RegisterDtd("v1", kV1Dtd, NoteOptions());
  auto v2 = service.registry().RegisterDtd("v2", kV2Dtd, NoteOptions());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  std::vector<ValidationService::BatchItem> items(3);
  items[0].op = ValidationService::BatchOp::kCast;
  items[0].source = *v1;
  items[0].target = *v2;
  items[0].xml_text = kFullNote;
  items[1] = items[0];
  items[1].xml_text = kBodylessNote;  // cast-invalid under v2
  items[2] = items[0];
  items[2].xml_text = "<note><broken";  // malformed

  auto results = service.SubmitBatch(std::move(items)).get();
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  EXPECT_TRUE(results[0].report.valid);
  ASSERT_TRUE(results[1].status.ok()) << results[1].status;
  EXPECT_FALSE(results[1].report.valid);
  EXPECT_FALSE(results[2].status.ok());

  ValidationService::Counters counters = service.counters();
  EXPECT_EQ(counters.cast_streams, 2u);  // the malformed item errored
  EXPECT_GT(counters.stream_bytes, 0u);
  EXPECT_EQ(counters.requests, counters.valid + counters.invalid +
                                   counters.errors);
}

TEST_F(ValidationServiceTest, CastPreconditionOptionRejectsSourceInvalid) {
  ValidationService::Options options;
  options.check_cast_precondition = true;
  ValidationService strict(options);
  auto v1 = strict.registry().RegisterDtd("v1", kV1Dtd, NoteOptions());
  auto v2 = strict.registry().RegisterDtd("v2", kV2Dtd, NoteOptions());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  auto alien = xml::ParseXml("<other/>");
  ASSERT_TRUE(alien.ok());
  auto report = strict.Cast(*v1, *v2, *alien);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);

  auto ok_doc = xml::ParseXml(kFullNote);
  ASSERT_TRUE(ok_doc.ok());
  auto ok_report = strict.Cast(*v1, *v2, *ok_doc);
  ASSERT_TRUE(ok_report.ok());
  EXPECT_TRUE(ok_report->valid);
}

TEST_F(ValidationServiceTest, CastWithModsRoutesThroughService) {
  // Start from a v1&v2-valid note, delete <body>: still v1-valid,
  // no longer v2-valid.
  auto doc = xml::ParseXml(kFullNote);
  ASSERT_TRUE(doc.ok());
  xml::DocumentEditor editor(&*doc);
  xml::NodeId body = xml::kInvalidNode;
  for (xml::NodeId child = doc->first_child(doc->root());
       child != xml::kInvalidNode; child = doc->next_sibling(child)) {
    if (doc->IsElement(child) && doc->label(child) == "body") body = child;
  }
  ASSERT_NE(body, xml::kInvalidNode);
  // Leaves delete bottom-up: the text payload, then <body> itself.
  ASSERT_TRUE(editor.DeleteLeaf(doc->first_child(body)).ok());
  ASSERT_TRUE(editor.DeleteLeaf(body).ok());
  xml::ModificationIndex mods = editor.Seal();

  auto report = service_.CastWithMods(v1_, v1_, *doc, mods);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->valid);

  auto v2_report = service_.CastWithMods(v1_, v2_, *doc, mods);
  ASSERT_TRUE(v2_report.ok());
  EXPECT_FALSE(v2_report->valid);

  EXPECT_EQ(service_.counters().casts_with_mods, 2u);
}

TEST_F(ValidationServiceTest, BatchReturnsPerItemResultsInOrder) {
  ValidationService::Options options;
  options.batch_threads = 4;
  options.batch_queue_capacity = 2;  // force backpressure
  ValidationService service(options);
  auto v1 = service.registry().RegisterDtd("v1", kV1Dtd, NoteOptions());
  auto v2 = service.registry().RegisterDtd("v2", kV2Dtd, NoteOptions());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  std::vector<ValidationService::BatchItem> items;
  for (int i = 0; i < 40; ++i) {
    ValidationService::BatchItem item;
    item.op = ValidationService::BatchOp::kCast;
    item.source = *v1;
    item.target = *v2;
    item.xml_text = (i % 2 == 0) ? kFullNote : kBodylessNote;
    items.push_back(std::move(item));
  }
  // A malformed document and a full-validate op mixed into the same batch.
  ValidationService::BatchItem malformed;
  malformed.xml_text = "<note><to>";
  malformed.source = *v1;
  malformed.target = *v2;
  items.push_back(std::move(malformed));
  ValidationService::BatchItem full_op;
  full_op.op = ValidationService::BatchOp::kValidate;
  full_op.target = *v1;
  full_op.xml_text = kBodylessNote;
  items.push_back(std::move(full_op));

  auto results = service.SubmitBatch(std::move(items)).get();
  ASSERT_EQ(results.size(), 42u);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(results[i].status.ok()) << i << ": " << results[i].status;
    EXPECT_EQ(results[i].report.valid, i % 2 == 0) << i;
  }
  EXPECT_FALSE(results[40].status.ok());
  EXPECT_TRUE(results[41].status.ok());
  EXPECT_TRUE(results[41].report.valid);

  // Single-flight held across the whole batch: one fixpoint.
  EXPECT_EQ(service.cache().stats().computations, 1u);
  ValidationService::Counters counters = service.counters();
  EXPECT_EQ(counters.batches, 1u);
  EXPECT_EQ(counters.batch_items, 42u);
  EXPECT_EQ(counters.requests, 42u);
  EXPECT_EQ(counters.valid, 20u + 1u);
  EXPECT_EQ(counters.invalid, 20u);
  EXPECT_EQ(counters.errors, 1u);
  EXPECT_EQ(counters.casts, 40u);
  EXPECT_EQ(counters.full_validations, 1u);
}

// Options::intra_doc_threads routes large casts through the parallel
// subtree engine; the report must be bit-identical to the serial one.
TEST_F(ValidationServiceTest, IntraDocParallelCastMatchesSerial) {
  constexpr const char* kWideDtd = R"(
<!ELEMENT r (a*, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
)";
  constexpr const char* kNarrowDtd = R"(
<!ELEMENT r (a*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
)";
  schema::DtdParseOptions roots;
  roots.roots = {"r"};

  ValidationService::Options options;
  options.intra_doc_threads = 2;
  options.intra_doc_min_nodes = 16;
  options.intra_doc_spawn_threshold = 8;
  ValidationService parallel_service(options);
  auto source =
      parallel_service.registry().RegisterDtd("wide", kWideDtd, roots);
  auto target =
      parallel_service.registry().RegisterDtd("narrow", kNarrowDtd, roots);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(target.ok());

  std::string text = "<r>";
  for (int i = 0; i < 400; ++i) text += "<a>x</a>";
  text += "</r>";
  auto doc = xml::ParseXml(text);
  ASSERT_TRUE(doc.ok());

  auto relations = core::TypeRelations::Compute(
      parallel_service.registry().schema(*source).get(),
      parallel_service.registry().schema(*target).get());
  ASSERT_TRUE(relations.ok());
  core::ValidationReport serial = core::CastValidator(&*relations).Validate(*doc);

  auto via_service = parallel_service.Cast(*source, *target, *doc);
  ASSERT_TRUE(via_service.ok()) << via_service.status();
  EXPECT_EQ(via_service->valid, serial.valid);
  EXPECT_EQ(via_service->violation, serial.violation);
  EXPECT_EQ(via_service->counters.nodes_visited,
            serial.counters.nodes_visited);
  EXPECT_EQ(via_service->counters.dfa_steps, serial.counters.dfa_steps);
  EXPECT_EQ(via_service->counters.subtrees_skipped,
            serial.counters.subtrees_skipped);
}

// Regression: destroying the service while large-document batch casts are
// in flight must not deadlock. Each draining batch worker's Cast reaches
// IntraExecutor(); the old destructor held executors_mutex_ across the
// batch join while the worker blocked on that same mutex.
TEST(ValidationServiceTeardownTest, InflightIntraDocCastDoesNotHang) {
  for (int round = 0; round < 8; ++round) {
    ValidationService::Options options;
    options.batch_threads = 2;
    options.intra_doc_threads = 2;
    options.intra_doc_min_nodes = 1;  // every cast takes the parallel path
    ValidationService service(options);
    auto v1 = service.registry().RegisterDtd("note", kV1Dtd, NoteOptions());
    auto v2 = service.registry().RegisterDtd("note", kV2Dtd, NoteOptions());
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());

    std::vector<ValidationService::BatchItem> items(8);
    for (auto& item : items) {
      item.op = ValidationService::BatchOp::kCast;
      item.source = *v1;
      item.target = *v2;
      item.xml_text = kFullNote;
    }
    service.SubmitBatch(std::move(items));
    // Destroy with the batch still in flight: the destructor must drain
    // (fulfilling the future) without deadlocking on executor creation.
  }
}

TEST_F(ValidationServiceTest, EmptyBatchResolvesImmediately) {
  auto results = service_.SubmitBatch({}).get();
  EXPECT_TRUE(results.empty());
}

// Registration concurrent with serving: the registry's reader/writer lock
// must keep alphabet growth safe under live validation traffic.
TEST_F(ValidationServiceTest, RegistrationConcurrentWithServing) {
  auto doc = xml::ParseXml(kFullNote);
  ASSERT_TRUE(doc.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> validators;
  for (int t = 0; t < 4; ++t) {
    validators.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto report = service_.Cast(v1_, v2_, *doc);
        if (!report.ok() || !report->valid) errors.fetch_add(1);
      }
    });
  }
  // Meanwhile register fresh schemas with brand-new labels (Σ grows).
  for (int i = 0; i < 20; ++i) {
    std::string label = "extra" + std::to_string(i);
    std::string dtd = "<!ELEMENT " + label + " (#PCDATA)>";
    auto handle = service_.registry().RegisterDtd("gen-" + label, dtd);
    EXPECT_TRUE(handle.ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : validators) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(service_.registry().size(), 22u);
}

// ------------------------------------------------------------ observability

// The obs registry's histograms must reconcile exactly with the request
// counters after a batch: every dispatched op contributes one latency
// sample, every item one service-time sample.
TEST_F(ValidationServiceTest, MetricsReconcileWithRequestCounters) {
  SKIP_IF_OBS_COMPILED_OUT();
  obs::SetEnabled(true);
  ValidationService service;
  auto v1 = service.registry().RegisterDtd("v1", kV1Dtd, NoteOptions());
  auto v2 = service.registry().RegisterDtd("v2", kV2Dtd, NoteOptions());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  std::vector<ValidationService::BatchItem> items;
  for (int i = 0; i < 20; ++i) {
    ValidationService::BatchItem item;
    item.source = *v1;
    item.target = *v2;
    item.xml_text = (i % 2 == 0) ? kFullNote : kBodylessNote;
    items.push_back(std::move(item));
  }
  ValidationService::BatchItem malformed;
  malformed.xml_text = "<broken";
  items.push_back(std::move(malformed));
  auto results = service.SubmitBatch(std::move(items)).get();
  ASSERT_EQ(results.size(), 21u);

  ValidationService::Counters counters = service.counters();
  obs::MetricsSnapshot snapshot = service.metrics().Snapshot();

  const obs::CounterSnapshot* cast_requests =
      snapshot.FindCounter("xmlreval_op_requests_total", {{"op", "cast"}});
  const obs::HistogramSnapshot* cast_latency =
      snapshot.FindHistogram("xmlreval_request_latency_us", {{"op", "cast"}});
  ASSERT_NE(cast_requests, nullptr);
  ASSERT_NE(cast_latency, nullptr);
  EXPECT_EQ(cast_requests->value, 20u);
  EXPECT_EQ(cast_latency->count, cast_requests->value);

  // Per-pair histogram, labeled with registry key + version.
  const obs::HistogramSnapshot* pair_latency = snapshot.FindHistogram(
      "xmlreval_pair_request_latency_us", {{"pair", "v1.v1->v2.v1"}});
  ASSERT_NE(pair_latency, nullptr);
  EXPECT_EQ(pair_latency->count, 20u);

  // Every batch item — including the malformed one — takes one sample in
  // the queue-wait and service-time histograms.
  EXPECT_EQ(
      snapshot.FindHistogram("xmlreval_batch_queue_wait_us")->count, 21u);
  EXPECT_EQ(snapshot.FindHistogram("xmlreval_batch_service_us")->count, 21u);

  // The Counters snapshot and the metrics snapshot agree.
  EXPECT_EQ(snapshot.FindCounter("xmlreval_requests_total")->value,
            counters.requests);
  EXPECT_EQ(
      snapshot.FindCounter("xmlreval_verdicts_total", {{"verdict", "valid"}})
          ->value,
      counters.valid);
  EXPECT_EQ(
      snapshot.FindCounter("xmlreval_verdicts_total", {{"verdict", "error"}})
          ->value,
      1u);
  EXPECT_EQ(snapshot.FindCounter("xmlreval_nodes_visited_total")->value,
            counters.nodes_visited);
  // Relations-cache metrics live in the same (per-service) registry.
  EXPECT_EQ(
      snapshot.FindCounter("xmlreval_relations_cache_computations_total")
          ->value,
      1u);
  // Batch inflight gauge settled back to zero once the batch drained.
  const obs::GaugeSnapshot* inflight =
      snapshot.FindGauge("xmlreval_batch_inflight");
  ASSERT_NE(inflight, nullptr);
  EXPECT_EQ(inflight->value, 0);
  // Queue-depth gauges report the HIGH-WATER mark since the previous
  // snapshot: the first exposition after the batch shows the peak backlog
  // (the 21-item burst must register on the batch executor), and the next
  // one — taken at quiescence with the interval's peak already consumed —
  // settles to the live depth of zero.
  {
    const obs::GaugeSnapshot* batch_depth = snapshot.FindGauge(
        "xmlreval_executor_queue_depth", {{"executor", "batch"}});
    ASSERT_NE(batch_depth, nullptr);
    EXPECT_GT(batch_depth->value, 0);
    obs::MetricsSnapshot settled = service.metrics().Snapshot();
    for (const char* executor : {"batch", "intra_doc"}) {
      const obs::GaugeSnapshot* depth = settled.FindGauge(
          "xmlreval_executor_queue_depth", {{"executor", executor}});
      ASSERT_NE(depth, nullptr) << executor;
      EXPECT_EQ(depth->value, 0) << executor;
    }
  }
  // Document-footprint gauges track the last served document's
  // MemoryUsage (SoA columns + string arena + attributes).
  const obs::GaugeSnapshot* doc_bytes =
      snapshot.FindGauge("xmlreval_doc_bytes");
  const obs::GaugeSnapshot* doc_bytes_per_node =
      snapshot.FindGauge("xmlreval_doc_bytes_per_node");
  ASSERT_NE(doc_bytes, nullptr);
  ASSERT_NE(doc_bytes_per_node, nullptr);
  EXPECT_GT(doc_bytes->value, 0);
  EXPECT_GT(doc_bytes_per_node->value, 0);
  // The flag+link columns alone are 25 bytes/row, so anything below that
  // means MemoryUsage is lying. No upper bound: on tiny documents the
  // fixed 64 KiB string-arena chunk dominates the per-node amortisation.
  EXPECT_GE(doc_bytes_per_node->value, 25);
}

// PR 1's counters() read one atomic at a time, so a snapshot taken during
// a request could see requests incremented but no verdict yet. The
// migrated path records each request under a shared lock and snapshots
// under the exclusive side: requests == valid + invalid + errors at EVERY
// snapshot, not just at quiescence.
// ----------------------------------------------------- edit-stream path

// feed accepts (entry|note)* — entry/note are neutral and interchangeable;
// meta can never appear under feed.
constexpr const char* kStarDtd = R"(
<!ELEMENT feed ((entry|note)*)>
<!ELEMENT entry (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT meta (title)>
<!ELEMENT title (#PCDATA)>
)";

class EditStreamServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = service_.registry().RegisterDtd("star-src", kStarDtd, {});
    auto t = service_.registry().RegisterDtd("star-tgt", kStarDtd, {});
    ASSERT_TRUE(s.ok()) << s.status();
    ASSERT_TRUE(t.ok()) << t.status();
    source_ = *s;
    target_ = *t;
  }

  xml::Document Doc(const char* text) {
    auto doc = xml::ParseXml(text);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_TRUE(service_.BindDocument(&*doc).ok());
    return std::move(doc).value();
  }

  ValidationService service_;
  SchemaHandle source_ = kInvalidSchemaHandle;
  SchemaHandle target_ = kInvalidSchemaHandle;
};

TEST_F(EditStreamServiceTest, AnalyzeUpdateClassifiesWithoutMutating) {
  xml::Document doc = Doc("<feed><entry>x</entry></feed>");
  xml::NodeId entry = doc.first_child(doc.root());

  xml::EditOp rename{xml::EditOp::Kind::kRename, entry, "note"};
  auto verdict = service_.AnalyzeUpdate(source_, target_, doc, rename);
  ASSERT_TRUE(verdict.ok()) << verdict.status();
  EXPECT_EQ(verdict->safety, analysis::Safety::kSafe) << verdict->reason;
  EXPECT_EQ(doc.label(entry), "entry");  // pure query, no tree change

  xml::EditOp doomed{xml::EditOp::Kind::kInsertElementFirstChild, doc.root(),
                     "meta"};
  auto fatal = service_.AnalyzeUpdate(source_, target_, doc, doomed);
  ASSERT_TRUE(fatal.ok());
  EXPECT_EQ(fatal->safety, analysis::Safety::kFatal);

  EXPECT_FALSE(service_.AnalyzeUpdate(777, target_, doc, rename).ok());
}

TEST_F(EditStreamServiceTest, SafeStreamShortCircuitsAndCommits) {
  xml::Document doc = Doc("<feed><entry>x</entry><note/></feed>");
  xml::NodeId entry = doc.first_child(doc.root());
  std::vector<xml::EditOp> ops{
      {xml::EditOp::Kind::kRename, entry, "note"},
      {xml::EditOp::Kind::kInsertElementFirstChild, doc.root(), "entry"},
  };
  auto result = service_.SubmitEditStream(source_, target_, &doc, ops);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->short_circuited);
  EXPECT_EQ(result->stream.verdict, analysis::Safety::kSafe);
  EXPECT_TRUE(result->report.valid);
  // The stream was committed: the rename landed.
  EXPECT_EQ(doc.label(entry), "note");

  ValidationService::Counters c = service_.counters();
  EXPECT_EQ(c.edit_streams, 1u);
  EXPECT_EQ(c.streams_short_circuited, 1u);
  EXPECT_EQ(c.edit_ops_safe, 2u);
  EXPECT_EQ(c.edit_ops_fatal, 0u);
  EXPECT_EQ(c.valid, 1u);
}

TEST_F(EditStreamServiceTest, FatalStreamShortCircuitsAsInvalid) {
  xml::Document doc = Doc("<feed><entry>x</entry></feed>");
  std::vector<xml::EditOp> ops{
      {xml::EditOp::Kind::kInsertElementFirstChild, doc.root(), "meta"},
  };
  auto result = service_.SubmitEditStream(source_, target_, &doc, ops);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->short_circuited);
  EXPECT_EQ(result->stream.verdict, analysis::Safety::kFatal);
  EXPECT_FALSE(result->report.valid);
  EXPECT_FALSE(result->report.violation.empty());

  ValidationService::Counters c = service_.counters();
  EXPECT_EQ(c.streams_short_circuited, 1u);
  EXPECT_EQ(c.edit_ops_fatal, 1u);
  EXPECT_EQ(c.invalid, 1u);
}

TEST_F(EditStreamServiceTest, UndecidedStreamFallsBackToModValidator) {
  xml::Document doc = Doc("<feed><entry>x</entry></feed>");
  xml::NodeId entry = doc.first_child(doc.root());
  xml::NodeId text = doc.first_child(entry);
  // Text inserted next to existing simple content: statically undecided,
  // but perfectly valid PCDATA — the fallback must say so.
  std::vector<xml::EditOp> ops{
      {xml::EditOp::Kind::kInsertTextBefore, text, "pre-"},
  };
  auto result = service_.SubmitEditStream(source_, target_, &doc, ops);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->short_circuited);
  EXPECT_EQ(result->stream.verdict, analysis::Safety::kUnknown);
  EXPECT_TRUE(result->report.valid) << result->report.violation;
  // The fallback actually visited the tree.
  EXPECT_GT(result->report.counters.nodes_visited, 0u);

  ValidationService::Counters c = service_.counters();
  EXPECT_EQ(c.edit_streams, 1u);
  EXPECT_EQ(c.streams_short_circuited, 0u);
  EXPECT_EQ(c.edit_ops_unknown, 1u);
}

TEST_F(EditStreamServiceTest, AnalyzersAreCompiledOncePerPair) {
  for (int i = 0; i < 3; ++i) {
    xml::Document doc = Doc("<feed><entry>x</entry></feed>");
    xml::NodeId entry = doc.first_child(doc.root());
    std::vector<xml::EditOp> ops{{xml::EditOp::Kind::kRename, entry, "note"}};
    ASSERT_TRUE(service_.SubmitEditStream(source_, target_, &doc, ops).ok());
  }
  EXPECT_EQ(service_.cache().stats().analyzer_compilations, 1u);
  ValidationService::Counters c = service_.counters();
  EXPECT_EQ(c.edit_streams, 3u);
  EXPECT_EQ(c.streams_short_circuited, 3u);
}

TEST_F(ValidationServiceTest, CounterSnapshotsAreInternallyConsistent) {
  auto valid_doc = xml::ParseXml(kFullNote);
  auto invalid_doc = xml::ParseXml(kBodylessNote);
  ASSERT_TRUE(valid_doc.ok());
  ASSERT_TRUE(invalid_doc.ok());
  // Warm the relations cache so worker threads race through Record.
  ASSERT_TRUE(service_.Cast(v1_, v2_, *valid_doc).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        const xml::Document& doc = (i % 2 == 0) ? *valid_doc : *invalid_doc;
        auto report = service_.Cast(v1_, v2_, doc);
        ASSERT_TRUE(report.ok());
        if (i % 7 == 0) {
          service_.Validate(t % 2 == 0 ? v1_ : v2_, doc);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int probe = 0; probe < 2000; ++probe) {
    ValidationService::Counters c = service_.counters();
    ASSERT_EQ(c.requests, c.valid + c.invalid + c.errors)
        << "torn snapshot at probe " << probe;
  }
  for (std::thread& thread : workers) thread.join();

  ValidationService::Counters final_counters = service_.counters();
  EXPECT_EQ(final_counters.requests,
            final_counters.valid + final_counters.invalid +
                final_counters.errors);
  EXPECT_EQ(final_counters.casts, 1u + kThreads * kPerThread);
  EXPECT_EQ(final_counters.errors, 0u);
}

}  // namespace
}  // namespace xmlreval::service
