// Shared helpers for the xmlreval test suite.

#ifndef XMLREVAL_TESTS_TEST_UTIL_H_
#define XMLREVAL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "automata/dfa.h"
#include "automata/regex_parser.h"
#include "common/result.h"

// Asserts that a Status-returning expression is OK.
#define ASSERT_OK(expr)                                        \
  do {                                                         \
    ::xmlreval::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    ::xmlreval::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

// Unwraps a Result or fails the test.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                       \
  ASSERT_OK_AND_ASSIGN_IMPL(                                   \
      XMLREVAL_CONCAT_TEST(_res_, __LINE__), lhs, rexpr)

#define XMLREVAL_CONCAT_TEST_IMPL(a, b) a##b
#define XMLREVAL_CONCAT_TEST(a, b) XMLREVAL_CONCAT_TEST_IMPL(a, b)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)             \
  auto tmp = (rexpr);                                          \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();            \
  lhs = std::move(tmp).value()

namespace xmlreval::testutil {

/// Compiles a textual regex into a minimized complete DFA over `alphabet`.
inline automata::Dfa CompileOrDie(const std::string& regex,
                                  automata::Alphabet* alphabet) {
  auto parsed = automata::ParseRegex(regex, alphabet);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto dfa = automata::CompileRegex(*parsed, alphabet->size());
  EXPECT_TRUE(dfa.ok()) << dfa.status().ToString();
  return std::move(dfa).value();
}

/// Interns each single-character token of `word` ("abc" → [a, b, c]).
inline std::vector<automata::Symbol> Word(const std::string& word,
                                          automata::Alphabet* alphabet) {
  std::vector<automata::Symbol> out;
  for (char c : word) {
    out.push_back(alphabet->Intern(std::string(1, c)));
  }
  return out;
}

/// Enumerates all words over symbols [0, k) up to length `max_len`,
/// calling fn(word). Fn: void(const std::vector<automata::Symbol>&).
template <typename Fn>
void ForAllWords(size_t k, size_t max_len, Fn&& fn) {
  std::vector<automata::Symbol> word;
  // Iterative odometer over word lengths 0..max_len.
  for (size_t len = 0; len <= max_len; ++len) {
    word.assign(len, 0);
    fn(word);
    if (len == 0) continue;
    while (true) {
      size_t i = len;
      while (i > 0 && word[i - 1] + 1 == k) {
        word[i - 1] = 0;
        --i;
      }
      if (i == 0) break;
      ++word[i - 1];
      fn(word);
    }
  }
}

}  // namespace xmlreval::testutil

#endif  // XMLREVAL_TESTS_TEST_UTIL_H_
