#include "xml/skip_scanner.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "tests/test_util.h"

namespace xmlreval::xml {
namespace {

// Runs the scanner over `body` in chunks of `chunk` bytes; returns the
// result and the total bytes consumed.
struct ScanOutcome {
  SkipScanner::Result result = SkipScanner::Result::kNeedMore;
  size_t consumed = 0;
  std::string error;
};

ScanOutcome ScanChunked(std::string_view body, size_t chunk) {
  SkipScanner scanner;
  scanner.Begin();
  ScanOutcome out;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t n = std::min(chunk, body.size() - pos);
    size_t consumed = 0;
    out.result = scanner.Scan(body.substr(pos, n), &consumed);
    out.consumed += consumed;
    pos += n;
    if (out.result != SkipScanner::Result::kNeedMore) break;
  }
  out.error = scanner.error();
  return out;
}

// `body` is everything after the skipped element's start tag '>'. The
// subtree ends at the matching end tag; TAIL bytes after it must be left
// unconsumed.
void ExpectDoneAt(std::string_view body, size_t end_offset) {
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                       body.size()}) {
    ScanOutcome out = ScanChunked(body, chunk);
    EXPECT_EQ(out.result, SkipScanner::Result::kDone)
        << "chunk=" << chunk << " error=" << out.error;
    EXPECT_EQ(out.consumed, end_offset) << "chunk=" << chunk;
  }
}

TEST(SkipScannerTest, FlatSubtree) {
  std::string_view body = "text</a>tail";
  ExpectDoneAt(body, body.size() - 4);
}

TEST(SkipScannerTest, NestedSameName) {
  // Depth counting, not name matching, finds the right end tag.
  std::string_view body = "<a><a>x</a></a>junk</a><more/>";
  ExpectDoneAt(body, 23);
}

TEST(SkipScannerTest, SelfClosingDoesNotChangeDepth) {
  std::string_view body = "<b/><c x='1'/></a>t";
  ExpectDoneAt(body, body.size() - 1);
}

TEST(SkipScannerTest, MarkupHidingAngleBrackets) {
  std::string body =
      "<!-- </a> not an end tag -->"
      "<![CDATA[ </a> still data ]]>"
      "<?pi </a> ?>"
      "<b attr=\"/a> x\">x</b>"
      "</a>rest";
  ExpectDoneAt(body, body.size() - 4);
}

TEST(SkipScannerTest, CDataBracketRuns) {
  std::string body = "<![CDATA[ ]]] ]]]>]</a>";
  ExpectDoneAt(body, body.size());
}

TEST(SkipScannerTest, QuoteWithGt) {
  std::string body = "<b a='x>y' b=\"1<\"></b></a>";
  // '<' inside an attribute value is malformed.
  for (size_t chunk : {size_t{1}, body.size()}) {
    ScanOutcome out = ScanChunked(body, chunk);
    EXPECT_EQ(out.result, SkipScanner::Result::kError);
    EXPECT_EQ(out.error, "'<' not allowed in attribute value");
  }
}

TEST(SkipScannerTest, DoubleDashInComment) {
  ScanOutcome out = ScanChunked("<!-- a -- b --></a>", 1);
  EXPECT_EQ(out.result, SkipScanner::Result::kError);
  EXPECT_EQ(out.error, "'--' not allowed inside comment");
}

TEST(SkipScannerTest, TruncationReportsNeedMore) {
  std::string body = "<b><!-- c --><![CDATA[x]]></b></a>";
  for (size_t cut = 0; cut < body.size(); ++cut) {
    ScanOutcome out = ScanChunked(std::string_view(body).substr(0, cut), 3);
    EXPECT_EQ(out.result, SkipScanner::Result::kNeedMore) << "cut=" << cut;
  }
  ExpectDoneAt(body, body.size());
}

TEST(SkipScannerTest, GarbageAfterLt) {
  ScanOutcome out = ScanChunked("a <3 b</a>", 2);
  EXPECT_EQ(out.result, SkipScanner::Result::kError);
  EXPECT_EQ(out.error, "expected XML name");
}

TEST(SkipScannerTest, FindByteSimd) {
  std::string hay(1000, 'x');
  EXPECT_EQ(FindByteSimd(hay.data(), hay.size(), '<'), nullptr);
  for (size_t pos : {size_t{0}, size_t{7}, size_t{15}, size_t{16},
                     size_t{17}, size_t{999}}) {
    std::string s = hay;
    s[pos] = '<';
    EXPECT_EQ(FindByteSimd(s.data(), s.size(), '<'), s.data() + pos)
        << "pos=" << pos;
  }
}

}  // namespace
}  // namespace xmlreval::xml
