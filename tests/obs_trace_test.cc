// obs/trace: RAII span lifecycle, ring-buffer bounds, and the Chrome
// trace-event JSON export (golden schema check: every event carries the
// fields Perfetto requires, timestamps are monotone, and spans nest in a
// balanced way per thread).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"

// Some tests assert that instrumentation actually records samples; with
// the compile-time escape hatch active there is nothing to observe.
#ifdef XMLREVAL_OBS_DISABLED
#define SKIP_IF_OBS_COMPILED_OUT() \
  GTEST_SKIP() << "instrumentation compiled out (XMLREVAL_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_COMPILED_OUT() (void)0
#endif


namespace xmlreval::obs {
namespace {

// Every test owns the global sink + switch; restore a clean slate.
class TraceGuard {
 public:
  TraceGuard() {
    TraceSink::Global().Clear();
    SetTraceEnabled(true);
  }
  ~TraceGuard() {
    SetTraceEnabled(false);
    TraceSink::Global().Clear();
    TraceSink::Global().SetCapacity(65536);
  }
};

TEST(TraceSpanTest, DisabledTracingRecordsNothing) {
  TraceSink::Global().Clear();
  SetTraceEnabled(false);
  {
    Span span("ignored");
    span.Arg("x", 1);
    EXPECT_FALSE(span.enabled());
  }
  EXPECT_EQ(TraceSink::Global().size(), 0u);
}

TEST(TraceSpanTest, NestedSpansRecordDepthAndArgs) {
  SKIP_IF_OBS_COMPILED_OUT();
  TraceGuard guard;
  {
    Span outer("outer");
    {
      Span inner("inner");
      inner.Arg("nodes", 42);
      inner.Arg("steps", 7);
    }
  }
  std::vector<TraceSink::Event> events = TraceSink::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Inner finishes (and records) first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  ASSERT_EQ(events[0].num_args, 2u);
  EXPECT_STREQ(events[0].arg_keys[0], "nodes");
  EXPECT_EQ(events[0].arg_values[0], 42u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  // The child's interval nests inside the parent's.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST(TraceSinkTest, RingOverwritesOldestAndCountsDropped) {
  SKIP_IF_OBS_COMPILED_OUT();
  TraceGuard guard;
  TraceSink::Global().SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    Span span("s");
  }
  EXPECT_EQ(TraceSink::Global().size(), 4u);
  EXPECT_EQ(TraceSink::Global().dropped(), 6u);
  TraceSink::Global().Clear();
  EXPECT_EQ(TraceSink::Global().size(), 0u);
  EXPECT_EQ(TraceSink::Global().dropped(), 0u);
}

TEST(TraceExportTest, ChromeJsonSchemaTimestampsAndBalance) {
  SKIP_IF_OBS_COMPILED_OUT();
  TraceGuard guard;
  // A realistic shape: two threads, nested phases, one annotated span.
  auto work = [] {
    for (int i = 0; i < 3; ++i) {
      Span item("batch.item");
      {
        Span parse("item.parse");
      }
      {
        Span traverse("cast.traverse");
        traverse.Arg("nodes_visited", 17);
      }
    }
  };
  std::thread t1(work);
  std::thread t2(work);
  t1.join();
  t2.join();

  std::string exported = TraceSink::Global().ExportChromeJson();
  auto parsed = json::Parse(exported);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->AsArray().size(), 18u);  // 2 threads x 3 items x 3 spans

  // Golden schema: the exact field set Perfetto's JSON importer needs.
  uint64_t prev_ts = 0;
  for (const json::Value& e : events->AsArray()) {
    for (const char* field : {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                              "args"}) {
      ASSERT_NE(e.Find(field), nullptr) << field;
    }
    EXPECT_EQ(e.Find("ph")->AsString(), "X");
    EXPECT_EQ(e.Find("cat")->AsString(), "xmlreval");
    EXPECT_EQ(e.Find("pid")->AsNumber(), 1.0);
    ASSERT_NE(e.Find("args")->Find("depth"), nullptr);
    // Monotone timestamps across the whole export.
    uint64_t ts = static_cast<uint64_t>(e.Find("ts")->AsNumber());
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
  }

  // Balanced nesting per thread: replay each thread's events against an
  // interval stack; a child must close before its parent.
  std::map<double, std::vector<const json::Value*>> by_tid;
  for (const json::Value& e : events->AsArray()) {
    by_tid[e.Find("tid")->AsNumber()].push_back(&e);
  }
  EXPECT_EQ(by_tid.size(), 2u);
  for (auto& [tid, tid_events] : by_tid) {
    std::vector<std::pair<uint64_t, uint64_t>> stack;  // [start, end]
    for (const json::Value* e : tid_events) {
      uint64_t ts = static_cast<uint64_t>(e->Find("ts")->AsNumber());
      uint64_t end = ts + static_cast<uint64_t>(e->Find("dur")->AsNumber());
      while (!stack.empty() && ts >= stack.back().second) stack.pop_back();
      if (!stack.empty()) {
        // Nested: must be fully contained in the enclosing span.
        EXPECT_GE(ts, stack.back().first);
        EXPECT_LE(end, stack.back().second);
      }
      stack.emplace_back(ts, end);
    }
    // One annotated span per item carries the counter arg.
    int annotated = 0;
    for (const json::Value* e : tid_events) {
      const json::Value* nodes = e->Find("args")->Find("nodes_visited");
      if (nodes != nullptr) {
        ++annotated;
        EXPECT_EQ(nodes->AsNumber(), 17.0);
      }
    }
    EXPECT_EQ(annotated, 3);
  }
}

TEST(TraceExportTest, EmptySinkExportsValidJson) {
  TraceGuard guard;
  auto parsed = json::Parse(TraceSink::Global().ExportChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Find("traceEvents")->AsArray().empty());
}

}  // namespace
}  // namespace xmlreval::obs
