// UpdateAnalyzer safety tables, per-operation verdicts, the root-pair
// gate, and StreamSession's composition rules. The soundness PROPERTY
// (safe => valid, fatal => invalid on random streams) lives in
// analysis_property_test.cc; these tests pin down the individual rules.

#include "analysis/update_analyzer.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "analysis/stream_session.h"
#include "core/mod_validator.h"
#include "schema/dtd_parser.h"
#include "tests/test_util.h"
#include "xml/editor.h"
#include "xml/parser.h"

namespace xmlreval::analysis {
namespace {

using automata::Symbol;
using schema::TypeId;

// feed accepts any interleaving of entry/note (both content-neutral and
// mutually indistinguishable); meta is declared but can never appear under
// feed (doomed there) and requires a title child of its own.
constexpr const char* kStarDtd = R"(
<!ELEMENT feed ((entry|note)*)>
<!ELEMENT entry (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT meta (title)>
<!ELEMENT title (#PCDATA)>
)";

struct Fixture {
  std::shared_ptr<automata::Alphabet> alphabet =
      std::make_shared<automata::Alphabet>();
  std::unique_ptr<schema::Schema> source;
  std::unique_ptr<schema::Schema> target;
  std::shared_ptr<const core::TypeRelations> relations;
  std::optional<UpdateAnalyzer> analyzer;

  void LoadDtd(const char* source_dtd, const char* target_dtd) {
    auto s = schema::ParseDtd(source_dtd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<schema::Schema>(std::move(s).value());
    auto t = schema::ParseDtd(target_dtd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<schema::Schema>(std::move(t).value());
    auto r = core::TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations =
        std::make_shared<const core::TypeRelations>(std::move(r).value());
    auto a = UpdateAnalyzer::Compile(relations);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    analyzer.emplace(std::move(a).value());
  }

  Symbol Sym(const char* label) const { return *alphabet->Find(label); }
};

xml::Document BoundDoc(const Fixture& f, const char* text) {
  auto doc = xml::ParseXml(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->Bind(f.alphabet).ok());
  return std::move(doc).value();
}

// ------------------------------------------------------------- tables

TEST(UpdateAnalyzerTest, SafetyTablesOnStarSchema) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  TypeId feed_t = f.target->RootType(f.Sym("feed"));
  ASSERT_NE(feed_t, schema::kInvalidType);

  // entry and note self-loop on every state of ((entry|note)*).
  EXPECT_TRUE(f.analyzer->InsertNeutral(feed_t, f.Sym("entry")));
  EXPECT_TRUE(f.analyzer->InsertNeutral(feed_t, f.Sym("note")));
  EXPECT_FALSE(f.analyzer->InsertNeutral(feed_t, f.Sym("meta")));

  // meta never appears in any accepted child string of feed.
  EXPECT_TRUE(f.analyzer->SymbolDoomed(feed_t, f.Sym("meta")));
  EXPECT_FALSE(f.analyzer->SymbolDoomed(feed_t, f.Sym("entry")));

  // A freshly inserted empty <entry/> satisfies its PCDATA type; meta is
  // not even typed under feed.
  EXPECT_TRUE(f.analyzer->EmptyLeafOk(feed_t, f.Sym("entry")));
  EXPECT_FALSE(f.analyzer->EmptyLeafOk(feed_t, f.Sym("meta")));

  // entry and note play identical roles in feed's content model.
  EXPECT_TRUE(
      f.analyzer->RenameIndistinguishable(feed_t, f.Sym("entry"), f.Sym("note")));
  EXPECT_FALSE(
      f.analyzer->RenameIndistinguishable(feed_t, f.Sym("entry"), f.Sym("meta")));
}

// ------------------------------------------------------------- renames

TEST(UpdateAnalyzerTest, RenameVerdicts) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc = BoundDoc(f, "<feed><entry>x</entry><note>y</note></feed>");
  xml::NodeId entry = doc.first_child(doc.root());

  // entry -> note: indistinguishable in feed, and the subtree types are
  // R_sub-related (both PCDATA). Safe, but only while the subtree is
  // untouched by the rest of the stream.
  OpVerdict v = f.analyzer->AnalyzeRename(doc, entry, "note");
  EXPECT_EQ(v.safety, Safety::kSafe) << v.reason;
  EXPECT_TRUE(v.exclusive_subtree);

  // Renaming to the label already in place stays within one target type —
  // no subtree exclusivity needed.
  v = f.analyzer->AnalyzeRename(doc, entry, "entry");
  EXPECT_EQ(v.safety, Safety::kSafe) << v.reason;
  EXPECT_FALSE(v.exclusive_subtree);

  // entry -> meta: meta is doomed under feed.
  v = f.analyzer->AnalyzeRename(doc, entry, "meta");
  EXPECT_EQ(v.safety, Safety::kFatal) << v.reason;

  // Out-of-alphabet label: never safe, never fatal.
  v = f.analyzer->AnalyzeRename(doc, entry, "wild");
  EXPECT_EQ(v.safety, Safety::kUnknown) << v.reason;
}

// ------------------------------------------------------------- inserts

TEST(UpdateAnalyzerTest, InsertVerdicts) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc = BoundDoc(f, "<feed><entry>x</entry></feed>");
  xml::NodeId entry = doc.first_child(doc.root());

  // Neutral symbol with an empty-admitting type: safe anywhere under feed.
  OpVerdict v = f.analyzer->AnalyzeInsertElement(doc, doc.root(), "note");
  EXPECT_EQ(v.safety, Safety::kSafe) << v.reason;

  // Doomed symbol: fatal no matter the position.
  v = f.analyzer->AnalyzeInsertElement(doc, doc.root(), "meta");
  EXPECT_EQ(v.safety, Safety::kFatal) << v.reason;

  // Element under simple (PCDATA) content: fatal.
  v = f.analyzer->AnalyzeInsertElement(doc, entry, "note");
  EXPECT_EQ(v.safety, Safety::kFatal) << v.reason;

  // Out-of-alphabet label: unknown.
  v = f.analyzer->AnalyzeInsertElement(doc, doc.root(), "wild");
  EXPECT_EQ(v.safety, Safety::kUnknown) << v.reason;

  // The EditOp dispatch resolves insert-before references to the parent's
  // typing context: inserting <note/> before <entry> is the same verdict
  // as inserting under feed.
  xml::EditOp op{xml::EditOp::Kind::kInsertElementBefore, entry, "note"};
  EXPECT_EQ(f.analyzer->Analyze(doc, op).safety, Safety::kSafe);
}

// ---------------------------------------------------------- text / delete

TEST(UpdateAnalyzerTest, TextAndDeleteVerdicts) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc =
      BoundDoc(f, "<feed><entry>x</entry><note/><entry/></feed>");
  xml::NodeId first_entry = doc.first_child(doc.root());
  xml::NodeId text = doc.first_child(first_entry);
  xml::NodeId empty_note = doc.next_sibling(first_entry);

  // Rewriting PCDATA text: the resulting simple value is statically known
  // and valid; the verdict is scoped to the parent's value.
  OpVerdict v = f.analyzer->AnalyzeTextEdit(doc, text, "hello");
  EXPECT_EQ(v.safety, Safety::kSafe) << v.reason;
  EXPECT_TRUE(v.value_scoped);

  // Whitespace between elements is ignored by complex content; anything
  // else under feed is fatal.
  EXPECT_EQ(f.analyzer->AnalyzeInsertText(doc, doc.root(), "  \n ").safety,
            Safety::kSafe);
  EXPECT_EQ(f.analyzer->AnalyzeInsertText(doc, doc.root(), "oops").safety,
            Safety::kFatal);

  // Deleting a content-neutral child never changes feed's run.
  EXPECT_EQ(f.analyzer->AnalyzeDeleteLeaf(doc, empty_note).safety,
            Safety::kSafe);

  // Deleting entry's text leaves "", which PCDATA accepts.
  v = f.analyzer->AnalyzeDeleteLeaf(doc, text);
  EXPECT_EQ(v.safety, Safety::kSafe) << v.reason;
  EXPECT_TRUE(v.value_scoped);

  // Deleting a required child (title under meta) is not neutral — the
  // analyzer refuses to decide rather than guess.
  xml::Document meta_doc = BoundDoc(f, "<meta><title/></meta>");
  EXPECT_EQ(
      f.analyzer->AnalyzeDeleteLeaf(meta_doc, meta_doc.first_child(meta_doc.root()))
          .safety,
      Safety::kUnknown);
}

// ------------------------------------------------------------- the gate

TEST(UpdateAnalyzerTest, RootGateDegradesSafeButNotFatal) {
  // Source roots accept (a|b)*, target only b*: the root pair is NOT
  // subsumed, so the unedited document may already be target-invalid and
  // no edit can be pronounced safe. Fatal verdicts stand regardless.
  Fixture f;
  f.LoadDtd(
      "<!ELEMENT r ((a|b)*)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>",
      "<!ELEMENT r (b*)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>");
  xml::Document doc = BoundDoc(f, "<r><b>x</b></r>");
  EXPECT_FALSE(f.analyzer->RootSubsumed(doc));

  // b is neutral and empty-admitting in the target — would be safe, but
  // the gate degrades it.
  OpVerdict v = f.analyzer->AnalyzeInsertElement(doc, doc.root(), "b");
  EXPECT_EQ(v.safety, Safety::kUnknown);
  EXPECT_STREQ(v.reason, "document root pair not subsumed");

  // a is doomed under the target root: fatal passes the gate untouched.
  EXPECT_EQ(f.analyzer->AnalyzeInsertElement(doc, doc.root(), "a").safety,
            Safety::kFatal);
}

TEST(UpdateAnalyzerTest, RootSubsumedHoldsForIdenticalPair) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc = BoundDoc(f, "<feed><entry>x</entry></feed>");
  EXPECT_TRUE(f.analyzer->RootSubsumed(doc));
}

// ------------------------------------------------- unbound symbols (Σ gaps)

TEST(UpdateAnalyzerTest, UnboundSymbolElementsAlwaysClassifyUnknown) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc =
      BoundDoc(f, "<feed><entry>x</entry><note>y</note></feed>");
  xml::NodeId wild = doc.first_child(doc.root());
  xml::NodeId note = doc.next_sibling(wild);

  // Rename the first entry to a label outside the shared Σ; the editor
  // keeps the tree coherent with symbol == kUnboundSymbol.
  {
    xml::DocumentEditor editor(&doc);
    ASSERT_OK(editor.RenameElement(wild, "zzz_wild"));
    editor.Seal();
    ASSERT_OK(editor.Commit());
  }
  ASSERT_EQ(doc.symbol(wild), automata::kUnboundSymbol);

  // Every operation touching the unbound node is kUnknown — never a
  // confident safe or fatal.
  OpVerdict v = f.analyzer->AnalyzeRename(doc, wild, "entry");
  EXPECT_EQ(v.safety, Safety::kUnknown) << v.reason;
  v = f.analyzer->AnalyzeInsertElement(doc, wild, "note");
  EXPECT_EQ(v.safety, Safety::kUnknown) << v.reason;
  v = f.analyzer->AnalyzeDeleteLeaf(doc, wild);
  EXPECT_EQ(v.safety, Safety::kUnknown) << v.reason;

  // Operations elsewhere keep their precise verdicts: the unknown is
  // local to the unbound subtree.
  EXPECT_EQ(f.analyzer->AnalyzeRename(doc, note, "entry").safety,
            Safety::kSafe);
}

TEST(UpdateAnalyzerTest, UnboundDocumentFallsBackToFindOnlyLookup) {
  // The analyzer resolves labels through its own alphabet when the
  // document carries no binding — verdicts match the bound case.
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  auto doc = xml::ParseXml("<feed><entry>x</entry></feed>");
  ASSERT_TRUE(doc.ok());
  ASSERT_FALSE(doc->IsBound());
  EXPECT_EQ(f.analyzer->AnalyzeInsertElement(*doc, doc->root(), "note").safety,
            Safety::kSafe);
  EXPECT_EQ(f.analyzer->AnalyzeInsertElement(*doc, doc->root(), "meta").safety,
            Safety::kFatal);
}

// ------------------------------------------------------- stream sessions

TEST(StreamSessionTest, IndependentSafeOpsComposeToSafe) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc =
      BoundDoc(f, "<feed><entry>a</entry><note/><entry/></feed>");
  xml::NodeId c1 = doc.first_child(doc.root());
  xml::NodeId c2 = doc.next_sibling(c1);
  xml::NodeId c3 = doc.next_sibling(c2);

  StreamSession session(&*f.analyzer, &doc);
  ASSERT_OK(session.RenameElement(c3, "note"));
  ASSERT_OK(session.InsertElementFirstChild(doc.root(), "entry").status());
  ASSERT_OK(session.DeleteLeaf(c2));

  StreamVerdict sv = session.Classify();
  EXPECT_EQ(sv.verdict, Safety::kSafe) << sv.reason;
  EXPECT_EQ(sv.safe_ops, 3u);
  EXPECT_EQ(sv.unknown_ops, 0u);

  session.Seal();
  ASSERT_OK(session.Commit());
}

TEST(StreamSessionTest, SameNodeOperationsEntangle) {
  // An insert followed by any operation on the inserted node: the second
  // op edits a node whose verdict context the first created, so both
  // downgrade and the stream falls back.
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc = BoundDoc(f, "<feed><entry>a</entry></feed>");

  StreamSession session(&*f.analyzer, &doc);
  ASSERT_OK_AND_ASSIGN(xml::NodeId fresh,
                       session.InsertElementFirstChild(doc.root(), "entry"));
  ASSERT_OK(session.RenameElement(fresh, "note"));

  StreamVerdict sv = session.Classify();
  EXPECT_EQ(sv.verdict, Safety::kUnknown);
  EXPECT_EQ(sv.downgraded_ops, 2u);
  EXPECT_EQ(sv.unknown_ops, 2u);
}

TEST(StreamSessionTest, RenameEntanglesItsSubtree) {
  // The rename's verdict keys on the subtree it re-types; a later text
  // edit inside that subtree invalidates the argument for both ops.
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc = BoundDoc(f, "<feed><entry>a</entry></feed>");
  xml::NodeId entry = doc.first_child(doc.root());
  xml::NodeId text = doc.first_child(entry);

  StreamSession session(&*f.analyzer, &doc);
  ASSERT_OK(session.RenameElement(entry, "note"));
  ASSERT_OK(session.UpdateText(text, "b"));

  StreamVerdict sv = session.Classify();
  EXPECT_EQ(sv.verdict, Safety::kUnknown);
  EXPECT_EQ(sv.downgraded_ops, 2u);
}

TEST(StreamSessionTest, SurvivingFatalIsDecisive) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc = BoundDoc(f, "<feed><entry>a</entry><note/></feed>");
  xml::NodeId entry = doc.first_child(doc.root());
  xml::NodeId note = doc.next_sibling(entry);

  StreamSession session(&*f.analyzer, &doc);
  // Fatal: meta can never appear under feed.
  ASSERT_OK(session.InsertElementFirstChild(doc.root(), "meta").status());
  // Unrelated unknown elsewhere must not wash the fatal out.
  ASSERT_OK(session.RenameElement(note, "wild"));

  StreamVerdict sv = session.Classify();
  EXPECT_EQ(sv.verdict, Safety::kFatal) << sv.reason;
  EXPECT_EQ(sv.fatal_ops, 1u);
  EXPECT_EQ(sv.unknown_ops, 1u);
  EXPECT_EQ(sv.first_fatal_op, 0);
}

TEST(StreamSessionTest, FatalRepairedOnSameNodeFallsBackAndValidates) {
  // Insert a doomed <meta/> then delete it: same-node entanglement
  // downgrades both ops, and the ModValidator fallback confirms the net
  // no-op left the document valid.
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc = BoundDoc(f, "<feed><entry>a</entry></feed>");

  StreamSession session(&*f.analyzer, &doc);
  ASSERT_OK_AND_ASSIGN(xml::NodeId meta,
                       session.InsertElementFirstChild(doc.root(), "meta"));
  ASSERT_OK(session.DeleteLeaf(meta));

  StreamVerdict sv = session.Classify();
  EXPECT_EQ(sv.verdict, Safety::kUnknown);
  // The delete of a non-neutral symbol was kUnknown on its own; only the
  // fatal insert is DOWNGRADED by the same-node rule.
  EXPECT_EQ(sv.downgraded_ops, 1u);
  EXPECT_EQ(sv.unknown_ops, 2u);

  xml::ModificationIndex mods = session.Seal();
  core::ModValidator validator(f.relations.get());
  core::ValidationReport report = validator.Validate(doc, mods);
  EXPECT_TRUE(report.valid) << report.violation;
  ASSERT_OK(session.Commit());
}

TEST(StreamSessionTest, EmptyStreamVerdictFollowsTheRootGate) {
  Fixture f;
  f.LoadDtd(kStarDtd, kStarDtd);
  xml::Document doc = BoundDoc(f, "<feed><entry>a</entry></feed>");
  StreamSession session(&*f.analyzer, &doc);
  EXPECT_EQ(session.Classify().verdict, Safety::kSafe);

  Fixture g;
  g.LoadDtd(
      "<!ELEMENT r ((a|b)*)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>",
      "<!ELEMENT r (b*)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>");
  xml::Document gated = BoundDoc(g, "<r><b>x</b></r>");
  StreamSession gated_session(&*g.analyzer, &gated);
  EXPECT_EQ(gated_session.Classify().verdict, Safety::kUnknown);
}

}  // namespace
}  // namespace xmlreval::analysis
