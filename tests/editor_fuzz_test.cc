// Randomized splice hammer for the SoA Document storage.
//
// Thousands of random edits — insert element/text (before / after / first
// child), leaf deletion, rename, text rewrite — applied in lockstep to an
// xml::Document and to a naive pointer-based reference tree. After every
// batch the two are compared structurally, the SoA link columns (parent /
// first_child / last_child / next_sibling / prev_sibling) are checked for
// mutual consistency, and the document is serializer round-tripped
// (serialize → parse → serialize must be a fixed point). Any divergence —
// a mis-spliced sibling chain, a stale payload view after arena growth, a
// tombstone resurfacing — fails with the seed and op index.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tree.h"

namespace xmlreval::xml {
namespace {

struct RefNode {
  bool is_text = false;
  std::string payload;  // label for elements, content for text nodes
  RefNode* parent = nullptr;
  std::vector<RefNode*> children;
};

// The mirrored pair: every mutation goes through both sides.
struct Mirror {
  Document doc;
  std::deque<RefNode> storage;  // stable addresses; tombstoned, never freed
  std::unordered_map<NodeId, RefNode*> ref_of;
  std::vector<NodeId> attached;  // sampling pool, swap-erased on delete
  size_t created = 1;            // the root; bumped by every NewRef

  RefNode* NewRef(NodeId id, bool is_text, std::string payload,
                  RefNode* parent) {
    storage.push_back(RefNode{is_text, std::move(payload), parent, {}});
    if (parent != nullptr) ++created;  // root is pre-counted
    RefNode* ref = &storage.back();
    ref_of[id] = ref;
    attached.push_back(id);
    return ref;
  }

  static size_t IndexIn(const std::vector<RefNode*>& children, RefNode* ref) {
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i] == ref) return i;
    }
    ADD_FAILURE() << "reference child not found under its parent";
    return children.size();
  }
};

std::string RandomLabel(std::mt19937_64& rng) {
  static const char* kLabels[] = {"item", "note", "meta", "part", "row",
                                  "name", "qty",  "sku",  "tag"};
  return kLabels[rng() % (sizeof(kLabels) / sizeof(kLabels[0]))];
}

std::string RandomText(std::mt19937_64& rng) {
  // Non-empty, no leading/trailing whitespace, no markup: survives a
  // parse round-trip byte-for-byte (whitespace-only runs and adjacent
  // text coalescing are the parser's business, not this test's).
  return "t" + std::to_string(rng() % 100000);
}

// Deep-compares the document subtree against the reference subtree AND
// checks the doubly-linked sibling columns agree with each other.
void ExpectMirrored(const Document& doc, NodeId node, const RefNode* ref,
                    const std::string& context) {
  ASSERT_TRUE(doc.IsAlive(node)) << context;
  ASSERT_EQ(doc.IsText(node), ref->is_text) << context;
  if (ref->is_text) {
    EXPECT_EQ(doc.text(node), ref->payload) << context;
    return;
  }
  EXPECT_EQ(doc.label(node), ref->payload) << context;

  // Forward chain must mirror ref->children in order, with back-links and
  // parent pointers consistent at every hop.
  size_t i = 0;
  NodeId prev = kInvalidNode;
  for (NodeId c = doc.first_child(node); c != kInvalidNode;
       c = doc.next_sibling(c), ++i) {
    ASSERT_LT(i, ref->children.size()) << context << ": extra child " << i;
    EXPECT_EQ(doc.parent(c), node) << context << ": child " << i;
    EXPECT_EQ(doc.prev_sibling(c), prev) << context << ": child " << i;
    ExpectMirrored(doc, c, ref->children[i],
                   context + "/" + std::to_string(i));
    prev = c;
  }
  EXPECT_EQ(i, ref->children.size()) << context << ": missing children";
  EXPECT_EQ(doc.last_child(node), prev) << context;
}

// serialize → parse → serialize is a fixed point (payloads are chosen so
// the parser cannot legally alter them beyond text coalescing, which
// serialization already flattened).
void ExpectSerializerRoundTrip(const Document& doc,
                               const std::string& context) {
  SerializeOptions options;
  options.pretty = false;
  options.xml_declaration = false;
  std::string first = Serialize(doc, options);
  auto reparsed = ParseXml(first);
  ASSERT_TRUE(reparsed.ok()) << context << ": " << reparsed.status().ToString();
  EXPECT_EQ(Serialize(*reparsed, options), first) << context;
}

TEST(EditorFuzzTest, RandomSplicesKeepDocumentAndReferenceInLockstep) {
  constexpr uint64_t kSeeds[] = {7, 104729, 982451653};
  constexpr size_t kOpsPerSeed = 4000;  // 3 seeds × 4000 = 12k splices
  constexpr size_t kCheckEvery = 1000;
  constexpr size_t kMaxNodes = 2500;

  for (uint64_t seed : kSeeds) {
    std::mt19937_64 rng(seed);
    Mirror m;
    NodeId root = m.doc.CreateElement("root");
    ASSERT_OK(m.doc.SetRoot(root));
    RefNode* ref_root = m.NewRef(root, false, "root", nullptr);

    for (size_t op = 0; op < kOpsPerSeed; ++op) {
      const std::string context =
          "seed=" + std::to_string(seed) + " op=" + std::to_string(op);
      NodeId target = m.attached[rng() % m.attached.size()];
      RefNode* ref = m.ref_of.at(target);

      // Bias toward deletion once the tree is large so the walk stays fast
      // and tombstone reuse paths get exercised under sustained churn.
      const bool crowded = m.attached.size() > kMaxNodes;
      switch (crowded ? 6 + rng() % 2 : rng() % 8) {
        case 0:    // insert element as first child (elements only)
        case 1: {  // insert text as first child
          if (ref->is_text) break;
          const bool text = (rng() & 1) != 0;
          std::string payload = text ? RandomText(rng) : RandomLabel(rng);
          NodeId fresh = text ? m.doc.CreateText(payload)
                              : m.doc.CreateElement(payload);
          ASSERT_OK(m.doc.InsertFirstChild(target, fresh));
          RefNode* fresh_ref = m.NewRef(fresh, text, payload, ref);
          ref->children.insert(ref->children.begin(), fresh_ref);
          break;
        }
        case 2:    // insert element before a non-root node
        case 3: {  // insert element after a non-root node
          if (target == root) break;
          const bool after = (rng() & 1) != 0;
          const bool text = (rng() & 1) != 0;
          std::string payload = text ? RandomText(rng) : RandomLabel(rng);
          NodeId fresh = text ? m.doc.CreateText(payload)
                              : m.doc.CreateElement(payload);
          ASSERT_OK(after ? m.doc.InsertAfter(target, fresh)
                          : m.doc.InsertBefore(target, fresh));
          RefNode* fresh_ref = m.NewRef(fresh, text, payload, ref->parent);
          std::vector<RefNode*>& siblings = ref->parent->children;
          size_t at = Mirror::IndexIn(siblings, ref) + (after ? 1 : 0);
          siblings.insert(siblings.begin() + at, fresh_ref);
          break;
        }
        case 4: {  // rename an element
          if (ref->is_text) break;
          std::string label = RandomLabel(rng);
          ASSERT_OK(m.doc.Rename(target, label));
          ref->payload = label;
          break;
        }
        case 5: {  // rewrite a text node (exercises in-place shrink too)
          if (!ref->is_text) break;
          std::string text = RandomText(rng);
          ASSERT_OK(m.doc.SetText(target, text));
          ref->payload = text;
          break;
        }
        default: {  // delete a leaf (cases 6, 7)
          if (target == root || !ref->children.empty()) break;
          ASSERT_OK(m.doc.RemoveLeaf(target));
          EXPECT_FALSE(m.doc.IsAlive(target)) << context;
          std::vector<RefNode*>& siblings = ref->parent->children;
          siblings.erase(siblings.begin() + Mirror::IndexIn(siblings, ref));
          m.ref_of.erase(target);
          for (size_t i = 0; i < m.attached.size(); ++i) {
            if (m.attached[i] == target) {
              m.attached[i] = m.attached.back();
              m.attached.pop_back();
              break;
            }
          }
          break;
        }
      }

      if ((op + 1) % kCheckEvery == 0) {
        ExpectMirrored(m.doc, root, ref_root, context);
        ExpectSerializerRoundTrip(m.doc, context);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }

    const std::string context = "seed=" + std::to_string(seed) + " final";
    ExpectMirrored(m.doc, root, ref_root, context);
    ExpectSerializerRoundTrip(m.doc, context);
    // Tombstones accumulate by design: the id space (NodeCount) counts
    // every node ever created; deletions never shrink or reuse it.
    EXPECT_EQ(m.doc.NodeCount(), m.created) << context;
    EXPECT_LE(m.attached.size(), m.created) << context;
  }
}

}  // namespace
}  // namespace xmlreval::xml
