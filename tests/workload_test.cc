#include <gtest/gtest.h>

#include "core/full_validator.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "workload/random_docs.h"
#include "workload/update_workload.h"
#include "xml/label_index.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval::workload {
namespace {

using schema::Alphabet;
using schema::Schema;

TEST(PoGeneratorTest, DeterministicUnderSeed) {
  PoGeneratorOptions options;
  options.item_count = 10;
  options.seed = 123;
  std::string a = xml::Serialize(GeneratePurchaseOrder(options));
  std::string b = xml::Serialize(GeneratePurchaseOrder(options));
  EXPECT_EQ(a, b);
  options.seed = 124;
  EXPECT_NE(a, xml::Serialize(GeneratePurchaseOrder(options)));
}

TEST(PoGeneratorTest, RespectsOptions) {
  PoGeneratorOptions options;
  options.item_count = 7;
  options.include_bill_to = false;
  options.ship_date_percent = 0;
  xml::Document doc = GeneratePurchaseOrder(options);
  xml::LabelIndex index = xml::LabelIndex::Build(doc);
  EXPECT_EQ(index.Instances("item").size(), 7u);
  EXPECT_TRUE(index.Instances("billTo").empty());
  EXPECT_TRUE(index.Instances("shipDate").empty());
  options.ship_date_percent = 100;
  options.include_bill_to = true;
  xml::Document doc2 = GeneratePurchaseOrder(options);
  xml::LabelIndex index2 = xml::LabelIndex::Build(doc2);
  EXPECT_EQ(index2.Instances("shipDate").size(), 7u);
  EXPECT_EQ(index2.Instances("billTo").size(), 1u);
}

TEST(PoGeneratorTest, QuantityRangeHonored) {
  PoGeneratorOptions options;
  options.item_count = 50;
  options.quantity_min = 150;
  options.quantity_max = 160;
  xml::Document doc = GeneratePurchaseOrder(options);
  xml::LabelIndex index = xml::LabelIndex::Build(doc);
  for (xml::NodeId q : index.Instances("quantity")) {
    int v = std::stoi(doc.SimpleContent(q));
    EXPECT_GE(v, 150);
    EXPECT_LE(v, 160);
  }
}

TEST(SampleDocumentTest, SamplesAreAlwaysValid) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = schema::ParseXsd(kTargetXsd, alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Schema schema = std::move(parsed).value();
  core::FullValidator validator(&schema);
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    RandomDocOptions options;
    options.seed = seed;
    options.max_elements = 60;
    options.root_label = "purchaseOrder";
    auto doc = SampleDocument(schema, options);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    core::ValidationReport report = validator.Validate(*doc);
    EXPECT_TRUE(report.valid) << "seed=" << seed << ": " << report.violation;
  }
}

TEST(SampleDocumentTest, RecursiveSchemaTerminates) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = schema::ParseDtd(
      "<!ELEMENT node (leaf | (node, node))>"
      "<!ELEMENT leaf (#PCDATA)>",
      alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Schema schema = std::move(parsed).value();
  core::FullValidator validator(&schema);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RandomDocOptions options;
    options.seed = seed;
    options.max_elements = 100;
    options.root_label = "node";
    auto doc = SampleDocument(schema, options);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(validator.Validate(*doc).valid) << "seed=" << seed;
  }
}

TEST(SampleDocumentTest, ErrorsOnUnknownRoot) {
  auto alphabet = std::make_shared<Alphabet>();
  auto parsed = schema::ParseDtd("<!ELEMENT a EMPTY>", alphabet);
  ASSERT_TRUE(parsed.ok());
  Schema schema = std::move(parsed).value();
  RandomDocOptions options;
  options.root_label = "zzz";
  EXPECT_FALSE(SampleDocument(schema, options).ok());
}

TEST(SampleSimpleValueTest, RespectsFacets) {
  schema::SimpleType quantity{schema::AtomicKind::kPositiveInteger, {}};
  quantity.facets.max_exclusive = 100ll * 1000000000;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::string v = SampleSimpleValue(quantity, seed);
    EXPECT_OK(schema::ValidateSimpleValue(quantity, v));
  }
  schema::SimpleType enumt{schema::AtomicKind::kString, {}};
  enumt.facets.enumeration = {"x", "y"};
  for (uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_OK(schema::ValidateSimpleValue(enumt,
                                          SampleSimpleValue(enumt, seed)));
  }
  schema::SimpleType date{schema::AtomicKind::kDate, {}};
  EXPECT_OK(schema::ValidateSimpleValue(date, SampleSimpleValue(date, 3)));
}

TEST(UpdateWorkloadTest, AppliesRequestedEditCount) {
  PoGeneratorOptions options;
  options.item_count = 20;
  xml::Document doc = GeneratePurchaseOrder(options);
  xml::DocumentEditor editor(&doc);
  UpdateWorkloadOptions update_options;
  update_options.edit_count = 8;
  update_options.seed = 99;
  auto applied = ApplyRandomUpdates(&doc, &editor, update_options);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->size(), 8u);
  xml::ModificationIndex mods = editor.Seal();
  EXPECT_GE(mods.update_count(), 8u);
}

TEST(UpdateWorkloadTest, DeterministicUnderSeed) {
  PoGeneratorOptions options;
  options.item_count = 10;
  auto run = [&](uint64_t seed) {
    xml::Document doc = GeneratePurchaseOrder(options);
    xml::DocumentEditor editor(&doc);
    UpdateWorkloadOptions update_options;
    update_options.edit_count = 5;
    update_options.seed = seed;
    auto applied = ApplyRandomUpdates(&doc, &editor, update_options);
    EXPECT_TRUE(applied.ok());
    editor.Seal();
    EXPECT_TRUE(editor.Commit().ok());
    return xml::Serialize(doc);
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(UpdateWorkloadTest, WeightsFilterKinds) {
  PoGeneratorOptions options;
  options.item_count = 10;
  xml::Document doc = GeneratePurchaseOrder(options);
  xml::DocumentEditor editor(&doc);
  UpdateWorkloadOptions update_options;
  update_options.edit_count = 10;
  update_options.rename_weight = 0;
  update_options.insert_weight = 0;
  update_options.delete_weight = 0;
  update_options.text_edit_weight = 1;
  auto applied = ApplyRandomUpdates(&doc, &editor, update_options);
  ASSERT_TRUE(applied.ok());
  for (const auto& update : *applied) {
    EXPECT_EQ(update.kind, AppliedUpdate::Kind::kTextEdit);
  }
}

TEST(UpdateWorkloadTest, PerKindPoolsOverrideTheSharedLabelPool) {
  PoGeneratorOptions options;
  options.item_count = 10;
  xml::Document doc = GeneratePurchaseOrder(options);
  xml::DocumentEditor editor(&doc);
  UpdateWorkloadOptions update_options;
  update_options.edit_count = 24;
  update_options.delete_weight = 0;
  update_options.text_edit_weight = 0;
  // safe_percent=100: only the safe pools may be drawn from.
  update_options.rename_safe_labels = {"renamed_safe"};
  update_options.rename_unsafe_labels = {"renamed_unsafe"};
  update_options.insert_safe_labels = {"inserted_safe"};
  update_options.insert_unsafe_labels = {"inserted_unsafe"};
  auto applied = ApplyRandomUpdates(&doc, &editor, update_options);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_FALSE(applied->empty());
  for (const auto& update : *applied) {
    if (update.kind == AppliedUpdate::Kind::kRename) {
      EXPECT_EQ(update.detail, "rename to 'renamed_safe'");
    } else {
      ASSERT_EQ(update.kind, AppliedUpdate::Kind::kInsert);
      EXPECT_EQ(update.detail, "insert 'inserted_safe'");
    }
  }
}

TEST(UpdateWorkloadTest, SafePercentZeroDrawsOnlyUnsafePools) {
  PoGeneratorOptions options;
  options.item_count = 10;
  xml::Document doc = GeneratePurchaseOrder(options);
  xml::DocumentEditor editor(&doc);
  UpdateWorkloadOptions update_options;
  update_options.edit_count = 16;
  update_options.delete_weight = 0;
  update_options.text_edit_weight = 0;
  update_options.safe_percent = 0;
  update_options.rename_safe_labels = {"safe"};
  update_options.rename_unsafe_labels = {"unsafe"};
  // Inserts have only a safe pool: the draw degrades to the non-empty one
  // instead of failing.
  update_options.insert_safe_labels = {"only_pool"};
  auto applied = ApplyRandomUpdates(&doc, &editor, update_options);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_FALSE(applied->empty());
  for (const auto& update : *applied) {
    if (update.kind == AppliedUpdate::Kind::kRename) {
      EXPECT_EQ(update.detail, "rename to 'unsafe'");
    } else {
      EXPECT_EQ(update.detail, "insert 'only_pool'");
    }
  }
}

TEST(UpdateWorkloadTest, TextPoolsControlTextEdits) {
  PoGeneratorOptions options;
  options.item_count = 6;
  xml::Document doc = GeneratePurchaseOrder(options);
  xml::DocumentEditor editor(&doc);
  UpdateWorkloadOptions update_options;
  update_options.edit_count = 8;
  update_options.rename_weight = 0;
  update_options.insert_weight = 0;
  update_options.delete_weight = 0;
  update_options.text_safe_values = {"42"};
  auto applied = ApplyRandomUpdates(&doc, &editor, update_options);
  ASSERT_TRUE(applied.ok());
  ASSERT_FALSE(applied->empty());
  for (const auto& update : *applied) {
    EXPECT_EQ(update.detail, "set text to '42'");
  }
}

TEST(UpdateWorkloadTest, RenameRootOffNeverRenamesTheRoot) {
  PoGeneratorOptions options;
  options.item_count = 4;
  xml::Document doc = GeneratePurchaseOrder(options);
  xml::NodeId root = doc.root();
  xml::DocumentEditor editor(&doc);
  UpdateWorkloadOptions update_options;
  update_options.edit_count = 40;
  update_options.insert_weight = 0;
  update_options.delete_weight = 0;
  update_options.text_edit_weight = 0;
  update_options.rename_root = false;
  auto applied = ApplyRandomUpdates(&doc, &editor, update_options);
  ASSERT_TRUE(applied.ok());
  ASSERT_FALSE(applied->empty());
  for (const auto& update : *applied) {
    EXPECT_NE(update.node, root);
  }
  EXPECT_EQ(doc.label(root), "purchaseOrder");
}

TEST(UpdateWorkloadTest, RecordedScriptReplaysToTheSameDocument) {
  // The bench and CLI rely on this: a script recorded against one parse
  // replays identically against a FRESH parse of the same text, because
  // arena node ids are deterministic.
  PoGeneratorOptions options;
  options.item_count = 8;
  xml::Document doc = GeneratePurchaseOrder(options);
  std::string text = xml::Serialize(doc);

  auto parse = [&]() {
    auto parsed = xml::ParseXml(text);
    EXPECT_TRUE(parsed.ok());
    return std::move(parsed).value();
  };

  xml::Document recorded = parse();
  std::vector<xml::EditOp> script;
  {
    xml::DocumentEditor editor(&recorded);
    UpdateWorkloadOptions update_options;
    update_options.edit_count = 12;
    update_options.seed = 77;
    auto applied =
        ApplyRandomUpdates(&recorded, &editor, update_options, &script);
    ASSERT_TRUE(applied.ok());
    ASSERT_EQ(script.size(), applied->size());
    editor.Seal();
    ASSERT_TRUE(editor.Commit().ok());
  }

  xml::Document replayed = parse();
  {
    xml::DocumentEditor editor(&replayed);
    for (const xml::EditOp& op : script) {
      ASSERT_TRUE(editor.Apply(op).ok());
    }
    editor.Seal();
    ASSERT_TRUE(editor.Commit().ok());
  }
  EXPECT_EQ(xml::Serialize(recorded), xml::Serialize(replayed));
}

}  // namespace
}  // namespace xmlreval::workload
