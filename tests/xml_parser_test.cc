#include "xml/parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/tree.h"

namespace xmlreval::xml {
namespace {

TEST(XmlParserTest, ParsesMinimalDocument) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<root/>"));
  ASSERT_TRUE(doc.has_root());
  EXPECT_EQ(doc.label(doc.root()), "root");
  EXPECT_FALSE(doc.HasChildren(doc.root()));
}

TEST(XmlParserTest, ParsesNestedElementsAndText) {
  ASSERT_OK_AND_ASSIGN(
      Document doc, ParseXml("<a><b>hi</b><c><d>x</d></c></a>"));
  NodeId a = doc.root();
  auto children = ElementChildren(doc, a);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(doc.label(children[0]), "b");
  EXPECT_EQ(doc.SimpleContent(children[0]), "hi");
  auto grand = ElementChildren(doc, children[1]);
  ASSERT_EQ(grand.size(), 1u);
  EXPECT_EQ(doc.SimpleContent(grand[0]), "x");
}

TEST(XmlParserTest, ParsesAttributes) {
  ASSERT_OK_AND_ASSIGN(
      Document doc,
      ParseXml("<e name=\"v1\" other='v2' empty=\"\"/>"));
  EXPECT_EQ(*doc.FindAttribute(doc.root(), "name"), "v1");
  EXPECT_EQ(*doc.FindAttribute(doc.root(), "other"), "v2");
  EXPECT_EQ(*doc.FindAttribute(doc.root(), "empty"), "");
}

TEST(XmlParserTest, RejectsDuplicateAttributes) {
  EXPECT_FALSE(ParseXml("<e a=\"1\" a=\"2\"/>").ok());
}

TEST(XmlParserTest, DecodesEntitiesAndCharRefs) {
  ASSERT_OK_AND_ASSIGN(
      Document doc,
      ParseXml("<e a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</e>"));
  EXPECT_EQ(*doc.FindAttribute(doc.root(), "a"), "<&>");
  EXPECT_EQ(doc.SimpleContent(doc.root()), "\"x' AB");
}

TEST(XmlParserTest, DecodesMultiByteCharRef) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<e>&#xE9;</e>"));
  EXPECT_EQ(doc.SimpleContent(doc.root()), "\xC3\xA9");  // é in UTF-8
}

TEST(XmlParserTest, RejectsUnknownEntities) {
  Result<Document> result = ParseXml("<e>&unknown;</e>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(XmlParserTest, HandlesCdata) {
  ASSERT_OK_AND_ASSIGN(Document doc,
                       ParseXml("<e><![CDATA[a<b&c]]></e>"));
  EXPECT_EQ(doc.SimpleContent(doc.root()), "a<b&c");
}

TEST(XmlParserTest, SkipsCommentsAndPis) {
  ASSERT_OK_AND_ASSIGN(
      Document doc,
      ParseXml("<?xml version=\"1.0\"?><!-- c --><?pi data?>"
               "<e><!-- inner -->text<?p?></e><!-- after -->"));
  EXPECT_EQ(doc.SimpleContent(doc.root()), "text");
}

TEST(XmlParserTest, RejectsDoubleHyphenInComment) {
  EXPECT_FALSE(ParseXml("<e><!-- a -- b --></e>").ok());
}

TEST(XmlParserTest, SkipsWhitespaceTextByDefault) {
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<a>\n  <b/>\n  <c/>\n</a>"));
  EXPECT_EQ(doc.CountChildren(doc.root()), 2u);  // no text nodes
}

TEST(XmlParserTest, KeepsWhitespaceWhenAsked) {
  ParseOptions options;
  options.skip_whitespace_text = false;
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml("<a>\n  <b/>\n</a>", options));
  EXPECT_EQ(doc.CountChildren(doc.root()), 3u);  // ws, b, ws
}

TEST(XmlParserTest, WellFormednessErrors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());                 // unclosed
  EXPECT_FALSE(ParseXml("<a></b>").ok());             // mismatched
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());            // two roots
  EXPECT_FALSE(ParseXml("text").ok());                // no element
  EXPECT_FALSE(ParseXml("<a attr></a>").ok());        // valueless attribute
  EXPECT_FALSE(ParseXml("<a attr=v></a>").ok());      // unquoted value
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());      // interleaved
  EXPECT_FALSE(ParseXml("<1a/>").ok());               // bad name
}

TEST(XmlParserTest, ErrorsCarryLineAndColumn) {
  Result<Document> result = ParseXml("<a>\n  <b>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("3:"), std::string::npos)
      << result.status().message();
}

TEST(XmlParserTest, ExtractsDoctypeInternalSubset) {
  ASSERT_OK_AND_ASSIGN(
      ParsedWithDoctype parsed,
      ParseXmlWithDoctype("<!DOCTYPE note [<!ELEMENT note (#PCDATA)>]>"
                          "<note>x</note>"));
  EXPECT_EQ(parsed.doctype_name, "note");
  EXPECT_EQ(parsed.internal_subset, "<!ELEMENT note (#PCDATA)>");
  EXPECT_EQ(parsed.document.label(parsed.document.root()), "note");
}

TEST(XmlParserTest, SkipsExternalDoctype) {
  ASSERT_OK_AND_ASSIGN(
      ParsedWithDoctype parsed,
      ParseXmlWithDoctype(
          "<!DOCTYPE html PUBLIC \"-//W3C\" \"http://x\"><html/>"));
  EXPECT_EQ(parsed.doctype_name, "html");
  EXPECT_TRUE(parsed.internal_subset.empty());
}

TEST(XmlParserTest, DeepNestingDoesNotOverflow) {
  // The parser keeps an explicit stack; 100k depth must not crash.
  std::string text;
  constexpr int kDepth = 100000;
  for (int i = 0; i < kDepth; ++i) text += "<d>";
  for (int i = 0; i < kDepth; ++i) text += "</d>";
  ASSERT_OK_AND_ASSIGN(Document doc, ParseXml(text));
  EXPECT_EQ(doc.label(doc.root()), "d");
}

TEST(XmlParserTest, CoalescesAdjacentTextRuns) {
  ASSERT_OK_AND_ASSIGN(Document doc,
                       ParseXml("<e>ab<![CDATA[cd]]>ef</e>"));
  EXPECT_EQ(doc.CountChildren(doc.root()), 1u);
  EXPECT_EQ(doc.SimpleContent(doc.root()), "abcdef");
}

}  // namespace
}  // namespace xmlreval::xml
