#include "core/relations.h"

#include <gtest/gtest.h>

#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_schemas.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;
using schema::ParseXsd;
using schema::TypeId;

struct Pair {
  std::shared_ptr<Alphabet> alphabet;
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
};

Pair LoadXsdPair(const char* source_xsd, const char* target_xsd) {
  Pair p;
  p.alphabet = std::make_shared<Alphabet>();
  auto s = ParseXsd(source_xsd, p.alphabet);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  p.source = std::make_unique<Schema>(std::move(s).value());
  auto t = ParseXsd(target_xsd, p.alphabet);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  p.target = std::make_unique<Schema>(std::move(t).value());
  return p;
}

TEST(TypeRelationsTest, PaperExperiment1Relations) {
  Pair p = LoadXsdPair(workload::kSourceXsd, workload::kTargetXsd);
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(p.source.get(), p.target.get()));

  TypeId po1 = *p.source->FindType("POType1");
  TypeId po2 = *p.target->FindType("POType2");
  TypeId addr_s = *p.source->FindType("USAddress");
  TypeId addr_t = *p.target->FindType("USAddress");
  TypeId items_s = *p.source->FindType("Items");
  TypeId items_t = *p.target->FindType("Items");
  TypeId item_s = *p.source->FindType("Item");
  TypeId item_t = *p.target->FindType("Item");

  // The only difference is billTo's optionality at the top type.
  EXPECT_FALSE(rel.Subsumed(po1, po2));
  EXPECT_FALSE(rel.Disjoint(po1, po2));  // documents with billTo fit both
  EXPECT_TRUE(rel.Subsumed(addr_s, addr_t));
  EXPECT_TRUE(rel.Subsumed(items_s, items_t));
  EXPECT_TRUE(rel.Subsumed(item_s, item_t));
}

TEST(TypeRelationsTest, PaperExperiment2Relations) {
  Pair p = LoadXsdPair(workload::kRelaxedQuantityXsd, workload::kTargetXsd);
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(p.source.get(), p.target.get()));

  // quantity<200 vs quantity<100 breaks subsumption transitively up the
  // chain Item → Items → POType2, but none of those pairs is disjoint.
  TypeId item_s = *p.source->FindType("Item");
  TypeId item_t = *p.target->FindType("Item");
  TypeId items_s = *p.source->FindType("Items");
  TypeId items_t = *p.target->FindType("Items");
  TypeId po_s = *p.source->FindType("POType2");
  TypeId po_t = *p.target->FindType("POType2");
  EXPECT_FALSE(rel.Subsumed(item_s, item_t));
  EXPECT_FALSE(rel.Disjoint(item_s, item_t));
  EXPECT_FALSE(rel.Subsumed(items_s, items_t));
  EXPECT_FALSE(rel.Disjoint(items_s, items_t));
  EXPECT_FALSE(rel.Subsumed(po_s, po_t));
  EXPECT_FALSE(rel.Disjoint(po_s, po_t));
  // Addresses still subsume.
  EXPECT_TRUE(rel.Subsumed(*p.source->FindType("USAddress"),
                           *p.target->FindType("USAddress")));
  // The REVERSE direction subsumes: <100 ⊆ <200 propagates up.
  ASSERT_OK_AND_ASSIGN(TypeRelations reverse,
                       TypeRelations::Compute(p.target.get(), p.source.get()));
  EXPECT_TRUE(reverse.Subsumed(item_t, item_s));
  EXPECT_TRUE(reverse.Subsumed(po_t, po_s));
}

TEST(TypeRelationsTest, SimpleComplexAlwaysDisjoint) {
  auto alphabet = std::make_shared<Alphabet>();
  auto src = ParseDtd("<!ELEMENT a (#PCDATA)>", alphabet);
  ASSERT_TRUE(src.ok());
  auto tgt = ParseDtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>", alphabet);
  ASSERT_TRUE(tgt.ok());
  Schema source = std::move(src).value();
  Schema target = std::move(tgt).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(&source, &target));
  TypeId a_s = *source.FindType("a");
  TypeId a_t = *target.FindType("a");
  EXPECT_TRUE(rel.Disjoint(a_s, a_t));
  EXPECT_FALSE(rel.Subsumed(a_s, a_t));
}

TEST(TypeRelationsTest, RecursiveSubsumption) {
  // Identical recursive tree types across two schema objects subsume.
  const char* tree_xsd = R"(
    <schema>
      <element name="tree" type="Tree"/>
      <complexType name="Tree">
        <sequence>
          <element name="leaf" type="string" minOccurs="0"/>
          <element name="tree" type="Tree" minOccurs="0"/>
        </sequence>
      </complexType>
    </schema>)";
  Pair p = LoadXsdPair(tree_xsd, tree_xsd);
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(p.source.get(), p.target.get()));
  EXPECT_TRUE(rel.Subsumed(*p.source->FindType("Tree"),
                           *p.target->FindType("Tree")));
  EXPECT_FALSE(rel.Disjoint(*p.source->FindType("Tree"),
                            *p.target->FindType("Tree")));
}

TEST(TypeRelationsTest, RefinementCascadesThroughChildren) {
  // Content models identical, but a grandchild simple type differs in a
  // way that breaks subsumption; the complex pair must fall out of R_sub
  // during refinement.
  const char* a = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="v" type="integer"/>
      </sequence></complexType>
    </schema>)";
  const char* b = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="v" type="positiveInteger"/>
      </sequence></complexType>
    </schema>)";
  Pair p = LoadXsdPair(a, b);
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(p.source.get(), p.target.get()));
  // integer ⊄ positiveInteger, so R ⊄ R even though the DFAs match.
  EXPECT_FALSE(rel.Subsumed(*p.source->FindType("R"),
                            *p.target->FindType("R")));
  // But they are not disjoint ("5" fits both).
  EXPECT_FALSE(rel.Disjoint(*p.source->FindType("R"),
                            *p.target->FindType("R")));
  // And the other direction subsumes.
  ASSERT_OK_AND_ASSIGN(TypeRelations reverse,
                       TypeRelations::Compute(p.target.get(), p.source.get()));
  EXPECT_TRUE(reverse.Subsumed(*p.target->FindType("R"),
                               *p.source->FindType("R")));
}

TEST(TypeRelationsTest, DisjointViaContentModels) {
  // (a) vs (b): no common word — disjoint complex types.
  auto alphabet = std::make_shared<Alphabet>();
  auto src = ParseDtd("<!ELEMENT r (a)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>",
                      alphabet);
  ASSERT_TRUE(src.ok());
  auto tgt = ParseDtd("<!ELEMENT r (b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>",
                      alphabet);
  ASSERT_TRUE(tgt.ok());
  Schema source = std::move(src).value();
  Schema target = std::move(tgt).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(&source, &target));
  EXPECT_TRUE(rel.Disjoint(*source.FindType("r"), *target.FindType("r")));
  // 'a' (EMPTY) and 'a' (EMPTY): equal → subsumed.
  EXPECT_TRUE(rel.Subsumed(*source.FindType("a"), *target.FindType("a")));
}

TEST(TypeRelationsTest, NondisjointNeedsProductiveWitness) {
  // Content models intersect only through a label whose child types are
  // disjoint — the pair must still be disjoint (the P* filter of Def. 5).
  const char* a = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="v" type="date"/>
      </sequence></complexType>
    </schema>)";
  const char* b = R"(
    <schema>
      <element name="r" type="R"/>
      <complexType name="R"><sequence>
        <element name="v" type="integer"/>
      </sequence></complexType>
    </schema>)";
  Pair p = LoadXsdPair(a, b);
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(p.source.get(), p.target.get()));
  // date ⊘ integer, and R requires exactly one v, so R ⊘ R.
  EXPECT_TRUE(rel.Disjoint(*p.source->FindType("R"),
                           *p.target->FindType("R")));
}

TEST(TypeRelationsTest, PairAutomataOnlyForInterestingPairs) {
  Pair p = LoadXsdPair(workload::kSourceXsd, workload::kTargetXsd);
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(p.source.get(), p.target.get()));
  TypeId po1 = *p.source->FindType("POType1");
  TypeId po2 = *p.target->FindType("POType2");
  TypeId addr_s = *p.source->FindType("USAddress");
  TypeId addr_t = *p.target->FindType("USAddress");
  EXPECT_NE(rel.PairAutomaton(po1, po2), nullptr);
  EXPECT_EQ(rel.PairAutomaton(addr_s, addr_t), nullptr);  // subsumed
  EXPECT_NE(rel.SingleAutomaton(po2), nullptr);
}

TEST(TypeRelationsTest, RequiresSharedAlphabet) {
  auto a1 = std::make_shared<Alphabet>();
  auto a2 = std::make_shared<Alphabet>();
  auto s = ParseDtd("<!ELEMENT a EMPTY>", a1);
  auto t = ParseDtd("<!ELEMENT a EMPTY>", a2);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(t.ok());
  Schema source = std::move(s).value();
  Schema target = std::move(t).value();
  Result<TypeRelations> rel = TypeRelations::Compute(&source, &target);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidArgument);
}

TEST(TypeRelationsTest, CountsAreConsistent) {
  Pair p = LoadXsdPair(workload::kSourceXsd, workload::kTargetXsd);
  ASSERT_OK_AND_ASSIGN(TypeRelations rel,
                       TypeRelations::Compute(p.source.get(), p.target.get()));
  EXPECT_GT(rel.CountSubsumed(), 0u);
  EXPECT_GT(rel.CountNonDisjoint(), rel.CountSubsumed() - 1);
  // Subsumed implies non-disjoint for productive types: spot check.
  for (TypeId s = 0; s < p.source->num_types(); ++s) {
    for (TypeId t = 0; t < p.target->num_types(); ++t) {
      if (rel.Subsumed(s, t)) {
        EXPECT_FALSE(rel.Disjoint(s, t))
            << p.source->TypeName(s) << " vs " << p.target->TypeName(t);
      }
    }
  }
}

}  // namespace
}  // namespace xmlreval::core
