// ParallelCastValidator: bit-identical reports to the serial engine on
// every input — verdict, violation message, violation path, AND counters —
// plus the no-stack-overflow guarantee the explicit frontier buys both
// engines. Run under TSan in CI (the equivalence hammer is the data-race
// probe for the work-stealing fan-out).

#include "core/parallel_cast_validator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/executor.h"
#include "core/cast_validator.h"
#include "core/relations.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "workload/random_docs.h"
#include "workload/random_schemas.h"
#include "xml/parser.h"
#include "xml/tree.h"

namespace xmlreval::core {
namespace {

using schema::Alphabet;
using schema::ParseDtd;

struct DtdPair {
  std::shared_ptr<Alphabet> alphabet = std::make_shared<Alphabet>();
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::unique_ptr<TypeRelations> relations;

  void Load(const char* source_dtd, const char* target_dtd) {
    auto s = ParseDtd(source_dtd, alphabet);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    source = std::make_unique<Schema>(std::move(s).value());
    auto t = ParseDtd(target_dtd, alphabet);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    target = std::make_unique<Schema>(std::move(t).value());
    auto r = TypeRelations::Compute(source.get(), target.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    relations = std::make_unique<TypeRelations>(std::move(r).value());
  }
};

void ExpectSameReport(const ValidationReport& serial,
                      const ValidationReport& parallel,
                      const std::string& context) {
  EXPECT_EQ(serial.valid, parallel.valid) << context;
  EXPECT_EQ(serial.violation, parallel.violation) << context;
  EXPECT_EQ(serial.violation_path.ToString(),
            parallel.violation_path.ToString())
      << context;
  EXPECT_EQ(serial.counters.nodes_visited, parallel.counters.nodes_visited)
      << context;
  EXPECT_EQ(serial.counters.elements_visited,
            parallel.counters.elements_visited)
      << context;
  EXPECT_EQ(serial.counters.text_nodes_visited,
            parallel.counters.text_nodes_visited)
      << context;
  EXPECT_EQ(serial.counters.subtrees_skipped,
            parallel.counters.subtrees_skipped)
      << context;
  EXPECT_EQ(serial.counters.disjoint_rejects,
            parallel.counters.disjoint_rejects)
      << context;
  EXPECT_EQ(serial.counters.dfa_steps, parallel.counters.dfa_steps)
      << context;
  EXPECT_EQ(serial.counters.immediate_decisions,
            parallel.counters.immediate_decisions)
      << context;
  EXPECT_EQ(serial.counters.simple_checks, parallel.counters.simple_checks)
      << context;
  EXPECT_EQ(serial.counters.attr_checks, parallel.counters.attr_checks)
      << context;
}

// ------------------------------------------------- purchase-order corpus

// The Table 2 regime: relaxed-quantity source cast to the strict target
// (root pair NOT subsumed — every item is actually traversed). Checked
// both unbound (string labels) and bound (symbol fast path).
TEST(ParallelCastTest, PurchaseOrderCorpusMatchesSerial) {
  auto alphabet = std::make_shared<Alphabet>();
  auto src = schema::ParseXsd(workload::kRelaxedQuantityXsd, alphabet);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  auto tgt = schema::ParseXsd(workload::kTargetXsd, alphabet);
  ASSERT_TRUE(tgt.ok()) << tgt.status().ToString();
  Schema source = std::move(src).value();
  Schema target = std::move(tgt).value();
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(&source, &target));

  common::Executor executor(common::Executor::Options{.threads = 4});
  CastValidator serial(&relations);
  ParallelCastValidator::Options options;
  options.spawn_threshold = 4;  // force real fan-out even on small docs
  ParallelCastValidator parallel(&relations, &executor, options);

  for (size_t items : {size_t{2}, size_t{50}, size_t{200}, size_t{1000}}) {
    for (bool bind : {false, true}) {
      workload::PoGeneratorOptions po;
      po.item_count = items;
      xml::Document doc = workload::GeneratePurchaseOrder(po);
      if (bind) ASSERT_OK(doc.Bind(alphabet));
      ValidationReport s = serial.Validate(doc);
      ParallelCastValidator::RunStats stats;
      ValidationReport p = parallel.Validate(doc, &stats);
      ExpectSameReport(s, p,
                       "items=" + std::to_string(items) +
                           " bound=" + std::to_string(bind));
      EXPECT_TRUE(s.valid);
      EXPECT_FALSE(stats.replayed);
    }
  }
}

// ------------------------------------------------------- deep documents

// Both engines use an explicit frontier, so a pathologically deep chain
// must validate without exhausting the thread stack (the pre-refactor
// recursive walk overflowed around a few tens of thousands of levels).
TEST(ParallelCastTest, HundredThousandDeepChainDoesNotOverflow) {
  DtdPair p;
  p.Load(
      "<!ELEMENT r (r?, a?)><!ELEMENT a EMPTY>",
      "<!ELEMENT r (r?)><!ELEMENT a EMPTY>");

  constexpr size_t kDepth = 100000;
  xml::Document doc;
  xml::NodeId top = doc.CreateElement("r");
  ASSERT_OK(doc.SetRoot(top));
  xml::NodeId tip = top;
  for (size_t i = 1; i < kDepth; ++i) {
    xml::NodeId next = doc.CreateElement("r");
    ASSERT_OK(doc.AppendChild(tip, next));
    tip = next;
  }
  ASSERT_EQ(doc.NodeCount(), kDepth);

  CastValidator serial(p.relations.get());
  ValidationReport s = serial.Validate(doc);
  EXPECT_TRUE(s.valid) << s.violation;
  EXPECT_EQ(s.counters.elements_visited, kDepth);

  common::Executor executor(common::Executor::Options{.threads = 2});
  ParallelCastValidator parallel(p.relations.get(), &executor);
  ValidationReport par = parallel.Validate(doc);
  ExpectSameReport(s, par, "deep chain, valid");

  // A violating <a/> at the very bottom: the failure (and its
  // depth-100000 Dewey path) must come back identically from both.
  ASSERT_OK(doc.AppendChild(tip, doc.CreateElement("a")));
  ValidationReport s_bad = serial.Validate(doc);
  EXPECT_FALSE(s_bad.valid);
  EXPECT_EQ(s_bad.violation_path.depth(), kDepth - 1);
  ValidationReport par_bad = parallel.Validate(doc);
  ExpectSameReport(s_bad, par_bad, "deep chain, deep failure");
}

// ------------------------------------------------- randomized equivalence

// The TSan hammer: random schema pairs (S, mutate(S)), random documents
// valid under S, tiny spawn threshold so the frontier splits aggressively,
// 4 workers. Any scheduling-dependent divergence — verdict, message,
// path, or any counter — fails the run.
TEST(ParallelCastTest, RandomizedDocsMatchSerialUnderAggressiveSplitting) {
  common::Executor executor(common::Executor::Options{.threads = 4});
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto alphabet = std::make_shared<Alphabet>();
    workload::RandomSchemaOptions schema_options;
    schema_options.seed = seed;
    schema_options.complex_types = 5;
    auto src = workload::GenerateRandomSchema(alphabet, schema_options);
    ASSERT_TRUE(src.ok()) << src.status().ToString();
    workload::MutationOptions mutation;
    mutation.seed = seed * 31 + 7;
    auto tgt = workload::MutateSchema(*src, mutation);
    ASSERT_TRUE(tgt.ok()) << tgt.status().ToString();
    auto relations = TypeRelations::Compute(&*src, &*tgt);
    ASSERT_TRUE(relations.ok()) << relations.status().ToString();

    CastValidator serial(&*relations);
    ParallelCastValidator::Options options;
    options.spawn_threshold = 4;
    ParallelCastValidator parallel(&*relations, &executor, options);

    workload::RandomDocOptions doc_options;
    doc_options.seed = seed * 1000003;
    doc_options.max_elements = 400;
    auto doc = workload::SampleDocument(*src, doc_options);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();

    ValidationReport s = serial.Validate(*doc);
    ValidationReport p = parallel.Validate(*doc);
    ExpectSameReport(s, p, "seed=" + std::to_string(seed));
  }
}

// ------------------------------------------------- failure determinism

// A wide document with MANY violations: whichever task hits one first,
// the reported violation must be the serial engine's (document-order
// first), on every rerun. Also checks that the tracked first-failing
// unit agrees with the serial report before the replay even runs.
TEST(ParallelCastTest, FirstFailureIsDeterministicUnderCancellation) {
  DtdPair p;
  p.Load(
      "<!ELEMENT r (a*)><!ELEMENT a (b?)><!ELEMENT b EMPTY>",
      "<!ELEMENT r (a*)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>");

  // <a><b/></a> violates the target (EMPTY); every child is a violation.
  std::string text = "<r>";
  for (int i = 0; i < 200; ++i) text += "<a><b/></a>";
  text += "</r>";
  auto doc = xml::ParseXml(text);
  ASSERT_TRUE(doc.ok());

  CastValidator serial(p.relations.get());
  ValidationReport s = serial.Validate(*doc);
  ASSERT_FALSE(s.valid);

  common::Executor executor(common::Executor::Options{.threads = 4});
  ParallelCastValidator::Options options;
  options.spawn_threshold = 2;
  ParallelCastValidator parallel(p.relations.get(), &executor, options);

  for (int repeat = 0; repeat < 50; ++repeat) {
    ParallelCastValidator::RunStats stats;
    ValidationReport par = parallel.Validate(*doc, &stats);
    ExpectSameReport(s, par, "repeat=" + std::to_string(repeat));
    EXPECT_TRUE(stats.replayed);
    EXPECT_TRUE(stats.tracked_failure);
    // The tracked cell alone — before the serial replay — already names
    // the serial violation.
    EXPECT_EQ(stats.tracked_fail_path.ToString(),
              s.violation_path.ToString())
        << "repeat=" << repeat;
    EXPECT_EQ(stats.tracked_message, s.violation) << "repeat=" << repeat;
  }
}

// ------------------------------------------------------------ edge cases

// One worker: no idle peer ever exists, so the run never donates — a
// single task walks the whole document (the within-10%-of-serial bench
// guarantee rests on this).
TEST(ParallelCastTest, SingleThreadRunsAsOneTask) {
  DtdPair p;
  p.Load("<!ELEMENT r (a*, b?)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>",
         "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>");
  std::string text = "<r>";
  for (int i = 0; i < 500; ++i) text += "<a>x</a>";
  text += "</r>";
  auto doc = xml::ParseXml(text);
  ASSERT_TRUE(doc.ok());

  CastValidator serial(p.relations.get());
  ValidationReport s = serial.Validate(*doc);
  ASSERT_TRUE(s.valid);

  common::Executor executor(common::Executor::Options{.threads = 1});
  ParallelCastValidator::Options options;
  options.spawn_threshold = 2;  // would split eagerly IF a peer were idle
  ParallelCastValidator parallel(p.relations.get(), &executor, options);
  ParallelCastValidator::RunStats stats;
  ValidationReport par = parallel.Validate(*doc, &stats);
  ExpectSameReport(s, par, "single thread");
  EXPECT_EQ(stats.tasks, 1u);
}

// A subsumed root is pruned before any fan-out: one task, one visited
// node, identical to the serial short-circuit.
TEST(ParallelCastTest, SubsumedRootShortCircuitsWithoutFanOut) {
  DtdPair p;
  p.Load("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>",
         "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>");
  auto doc = xml::ParseXml("<r><a>1</a><a>2</a></r>");
  ASSERT_TRUE(doc.ok());

  common::Executor executor(common::Executor::Options{.threads = 2});
  ParallelCastValidator parallel(p.relations.get(), &executor);
  ParallelCastValidator::RunStats stats;
  ValidationReport par = parallel.Validate(*doc, &stats);
  EXPECT_TRUE(par.valid);
  EXPECT_EQ(par.counters.nodes_visited, 1u);
  EXPECT_EQ(par.counters.subtrees_skipped, 1u);
  EXPECT_EQ(stats.tasks, 1u);

  CastValidator serial(p.relations.get());
  ExpectSameReport(serial.Validate(*doc), par, "subsumed root");
}

// Adaptive threshold (Options::spawn_threshold == 0, the default): the
// first Validate calibrates from a timed prefix walk, the result lands in
// [16, 4096], is cached across calls, and — because calibration counters
// are discarded — the report stays bit-identical to the serial engine's.
TEST(ParallelCastTest, AdaptiveThresholdCalibratesOnceAndMatchesSerial) {
  DtdPair p;
  p.Load("<!ELEMENT r (a*)><!ELEMENT a (b?)><!ELEMENT b EMPTY>",
         "<!ELEMENT r (a*)><!ELEMENT a (b*)><!ELEMENT b EMPTY>");
  std::string text = "<r>";
  for (int i = 0; i < 2000; ++i) text += "<a><b/></a>";
  text += "</r>";
  auto doc = xml::ParseXml(text);
  ASSERT_TRUE(doc.ok());

  CastValidator serial(p.relations.get());
  ValidationReport s = serial.Validate(*doc);
  ASSERT_TRUE(s.valid);

  common::Executor executor(common::Executor::Options{.threads = 2});
  ParallelCastValidator parallel(p.relations.get(), &executor);  // default opts
  ParallelCastValidator::RunStats stats1;
  ValidationReport par = parallel.Validate(*doc, &stats1);
  ExpectSameReport(s, par, "adaptive, first call");
  EXPECT_GE(stats1.spawn_threshold, 16u);
  EXPECT_LE(stats1.spawn_threshold, 4096u);

  ParallelCastValidator::RunStats stats2;
  ValidationReport par2 = parallel.Validate(*doc, &stats2);
  ExpectSameReport(s, par2, "adaptive, cached call");
  EXPECT_EQ(stats2.spawn_threshold, stats1.spawn_threshold);

  // A fixed threshold is passed through untouched.
  ParallelCastValidator::Options fixed;
  fixed.spawn_threshold = 128;
  ParallelCastValidator parallel_fixed(p.relations.get(), &executor, fixed);
  ParallelCastValidator::RunStats stats3;
  ExpectSameReport(s, parallel_fixed.Validate(*doc, &stats3), "fixed");
  EXPECT_EQ(stats3.spawn_threshold, 128u);
}

// Root-level prologue failures (no root, undeclared labels) never reach
// the executor; reports must still match the serial engine's exactly.
TEST(ParallelCastTest, RootPrologueFailuresMatchSerial) {
  DtdPair p;
  p.Load("<!ELEMENT r (a)><!ELEMENT a EMPTY>",
         "<!ELEMENT other (a)><!ELEMENT a EMPTY>");
  auto doc = xml::ParseXml("<r><a/></r>");
  ASSERT_TRUE(doc.ok());

  common::Executor executor(common::Executor::Options{.threads = 2});
  ParallelCastValidator parallel(p.relations.get(), &executor);
  CastValidator serial(p.relations.get());
  ParallelCastValidator::RunStats stats;
  ValidationReport par = parallel.Validate(*doc, &stats);
  ExpectSameReport(serial.Validate(*doc), par, "undeclared target root");
  EXPECT_FALSE(par.valid);
  EXPECT_EQ(stats.tasks, 0u);
}

}  // namespace
}  // namespace xmlreval::core
