// Plan cache robustness: corrupt artifacts (truncated, bit-flipped, wrong
// magic/version/endianness/hash) must be rejected with kDataLoss — never a
// crash, never a silently-wrong plan — and the service must fall through
// to a cold compile that re-publishes a good artifact.

#include "service/plan_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "service/validation_service.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"

namespace xmlreval::service {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/xmlreval_plan_cache_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

ValidationService::PlanPairSpec Spec() {
  ValidationService::PlanPairSpec spec;
  spec.source_key = "src";
  spec.source_text = workload::kRelaxedQuantityXsd;
  spec.target_key = "tgt";
  spec.target_text = workload::kTargetXsd;
  return spec;
}

PlanKey KeyOf(const ValidationService::PlanPairSpec& spec) {
  PlanKey key;
  key.source_format = spec.source_format;
  key.source_text = spec.source_text;
  key.target_format = spec.target_format;
  key.target_text = spec.target_text;
  return key;
}

// Publishes a good artifact into `dir` and returns its bytes.
std::string PublishGoodPlan(const std::string& dir) {
  ValidationService::Options options;
  options.plan_cache_dir = dir;
  ValidationService svc(options);
  auto handles = svc.RegisterPlanPair(Spec());
  EXPECT_TRUE(handles.ok());
  EXPECT_FALSE(handles->warm);
  obs::MetricsRegistry metrics;
  PlanCache cache(dir, &metrics);
  std::ifstream in(cache.PlanPath(KeyOf(Spec())), std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteArtifact(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

void CleanDir(const std::string& dir) {
  obs::MetricsRegistry metrics;
  PlanCache cache(dir, &metrics);
  PlanKey key = KeyOf(Spec());
  std::remove(cache.PlanPath(key).c_str());
  std::remove(cache.LockPath(key).c_str());
  rmdir(dir.c_str());
}

TEST(PlanCacheTest, MissingArtifactIsNotFound) {
  const std::string dir = MakeTempDir();
  obs::MetricsRegistry metrics;
  PlanCache cache(dir, &metrics);
  auto bundle = cache.Load(KeyOf(Spec()));
  EXPECT_EQ(bundle.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.GetStats().misses, 1u);
  EXPECT_EQ(cache.GetStats().corrupt, 0u);
  CleanDir(dir);
}

TEST(PlanCacheTest, EveryTruncationIsRejectedCleanly) {
  const std::string dir = MakeTempDir();
  const std::string good = PublishGoodPlan(dir);
  ASSERT_GT(good.size(), 48u);
  obs::MetricsRegistry metrics;
  PlanCache cache(dir, &metrics);
  const PlanKey key = KeyOf(Spec());
  const std::string path = cache.PlanPath(key);

  // Dense near the ends (header, payload tail), strided in the middle.
  std::vector<size_t> lengths;
  for (size_t n = 0; n < 64 && n < good.size(); ++n) lengths.push_back(n);
  for (size_t n = 64; n + 64 < good.size(); n += 97) lengths.push_back(n);
  for (size_t n = good.size() > 64 ? good.size() - 64 : 64; n < good.size();
       ++n) {
    lengths.push_back(n);
  }
  for (size_t n : lengths) {
    SCOPED_TRACE("truncated to " + std::to_string(n));
    WriteArtifact(path, good.substr(0, n));
    auto bundle = cache.Load(key);
    ASSERT_FALSE(bundle.ok());
    EXPECT_EQ(bundle.status().code(), StatusCode::kDataLoss)
        << bundle.status().ToString();
  }
  CleanDir(dir);
}

TEST(PlanCacheTest, BitFlipsNeverYieldAWrongPlan) {
  const std::string dir = MakeTempDir();
  const std::string good = PublishGoodPlan(dir);
  obs::MetricsRegistry metrics;
  PlanCache cache(dir, &metrics);
  const PlanKey key = KeyOf(Spec());
  const std::string path = cache.PlanPath(key);

  std::mt19937 rng(20260809);
  // Every header byte, plus a spread of payload positions.
  std::vector<size_t> positions;
  for (size_t i = 0; i < 48 && i < good.size(); ++i) positions.push_back(i);
  for (int i = 0; i < 200; ++i) positions.push_back(rng() % good.size());

  for (size_t pos : positions) {
    SCOPED_TRACE("bit flip at byte " + std::to_string(pos));
    std::string mutated = good;
    mutated[pos] = char(mutated[pos] ^ (1u << (rng() % 8)));
    WriteArtifact(path, mutated);
    auto bundle = cache.Load(key);
    if (bundle.ok()) {
      // Only flips in ignored header bytes (the reserved field) may pass;
      // the loaded plan must still be fully usable and correct.
      ASSERT_LT(pos, 48u);
      ASSERT_NE(bundle->relations, nullptr);
      EXPECT_GT(bundle->source->num_types(), 0u);
      EXPECT_GT(bundle->target->num_types(), 0u);
    } else {
      EXPECT_EQ(bundle.status().code(), StatusCode::kDataLoss)
          << bundle.status().ToString();
    }
  }
  CleanDir(dir);
}

TEST(PlanCacheTest, WrongVersionEndianMagicAndHashAreRejected) {
  const std::string dir = MakeTempDir();
  const std::string good = PublishGoodPlan(dir);
  obs::MetricsRegistry metrics;
  PlanCache cache(dir, &metrics);
  const PlanKey key = KeyOf(Spec());
  const std::string path = cache.PlanPath(key);

  auto expect_data_loss = [&](std::string mutated, const char* what) {
    SCOPED_TRACE(what);
    WriteArtifact(path, std::move(mutated));
    auto bundle = cache.Load(key);
    ASSERT_FALSE(bundle.ok());
    EXPECT_EQ(bundle.status().code(), StatusCode::kDataLoss);
  };

  {  // Magic: zero the first 8 bytes.
    std::string m = good;
    for (int i = 0; i < 8; ++i) m[i] = 0;
    expect_data_loss(std::move(m), "bad magic");
  }
  {  // Endianness tag at offset 8 (u32): byte-swap it.
    std::string m = good;
    std::swap(m[8], m[11]);
    std::swap(m[9], m[10]);
    expect_data_loss(std::move(m), "wrong endianness");
  }
  {  // Version at offset 12 (u32): bump it.
    std::string m = good;
    m[12] = char(m[12] + 1);
    expect_data_loss(std::move(m), "future version");
  }
  {  // Content-hash echo at offset 16 (u64): flip its low byte.
    std::string m = good;
    m[16] = char(m[16] ^ 0xff);
    expect_data_loss(std::move(m), "foreign content hash");
  }
  {  // Payload checksum: flip a payload byte without fixing the sum.
    std::string m = good;
    m[good.size() / 2] = char(m[good.size() / 2] ^ 0x01);
    expect_data_loss(std::move(m), "payload checksum");
  }
  EXPECT_GE(cache.GetStats().corrupt, 5u);
  CleanDir(dir);
}

TEST(PlanCacheTest, ServiceFallsThroughCorruptionAndRepublishes) {
  const std::string dir = MakeTempDir();
  const std::string good = PublishGoodPlan(dir);
  {
    obs::MetricsRegistry metrics;
    PlanCache cache(dir, &metrics);
    // Corrupt the artifact in place.
    std::string bad = good;
    bad[bad.size() - 1] = char(bad[bad.size() - 1] ^ 0x10);
    WriteArtifact(cache.PlanPath(KeyOf(Spec())), bad);
  }

  workload::PoGeneratorOptions doc_options;
  doc_options.item_count = 8;
  xml::Document doc = workload::GeneratePurchaseOrder(doc_options);

  ValidationService::Options options;
  options.plan_cache_dir = dir;
  ValidationService svc(options);
  ASSERT_OK_AND_ASSIGN(auto handles, svc.RegisterPlanPair(Spec()));
  // Corruption → treated as a miss → cold compile, still fully serviceable.
  EXPECT_FALSE(handles.warm);
  ASSERT_OK_AND_ASSIGN(auto report,
                       svc.Cast(handles.source, handles.target, doc));
  EXPECT_TRUE(report.valid);
  PlanCache::Stats stats = svc.plan_cache()->GetStats();
  // Both load attempts (pre-lock probe and post-lock recheck) observe the
  // corrupt artifact before the cold compile replaces it.
  EXPECT_EQ(stats.corrupt, 2u);
  EXPECT_EQ(stats.saves, 1u);

  // The republished artifact is good again: a second service warm-starts.
  ValidationService svc2(options);
  ASSERT_OK_AND_ASSIGN(auto handles2, svc2.RegisterPlanPair(Spec()));
  EXPECT_TRUE(handles2.warm);
  CleanDir(dir);
}

TEST(PlanCacheTest, ContentHashMovesWithTextVersionAndFlags) {
  PlanKey base = KeyOf(Spec());

  PlanKey text_changed = base;
  text_changed.target_text += " ";
  EXPECT_NE(PlanContentHash(base), PlanContentHash(text_changed));

  PlanKey format_changed = base;
  format_changed.source_format = SchemaFormat::kDtd;
  EXPECT_NE(PlanContentHash(base), PlanContentHash(format_changed));

  PlanKey reverse_changed = base;
  reverse_changed.reverse_automata = true;
  EXPECT_NE(PlanContentHash(base), PlanContentHash(reverse_changed));

  PlanKey swapped = base;
  std::swap(swapped.source_text, swapped.target_text);
  EXPECT_NE(PlanContentHash(base), PlanContentHash(swapped));

  // Same key → same hash → same path (stable addressing).
  EXPECT_EQ(PlanContentHash(base), PlanContentHash(KeyOf(Spec())));
}

TEST(PlanCacheTest, BypassWhenRegistryAlreadyPopulated) {
  const std::string dir = MakeTempDir();
  (void)PublishGoodPlan(dir);

  ValidationService::Options options;
  options.plan_cache_dir = dir;
  ValidationService svc(options);
  // Pre-register an unrelated schema: the registry's alphabet is no longer
  // adoptable, so the plan path must be bypassed, not half-taken.
  ASSERT_OK(svc.registry().RegisterXsd("other", workload::kSourceXsd).status());
  ASSERT_OK_AND_ASSIGN(auto handles, svc.RegisterPlanPair(Spec()));
  EXPECT_FALSE(handles.warm);
  EXPECT_EQ(svc.plan_cache()->GetStats().bypass, 1u);

  workload::PoGeneratorOptions doc_options;
  doc_options.item_count = 4;
  xml::Document doc = workload::GeneratePurchaseOrder(doc_options);
  ASSERT_OK_AND_ASSIGN(auto report,
                       svc.Cast(handles.source, handles.target, doc));
  EXPECT_TRUE(report.valid);
  CleanDir(dir);
}

}  // namespace
}  // namespace xmlreval::service
