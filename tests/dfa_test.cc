#include "automata/dfa.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>

#include "automata/dfa_serialize.h"
#include "automata/glushkov.h"
#include "automata/regex_parser.h"
#include "common/serde.h"
#include "tests/test_util.h"

namespace xmlreval::automata {
namespace {

using testutil::CompileOrDie;
using testutil::ForAllWords;
using testutil::Word;

TEST(DfaTest, CompileRegexAcceptsExpectedWords) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,(b|c)*,d?)", &alphabet);
  EXPECT_TRUE(dfa.Accepts(Word("a", &alphabet)));
  EXPECT_TRUE(dfa.Accepts(Word("abcd", &alphabet)));
  EXPECT_TRUE(dfa.Accepts(Word("abbbc", &alphabet)));
  EXPECT_FALSE(dfa.Accepts(Word("ad" "d", &alphabet)));
  EXPECT_FALSE(dfa.Accepts(Word("b", &alphabet)));
  EXPECT_FALSE(dfa.Accepts({}));
}

TEST(DfaTest, CompleteOverTheAlphabet) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,b)", &alphabet);
  alphabet.Intern("zzz");  // grows the alphabet AFTER compilation
  // Every (state, symbol < dfa alphabet) transition is defined and lands
  // inside the state set.
  for (StateId q = 0; q < dfa.num_states(); ++q) {
    for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
      EXPECT_LT(dfa.Next(q, s), dfa.num_states());
    }
  }
}

TEST(DfaTest, MinimizeIsMinimalForKnownCase) {
  // (a|b)*abb over {a,b}: the canonical minimal DFA has 4 states.
  Alphabet alphabet;
  auto parsed = ParseRegex("((a|b)*,a,b,b)", &alphabet);
  ASSERT_TRUE(parsed.ok());
  auto g = BuildGlushkov(*parsed, alphabet.size());
  ASSERT_TRUE(g.ok());
  Dfa dfa = DeterminizeNfa(g->nfa);
  Dfa minimal = dfa.Minimize();
  EXPECT_EQ(minimal.num_states(), 4u);
}

TEST(DfaTest, MinimizePreservesLanguage) {
  Alphabet alphabet;
  auto parsed = ParseRegex("((a,b)|(a,c))*", &alphabet);
  ASSERT_TRUE(parsed.ok());
  auto g = BuildGlushkov(*parsed, alphabet.size());
  ASSERT_TRUE(g.ok());
  Dfa big = DeterminizeNfa(g->nfa);
  Dfa small = big.Minimize();
  EXPECT_LE(small.num_states(), big.num_states());
  ForAllWords(alphabet.size(), 5, [&](const std::vector<Symbol>& word) {
    EXPECT_EQ(big.Accepts(word), small.Accepts(word));
  });
}

TEST(DfaTest, EmptyAndUniversalLanguages) {
  Alphabet alphabet;
  alphabet.Intern("a");
  Dfa empty = CompileOrDie("(a)", &alphabet);
  EXPECT_FALSE(empty.IsEmptyLanguage());
  EXPECT_FALSE(empty.IsUniversalLanguage());

  // Universal: a* over a 1-symbol alphabet.
  Dfa universal = CompileOrDie("a*", &alphabet);
  EXPECT_TRUE(universal.IsUniversalLanguage());
  EXPECT_FALSE(universal.IsEmptyLanguage());
}

TEST(DfaTest, CoDeadStates) {
  // In "(a,b)", after a stray second 'a' the DFA is stuck forever.
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,b)", &alphabet);
  std::vector<bool> dead = dfa.CoDeadStates();
  StateId stuck = dfa.Run(Word("aa", &alphabet));
  EXPECT_TRUE(dead[stuck]);
  EXPECT_FALSE(dead[dfa.start_state()]);
  EXPECT_FALSE(dead[dfa.Run(Word("ab", &alphabet))]);
}

TEST(DfaTest, UniversalStates) {
  // In "(a,b,(a|b)*)" the state after "ab" accepts everything.
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,b,(a|b)*)", &alphabet);
  std::vector<bool> universal = dfa.UniversalStates();
  EXPECT_TRUE(universal[dfa.Run(Word("ab", &alphabet))]);
  EXPECT_FALSE(universal[dfa.start_state()]);
  EXPECT_FALSE(universal[dfa.Run(Word("a", &alphabet))]);
}

TEST(DfaTest, NeutralSymbols) {
  // In "((a|b)*)" every symbol self-loops on every reachable state; in
  // "(a,b)" none does.
  Alphabet alphabet;
  Dfa star = CompileOrDie("((a|b)*)", &alphabet);
  std::vector<bool> neutral = star.NeutralSymbols();
  EXPECT_TRUE(neutral[*alphabet.Find("a")]);
  EXPECT_TRUE(neutral[*alphabet.Find("b")]);
  Dfa seq = CompileOrDie("(a,b)", &alphabet);
  neutral = seq.NeutralSymbols();
  EXPECT_FALSE(neutral[*alphabet.Find("a")]);
  EXPECT_FALSE(neutral[*alphabet.Find("b")]);
}

TEST(DfaTest, NeutralMeansInsertionInvariant) {
  // Semantic check: for a neutral symbol s, splicing s into any accepted
  // word at ANY position keeps it accepted. Note neutrality is a strong,
  // whole-DFA property: in "((a|b)*,c)" even 'a' is not neutral, because
  // the post-'c' accept state has no a-loop.
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("((a|b)*)", &alphabet);
  std::vector<bool> neutral = dfa.NeutralSymbols();
  Symbol a = *alphabet.Find("a");
  ASSERT_TRUE(neutral[a]);
  std::vector<Symbol> word = Word("abba", &alphabet);
  for (size_t pos = 0; pos <= word.size(); ++pos) {
    std::vector<Symbol> spliced = word;
    spliced.insert(spliced.begin() + pos, a);
    EXPECT_TRUE(dfa.Accepts(spliced)) << pos;
  }
  Dfa seq = CompileOrDie("((a|b)*,c)", &alphabet);
  neutral = seq.NeutralSymbols();
  EXPECT_FALSE(neutral[*alphabet.Find("a")]);
  EXPECT_FALSE(neutral[*alphabet.Find("c")]);
}

TEST(DfaTest, DoomedSymbols) {
  // In "(a,b)" no accepted word contains a second 'a'... but 'a' itself is
  // not doomed from the start state. A symbol outside the regex — padded
  // into the alphabet — IS doomed everywhere.
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("((a|b)*)", &alphabet);
  Symbol fresh = alphabet.Intern("zzz");
  Dfa padded = dfa.PaddedTo(alphabet.size());
  std::vector<bool> doomed = padded.DoomedSymbols();
  EXPECT_TRUE(doomed[fresh]);
  EXPECT_FALSE(doomed[*alphabet.Find("a")]);
  EXPECT_FALSE(doomed[*alphabet.Find("b")]);
}

TEST(DfaTest, SymbolsIndistinguishable) {
  // a and b play identical roles in "((a|b)*,c)"; c does not.
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("((a|b)*,c)", &alphabet);
  Symbol a = *alphabet.Find("a");
  Symbol b = *alphabet.Find("b");
  Symbol c = *alphabet.Find("c");
  EXPECT_TRUE(dfa.SymbolsIndistinguishable(a, b));
  EXPECT_TRUE(dfa.SymbolsIndistinguishable(b, a));
  EXPECT_TRUE(dfa.SymbolsIndistinguishable(a, a));
  EXPECT_FALSE(dfa.SymbolsIndistinguishable(a, c));
  // Out-of-range symbols are never indistinguishable from in-range ones.
  EXPECT_FALSE(dfa.SymbolsIndistinguishable(a, Symbol(alphabet.size() + 7)));
}

TEST(DfaTest, ReverseRecognizesReversedLanguage) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,b,c?)", &alphabet);
  Dfa reversed = DeterminizeNfa(dfa.Reverse()).Minimize();
  ForAllWords(alphabet.size(), 4, [&](const std::vector<Symbol>& word) {
    std::vector<Symbol> back(word.rbegin(), word.rend());
    EXPECT_EQ(dfa.Accepts(word), reversed.Accepts(back));
  });
}

TEST(DfaTest, PaddedToPreservesLanguageAndRejectsNewSymbols) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,b)", &alphabet);
  size_t old_size = dfa.alphabet_size();
  Symbol fresh = alphabet.Intern("fresh");
  Dfa padded = dfa.PaddedTo(alphabet.size());
  EXPECT_EQ(padded.alphabet_size(), alphabet.size());
  EXPECT_TRUE(padded.Accepts(Word("ab", &alphabet)));
  EXPECT_FALSE(padded.Accepts(Word("a", &alphabet)));
  std::vector<Symbol> only_fresh{fresh};
  EXPECT_FALSE(padded.Accepts(only_fresh));
  std::vector<Symbol> mixed = Word("ab", &alphabet);
  mixed.push_back(fresh);
  EXPECT_FALSE(padded.Accepts(mixed));
  EXPECT_GE(padded.alphabet_size(), old_size);
}

TEST(DfaTest, CompileRejectsAmbiguousWhenRequired) {
  Alphabet alphabet;
  auto parsed = ParseRegex("((a|b)*,a)", &alphabet);
  ASSERT_TRUE(parsed.ok());
  Result<Dfa> strict =
      CompileRegex(*parsed, alphabet.size(), /*require_deterministic=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidSchema);
  // Non-strict compilation still yields the right language.
  Result<Dfa> lax = CompileRegex(*parsed, alphabet.size());
  ASSERT_TRUE(lax.ok());
  EXPECT_TRUE(lax->Accepts(Word("ba" , &alphabet)));
  EXPECT_FALSE(lax->Accepts(Word("ab", &alphabet)));
}

// Property sweep: minimization must preserve the language for a batch of
// structurally diverse expressions.
class MinimizeProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(MinimizeProperty, LanguagePreserved) {
  Alphabet alphabet;
  auto parsed = ParseRegex(GetParam(), &alphabet);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto expanded = ExpandRepeats(*parsed);
  ASSERT_TRUE(expanded.ok());
  auto g = BuildGlushkov(*expanded, alphabet.size());
  ASSERT_TRUE(g.ok());
  Dfa big = DeterminizeNfa(g->nfa);
  Dfa small = big.Minimize();
  ForAllWords(alphabet.size(), 5, [&](const std::vector<Symbol>& word) {
    ASSERT_EQ(big.Accepts(word), small.Accepts(word));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, MinimizeProperty,
    ::testing::Values("a", "(a,b,c)", "(a|b|c)", "(a,b)*", "(a?,b)",
                      "((a,b)|(a,c))", "((a|b),(a|b),(a|b))", "(a,b?,c*)",
                      "(a+,b+)", "a{2,4}", "(a,(b,c){0,2})", "((a,b)+|c)",
                      "((a|b)*,c)", "(a*,b*)", "((a,a)|(b,b))*"));

// ---------------------------------------------------------------------
// DfaCodec round trips over random regexes (plan-cache serialization)
// ---------------------------------------------------------------------

// Uniform random regex tree over `k` symbols; depth-bounded so the
// expression stays small but exercises every node kind.
RegexPtr RandomRegex(std::mt19937* rng, size_t k, int depth) {
  auto pick = [&](int n) { return int((*rng)() % n); };
  if (depth <= 0 || pick(4) == 0) {
    return Regex::Sym(Symbol(pick(int(k))));
  }
  switch (pick(6)) {
    case 0: {
      std::vector<RegexPtr> parts;
      for (int i = 0, n = 2 + pick(2); i < n; ++i) {
        parts.push_back(RandomRegex(rng, k, depth - 1));
      }
      return Regex::Concat(std::move(parts));
    }
    case 1: {
      std::vector<RegexPtr> parts;
      for (int i = 0, n = 2 + pick(2); i < n; ++i) {
        parts.push_back(RandomRegex(rng, k, depth - 1));
      }
      return Regex::Alternate(std::move(parts));
    }
    case 2:
      return Regex::Star(RandomRegex(rng, k, depth - 1));
    case 3:
      return Regex::Plus(RandomRegex(rng, k, depth - 1));
    case 4:
      return Regex::Optional(RandomRegex(rng, k, depth - 1));
    default:
      return Regex::Sym(Symbol(pick(int(k))));
  }
}

// One serialize → deserialize → equivalence check; `borrow` selects the
// zero-copy decode path (table views aliasing the encoded buffer).
void CheckDfaRoundTrip(const Dfa& dfa, size_t alphabet_size, bool borrow,
                       const char* what) {
  common::ByteWriter w;
  DfaCodec::Encode(dfa, &w);
  std::string bytes = w.Take();
  common::ByteReader r(bytes.data(), bytes.size());
  auto decoded = DfaCodec::Decode(&r, borrow);
  ASSERT_TRUE(decoded.ok()) << what << ": " << decoded.status().ToString();
  ASSERT_EQ(decoded->num_states(), dfa.num_states()) << what;
  ASSERT_EQ(decoded->alphabet_size(), dfa.alphabet_size()) << what;
  ASSERT_EQ(decoded->start_state(), dfa.start_state()) << what;
  for (StateId q = 0; q < dfa.num_states(); ++q) {
    ASSERT_EQ(decoded->IsAccepting(q), dfa.IsAccepting(q)) << what;
    for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
      ASSERT_EQ(decoded->Next(q, s), dfa.Next(q, s)) << what;
    }
  }
  // Deterministic encoding: re-encoding the decoded DFA is byte-identical.
  common::ByteWriter w2;
  DfaCodec::Encode(*decoded, &w2);
  ASSERT_EQ(w2.buffer(), bytes) << what << ": encode is not deterministic";
  // Language agreement on short words (cheap smoke on top of the
  // table-identity check above).
  ForAllWords(std::min<size_t>(alphabet_size, 3), 4,
              [&](const std::vector<Symbol>& word) {
                ASSERT_EQ(decoded->Accepts(word), dfa.Accepts(word)) << what;
              });
}

TEST(DfaCodecTest, RandomRegexRoundTrips) {
  // ≥1k random regex DFAs through the codec, both decode modes.
  std::mt19937 rng(20260809);
  int compiled = 0;
  for (int i = 0; compiled < 1000 && i < 4000; ++i) {
    const size_t k = 1 + rng() % 3;
    RegexPtr regex = RandomRegex(&rng, k, 3);
    auto dfa = CompileRegex(regex, k, /*require_deterministic=*/false);
    ASSERT_TRUE(dfa.ok()) << dfa.status().ToString();
    ++compiled;
    CheckDfaRoundTrip(*dfa, k, /*borrow=*/false, "owned");
    CheckDfaRoundTrip(*dfa, k, /*borrow=*/true, "borrowed");
  }
  EXPECT_GE(compiled, 1000);
}

TEST(DfaCodecTest, BorrowedDecodeAliasesBufferAndCopiesOnCopy) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("(a,(b|c)*,d?)", &alphabet);
  common::ByteWriter w;
  DfaCodec::Encode(dfa, &w);
  std::string bytes = w.Take();
  common::ByteReader r(bytes.data(), bytes.size());
  ASSERT_OK_AND_ASSIGN(Dfa borrowed, DfaCodec::Decode(&r, /*borrow=*/true));
  // Copying a borrowed DFA must not extend the buffer's lifetime
  // requirements onto the copy's users: the copy owns its tables.
  Dfa copy = borrowed;
  std::string moved_away = std::move(bytes);
  bytes.assign(moved_away.size(), '\0');  // scramble the old storage
  for (StateId q = 0; q < dfa.num_states(); ++q) {
    for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
      EXPECT_EQ(copy.Next(q, s), dfa.Next(q, s));
    }
  }
}

TEST(DfaCodecTest, TruncationAndBitFlipsRejectCleanly) {
  Alphabet alphabet;
  Dfa dfa = CompileOrDie("((a,b)|(a,c))*", &alphabet);
  common::ByteWriter w;
  DfaCodec::Encode(dfa, &w);
  const std::string bytes = w.Take();
  // Every truncation point either fails cleanly or (for pure padding
  // suffixes) yields an equivalent DFA — never crashes or UB.
  for (size_t n = 0; n < bytes.size(); ++n) {
    common::ByteReader r(bytes.data(), n);
    auto decoded = DfaCodec::Decode(&r, /*borrow=*/false);
    if (decoded.ok()) {
      EXPECT_EQ(decoded->num_states(), dfa.num_states());
    } else {
      EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
    }
  }
  // Bit flips in the header fields (first 12 bytes: counts + start) must
  // never produce an out-of-bounds table — decode either fails or yields
  // a structurally valid DFA.
  for (size_t byte = 0; byte < 12 && byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[byte] = char(mutated[byte] ^ (1 << bit));
      common::ByteReader r(mutated.data(), mutated.size());
      auto decoded = DfaCodec::Decode(&r, /*borrow=*/false);
      if (!decoded.ok()) continue;
      for (StateId q = 0; q < decoded->num_states(); ++q) {
        for (Symbol s = 0; s < decoded->alphabet_size(); ++s) {
          ASSERT_LT(decoded->Next(q, s), decoded->num_states());
        }
      }
    }
  }
}

}  // namespace
}  // namespace xmlreval::automata
