// Symbol binding: Document ↔ Alphabet coherence.
//
// The tentpole invariant: for every live element n of a bound document,
//   doc.symbol(n) == *alphabet.Find(doc.label(n))   when the label is in Σ,
//   doc.symbol(n) == kUnboundSymbol                 otherwise,
// maintained across CreateElement, Rename, editor batches, bind /
// re-bind / unbind, and parsing with an interning alphabet.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "tests/test_util.h"
#include "xml/editor.h"
#include "xml/label_index.h"
#include "xml/parser.h"
#include "xml/tree.h"

namespace xmlreval {
namespace {

using automata::Alphabet;
using automata::kUnboundSymbol;
using automata::Symbol;

// Checks the binding invariant for every live element.
void ExpectCoherent(const xml::Document& doc, const Alphabet& alphabet) {
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    if (!doc.IsAlive(n) || !doc.IsElement(n)) continue;
    auto found = alphabet.Find(doc.label(n));
    if (found) {
      EXPECT_EQ(doc.symbol(n), *found) << "label " << doc.label(n);
    } else {
      EXPECT_EQ(doc.symbol(n), kUnboundSymbol) << "label " << doc.label(n);
    }
  }
}

TEST(BindingTest, UnboundDocumentUsesSentinel) {
  xml::Document doc;
  xml::NodeId root = doc.CreateElement("po");
  ASSERT_OK(doc.SetRoot(root));
  EXPECT_FALSE(doc.IsBound());
  EXPECT_EQ(doc.symbol(root), kUnboundSymbol);
}

TEST(BindingTest, BindResolvesExistingNodes) {
  auto alphabet = std::make_shared<Alphabet>();
  Symbol po = alphabet->Intern("po");
  Symbol item = alphabet->Intern("item");

  xml::Document doc;
  xml::NodeId root = doc.CreateElement("po");
  ASSERT_OK(doc.SetRoot(root));
  xml::NodeId c1 = doc.CreateElement("item");
  ASSERT_OK(doc.AppendChild(root, c1));
  xml::NodeId stranger = doc.CreateElement("not-in-sigma");
  ASSERT_OK(doc.AppendChild(root, stranger));

  ASSERT_OK(doc.Bind(alphabet));
  EXPECT_TRUE(doc.IsBound());
  EXPECT_TRUE(doc.BoundTo(*alphabet));
  EXPECT_EQ(doc.symbol(root), po);
  EXPECT_EQ(doc.symbol(c1), item);
  EXPECT_EQ(doc.symbol(stranger), kUnboundSymbol);
  ExpectCoherent(doc, *alphabet);
}

TEST(BindingTest, BindIsFindOnly) {
  auto alphabet = std::make_shared<Alphabet>();
  alphabet->Intern("po");
  size_t size_before = alphabet->size();

  xml::Document doc;
  ASSERT_OK(doc.SetRoot(doc.CreateElement("po")));
  ASSERT_OK(doc.AppendChild(doc.root(), doc.CreateElement("new-label")));
  ASSERT_OK(doc.Bind(alphabet));
  EXPECT_EQ(alphabet->size(), size_before);  // Σ untouched
}

TEST(BindingTest, BindInterningGrowsAlphabet) {
  auto alphabet = std::make_shared<Alphabet>();
  xml::Document doc;
  ASSERT_OK(doc.SetRoot(doc.CreateElement("po")));
  ASSERT_OK(doc.BindInterning(alphabet));
  // Existing node was interned.
  EXPECT_EQ(doc.symbol(doc.root()), *alphabet->Find("po"));
  // Future creations intern too.
  xml::NodeId c = doc.CreateElement("fresh");
  ASSERT_OK(doc.AppendChild(doc.root(), c));
  ASSERT_TRUE(alphabet->Find("fresh").has_value());
  EXPECT_EQ(doc.symbol(c), *alphabet->Find("fresh"));
  ExpectCoherent(doc, *alphabet);
}

TEST(BindingTest, CreateAndRenameStayCoherent) {
  auto alphabet = std::make_shared<Alphabet>();
  Symbol a = alphabet->Intern("a");
  Symbol b = alphabet->Intern("b");

  xml::Document doc;
  ASSERT_OK(doc.SetRoot(doc.CreateElement("a")));
  ASSERT_OK(doc.Bind(alphabet));
  EXPECT_EQ(doc.symbol(doc.root()), a);

  // Rename within Σ.
  ASSERT_OK(doc.Rename(doc.root(), "b"));
  EXPECT_EQ(doc.symbol(doc.root()), b);
  // Rename out of Σ degrades to the sentinel (find-only bind).
  ASSERT_OK(doc.Rename(doc.root(), "zzz"));
  EXPECT_EQ(doc.symbol(doc.root()), kUnboundSymbol);
  // And back.
  ASSERT_OK(doc.Rename(doc.root(), "a"));
  EXPECT_EQ(doc.symbol(doc.root()), a);
  ExpectCoherent(doc, *alphabet);
}

TEST(BindingTest, UnbindResetsSymbols) {
  auto alphabet = std::make_shared<Alphabet>();
  alphabet->Intern("a");
  xml::Document doc;
  ASSERT_OK(doc.SetRoot(doc.CreateElement("a")));
  ASSERT_OK(doc.Bind(alphabet));
  ASSERT_NE(doc.symbol(doc.root()), kUnboundSymbol);
  doc.Unbind();
  EXPECT_FALSE(doc.IsBound());
  EXPECT_EQ(doc.symbol(doc.root()), kUnboundSymbol);
}

TEST(BindingTest, RebindToDifferentAlphabetReResolves) {
  auto first = std::make_shared<Alphabet>();
  Symbol a1 = first->Intern("x");
  auto second = std::make_shared<Alphabet>();
  second->Intern("pad");  // shift ids so x differs between alphabets
  Symbol a2 = second->Intern("x");
  ASSERT_NE(a1, a2);

  xml::Document doc;
  ASSERT_OK(doc.SetRoot(doc.CreateElement("x")));
  ASSERT_OK(doc.Bind(first));
  EXPECT_EQ(doc.symbol(doc.root()), a1);
  ASSERT_OK(doc.Bind(second));
  EXPECT_TRUE(doc.BoundTo(*second));
  EXPECT_FALSE(doc.BoundTo(*first));
  EXPECT_EQ(doc.symbol(doc.root()), a2);
}

TEST(BindingTest, ParserInternsWhenGivenAlphabet) {
  auto alphabet = std::make_shared<Alphabet>();
  xml::ParseOptions options;
  options.intern_alphabet = alphabet;
  ASSERT_OK_AND_ASSIGN(
      xml::Document doc,
      xml::ParseXml("<po><item>1</item><item>2</item></po>", options));
  EXPECT_TRUE(doc.IsBound());
  EXPECT_TRUE(doc.BoundTo(*alphabet));
  ASSERT_TRUE(alphabet->Find("po").has_value());
  ASSERT_TRUE(alphabet->Find("item").has_value());
  EXPECT_EQ(doc.symbol(doc.root()), *alphabet->Find("po"));
  ExpectCoherent(doc, *alphabet);
}

TEST(BindingTest, ElementChildRangeSkipsTextAndMatchesHelper) {
  ASSERT_OK_AND_ASSIGN(
      xml::Document doc,
      xml::ParseXml("<r>text<a/>more<b/><c/>tail</r>"));
  std::vector<xml::NodeId> from_range;
  for (xml::NodeId c : xml::ElementChildRange(doc, doc.root())) {
    from_range.push_back(c);
  }
  EXPECT_EQ(from_range, xml::ElementChildren(doc, doc.root()));
  ASSERT_EQ(from_range.size(), 3u);
  EXPECT_EQ(doc.label(from_range[0]), "a");
  EXPECT_EQ(doc.label(from_range[2]), "c");

  // Empty and element-free parents.
  EXPECT_TRUE(xml::ElementChildRange(doc, from_range[0]).empty());
  EXPECT_FALSE(xml::ElementChildRange(doc, doc.root()).empty());
}

TEST(BindingTest, LabelIndexSymbolBuckets) {
  auto alphabet = std::make_shared<Alphabet>();
  Symbol item = alphabet->Intern("item");
  ASSERT_OK_AND_ASSIGN(
      xml::Document doc,
      xml::ParseXml("<po><item/><item/><other/></po>"));

  // Unbound build: no symbol buckets.
  xml::LabelIndex unbound_index = xml::LabelIndex::Build(doc);
  EXPECT_FALSE(unbound_index.HasSymbolBuckets());
  EXPECT_TRUE(unbound_index.Instances(item).empty());

  ASSERT_OK(doc.Bind(alphabet));
  xml::LabelIndex index = xml::LabelIndex::Build(doc);
  EXPECT_TRUE(index.HasSymbolBuckets());
  EXPECT_EQ(index.Instances(item).size(), 2u);
  EXPECT_EQ(index.Instances(item), index.Instances("item"));
  // "po" and "other" are out of Σ: string index only, marker set.
  EXPECT_EQ(index.Instances("other").size(), 1u);
  EXPECT_NE(index.FirstUnbound(), xml::kInvalidNode);
  EXPECT_EQ(index.FirstUnbound(), doc.root());  // first in document order
}

TEST(BindingTest, EditorTracksOldAndNewSymbols) {
  auto alphabet = std::make_shared<Alphabet>();
  Symbol a = alphabet->Intern("a");
  Symbol b = alphabet->Intern("b");
  Symbol r = alphabet->Intern("r");

  ASSERT_OK_AND_ASSIGN(xml::Document doc, xml::ParseXml("<r><a/></r>"));
  ASSERT_OK(doc.Bind(alphabet));
  xml::NodeId child = xml::ElementChildren(doc, doc.root())[0];

  xml::DocumentEditor editor(&doc);
  ASSERT_OK(editor.RenameElement(child, "b"));
  ASSERT_OK_AND_ASSIGN(xml::NodeId inserted,
                       editor.InsertElementAfter(child, "a"));
  xml::ModificationIndex mods = editor.Seal();

  // Renamed node: old symbol is the pre-edit one, new is the current one.
  EXPECT_EQ(mods.OldSymbol(doc, child), std::optional<Symbol>(a));
  EXPECT_EQ(mods.NewSymbol(doc, child), std::optional<Symbol>(b));
  // Inserted node: no old symbol, new symbol resolves.
  EXPECT_EQ(mods.OldSymbol(doc, inserted), std::nullopt);
  EXPECT_EQ(mods.NewSymbol(doc, inserted), std::optional<Symbol>(a));
  // Untouched root: both sides are its (unchanged) symbol.
  EXPECT_EQ(mods.OldSymbol(doc, doc.root()), std::optional<Symbol>(r));
  EXPECT_EQ(mods.NewSymbol(doc, doc.root()), std::optional<Symbol>(r));
}

TEST(BindingTest, EditorOldSymbolAfterBindLaterThanEdit) {
  // Edits on an UNBOUND document, bound afterwards: OldSymbol re-resolves
  // the stored old label through the now-bound alphabet.
  auto alphabet = std::make_shared<Alphabet>();
  Symbol a = alphabet->Intern("a");
  alphabet->Intern("b");
  alphabet->Intern("r");

  ASSERT_OK_AND_ASSIGN(xml::Document doc, xml::ParseXml("<r><a/></r>"));
  xml::NodeId child = xml::ElementChildren(doc, doc.root())[0];
  xml::DocumentEditor editor(&doc);
  ASSERT_OK(editor.RenameElement(child, "b"));
  xml::ModificationIndex mods = editor.Seal();

  ASSERT_OK(doc.Bind(alphabet));
  EXPECT_EQ(mods.OldSymbol(doc, child), std::optional<Symbol>(a));
}

}  // namespace
}  // namespace xmlreval
