// Crash-safe flight recorder: a fork()ed child enables the recorder,
// installs the fatal-signal handlers, runs a real validation, and raises
// SIGSEGV with a request span still open. The parent checks the child
// died by the signal AND left a parseable dump containing the in-flight
// request's spans. Also covers the cheap non-crash paths: ring occupancy,
// counter snapshots, on-demand dumps to an fd.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schema/dtd_parser.h"
#include "core/cast_validator.h"
#include "core/relations.h"
#include "tests/test_util.h"
#include "xml/parser.h"

#ifdef XMLREVAL_OBS_DISABLED
#define SKIP_IF_OBS_COMPILED_OUT() \
  GTEST_SKIP() << "instrumentation compiled out (XMLREVAL_OBS_DISABLED)"
#else
#define SKIP_IF_OBS_COMPILED_OUT() (void)0
#endif

// Sanitizers intercept SIGSEGV for their own reporting and do not compose
// with fork()+re-raise; the crash test is a plain-build-only check.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define XMLREVAL_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define XMLREVAL_UNDER_SANITIZER 1
#endif
#endif

namespace xmlreval::obs {
namespace {

std::string Slurp(const std::string& path) {
  std::string out;
  char buffer[4096];
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return out;
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) out.append(buffer, n);
  ::close(fd);
  return out;
}

// Runs one real cast validation so the child's ring holds genuine spans.
void RunOneValidation() {
  auto alphabet = std::make_shared<schema::Alphabet>();
  auto src = schema::ParseDtd(
      "<!ELEMENT feed (entry*)><!ELEMENT entry (#PCDATA)>", alphabet);
  auto tgt = schema::ParseDtd(
      "<!ELEMENT feed ((entry|note)*)><!ELEMENT entry (#PCDATA)>"
      "<!ELEMENT note (#PCDATA)>",
      alphabet);
  if (!src.ok() || !tgt.ok()) _exit(10);
  auto relations = core::TypeRelations::Compute(&*src, &*tgt);
  if (!relations.ok()) _exit(11);
  auto doc = xml::ParseXml("<feed><entry>a</entry><entry>b</entry></feed>");
  if (!doc.ok()) _exit(12);
  core::ValidationReport report =
      core::CastValidator(&*relations).Validate(*doc);
  if (!report.valid) _exit(13);
}

TEST(ObsFlightTest, SigsegvMidValidationLeavesParseableDump) {
  SKIP_IF_OBS_COMPILED_OUT();
#ifdef XMLREVAL_UNDER_SANITIZER
  GTEST_SKIP() << "fatal-signal re-raise does not compose with sanitizers";
#else
  const std::string dump = ::testing::TempDir() + "obs_flight_crash.json";
  ::unlink(dump.c_str());

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: never returns. gtest machinery must not run here — every
    // exit path is _exit or a fatal signal.
    FlightRecorder::Global().Enable(128);
    InstallCrashHandlers(dump.c_str());
    SetTraceEnabled(true);
    RunOneValidation();
    RequestScope request;
    Span span("crash.zone");
    raise(SIGSEGV);  // handler dumps, resets, re-raises → child dies
    _exit(14);       // unreachable if the handler chain works
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited normally (code " << WEXITSTATUS(status)
      << ") instead of dying by signal";
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::string text = Slurp(dump);
  ASSERT_FALSE(text.empty()) << "no crash dump at " << dump;
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* recorder = parsed->Find("flight_recorder");
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(recorder->Find("reason")->AsString(), "SIGSEGV");

  // The in-flight request's open span made it into the dump.
  const json::Value* active = recorder->Find("active_spans");
  ASSERT_NE(active, nullptr);
  ASSERT_TRUE(active->is_array());
  bool saw_crash_zone = false;
  for (const json::Value& s : active->AsArray()) {
    if (s.Find("name")->AsString() == "crash.zone") saw_crash_zone = true;
  }
  EXPECT_TRUE(saw_crash_zone);

  // The validation that ran BEFORE the crash left completed spans in the
  // per-thread ring.
  const json::Value* threads = recorder->Find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_TRUE(threads->is_array());
  bool saw_traverse = false;
  for (const json::Value& t : threads->AsArray()) {
    for (const json::Value& e : t.Find("events")->AsArray()) {
      if (e.Find("name")->AsString() == "cast.traverse") saw_traverse = true;
    }
  }
  EXPECT_TRUE(saw_traverse);
  ::unlink(dump.c_str());
#endif
}

TEST(ObsFlightTest, OnDemandDumpCarriesRegisteredCounters) {
  SKIP_IF_OBS_COMPILED_OUT();
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Enable(128);
  Counter* counter = MetricsRegistry::Default().counter(
      "xmlreval_flight_test_counter");
  counter->Add(41);
  recorder.RegisterCounter("xmlreval_flight_test_counter", counter);
  counter->Add(1);

  { Span span("flight.work"); }

  const std::string path = ::testing::TempDir() + "obs_flight_demand.json";
  ASSERT_TRUE(recorder.DumpToFile(path.c_str(), "on-demand"));
  auto parsed = json::Parse(Slurp(path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* fr = parsed->Find("flight_recorder");
  ASSERT_NE(fr, nullptr);
  EXPECT_EQ(fr->Find("reason")->AsString(), "on-demand");
  bool saw_counter = false;
  for (const json::Value& c : fr->Find("counters")->AsArray()) {
    if (c.Find("name")->AsString() == "xmlreval_flight_test_counter") {
      saw_counter = true;
      EXPECT_EQ(c.Find("value")->AsNumber(), 42.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  bool saw_work = false;
  for (const json::Value& t : fr->Find("threads")->AsArray()) {
    for (const json::Value& e : t.Find("events")->AsArray()) {
      if (e.Find("name")->AsString() == "flight.work") saw_work = true;
    }
  }
  EXPECT_TRUE(saw_work);
  EXPECT_GE(recorder.dump_count(), 1u);
  ::unlink(path.c_str());
  recorder.Disable();
}

TEST(ObsFlightTest, OccupancyGaugeSeesRecordedSpans) {
  SKIP_IF_OBS_COMPILED_OUT();
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Enable(128);
  { Span span("occupancy.probe"); }
  size_t total = 0;
  for (size_t slot = 0; slot < FlightRecorder::kMaxThreads; ++slot) {
    total += recorder.SlotOccupancy(slot);
  }
  EXPECT_GT(total, 0u);
  recorder.Disable();
}

}  // namespace
}  // namespace xmlreval::obs
