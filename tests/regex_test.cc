#include "automata/regex.h"

#include <gtest/gtest.h>

#include "automata/glushkov.h"
#include "automata/regex_parser.h"
#include "tests/test_util.h"

namespace xmlreval::automata {
namespace {

TEST(RegexParserTest, ParsesAtoms) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("shipTo", &alphabet));
  EXPECT_EQ(r->kind(), RegexKind::kSymbol);
  EXPECT_EQ(alphabet.Name(r->symbol()), "shipTo");
}

TEST(RegexParserTest, ParsesEpsilon) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("()", &alphabet));
  EXPECT_EQ(r->kind(), RegexKind::kEpsilon);
}

TEST(RegexParserTest, ParsesSequenceChoicePostfix) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r,
                       ParseRegex("(a, b? , (c | d)*)+", &alphabet));
  EXPECT_EQ(r->kind(), RegexKind::kPlus);
  const RegexPtr& seq = r->child();
  ASSERT_EQ(seq->kind(), RegexKind::kConcat);
  ASSERT_EQ(seq->children().size(), 3u);
  EXPECT_EQ(seq->children()[0]->kind(), RegexKind::kSymbol);
  EXPECT_EQ(seq->children()[1]->kind(), RegexKind::kOptional);
  EXPECT_EQ(seq->children()[2]->kind(), RegexKind::kStar);
  EXPECT_EQ(seq->children()[2]->child()->kind(), RegexKind::kAlternate);
}

TEST(RegexParserTest, ParsesBoundedRepeats) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("a{2,5}", &alphabet));
  EXPECT_EQ(r->kind(), RegexKind::kRepeat);
  EXPECT_EQ(r->min(), 2u);
  EXPECT_EQ(r->max(), 5u);
  ASSERT_OK_AND_ASSIGN(RegexPtr unbounded, ParseRegex("a{3,*}", &alphabet));
  EXPECT_EQ(unbounded->max(), kUnbounded);
  ASSERT_OK_AND_ASSIGN(RegexPtr exact, ParseRegex("a{4}", &alphabet));
  EXPECT_EQ(exact->min(), 4u);
  EXPECT_EQ(exact->max(), 4u);
}

TEST(RegexParserTest, RejectsMalformedInput) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseRegex("", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("(a", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a | | b", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a{5,2}", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a b", &alphabet).ok());  // juxtaposition invalid
  EXPECT_FALSE(ParseRegex("a,", &alphabet).ok());
}

TEST(RegexTest, ConcatFlattensAndSimplifies) {
  Alphabet alphabet;
  RegexPtr a = Regex::Sym(alphabet.Intern("a"));
  RegexPtr b = Regex::Sym(alphabet.Intern("b"));
  RegexPtr c = Regex::Sym(alphabet.Intern("c"));
  RegexPtr nested = Regex::Concat({Regex::Concat({a, b}), c});
  ASSERT_EQ(nested->kind(), RegexKind::kConcat);
  EXPECT_EQ(nested->children().size(), 3u);
  EXPECT_EQ(Regex::Concat({})->kind(), RegexKind::kEpsilon);
  EXPECT_EQ(Regex::Concat({a})->kind(), RegexKind::kSymbol);
  EXPECT_EQ(Regex::Alternate({})->kind(), RegexKind::kEmptySet);
}

TEST(RegexTest, SymbolsUsedDeduplicates) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("(a, b, a, c|a)", &alphabet));
  EXPECT_EQ(r->SymbolsUsed().size(), 3u);
}

TEST(RegexTest, ToStringRoundTripsStructure) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("(a,(b|c)*,d?)", &alphabet));
  std::string text = r->ToString(alphabet);
  ASSERT_OK_AND_ASSIGN(RegexPtr again, ParseRegex(text, &alphabet));
  EXPECT_EQ(again->ToString(alphabet), text);
}

TEST(ExpandRepeatsTest, BoundedRepeatMatchesExpectedLanguage) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("a{2,4}", &alphabet));
  ASSERT_OK_AND_ASSIGN(RegexPtr expanded, ExpandRepeats(r));
  ASSERT_OK_AND_ASSIGN(Dfa dfa, CompileRegex(expanded, alphabet.size()));
  Symbol a = *alphabet.Find("a");
  for (size_t len = 0; len <= 6; ++len) {
    std::vector<Symbol> word(len, a);
    EXPECT_EQ(dfa.Accepts(word), len >= 2 && len <= 4) << "len=" << len;
  }
}

TEST(ExpandRepeatsTest, UnboundedRepeatMatchesExpectedLanguage) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("a{3,*}", &alphabet));
  ASSERT_OK_AND_ASSIGN(Dfa dfa, CompileRegex(r, alphabet.size()));
  Symbol a = *alphabet.Find("a");
  for (size_t len = 0; len <= 8; ++len) {
    std::vector<Symbol> word(len, a);
    EXPECT_EQ(dfa.Accepts(word), len >= 3) << "len=" << len;
  }
}

TEST(ExpandRepeatsTest, ZeroMaxIsEpsilon) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("a{0,0}", &alphabet));
  ASSERT_OK_AND_ASSIGN(RegexPtr expanded, ExpandRepeats(r));
  EXPECT_EQ(expanded->kind(), RegexKind::kEpsilon);
}

TEST(ExpandRepeatsTest, RejectsBlowup) {
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("(a{1000}){1000}", &alphabet));
  Result<RegexPtr> expanded = ExpandRepeats(r, 100000);
  ASSERT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.status().code(), StatusCode::kUnsupported);
}

TEST(ExpandRepeatsTest, ExpansionPreservesDeterminism) {
  // The nested-optional encoding of {m,n} must stay 1-unambiguous.
  Alphabet alphabet;
  ASSERT_OK_AND_ASSIGN(RegexPtr r, ParseRegex("(a{0,3}, b)", &alphabet));
  ASSERT_OK_AND_ASSIGN(RegexPtr expanded, ExpandRepeats(r));
  ASSERT_OK_AND_ASSIGN(GlushkovResult g,
                       BuildGlushkov(expanded, alphabet.size()));
  EXPECT_TRUE(g.one_unambiguous);
}

}  // namespace
}  // namespace xmlreval::automata
