// End-to-end tests of the paper's two evaluation scenarios (§6):
//   Experiment 1 — cast from the Figure 1a schema (billTo optional) to the
//   Figure 2 schema (billTo required): O(1) work for the cast validator.
//   Experiment 2 — cast from Figure 2 with quantity < 200 to quantity
//   < 100: linear, but visiting only the quantity values.

#include <gtest/gtest.h>

#include <memory>

#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"

namespace xmlreval {
namespace {

using core::CastValidator;
using core::FullValidator;
using core::TypeRelations;
using core::ValidationReport;
using schema::ParseXsd;
using schema::Schema;

class PaperScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_ = std::make_shared<automata::Alphabet>();
    auto source = ParseXsd(workload::kSourceXsd, alphabet_);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    source_ = std::make_unique<Schema>(std::move(source).value());
    auto target = ParseXsd(workload::kTargetXsd, alphabet_);
    ASSERT_TRUE(target.ok()) << target.status().ToString();
    target_ = std::make_unique<Schema>(std::move(target).value());
    auto relaxed = ParseXsd(workload::kRelaxedQuantityXsd, alphabet_);
    ASSERT_TRUE(relaxed.ok()) << relaxed.status().ToString();
    relaxed_ = std::make_unique<Schema>(std::move(relaxed).value());
  }

  std::shared_ptr<automata::Alphabet> alphabet_;
  std::unique_ptr<Schema> source_, target_, relaxed_;
};

TEST_F(PaperScenarioTest, GeneratedDocumentsAreSourceValid) {
  for (size_t items : {0u, 1u, 2u, 50u}) {
    workload::PoGeneratorOptions options;
    options.item_count = items;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    FullValidator validator(source_.get());
    ValidationReport report = validator.Validate(doc);
    EXPECT_TRUE(report.valid) << "items=" << items << ": " << report.violation;
  }
}

TEST_F(PaperScenarioTest, Experiment1AcceptsWhenBillToPresent) {
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(source_.get(), target_.get()));
  CastValidator cast(&relations);
  FullValidator full(target_.get());

  workload::PoGeneratorOptions options;
  options.item_count = 50;
  xml::Document doc = workload::GeneratePurchaseOrder(options);

  ValidationReport cast_report = cast.Validate(doc);
  ValidationReport full_report = full.Validate(doc);
  EXPECT_TRUE(full_report.valid) << full_report.violation;
  EXPECT_TRUE(cast_report.valid) << cast_report.violation;
}

TEST_F(PaperScenarioTest, Experiment1RejectsWhenBillToMissing) {
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(source_.get(), target_.get()));
  CastValidator cast(&relations);
  FullValidator full(target_.get());

  workload::PoGeneratorOptions options;
  options.item_count = 10;
  options.include_bill_to = false;
  xml::Document doc = workload::GeneratePurchaseOrder(options);

  // Still valid against the SOURCE schema (billTo optional there).
  EXPECT_TRUE(FullValidator(source_.get()).Validate(doc).valid);
  EXPECT_FALSE(full.Validate(doc).valid);
  EXPECT_FALSE(cast.Validate(doc).valid);
}

TEST_F(PaperScenarioTest, Experiment1CastWorkIsConstantInDocumentSize) {
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(source_.get(), target_.get()));
  CastValidator cast(&relations);

  uint64_t visited_small = 0, visited_large = 0;
  {
    workload::PoGeneratorOptions options;
    options.item_count = 2;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    visited_small = cast.Validate(doc).counters.nodes_visited;
  }
  {
    workload::PoGeneratorOptions options;
    options.item_count = 1000;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    visited_large = cast.Validate(doc).counters.nodes_visited;
  }
  EXPECT_EQ(visited_small, visited_large)
      << "experiment 1 cast validation must not depend on document size";
  EXPECT_LE(visited_large, 8u);  // root + its three children, roughly
}

TEST_F(PaperScenarioTest, Experiment1FullValidationIsLinear) {
  FullValidator full(target_.get());
  workload::PoGeneratorOptions small_options, large_options;
  small_options.item_count = 2;
  large_options.item_count = 200;
  xml::Document small = workload::GeneratePurchaseOrder(small_options);
  xml::Document large = workload::GeneratePurchaseOrder(large_options);
  uint64_t visited_small = full.Validate(small).counters.nodes_visited;
  uint64_t visited_large = full.Validate(large).counters.nodes_visited;
  EXPECT_GT(visited_large, visited_small + 190 * 8)
      << "full validation must visit every item subtree";
}

TEST_F(PaperScenarioTest, Experiment2AcceptsSmallQuantities) {
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(relaxed_.get(), target_.get()));
  CastValidator cast(&relations);

  workload::PoGeneratorOptions options;
  options.item_count = 100;
  options.quantity_max = 99;  // all quantities satisfy the tighter facet
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  ASSERT_TRUE(FullValidator(relaxed_.get()).Validate(doc).valid);

  ValidationReport report = cast.Validate(doc);
  EXPECT_TRUE(report.valid) << report.violation;
  // One simple check per item (its quantity), plus the comment-free rest.
  EXPECT_EQ(report.counters.simple_checks, 100u);
}

TEST_F(PaperScenarioTest, Experiment2RejectsLargeQuantities) {
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(relaxed_.get(), target_.get()));
  CastValidator cast(&relations);

  workload::PoGeneratorOptions options;
  options.item_count = 20;
  options.quantity_min = 150;  // valid under relaxed (<200), not under target
  options.quantity_max = 199;
  xml::Document doc = workload::GeneratePurchaseOrder(options);
  ASSERT_TRUE(FullValidator(relaxed_.get()).Validate(doc).valid);
  ASSERT_FALSE(FullValidator(target_.get()).Validate(doc).valid);

  ValidationReport report = cast.Validate(doc);
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.violation.find("maxExclusive"), std::string::npos)
      << report.violation;
}

TEST_F(PaperScenarioTest, Experiment2CastVisitsFewerNodesThanFull) {
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(relaxed_.get(), target_.get()));
  CastValidator cast(&relations);
  FullValidator full(target_.get());

  for (size_t items : {2u, 50u, 200u}) {
    workload::PoGeneratorOptions options;
    options.item_count = items;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    ValidationReport cast_report = cast.Validate(doc);
    ValidationReport full_report = full.Validate(doc);
    ASSERT_TRUE(cast_report.valid) << cast_report.violation;
    ASSERT_TRUE(full_report.valid) << full_report.violation;
    EXPECT_LT(cast_report.counters.nodes_visited,
              full_report.counters.nodes_visited)
        << "items=" << items;
  }
}

TEST_F(PaperScenarioTest, CastAgreesWithFullValidationOnVerdicts) {
  // Cross-check on a grid of quantity ranges straddling the facet boundary.
  ASSERT_OK_AND_ASSIGN(TypeRelations relations,
                       TypeRelations::Compute(relaxed_.get(), target_.get()));
  CastValidator cast(&relations);
  FullValidator full(target_.get());
  for (int lo : {1, 50, 99, 100, 150}) {
    workload::PoGeneratorOptions options;
    options.item_count = 8;
    options.quantity_min = lo;
    options.quantity_max = lo + 5;
    options.seed = 1000 + lo;
    xml::Document doc = workload::GeneratePurchaseOrder(options);
    ASSERT_TRUE(FullValidator(relaxed_.get()).Validate(doc).valid);
    EXPECT_EQ(cast.Validate(doc).valid, full.Validate(doc).valid)
        << "quantity_min=" << lo;
  }
}

}  // namespace
}  // namespace xmlreval
