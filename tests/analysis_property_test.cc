// Soundness property tests for the static update analyzer: on RANDOM edit
// streams over random schema pairs and the paper's purchase-order pair, a
// decided stream verdict must agree with ground truth —
//
//   kSafe  => the committed document is target-valid,
//   kFatal => the committed document is target-INVALID,
//
// and the ModValidator fallback must agree with full validation on every
// stream (decided or not). The suite applies over ten thousand random
// edits in total; any unsound table entry, gate hole, or missing
// entanglement rule in StreamSession::Classify shows up as a mismatch.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "analysis/stream_session.h"
#include "analysis/update_analyzer.h"
#include "core/full_validator.h"
#include "core/mod_validator.h"
#include "core/relations.h"
#include "schema/xsd_parser.h"
#include "tests/test_util.h"
#include "workload/po_generator.h"
#include "workload/po_schemas.h"
#include "workload/random_docs.h"
#include "workload/random_schemas.h"
#include "workload/update_workload.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlreval::analysis {
namespace {

using core::FullValidator;
using core::ModValidator;
using core::TypeRelations;
using core::ValidationReport;
using schema::Schema;

struct AnalyzedPair {
  std::shared_ptr<schema::Alphabet> alphabet;
  std::unique_ptr<Schema> source;
  std::unique_ptr<Schema> target;
  std::shared_ptr<const TypeRelations> relations;
  std::unique_ptr<UpdateAnalyzer> analyzer;
};

// Mirrors pipeline_property_test.cc: a random source schema, a mutated
// target, and the compiled analyzer on top of their relations.
AnalyzedPair MakeRandomPair(uint64_t seed) {
  AnalyzedPair pair;
  pair.alphabet = std::make_shared<schema::Alphabet>();
  workload::RandomSchemaOptions schema_options;
  schema_options.seed = seed;
  schema_options.complex_types = 3 + seed % 4;
  schema_options.all_group_percent = 25;
  auto source = workload::GenerateRandomSchema(pair.alphabet, schema_options);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  pair.source = std::make_unique<Schema>(std::move(source).value());
  workload::MutationOptions mutation_options;
  mutation_options.seed = seed * 7 + 1;
  mutation_options.mutations = 1 + seed % 4;
  auto target = workload::MutateSchema(*pair.source, mutation_options);
  EXPECT_TRUE(target.ok()) << target.status().ToString();
  pair.target = std::make_unique<Schema>(std::move(target).value());
  auto relations =
      TypeRelations::Compute(pair.source.get(), pair.target.get());
  EXPECT_TRUE(relations.ok()) << relations.status().ToString();
  pair.relations =
      std::make_shared<const TypeRelations>(std::move(relations).value());
  auto analyzer = UpdateAnalyzer::Compile(pair.relations);
  EXPECT_TRUE(analyzer.ok()) << analyzer.status().ToString();
  pair.analyzer =
      std::make_unique<UpdateAnalyzer>(std::move(analyzer).value());
  return pair;
}

AnalyzedPair MakeXsdPair(const char* source_xsd, const char* target_xsd) {
  AnalyzedPair pair;
  pair.alphabet = std::make_shared<schema::Alphabet>();
  auto source = schema::ParseXsd(source_xsd, pair.alphabet);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  pair.source = std::make_unique<Schema>(std::move(source).value());
  auto target = schema::ParseXsd(target_xsd, pair.alphabet);
  EXPECT_TRUE(target.ok()) << target.status().ToString();
  pair.target = std::make_unique<Schema>(std::move(target).value());
  auto relations =
      TypeRelations::Compute(pair.source.get(), pair.target.get());
  EXPECT_TRUE(relations.ok()) << relations.status().ToString();
  pair.relations =
      std::make_shared<const TypeRelations>(std::move(relations).value());
  auto analyzer = UpdateAnalyzer::Compile(pair.relations);
  EXPECT_TRUE(analyzer.ok()) << analyzer.status().ToString();
  pair.analyzer =
      std::make_unique<UpdateAnalyzer>(std::move(analyzer).value());
  return pair;
}

// Aggregates across streams, so the tests can assert the property is not
// vacuously true (decided streams actually occur).
struct Tally {
  size_t edits = 0;
  size_t streams = 0;
  size_t safe_streams = 0;
  size_t fatal_streams = 0;
  size_t safe_ops = 0;
  size_t fatal_ops = 0;
};

// Runs one stream through a classifying session and checks every
// soundness obligation against ModValidator and full validation.
void RunStream(const AnalyzedPair& pair, xml::Document* doc,
               const workload::UpdateWorkloadOptions& options,
               const char* what, Tally* tally) {
  StreamSession session(pair.analyzer.get(), doc);
  auto applied = workload::ApplyRandomUpdates(doc, &session, options);
  EXPECT_TRUE(applied.ok()) << applied.status().ToString();
  if (!applied.ok()) return;

  StreamVerdict sv = session.Classify();
  xml::ModificationIndex mods = session.Seal();
  ModValidator modval(pair.relations.get());
  ValidationReport incremental = modval.Validate(*doc, mods);
  EXPECT_TRUE(session.Commit().ok());
  FullValidator target_full(pair.target.get());
  ValidationReport ground = target_full.Validate(*doc);

  EXPECT_EQ(incremental.valid, ground.valid)
      << what << " seed " << options.seed
      << ": ModValidator disagrees with full validation\n  incremental: "
      << incremental.violation << "\n  full: " << ground.violation
      << "\n  doc:\n"
      << xml::Serialize(*doc);
  if (sv.verdict == Safety::kSafe) {
    EXPECT_TRUE(ground.valid)
        << what << " seed " << options.seed
        << ": stream classified SAFE but the committed document is "
           "target-invalid (" << ground.violation << ")\n  doc:\n"
        << xml::Serialize(*doc);
  } else if (sv.verdict == Safety::kFatal) {
    EXPECT_FALSE(ground.valid)
        << what << " seed " << options.seed
        << ": stream classified FATAL (" << sv.reason
        << ") but the committed document is target-valid\n  doc:\n"
        << xml::Serialize(*doc);
  }
  tally->edits += applied->size();
  tally->streams += 1;
  tally->safe_streams += sv.verdict == Safety::kSafe;
  tally->fatal_streams += sv.verdict == Safety::kFatal;
  tally->safe_ops += sv.safe_ops;
  tally->fatal_ops += sv.fatal_ops;
}

// The headline property: >= 10k random edits across random schema pairs,
// every decided verdict checked against ground truth.
TEST(AnalysisProperty, SoundOnRandomSchemaPairs) {
  Tally tally;
  for (uint64_t pair_seed = 1; pair_seed <= 12; ++pair_seed) {
    AnalyzedPair pair = MakeRandomPair(pair_seed);
    for (uint64_t doc_seed = 1; doc_seed <= 32; ++doc_seed) {
      workload::RandomDocOptions doc_options;
      doc_options.seed = doc_seed * 13 + pair_seed;
      doc_options.root_label = "root";
      doc_options.max_elements = 40;
      auto doc = workload::SampleDocument(*pair.source, doc_options);
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
      ASSERT_OK(doc->Bind(pair.alphabet));

      workload::UpdateWorkloadOptions options;
      options.seed = pair_seed * 1000 + doc_seed;
      options.edit_count = 28;
      RunStream(pair, &*doc, options, "random pair", &tally);
      if (HasFatalFailure()) return;
    }
  }
  // The acceptance floor: this suite alone applies >= 10k random edits.
  EXPECT_GE(tally.edits, 10000u) << "workload generator starved";
  // Non-vacuity: the seeds are fixed, so these floors are deterministic.
  // Decided streams AND decided per-op verdicts must actually occur.
  EXPECT_GT(tally.fatal_streams, 0u);
  EXPECT_GT(tally.safe_ops, 0u);
  EXPECT_GT(tally.fatal_ops, 0u);
}

// The paper's purchase-order evolution pair (Figure 1a -> Figure 2) plus
// the identity pair, with mixed on-/off-model label pools so safe, fatal,
// unknown, and downgraded verdicts all occur.
TEST(AnalysisProperty, SoundOnPurchaseOrderPairs) {
  struct Case {
    const char* name;
    const char* source;
    const char* target;
  };
  const Case cases[] = {
      {"po evolution", workload::kSourceXsd, workload::kTargetXsd},
      {"po identity", workload::kTargetXsd, workload::kTargetXsd},
  };
  Tally tally;
  for (const Case& c : cases) {
    AnalyzedPair pair = MakeXsdPair(c.source, c.target);
    for (uint64_t seed = 1; seed <= 40; ++seed) {
      workload::PoGeneratorOptions po_options;
      po_options.item_count = 3 + seed % 8;
      po_options.seed = seed * 101;
      xml::Document doc = workload::GeneratePurchaseOrder(po_options);
      ASSERT_OK(doc.Bind(pair.alphabet));

      workload::UpdateWorkloadOptions options;
      options.seed = seed * 9 + 4;
      options.edit_count = 20;
      if (seed % 3 == 0) {
        // Every third stream draws from off-model pools: those verdicts
        // must degrade to unknown, never to a wrong safe/fatal.
        options.rename_safe_labels = {"item", "comment"};
        options.rename_unsafe_labels = {"__wild", "__offmodel"};
        options.insert_safe_labels = {"comment"};
        options.insert_unsafe_labels = {"__wild"};
        options.safe_percent = 50;
      }
      RunStream(pair, &doc, options, c.name, &tally);
      if (HasFatalFailure()) return;
    }
  }
  EXPECT_GE(tally.edits, 1000u) << "workload generator starved";
  EXPECT_GT(tally.fatal_streams, 0u);
  EXPECT_GT(tally.safe_ops, 0u);
}

}  // namespace
}  // namespace xmlreval::analysis
