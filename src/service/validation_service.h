// ValidationService — the serving façade over the revalidation core.
//
// One object wires together the pieces a production deployment of the
// paper's §2 broker needs: a SchemaRegistry (parse each schema once), a
// RelationsCache (compute each (S, S') fixpoint once, share it across all
// threads), and dispatch to the existing validators. Callers hold
// SchemaHandles and documents; the service resolves everything else.
//
//   service.registry().RegisterDtd("orders", dtd_text);
//   auto report = service.Cast(producer, consumer, doc);
//
// Synchronous entry points (Validate / Cast / CastWithMods) run on the
// caller's thread and are safe to call from any number of threads
// concurrently — including concurrently with Register* calls, which the
// registry's reader/writer lock serializes against the alphabet reads.
//
// SubmitBatch is the throughput path: text-in/verdict-out items fanned out
// over a fixed-size work-stealing executor behind a bounded injection
// queue (backpressure, not unbounded buffering), returning a future of
// per-item results in input order. Orthogonally, Options::intra_doc_threads
// routes single large casts through ParallelCastValidator on a second
// executor — latency for one big document instead of throughput across
// many (the two compose: a batch of large documents uses both).
//
// Observability: every service owns a private obs::MetricsRegistry
// (metrics()) so instances — and tests — never share counters. Published
// there, all under one consistent snapshot path:
//
//   xmlreval_requests_total                any request (sync + batch item)
//   xmlreval_op_requests_total{op=...}     dispatched per op, ok or error
//   xmlreval_ops_ok_total{op=...}          per op, status-OK only
//   xmlreval_verdicts_total{verdict=...}   valid / invalid / error
//   xmlreval_request_latency_us{op=...}    per-op latency histogram
//   xmlreval_pair_request_latency_us{pair} per (S, S') cast latency
//   xmlreval_batch_queue_wait_us           enqueue → worker pickup
//   xmlreval_batch_service_us              worker parse+bind+validate
//   xmlreval_batch_inflight                items currently in the pipeline
//   xmlreval_executor_queue_depth{executor} HIGH-WATER queue depth since
//                                          the previous snapshot,
//                                          batch / intra_doc
//   xmlreval_trace_buffered_events         TraceSink ring fill
//   xmlreval_trace_dropped_events          ring overwrites since Clear
//   xmlreval_trace_tail_dropped_events     events tail sampling discarded
//   xmlreval_trace_staged_events           events staged, unresolved
//   xmlreval_flight_ring_occupancy{thread} flight-recorder ring fill
//   xmlreval_edit_ops_total{verdict=...}   stream ops after composition
//   xmlreval_edit_streams_total{path=...}  short_circuit_safe / _fatal /
//                                          fallback
//   xmlreval_stream_bytes_total            bytes fed to streaming casts
//   xmlreval_stream_bytes_skipped_total    bytes the skip scanner bypassed
//   xmlreval_stream_{bytes_skipped,max_live_frames,peak_carry_bytes}
//                                          last streaming request's gauges
//   xmlreval_{nodes_visited,dfa_steps,subtrees_skipped}_total
//
// plus the RelationsCache's metrics (same registry). Counter updates for
// one request happen under a shared lock; counters() takes the exclusive
// side, so a snapshot is internally consistent: requests == valid +
// invalid + errors holds at every snapshot, and each op's latency
// histogram count equals its op_requests counter (while the runtime obs
// switch is on — histograms pause when it is off, counters never do).
// Batch items that fail before dispatch (malformed XML, bind failure)
// count as requests + errors but belong to no op.

#ifndef XMLREVAL_SERVICE_VALIDATION_SERVICE_H_
#define XMLREVAL_SERVICE_VALIDATION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/stream_session.h"
#include "analysis/update_analyzer.h"
#include "common/executor.h"
#include "common/result.h"
#include "core/cast_validator.h"
#include "core/full_validator.h"
#include "core/mod_validator.h"
#include "core/parallel_cast_validator.h"
#include "core/report.h"
#include "core/streaming_validator.h"
#include "obs/metrics.h"
#include "service/plan_cache.h"
#include "service/relations_cache.h"
#include "service/schema_registry.h"
#include "xml/editor.h"
#include "xml/tree.h"

namespace xmlreval::service {

class ValidationService {
 public:
  struct Options {
    RelationsCache::Options cache;
    core::CastValidator::Options cast;
    core::ModValidator::Options mods;
    /// Batch pipeline sizing; the executor is created lazily on the first
    /// SubmitBatch. threads == 0 means hardware concurrency.
    size_t batch_threads = 0;
    size_t batch_queue_capacity = 256;
    /// Intra-document parallelism for Cast: 0 disables it (every cast runs
    /// the serial engine); N > 0 creates a lazily-started N-worker
    /// executor and routes casts of documents with at least
    /// `intra_doc_min_nodes` nodes through ParallelCastValidator. Small
    /// documents stay serial — fan-out overhead would swamp them.
    size_t intra_doc_threads = 0;
    size_t intra_doc_min_nodes = 4096;
    /// Frontier size at which a cast task donates half its pending work
    /// (ParallelCastValidator::Options::spawn_threshold). 0 = adaptive:
    /// calibrated from a timed serial prefix walk at first use.
    size_t intra_doc_spawn_threshold = 0;
    /// Enforce the §3.2 precondition on Cast: full-validate against the
    /// SOURCE schema first; a source-invalid document fails with
    /// kFailedPrecondition instead of an arbitrary verdict. Off by default
    /// — the broker regime trusts producers, and the check costs a full
    /// traversal, exactly what casting is meant to avoid.
    bool check_cast_precondition = false;
    /// Directory of persistent compiled cast plans (service/plan_cache.h).
    /// Empty = no plan cache: RegisterPlanPair always compiles cold and
    /// never touches disk.
    std::string plan_cache_dir;
    /// Batch kCast items whose XML text is at least this many bytes are
    /// served by the incremental streaming cast engine instead of the DOM
    /// pipeline: no parse, no bind, no tree — live memory is O(depth), and
    /// subsumed subtrees are byte-skipped without tokenization. 0 disables
    /// the routing (every batch item builds a DOM). The sync CastStream /
    /// StartCastStream entry points always stream regardless.
    size_t stream_threshold_bytes = 0;
  };

  /// Service-level request counters (cache internals live in
  /// RelationsCache::Stats; these count traffic). Produced by counters()
  /// as one internally consistent snapshot:
  /// requests == valid + invalid + errors always holds.
  struct Counters {
    uint64_t requests = 0;  // sync + batch items, all ops
    uint64_t valid = 0;
    uint64_t invalid = 0;
    uint64_t errors = 0;  // non-OK Status (bad handle, parse failure, ...)
    uint64_t full_validations = 0;
    uint64_t casts = 0;
    uint64_t casts_with_mods = 0;
    uint64_t batches = 0;
    uint64_t batch_items = 0;
    uint64_t nodes_visited = 0;  // summed over all successful reports
    // Edit-stream path (SubmitEditStream / AnalyzeUpdate).
    uint64_t edit_streams = 0;             // OK SubmitEditStream calls
    uint64_t streams_short_circuited = 0;  // decided without tree work
    uint64_t edit_ops_safe = 0;            // per-op verdicts, post-compose
    uint64_t edit_ops_fatal = 0;
    uint64_t edit_ops_unknown = 0;
    // Streaming cast path (CastStream / StartCastStream / batch routing).
    uint64_t cast_streams = 0;          // OK streaming cast requests
    uint64_t stream_bytes = 0;          // bytes fed to streaming sessions
    uint64_t stream_bytes_skipped = 0;  // bytes the skip scanner bypassed
  };

  explicit ValidationService(const Options& options);
  ValidationService() : ValidationService(Options{}) {}
  ValidationService(const ValidationService&) = delete;
  ValidationService& operator=(const ValidationService&) = delete;
  ~ValidationService();

  SchemaRegistry& registry() { return registry_; }
  const SchemaRegistry& registry() const { return registry_; }
  RelationsCache& cache() { return cache_; }
  const RelationsCache& cache() const { return cache_; }

  /// This service's metric namespace: its request counters/histograms and
  /// its cache's metrics. Snapshot with metrics().Snapshot().
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Binds `doc` to the registry's shared Alphabet (find-only, under the
  /// registry's read guard) so every subsequent Validate/Cast on it takes
  /// the string-free symbol path. Callers that build or parse documents
  /// themselves should bind once before the first request; ProcessItem
  /// does this automatically for batch items. Out-of-Σ labels degrade to
  /// kUnboundSymbol and are reported by the validators as usual.
  Status BindDocument(xml::Document* doc) const;

  /// Full validation (Definition 1) against a registered schema.
  Result<core::ValidationReport> Validate(SchemaHandle schema,
                                          const xml::Document& doc);

  /// Schema-cast validation (§3.2): `doc` is assumed valid under `source`
  /// (see Options::check_cast_precondition); decides validity under
  /// `target` using the cached relations.
  Result<core::ValidationReport> Cast(SchemaHandle source, SchemaHandle target,
                                      const xml::Document& doc);

  // ------------------------------------------------------------------
  // Streaming cast (no DOM)
  // ------------------------------------------------------------------

  /// A service-managed incremental cast: obtained from StartCastStream,
  /// fed chunks as they arrive, finished for the booked report. The
  /// session pins the pair's relations and holds the registry's read
  /// guard for its lifetime, so it must not outlive the service and
  /// should not be kept open across schema registrations. Use from one
  /// thread at a time.
  class CastStreamSession {
   public:
    ~CastStreamSession();
    CastStreamSession(const CastStreamSession&) = delete;
    CastStreamSession& operator=(const CastStreamSession&) = delete;

    /// Consumes the next chunk. Returns OK while the verdict is open;
    /// once decided, the deciding status (callers may stop feeding).
    Status Feed(std::string_view chunk);

    /// Ends the input, books the request into the service's counters and
    /// histograms (exactly once), and returns the report — or the parse
    /// error for bytes that were not well-formed XML. Idempotent.
    Result<core::ValidationReport> Finish();

    /// The engine's full report (byte accounting, live-frame peak);
    /// meaningful after Finish.
    const core::StreamingReport& streaming_report() const;

   private:
    friend class ValidationService;
    struct State;
    explicit CastStreamSession(std::unique_ptr<State> state);
    std::unique_ptr<State> state_;
  };

  /// Opens a streaming cast session for a registered (source, target)
  /// pair. Fails fast on bad handles or relation-computation errors
  /// (booked as a cast_stream error).
  Result<std::unique_ptr<CastStreamSession>> StartCastStream(
      SchemaHandle source, SchemaHandle target);

  /// One-shot convenience over StartCastStream: streams `text` through
  /// the incremental engine (still never builds a DOM) and returns the
  /// booked report.
  Result<core::ValidationReport> CastStream(SchemaHandle source,
                                            SchemaHandle target,
                                            std::string_view text);

  /// Cast with modifications (§3.3) over a Δ-encoded document.
  Result<core::ValidationReport> CastWithMods(
      SchemaHandle source, SchemaHandle target, const xml::Document& doc,
      const xml::ModificationIndex& mods);

  // ------------------------------------------------------------------
  // Static update-safety analysis (src/analysis/)
  // ------------------------------------------------------------------

  /// Classifies ONE prospective operation against the pre-op state of
  /// `doc` using the pair's cached UpdateAnalyzer — no tree mutation, no
  /// validation. The document must be source-valid (kSafe additionally
  /// requires the pair's root subsumption; the analyzer degrades to
  /// kUnknown when it does not hold).
  Result<analysis::OpVerdict> AnalyzeUpdate(SchemaHandle source,
                                            SchemaHandle target,
                                            const xml::Document& doc,
                                            const xml::EditOp& op);

  struct EditStreamResult {
    /// Composed static verdict with per-op counts.
    analysis::StreamVerdict stream;
    /// True when the stream was decided statically — `report` was
    /// synthesized from the verdict without touching the tree.
    bool short_circuited = false;
    /// The final verdict; from ModValidator when not short-circuited.
    core::ValidationReport report;
  };

  /// Applies `ops` to `doc` through an analyzer-instrumented session and
  /// decides target validity of the edited document: statically when the
  /// composed verdict is safe or fatal (zero tree work), via ModValidator
  /// over the sealed modification index otherwise. The edits are committed
  /// before returning either way — mirroring the editor contract, `doc` is
  /// left in its post-edit state. Precondition: `doc` is valid under
  /// `source` before the first operation.
  Result<EditStreamResult> SubmitEditStream(SchemaHandle source,
                                            SchemaHandle target,
                                            xml::Document* doc,
                                            const std::vector<xml::EditOp>& ops);

  // ------------------------------------------------------------------
  // Persistent compiled cast plans (warm start)
  // ------------------------------------------------------------------

  /// One (source, target) cast pair by schema text, the unit the plan
  /// cache stores. Texts are parsed with default parser options; the plan
  /// key covers the texts + formats, so any byte change recompiles.
  struct PlanPairSpec {
    std::string source_key;
    SchemaFormat source_format = SchemaFormat::kXsd;
    std::string source_text;
    std::string target_key;
    SchemaFormat target_format = SchemaFormat::kXsd;
    std::string target_text;
  };

  struct PlanPairHandles {
    SchemaHandle source = kInvalidSchemaHandle;
    SchemaHandle target = kInvalidSchemaHandle;
    /// True when the pair was loaded from a plan artifact (warm start);
    /// false on a cold compile, a disabled cache, or a bypass.
    bool warm = false;
  };

  /// Registers a cast pair, warm-starting from the plan cache when
  /// possible:
  ///   * cache disabled → parse + fixpoint compile, as if by RegisterXsd /
  ///     RegisterDtd + Cast-on-first-use.
  ///   * registry already holds schemas → plan alphabets cannot be adopted;
  ///     counts a bypass and compiles cold.
  ///   * cache hit → mmap the artifact, adopt its alphabet, register both
  ///     schemas, and seed the relations cache — no parse, no fixpoint.
  ///   * cache miss/corrupt → take the per-plan flock (single-flight across
  ///     processes AND threads), re-probe, then compile cold, eagerly
  ///     compute relations + analyzer, and publish the artifact.
  /// Either way the returned handles are ready for Cast/CastWithMods.
  Result<PlanPairHandles> RegisterPlanPair(const PlanPairSpec& spec);

  /// The plan cache, or nullptr when Options::plan_cache_dir is empty.
  PlanCache* plan_cache() { return plan_cache_.get(); }

  // ------------------------------------------------------------------
  // Batch pipeline
  // ------------------------------------------------------------------

  enum class BatchOp : uint8_t {
    kValidate,  // full validation against `target`
    kCast,      // schema cast from `source` to `target`
  };

  /// One text-in/verdict-out unit of batch work.
  struct BatchItem {
    BatchOp op = BatchOp::kCast;
    SchemaHandle source = kInvalidSchemaHandle;  // ignored for kValidate
    SchemaHandle target = kInvalidSchemaHandle;
    std::string xml_text;
  };

  struct BatchItemResult {
    Status status;                  // non-OK: parse error, bad handle, ...
    core::ValidationReport report;  // meaningful only when status.ok()
  };

  /// Fans the batch out over the worker pool and returns a future of the
  /// per-item results, in input order. Blocks only while the bounded work
  /// queue is full. Thread-safe; batches from concurrent callers interleave
  /// on the same pool.
  std::future<std::vector<BatchItemResult>> SubmitBatch(
      std::vector<BatchItem> items);

  Counters counters() const;

 private:
  struct BatchState;

  /// Cached metric handles for one operation kind.
  struct OpMetrics {
    obs::Counter* dispatched;   // op_requests_total{op}
    obs::Counter* ok;           // ops_ok_total{op}
    obs::Histogram* latency;    // request_latency_us{op}
  };

  using Clock = std::chrono::steady_clock;

  /// Cached per-(S, S') pair handles: the latency histogram plus the
  /// human-readable pair label exemplars carry.
  struct PairEntry {
    obs::Histogram* latency;
    std::string label;  // "key.vN->key.vM"
  };

  BatchItemResult ProcessItem(const BatchItem& item);
  /// Parses and registers one schema text cold (no plan involvement).
  Result<SchemaHandle> RegisterText(const std::string& key,
                                    SchemaFormat format,
                                    const std::string& text);
  /// The cold path of RegisterPlanPair: parse both texts, run the
  /// relations fixpoint + analyzer eagerly, and — when `save_key` is
  /// non-null — publish the compiled plan to the cache.
  Result<PlanPairHandles> ColdCompilePair(const PlanPairSpec& spec,
                                          const PlanKey* save_key);
  /// The warm path: adopt the plan's alphabet, register its schemas, and
  /// seed the relations cache. Falls back to a cold compile (without
  /// re-saving) if the alphabet can no longer be adopted.
  Result<PlanPairHandles> AdoptPlan(const PlanPairSpec& spec,
                                    PlanBundle bundle);
  /// Books a finished request into the counters/histograms, then settles
  /// its trace: decides tail-sampling keep (failed or tail-bucket
  /// latency), pins an exemplar to the op + pair histograms for kept
  /// requests, and hints non-owned scopes upward.
  Result<core::ValidationReport> Record(Result<core::ValidationReport> result,
                                        const OpMetrics& op,
                                        Clock::time_point start,
                                        const PairEntry* pair,
                                        obs::RequestScope* scope,
                                        uint64_t node_count);
  /// A request that failed before reaching any validator (batch parse or
  /// bind failure): counts as a request + error, no op.
  void RecordRejected();
  /// Latency histogram + label for an (S, S') pair; created on first use,
  /// cached thereafter (pointer stable for the service's lifetime).
  const PairEntry* PairLatency(SchemaHandle source, SchemaHandle target);
  /// OnSnapshot hook: publishes trace-sink health, flight-recorder ring
  /// occupancy, and the per-interval executor queue-depth high-water
  /// marks, so every exposition interval reads them fresh.
  void PublishObsHealth();
  /// Lazily-started executors. The batch executor fans SubmitBatch items
  /// out across documents; the intra-doc executor fans ONE document's cast
  /// across subtrees. They are separate pools so a saturated batch can
  /// never starve intra-document tasks into a deadlock (and vice versa).
  common::Executor& BatchExecutor();
  common::Executor& IntraExecutor();
  /// Publishes `doc`'s MemoryUsage into the footprint gauges.
  void ObserveDocFootprint(const xml::Document& doc);

  Options options_;
  // Declared before cache_: the cache publishes into this registry.
  obs::MetricsRegistry metrics_;
  SchemaRegistry registry_;
  RelationsCache cache_;
  // Null unless Options::plan_cache_dir is set; publishes into metrics_.
  std::unique_ptr<PlanCache> plan_cache_;

  // executors_mutex_ serializes lazy creation ONLY. After an executor is
  // built its raw pointer is published through the atomic, and every later
  // access (including batch workers reaching IntraExecutor() per cast)
  // goes through the lock-free load. The destructor never takes this
  // mutex: holding it across Shutdown() would deadlock with a draining
  // batch worker blocked in IntraExecutor() on the same lock.
  std::mutex executors_mutex_;
  std::unique_ptr<common::Executor> batch_executor_;
  std::unique_ptr<common::Executor> intra_executor_;
  std::atomic<common::Executor*> batch_executor_ptr_{nullptr};
  std::atomic<common::Executor*> intra_executor_ptr_{nullptr};

  // Writers (Record / RecordRejected) hold the shared side across a
  // request's counter updates; counters() takes the exclusive side, so
  // snapshots never observe a half-recorded request (the PR 1 counters
  // were read one atomic at a time and could tear under load).
  mutable std::shared_mutex snapshot_mutex_;

  obs::Counter* requests_;
  obs::Counter* valid_;
  obs::Counter* invalid_;
  obs::Counter* errors_;
  obs::Counter* batches_;
  obs::Counter* batch_items_;
  obs::Counter* nodes_visited_;
  obs::Counter* dfa_steps_;
  obs::Counter* subtrees_skipped_;
  OpMetrics validate_op_;
  OpMetrics cast_op_;
  OpMetrics cast_stream_op_;
  OpMetrics cast_with_mods_op_;
  OpMetrics edit_stream_op_;
  // Streaming cast byte accounting: monotonic totals plus last-request
  // gauges (xmlreval_stream_bytes_skipped / _max_live_frames /
  // _peak_carry_bytes) exposing the engine's memory claim per request.
  obs::Counter* stream_bytes_total_;
  obs::Counter* stream_bytes_skipped_total_;
  obs::Gauge* stream_bytes_skipped_;
  obs::Gauge* stream_max_live_frames_;
  obs::Gauge* stream_peak_carry_bytes_;
  // Edit-stream observability: per-op verdicts after stream composition
  // (xmlreval_edit_ops_total{verdict=...}) and streams by resolution path
  // (xmlreval_edit_streams_total{path=short_circuit_safe |
  // short_circuit_fatal | fallback}).
  obs::Counter* edit_ops_safe_;
  obs::Counter* edit_ops_fatal_;
  obs::Counter* edit_ops_unknown_;
  obs::Counter* streams_safe_;
  obs::Counter* streams_fatal_;
  obs::Counter* streams_fallback_;
  obs::Histogram* queue_wait_us_;
  obs::Histogram* batch_service_us_;
  obs::Gauge* batch_inflight_;
  // Queue-depth gauges expose the HIGH-WATER mark since the previous
  // snapshot (not a last-write-wins sample): the depth hooks maintain the
  // live depth + running max below, and PublishObsHealth sets the gauge
  // to max(high-water, current) and re-arms the max at the current depth,
  // so a burst that drained between expositions is still visible.
  // Labeled {executor="batch"|"intra_doc"}.
  obs::Gauge* batch_queue_depth_;
  obs::Gauge* intra_queue_depth_;
  std::atomic<int64_t> batch_depth_{0};
  std::atomic<int64_t> batch_depth_hwm_{0};
  std::atomic<int64_t> intra_depth_{0};
  std::atomic<int64_t> intra_depth_hwm_{0};
  // TraceSink health (set by PublishObsHealth each snapshot).
  obs::Gauge* trace_buffered_events_;
  obs::Gauge* trace_dropped_events_;
  obs::Gauge* trace_tail_dropped_events_;
  obs::Gauge* trace_staged_events_;
  // Resident footprint of the most recently served document
  // (Document::MemoryUsage: SoA topology columns + payload refs + string
  // arena + attribute side table), total and amortised per node.
  obs::Gauge* doc_bytes_;
  obs::Gauge* doc_bytes_per_node_;

  mutable std::shared_mutex pair_mutex_;
  // Values are stable pointers (node-based map) handed out by PairLatency.
  std::unordered_map<uint64_t, PairEntry> pair_latency_;
};

}  // namespace xmlreval::service

#endif  // XMLREVAL_SERVICE_VALIDATION_SERVICE_H_
