#include "service/plan_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>

#include "analysis/analyzer_codec.h"
#include "common/macros.h"
#include "common/serde.h"
#include "core/relations_codec.h"
#include "schema/schema_codec.h"

namespace xmlreval::service {

namespace {

using common::ByteReader;
using common::ByteWriter;

// "XRVLPLAN" read as a little-endian u64.
constexpr uint64_t kPlanMagic = 0x4e414c504c565258ull;
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr size_t kHeaderSize = 48;
constexpr uint32_t kFlagHasAnalyzer = 1u << 0;
constexpr uint32_t kFlagReverse = 1u << 1;
// A plan artifact larger than this is implausible and rejected before any
// decode work (guards mmap of a corrupt multi-terabyte sparse file).
constexpr uint64_t kMaxPlanBytes = 1ull << 34;  // 16 GiB

Status Corrupt(const char* what) {
  return Status::DataLoss(std::string("plan artifact: ") + what);
}

Status Errno(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " '" + path +
                          "': " + std::strerror(errno));
}

std::string HashHex(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace

const char* SchemaFormatName(SchemaFormat format) {
  switch (format) {
    case SchemaFormat::kXsd:
      return "xsd";
    case SchemaFormat::kDtd:
      return "dtd";
  }
  return "unknown";
}

uint64_t PlanContentHash(const PlanKey& key) {
  // Length-prefix each field so concatenation ambiguity cannot collide
  // distinct keys. The format version participates: bumping it silently
  // retires every existing artifact (the invalidation rule).
  ByteWriter w;
  w.U32(kPlanFormatVersion);
  w.U8(static_cast<uint8_t>(key.source_format));
  w.String(key.source_text);
  w.U8(static_cast<uint8_t>(key.target_format));
  w.String(key.target_text);
  w.U8(key.reverse_automata ? 1 : 0);
  return common::Fnv1a(w.buffer());
}

// ---------------------------------------------------------------- MappedPlan

Result<MappedPlan> MappedPlan::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no plan artifact at '" + path + "'");
    }
    return Errno("cannot open plan", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("cannot stat plan", path);
  }
  if (st.st_size <= 0 || static_cast<uint64_t>(st.st_size) > kMaxPlanBytes) {
    ::close(fd);
    return Corrupt("implausible file size");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                     MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the fd is done.
  ::close(fd);
  if (map == MAP_FAILED) {
    return Errno("cannot mmap plan", path);
  }
  MappedPlan plan;
  plan.data_ = static_cast<const uint8_t*>(map);
  plan.size_ = static_cast<size_t>(st.st_size);
  return plan;
}

MappedPlan& MappedPlan::operator=(MappedPlan&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedPlan::~MappedPlan() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

// ------------------------------------------------------------ ScopedPlanLock

ScopedPlanLock& ScopedPlanLock::operator=(ScopedPlanLock&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);  // close releases the flock
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

ScopedPlanLock::~ScopedPlanLock() {
  if (fd_ >= 0) ::close(fd_);
}

// --------------------------------------------------------------- PlanCache

PlanCache::PlanCache(std::string dir, obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)) {
  XMLREVAL_CHECK(metrics != nullptr, "PlanCache requires a metrics registry");
  ::mkdir(dir_.c_str(), 0777);  // EEXIST is fine; real failures surface on use
  hits_ = metrics->counter("xmlreval_plan_cache_hits_total");
  misses_ = metrics->counter("xmlreval_plan_cache_misses_total");
  corrupt_ = metrics->counter("xmlreval_plan_cache_corrupt_total");
  saves_ = metrics->counter("xmlreval_plan_cache_saves_total");
  bypass_ = metrics->counter("xmlreval_plan_cache_bypass_total");
  load_ns_ = metrics->histogram("xmlreval_plan_cache_load_ns");
  compile_ns_ = metrics->histogram("xmlreval_plan_cache_compile_ns");
  bytes_mapped_ = metrics->gauge("xmlreval_plan_cache_bytes_mapped");
}

std::string PlanCache::PlanPath(const PlanKey& key) const {
  return dir_ + "/plan_" + HashHex(PlanContentHash(key)) + ".xrp";
}

std::string PlanCache::LockPath(const PlanKey& key) const {
  return dir_ + "/plan_" + HashHex(PlanContentHash(key)) + ".lock";
}

namespace {

/// Header check + payload decode, separated from Load so corruption exits
/// funnel through one place. On success `*out` is fully populated.
Result<PlanBundle> DecodePlan(MappedPlan mapping, uint64_t expected_hash) {
  if (mapping.size() < kHeaderSize) return Corrupt("shorter than the header");
  ByteReader header(mapping.data(), kHeaderSize);
  if (header.U64() != kPlanMagic) return Corrupt("bad magic");
  if (header.U32() != kEndianTag) return Corrupt("wrong endianness");
  if (header.U32() != kPlanFormatVersion) {
    return Corrupt("format version mismatch");
  }
  if (header.U64() != expected_hash) return Corrupt("content hash mismatch");
  uint32_t flags = header.U32();
  header.U32();  // reserved
  uint64_t payload_size = header.U64();
  uint64_t payload_sum = header.U64();
  if (payload_size != mapping.size() - kHeaderSize) {
    return Corrupt("payload size mismatch (truncated?)");
  }
  const uint8_t* payload = mapping.data() + kHeaderSize;
  if (common::Fnv1a(payload, payload_size) != payload_sum) {
    return Corrupt("checksum mismatch");
  }

  ByteReader r(payload, payload_size);
  // Alphabet: names in id order.
  uint32_t n_symbols = r.U32();
  if (!r.ok() || n_symbols > r.remaining()) {
    return Corrupt("implausible alphabet");
  }
  auto alphabet = std::make_shared<automata::Alphabet>();
  for (uint32_t i = 0; i < n_symbols; ++i) {
    std::string_view name = r.String();
    if (!r.ok() || name.empty()) return Corrupt("malformed alphabet entry");
    if (alphabet->Intern(name) != i) return Corrupt("duplicate alphabet entry");
  }
  r.AlignTo(8);

  // The holder gives the borrowed views stable addresses: schemas and
  // relations are decoded directly into it, and the shared_ptrs handed out
  // below alias it.
  auto holder = std::make_shared<PlanArtifacts>();
  holder->mapping = std::move(mapping);
  holder->alphabet = alphabet;
  {
    ASSIGN_OR_RETURN(schema::Schema s,
                     schema::SchemaCodec::Decode(&r, alphabet, true));
    holder->source.emplace(std::move(s));
  }
  {
    ASSIGN_OR_RETURN(schema::Schema t,
                     schema::SchemaCodec::Decode(&r, alphabet, true));
    holder->target.emplace(std::move(t));
  }
  {
    ASSIGN_OR_RETURN(core::TypeRelations rel,
                     core::RelationsCodec::Decode(&r, &*holder->source,
                                                  &*holder->target, true));
    holder->relations.emplace(std::move(rel));
  }

  PlanBundle bundle;
  bundle.alphabet = alphabet;
  bundle.source =
      std::shared_ptr<const schema::Schema>(holder, &*holder->source);
  bundle.target =
      std::shared_ptr<const schema::Schema>(holder, &*holder->target);
  bundle.relations = std::shared_ptr<const core::TypeRelations>(
      holder, &*holder->relations);
  bundle.bytes_mapped = holder->mapping.size();

  uint8_t has_analyzer = r.U8();
  if (!r.ok() || has_analyzer > 1 ||
      (has_analyzer != 0) != ((flags & kFlagHasAnalyzer) != 0)) {
    return Corrupt("analyzer flag mismatch");
  }
  if (has_analyzer) {
    r.AlignTo(8);
    // The analyzer lives OUTSIDE the holder: its relations_ member aliases
    // the holder, which would be a reference cycle if the holder also
    // owned the analyzer.
    ASSIGN_OR_RETURN(analysis::UpdateAnalyzer analyzer,
                     analysis::AnalyzerCodec::Decode(&r, bundle.relations));
    bundle.analyzer = std::make_shared<const analysis::UpdateAnalyzer>(
        std::move(analyzer));
  }
  r.AlignTo(8);
  if (!r.ok() || r.remaining() != 0) return Corrupt("trailing payload bytes");
  (void)flags;
  return bundle;
}

uint64_t NowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

Result<PlanBundle> PlanCache::Load(const PlanKey& key) {
  const uint64_t start = NowNs();
  const std::string path = PlanPath(key);
  Result<MappedPlan> mapping = MappedPlan::Open(path);
  if (!mapping.ok()) {
    if (mapping.status().code() == StatusCode::kNotFound) {
      misses_->Add();
    } else {
      corrupt_->Add();
    }
    return mapping.status();
  }
  Result<PlanBundle> bundle =
      DecodePlan(std::move(mapping).value(), PlanContentHash(key));
  if (!bundle.ok()) {
    corrupt_->Add();
    return bundle.status().WithContext("loading '" + path + "'");
  }
  hits_->Add();
  load_ns_->Record(NowNs() - start);
  bytes_mapped_->Add(static_cast<int64_t>(bundle->bytes_mapped));
  return bundle;
}

Status PlanCache::Save(const PlanKey& key, const schema::Schema& source,
                       const schema::Schema& target,
                       const core::TypeRelations& relations,
                       const analysis::UpdateAnalyzer* analyzer) {
  const automata::Alphabet& alphabet = *source.alphabet();
  ByteWriter payload;
  payload.U32(static_cast<uint32_t>(alphabet.size()));
  for (automata::Symbol s = 0; s < alphabet.size(); ++s) {
    payload.String(alphabet.Name(s));
  }
  payload.AlignTo(8);
  schema::SchemaCodec::Encode(source, &payload);
  schema::SchemaCodec::Encode(target, &payload);
  core::RelationsCodec::Encode(relations, &payload);
  payload.U8(analyzer != nullptr ? 1 : 0);
  if (analyzer != nullptr) {
    payload.AlignTo(8);
    analysis::AnalyzerCodec::Encode(*analyzer, &payload);
  }
  payload.AlignTo(8);

  uint32_t flags = 0;
  if (analyzer != nullptr) flags |= kFlagHasAnalyzer;
  if (key.reverse_automata) flags |= kFlagReverse;
  ByteWriter file;
  file.U64(kPlanMagic);
  file.U32(kEndianTag);
  file.U32(kPlanFormatVersion);
  file.U64(PlanContentHash(key));
  file.U32(flags);
  file.U32(0);  // reserved
  file.U64(payload.size());
  file.U64(common::Fnv1a(payload.buffer()));
  XMLREVAL_CHECK(file.size() == kHeaderSize, "plan header layout drifted");
  file.Bytes(payload.buffer().data(), payload.size());

  const std::string path = PlanPath(key);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot create plan temp file", tmp);
  const std::string& bytes = file.buffer();
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("cannot write plan", tmp);
    }
    written += static_cast<size_t>(n);
  }
  // fsync BEFORE rename: the artifact must be durable before it becomes
  // visible, or a crash could publish a truncated plan.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Errno("cannot fsync plan", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("cannot publish plan", path);
  }
  saves_->Add();
  return Status::OK();
}

Result<ScopedPlanLock> PlanCache::AcquireLock(const PlanKey& key) {
  const std::string path = LockPath(key);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("cannot open plan lock", path);
  while (::flock(fd, LOCK_EX) != 0) {
    if (errno != EINTR) {
      ::close(fd);
      return Errno("cannot lock plan", path);
    }
  }
  ScopedPlanLock lock;
  lock.fd_ = fd;
  return lock;
}

PlanCache::Stats PlanCache::GetStats() const {
  return Stats{hits_->Value(), misses_->Value(), corrupt_->Value(),
               saves_->Value(), bypass_->Value()};
}

}  // namespace xmlreval::service
