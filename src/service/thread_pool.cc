#include "service/thread_pool.h"

#include <utility>

namespace xmlreval::service {

namespace {
size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}
}  // namespace

ThreadPool::ThreadPool(const Options& options)
    : queue_(options.queue_capacity) {
  size_t threads = ResolveThreads(options.threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return queue_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (std::optional<std::function<void()>> task = queue_.Pop()) {
    (*task)();
  }
}

}  // namespace xmlreval::service
