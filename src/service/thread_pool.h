// ThreadPool — a fixed-size worker pool over a BoundedQueue.
//
// Workers are spawned once at construction (no dynamic sizing: the serving
// layer's throughput knob is explicit, like the thread-count sweep in bench
// A8). Submit blocks when the queue is full — backpressure, not unbounded
// buffering — and returns false only after Shutdown. The destructor drains
// every task already accepted, then joins.

#ifndef XMLREVAL_SERVICE_THREAD_POOL_H_
#define XMLREVAL_SERVICE_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "service/bounded_queue.h"

namespace xmlreval::service {

class ThreadPool {
 public:
  struct Options {
    /// Worker count; 0 = std::thread::hardware_concurrency (min 1).
    size_t threads = 0;
    /// Bounded work-queue capacity (backpressure threshold).
    size_t queue_capacity = 256;
  };

  explicit ThreadPool(const Options& options);
  ThreadPool() : ThreadPool(Options{}) {}
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues a task, blocking while the queue is full. Returns false if
  /// the pool has been shut down (the task is dropped).
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, drains the queue, joins the workers. Idempotent.
  void Shutdown();

  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace xmlreval::service

#endif  // XMLREVAL_SERVICE_THREAD_POOL_H_
