// RelationsCache — memoized R_sub/R_nondis preprocessing.
//
// Computing a TypeRelations is the expensive, document-independent half of
// schema-cast validation (DESIGN.md bench A3: fixpoints over DFA products).
// The serving layer computes each (source, target) pair's relations at most
// once and shares the immutable result across every request and thread —
// the amortization that makes the paper's broker deployment pay off.
//
//   * Lookup is a shared-lock hash probe; entries are handed out as
//     shared_ptr<const TypeRelations>, so an entry evicted while in use
//     stays alive until its last user drops it.
//   * Single-flight: the first requester of a pair computes; concurrent
//     requesters for the same pair block on the in-flight computation
//     instead of duplicating the fixpoint. The stats `computations` counter
//     therefore counts distinct pairs computed, never racing duplicates.
//   * LRU eviction over COMPLETED entries once `capacity` is exceeded
//     (in-flight computations are never evicted). Recency is a lock-free
//     logical clock stamped on every hit.
//   * Failed computations (e.g. a pair over mismatched alphabets) are
//     reported to all waiters, then dropped — a later request retries.
//
// Observability: the cache publishes to an obs::MetricsRegistry —
// counters xmlreval_relations_cache_{hits,misses,computations,evictions}
// _total and the histogram xmlreval_relations_compute_us (one sample per
// fixpoint run, recorded inside the single-flight section, which also
// carries a "relations.fixpoint" trace span). Stats remains the one-call
// summary view and now includes the compute-time distribution's max/mean.

#ifndef XMLREVAL_SERVICE_RELATIONS_CACHE_H_
#define XMLREVAL_SERVICE_RELATIONS_CACHE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "analysis/update_analyzer.h"
#include "common/result.h"
#include "core/relations.h"
#include "obs/metrics.h"
#include "service/schema_registry.h"

namespace xmlreval::service {

using RelationsPtr = std::shared_ptr<const core::TypeRelations>;
using AnalyzerPtr = std::shared_ptr<const analysis::UpdateAnalyzer>;

class RelationsCache {
 public:
  struct Options {
    /// Maximum COMPLETED entries kept; beyond it the least-recently-used
    /// completed entry is evicted. 0 = unbounded.
    size_t capacity = 64;
    /// Passed through to TypeRelations::Compute.
    core::TypeRelations::Options relations;
  };

  struct Stats {
    /// Requests answered from a completed cached entry.
    uint64_t hits = 0;
    /// Requests that found no completed entry — the computing request and
    /// any single-flight waiters that joined it.
    uint64_t misses = 0;
    /// Fixpoint computations actually run. Single-flight guarantees
    /// computations == distinct pairs requested (minus re-computes after
    /// eviction), regardless of concurrency.
    uint64_t computations = 0;
    uint64_t evictions = 0;
    /// Wall-clock microseconds inside TypeRelations::Compute: total,
    /// slowest single run, and mean per run (from the obs histogram;
    /// requires the runtime obs switch, on by default).
    uint64_t compute_micros = 0;
    uint64_t compute_max_micros = 0;
    double compute_mean_micros = 0;
    /// UpdateAnalyzer compilations actually run (single-flight, like
    /// `computations`).
    uint64_t analyzer_compilations = 0;
  };

  /// `registry` must outlive the cache; handles passed to Get refer to it.
  /// `metrics` is where cache metrics are published (nullptr = the
  /// process-wide obs::MetricsRegistry::Default()); it must outlive the
  /// cache too.
  RelationsCache(const SchemaRegistry* registry, const Options& options,
                 obs::MetricsRegistry* metrics = nullptr);
  explicit RelationsCache(const SchemaRegistry* registry)
      : RelationsCache(registry, Options{}) {}
  RelationsCache(const RelationsCache&) = delete;
  RelationsCache& operator=(const RelationsCache&) = delete;

  /// The relations for (source, target), computed on first use.
  /// Thread-safe; must NOT be called while holding a registry ReadGuard
  /// (Get acquires one itself around the computation).
  Result<RelationsPtr> Get(SchemaHandle source, SchemaHandle target);

  /// The compiled update-safety analyzer for (source, target) — the static
  /// tables of src/analysis/ — computed on first use. Calls Get()
  /// internally, so the analyzer shares (and keeps alive) the pair's
  /// cached TypeRelations. Same threading contract as Get().
  Result<AnalyzerPtr> GetAnalyzer(SchemaHandle source, SchemaHandle target);

  /// Installs pre-computed results for (source, target) — the warm-start
  /// path for relations/analyzers decoded from a plan artifact, so the
  /// first Get() is a hit instead of a fixpoint run. `analyzer` may be null
  /// (plan saved without analyzer tables). No-op if the pair already has an
  /// entry (a racing Get() owns it). Thread-safe.
  void Seed(SchemaHandle source, SchemaHandle target, RelationsPtr relations,
            AnalyzerPtr analyzer);

  Stats stats() const;
  /// Completed + in-flight entries currently held.
  size_t size() const;

 private:
  struct Entry {
    std::shared_future<Result<RelationsPtr>> future;
    std::atomic<bool> ready{false};
    std::atomic<uint64_t> last_used{0};
  };

  struct AnalyzerEntry {
    std::shared_future<Result<AnalyzerPtr>> future;
    std::atomic<bool> ready{false};
    std::atomic<uint64_t> last_used{0};
  };

  Result<RelationsPtr> Compute(SchemaHandle source, SchemaHandle target);
  Result<AnalyzerPtr> CompileAnalyzer(SchemaHandle source, SchemaHandle target);
  void EvictIfOver();          // requires exclusive mutex_
  void EvictAnalyzersIfOver();  // requires exclusive analyzer_mutex_

  static uint64_t Key(SchemaHandle source, SchemaHandle target) {
    return (static_cast<uint64_t>(source) << 32) | target;
  }

  const SchemaRegistry* registry_;
  Options options_;

  mutable std::shared_mutex mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> entries_;

  mutable std::shared_mutex analyzer_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<AnalyzerEntry>> analyzer_entries_;

  std::atomic<uint64_t> clock_{0};

  // Published metrics (owned by `metrics_`; pointers cached at
  // construction — the registry guarantees their lifetime).
  obs::MetricsRegistry* metrics_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* computations_;
  obs::Counter* evictions_;
  obs::Counter* compute_micros_total_;
  obs::Histogram* compute_us_;
  obs::Counter* analyzer_compilations_;
};

}  // namespace xmlreval::service

#endif  // XMLREVAL_SERVICE_RELATIONS_CACHE_H_
