#include "service/validation_service.h"

#include <utility>

#include "common/macros.h"
#include "xml/parser.h"

namespace xmlreval::service {

ValidationService::ValidationService(const Options& options)
    : options_(options), registry_(), cache_(&registry_, options.cache) {}

ValidationService::~ValidationService() {
  // Drain in-flight batch work before members are destroyed.
  std::lock_guard lock(pool_mutex_);
  if (pool_) pool_->Shutdown();
}

Result<core::ValidationReport> ValidationService::Record(
    Result<core::ValidationReport> result,
    std::atomic<uint64_t>& op_counter) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  op_counter.fetch_add(1, std::memory_order_relaxed);
  (result->valid ? valid_ : invalid_).fetch_add(1, std::memory_order_relaxed);
  nodes_visited_.fetch_add(result->counters.nodes_visited,
                           std::memory_order_relaxed);
  return result;
}

Status ValidationService::BindDocument(xml::Document* doc) const {
  if (doc == nullptr) {
    return Status::InvalidArgument("BindDocument requires a document");
  }
  // Find-only bind: never grows Σ, so the shared guard suffices. The
  // resolved symbols stay valid after the guard is released because the
  // registry's Alphabet is append-only.
  auto guard = registry_.ReadGuard();
  return doc->Bind(registry_.alphabet());
}

Result<core::ValidationReport> ValidationService::Validate(
    SchemaHandle schema, const xml::Document& doc) {
  auto run = [&]() -> Result<core::ValidationReport> {
    std::shared_ptr<const schema::Schema> target = registry_.schema(schema);
    if (!target) {
      return Status::InvalidArgument("invalid schema handle " +
                                     std::to_string(schema));
    }
    // Validators read the shared Alphabet (label lookup on the hot path);
    // the guard keeps concurrent registrations from growing Σ under them.
    auto guard = registry_.ReadGuard();
    return core::FullValidator(target.get()).Validate(doc);
  };
  return Record(run(), full_validations_);
}

Result<core::ValidationReport> ValidationService::Cast(
    SchemaHandle source, SchemaHandle target, const xml::Document& doc) {
  auto run = [&]() -> Result<core::ValidationReport> {
    ASSIGN_OR_RETURN(RelationsPtr relations, cache_.Get(source, target));
    auto guard = registry_.ReadGuard();
    if (options_.check_cast_precondition) {
      core::ValidationReport source_report =
          core::FullValidator(&relations->source()).Validate(doc);
      if (!source_report.valid) {
        return Status::FailedPrecondition(
            "document is not valid under the source schema (" +
            source_report.violation + "); the cast precondition fails");
      }
    }
    return core::CastValidator(relations.get(), options_.cast).Validate(doc);
  };
  return Record(run(), casts_);
}

Result<core::ValidationReport> ValidationService::CastWithMods(
    SchemaHandle source, SchemaHandle target, const xml::Document& doc,
    const xml::ModificationIndex& mods) {
  auto run = [&]() -> Result<core::ValidationReport> {
    ASSIGN_OR_RETURN(RelationsPtr relations, cache_.Get(source, target));
    auto guard = registry_.ReadGuard();
    return core::ModValidator(relations.get(), options_.mods)
        .Validate(doc, mods);
  };
  return Record(run(), casts_with_mods_);
}

ThreadPool& ValidationService::Pool() {
  std::lock_guard lock(pool_mutex_);
  if (!pool_) {
    ThreadPool::Options options;
    options.threads = options_.batch_threads;
    options.queue_capacity = options_.batch_queue_capacity;
    pool_ = std::make_unique<ThreadPool>(options);
  }
  return *pool_;
}

ValidationService::BatchItemResult ValidationService::ProcessItem(
    const BatchItem& item) {
  BatchItemResult result;
  Result<xml::Document> doc = xml::ParseXml(item.xml_text);
  if (!doc.ok()) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    result.status = doc.status().WithContext("batch item");
    return result;
  }
  // Bind once per item: every validator the item reaches (precondition
  // check, cast, full validation) then reads node symbols directly
  // instead of hashing each label against the shared Alphabet.
  if (Status bind = BindDocument(&*doc); !bind.ok()) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    result.status = bind.WithContext("batch item");
    return result;
  }
  Result<core::ValidationReport> report =
      item.op == BatchOp::kValidate ? Validate(item.target, *doc)
                                    : Cast(item.source, item.target, *doc);
  if (!report.ok()) {
    result.status = report.status();
    return result;
  }
  result.report = std::move(report).value();
  return result;
}

struct ValidationService::BatchState {
  std::vector<BatchItem> items;
  std::vector<BatchItemResult> results;
  std::atomic<size_t> remaining{0};
  std::promise<std::vector<BatchItemResult>> done;
};

std::future<std::vector<ValidationService::BatchItemResult>>
ValidationService::SubmitBatch(std::vector<BatchItem> items) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_items_.fetch_add(items.size(), std::memory_order_relaxed);

  auto state = std::make_shared<BatchState>();
  state->items = std::move(items);
  state->results.resize(state->items.size());
  state->remaining.store(state->items.size(), std::memory_order_relaxed);
  std::future<std::vector<BatchItemResult>> future =
      state->done.get_future();
  if (state->items.empty()) {
    state->done.set_value({});
    return future;
  }

  ThreadPool& pool = Pool();
  for (size_t i = 0; i < state->items.size(); ++i) {
    auto task = [this, state, i] {
      state->results[i] = ProcessItem(state->items[i]);
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state->done.set_value(std::move(state->results));
      }
    };
    if (!pool.Submit(task)) {
      // Pool shut down mid-batch (service teardown): fail the rest.
      state->results[i].status =
          Status::FailedPrecondition("batch pipeline is shut down");
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state->done.set_value(std::move(state->results));
      }
    }
  }
  return future;
}

ValidationService::Counters ValidationService::counters() const {
  Counters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.valid = valid_.load(std::memory_order_relaxed);
  counters.invalid = invalid_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.full_validations =
      full_validations_.load(std::memory_order_relaxed);
  counters.casts = casts_.load(std::memory_order_relaxed);
  counters.casts_with_mods = casts_with_mods_.load(std::memory_order_relaxed);
  counters.batches = batches_.load(std::memory_order_relaxed);
  counters.batch_items = batch_items_.load(std::memory_order_relaxed);
  counters.nodes_visited = nodes_visited_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace xmlreval::service
