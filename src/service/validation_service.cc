#include "service/validation_service.h"

#include <utility>

#include "common/macros.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "xml/parser.h"

namespace xmlreval::service {

namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

ValidationService::ValidationService(const Options& options)
    : options_(options),
      metrics_(),
      registry_(),
      cache_(&registry_, options.cache, &metrics_) {
  if (!options_.plan_cache_dir.empty()) {
    plan_cache_ =
        std::make_unique<PlanCache>(options_.plan_cache_dir, &metrics_);
  }
  requests_ = metrics_.counter("xmlreval_requests_total");
  valid_ = metrics_.counter("xmlreval_verdicts_total", {{"verdict", "valid"}});
  invalid_ =
      metrics_.counter("xmlreval_verdicts_total", {{"verdict", "invalid"}});
  errors_ =
      metrics_.counter("xmlreval_verdicts_total", {{"verdict", "error"}});
  batches_ = metrics_.counter("xmlreval_batches_total");
  batch_items_ = metrics_.counter("xmlreval_batch_items_total");
  nodes_visited_ = metrics_.counter("xmlreval_nodes_visited_total");
  dfa_steps_ = metrics_.counter("xmlreval_dfa_steps_total");
  subtrees_skipped_ = metrics_.counter("xmlreval_subtrees_skipped_total");
  auto op = [this](const char* name) {
    return OpMetrics{
        metrics_.counter("xmlreval_op_requests_total", {{"op", name}}),
        metrics_.counter("xmlreval_ops_ok_total", {{"op", name}}),
        metrics_.histogram("xmlreval_request_latency_us", {{"op", name}})};
  };
  validate_op_ = op("validate");
  cast_op_ = op("cast");
  cast_stream_op_ = op("cast_stream");
  stream_bytes_total_ = metrics_.counter("xmlreval_stream_bytes_total");
  stream_bytes_skipped_total_ =
      metrics_.counter("xmlreval_stream_bytes_skipped_total");
  stream_bytes_skipped_ = metrics_.gauge("xmlreval_stream_bytes_skipped");
  stream_max_live_frames_ = metrics_.gauge("xmlreval_stream_max_live_frames");
  stream_peak_carry_bytes_ =
      metrics_.gauge("xmlreval_stream_peak_carry_bytes");
  cast_with_mods_op_ = op("cast_with_mods");
  edit_stream_op_ = op("edit_stream");
  edit_ops_safe_ =
      metrics_.counter("xmlreval_edit_ops_total", {{"verdict", "safe"}});
  edit_ops_fatal_ =
      metrics_.counter("xmlreval_edit_ops_total", {{"verdict", "fatal"}});
  edit_ops_unknown_ =
      metrics_.counter("xmlreval_edit_ops_total", {{"verdict", "unknown"}});
  streams_safe_ = metrics_.counter("xmlreval_edit_streams_total",
                                   {{"path", "short_circuit_safe"}});
  streams_fatal_ = metrics_.counter("xmlreval_edit_streams_total",
                                    {{"path", "short_circuit_fatal"}});
  streams_fallback_ =
      metrics_.counter("xmlreval_edit_streams_total", {{"path", "fallback"}});
  queue_wait_us_ = metrics_.histogram("xmlreval_batch_queue_wait_us");
  batch_service_us_ = metrics_.histogram("xmlreval_batch_service_us");
  batch_inflight_ = metrics_.gauge("xmlreval_batch_inflight");
  batch_queue_depth_ = metrics_.gauge("xmlreval_executor_queue_depth",
                                      {{"executor", "batch"}});
  intra_queue_depth_ = metrics_.gauge("xmlreval_executor_queue_depth",
                                      {{"executor", "intra_doc"}});
  doc_bytes_ = metrics_.gauge("xmlreval_doc_bytes");
  doc_bytes_per_node_ = metrics_.gauge("xmlreval_doc_bytes_per_node");
  trace_buffered_events_ = metrics_.gauge("xmlreval_trace_buffered_events");
  trace_dropped_events_ = metrics_.gauge("xmlreval_trace_dropped_events");
  trace_tail_dropped_events_ =
      metrics_.gauge("xmlreval_trace_tail_dropped_events");
  trace_staged_events_ = metrics_.gauge("xmlreval_trace_staged_events");
  metrics_.OnSnapshot([this] { PublishObsHealth(); });
}

void ValidationService::PublishObsHealth() {
  const obs::TraceSink& sink = obs::TraceSink::Global();
  trace_buffered_events_->Set(static_cast<int64_t>(sink.size()));
  trace_dropped_events_->Set(static_cast<int64_t>(sink.dropped()));
  trace_tail_dropped_events_->Set(static_cast<int64_t>(sink.tail_dropped()));
  trace_staged_events_->Set(static_cast<int64_t>(sink.staged()));

  const obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  if (recorder.per_thread_capacity() > 0) {
    for (size_t slot = 0; slot < obs::FlightRecorder::kMaxThreads; ++slot) {
      size_t occupancy = recorder.SlotOccupancy(slot);
      if (occupancy == 0) continue;  // gauges only for slots in use
      metrics_
          .gauge("xmlreval_flight_ring_occupancy",
                 {{"thread", std::to_string(slot)}})
          ->Set(static_cast<int64_t>(occupancy));
    }
  }

  // Queue depth: expose the interval's high-water mark, then re-arm the
  // mark at the live depth so the next interval starts fresh.
  auto publish_hwm = [](std::atomic<int64_t>& depth,
                        std::atomic<int64_t>& hwm, obs::Gauge* gauge) {
    int64_t current = depth.load(std::memory_order_relaxed);
    int64_t peak = hwm.exchange(current, std::memory_order_relaxed);
    gauge->Set(peak > current ? peak : current);
  };
  publish_hwm(batch_depth_, batch_depth_hwm_, batch_queue_depth_);
  publish_hwm(intra_depth_, intra_depth_hwm_, intra_queue_depth_);
}

ValidationService::~ValidationService() {
  // Drain in-flight work before members are destroyed, WITHOUT holding
  // executors_mutex_: a draining batch worker may still call
  // IntraExecutor() (large-document cast), and blocking it on a mutex the
  // joining thread holds would deadlock the join. Batch first — only once
  // its workers have exited is the intra pointer final (a worker may
  // create the intra executor mid-drain; its release-store is paired with
  // the acquire-load below).
  if (common::Executor* batch =
          batch_executor_ptr_.load(std::memory_order_acquire)) {
    batch->Shutdown();
  }
  if (common::Executor* intra =
          intra_executor_ptr_.load(std::memory_order_acquire)) {
    intra->Shutdown();
  }
}

Result<SchemaHandle> ValidationService::RegisterText(const std::string& key,
                                                     SchemaFormat format,
                                                     const std::string& text) {
  switch (format) {
    case SchemaFormat::kXsd:
      return registry_.RegisterXsd(key, text);
    case SchemaFormat::kDtd:
      return registry_.RegisterDtd(key, text);
  }
  return Status::InvalidArgument("unknown schema format");
}

Result<ValidationService::PlanPairHandles> ValidationService::ColdCompilePair(
    const PlanPairSpec& spec, const PlanKey* save_key) {
  const auto t0 = Clock::now();
  ASSIGN_OR_RETURN(SchemaHandle source,
                   RegisterText(spec.source_key, spec.source_format,
                                spec.source_text));
  ASSIGN_OR_RETURN(SchemaHandle target,
                   RegisterText(spec.target_key, spec.target_format,
                                spec.target_text));
  // Run the pair's full preprocessing eagerly — the fixpoints AND the
  // analyzer tables — so the plan captures everything a warm start skips.
  ASSIGN_OR_RETURN(RelationsPtr relations, cache_.Get(source, target));
  // Some pairs have no analyzer (compile failure); the plan simply omits
  // the tables and warm starts recompute nothing (there is nothing to).
  Result<AnalyzerPtr> analyzer = cache_.GetAnalyzer(source, target);
  if (plan_cache_ != nullptr) {
    plan_cache_->RecordCompileNs(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count()));
  }
  if (save_key != nullptr && plan_cache_ != nullptr) {
    std::shared_ptr<const schema::Schema> src = registry_.schema(source);
    std::shared_ptr<const schema::Schema> tgt = registry_.schema(target);
    const analysis::UpdateAnalyzer* az =
        analyzer.ok() ? analyzer.value().get() : nullptr;
    // A failed save is non-fatal: this process serves from memory and the
    // next cold process recompiles.
    (void)plan_cache_->Save(*save_key, *src, *tgt, *relations, az);
  }
  return PlanPairHandles{source, target, /*warm=*/false};
}

Result<ValidationService::PlanPairHandles> ValidationService::AdoptPlan(
    const PlanPairSpec& spec, PlanBundle bundle) {
  Status adopted = registry_.AdoptAlphabet(bundle.alphabet);
  if (!adopted.ok()) {
    // A registration slipped in since the emptiness check; the plan's
    // symbol ids no longer line up with the registry's alphabet.
    plan_cache_->RecordBypass();
    return ColdCompilePair(spec, /*save_key=*/nullptr);
  }
  ASSIGN_OR_RETURN(
      SchemaHandle source,
      registry_.RegisterCompiled(spec.source_key, spec.source_text,
                                 bundle.source));
  ASSIGN_OR_RETURN(
      SchemaHandle target,
      registry_.RegisterCompiled(spec.target_key, spec.target_text,
                                 bundle.target));
  cache_.Seed(source, target, bundle.relations, bundle.analyzer);
  return PlanPairHandles{source, target, /*warm=*/true};
}

Result<ValidationService::PlanPairHandles> ValidationService::RegisterPlanPair(
    const PlanPairSpec& spec) {
  if (plan_cache_ == nullptr) {
    return ColdCompilePair(spec, /*save_key=*/nullptr);
  }

  PlanKey key;
  key.source_format = spec.source_format;
  key.source_text = spec.source_text;
  key.target_format = spec.target_format;
  key.target_text = spec.target_text;
  key.reverse_automata = options_.cache.relations.build_reverse_automata;

  if (registry_.size() != 0) {
    // A plan's alphabet can only be adopted into an empty registry; with
    // schemas already bound to the current Σ the plan's symbol ids would
    // not line up. Compile cold (and don't save — the artifact on disk,
    // if any, is still the authoritative one).
    plan_cache_->RecordBypass();
    return ColdCompilePair(spec, /*save_key=*/nullptr);
  }

  Result<PlanBundle> loaded = plan_cache_->Load(key);
  if (loaded.ok()) return AdoptPlan(spec, std::move(loaded).value());
  if (loaded.status().code() != StatusCode::kNotFound &&
      loaded.status().code() != StatusCode::kDataLoss) {
    return loaded.status();
  }

  // Miss (or rejected artifact): single-flight the compile behind the
  // per-plan flock, then re-probe — another process/thread may have
  // published while we waited.
  Result<ScopedPlanLock> lock = plan_cache_->AcquireLock(key);
  if (!lock.ok()) {
    // Lock file unusable (read-only dir?): still serve, just without
    // cross-process stampede protection.
    return ColdCompilePair(spec, &key);
  }
  loaded = plan_cache_->Load(key);
  if (loaded.ok()) return AdoptPlan(spec, std::move(loaded).value());
  return ColdCompilePair(spec, &key);
}

Result<core::ValidationReport> ValidationService::Record(
    Result<core::ValidationReport> result, const OpMetrics& op,
    Clock::time_point start, const PairEntry* pair, obs::RequestScope* scope,
    uint64_t node_count) {
  const uint64_t micros = ElapsedMicros(start);
  const bool failed = !result.ok() || !result->valid;
  {
    // Shared side of the snapshot lock: concurrent requests record in
    // parallel; counters() excludes them all for one consistent read.
    std::shared_lock lock(snapshot_mutex_);
    requests_->Add();
    op.dispatched->Add();
    op.latency->Record(micros);
    if (pair != nullptr) pair->latency->Record(micros);
    if (!result.ok()) {
      errors_->Add();
    } else {
      op.ok->Add();
      (result->valid ? valid_ : invalid_)->Add();
      const core::ValidationCounters& c = result->counters;
      nodes_visited_->Add(c.nodes_visited);
      dfa_steps_->Add(c.dfa_steps);
      subtrees_skipped_->Add(c.subtrees_skipped);
    }
  }
  // Settle the request's trace: keep failures and tail-bucket latencies,
  // and pin an exemplar where kept so the histogram's tail is clickable.
  // trace_id is 0 whenever no span consumer is active, so this whole
  // block is two branches on the uninstrumented hot path.
  if (scope != nullptr && scope->trace_id() != 0) {
    const bool keep = failed || op.latency->IsTailValue(micros);
    if (scope->owns()) {
      scope->set_keep(keep);
    } else if (keep) {
      obs::HintKeepTrace();  // a batch item's owner resolves later
    }
    if (keep) {
      obs::Exemplar exemplar;
      exemplar.trace_id = scope->trace_id();
      exemplar.value = micros;
      exemplar.node_count = node_count;
      if (pair != nullptr) exemplar.pair = pair->label;
      exemplar.verdict =
          !result.ok() ? "error" : (result->valid ? "valid" : "invalid");
      op.latency->RecordExemplar(micros, exemplar);
      if (pair != nullptr) pair->latency->RecordExemplar(micros, exemplar);
    }
  }
  return result;
}

void ValidationService::RecordRejected() {
  std::shared_lock lock(snapshot_mutex_);
  requests_->Add();
  errors_->Add();
}

const ValidationService::PairEntry* ValidationService::PairLatency(
    SchemaHandle source, SchemaHandle target) {
  const uint64_t key =
      (static_cast<uint64_t>(source) << 32) | static_cast<uint64_t>(target);
  {
    std::shared_lock lock(pair_mutex_);
    auto it = pair_latency_.find(key);
    if (it != pair_latency_.end()) return &it->second;
  }
  // Label with registry keys, "orders.v2->orders.v3"; bad handles get no
  // pair histogram (the request will fail in the cache anyway).
  Result<SchemaRegistry::Info> src = registry_.info(source);
  Result<SchemaRegistry::Info> tgt = registry_.info(target);
  if (!src.ok() || !tgt.ok()) return nullptr;
  std::string pair = src->key + ".v" + std::to_string(src->version) + "->" +
                     tgt->key + ".v" + std::to_string(tgt->version);
  obs::Histogram* hist = metrics_.histogram("xmlreval_pair_request_latency_us",
                                            {{"pair", pair}});
  std::unique_lock lock(pair_mutex_);
  return &pair_latency_.try_emplace(key, PairEntry{hist, std::move(pair)})
              .first->second;
}

Status ValidationService::BindDocument(xml::Document* doc) const {
  if (doc == nullptr) {
    return Status::InvalidArgument("BindDocument requires a document");
  }
  // Find-only bind: never grows Σ, so the shared guard suffices. The
  // resolved symbols stay valid after the guard is released because the
  // registry's Alphabet is append-only.
  auto guard = registry_.ReadGuard();
  return doc->Bind(registry_.alphabet());
}

void ValidationService::ObserveDocFootprint(const xml::Document& doc) {
  if (doc.NodeCount() == 0) return;
  const size_t bytes = doc.MemoryUsage().total();
  doc_bytes_->Set(static_cast<int64_t>(bytes));
  doc_bytes_per_node_->Set(static_cast<int64_t>(bytes / doc.NodeCount()));
}

Result<core::ValidationReport> ValidationService::Validate(
    SchemaHandle schema, const xml::Document& doc) {
  obs::RequestScope request_scope;
  obs::Span span("svc.validate");
  ObserveDocFootprint(doc);
  const Clock::time_point start = Clock::now();
  auto run = [&]() -> Result<core::ValidationReport> {
    std::shared_ptr<const schema::Schema> target = registry_.schema(schema);
    if (!target) {
      return Status::InvalidArgument("invalid schema handle " +
                                     std::to_string(schema));
    }
    // Validators read the shared Alphabet (label lookup on the hot path);
    // the guard keeps concurrent registrations from growing Σ under them.
    auto guard = registry_.ReadGuard();
    return core::FullValidator(target.get()).Validate(doc);
  };
  return Record(run(), validate_op_, start, nullptr, &request_scope,
                doc.NodeCount());
}

Result<core::ValidationReport> ValidationService::Cast(
    SchemaHandle source, SchemaHandle target, const xml::Document& doc) {
  obs::RequestScope request_scope;
  obs::Span span("svc.cast");
  if (span.enabled()) {
    span.Arg("src", source);
    span.Arg("tgt", target);
    span.Arg("nodes", doc.NodeCount());
  }
  ObserveDocFootprint(doc);
  const Clock::time_point start = Clock::now();
  auto run = [&]() -> Result<core::ValidationReport> {
    ASSIGN_OR_RETURN(RelationsPtr relations, cache_.Get(source, target));
    auto guard = registry_.ReadGuard();
    if (options_.check_cast_precondition) {
      core::ValidationReport source_report =
          core::FullValidator(&relations->source()).Validate(doc);
      if (!source_report.valid) {
        return Status::FailedPrecondition(
            "document is not valid under the source schema (" +
            source_report.violation + "); the cast precondition fails");
      }
    }
    // Large documents fan their subtrees out over the intra-doc executor;
    // below the threshold (or with the feature off) the serial engine
    // wins — spawn overhead would swamp a small walk. Either engine
    // returns the same report on the same input.
    if (options_.intra_doc_threads > 0 &&
        doc.NodeCount() >= options_.intra_doc_min_nodes) {
      core::ParallelCastValidator::Options parallel_options;
      parallel_options.cast = options_.cast;
      parallel_options.spawn_threshold = options_.intra_doc_spawn_threshold;
      return core::ParallelCastValidator(relations.get(), &IntraExecutor(),
                                         parallel_options)
          .Validate(doc);
    }
    return core::CastValidator(relations.get(), options_.cast).Validate(doc);
  };
  return Record(run(), cast_op_, start, PairLatency(source, target),
                &request_scope, doc.NodeCount());
}

// ---------------------------------------------------------------------
// Streaming cast
// ---------------------------------------------------------------------

namespace {

core::ValidationReport ToValidationReport(const core::StreamingReport& s) {
  core::ValidationReport report;
  report.valid = s.valid;
  report.violation = s.violation;
  if (s.violation_path_known) {
    report.violation_path = xml::DeweyPath(s.violation_path);
  }
  report.counters = s.counters;
  return report;
}

}  // namespace

struct ValidationService::CastStreamSession::State {
  ValidationService* service;
  RelationsPtr relations;  // pins the pair (and its schemas) for the session
  std::shared_lock<std::shared_mutex> guard;  // registry read guard
  core::StreamingCastSession engine;
  const PairEntry* pair;
  Clock::time_point start;
  bool finished = false;
  Result<core::ValidationReport> final_result = core::ValidationReport{};

  State(ValidationService* service_in, RelationsPtr relations_in,
        std::shared_lock<std::shared_mutex> guard_in, const PairEntry* pair_in)
      : service(service_in),
        relations(std::move(relations_in)),
        guard(std::move(guard_in)),
        engine(*relations),
        pair(pair_in),
        start(Clock::now()) {}
};

ValidationService::CastStreamSession::CastStreamSession(
    std::unique_ptr<State> state)
    : state_(std::move(state)) {}

// An abandoned session (destroyed without Finish) books nothing.
ValidationService::CastStreamSession::~CastStreamSession() = default;

Status ValidationService::CastStreamSession::Feed(std::string_view chunk) {
  if (state_->finished) {
    return Status::FailedPrecondition("cast stream already finished");
  }
  return state_->engine.Feed(chunk);
}

Result<core::ValidationReport> ValidationService::CastStreamSession::Finish() {
  if (state_->finished) return state_->final_result;
  state_->finished = true;
  obs::RequestScope request_scope;
  obs::Span span("svc.cast_stream");
  const core::StreamingReport& streamed = state_->engine.Finish();
  if (span.enabled()) {
    span.Arg("bytes_fed", streamed.bytes_fed);
    span.Arg("bytes_skipped", streamed.bytes_skipped);
    span.Arg("max_live_frames", streamed.max_live_frames);
  }
  ValidationService* service = state_->service;
  {
    std::shared_lock lock(service->snapshot_mutex_);
    service->stream_bytes_total_->Add(streamed.bytes_fed);
    service->stream_bytes_skipped_total_->Add(streamed.bytes_skipped);
  }
  service->stream_bytes_skipped_->Set(
      static_cast<int64_t>(streamed.bytes_skipped));
  service->stream_max_live_frames_->Set(
      static_cast<int64_t>(streamed.max_live_frames));
  service->stream_peak_carry_bytes_->Set(
      static_cast<int64_t>(streamed.peak_carry_bytes));
  auto run = [&]() -> Result<core::ValidationReport> {
    const Status& status = state_->engine.status();
    // kInvalidArgument here is the engine's cast-rejection channel — that
    // is a verdict, not an error. Anything else non-OK (malformed bytes,
    // unsupported entity) is a real error, as a DOM parse failure would be.
    if (!status.ok() && status.code() != StatusCode::kInvalidArgument) {
      return status;
    }
    return ToValidationReport(streamed);
  };
  state_->final_result = service->Record(
      run(), service->cast_stream_op_, state_->start, state_->pair,
      &request_scope, streamed.counters.nodes_visited);
  return state_->final_result;
}

const core::StreamingReport&
ValidationService::CastStreamSession::streaming_report() const {
  return state_->engine.Finish();
}

Result<std::unique_ptr<ValidationService::CastStreamSession>>
ValidationService::StartCastStream(SchemaHandle source, SchemaHandle target) {
  const Clock::time_point start = Clock::now();
  auto relations = cache_.Get(source, target);
  if (!relations.ok()) {
    // Book the failed open so requests == valid + invalid + errors holds
    // for streaming requests too.
    obs::RequestScope request_scope;
    Record(relations.status(), cast_stream_op_, start,
           PairLatency(source, target), &request_scope, 0);
    return relations.status();
  }
  auto state = std::make_unique<CastStreamSession::State>(
      this, std::move(relations).value(), registry_.ReadGuard(),
      PairLatency(source, target));
  state->start = start;
  return std::unique_ptr<CastStreamSession>(
      new CastStreamSession(std::move(state)));
}

Result<core::ValidationReport> ValidationService::CastStream(
    SchemaHandle source, SchemaHandle target, std::string_view text) {
  ASSIGN_OR_RETURN(std::unique_ptr<CastStreamSession> session,
                   StartCastStream(source, target));
  // An early-decided verdict just stops the feed; Finish reports it.
  Status fed = session->Feed(text);
  (void)fed;
  return session->Finish();
}

Result<core::ValidationReport> ValidationService::CastWithMods(
    SchemaHandle source, SchemaHandle target, const xml::Document& doc,
    const xml::ModificationIndex& mods) {
  obs::RequestScope request_scope;
  obs::Span span("svc.cast_with_mods");
  const Clock::time_point start = Clock::now();
  auto run = [&]() -> Result<core::ValidationReport> {
    ASSIGN_OR_RETURN(RelationsPtr relations, cache_.Get(source, target));
    auto guard = registry_.ReadGuard();
    return core::ModValidator(relations.get(), options_.mods)
        .Validate(doc, mods);
  };
  return Record(run(), cast_with_mods_op_, start, PairLatency(source, target),
                &request_scope, doc.NodeCount());
}

Result<analysis::OpVerdict> ValidationService::AnalyzeUpdate(
    SchemaHandle source, SchemaHandle target, const xml::Document& doc,
    const xml::EditOp& op) {
  obs::Span span("svc.analyze_update");
  ASSIGN_OR_RETURN(AnalyzerPtr analyzer, cache_.GetAnalyzer(source, target));
  auto guard = registry_.ReadGuard();
  return analyzer->Analyze(doc, op);
}

Result<ValidationService::EditStreamResult> ValidationService::SubmitEditStream(
    SchemaHandle source, SchemaHandle target, xml::Document* doc,
    const std::vector<xml::EditOp>& ops) {
  obs::RequestScope request_scope;
  obs::Span span("svc.edit_stream");
  const Clock::time_point start = Clock::now();
  auto run = [&]() -> Result<EditStreamResult> {
    if (doc == nullptr) {
      return Status::InvalidArgument("SubmitEditStream requires a document");
    }
    ASSIGN_OR_RETURN(AnalyzerPtr analyzer, cache_.GetAnalyzer(source, target));
    auto guard = registry_.ReadGuard();

    EditStreamResult result;
    analysis::StreamSession session(analyzer.get(), doc);
    for (const xml::EditOp& op : ops) {
      RETURN_IF_ERROR(session.Apply(op).WithContext("edit stream op"));
    }
    {
      obs::Span classify_span("analysis.classify");
      result.stream = session.Classify();
    }

    if (result.stream.decided()) {
      // Short circuit: the composed static verdict IS the answer; no
      // validator runs, no node is visited.
      result.short_circuited = true;
      result.report.valid = result.stream.verdict == analysis::Safety::kSafe;
      if (!result.report.valid) {
        result.report.violation = result.stream.reason;
      }
      // The editor contract requires Seal() before Commit(); the index it
      // returns (O(|ops|), no tree traversal) is simply dropped.
      session.Seal();
      RETURN_IF_ERROR(session.Commit());
      return result;
    }

    // Fallback: the session doubles as a plain editor; seal its Δ-index
    // and run the §3.3 incremental validator as CastWithMods would.
    xml::ModificationIndex mods = session.Seal();
    result.report =
        core::ModValidator(&analyzer->relations(), options_.mods)
            .Validate(*doc, mods);
    RETURN_IF_ERROR(session.Commit());
    return result;
  };

  Result<EditStreamResult> result = run();
  const uint64_t micros = ElapsedMicros(start);
  const PairEntry* pair = PairLatency(source, target);
  {
    std::shared_lock lock(snapshot_mutex_);
    requests_->Add();
    edit_stream_op_.dispatched->Add();
    edit_stream_op_.latency->Record(micros);
    if (pair != nullptr) pair->latency->Record(micros);
    if (!result.ok()) {
      errors_->Add();
    } else {
      edit_stream_op_.ok->Add();
      (result->report.valid ? valid_ : invalid_)->Add();
      const analysis::StreamVerdict& stream = result->stream;
      edit_ops_safe_->Add(stream.safe_ops);
      edit_ops_fatal_->Add(stream.fatal_ops);
      edit_ops_unknown_->Add(stream.unknown_ops);
      if (result->short_circuited) {
        (stream.verdict == analysis::Safety::kSafe ? streams_safe_
                                                   : streams_fatal_)
            ->Add();
      } else {
        streams_fallback_->Add();
        const core::ValidationCounters& c = result->report.counters;
        nodes_visited_->Add(c.nodes_visited);
        dfa_steps_->Add(c.dfa_steps);
        subtrees_skipped_->Add(c.subtrees_skipped);
      }
    }
  }
  if (request_scope.trace_id() != 0) {
    const bool failed = !result.ok() || !result->report.valid;
    const bool keep = failed || edit_stream_op_.latency->IsTailValue(micros);
    if (request_scope.owns()) {
      request_scope.set_keep(keep);
    } else if (keep) {
      obs::HintKeepTrace();
    }
    if (keep) {
      obs::Exemplar exemplar;
      exemplar.trace_id = request_scope.trace_id();
      exemplar.value = micros;
      exemplar.node_count = doc != nullptr ? doc->NodeCount() : 0;
      if (pair != nullptr) exemplar.pair = pair->label;
      exemplar.verdict =
          !result.ok() ? "error" : (result->report.valid ? "valid" : "invalid");
      edit_stream_op_.latency->RecordExemplar(micros, exemplar);
      if (pair != nullptr) pair->latency->RecordExemplar(micros, exemplar);
    }
  }
  return result;
}

common::Executor& ValidationService::BatchExecutor() {
  // Double-checked: lock-free after first init (see header comment on
  // executors_mutex_).
  if (common::Executor* existing =
          batch_executor_ptr_.load(std::memory_order_acquire)) {
    return *existing;
  }
  std::lock_guard lock(executors_mutex_);
  if (!batch_executor_) {
    common::Executor::Options options;
    options.threads = options_.batch_threads;
    options.queue_capacity = options_.batch_queue_capacity;
    options.depth_hook = [this](int64_t delta) {
      // Live depth + running max; PublishObsHealth turns the max into the
      // gauge each snapshot (bursts between snapshots stay visible).
      int64_t now =
          batch_depth_.fetch_add(delta, std::memory_order_relaxed) + delta;
      int64_t seen = batch_depth_hwm_.load(std::memory_order_relaxed);
      while (now > seen && !batch_depth_hwm_.compare_exchange_weak(
                               seen, now, std::memory_order_relaxed)) {
      }
    };
    options.task_wrapper = [](common::Executor::Task task) {
      // Capture the submitting thread's causal context and re-install it
      // around execution on whichever worker picks the task up.
      obs::TraceContext ctx = obs::CurrentTraceContext();
      return common::Executor::Task([ctx, task = std::move(task)] {
        obs::ScopedTraceContext scoped(ctx);
        task();
      });
    };
    batch_executor_ = std::make_unique<common::Executor>(options);
    batch_executor_ptr_.store(batch_executor_.get(),
                              std::memory_order_release);
  }
  return *batch_executor_;
}

common::Executor& ValidationService::IntraExecutor() {
  if (common::Executor* existing =
          intra_executor_ptr_.load(std::memory_order_acquire)) {
    return *existing;
  }
  std::lock_guard lock(executors_mutex_);
  if (!intra_executor_) {
    common::Executor::Options options;
    options.threads = options_.intra_doc_threads;
    // Donated subtree tasks come from worker threads (own deques); the
    // injection queue only ever carries each document's root task.
    options.queue_capacity = 64;
    options.depth_hook = [this](int64_t delta) {
      int64_t now =
          intra_depth_.fetch_add(delta, std::memory_order_relaxed) + delta;
      int64_t seen = intra_depth_hwm_.load(std::memory_order_relaxed);
      while (now > seen && !intra_depth_hwm_.compare_exchange_weak(
                               seen, now, std::memory_order_relaxed)) {
      }
    };
    intra_executor_ = std::make_unique<common::Executor>(options);
    intra_executor_ptr_.store(intra_executor_.get(),
                              std::memory_order_release);
  }
  return *intra_executor_;
}

ValidationService::BatchItemResult ValidationService::ProcessItem(
    const BatchItem& item) {
  obs::Span span("batch.item");
  batch_inflight_->Add(1);
  const Clock::time_point start = Clock::now();
  BatchItemResult result = [&]() -> BatchItemResult {
    BatchItemResult out;
    // Large casts stream: the text is consumed incrementally by the
    // push-parser engine and no DOM is ever materialized on the worker.
    if (item.op == BatchOp::kCast && options_.stream_threshold_bytes > 0 &&
        item.xml_text.size() >= options_.stream_threshold_bytes) {
      Result<core::ValidationReport> report =
          CastStream(item.source, item.target, item.xml_text);
      if (!report.ok()) {
        out.status = report.status().WithContext("batch item");
        return out;
      }
      out.report = std::move(report).value();
      return out;
    }
    Result<xml::Document> doc = [&] {
      obs::Span parse_span("item.parse");
      return xml::ParseXml(item.xml_text);
    }();
    if (!doc.ok()) {
      RecordRejected();
      out.status = doc.status().WithContext("batch item");
      return out;
    }
    // Bind once per item: every validator the item reaches (precondition
    // check, cast, full validation) then reads node symbols directly
    // instead of hashing each label against the shared Alphabet.
    Status bind = [&] {
      obs::Span bind_span("item.bind");
      return BindDocument(&*doc);
    }();
    if (!bind.ok()) {
      RecordRejected();
      out.status = bind.WithContext("batch item");
      return out;
    }
    Result<core::ValidationReport> report =
        item.op == BatchOp::kValidate ? Validate(item.target, *doc)
                                      : Cast(item.source, item.target, *doc);
    if (!report.ok()) {
      out.status = report.status();
      return out;
    }
    out.report = std::move(report).value();
    return out;
  }();
  batch_service_us_->Record(ElapsedMicros(start));
  batch_inflight_->Sub(1);
  return result;
}

struct ValidationService::BatchState {
  std::vector<BatchItem> items;
  std::vector<BatchItemResult> results;
  std::atomic<size_t> remaining{0};
  std::promise<std::vector<BatchItemResult>> done;
};

std::future<std::vector<ValidationService::BatchItemResult>>
ValidationService::SubmitBatch(std::vector<BatchItem> items) {
  {
    std::shared_lock lock(snapshot_mutex_);
    batches_->Add();
    batch_items_->Add(items.size());
  }

  auto state = std::make_shared<BatchState>();
  state->items = std::move(items);
  state->results.resize(state->items.size());
  state->remaining.store(state->items.size(), std::memory_order_relaxed);
  std::future<std::vector<BatchItemResult>> future =
      state->done.get_future();
  if (state->items.empty()) {
    state->done.set_value({});
    return future;
  }

  common::Executor& pool = BatchExecutor();
  obs::Span submit_span("batch.submit");
  for (size_t i = 0; i < state->items.size(); ++i) {
    // Each item is its own request: mint its trace id on the submitting
    // thread and fork a flow edge under it, so the Chrome trace draws an
    // arrow from this batch.submit span to the item's batch.item span on
    // whichever worker runs it. All-zero when tracing is off.
    obs::TraceContext item_ctx;
    {
      obs::ScopedTraceContext minted(
          obs::TraceContext{obs::NewTraceId(), 0, nullptr});
      item_ctx = obs::ForkFlow("batch.flow");
      item_ctx.trace_id = obs::CurrentTraceContext().trace_id;
    }
    // Trace-epoch timestamp doubles as the queue-wait baseline, so the
    // histogram sample and the "queue.wait" trace event agree exactly.
    const uint64_t enqueued_us = obs::TraceNowMicros();
    auto task = [this, state, i, enqueued_us, item_ctx] {
      // This scope OWNS the item's trace: it minted above, and everything
      // the item does (parse, bind, nested Cast/Validate, intra-doc
      // fan-out) runs below it, so its destructor resolves tail sampling
      // after the last span of the item has been staged.
      obs::RequestScope request_scope(item_ctx);
      obs::ScopedTraceContext scoped(item_ctx);
      const uint64_t picked_up_us = obs::TraceNowMicros();
      const uint64_t wait_us =
          picked_up_us > enqueued_us ? picked_up_us - enqueued_us : 0;
      queue_wait_us_->Record(wait_us);
      if (obs::TraceEnabled()) {
        obs::FlowStep(item_ctx);  // flow touches down at queue pickup
        // Manual event: the wait has no RAII scope (it spans two threads).
        obs::TraceSink::Event event;
        event.name = "queue.wait";
        event.ts_us = enqueued_us;
        event.dur_us = wait_us;
        event.trace_id = item_ctx.trace_id;
        event.tid = obs::TraceSink::CurrentThreadId();
        obs::TraceSink::Global().Record(event);
      }
      state->results[i] = ProcessItem(state->items[i]);
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state->done.set_value(std::move(state->results));
      }
    };
    if (!pool.Submit(task)) {
      // Pool shut down mid-batch (service teardown): fail the rest.
      state->results[i].status =
          Status::FailedPrecondition("batch pipeline is shut down");
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state->done.set_value(std::move(state->results));
      }
    }
  }
  return future;
}

ValidationService::Counters ValidationService::counters() const {
  // Exclusive side: no request is mid-record while we read, so the
  // snapshot satisfies requests == valid + invalid + errors.
  std::unique_lock lock(snapshot_mutex_);
  Counters counters;
  counters.requests = requests_->Value();
  counters.valid = valid_->Value();
  counters.invalid = invalid_->Value();
  counters.errors = errors_->Value();
  counters.full_validations = validate_op_.ok->Value();
  counters.casts = cast_op_.ok->Value();
  counters.casts_with_mods = cast_with_mods_op_.ok->Value();
  counters.cast_streams = cast_stream_op_.ok->Value();
  counters.stream_bytes = stream_bytes_total_->Value();
  counters.stream_bytes_skipped = stream_bytes_skipped_total_->Value();
  counters.batches = batches_->Value();
  counters.batch_items = batch_items_->Value();
  counters.nodes_visited = nodes_visited_->Value();
  counters.edit_streams = edit_stream_op_.ok->Value();
  counters.streams_short_circuited =
      streams_safe_->Value() + streams_fatal_->Value();
  counters.edit_ops_safe = edit_ops_safe_->Value();
  counters.edit_ops_fatal = edit_ops_fatal_->Value();
  counters.edit_ops_unknown = edit_ops_unknown_->Value();
  return counters;
}

}  // namespace xmlreval::service
