#include "service/schema_registry.h"

#include <mutex>
#include <utility>

#include "common/macros.h"

namespace xmlreval::service {

SchemaRegistry::SchemaRegistry()
    : alphabet_(std::make_shared<automata::Alphabet>()) {}

template <typename ParseFn>
Result<SchemaHandle> SchemaRegistry::RegisterParsed(std::string_view key,
                                                    std::string_view text,
                                                    ParseFn&& parse) {
  if (key.empty()) {
    return Status::InvalidArgument("schema key must be non-empty");
  }
  // The parse interns labels into the shared Alphabet, so it runs under the
  // exclusive lock: no validator may read Σ concurrently.
  std::unique_lock lock(mutex_);
  auto it = versions_.find(std::string(key));
  if (it != versions_.end()) {
    const Entry& latest = entries_[it->second.back()];
    if (!latest.text.empty() && latest.text == text) {
      return it->second.back();  // idempotent re-registration
    }
  }
  ASSIGN_OR_RETURN(schema::Schema parsed, parse());
  return Insert(key, text,
                std::make_shared<const schema::Schema>(std::move(parsed)));
}

Result<SchemaHandle> SchemaRegistry::RegisterXsd(
    std::string_view key, std::string_view text,
    const schema::XsdParseOptions& options) {
  return RegisterParsed(
      key, text, [&] { return schema::ParseXsd(text, alphabet_, options); });
}

Result<SchemaHandle> SchemaRegistry::RegisterDtd(
    std::string_view key, std::string_view text,
    const schema::DtdParseOptions& options) {
  return RegisterParsed(
      key, text, [&] { return schema::ParseDtd(text, alphabet_, options); });
}

Result<SchemaHandle> SchemaRegistry::RegisterSchema(std::string_view key,
                                                    schema::Schema schema) {
  if (key.empty()) {
    return Status::InvalidArgument("schema key must be non-empty");
  }
  if (schema.alphabet() != alphabet_) {
    return Status::InvalidArgument(
        "schema '" + std::string(key) +
        "' does not share the registry's alphabet; parse it against "
        "registry.alphabet()");
  }
  std::unique_lock lock(mutex_);
  return Insert(key, /*text=*/"",
                std::make_shared<const schema::Schema>(std::move(schema)));
}

Result<SchemaHandle> SchemaRegistry::RegisterCompiled(
    std::string_view key, std::string_view text,
    std::shared_ptr<const schema::Schema> schema) {
  if (key.empty()) {
    return Status::InvalidArgument("schema key must be non-empty");
  }
  if (!schema) {
    return Status::InvalidArgument("RegisterCompiled: null schema");
  }
  if (schema->alphabet() != alphabet_) {
    return Status::InvalidArgument(
        "compiled schema '" + std::string(key) +
        "' does not share the registry's alphabet; AdoptAlphabet the plan's "
        "alphabet into a fresh registry first");
  }
  std::unique_lock lock(mutex_);
  auto it = versions_.find(std::string(key));
  if (it != versions_.end()) {
    const Entry& latest = entries_[it->second.back()];
    if (!latest.text.empty() && latest.text == text) {
      return it->second.back();  // idempotent re-registration
    }
  }
  return Insert(key, text, std::move(schema));
}

Status SchemaRegistry::AdoptAlphabet(
    std::shared_ptr<automata::Alphabet> alphabet) {
  if (!alphabet) {
    return Status::InvalidArgument("AdoptAlphabet: null alphabet");
  }
  std::unique_lock lock(mutex_);
  if (!entries_.empty()) {
    return Status::FailedPrecondition(
        "AdoptAlphabet: registry already holds schemas bound to its current "
        "alphabet");
  }
  alphabet_ = std::move(alphabet);
  return Status::OK();
}

SchemaHandle SchemaRegistry::Insert(
    std::string_view key, std::string_view text,
    std::shared_ptr<const schema::Schema> schema) {
  SchemaHandle handle = static_cast<SchemaHandle>(entries_.size());
  std::vector<SchemaHandle>& chain = versions_[std::string(key)];
  Entry entry;
  entry.key = std::string(key);
  entry.version = static_cast<uint32_t>(chain.size()) + 1;
  entry.text = std::string(text);
  entry.schema = std::move(schema);
  entries_.push_back(std::move(entry));
  chain.push_back(handle);
  return handle;
}

Result<SchemaHandle> SchemaRegistry::Resolve(std::string_view key) const {
  std::shared_lock lock(mutex_);
  auto it = versions_.find(std::string(key));
  if (it == versions_.end()) {
    return Status::NotFound("no schema registered under '" + std::string(key) +
                            "'");
  }
  return it->second.back();
}

Result<SchemaHandle> SchemaRegistry::Resolve(std::string_view key,
                                             uint32_t version) const {
  std::shared_lock lock(mutex_);
  auto it = versions_.find(std::string(key));
  if (it == versions_.end()) {
    return Status::NotFound("no schema registered under '" + std::string(key) +
                            "'");
  }
  if (version == 0 || version > it->second.size()) {
    return Status::NotFound("schema '" + std::string(key) + "' has no version " +
                            std::to_string(version) + " (latest is " +
                            std::to_string(it->second.size()) + ")");
  }
  return it->second[version - 1];
}

std::shared_ptr<const schema::Schema> SchemaRegistry::schema(
    SchemaHandle handle) const {
  std::shared_lock lock(mutex_);
  if (handle >= entries_.size()) return nullptr;
  return entries_[handle].schema;
}

Result<SchemaRegistry::Info> SchemaRegistry::info(SchemaHandle handle) const {
  std::shared_lock lock(mutex_);
  if (handle >= entries_.size()) {
    return Status::InvalidArgument("invalid schema handle " +
                                   std::to_string(handle));
  }
  return Info{entries_[handle].key, entries_[handle].version};
}

size_t SchemaRegistry::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

uint32_t SchemaRegistry::VersionCount(std::string_view key) const {
  std::shared_lock lock(mutex_);
  auto it = versions_.find(std::string(key));
  return it == versions_.end() ? 0 : static_cast<uint32_t>(it->second.size());
}

}  // namespace xmlreval::service
