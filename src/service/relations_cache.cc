#include "service/relations_cache.h"

#include <chrono>
#include <mutex>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/trace.h"

namespace xmlreval::service {

RelationsCache::RelationsCache(const SchemaRegistry* registry,
                               const Options& options,
                               obs::MetricsRegistry* metrics)
    : registry_(registry),
      options_(options),
      metrics_(metrics != nullptr ? metrics
                                  : &obs::MetricsRegistry::Default()),
      hits_(metrics_->counter("xmlreval_relations_cache_hits_total")),
      misses_(metrics_->counter("xmlreval_relations_cache_misses_total")),
      computations_(
          metrics_->counter("xmlreval_relations_cache_computations_total")),
      evictions_(
          metrics_->counter("xmlreval_relations_cache_evictions_total")),
      compute_micros_total_(
          metrics_->counter("xmlreval_relations_compute_micros_total")),
      compute_us_(metrics_->histogram("xmlreval_relations_compute_us")),
      analyzer_compilations_(metrics_->counter(
          "xmlreval_update_analyzers_compiled_total")) {}

Result<RelationsPtr> RelationsCache::Get(SchemaHandle source,
                                         SchemaHandle target) {
  const uint64_t key = Key(source, target);

  // Fast path: shared-lock probe. Copy the entry pointer out so the future
  // can be awaited without holding the map lock.
  {
    std::shared_lock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      std::shared_ptr<Entry> entry = it->second;
      lock.unlock();
      entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
      if (entry->ready.load(std::memory_order_acquire)) {
        hits_->Add();
      } else {
        // Single-flight join: someone else is computing this pair.
        misses_->Add();
      }
      return entry->future.get();
    }
  }

  // Slow path: insert an in-flight entry (double-checked). Whoever inserts
  // owns the computation; racers become single-flight joiners.
  std::promise<Result<RelationsPtr>> promise;
  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::unique_lock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;  // lost the insert race
    } else {
      entry = std::make_shared<Entry>();
      entry->future = promise.get_future().share();
      entry->last_used.store(
          clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      entries_.emplace(key, entry);
      owner = true;
    }
  }
  misses_->Add();
  if (!owner) {
    entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                           std::memory_order_relaxed);
    return entry->future.get();
  }

  // Owner: run the fixpoint outside all cache locks, publish to waiters,
  // then evict (success) or drop the entry (failure — later calls retry).
  Result<RelationsPtr> result = Compute(source, target);
  entry->ready.store(true, std::memory_order_release);
  promise.set_value(result);
  {
    std::unique_lock lock(mutex_);
    if (result.ok()) {
      EvictIfOver();
    } else {
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
    }
  }
  return result;
}

Result<AnalyzerPtr> RelationsCache::GetAnalyzer(SchemaHandle source,
                                                SchemaHandle target) {
  const uint64_t key = Key(source, target);

  // Fast path: shared-lock probe (the single-flight structure mirrors
  // Get(); hits/misses roll into the same cache counters).
  {
    std::shared_lock lock(analyzer_mutex_);
    auto it = analyzer_entries_.find(key);
    if (it != analyzer_entries_.end()) {
      std::shared_ptr<AnalyzerEntry> entry = it->second;
      lock.unlock();
      entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
      if (entry->ready.load(std::memory_order_acquire)) {
        hits_->Add();
      } else {
        misses_->Add();
      }
      return entry->future.get();
    }
  }

  std::promise<Result<AnalyzerPtr>> promise;
  std::shared_ptr<AnalyzerEntry> entry;
  bool owner = false;
  {
    std::unique_lock lock(analyzer_mutex_);
    auto it = analyzer_entries_.find(key);
    if (it != analyzer_entries_.end()) {
      entry = it->second;  // lost the insert race
    } else {
      entry = std::make_shared<AnalyzerEntry>();
      entry->future = promise.get_future().share();
      entry->last_used.store(
          clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      analyzer_entries_.emplace(key, entry);
      owner = true;
    }
  }
  misses_->Add();
  if (!owner) {
    entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                           std::memory_order_relaxed);
    return entry->future.get();
  }

  Result<AnalyzerPtr> result = CompileAnalyzer(source, target);
  entry->ready.store(true, std::memory_order_release);
  promise.set_value(result);
  {
    std::unique_lock lock(analyzer_mutex_);
    if (result.ok()) {
      EvictAnalyzersIfOver();
    } else {
      auto it = analyzer_entries_.find(key);
      if (it != analyzer_entries_.end() && it->second == entry) {
        analyzer_entries_.erase(it);
      }
    }
  }
  return result;
}

void RelationsCache::Seed(SchemaHandle source, SchemaHandle target,
                          RelationsPtr relations, AnalyzerPtr analyzer) {
  if (!relations) return;
  const uint64_t key = Key(source, target);
  {
    std::promise<Result<RelationsPtr>> promise;
    promise.set_value(std::move(relations));
    std::unique_lock lock(mutex_);
    if (entries_.find(key) == entries_.end()) {
      auto entry = std::make_shared<Entry>();
      entry->future = promise.get_future().share();
      entry->ready.store(true, std::memory_order_release);
      entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
      entries_.emplace(key, std::move(entry));
      EvictIfOver();
    }
  }
  if (!analyzer) return;
  std::promise<Result<AnalyzerPtr>> promise;
  promise.set_value(std::move(analyzer));
  std::unique_lock lock(analyzer_mutex_);
  if (analyzer_entries_.find(key) == analyzer_entries_.end()) {
    auto entry = std::make_shared<AnalyzerEntry>();
    entry->future = promise.get_future().share();
    entry->ready.store(true, std::memory_order_release);
    entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                           std::memory_order_relaxed);
    analyzer_entries_.emplace(key, std::move(entry));
    EvictAnalyzersIfOver();
  }
}

Result<AnalyzerPtr> RelationsCache::CompileAnalyzer(SchemaHandle source,
                                                    SchemaHandle target) {
  // The relations computation (or cached entry) comes first; the analyzer
  // shares ownership of it, so an evicted relations entry stays alive for
  // as long as its analyzer does.
  ASSIGN_OR_RETURN(RelationsPtr relations, Get(source, target));
  obs::Span span("analysis.compile");
  Result<analysis::UpdateAnalyzer> analyzer =
      analysis::UpdateAnalyzer::Compile(std::move(relations));
  if (!analyzer.ok()) return analyzer.status();
  analyzer_compilations_->Add();
  return AnalyzerPtr(std::make_shared<const analysis::UpdateAnalyzer>(
      std::move(analyzer).value()));
}

void RelationsCache::EvictAnalyzersIfOver() {
  if (options_.capacity == 0) return;
  size_t ready_count = 0;
  for (const auto& [key, entry] : analyzer_entries_) {
    if (entry->ready.load(std::memory_order_acquire)) ++ready_count;
  }
  while (ready_count > options_.capacity) {
    uint64_t victim_key = 0;
    uint64_t oldest = UINT64_MAX;
    for (const auto& [key, entry] : analyzer_entries_) {
      if (!entry->ready.load(std::memory_order_acquire)) continue;
      uint64_t used = entry->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim_key = key;
      }
    }
    analyzer_entries_.erase(victim_key);
    evictions_->Add();
    --ready_count;
  }
}

Result<RelationsPtr> RelationsCache::Compute(SchemaHandle source,
                                             SchemaHandle target) {
  std::shared_ptr<const schema::Schema> src = registry_->schema(source);
  std::shared_ptr<const schema::Schema> tgt = registry_->schema(target);
  if (!src || !tgt) {
    return Status::InvalidArgument(
        "invalid schema handle (" + std::to_string(source) + ", " +
        std::to_string(target) + ") passed to RelationsCache::Get");
  }
  // TypeRelations::Compute reads the shared Alphabet (padding DFAs to its
  // size); hold the registry read guard so no registration grows Σ under it.
  auto guard = registry_->ReadGuard();
  obs::Span span("relations.fixpoint");
  auto t0 = std::chrono::steady_clock::now();
  Result<core::TypeRelations> relations =
      core::TypeRelations::Compute(src.get(), tgt.get(), options_.relations);
  auto t1 = std::chrono::steady_clock::now();
  uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  compute_micros_total_->Add(micros);
  compute_us_->Record(micros);
  computations_->Add();
  span.Arg("micros", micros);
  if (!relations.ok()) return relations.status();
  // The relations keep both schemas alive via the captured shared_ptrs.
  struct Holder {
    std::shared_ptr<const schema::Schema> src, tgt;
    core::TypeRelations relations;
  };
  auto holder = std::make_shared<Holder>(
      Holder{std::move(src), std::move(tgt), std::move(relations).value()});
  return RelationsPtr(holder, &holder->relations);
}

void RelationsCache::EvictIfOver() {
  if (options_.capacity == 0) return;
  size_t ready_count = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry->ready.load(std::memory_order_acquire)) ++ready_count;
  }
  while (ready_count > options_.capacity) {
    uint64_t victim_key = 0;
    uint64_t oldest = UINT64_MAX;
    for (const auto& [key, entry] : entries_) {
      if (!entry->ready.load(std::memory_order_acquire)) continue;
      uint64_t used = entry->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim_key = key;
      }
    }
    entries_.erase(victim_key);
    evictions_->Add();
    --ready_count;
  }
}

RelationsCache::Stats RelationsCache::stats() const {
  Stats stats;
  stats.hits = hits_->Value();
  stats.misses = misses_->Value();
  stats.computations = computations_->Value();
  stats.evictions = evictions_->Value();
  stats.compute_micros = compute_micros_total_->Value();
  stats.compute_max_micros = compute_us_->Max();
  uint64_t samples = compute_us_->Count();
  stats.compute_mean_micros =
      samples == 0 ? 0.0 : double(compute_us_->Sum()) / double(samples);
  stats.analyzer_compilations = analyzer_compilations_->Value();
  return stats;
}

size_t RelationsCache::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

}  // namespace xmlreval::service
