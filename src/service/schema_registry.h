// SchemaRegistry — the serving layer's schema store.
//
// The paper's broker deployment (§2) preprocesses schemas once, at
// subscription time, and serves any number of documents against them. The
// registry is that subscription step made concrete: it interns compiled
// abstract schemas under string keys, parse-once, immutable thereafter.
// Re-registering a key creates a new VERSION (schema evolution — the
// Genevès/Solimando regime of many live schema revisions); registering the
// latest version's byte-identical text again is a no-op returning the
// existing handle.
//
// All schemas in one registry share one Alphabet, the paper's common Σ —
// the precondition of TypeRelations::Compute — so any two registered
// schemas can be cast between. Handles are dense, stable, and cheap to
// copy; a handle (plus the shared_ptr the registry hands out) stays valid
// for the registry's lifetime even across later registrations.
//
// Thread safety: Register* serializes writers and excludes readers while
// it parses (parsing interns new labels into the shared Alphabet, which is
// not concurrency-safe). Resolve/schema/info take the read side. Code that
// reads the Alphabet OUTSIDE the registry — validators calling
// Alphabet::Find on the document hot path, TypeRelations::Compute padding
// DFAs to the alphabet size — must hold a ReadGuard() for the duration so
// a concurrent registration cannot grow Σ under it. Guards must not be
// held across calls back into the registry (the lock is not recursive).

#ifndef XMLREVAL_SERVICE_SCHEMA_REGISTRY_H_
#define XMLREVAL_SERVICE_SCHEMA_REGISTRY_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "schema/abstract_schema.h"
#include "schema/dtd_parser.h"
#include "schema/xsd_parser.h"

namespace xmlreval::service {

/// Dense index of one registered schema version within a registry.
using SchemaHandle = uint32_t;
inline constexpr SchemaHandle kInvalidSchemaHandle = 0xFFFFFFFFu;

class SchemaRegistry {
 public:
  SchemaRegistry();
  SchemaRegistry(const SchemaRegistry&) = delete;
  SchemaRegistry& operator=(const SchemaRegistry&) = delete;

  /// Parses and registers XSD text under `key`. A new key starts at
  /// version 1; an existing key gains the next version — unless `text` is
  /// byte-identical to the key's latest version, which returns that
  /// version's handle without reparsing.
  Result<SchemaHandle> RegisterXsd(std::string_view key, std::string_view text,
                                   const schema::XsdParseOptions& options = {});

  /// Same for DTD text.
  Result<SchemaHandle> RegisterDtd(std::string_view key, std::string_view text,
                                   const schema::DtdParseOptions& options = {});

  /// Registers an already-built Schema. It must share this registry's
  /// Alphabet (kInvalidArgument otherwise). No text-dedup applies.
  Result<SchemaHandle> RegisterSchema(std::string_view key,
                                      schema::Schema schema);

  /// Registers a schema decoded from a plan artifact. Unlike
  /// RegisterSchema, the shared_ptr is stored as-is (plan schemas alias an
  /// mmap'd artifact bundle and must not be copied out of it), and `text`
  /// participates in latest-version dedup so a later RegisterXsd/Dtd of
  /// the same bytes resolves to this handle without reparsing.
  Result<SchemaHandle> RegisterCompiled(
      std::string_view key, std::string_view text,
      std::shared_ptr<const schema::Schema> schema);

  /// Replaces the registry's (empty) shared Alphabet with one decoded from
  /// a plan artifact, so plan schemas can register without re-interning.
  /// Only legal before any schema is registered; fails with
  /// kFailedPrecondition once entries exist (their symbols are bound to
  /// the old instance).
  Status AdoptAlphabet(std::shared_ptr<automata::Alphabet> alphabet);

  /// Latest version of `key`, or kNotFound.
  Result<SchemaHandle> Resolve(std::string_view key) const;
  /// Specific 1-based version of `key`, or kNotFound.
  Result<SchemaHandle> Resolve(std::string_view key, uint32_t version) const;

  /// The schema behind a handle; nullptr for out-of-range handles.
  std::shared_ptr<const schema::Schema> schema(SchemaHandle handle) const;

  struct Info {
    std::string key;
    uint32_t version = 0;
  };
  /// Key and version of a handle, or kInvalidArgument for bad handles.
  Result<Info> info(SchemaHandle handle) const;

  /// Total registered schema versions (== 1 + the largest valid handle).
  size_t size() const;
  /// Number of versions registered under `key` (0 when unknown).
  uint32_t VersionCount(std::string_view key) const;

  /// The shared Σ. Do not intern into it directly; do not read it during
  /// serving without a ReadGuard.
  const std::shared_ptr<automata::Alphabet>& alphabet() const {
    return alphabet_;
  }

  /// Read-side lock covering the shared Alphabet (see header comment).
  [[nodiscard]] std::shared_lock<std::shared_mutex> ReadGuard() const {
    return std::shared_lock<std::shared_mutex>(mutex_);
  }

 private:
  struct Entry {
    std::string key;
    uint32_t version = 0;
    std::string text;  // source text, for latest-version dedup ("" = none)
    std::shared_ptr<const schema::Schema> schema;
  };

  template <typename ParseFn>
  Result<SchemaHandle> RegisterParsed(std::string_view key,
                                      std::string_view text, ParseFn&& parse);
  SchemaHandle Insert(std::string_view key, std::string_view text,
                      std::shared_ptr<const schema::Schema> schema);
  // ^ requires exclusive mutex_

  mutable std::shared_mutex mutex_;
  std::shared_ptr<automata::Alphabet> alphabet_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::vector<SchemaHandle>> versions_;
};

}  // namespace xmlreval::service

#endif  // XMLREVAL_SERVICE_SCHEMA_REGISTRY_H_
