// Persistent compiled cast plans: the warm-start cache.
//
// Compiling a (source, target) cast — parse both schemas, build Glushkov
// DFAs, run the R_sub/R_nondis fixpoints, derive the immediate decision
// automata and update-safety tables — dominates time-to-first-validation
// for short-lived processes. A PlanCache serializes all of it once into a
// versioned binary artifact ("plan") keyed by a content hash of the schema
// texts, and later processes mmap the artifact read-only: the DFA
// transition tables and the packed relation bytes are used IN PLACE
// (automata::Dfa::FromExternal / TypeRelations' borrowed rel view), so N
// concurrent processes share one page-cache copy with no per-process
// deserialization of the hot tables.
//
// Artifact layout (little-endian; all table sections 8-byte aligned
// relative to the file start — see DESIGN.md "Plan artifact format"):
//
//   header (48 bytes):
//     u64 magic "XRVLPLAN"      u32 endian tag 0x01020304
//     u32 format version        u64 content hash (key echo)
//     u32 flags                 u32 reserved
//     u64 payload size          u64 payload FNV-1a
//   payload:
//     alphabet names | source Schema | target Schema | TypeRelations |
//     analyzer flag + UpdateAnalyzer tables
//
// Every load validates the full header, the checksum, and every id/offset
// in the payload; a truncated, bit-flipped, wrong-version, or
// wrong-endianness file yields kDataLoss and the caller falls through to a
// cold compile (never a crash, never silently loaded garbage).
//
// Concurrency: writers publish via temp file + fsync + atomic rename, so
// readers only ever see complete artifacts. Cold-start stampedes are
// single-flighted with a blocking flock(2) on a sibling .lock file —
// flock serializes BOTH processes and threads (each open() creates its own
// file description), so exactly one compiler runs per plan per machine.

#ifndef XMLREVAL_SERVICE_PLAN_CACHE_H_
#define XMLREVAL_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "analysis/update_analyzer.h"
#include "common/result.h"
#include "core/relations.h"
#include "obs/metrics.h"
#include "schema/abstract_schema.h"

namespace xmlreval::service {

/// Bumped on ANY change to the artifact encoding; part of the content hash,
/// so old artifacts are simply never looked up by newer binaries.
inline constexpr uint32_t kPlanFormatVersion = 1;

enum class SchemaFormat : uint8_t { kXsd, kDtd };
const char* SchemaFormatName(SchemaFormat format);

/// Identity of a compiled plan: the schema texts (not file paths — content
/// moves, content hashes don't) plus every option that changes the
/// artifact.
struct PlanKey {
  SchemaFormat source_format = SchemaFormat::kXsd;
  std::string source_text;
  SchemaFormat target_format = SchemaFormat::kXsd;
  std::string target_text;
  /// TypeRelations::Options::build_reverse_automata of the compile.
  bool reverse_automata = false;
};

/// FNV-1a over the format version, formats, texts, and options. This is
/// the cache key AND the invalidation rule: any input change moves the
/// key, stale artifacts are just never addressed again.
uint64_t PlanContentHash(const PlanKey& key);

/// A read-only mmap of one artifact file. Movable; unmaps on destruction.
class MappedPlan {
 public:
  /// Empty mapping (data() == nullptr) — assign a real one via Open.
  MappedPlan() = default;

  /// kNotFound when the file does not exist; kDataLoss on an unreadable or
  /// empty file.
  static Result<MappedPlan> Open(const std::string& path);

  MappedPlan(MappedPlan&& other) noexcept { *this = std::move(other); }
  MappedPlan& operator=(MappedPlan&& other) noexcept;
  MappedPlan(const MappedPlan&) = delete;
  MappedPlan& operator=(const MappedPlan&) = delete;
  ~MappedPlan();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Everything decoded from one artifact, held together so the borrowed
/// table views stay valid: the mapping is declared first and therefore
/// destroyed LAST, after every schema/relations that points into it.
/// Heap-allocated by PlanCache::Load; the PlanBundle's shared_ptrs alias
/// into it.
struct PlanArtifacts {
  MappedPlan mapping;
  std::shared_ptr<automata::Alphabet> alphabet;
  std::optional<schema::Schema> source;
  std::optional<schema::Schema> target;
  std::optional<core::TypeRelations> relations;
};

/// A loaded plan, ready for registration with a ValidationService. The
/// schema/relations pointers alias one shared PlanArtifacts holder (and the
/// analyzer's internal relations pointer does too), so the mmap lives
/// exactly as long as any consumer.
struct PlanBundle {
  std::shared_ptr<automata::Alphabet> alphabet;
  std::shared_ptr<const schema::Schema> source;
  std::shared_ptr<const schema::Schema> target;
  std::shared_ptr<const core::TypeRelations> relations;
  /// Null when the plan was saved without analyzer tables.
  std::shared_ptr<const analysis::UpdateAnalyzer> analyzer;
  size_t bytes_mapped = 0;
};

/// Blocking exclusive flock on a plan's .lock file; released on
/// destruction. Serializes cold compiles across processes AND threads.
class ScopedPlanLock {
 public:
  ScopedPlanLock() = default;
  ScopedPlanLock(ScopedPlanLock&& other) noexcept { *this = std::move(other); }
  ScopedPlanLock& operator=(ScopedPlanLock&& other) noexcept;
  ScopedPlanLock(const ScopedPlanLock&) = delete;
  ScopedPlanLock& operator=(const ScopedPlanLock&) = delete;
  ~ScopedPlanLock();

  bool held() const { return fd_ >= 0; }

 private:
  friend class PlanCache;
  int fd_ = -1;
};

class PlanCache {
 public:
  /// `dir` is created if missing. `metrics` must outlive the cache; pass
  /// the owning service's registry so plan counters land beside its
  /// validation metrics.
  PlanCache(std::string dir, obs::MetricsRegistry* metrics);

  const std::string& dir() const { return dir_; }
  std::string PlanPath(const PlanKey& key) const;
  std::string LockPath(const PlanKey& key) const;

  /// Loads and fully decodes the plan for `key`. kNotFound = cache miss;
  /// kDataLoss = artifact rejected (truncated/corrupt/version mismatch),
  /// which callers treat exactly like a miss. Counters and the load-time
  /// histogram are recorded here.
  Result<PlanBundle> Load(const PlanKey& key);

  /// Serializes a compiled plan and publishes it atomically (temp file +
  /// fsync + rename). `analyzer` may be null. Lazily-determinized content
  /// models are materialized into the artifact.
  Status Save(const PlanKey& key, const schema::Schema& source,
              const schema::Schema& target,
              const core::TypeRelations& relations,
              const analysis::UpdateAnalyzer* analyzer);

  /// Blocks until this process+thread holds the exclusive compile lock for
  /// `key`. Callers re-probe Load() after acquiring (another flight may
  /// have published while we waited).
  Result<ScopedPlanLock> AcquireLock(const PlanKey& key);

  /// Cold-compile duration, for the cache's compile_ns histogram.
  void RecordCompileNs(uint64_t ns) { compile_ns_->Record(ns); }
  /// A registration that could not use the cache (e.g. the registry
  /// already held schemas, so adopting the plan's alphabet was unsafe).
  void RecordBypass() { bypass_->Add(); }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t corrupt = 0;
    uint64_t saves = 0;
    uint64_t bypass = 0;
  };
  Stats GetStats() const;

 private:
  std::string dir_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* corrupt_;
  obs::Counter* saves_;
  obs::Counter* bypass_;
  obs::Histogram* load_ns_;
  obs::Histogram* compile_ns_;
  obs::Gauge* bytes_mapped_;
};

}  // namespace xmlreval::service

#endif  // XMLREVAL_SERVICE_PLAN_CACHE_H_
