#include "core/corrector.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "common/macros.h"
#include "common/string_util.h"
#include "xml/dewey.h"

namespace xmlreval::core {

using automata::Dfa;
using automata::StateId;
using automata::Symbol;
using schema::kInvalidType;

namespace {
constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
}

// ---------------------------------------------------------------------------
// Minimum-operation string repair: 0-1 BFS over (position, state).
// ---------------------------------------------------------------------------

Result<std::vector<StringEditOp>> MinimalStringRepair(
    const Dfa& dfa, std::span<const Symbol> word,
    const std::vector<bool>& insertable, size_t max_states) {
  if (insertable.size() != dfa.alphabet_size()) {
    return Status::InvalidArgument(
        "insertable mask must cover the DFA alphabet");
  }
  size_t n = word.size();
  size_t num_states = dfa.num_states();
  size_t total = (n + 1) * num_states;
  if (total > max_states) {
    return Status::FailedPrecondition("string repair search space too large");
  }
  // Skip inserts into states from which nothing accepts — pure waste.
  std::vector<bool> dead = dfa.CoDeadStates();

  auto encode = [num_states](size_t pos, StateId q) {
    return pos * num_states + q;
  };

  struct Step {
    uint32_t prev;
    StringEditOp op;
  };
  std::vector<uint64_t> dist(total, kInf);
  std::vector<Step> steps(total);
  std::deque<uint32_t> queue;  // 0-1 BFS

  uint32_t start = static_cast<uint32_t>(encode(0, dfa.start_state()));
  dist[start] = 0;
  queue.push_back(start);

  auto relax = [&](uint32_t from, size_t pos, StateId q, uint64_t cost,
                   const StringEditOp& op) {
    uint32_t code = static_cast<uint32_t>(encode(pos, q));
    if (cost < dist[code]) {
      dist[code] = cost;
      steps[code] = Step{from, op};
      if (cost == dist[from]) {
        queue.push_front(code);  // 0-cost edge
      } else {
        queue.push_back(code);
      }
    }
  };

  uint32_t goal = std::numeric_limits<uint32_t>::max();
  while (!queue.empty()) {
    uint32_t code = queue.front();
    queue.pop_front();
    size_t pos = code / num_states;
    StateId q = static_cast<StateId>(code % num_states);
    uint64_t d = dist[code];
    // 0-1 BFS can enqueue a node twice; skip stale entries.
    if (pos == n && dfa.IsAccepting(q)) {
      goal = code;
      break;
    }
    if (pos < n) {
      // Keep the original symbol (free).
      relax(code, pos + 1, dfa.Next(q, word[pos]), d,
            StringEditOp{StringEditOp::Kind::kKeep, pos, word[pos]});
      // Delete it (cost 1).
      relax(code, pos + 1, q, d + 1,
            StringEditOp{StringEditOp::Kind::kDelete, pos, 0});
    }
    // Insert any allowed symbol before position pos (cost 1).
    for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
      if (!insertable[s]) continue;
      StateId next = dfa.Next(q, s);
      if (dead[next]) continue;
      relax(code, pos, next, d + 1,
            StringEditOp{StringEditOp::Kind::kInsert, pos, s});
    }
  }
  if (goal == std::numeric_limits<uint32_t>::max()) {
    return Status::FailedPrecondition(
        "content model admits no repair (empty language over the allowed "
        "labels)");
  }

  // Reconstruct, then reverse into document order.
  std::vector<StringEditOp> ops;
  uint32_t code = goal;
  while (code != start) {
    ops.push_back(steps[code].op);
    code = steps[code].prev;
  }
  std::reverse(ops.begin(), ops.end());
  return ops;
}

// ---------------------------------------------------------------------------
// DocumentCorrector
// ---------------------------------------------------------------------------

namespace {

// Min cost (node count) of an accepting path through `dfa` where stepping
// on symbol s costs child_cost(s); kInf when unreachable. Dijkstra.
uint64_t MinAcceptCost(const Dfa& dfa,
                       const std::vector<uint64_t>& symbol_cost) {
  std::vector<uint64_t> dist(dfa.num_states(), kInf);
  using Entry = std::pair<uint64_t, StateId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[dfa.start_state()] = 0;
  heap.emplace(0, dfa.start_state());
  while (!heap.empty()) {
    auto [d, q] = heap.top();
    heap.pop();
    if (d != dist[q]) continue;
    if (dfa.IsAccepting(q)) return d;
    for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
      if (symbol_cost[s] == kInf) continue;
      uint64_t nd = d + symbol_cost[s];
      StateId next = dfa.Next(q, s);
      if (nd < dist[next]) {
        dist[next] = nd;
        heap.emplace(nd, next);
      }
    }
  }
  return kInf;
}

// As MinAcceptCost but reconstructs the symbol sequence of one cheapest
// accepting path.
std::vector<Symbol> MinAcceptPath(const Dfa& dfa,
                                  const std::vector<uint64_t>& symbol_cost) {
  size_t n = dfa.num_states();
  std::vector<uint64_t> dist(n, kInf);
  std::vector<std::pair<StateId, Symbol>> parent(n, {0, 0});
  std::vector<bool> has_parent(n, false);
  using Entry = std::pair<uint64_t, StateId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[dfa.start_state()] = 0;
  heap.emplace(0, dfa.start_state());
  StateId goal = dfa.start_state();
  bool found = false;
  while (!heap.empty()) {
    auto [d, q] = heap.top();
    heap.pop();
    if (d != dist[q]) continue;
    if (dfa.IsAccepting(q)) {
      goal = q;
      found = true;
      break;
    }
    for (Symbol s = 0; s < dfa.alphabet_size(); ++s) {
      if (symbol_cost[s] == kInf) continue;
      uint64_t nd = d + symbol_cost[s];
      StateId next = dfa.Next(q, s);
      if (nd < dist[next]) {
        dist[next] = nd;
        parent[next] = {q, s};
        has_parent[next] = true;
        heap.emplace(nd, next);
      }
    }
  }
  XMLREVAL_CHECK(found, "MinAcceptPath called on an unreachable DFA");
  std::vector<Symbol> path;
  StateId q = goal;
  while (has_parent[q]) {
    path.push_back(parent[q].second);
    q = parent[q].first;
  }
  XMLREVAL_CHECK(q == dfa.start_state(), "path reconstruction broke");
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

DocumentCorrector::DocumentCorrector(const TypeRelations* relations,
                                     const Options& options)
    : relations_(relations), options_(options) {
  XMLREVAL_CHECK(relations != nullptr, "DocumentCorrector requires relations");
  // Fixpoint: min node count of a valid subtree per TARGET type.
  const Schema& target = relations->target();
  size_t n = target.num_types();
  size_t alphabet_size = target.alphabet()->size();
  min_tree_cost_.assign(n, kInf);
  for (TypeId t = 0; t < n; ++t) {
    if (target.IsSimple(t)) min_tree_cost_[t] = 2;  // element + χ leaf
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (TypeId t = 0; t < n; ++t) {
      if (!target.IsComplex(t)) continue;
      std::vector<uint64_t> symbol_cost(alphabet_size, kInf);
      for (const auto& [sym, child] : target.complex_type(t).child_types) {
        symbol_cost[sym] = min_tree_cost_[child];
      }
      uint64_t best = MinAcceptCost(*relations->TargetDfa(t), symbol_cost);
      if (best == kInf) continue;
      uint64_t cost = best + 1;  // the element node itself
      if (cost < min_tree_cost_[t]) {
        min_tree_cost_[t] = cost;
        changed = true;
      }
    }
  }
}

std::optional<uint64_t> DocumentCorrector::MinimalSubtreeSize(TypeId t) const {
  if (t >= min_tree_cost_.size() || min_tree_cost_[t] == kInf) {
    return std::nullopt;
  }
  return min_tree_cost_[t];
}

struct DocumentCorrector::Walk {
  const DocumentCorrector& corrector;
  const TypeRelations& rel;
  const Schema& source;
  const Schema& target;
  xml::Document* doc;
  xml::DocumentEditor* editor;
  // Document bound to the shared alphabet: read node symbols directly.
  bool use_symbols;
  CorrectionReport report;

  Symbol SymbolOf(xml::NodeId c) const {
    if (use_symbols) return doc->symbol(c);
    std::optional<Symbol> sym = source.alphabet()->Find(doc->label(c));
    return sym ? *sym : automata::kUnboundSymbol;
  }

  void Record(CorrectionStep::Kind kind, xml::NodeId node,
              std::string detail) {
    report.steps.push_back(CorrectionStep{
        kind, xml::DeweyPath::Of(*doc, node).ToString(), std::move(detail)});
  }

  // Deletes the whole subtree under `node` (inclusive), bottom-up.
  Status DeleteSubtree(xml::NodeId node) {
    for (xml::NodeId c = doc->first_child(node); c != xml::kInvalidNode;
         c = doc->next_sibling(c)) {
      if (!editor->IsDeleted(c)) RETURN_IF_ERROR(DeleteSubtree(c));
    }
    return editor->DeleteLeaf(node);
  }

  // Adds every required attribute of `t` (with minimal values) to a
  // freshly inserted element.
  Status AddRequiredAttributes(xml::NodeId node, TypeId t) {
    const schema::ComplexType& decl = target.complex_type(t);
    for (const auto& [name, attr] : decl.attributes) {
      if (!attr.required) continue;
      std::string value;
      if (attr.fixed) {
        value = *attr.fixed;
      } else {
        ASSIGN_OR_RETURN(value, schema::MinimalValidValue(attr.type));
      }
      RETURN_IF_ERROR(doc->SetAttribute(node, name, value));
    }
    return Status::OK();
  }

  // Repairs the attribute set of an EXISTING element against a closed
  // complex target type: drop undeclared attributes, rewrite invalid
  // values, add missing required ones.
  Status RepairAttributes(xml::NodeId node, TypeId t) {
    const schema::ComplexType& decl = target.complex_type(t);
    if (decl.open_attributes) return Status::OK();
    // Collect fixes first; mutating while iterating is undefined.
    std::vector<std::string> to_remove;
    std::vector<std::pair<std::string, std::string>> to_set;
    for (const xml::Attribute& attr : doc->attributes(node)) {
      auto it = decl.attributes.find(attr.name);
      if (it == decl.attributes.end()) {
        to_remove.push_back(attr.name);
        continue;
      }
      const schema::AttributeDecl& d = it->second;
      bool value_ok = schema::ValidateSimpleValue(d.type, attr.value).ok() &&
                      (!d.fixed || TrimWhitespace(attr.value) ==
                                       TrimWhitespace(*d.fixed));
      if (!value_ok) {
        std::string repaired;
        if (d.fixed) {
          repaired = *d.fixed;
        } else {
          ASSIGN_OR_RETURN(repaired, schema::MinimalValidValue(d.type));
        }
        to_set.emplace_back(attr.name, std::move(repaired));
      }
    }
    for (const auto& [name, attr] : decl.attributes) {
      if (attr.required && doc->FindAttribute(node, name) == nullptr) {
        std::string value;
        if (attr.fixed) {
          value = *attr.fixed;
        } else {
          ASSIGN_OR_RETURN(value, schema::MinimalValidValue(attr.type));
        }
        to_set.emplace_back(name, std::move(value));
      }
    }
    for (const std::string& name : to_remove) {
      RETURN_IF_ERROR(doc->RemoveAttribute(node, name));
      Record(CorrectionStep::Kind::kRemoveAttribute, node,
             "drop undeclared attribute '" + name + "'");
    }
    for (const auto& [name, value] : to_set) {
      RETURN_IF_ERROR(doc->SetAttribute(node, name, value));
      Record(CorrectionStep::Kind::kSetAttribute, node,
             "set attribute " + name + "=\"" + value + "\"");
    }
    return Status::OK();
  }

  // Fills a freshly inserted EMPTY element `node` with a minimum-size valid
  // body for target type `t`.
  Status FillMinimal(xml::NodeId node, TypeId t) {
    if (target.IsSimple(t)) {
      ASSIGN_OR_RETURN(std::string value,
                       schema::MinimalValidValue(target.simple_type(t)));
      return editor->InsertTextFirstChild(node, value).status();
    }
    RETURN_IF_ERROR(AddRequiredAttributes(node, t));
    std::vector<uint64_t> symbol_cost(target.alphabet()->size(), kInf);
    for (const auto& [sym, child] : target.complex_type(t).child_types) {
      symbol_cost[sym] = corrector.min_tree_cost_[child];
    }
    std::vector<Symbol> labels =
        MinAcceptPath(*rel.TargetDfa(t), symbol_cost);
    xml::NodeId previous = xml::kInvalidNode;
    for (Symbol sym : labels) {
      const std::string& label = target.alphabet()->Name(sym);
      Result<xml::NodeId> child =
          previous == xml::kInvalidNode
              ? editor->InsertElementFirstChild(node, label)
              : editor->InsertElementAfter(previous, label);
      RETURN_IF_ERROR(child.status());
      RETURN_IF_ERROR(FillMinimal(*child, target.ChildType(t, sym)));
      previous = *child;
    }
    return Status::OK();
  }

  // Inserts a minimal subtree for `t` labeled `label` before `before`
  // (or as the last child of `parent` when before == kInvalidNode).
  Result<xml::NodeId> InsertMinimal(xml::NodeId parent, xml::NodeId before,
                                    const std::string& label, TypeId t) {
    if (corrector.min_tree_cost_[t] == kInf) {
      return Status::FailedPrecondition("target type '" + target.TypeName(t) +
                                        "' is not productive");
    }
    Result<xml::NodeId> node =
        before != xml::kInvalidNode
            ? editor->InsertElementBefore(before, label)
            : (doc->HasChildren(parent)
                   ? editor->InsertElementAfter(doc->last_child(parent), label)
                   : editor->InsertElementFirstChild(parent, label));
    RETURN_IF_ERROR(node.status());
    RETURN_IF_ERROR(FillMinimal(*node, t));
    Record(CorrectionStep::Kind::kInsertElement, *node,
           "insert minimal '" + label + "' (" + target.TypeName(t) + ")");
    return node;
  }

  // correct(τ, τ', e): makes the subtree valid for τ', knowing it is valid
  // for τ. Mirrors CastValidator::ValidateNode with repairs instead of
  // failures.
  Status CorrectNode(xml::NodeId node, TypeId s_type, TypeId t_type) {
    if (rel.Subsumed(s_type, t_type)) return Status::OK();

    if (target.IsSimple(t_type)) {
      if (source.IsComplex(s_type)) {
        // Complex → simple: no information to salvage; wipe the children
        // and write a minimal value.
        for (xml::NodeId c = doc->first_child(node); c != xml::kInvalidNode;
             c = doc->next_sibling(c)) {
          if (!editor->IsDeleted(c)) RETURN_IF_ERROR(DeleteSubtree(c));
        }
        ASSIGN_OR_RETURN(std::string value, schema::MinimalValidValue(
                                                target.simple_type(t_type)));
        RETURN_IF_ERROR(editor->InsertTextFirstChild(node, value).status());
        Record(CorrectionStep::Kind::kRewriteText, node,
               "replace content with minimal " +
                   std::string(schema::AtomicKindName(
                       target.simple_type(t_type).kind)));
        return Status::OK();
      }
      // Simple → simple: re-check the value, rewrite when needed.
      std::string value = doc->SimpleContent(node);
      if (schema::ValidateSimpleValue(target.simple_type(t_type), value)
              .ok()) {
        return Status::OK();
      }
      ASSIGN_OR_RETURN(std::string fixed, schema::MinimalValidValue(
                                              target.simple_type(t_type)));
      // Rewrite the first text child; create one if the element was empty.
      xml::NodeId text = xml::kInvalidNode;
      for (xml::NodeId c = doc->first_child(node); c != xml::kInvalidNode;
           c = doc->next_sibling(c)) {
        if (doc->IsText(c)) {
          if (text == xml::kInvalidNode) {
            text = c;
          } else {
            RETURN_IF_ERROR(editor->DeleteLeaf(c));
          }
        }
      }
      if (text != xml::kInvalidNode) {
        RETURN_IF_ERROR(editor->UpdateText(text, fixed));
      } else {
        RETURN_IF_ERROR(editor->InsertTextFirstChild(node, fixed).status());
      }
      Record(CorrectionStep::Kind::kRewriteText, node,
             "'" + value + "' -> '" + fixed + "'");
      return Status::OK();
    }

    if (source.IsSimple(s_type)) {
      // Simple → complex: drop the text and build minimal content.
      for (xml::NodeId c = doc->first_child(node); c != xml::kInvalidNode;
           c = doc->next_sibling(c)) {
        if (!editor->IsDeleted(c)) RETURN_IF_ERROR(DeleteSubtree(c));
      }
      if (corrector.min_tree_cost_[t_type] == kInf) {
        return Status::FailedPrecondition("target type '" +
                                          target.TypeName(t_type) +
                                          "' is not productive");
      }
      RETURN_IF_ERROR(FillMinimal(node, t_type));
      Record(CorrectionStep::Kind::kInsertElement, node,
             "rebuild content as minimal " + target.TypeName(t_type));
      return Status::OK();
    }

    // Complex → complex: fix the attribute set, repair the child-label
    // string minimally, then recurse into the kept children.
    RETURN_IF_ERROR(RepairAttributes(node, t_type));
    const Dfa* tdfa = rel.TargetDfa(t_type);
    std::vector<xml::NodeId> children;
    std::vector<Symbol> word;
    for (xml::NodeId c : xml::ElementChildRange(*doc, node)) {
      Symbol sym = SymbolOf(c);
      // kUnboundSymbol and symbols interned after the relations were
      // computed both fall outside the padded repair DFA.
      if (sym >= tdfa->alphabet_size()) {
        return Status::FailedPrecondition(StrCat(
            "label '", doc->label(c), "' outside the shared alphabet"));
      }
      children.push_back(c);
      word.push_back(sym);
    }

    std::vector<bool> insertable(tdfa->alphabet_size(), false);
    for (const auto& [sym, child] : target.complex_type(t_type).child_types) {
      if (corrector.min_tree_cost_[child] != kInf) insertable[sym] = true;
    }
    ASSIGN_OR_RETURN(std::vector<StringEditOp> ops,
                     MinimalStringRepair(*tdfa, word, insertable,
                                         corrector.options_.max_search_states));

    for (const StringEditOp& op : ops) {
      switch (op.kind) {
        case StringEditOp::Kind::kKeep: {
          xml::NodeId child = children[op.position];
          TypeId child_s = source.ChildType(s_type, word[op.position]);
          TypeId child_t = target.ChildType(t_type, word[op.position]);
          if (child_s == kInvalidType || child_t == kInvalidType) {
            return Status::Internal("kept child lost its typing");
          }
          RETURN_IF_ERROR(CorrectNode(child, child_s, child_t));
          break;
        }
        case StringEditOp::Kind::kDelete: {
          xml::NodeId child = children[op.position];
          Record(CorrectionStep::Kind::kDeleteSubtree, child,
                 StrCat("remove '", doc->label(child), "'"));
          RETURN_IF_ERROR(DeleteSubtree(child));
          break;
        }
        case StringEditOp::Kind::kInsert: {
          xml::NodeId before = op.position < children.size()
                                   ? children[op.position]
                                   : xml::kInvalidNode;
          TypeId child_t = target.ChildType(t_type, op.symbol);
          RETURN_IF_ERROR(
              InsertMinimal(node, before,
                            target.alphabet()->Name(op.symbol), child_t)
                  .status());
          break;
        }
      }
    }
    return Status::OK();
  }
};

Result<CorrectionReport> DocumentCorrector::CorrectWithEditor(
    xml::Document* doc, xml::DocumentEditor* editor) const {
  if (doc == nullptr || editor == nullptr) {
    return Status::InvalidArgument("Correct requires a document and editor");
  }
  if (!doc->has_root()) {
    return Status::InvalidArgument("document has no root element");
  }
  const Schema& source = relations_->source();
  const Schema& target = relations_->target();
  bool use_symbols = doc->BoundTo(*source.alphabet());
  Symbol root_sym = use_symbols
                        ? doc->symbol(doc->root())
                        : [&]() -> Symbol {
                            auto found =
                                source.alphabet()->Find(doc->label(doc->root()));
                            return found ? *found : automata::kUnboundSymbol;
                          }();
  bool in_sigma = root_sym != automata::kUnboundSymbol;
  TypeId s_root = in_sigma ? source.RootType(root_sym) : kInvalidType;
  TypeId t_root = in_sigma ? target.RootType(root_sym) : kInvalidType;
  if (s_root == kInvalidType) {
    return Status::FailedPrecondition(
        "root is not declared by the source schema");
  }
  if (t_root == kInvalidType) {
    return Status::FailedPrecondition(
        "root label '" + std::string(doc->label(doc->root())) +
        "' is not declared by the target schema; relabeling the root is "
        "outside the correction model");
  }
  Walk walk{*this, *relations_, source, target, doc, editor, use_symbols, {}};
  RETURN_IF_ERROR(walk.CorrectNode(doc->root(), s_root, t_root));
  return std::move(walk.report);
}

Result<CorrectionReport> DocumentCorrector::Correct(xml::Document* doc) const {
  xml::DocumentEditor editor(doc);
  ASSIGN_OR_RETURN(CorrectionReport report, CorrectWithEditor(doc, &editor));
  editor.Seal();
  RETURN_IF_ERROR(editor.Commit());
  return report;
}

}  // namespace xmlreval::core
