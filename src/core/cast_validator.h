// Schema cast validation — §3.2 of the paper.
//
// Validates a document KNOWN to be valid with respect to the source schema
// against the target schema, validating "with respect to S and S' in
// parallel" and using the precomputed R_sub / R_dis relations to skip
// subtrees (subsumed pairs) or reject immediately (disjoint pairs).
// Content models are checked with the pair immediate-decision automata of
// §4.2 when available, so each child-label string is scanned only as far
// as a verdict requires.
//
// The traversal is an explicit preorder frontier (a stack of CastUnits),
// not recursion: documents of pathological depth validate in O(1) native
// stack, and the same per-unit engine (core/cast_walk.h) powers both this
// serial validator and ParallelCastValidator, whose tasks process disjoint
// slices of the frontier.
//
// PRECONDITION: the document is valid with respect to relations->source().
// Feeding a source-invalid document is library misuse; the validator may
// then return either verdict (exactly like the paper's algorithm, whose
// correctness theorem assumes s ∈ L(a)).

#ifndef XMLREVAL_CORE_CAST_VALIDATOR_H_
#define XMLREVAL_CORE_CAST_VALIDATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/relations.h"
#include "core/report.h"
#include "xml/tree.h"

namespace xmlreval::core {

/// What popping a frontier unit means. Child-typing failures discovered
/// while expanding a parent are DEFERRED: the parent pushes a poisoned
/// unit at the child's frontier position instead of failing on the spot,
/// so failures surface in exactly the order the recursive algorithm
/// reported them (everything document-order-before the child is validated
/// first) — the invariant the parallel engine's first-failure tracking is
/// built on.
enum class CastUnitKind : uint8_t {
  kValidate,         // run validate(τ, τ', e) on this node
  kUnboundLabel,     // label outside Σ: fail when popped
  kContentMismatch,  // types_τ'(λ) undefined: content-model fail at parent
  kPrecondition,     // types_τ(λ) undefined: source precondition fail
};

/// One pending subtree of the traversal frontier. For kValidate units the
/// types are the node's own (source, target) pair; for poisoned units they
/// are the PARENT's pair (the failure message names the parent's types).
struct CastUnit {
  xml::NodeId node = xml::kInvalidNode;
  TypeId source_type = schema::kInvalidType;
  TypeId target_type = schema::kInvalidType;
  CastUnitKind kind = CastUnitKind::kValidate;
};

/// Reusable per-walk buffers: the frontier stack (O(max pending width))
/// and the multi-chunk simple-value buffer. A warmed scratch makes repeat
/// validation allocation-free (binding_alloc_test pins this).
struct CastScratch {
  std::vector<CastUnit> frontier;
  std::string simple_value;
};

class CastValidator {
 public:
  struct Options {
    /// Check content models with c_immed (§4.2) instead of running the
    /// target DFA over all children. The paper's Xerces experiments turn
    /// this OFF ("we do not use the algorithms of Section 4 ... to perform
    /// a fair comparison"); bench A1 measures its effect.
    bool use_immediate_content = true;
  };

  /// `relations` must outlive the validator.
  explicit CastValidator(const TypeRelations* relations)
      : CastValidator(relations, Options{}) {}
  CastValidator(const TypeRelations* relations, const Options& options);

  /// doValidate(S, S', T). The scratch overload reuses the caller's
  /// buffers (zero allocations once warmed); the plain overload pays a
  /// fresh frontier per call.
  ValidationReport Validate(const xml::Document& doc) const;
  ValidationReport Validate(const xml::Document& doc,
                            CastScratch* scratch) const;

  /// validate(τ, τ', e) on a subtree: `source_type` is the type the subtree
  /// has under the source schema, `target_type` the type to check. The
  /// violation path is RELATIVE to `node` (mod-validation rebases it).
  ValidationReport ValidateSubtree(const xml::Document& doc, xml::NodeId node,
                                   TypeId source_type,
                                   TypeId target_type) const;
  ValidationReport ValidateSubtree(const xml::Document& doc, xml::NodeId node,
                                   TypeId source_type, TypeId target_type,
                                   CastScratch* scratch) const;

 private:
  const TypeRelations* relations_;
  Options options_;
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_CAST_VALIDATOR_H_
