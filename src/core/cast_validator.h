// Schema cast validation — §3.2 of the paper.
//
// Validates a document KNOWN to be valid with respect to the source schema
// against the target schema, validating "with respect to S and S' in
// parallel" and using the precomputed R_sub / R_dis relations to skip
// subtrees (subsumed pairs) or reject immediately (disjoint pairs).
// Content models are checked with the pair immediate-decision automata of
// §4.2 when available, so each child-label string is scanned only as far
// as a verdict requires.
//
// PRECONDITION: the document is valid with respect to relations->source().
// Feeding a source-invalid document is library misuse; the validator may
// then return either verdict (exactly like the paper's algorithm, whose
// correctness theorem assumes s ∈ L(a)).

#ifndef XMLREVAL_CORE_CAST_VALIDATOR_H_
#define XMLREVAL_CORE_CAST_VALIDATOR_H_

#include "core/relations.h"
#include "core/report.h"
#include "xml/tree.h"

namespace xmlreval::core {

class CastValidator {
 public:
  struct Options {
    /// Check content models with c_immed (§4.2) instead of running the
    /// target DFA over all children. The paper's Xerces experiments turn
    /// this OFF ("we do not use the algorithms of Section 4 ... to perform
    /// a fair comparison"); bench A1 measures its effect.
    bool use_immediate_content = true;
  };

  /// `relations` must outlive the validator.
  explicit CastValidator(const TypeRelations* relations)
      : CastValidator(relations, Options{}) {}
  CastValidator(const TypeRelations* relations, const Options& options);

  /// doValidate(S, S', T).
  ValidationReport Validate(const xml::Document& doc) const;

  /// validate(τ, τ', e) on a subtree: `source_type` is the type the subtree
  /// has under the source schema, `target_type` the type to check.
  ValidationReport ValidateSubtree(const xml::Document& doc, xml::NodeId node,
                                   TypeId source_type,
                                   TypeId target_type) const;

 private:
  struct Walk;

  const TypeRelations* relations_;
  Options options_;
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_CAST_VALIDATOR_H_
