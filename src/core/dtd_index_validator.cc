#include "core/dtd_index_validator.h"

#include <optional>

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::core {

using automata::Symbol;
using automata::Verdict;
using schema::kInvalidType;

namespace {

// For a DTD-like schema, returns the unique type of each label (indexed by
// symbol; kInvalidType = label unused), or an error if some label is used
// with two types.
Result<std::vector<TypeId>> UniqueLabelTypes(const Schema& schema,
                                             size_t alphabet_size) {
  std::vector<TypeId> type_of(alphabet_size, kInvalidType);
  auto assign = [&](Symbol sym, TypeId t) -> Status {
    if (type_of[sym] != kInvalidType && type_of[sym] != t) {
      return Status::FailedPrecondition(
          "schema is not DTD-like: label '" + schema.alphabet()->Name(sym) +
          "' is used with types '" + schema.TypeName(type_of[sym]) +
          "' and '" + schema.TypeName(t) + "'");
    }
    type_of[sym] = t;
    return Status::OK();
  };
  for (const auto& [sym, t] : schema.roots()) {
    RETURN_IF_ERROR(assign(sym, t));
  }
  for (TypeId t = 0; t < schema.num_types(); ++t) {
    if (!schema.IsComplex(t)) continue;
    for (const auto& [sym, child] : schema.complex_type(t).child_types) {
      RETURN_IF_ERROR(assign(sym, child));
    }
  }
  return type_of;
}

}  // namespace

Result<DtdIndexValidator> DtdIndexValidator::Create(
    const TypeRelations* relations, const Options& options) {
  if (relations == nullptr) {
    return Status::InvalidArgument("DtdIndexValidator requires relations");
  }
  const Schema& source = relations->source();
  const Schema& target = relations->target();
  size_t alphabet_size = source.alphabet()->size();

  ASSIGN_OR_RETURN(std::vector<TypeId> source_types,
                   UniqueLabelTypes(source, alphabet_size));
  ASSIGN_OR_RETURN(std::vector<TypeId> target_types,
                   UniqueLabelTypes(target, alphabet_size));

  DtdIndexValidator v;
  v.relations_ = relations;
  v.options_ = options;
  v.plans_.resize(alphabet_size);
  for (Symbol sym = 0; sym < alphabet_size; ++sym) {
    LabelPlan& plan = v.plans_[sym];
    plan.source_type = source_types[sym];
    plan.target_type = target_types[sym];
    if (plan.source_type == kInvalidType || plan.target_type == kInvalidType) {
      // A label the source never produces, or one the target cannot type:
      // any instance makes the document invalid under the target DTD.
      plan.action = LabelAction::kForeign;
    } else if (relations->Subsumed(plan.source_type, plan.target_type)) {
      plan.action = LabelAction::kSkip;
    } else if (relations->Disjoint(plan.source_type, plan.target_type)) {
      plan.action = LabelAction::kReject;
    } else {
      plan.action = LabelAction::kCheck;
    }
  }
  return v;
}

std::vector<std::string> DtdIndexValidator::CheckedLabels() const {
  std::vector<std::string> out;
  for (Symbol sym = 0; sym < plans_.size(); ++sym) {
    if (plans_[sym].action == LabelAction::kCheck) {
      out.push_back(relations_->source().alphabet()->Name(sym));
    }
  }
  return out;
}

ValidationReport DtdIndexValidator::Validate(
    const xml::Document& doc, const xml::LabelIndex& index) const {
  const Schema& source = relations_->source();
  const Schema& target = relations_->target();
  ValidationReport report;

  auto fail = [&](xml::NodeId node, std::string message) {
    report.valid = false;
    report.violation = std::move(message);
    report.violation_path = xml::DeweyPath::Of(doc, node);
  };

  bool use_symbols = doc.BoundTo(*source.alphabet());
  auto symbol_of = [&](xml::NodeId c) -> Symbol {
    if (use_symbols) return doc.symbol(c);
    std::optional<Symbol> sym = source.alphabet()->Find(doc.label(c));
    return sym ? *sym : automata::kUnboundSymbol;
  };

  // Root label must be accepted by the target's R.
  if (doc.has_root()) {
    Symbol sym = symbol_of(doc.root());
    if (sym == automata::kUnboundSymbol ||
        target.RootType(sym) == kInvalidType) {
      fail(doc.root(), StrCat("root element '", doc.label(doc.root()),
                              "' is not declared by the target schema"));
      return report;
    }
  }

  // Validates every instance of one label. Returns false when a violation
  // was recorded (`label` is resolved lazily — only failures need it).
  auto check_instances = [&](Symbol sym,
                             const std::vector<xml::NodeId>& instances) {
    const std::string& label = source.alphabet()->Name(sym);
    const LabelPlan& plan = plans_[sym];

    switch (plan.action) {
      case LabelAction::kSkip:
        report.counters.subtrees_skipped += instances.size();
        return true;
      case LabelAction::kForeign:
        fail(instances[0], StrCat("element '", label,
                                  "' has no type under the target schema"));
        return false;
      case LabelAction::kReject:
        ++report.counters.disjoint_rejects;
        fail(instances[0],
             StrCat("element '", label, "': source type '",
                    source.TypeName(plan.source_type),
                    "' is disjoint from target type '",
                    target.TypeName(plan.target_type), "'"));
        return false;
      case LabelAction::kCheck:
        break;
    }

    // Verify the immediate content model of every instance.
    const automata::ImmediateDfa* pair =
        options_.use_immediate_content
            ? relations_->PairAutomaton(plan.source_type, plan.target_type)
            : nullptr;
    for (xml::NodeId node : instances) {
      ++report.counters.nodes_visited;
      ++report.counters.elements_visited;

      if (target.IsSimple(plan.target_type)) {
        ++report.counters.simple_checks;
        std::string value = doc.SimpleContent(node);
        report.counters.nodes_visited += doc.CountChildren(node);
        report.counters.text_nodes_visited += doc.CountChildren(node);
        Status check = schema::ValidateSimpleValue(
            target.simple_type(plan.target_type), value);
        if (!check.ok()) {
          fail(node, StrCat("element '", label, "': ", check.message()));
          return false;
        }
        continue;
      }

      const schema::ComplexType& t_decl =
          target.complex_type(plan.target_type);
      if (!t_decl.open_attributes) {
        ++report.counters.attr_checks;
        Status attrs =
            schema::ValidateTypeAttributes(t_decl, doc.attributes(node));
        if (!attrs.ok()) {
          fail(node, StrCat("element '", label, "': ", attrs.message()));
          return false;
        }
      }

      std::vector<Symbol> symbols;
      for (xml::NodeId c : xml::ElementChildRange(doc, node)) {
        Symbol child_sym = symbol_of(c);
        if (child_sym == automata::kUnboundSymbol) {
          fail(c, StrCat("element '", doc.label(c),
                         "' is outside the schemas' alphabet"));
          return false;
        }
        symbols.push_back(child_sym);
      }

      bool accepted;
      if (pair != nullptr) {
        automata::ImmediateRunResult run = pair->Run(symbols);
        report.counters.dfa_steps += run.symbols_scanned;
        if (run.decided_early) ++report.counters.immediate_decisions;
        accepted = run.verdict == Verdict::kAccept;
      } else {
        const automata::Dfa* dfa = relations_->TargetDfa(plan.target_type);
        automata::StateId q = dfa->start_state();
        accepted = true;
        for (Symbol child_sym : symbols) {
          if (child_sym >= dfa->alphabet_size()) {
            accepted = false;
            break;
          }
          q = dfa->Next(q, child_sym);
          ++report.counters.dfa_steps;
        }
        accepted = accepted && dfa->IsAccepting(q);
      }
      if (!accepted) {
        fail(node,
             StrCat("children of '", label,
                    "' do not match the content model of target type '",
                    target.TypeName(plan.target_type), "'"));
        return false;
      }
    }
    return true;
  };

  if (use_symbols && index.HasSymbolBuckets()) {
    // Bound fast path: walk the dense buckets — no hashing, no Find, no
    // label-vector materialization. Out-of-Σ elements live only in the
    // string index, so check the marker once up front.
    if (xml::NodeId unbound = index.FirstUnbound();
        unbound != xml::kInvalidNode) {
      fail(unbound, StrCat("element '", doc.label(unbound),
                           "' is outside the schemas' alphabet"));
      return report;
    }
    for (Symbol sym = 0; sym < index.NumSymbolBuckets(); ++sym) {
      const std::vector<xml::NodeId>& instances = index.Instances(sym);
      if (instances.empty()) continue;
      if (sym >= plans_.size()) {
        // Interned after this validator was created: no plan, no type.
        fail(instances[0], StrCat("element '", doc.label(instances[0]),
                                  "' is outside the schemas' alphabet"));
        return report;
      }
      if (!check_instances(sym, instances)) return report;
    }
    return report;
  }

  for (const std::string& label : index.Labels()) {
    const std::vector<xml::NodeId>& instances = index.Instances(label);
    Symbol sym = instances.empty() ? automata::kUnboundSymbol
                                   : symbol_of(instances[0]);
    if (sym == automata::kUnboundSymbol || sym >= plans_.size()) {
      fail(instances[0], StrCat("element '", label,
                                "' is outside the schemas' alphabet"));
      return report;
    }
    if (!check_instances(sym, instances)) return report;
  }
  return report;
}

}  // namespace xmlreval::core
