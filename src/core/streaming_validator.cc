#include "core/streaming_validator.h"

#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::core {

using automata::Symbol;
using schema::kInvalidType;
using schema::Schema;
using schema::TypeId;

namespace {

// Handlers abort the parse on a validity violation by returning this
// sentinel; the wrappers translate it into report.valid = false. Genuine
// well-formedness errors keep their parse-error status and message.
Status Abort() { return Status::InvalidArgument("__xmlreval_invalid__"); }

// ---- Full validation over events ------------------------------------------

class FullHandler : public xml::SaxHandler {
 public:
  explicit FullHandler(const Schema& schema, StreamingReport* report)
      : schema_(schema), report_(report) {}

  Status StartElement(std::string_view name,
                      const std::vector<xml::SaxAttribute>& attributes)
      override {
    ++report_->counters.nodes_visited;
    ++report_->counters.elements_visited;

    TypeId type = kInvalidType;
    std::optional<Symbol> sym = schema_.alphabet()->Find(name);
    if (frames_.empty()) {
      type = sym ? schema_.RootType(*sym) : kInvalidType;
      if (type == kInvalidType) {
        return Fail(StrCat("root element '", name,
                           "' is not declared by the schema"));
      }
    } else {
      Frame& parent = frames_.back();
      if (parent.simple) {
        return Fail(StrCat("element '", name,
                           "' not allowed under simple-typed '",
                           Name(parent.sym), "'"));
      }
      const automata::Dfa& dfa = schema_.ContentDfa(parent.type);
      if (!sym || *sym >= dfa.alphabet_size() ||
          schema_.ChildType(parent.type, *sym) == kInvalidType) {
        return Fail(StrCat("element '", name,
                           "' not allowed by the content model of type '",
                           schema_.TypeName(parent.type), "'"));
      }
      parent.state = dfa.Next(parent.state, *sym);
      ++report_->counters.dfa_steps;
      type = schema_.ChildType(parent.type, *sym);
    }

    // A frame exists only for elements whose symbol resolved (the type
    // checks above imply Σ membership), so storing the Symbol instead of a
    // copied label string is lossless — and allocation-free.
    Frame frame;
    frame.type = type;
    frame.sym = *sym;
    frame.simple = schema_.IsSimple(type);
    if (!frame.simple) {
      RETURN_IF_ERROR(CheckAttributes(type, name, attributes));
      frame.state = schema_.ContentDfa(type).start_state();
    }
    frames_.push_back(std::move(frame));
    report_->max_live_frames =
        std::max<uint64_t>(report_->max_live_frames, frames_.size());
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    ++report_->counters.nodes_visited;
    ++report_->counters.text_nodes_visited;
    Frame& frame = frames_.back();
    if (frame.simple) {
      frame.text.append(text);
      return Status::OK();
    }
    if (!TrimWhitespace(text).empty()) {
      return Fail(StrCat("character data not allowed under '",
                         Name(frame.sym), "' (element-only content)"));
    }
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    Frame& frame = frames_.back();
    if (frame.simple) {
      ++report_->counters.simple_checks;
      Status check = schema::ValidateSimpleValue(
          schema_.simple_type(frame.type), frame.text);
      if (!check.ok()) {
        return Fail(StrCat("element '", Name(frame.sym), "': ",
                           check.message()));
      }
    } else if (!schema_.ContentDfa(frame.type).IsAccepting(frame.state)) {
      return Fail(StrCat("children of '", Name(frame.sym),
                         "' do not match the content model of type '",
                         schema_.TypeName(frame.type), "'"));
    }
    frames_.pop_back();
    return Status::OK();
  }

 private:
  struct Frame {
    TypeId type;
    Symbol sym;  // the element's interned symbol (label for diagnostics)
    bool simple;
    automata::StateId state = 0;  // content DFA state (complex types)
    std::string text;             // accumulated χ value (simple types)
  };

  const std::string& Name(Symbol sym) const {
    return schema_.alphabet()->Name(sym);
  }

  Status Fail(std::string message) {
    report_->valid = false;
    report_->violation = std::move(message);
    return Abort();
  }

  Status CheckAttributes(TypeId type, std::string_view name,
                         const std::vector<xml::SaxAttribute>& attributes) {
    const schema::ComplexType& decl = schema_.complex_type(type);
    if (decl.open_attributes) return Status::OK();
    ++report_->counters.attr_checks;
    attr_scratch_.clear();
    for (const xml::SaxAttribute& attr : attributes) {
      attr_scratch_.push_back(
          xml::Attribute{std::string(attr.name), std::string(attr.value)});
    }
    Status check = schema::ValidateTypeAttributes(decl, attr_scratch_);
    if (!check.ok()) {
      return Fail(StrCat("element '", name, "': ", check.message()));
    }
    return Status::OK();
  }

  const Schema& schema_;
  StreamingReport* report_;
  std::vector<Frame> frames_;
  std::vector<xml::Attribute> attr_scratch_;
};

// ---- Schema cast over events (§3.2) ----------------------------------------

class CastHandler : public xml::SaxHandler {
 public:
  CastHandler(const TypeRelations& rel, StreamingReport* report)
      : rel_(rel),
        source_(rel.source()),
        target_(rel.target()),
        report_(report) {}

  Status StartElement(std::string_view name,
                      const std::vector<xml::SaxAttribute>& attributes)
      override {
    if (skip_depth_ > 0) {
      // Inside a subsumed subtree: the tokenizer still checks
      // well-formedness, but validation does no work at all.
      ++skip_depth_;
      return Status::OK();
    }

    TypeId s_type = kInvalidType;
    TypeId t_type = kInvalidType;
    std::optional<Symbol> sym = source_.alphabet()->Find(name);
    if (frames_.empty()) {
      s_type = sym ? source_.RootType(*sym) : kInvalidType;
      t_type = sym ? target_.RootType(*sym) : kInvalidType;
      ++report_->counters.nodes_visited;
      ++report_->counters.elements_visited;
      if (s_type == kInvalidType) {
        return Fail(StrCat("precondition violated: root '", name,
                           "' is not declared by the source schema"));
      }
      if (t_type == kInvalidType) {
        return Fail(StrCat("root element '", name,
                           "' is not declared by the target schema"));
      }
    } else {
      Frame& parent = frames_.back();
      if (!sym) {
        return Fail(StrCat("element '", name,
                           "' is outside the schemas' alphabet"));
      }
      ++report_->counters.nodes_visited;
      ++report_->counters.elements_visited;
      t_type = target_.ChildType(parent.t_type, *sym);
      if (t_type == kInvalidType) return ContentFail(parent);
      // Step the parent's content check unless already decided.
      if (!parent.decided) {
        if (parent.pair != nullptr) {
          parent.state = parent.pair->dfa().Next(parent.state, *sym);
          ++report_->counters.dfa_steps;
          automata::StateClass cls = parent.pair->Class(parent.state);
          if (cls == automata::StateClass::kImmediateAccept) {
            ++report_->counters.immediate_decisions;
            parent.decided = true;
          } else if (cls == automata::StateClass::kImmediateReject) {
            ++report_->counters.immediate_decisions;
            return ContentFail(parent);
          }
        } else {
          const automata::Dfa* tdfa = rel_.TargetDfa(parent.t_type);
          if (*sym >= tdfa->alphabet_size()) return ContentFail(parent);
          parent.state = tdfa->Next(parent.state, *sym);
          ++report_->counters.dfa_steps;
        }
      }
      s_type = source_.ChildType(parent.s_type, *sym);
      if (s_type == kInvalidType) {
        return Fail(StrCat("precondition violated: source type '",
                           source_.TypeName(parent.s_type),
                           "' does not type child label '", name, "'"));
      }
    }

    if (rel_.Subsumed(s_type, t_type)) {
      ++report_->counters.subtrees_skipped;
      skip_depth_ = 1;
      return Status::OK();
    }
    if (rel_.Disjoint(s_type, t_type)) {
      ++report_->counters.disjoint_rejects;
      return Fail(StrCat("element '", name, "': source type '",
                         source_.TypeName(s_type),
                         "' is disjoint from target type '",
                         target_.TypeName(t_type), "'"));
    }

    // Frames exist only past the Σ checks above, so the Symbol is enough.
    Frame frame;
    frame.sym = *sym;
    frame.s_type = s_type;
    frame.t_type = t_type;
    frame.t_simple = target_.IsSimple(t_type);
    if (!frame.t_simple) {
      const schema::ComplexType& t_decl = target_.complex_type(t_type);
      if (!t_decl.open_attributes) {
        ++report_->counters.attr_checks;
        attr_scratch_.clear();
        for (const xml::SaxAttribute& attr : attributes) {
          attr_scratch_.push_back(
              xml::Attribute{std::string(attr.name), std::string(attr.value)});
        }
        Status check = schema::ValidateTypeAttributes(t_decl, attr_scratch_);
        if (!check.ok()) {
          return Fail(StrCat("element '", name, "': ", check.message()));
        }
      }
      frame.pair = rel_.PairAutomaton(s_type, t_type);
      if (frame.pair != nullptr) {
        frame.state = frame.pair->dfa().start_state();
        automata::StateClass cls = frame.pair->Class(frame.state);
        if (cls == automata::StateClass::kImmediateAccept) {
          ++report_->counters.immediate_decisions;
          frame.decided = true;
        } else if (cls == automata::StateClass::kImmediateReject) {
          ++report_->counters.immediate_decisions;
          frames_.push_back(frame);  // so ContentFail names it
          return ContentFail(frames_.back());
        }
      } else {
        frame.state = rel_.TargetDfa(t_type)->start_state();
      }
    }
    frames_.push_back(std::move(frame));
    report_->max_live_frames = std::max<uint64_t>(
        report_->max_live_frames, frames_.size() + skip_depth_);
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    if (skip_depth_ > 0) return Status::OK();
    Frame& frame = frames_.back();
    if (frame.t_simple) {
      ++report_->counters.nodes_visited;
      ++report_->counters.text_nodes_visited;
      frame.text.append(text);
    }
    // Text under a complex target type is whitespace by the source-validity
    // precondition; not even inspected (mirrors CastValidator).
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    if (skip_depth_ > 0) {
      --skip_depth_;
      return Status::OK();
    }
    Frame& frame = frames_.back();
    if (frame.t_simple) {
      ++report_->counters.simple_checks;
      Status check = schema::ValidateSimpleValue(
          target_.simple_type(frame.t_type), frame.text);
      if (!check.ok()) {
        return Fail(StrCat("element '", source_.alphabet()->Name(frame.sym),
                           "': ", check.message()));
      }
    } else if (!frame.decided) {
      bool accepted = frame.pair != nullptr
                          ? frame.pair->dfa().IsAccepting(frame.state)
                          : rel_.TargetDfa(frame.t_type)
                                ->IsAccepting(frame.state);
      if (!accepted) return ContentFail(frame);
    }
    frames_.pop_back();
    return Status::OK();
  }

 private:
  struct Frame {
    Symbol sym;  // the element's interned symbol (label for diagnostics)
    TypeId s_type;
    TypeId t_type;
    bool t_simple = false;
    bool decided = false;
    const automata::ImmediateDfa* pair = nullptr;
    automata::StateId state = 0;
    std::string text;
  };

  Status Fail(std::string message) {
    report_->valid = false;
    report_->violation = std::move(message);
    return Abort();
  }

  Status ContentFail(const Frame& frame) {
    return Fail(StrCat("children of '", source_.alphabet()->Name(frame.sym),
                       "' do not match the content model of target type '",
                       target_.TypeName(frame.t_type), "'"));
  }

  const TypeRelations& rel_;
  const Schema& source_;
  const Schema& target_;
  StreamingReport* report_;
  std::vector<Frame> frames_;
  std::vector<xml::Attribute> attr_scratch_;
  size_t skip_depth_ = 0;
};

StreamingReport Finish(StreamingReport report, const Status& status) {
  if (status.ok()) return report;
  if (!report.valid) return report;  // handler aborted with a violation
  // Well-formedness failure: surface the parse error as the violation.
  report.valid = false;
  report.violation = status.ToString();
  return report;
}

}  // namespace

StreamingReport StreamingValidate(std::string_view input,
                                  const Schema& schema,
                                  const xml::ParseOptions& options) {
  StreamingReport report;
  FullHandler handler(schema, &report);
  Status status = xml::ParseXmlEvents(input, &handler, options);
  return Finish(std::move(report), status);
}

StreamingReport StreamingCastValidate(std::string_view input,
                                      const TypeRelations& relations,
                                      const xml::ParseOptions& options) {
  StreamingReport report;
  CastHandler handler(relations, &report);
  Status status = xml::ParseXmlEvents(input, &handler, options);
  return Finish(std::move(report), status);
}

}  // namespace xmlreval::core
