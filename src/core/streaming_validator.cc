#include "core/streaming_validator.h"

#include <optional>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "xml/push_parser.h"

namespace xmlreval::core {

using automata::Symbol;
using schema::kInvalidType;
using schema::Schema;
using schema::TypeId;

namespace {

// Handlers abort the parse on a validity violation by returning this
// sentinel; the wrappers translate it into report.valid = false. Genuine
// well-formedness errors keep their parse-error status and message.
Status Abort() { return Status::InvalidArgument("__xmlreval_invalid__"); }

bool IsAbortStatus(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument &&
         status.message() == "__xmlreval_invalid__";
}

// ---- Full validation over events ------------------------------------------

class FullHandler : public xml::SaxHandler {
 public:
  explicit FullHandler(const Schema& schema, StreamingReport* report)
      : schema_(schema), report_(report) {}

  Status StartElement(std::string_view name,
                      const std::vector<xml::SaxAttribute>& attributes)
      override {
    ++report_->counters.nodes_visited;
    ++report_->counters.elements_visited;

    TypeId type = kInvalidType;
    std::optional<Symbol> sym = schema_.alphabet()->Find(name);
    if (frames_.empty()) {
      type = sym ? schema_.RootType(*sym) : kInvalidType;
      if (type == kInvalidType) {
        return Fail(StrCat("root element '", name,
                           "' is not declared by the schema"));
      }
    } else {
      Frame& parent = frames_.back();
      if (parent.simple) {
        return Fail(StrCat("element '", name,
                           "' not allowed under simple-typed '",
                           Name(parent.sym), "'"));
      }
      const automata::Dfa& dfa = schema_.ContentDfa(parent.type);
      if (!sym || *sym >= dfa.alphabet_size() ||
          schema_.ChildType(parent.type, *sym) == kInvalidType) {
        return Fail(StrCat("element '", name,
                           "' not allowed by the content model of type '",
                           schema_.TypeName(parent.type), "'"));
      }
      parent.state = dfa.Next(parent.state, *sym);
      ++report_->counters.dfa_steps;
      type = schema_.ChildType(parent.type, *sym);
    }

    // A frame exists only for elements whose symbol resolved (the type
    // checks above imply Σ membership), so storing the Symbol instead of a
    // copied label string is lossless — and allocation-free.
    Frame frame;
    frame.type = type;
    frame.sym = *sym;
    frame.simple = schema_.IsSimple(type);
    if (!frame.simple) {
      RETURN_IF_ERROR(CheckAttributes(type, name, attributes));
      frame.state = schema_.ContentDfa(type).start_state();
    }
    frames_.push_back(std::move(frame));
    report_->max_live_frames =
        std::max<uint64_t>(report_->max_live_frames, frames_.size());
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    ++report_->counters.nodes_visited;
    ++report_->counters.text_nodes_visited;
    Frame& frame = frames_.back();
    if (frame.simple) {
      frame.text.append(text);
      return Status::OK();
    }
    if (!TrimWhitespace(text).empty()) {
      return Fail(StrCat("character data not allowed under '",
                         Name(frame.sym), "' (element-only content)"));
    }
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    Frame& frame = frames_.back();
    if (frame.simple) {
      ++report_->counters.simple_checks;
      Status check = schema::ValidateSimpleValue(
          schema_.simple_type(frame.type), frame.text);
      if (!check.ok()) {
        return Fail(StrCat("element '", Name(frame.sym), "': ",
                           check.message()));
      }
    } else if (!schema_.ContentDfa(frame.type).IsAccepting(frame.state)) {
      return Fail(StrCat("children of '", Name(frame.sym),
                         "' do not match the content model of type '",
                         schema_.TypeName(frame.type), "'"));
    }
    frames_.pop_back();
    return Status::OK();
  }

 private:
  struct Frame {
    TypeId type;
    Symbol sym;  // the element's interned symbol (label for diagnostics)
    bool simple;
    automata::StateId state = 0;  // content DFA state (complex types)
    std::string text;             // accumulated χ value (simple types)
  };

  const std::string& Name(Symbol sym) const {
    return schema_.alphabet()->Name(sym);
  }

  Status Fail(std::string message) {
    report_->valid = false;
    report_->violation = std::move(message);
    return Abort();
  }

  Status CheckAttributes(TypeId type, std::string_view name,
                         const std::vector<xml::SaxAttribute>& attributes) {
    const schema::ComplexType& decl = schema_.complex_type(type);
    if (decl.open_attributes) return Status::OK();
    ++report_->counters.attr_checks;
    attr_scratch_.clear();
    for (const xml::SaxAttribute& attr : attributes) {
      attr_scratch_.push_back(
          xml::Attribute{std::string(attr.name), std::string(attr.value)});
    }
    Status check = schema::ValidateTypeAttributes(decl, attr_scratch_);
    if (!check.ok()) {
      return Fail(StrCat("element '", name, "': ", check.message()));
    }
    return Status::OK();
  }

  const Schema& schema_;
  StreamingReport* report_;
  std::vector<Frame> frames_;
  std::vector<xml::Attribute> attr_scratch_;
};

// ---- Schema cast over events (§3.2) ----------------------------------------

class CastHandler : public xml::SaxHandler {
 public:
  CastHandler(const TypeRelations& rel, StreamingReport* report)
      : rel_(rel),
        source_(rel.source()),
        target_(rel.target()),
        report_(report) {}

  /// Session mode: subsumed subtrees are handed to `parser`'s raw-byte
  /// skip scanner instead of being tokenized with validation suppressed.
  /// When `use_parser_skip` is false the handler keeps the legacy
  /// skip_depth_ suppression even under a PushParser (the
  /// tokenize-everything A/B baseline).
  void AttachParser(xml::PushParser* parser, bool use_parser_skip) {
    parser_ = parser;
    use_parser_skip_ = use_parser_skip && parser != nullptr;
  }

  Status StartElement(std::string_view name,
                      const std::vector<xml::SaxAttribute>& attributes)
      override {
    if (skip_depth_ > 0) {
      // Inside a subsumed subtree: the tokenizer still checks
      // well-formedness, but validation does no work at all.
      ++skip_depth_;
      return Status::OK();
    }

    TypeId s_type = kInvalidType;
    TypeId t_type = kInvalidType;
    uint32_t ordinal = 0;
    std::optional<Symbol> sym = source_.alphabet()->Find(name);
    if (frames_.empty()) {
      s_type = sym ? source_.RootType(*sym) : kInvalidType;
      t_type = sym ? target_.RootType(*sym) : kInvalidType;
      ++report_->counters.nodes_visited;
      ++report_->counters.elements_visited;
      if (s_type == kInvalidType) {
        return FailParent(StrCat("precondition violated: root '", name,
                                 "' is not declared by the source schema"));
      }
      if (t_type == kInvalidType) {
        return FailParent(StrCat("root element '", name,
                                 "' is not declared by the target schema"));
      }
    } else {
      Frame& parent = frames_.back();
      ordinal = parent.next_child++;
      if (!sym) {
        return FailParent(StrCat("element '", name,
                                 "' is outside the schemas' alphabet"));
      }
      ++report_->counters.nodes_visited;
      ++report_->counters.elements_visited;
      t_type = target_.ChildType(parent.t_type, *sym);
      if (t_type == kInvalidType) return ContentFail(parent);
      // Step the parent's content check unless already decided.
      if (!parent.decided) {
        if (parent.pair != nullptr) {
          parent.state = parent.pair->dfa().Next(parent.state, *sym);
          ++report_->counters.dfa_steps;
          automata::StateClass cls = parent.pair->Class(parent.state);
          if (cls == automata::StateClass::kImmediateAccept) {
            ++report_->counters.immediate_decisions;
            parent.decided = true;
          } else if (cls == automata::StateClass::kImmediateReject) {
            ++report_->counters.immediate_decisions;
            return ContentFail(parent);
          }
        } else {
          const automata::Dfa* tdfa = rel_.TargetDfa(parent.t_type);
          if (*sym >= tdfa->alphabet_size()) return ContentFail(parent);
          parent.state = tdfa->Next(parent.state, *sym);
          ++report_->counters.dfa_steps;
        }
      }
      s_type = source_.ChildType(parent.s_type, *sym);
      if (s_type == kInvalidType) {
        return FailParent(StrCat("precondition violated: source type '",
                                 source_.TypeName(parent.s_type),
                                 "' does not type child label '", name, "'"));
      }
    }

    if (rel_.Subsumed(s_type, t_type)) {
      ++report_->counters.subtrees_skipped;
      if (use_parser_skip_) {
        // R_sub: any fragment valid under s_type is valid under t_type, so
        // the subtree's bytes cannot affect the verdict — skip-scan them.
        parser_->SkipCurrentSubtree();
      } else {
        skip_depth_ = 1;
      }
      return Status::OK();
    }
    if (rel_.Disjoint(s_type, t_type)) {
      ++report_->counters.disjoint_rejects;
      return FailSelf(StrCat("element '", name, "': source type '",
                             source_.TypeName(s_type),
                             "' is disjoint from target type '",
                             target_.TypeName(t_type), "'"),
                      ordinal);
    }

    // Frames exist only past the Σ checks above, so the Symbol is enough.
    Frame frame;
    frame.sym = *sym;
    frame.ordinal = ordinal;
    frame.s_type = s_type;
    frame.t_type = t_type;
    frame.t_simple = target_.IsSimple(t_type);
    if (!frame.t_simple) {
      const schema::ComplexType& t_decl = target_.complex_type(t_type);
      if (!t_decl.open_attributes) {
        ++report_->counters.attr_checks;
        attr_scratch_.clear();
        for (const xml::SaxAttribute& attr : attributes) {
          attr_scratch_.push_back(
              xml::Attribute{std::string(attr.name), std::string(attr.value)});
        }
        Status check = schema::ValidateTypeAttributes(t_decl, attr_scratch_);
        if (!check.ok()) {
          return FailSelf(StrCat("element '", name, "': ", check.message()),
                          ordinal);
        }
      }
      frame.pair = rel_.PairAutomaton(s_type, t_type);
      if (frame.pair != nullptr) {
        frame.state = frame.pair->dfa().start_state();
        automata::StateClass cls = frame.pair->Class(frame.state);
        if (cls == automata::StateClass::kImmediateAccept) {
          ++report_->counters.immediate_decisions;
          frame.decided = true;
        } else if (cls == automata::StateClass::kImmediateReject) {
          ++report_->counters.immediate_decisions;
          frames_.push_back(frame);  // so ContentFail names it
          return ContentFail(frames_.back());
        }
      } else {
        frame.state = rel_.TargetDfa(t_type)->start_state();
      }
    }
    frames_.push_back(std::move(frame));
    report_->max_live_frames = std::max<uint64_t>(
        report_->max_live_frames, frames_.size() + skip_depth_);
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    if (skip_depth_ > 0) return Status::OK();
    Frame& frame = frames_.back();
    if (frame.t_simple) {
      ++report_->counters.nodes_visited;
      ++report_->counters.text_nodes_visited;
      frame.text.append(text);
    }
    // Text under a complex target type is whitespace by the source-validity
    // precondition; not even inspected (mirrors CastValidator).
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    if (skip_depth_ > 0) {
      --skip_depth_;
      return Status::OK();
    }
    Frame& frame = frames_.back();
    if (frame.t_simple) {
      ++report_->counters.simple_checks;
      Status check = schema::ValidateSimpleValue(
          target_.simple_type(frame.t_type), frame.text);
      if (!check.ok()) {
        return FailParent(StrCat("element '",
                                 source_.alphabet()->Name(frame.sym), "': ",
                                 check.message()));
      }
    } else if (!frame.decided) {
      bool accepted = frame.pair != nullptr
                          ? frame.pair->dfa().IsAccepting(frame.state)
                          : rel_.TargetDfa(frame.t_type)
                                ->IsAccepting(frame.state);
      if (!accepted) return ContentFail(frame);
    }
    frames_.pop_back();
    return Status::OK();
  }

 private:
  struct Frame {
    Symbol sym;  // the element's interned symbol (label for diagnostics)
    uint32_t ordinal = 0;     // index among the parent's children
    uint32_t next_child = 0;  // ordinal the next child will get
    TypeId s_type;
    TypeId t_type;
    bool t_simple = false;
    bool decided = false;
    const automata::ImmediateDfa* pair = nullptr;
    automata::StateId state = 0;
    std::string text;
  };

  Status Fail(std::string message) {
    report_->valid = false;
    report_->violation = std::move(message);
    return Abort();
  }

  // The Dewey path of frames_.back() — also the path of the PARENT when
  // the failing child has not been pushed as a frame, which is exactly the
  // blame convention for content-model, alphabet and precondition
  // failures (mirrors CastWalk).
  void SetPathToTopFrame() {
    report_->violation_path_known = true;
    report_->violation_path.clear();
    for (size_t i = 1; i < frames_.size(); ++i) {
      report_->violation_path.push_back(frames_[i].ordinal);
    }
  }

  /// Blames the top frame (or the whole document when no frame exists).
  Status FailParent(std::string message) {
    SetPathToTopFrame();
    return Fail(std::move(message));
  }

  /// Blames the element being started, which has no frame yet; `ordinal`
  /// is its index under frames_.back() (ignored at the root: ε).
  Status FailSelf(std::string message, uint32_t ordinal) {
    SetPathToTopFrame();
    if (!frames_.empty()) report_->violation_path.push_back(ordinal);
    return Fail(std::move(message));
  }

  Status ContentFail(const Frame& frame) {
    SetPathToTopFrame();
    return Fail(StrCat("children of '", source_.alphabet()->Name(frame.sym),
                       "' do not match the content model of target type '",
                       target_.TypeName(frame.t_type), "'"));
  }

  const TypeRelations& rel_;
  const Schema& source_;
  const Schema& target_;
  StreamingReport* report_;
  std::vector<Frame> frames_;
  std::vector<xml::Attribute> attr_scratch_;
  size_t skip_depth_ = 0;
  xml::PushParser* parser_ = nullptr;
  bool use_parser_skip_ = false;
};

StreamingReport FinalizeReport(StreamingReport report, const Status& status) {
  if (status.ok()) return report;
  if (!report.valid) return report;  // handler aborted with a violation
  // Well-formedness failure: surface the parse error as the violation.
  report.valid = false;
  report.violation = status.ToString();
  return report;
}

}  // namespace

StreamingReport StreamingValidate(std::string_view input,
                                  const Schema& schema,
                                  const xml::ParseOptions& options) {
  StreamingReport report;
  report.bytes_fed = input.size();
  FullHandler handler(schema, &report);
  Status status = xml::ParseXmlEvents(input, &handler, options);
  return FinalizeReport(std::move(report), status);
}

StreamingReport StreamingCastValidate(std::string_view input,
                                      const TypeRelations& relations,
                                      const xml::ParseOptions& options) {
  StreamingReport report;
  report.bytes_fed = input.size();
  CastHandler handler(relations, &report);
  Status status = xml::ParseXmlEvents(input, &handler, options);
  return FinalizeReport(std::move(report), status);
}

// ---- Incremental session ---------------------------------------------------

struct StreamingCastSession::Impl {
  StreamingReport report;
  CastHandler handler;
  xml::PushParser parser;
  bool done = false;
  Status status;  // the deciding status returned by Feed/after done

  Impl(const TypeRelations& relations, const StreamingCastOptions& options)
      : handler(relations, &report), parser(&handler, options.parse) {
    handler.AttachParser(&parser, options.skip_scan);
  }

  void Finalize(const Status& underlying) {
    done = true;
    report = FinalizeReport(std::move(report), underlying);
    report.bytes_fed = parser.bytes_fed();
    report.bytes_skipped = parser.bytes_skipped();
    report.peak_carry_bytes = parser.peak_carry_bytes();
    if (underlying.ok()) {
      status = Status::OK();
    } else if (IsAbortStatus(underlying)) {
      // Surface the violation, not the internal abort sentinel.
      status = Status::InvalidArgument(report.violation);
    } else {
      status = underlying;
    }
  }
};

StreamingCastSession::StreamingCastSession(const TypeRelations& relations,
                                           const StreamingCastOptions& options)
    : impl_(std::make_unique<Impl>(relations, options)) {}

StreamingCastSession::~StreamingCastSession() = default;

Status StreamingCastSession::Feed(std::string_view chunk) {
  if (impl_->done) return impl_->status;
  Status status = impl_->parser.Feed(chunk);
  if (!status.ok()) impl_->Finalize(status);
  return impl_->done ? impl_->status : Status::OK();
}

const StreamingReport& StreamingCastSession::Finish() {
  if (!impl_->done) impl_->Finalize(impl_->parser.Finish());
  return impl_->report;
}

bool StreamingCastSession::done() const { return impl_->done; }

const Status& StreamingCastSession::status() const { return impl_->status; }

}  // namespace xmlreval::core
