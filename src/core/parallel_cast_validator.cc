#include "core/parallel_cast_validator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/cast_walk.h"
#include "obs/trace.h"

namespace xmlreval::core {

namespace {

// Adaptive spawn-threshold calibration (Options::spawn_threshold == 0).
// A donated half-frontier should amortise one task dispatch (enqueue +
// wake-up + counter merge, low tens of µs on a loaded pool), so the
// threshold targets kTargetDonationNs of measured serial work per slice.
constexpr size_t kCalibrationUnits = 512;
constexpr uint64_t kTargetDonationNs = 32 * 1000;
constexpr size_t kMinSpawnThreshold = 16;
constexpr size_t kMaxSpawnThreshold = 4096;
constexpr size_t kFallbackSpawnThreshold = 64;

// Times a serial prefix walk of `doc` (at most kCalibrationUnits frontier
// units) and converts ns/unit into a donation threshold. The walk's
// counters and any failure it trips are discarded — the real run
// rediscovers them — so calibration never perturbs the report. Documents
// too small (or clocks too coarse) to measure fall back to the historical
// fixed default.
size_t CalibrateSpawnThreshold(const TypeRelations& rel,
                               const xml::Document& doc, bool use_symbols,
                               bool use_immediate) {
  ValidationReport scratch;
  CastUnit root;
  if (!internal::ResolveRootUnit(rel, doc, use_symbols, &scratch, &root)) {
    return kFallbackSpawnThreshold;
  }
  internal::CastWalk walk{rel,           rel.source(), rel.target(),
                          doc,           use_immediate, use_symbols};
  walk.prune_subsumed_at_push = true;
  std::string simple_value;
  walk.simple_value = &simple_value;
  std::vector<CastUnit> stack{root};
  size_t processed = 0;
  const auto start = std::chrono::steady_clock::now();
  while (!stack.empty() && processed < kCalibrationUnits) {
    CastUnit unit = stack.back();
    stack.pop_back();
    if (!walk.ProcessUnit(unit, &stack)) break;
    ++processed;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (processed < kMinSpawnThreshold || elapsed <= 0) {
    return kFallbackSpawnThreshold;
  }
  const double ns_per_unit =
      static_cast<double>(elapsed) / static_cast<double>(processed);
  const auto target =
      static_cast<size_t>(static_cast<double>(kTargetDonationNs) / ns_per_unit);
  return std::clamp(target, kMinSpawnThreshold, kMaxSpawnThreshold);
}

// State shared by every task of one Validate call. Owned via shared_ptr:
// the last finishing task (or the waiting caller) releases it.
struct SharedRun {
  SharedRun(const TypeRelations* relations, const xml::Document* document,
            common::Executor* exec, bool symbols, bool immediate,
            size_t threshold)
      : rel(relations),
        doc(document),
        executor(exec),
        group(exec),
        use_symbols(symbols),
        use_immediate(immediate),
        spawn_threshold(threshold) {}

  const TypeRelations* rel;
  const xml::Document* doc;
  common::Executor* executor;
  common::TaskGroup group;
  const bool use_symbols;
  const bool use_immediate;
  const size_t spawn_threshold;

  // First-failure cell, keyed by the failing UNIT's document-order Dewey
  // path. Monotone: only an earlier unit may replace the current record,
  // so a later-sibling failure never shadows an earlier one.
  std::atomic<bool> abort{false};
  std::mutex fail_mutex;
  bool failed = false;                // guarded by fail_mutex
  xml::DeweyPath min_unit_path;       // guarded by fail_mutex
  xml::DeweyPath fail_path;           // guarded by fail_mutex
  std::string fail_message;           // guarded by fail_mutex

  std::mutex merge_mutex;
  ValidationCounters counters;        // guarded by merge_mutex
  std::atomic<uint64_t> tasks{0};

  // Failure-path Dewey ordinals, memoized per run. DeweyPath::Of walks the
  // prev-sibling chain for every component (O(position among siblings));
  // when thousands of sibling units fail — or get cancellation-checked —
  // that turns the drain quadratic. One forward walk per sibling chain
  // fills the cache for every sibling at once, so path construction costs
  // O(nodes) amortised across the whole run.
  std::mutex ordinal_mutex;
  std::unordered_map<xml::NodeId, uint32_t> ordinals;  // guarded by ordinal_mutex

  xml::DeweyPath PathOf(xml::NodeId node) {
    std::vector<uint32_t> components;
    std::lock_guard lock(ordinal_mutex);
    for (xml::NodeId cur = node; doc->parent(cur) != xml::kInvalidNode;
         cur = doc->parent(cur)) {
      components.push_back(OrdinalLocked(cur));
    }
    std::reverse(components.begin(), components.end());
    return xml::DeweyPath(std::move(components));
  }

  // Requires ordinal_mutex held.
  uint32_t OrdinalLocked(xml::NodeId node) {
    auto it = ordinals.find(node);
    if (it != ordinals.end()) return it->second;
    uint32_t result = 0;
    uint32_t index = 0;
    for (xml::NodeId s = doc->first_child(doc->parent(node));
         s != xml::kInvalidNode; s = doc->next_sibling(s), ++index) {
      ordinals.emplace(s, index);
      if (s == node) result = index;
    }
    return result;
  }

  void RecordFailure(xml::NodeId unit_node, xml::NodeId fail_node,
                     std::string message) {
    xml::DeweyPath unit_path = PathOf(unit_node);
    xml::DeweyPath node_path = PathOf(fail_node);
    {
      std::lock_guard lock(fail_mutex);
      if (!failed || unit_path < min_unit_path) {
        failed = true;
        min_unit_path = std::move(unit_path);
        fail_path = std::move(node_path);
        fail_message = std::move(message);
      }
    }
    abort.store(true, std::memory_order_release);
  }

  /// True when `unit_node` lies strictly AFTER the recorded first failure
  /// in document order — such units cannot contain an earlier failure and
  /// may be dropped. Units at or before the minimum must still run. Only
  /// consulted once the abort flag is up (failure paths are cold).
  bool Cancelled(xml::NodeId unit_node) {
    if (!abort.load(std::memory_order_acquire)) return false;
    xml::DeweyPath unit_path = PathOf(unit_node);
    std::lock_guard lock(fail_mutex);
    return failed && min_unit_path < unit_path;
  }
};

void RunTask(const std::shared_ptr<SharedRun>& run,
             std::vector<CastUnit> stack) {
  // Per-task span under whatever the worker is nested in; args carry this
  // task's slice of the traversal counters.
  obs::Span span("cast.task");
  run->tasks.fetch_add(1, std::memory_order_relaxed);
  internal::CastWalk walk{*run->rel,
                          run->rel->source(),
                          run->rel->target(),
                          *run->doc,
                          run->use_immediate,
                          run->use_symbols};
  walk.prune_subsumed_at_push = true;
  std::string simple_value;
  walk.simple_value = &simple_value;

  // Invariant: `stack` is sorted by document order, top (back) earliest;
  // a pop expands the earliest pending unit, whose children land on top —
  // still earlier than every sibling below. Donating a bottom slice
  // therefore hands a thief the document-order-latest span, and both
  // halves keep the invariant.
  while (!stack.empty()) {
    CastUnit unit = stack.back();
    stack.pop_back();
    if (!stack.empty()) walk.hv.PrefetchRow(stack.back().node);
    if (run->Cancelled(unit.node)) continue;
    if (!walk.ProcessUnit(unit, &stack)) {
      run->RecordFailure(unit.node, walk.fail_node,
                         std::move(walk.fail_message));
      continue;  // earlier units may still hold an earlier failure
    }
    // Once a failure is recorded the remaining drain is cancellation
    // scans; donating halves would only multiply wake-ups and copies.
    if (!run->abort.load(std::memory_order_relaxed) &&
        stack.size() >= run->spawn_threshold &&
        run->executor->HasIdleWorker()) {
      const size_t half = stack.size() / 2;
      std::vector<CastUnit> donated(stack.begin(), stack.begin() + half);
      stack.erase(stack.begin(), stack.begin() + half);
      // The flow edge starts inside THIS cast.task span and terminates on
      // the donated task's cast.task span, wherever it gets stolen to.
      obs::TraceContext ctx = obs::ForkFlow("cast.flow");
      run->group.Spawn(
          [run, ctx, donated = std::move(donated)]() mutable {
            obs::ScopedTraceContext scoped(ctx);
            RunTask(run, std::move(donated));
          });
    }
  }
  AttachTraceArgs(span, walk.counters);
  std::lock_guard lock(run->merge_mutex);
  run->counters += walk.counters;
}

}  // namespace

ParallelCastValidator::ParallelCastValidator(const TypeRelations* relations,
                                             common::Executor* executor,
                                             const Options& options)
    : relations_(relations), executor_(executor), options_(options) {
  XMLREVAL_CHECK(relations != nullptr,
                 "ParallelCastValidator requires relations");
  XMLREVAL_CHECK(executor != nullptr,
                 "ParallelCastValidator requires an executor");
}

size_t ParallelCastValidator::EffectiveThreshold(const xml::Document& doc,
                                                 bool use_symbols) const {
  if (options_.spawn_threshold != 0) return options_.spawn_threshold;
  size_t cached = calibrated_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  size_t calibrated = CalibrateSpawnThreshold(
      *relations_, doc, use_symbols, options_.cast.use_immediate_content);
  calibrated_.store(calibrated, std::memory_order_relaxed);
  return calibrated;
}

ValidationReport ParallelCastValidator::Validate(const xml::Document& doc,
                                                 RunStats* stats) const {
  // Adopts the service's request id when called through it; direct
  // callers (benches, tests) get their own, kept unconditionally.
  obs::RequestScope request_scope;
  obs::Span span("cast.traverse");
  const bool use_symbols = doc.BoundTo(*relations_->source().alphabet());
  ValidationReport report;
  CastUnit root;
  if (!internal::ResolveRootUnit(*relations_, doc, use_symbols, &report,
                                 &root)) {
    if (stats != nullptr) *stats = RunStats{};
    return report;
  }

  const size_t threshold = EffectiveThreshold(doc, use_symbols);
  auto run = std::make_shared<SharedRun>(relations_, &doc, executor_,
                                         use_symbols,
                                         options_.cast.use_immediate_content,
                                         threshold);
  obs::TraceContext root_ctx = obs::ForkFlow("cast.flow");
  run->group.Spawn([run, root, root_ctx] {
    obs::ScopedTraceContext scoped(root_ctx);
    RunTask(run, {root});
  });
  run->group.Wait();

  if (stats != nullptr) {
    stats->tasks = run->tasks.load(std::memory_order_relaxed);
    stats->spawn_threshold = threshold;
    stats->replayed = run->failed;
    stats->tracked_failure = run->failed;
    stats->tracked_unit_path = run->min_unit_path;
    stats->tracked_fail_path = run->fail_path;
    stats->tracked_message = run->fail_message;
  }
  if (run->failed) {
    // Counters up to the first failure cannot be reconstructed from
    // cancelled tasks, so the serial engine recomputes the whole report —
    // verdict, path, message, counters all bit-identical to CastValidator.
    // Bounded by the serial cost; failures are the cold path.
    report = CastValidator(relations_, options_.cast).Validate(doc);
  } else {
    report.counters = run->counters;
  }
  AttachTraceArgs(span, report.counters);
  return report;
}

}  // namespace xmlreval::core
