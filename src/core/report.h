// Validation verdicts with diagnostics and work counters.
//
// Every validator in xmlreval returns a ValidationReport rather than a bare
// bool: the counters are how Table 3 of the paper (nodes traversed) and the
// optimality experiments fall out of the API, and the violation fields make
// failures actionable.
//
// Counting discipline (used consistently by the full and cast validators so
// Table 3 is apples-to-apples): a node is "visited" when the validator
// reads its label (elements) or its character data (text nodes). In cast
// validation a child whose subtree is skipped via subsumption is still
// visited once — its label participates in the parent's content-model
// check — but nothing below it is.

#ifndef XMLREVAL_CORE_REPORT_H_
#define XMLREVAL_CORE_REPORT_H_

#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "xml/dewey.h"

namespace xmlreval::core {

struct ValidationCounters {
  /// Total nodes (elements + text) whose content the validator read.
  uint64_t nodes_visited = 0;
  uint64_t elements_visited = 0;
  uint64_t text_nodes_visited = 0;
  /// Subtrees accepted without traversal because τ ≤ τ' (R_sub hit).
  uint64_t subtrees_skipped = 0;
  /// Immediate rejections because τ ⊘ τ' (R_dis hit).
  uint64_t disjoint_rejects = 0;
  /// Content-model DFA transitions taken.
  uint64_t dfa_steps = 0;
  /// Content-model checks decided early by an IA/IR state (§4).
  uint64_t immediate_decisions = 0;
  /// Simple-value (facet) checks performed.
  uint64_t simple_checks = 0;
  /// Attribute-set checks performed (complex types with closed policies).
  uint64_t attr_checks = 0;

  ValidationCounters& operator+=(const ValidationCounters& other) {
    nodes_visited += other.nodes_visited;
    elements_visited += other.elements_visited;
    text_nodes_visited += other.text_nodes_visited;
    subtrees_skipped += other.subtrees_skipped;
    disjoint_rejects += other.disjoint_rejects;
    dfa_steps += other.dfa_steps;
    immediate_decisions += other.immediate_decisions;
    simple_checks += other.simple_checks;
    attr_checks += other.attr_checks;
    return *this;
  }
};

/// Attaches the domain counters the paper's evaluation cares about (nodes
/// visited, DFA transitions fed, subtrees skipped by Δ/subsumption
/// pruning) to a traversal-phase trace span. Free on a disabled span.
inline void AttachTraceArgs(obs::Span& span, const ValidationCounters& c) {
  if (!span.enabled()) return;
  span.Arg("nodes_visited", c.nodes_visited);
  span.Arg("dfa_steps", c.dfa_steps);
  span.Arg("subtrees_skipped", c.subtrees_skipped);
  span.Arg("immediate_decisions", c.immediate_decisions);
}

struct ValidationReport {
  bool valid = true;
  /// Human-readable description of the first violation (empty when valid).
  std::string violation;
  /// Dewey path of the offending node (meaningful when !valid).
  xml::DeweyPath violation_path;
  ValidationCounters counters;
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_REPORT_H_
