// Static schema-pair preprocessing: the R_sub and R_dis relations (§3.2)
// plus the content-model immediate decision automata of §4.
//
// Computing a TypeRelations is the paper's "preprocess the schemas" step —
// it depends only on the two schemas, never on documents, so it is done
// once per (source, target) pair and shared by any number of validations.
//
//   * R_sub (Definition 4) is computed by greatest-fixpoint refinement:
//     start from all structurally-plausible pairs (simple/simple pairs with
//     SimpleSubsumed, complex/complex pairs with L(regexp_τ) ⊆ L(regexp_τ'))
//     and remove pairs whose child typings are not pairwise subsumed, until
//     stable (Theorem 1).
//   * R_nondis (Definition 5) is the least fixpoint: seed with
//     non-disjoint simple pairs, then add complex pairs whose content
//     models intersect over the already-non-disjoint labels P, until
//     stable (Theorem 2). R_dis is its complement.
//   * For every complex pair that is neither subsumed nor disjoint — the
//     pairs the cast validator actually has to work on — the pair's
//     c_immed (§4.2, Definition 7) is prebuilt. For every target complex
//     type, b_immed (Definition 6) is prebuilt for the with-modifications
//     path (§4.3 step 1) and for validating freshly inserted content.

#ifndef XMLREVAL_CORE_RELATIONS_H_
#define XMLREVAL_CORE_RELATIONS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/immediate.h"
#include "common/result.h"
#include "schema/abstract_schema.h"

namespace xmlreval::core {

using schema::Schema;
using schema::TypeId;

class TypeRelations {
 public:
  struct Options {
    /// Prebuild c_immed for non-subsumed, non-disjoint complex pairs.
    /// Disable to measure the plain-DFA content check (ablation A1).
    bool build_pair_automata = true;
    /// Prebuild b_immed for target complex types (§4.3).
    bool build_single_automata = true;
    /// Prebuild REVERSE automata (determinized reversals + their pair/
    /// single immediate automata) so content checks on modified nodes can
    /// scan backward when the edits cluster at the END of a child list
    /// (§4.3's append-heavy case). Off by default: reversal roughly
    /// doubles the preprocessing cost.
    bool build_reverse_automata = false;
  };

  /// Preprocesses a (source, target) schema pair. Both schemas must share
  /// the same Alphabet instance.
  static Result<TypeRelations> Compute(const Schema* source,
                                       const Schema* target,
                                       const Options& options);
  static Result<TypeRelations> Compute(const Schema* source,
                                       const Schema* target) {
    return Compute(source, target, Options{});
  }

  /// τ ≤ τ' — every tree valid for source type s is valid for target t.
  /// Both relations read one shared byte per pair (packed by
  /// BuildDenseTables) so the validator's back-to-back Subsumed/Disjoint
  /// probes touch a single cache line entry, not two bit-vectors.
  bool Subsumed(TypeId s, TypeId t) const {
    return (rel_view_[Index(s, t)] & kSubsumedBit) != 0;
  }

  /// τ ⊘ τ' — no tree is valid for both.
  bool Disjoint(TypeId s, TypeId t) const {
    return (rel_view_[Index(s, t)] & kNonDisjointBit) == 0;
  }

  /// c_immed for a complex (source, target) pair, or nullptr when the pair
  /// is subsumed/disjoint/not prebuilt. States encode (source, target) DFA
  /// pairs via pair_encoding(). Dense array read — called once per element.
  const automata::ImmediateDfa* PairAutomaton(TypeId s, TypeId t) const {
    return pair_dense_[Index(s, t)];
  }

  /// b_immed for a target complex type, or nullptr when not prebuilt.
  const automata::ImmediateDfa* SingleAutomaton(TypeId t) const {
    return single_dense_[t];
  }

  /// Reverse-direction counterparts (§4.3). Null unless
  /// Options::build_reverse_automata was set.
  const automata::ImmediateDfa* ReversePairAutomaton(TypeId s, TypeId t) const {
    return reverse_pair_dense_[Index(s, t)];
  }
  const automata::ImmediateDfa* ReverseSingleAutomaton(TypeId t) const {
    return reverse_single_dense_[t];
  }
  const automata::Dfa* ReverseSourceDfa(TypeId s) const {
    return s < reverse_source_dfas_.size() && reverse_source_dfas_[s]
               ? &*reverse_source_dfas_[s]
               : nullptr;
  }

  /// The source/target content DFAs padded to the shared alphabet size at
  /// Compute time (so cross-schema products line up). Indexed by TypeId;
  /// nullopt for simple types.
  const automata::Dfa* SourceDfa(TypeId s) const {
    return source_dfas_[s] ? &*source_dfas_[s] : nullptr;
  }
  const automata::Dfa* TargetDfa(TypeId t) const {
    return target_dfas_[t] ? &*target_dfas_[t] : nullptr;
  }

  const Schema& source() const { return *source_; }
  const Schema& target() const { return *target_; }

  /// True iff a freshly inserted element with NO children, text, or
  /// attributes is valid for target type τ': a simple type accepting the
  /// empty string, or a complex type whose content model accepts ε and
  /// which declares no required attribute. This is the update-safety
  /// analyzer's "insertable as a bare leaf" predicate (src/analysis/).
  bool TargetAcceptsEmptyElement(TypeId t) const;

  /// Number of (s, t) pairs in R_sub / R_nondis (diagnostics, bench A3).
  size_t CountSubsumed() const;
  size_t CountNonDisjoint() const;

  // Move-only: the dense tables hold pointers into the automata maps, which
  // stay valid across moves (map nodes don't relocate) but not copies.
  TypeRelations(const TypeRelations&) = delete;
  TypeRelations& operator=(const TypeRelations&) = delete;
  TypeRelations(TypeRelations&&) = default;
  TypeRelations& operator=(TypeRelations&&) = default;

 private:
  friend class RelationsCodec;

  TypeRelations() = default;

  size_t Index(TypeId s, TypeId t) const { return s * num_target_ + t; }
  size_t NumPairs() const { return source_->num_types() * num_target_; }

  /// Packs the fixpoint working arrays sub_/nondis_ into rel_bits_ and
  /// points rel_view_ at it. The plan-cache decoder skips this and aims
  /// rel_view_ at the mmap'd bytes instead.
  void PackRelBits();

  /// Fills the dense pointer tables below from the automata maps. Safe to
  /// call once at the end of Compute() (or decode): unordered_map
  /// guarantees reference stability, and moving the map (when the
  /// TypeRelations is returned or cached) leaves its nodes in place, so the
  /// pointers survive.
  void BuildDenseTables();

  const Schema* source_ = nullptr;
  const Schema* target_ = nullptr;
  size_t num_target_ = 0;
  static constexpr uint8_t kSubsumedBit = 1;
  static constexpr uint8_t kNonDisjointBit = 2;
  // Working arrays for the fixpoint computations; packed into rel_bits_
  // once stable.
  std::vector<bool> sub_;     // |T| x |T'|
  std::vector<bool> nondis_;  // |T| x |T'|
  // kSubsumedBit | kNonDisjointBit per pair. rel_view_ is the hot read
  // path: it aliases rel_bits_ for computed relations, or mmap'd
  // plan-artifact bytes for loaded ones (rel_bits_ then stays empty).
  // Vector moves keep the heap buffer, so the view survives moves.
  std::vector<uint8_t> rel_bits_;
  const uint8_t* rel_view_ = nullptr;
  std::vector<std::optional<automata::Dfa>> source_dfas_;
  std::vector<std::optional<automata::Dfa>> target_dfas_;
  std::unordered_map<size_t, automata::ImmediateDfa> pair_automata_;
  std::unordered_map<TypeId, automata::ImmediateDfa> single_automata_;
  std::vector<std::optional<automata::Dfa>> reverse_source_dfas_;
  std::unordered_map<size_t, automata::ImmediateDfa> reverse_pair_automata_;
  std::unordered_map<TypeId, automata::ImmediateDfa> reverse_single_automata_;
  // Dense views over the maps above, indexed by Index(s,t) / TypeId, so the
  // per-node lookups in the validators are array reads rather than hashes.
  std::vector<const automata::ImmediateDfa*> pair_dense_;
  std::vector<const automata::ImmediateDfa*> single_dense_;
  std::vector<const automata::ImmediateDfa*> reverse_pair_dense_;
  std::vector<const automata::ImmediateDfa*> reverse_single_dense_;
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_RELATIONS_H_
