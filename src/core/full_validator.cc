#include "core/full_validator.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace xmlreval::core {

using automata::Symbol;
using schema::kInvalidType;

FullValidator::FullValidator(const Schema* schema) : schema_(schema) {
  XMLREVAL_CHECK(schema != nullptr, "FullValidator requires a schema");
}

struct FullValidator::Walk {
  const Schema& schema;
  const xml::Document& doc;
  // Document bound to this schema's alphabet: read node symbols directly.
  bool use_symbols;
  ValidationReport report;
  std::vector<uint32_t> path;  // Dewey path of the current node

  void Fail(std::string message) {
    report.valid = false;
    report.violation = std::move(message);
    report.violation_path = xml::DeweyPath(path);
  }

  Symbol SymbolOf(xml::NodeId c) const {
    if (use_symbols) return doc.symbol(c);
    auto sym = schema.alphabet()->Find(doc.label(c));
    return sym ? *sym : automata::kUnboundSymbol;
  }

  // validate(τ, e) from Definition 1's pseudocode.
  bool ValidateNode(xml::NodeId node, TypeId type) {
    ++report.counters.nodes_visited;
    ++report.counters.elements_visited;

    if (schema.IsSimple(type)) {
      // Simple content: no element children; the (possibly empty)
      // concatenated text is the χ value checked against the facets.
      std::string value;
      uint32_t ordinal = 0;
      for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
           c = doc.next_sibling(c), ++ordinal) {
        if (doc.IsElement(c)) {
          path.push_back(ordinal);
          Fail(StrCat("element '", doc.label(c), "' not allowed under '",
                      doc.label(node), "', whose type '",
                      schema.TypeName(type), "' is simple"));
          path.pop_back();
          return false;
        }
        ++report.counters.nodes_visited;
        ++report.counters.text_nodes_visited;
        value += doc.text(c);
      }
      ++report.counters.simple_checks;
      Status check = schema::ValidateSimpleValue(schema.simple_type(type),
                                                 value);
      if (!check.ok()) {
        Fail(StrCat("element '", doc.label(node), "': ", check.message()));
        return false;
      }
      return true;
    }

    // Attributes first (complex types only; simple-typed elements carry no
    // attribute constraints in this model).
    const schema::ComplexType& decl = schema.complex_type(type);
    if (!decl.open_attributes) {
      ++report.counters.attr_checks;
      Status attrs = schema::ValidateTypeAttributes(decl, doc.attributes(node));
      if (!attrs.ok()) {
        Fail(StrCat("element '", doc.label(node), "': ", attrs.message()));
        return false;
      }
    }

    // Complex content: text children must be ignorable whitespace; the
    // child-label string must be in L(regexp_τ); children recurse.
    // Lazily-determinized content models are stepped directly — each row
    // expands on first use and never forces the full subset construction;
    // eager models read the minimized table.
    const automata::LazyDfa* lazy = schema.LazyContentDfa(type);
    const automata::Dfa* dfa = lazy == nullptr ? &schema.ContentDfa(type)
                                               : nullptr;
    automata::StateId q =
        lazy != nullptr ? lazy->start_state() : dfa->start_state();
    const size_t sigma =
        lazy != nullptr ? lazy->alphabet_size() : dfa->alphabet_size();
    uint32_t ordinal = 0;
    for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
         c = doc.next_sibling(c), ++ordinal) {
      if (doc.IsText(c)) {
        ++report.counters.nodes_visited;
        ++report.counters.text_nodes_visited;
        if (!IsAllXmlWhitespace(doc.text(c))) {
          path.push_back(ordinal);
          Fail(StrCat("character data not allowed under '", doc.label(node),
                      "', whose type '", schema.TypeName(type),
                      "' has element-only content"));
          path.pop_back();
          return false;
        }
        continue;
      }
      Symbol sym = SymbolOf(c);
      if (sym >= sigma || schema.ChildType(type, sym) == kInvalidType) {
        path.push_back(ordinal);
        Fail(StrCat("element '", doc.label(c),
                    "' not allowed by the content model of type '",
                    schema.TypeName(type), "'"));
        path.pop_back();
        return false;
      }
      q = lazy != nullptr ? lazy->Step(q, sym) : dfa->Next(q, sym);
      ++report.counters.dfa_steps;
    }
    if (lazy != nullptr ? !lazy->IsAccepting(q) : !dfa->IsAccepting(q)) {
      Fail(StrCat("children of '", doc.label(node),
                  "' do not match the content model of type '",
                  schema.TypeName(type), "'"));
      return false;
    }

    // Recurse: every child, with types_τ(λ(child)).
    ordinal = 0;
    for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
         c = doc.next_sibling(c), ++ordinal) {
      if (!doc.IsElement(c)) continue;
      TypeId child_type = schema.ChildType(type, SymbolOf(c));
      path.push_back(ordinal);
      bool ok = ValidateNode(c, child_type);
      path.pop_back();
      if (!ok) return false;
    }
    return true;
  }
};

ValidationReport FullValidator::Validate(const xml::Document& doc) const {
  // One span per document — the Definition 1 full-traversal phase.
  obs::Span span("full.traverse");
  Walk walk{*schema_, doc, doc.BoundTo(*schema_->alphabet()), {}, {}};
  if (!doc.has_root()) {
    walk.Fail("document has no root element");
    return std::move(walk.report);
  }
  Symbol sym = walk.SymbolOf(doc.root());
  TypeId root_type = sym != automata::kUnboundSymbol ? schema_->RootType(sym)
                                                     : kInvalidType;
  if (root_type == kInvalidType) {
    ++walk.report.counters.nodes_visited;
    ++walk.report.counters.elements_visited;
    walk.Fail(StrCat("root element '", doc.label(doc.root()),
                     "' is not declared by the schema"));
    return std::move(walk.report);
  }
  walk.ValidateNode(doc.root(), root_type);
  AttachTraceArgs(span, walk.report.counters);
  return std::move(walk.report);
}

ValidationReport FullValidator::ValidateSubtree(const xml::Document& doc,
                                                xml::NodeId node,
                                                TypeId type) const {
  Walk walk{*schema_, doc, doc.BoundTo(*schema_->alphabet()), {}, {}};
  walk.ValidateNode(node, type);
  return std::move(walk.report);
}

}  // namespace xmlreval::core
