// DTD-optimized schema cast validation — §3.4 of the paper.
//
// When both schemas are DTDs (every label has one type regardless of
// context) and the document offers direct access to the instances of each
// label (xml::LabelIndex), cast validation can skip the tree traversal
// entirely: only the labels whose (source, target) type pair is neither
// subsumed nor disjoint need their instances' immediate content models
// verified; a single instance of a disjoint-pair label makes the document
// invalid; everything else is untouched.

#ifndef XMLREVAL_CORE_DTD_INDEX_VALIDATOR_H_
#define XMLREVAL_CORE_DTD_INDEX_VALIDATOR_H_

#include <vector>

#include "core/relations.h"
#include "core/report.h"
#include "xml/label_index.h"
#include "xml/tree.h"

namespace xmlreval::core {

class DtdIndexValidator {
 public:
  struct Options {
    bool use_immediate_content = true;
  };

  /// Fails with kFailedPrecondition when either schema is not DTD-like
  /// (some label is used with two different types). `relations` must
  /// outlive the validator.
  static Result<DtdIndexValidator> Create(const TypeRelations* relations,
                                          const Options& options);
  static Result<DtdIndexValidator> Create(const TypeRelations* relations) {
    return Create(relations, Options{});
  }

  /// Validates using the label index (precondition: doc valid wrt source,
  /// index built over doc).
  ValidationReport Validate(const xml::Document& doc,
                            const xml::LabelIndex& index) const;

  /// Labels this validator will actually examine (diagnostics / benches).
  std::vector<std::string> CheckedLabels() const;

 private:
  DtdIndexValidator() = default;

  enum class LabelAction : uint8_t { kSkip, kReject, kCheck, kForeign };

  const TypeRelations* relations_ = nullptr;
  Options options_;
  // Per label symbol: the action plus the unique (source, target) types.
  struct LabelPlan {
    LabelAction action;
    TypeId source_type;
    TypeId target_type;
  };
  std::vector<LabelPlan> plans_;  // indexed by Symbol
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_DTD_INDEX_VALIDATOR_H_
