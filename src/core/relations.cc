#include "core/relations.h"

#include "automata/product.h"
#include "common/macros.h"

namespace xmlreval::core {

using automata::Dfa;
using schema::kInvalidType;

namespace {

// τ ≤ τ' requires (besides content containment) that every attribute set a
// τ-valid tree may carry is τ'-valid: each attribute τ declares must be
// declared by τ' with a subsuming value type, and each attribute τ'
// requires must be one τ requires. Open-attribute types accept anything,
// so an open τ can only be subsumed by an open τ'.
bool AttributesSubsumed(const schema::ComplexType& a,
                        const schema::ComplexType& b) {
  if (b.open_attributes) return true;
  if (a.open_attributes) return false;  // a may carry attributes b rejects
  for (const auto& [name, da] : a.attributes) {
    auto it = b.attributes.find(name);
    if (it == b.attributes.end()) return false;
    if (!schema::SimpleSubsumed(da.type, it->second.type)) return false;
    // b fixes the value: a must guarantee it, i.e. fix the same value.
    if (it->second.fixed && da.fixed != it->second.fixed) return false;
  }
  for (const auto& [name, db] : b.attributes) {
    if (!db.required) continue;
    auto it = a.attributes.find(name);
    if (it == a.attributes.end() || !it->second.required) return false;
  }
  return true;
}

// Some attribute assignment satisfies both types: every attribute either
// side REQUIRES must be declared by the other with a value type that is
// not provably disjoint. (Optional attributes can simply be omitted.)
bool AttributesCompatible(const schema::ComplexType& a,
                          const schema::ComplexType& b) {
  auto check_required = [](const schema::ComplexType& x,
                           const schema::ComplexType& y) {
    if (y.open_attributes) return true;
    for (const auto& [name, dx] : x.attributes) {
      if (!dx.required) continue;
      auto it = y.attributes.find(name);
      if (it == y.attributes.end()) return false;
      if (schema::SimpleDisjoint(dx.type, it->second.type)) return false;
      // The attribute must be present; conflicting fixed values on the two
      // sides make any shared instance impossible.
      if (dx.fixed && it->second.fixed && dx.fixed != it->second.fixed) {
        return false;
      }
      if (dx.fixed &&
          !schema::ValidateSimpleValue(it->second.type, *dx.fixed).ok()) {
        return false;
      }
    }
    return true;
  };
  if (!a.open_attributes && !check_required(a, b)) return false;
  if (!b.open_attributes && !check_required(b, a)) return false;
  return true;
}

}  // namespace

Result<TypeRelations> TypeRelations::Compute(const Schema* source,
                                             const Schema* target,
                                             const Options& options) {
  if (source == nullptr || target == nullptr) {
    return Status::InvalidArgument("TypeRelations requires two schemas");
  }
  if (source->alphabet() != target->alphabet()) {
    return Status::InvalidArgument(
        "source and target schemas must share one Alphabet instance");
  }

  TypeRelations rel;
  rel.source_ = source;
  rel.target_ = target;
  size_t ns = source->num_types();
  size_t nt = target->num_types();
  rel.num_target_ = nt;
  size_t alphabet_size = source->alphabet()->size();

  // Pad all content DFAs to the current shared alphabet so products and
  // containment tests line up even if one schema was built before the
  // other interned additional labels.
  rel.source_dfas_.resize(ns);
  for (TypeId s = 0; s < ns; ++s) {
    if (source->IsComplex(s)) {
      rel.source_dfas_[s] = source->ContentDfa(s).PaddedTo(alphabet_size);
    }
  }
  rel.target_dfas_.resize(nt);
  for (TypeId t = 0; t < nt; ++t) {
    if (target->IsComplex(t)) {
      rel.target_dfas_[t] = target->ContentDfa(t).PaddedTo(alphabet_size);
    }
  }

  // ---- R_sub: greatest fixpoint by refinement (Definition 4) -------------
  rel.sub_.assign(ns * nt, false);
  for (TypeId s = 0; s < ns; ++s) {
    for (TypeId t = 0; t < nt; ++t) {
      if (source->IsSimple(s) && target->IsSimple(t)) {
        rel.sub_[rel.Index(s, t)] =
            schema::SimpleSubsumed(source->simple_type(s),
                                   target->simple_type(t));
      } else if (source->IsComplex(s) && target->IsComplex(t)) {
        rel.sub_[rel.Index(s, t)] =
            AttributesSubsumed(source->complex_type(s),
                               target->complex_type(t)) &&
            automata::LanguageContains(*rel.source_dfas_[s],
                                       *rel.target_dfas_[t]);
      }
    }
  }
  // Refinement: drop pairs whose child typings are not pairwise subsumed.
  bool changed = true;
  while (changed) {
    changed = false;
    for (TypeId s = 0; s < ns; ++s) {
      if (!source->IsComplex(s)) continue;
      for (TypeId t = 0; t < nt; ++t) {
        if (!rel.sub_[rel.Index(s, t)] || !target->IsComplex(t)) continue;
        for (const auto& [sym, child_s] :
             source->complex_type(s).child_types) {
          TypeId child_t = target->ChildType(t, sym);
          if (child_t == kInvalidType ||
              !rel.sub_[rel.Index(child_s, child_t)]) {
            rel.sub_[rel.Index(s, t)] = false;
            changed = true;
            break;
          }
        }
      }
    }
  }

  // ---- R_nondis: least fixpoint (Definition 5) ----------------------------
  rel.nondis_.assign(ns * nt, false);
  for (TypeId s = 0; s < ns; ++s) {
    for (TypeId t = 0; t < nt; ++t) {
      if (source->IsSimple(s) && target->IsSimple(t)) {
        rel.nondis_[rel.Index(s, t)] =
            !schema::SimpleDisjoint(source->simple_type(s),
                                    target->simple_type(t));
      }
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (TypeId s = 0; s < ns; ++s) {
      if (!source->IsComplex(s)) continue;
      for (TypeId t = 0; t < nt; ++t) {
        if (rel.nondis_[rel.Index(s, t)] || !target->IsComplex(t)) continue;
        // Attribute constraints can rule a pair out regardless of content.
        if (!AttributesCompatible(source->complex_type(s),
                                  target->complex_type(t))) {
          continue;
        }
        // P = labels whose child-type pair is already non-disjoint.
        std::vector<bool> allowed(alphabet_size, false);
        for (const auto& [sym, child_s] :
             source->complex_type(s).child_types) {
          TypeId child_t = target->ChildType(t, sym);
          if (child_t != kInvalidType &&
              rel.nondis_[rel.Index(child_s, child_t)]) {
            allowed[sym] = true;
          }
        }
        if (automata::IntersectionNonEmptyFiltered(
                *rel.source_dfas_[s], *rel.target_dfas_[t], allowed)) {
          rel.nondis_[rel.Index(s, t)] = true;
          changed = true;
        }
      }
    }
  }

  // ---- §4 automata for the pairs validation will actually scan -----------
  if (options.build_pair_automata) {
    for (TypeId s = 0; s < ns; ++s) {
      if (!source->IsComplex(s)) continue;
      for (TypeId t = 0; t < nt; ++t) {
        if (!target->IsComplex(t)) continue;
        size_t idx = rel.Index(s, t);
        if (rel.sub_[idx] || !rel.nondis_[idx]) continue;
        rel.pair_automata_.emplace(
            idx, automata::ImmediateDfa::FromPair(*rel.source_dfas_[s],
                                                  *rel.target_dfas_[t]));
      }
    }
  }
  if (options.build_single_automata) {
    for (TypeId t = 0; t < nt; ++t) {
      if (!target->IsComplex(t)) continue;
      rel.single_automata_.emplace(
          t, automata::ImmediateDfa::FromSingle(*rel.target_dfas_[t]));
    }
  }

  if (options.build_reverse_automata) {
    // Determinized reversals (footnote 3: the reverse of a DFA is an NFA).
    rel.reverse_source_dfas_.resize(ns);
    for (TypeId s = 0; s < ns; ++s) {
      if (!source->IsComplex(s)) continue;
      rel.reverse_source_dfas_[s] =
          automata::DeterminizeNfa(rel.source_dfas_[s]->Reverse()).Minimize();
    }
    std::vector<std::optional<Dfa>> reverse_target(nt);
    for (TypeId t = 0; t < nt; ++t) {
      if (!target->IsComplex(t)) continue;
      reverse_target[t] =
          automata::DeterminizeNfa(rel.target_dfas_[t]->Reverse()).Minimize();
      rel.reverse_single_automata_.emplace(
          t, automata::ImmediateDfa::FromSingle(*reverse_target[t]));
    }
    for (TypeId s = 0; s < ns; ++s) {
      if (!source->IsComplex(s)) continue;
      for (TypeId t = 0; t < nt; ++t) {
        if (!target->IsComplex(t)) continue;
        size_t idx = rel.Index(s, t);
        if (rel.sub_[idx] || !rel.nondis_[idx]) continue;
        rel.reverse_pair_automata_.emplace(
            idx, automata::ImmediateDfa::FromPair(*rel.reverse_source_dfas_[s],
                                                  *reverse_target[t]));
      }
    }
  }

  rel.PackRelBits();
  rel.BuildDenseTables();
  return rel;
}

void TypeRelations::PackRelBits() {
  rel_bits_.assign(sub_.size(), 0);
  for (size_t i = 0; i < sub_.size(); ++i) {
    rel_bits_[i] = (sub_[i] ? kSubsumedBit : 0) |
                   (nondis_[i] ? kNonDisjointBit : 0);
  }
  rel_view_ = rel_bits_.data();
}

void TypeRelations::BuildDenseTables() {
  size_t ns = source_->num_types();
  pair_dense_.assign(ns * num_target_, nullptr);
  for (const auto& [idx, dfa] : pair_automata_) pair_dense_[idx] = &dfa;
  reverse_pair_dense_.assign(ns * num_target_, nullptr);
  for (const auto& [idx, dfa] : reverse_pair_automata_) {
    reverse_pair_dense_[idx] = &dfa;
  }
  single_dense_.assign(num_target_, nullptr);
  for (const auto& [t, dfa] : single_automata_) single_dense_[t] = &dfa;
  reverse_single_dense_.assign(num_target_, nullptr);
  for (const auto& [t, dfa] : reverse_single_automata_) {
    reverse_single_dense_[t] = &dfa;
  }
}

size_t TypeRelations::CountSubsumed() const {
  size_t n = 0;
  for (size_t i = 0, e = NumPairs(); i < e; ++i) {
    n += (rel_view_[i] & kSubsumedBit) != 0;
  }
  return n;
}

size_t TypeRelations::CountNonDisjoint() const {
  size_t n = 0;
  for (size_t i = 0, e = NumPairs(); i < e; ++i) {
    n += (rel_view_[i] & kNonDisjointBit) != 0;
  }
  return n;
}

bool TypeRelations::TargetAcceptsEmptyElement(TypeId t) const {
  if (t >= target_->num_types()) return false;
  if (target_->IsSimple(t)) {
    return schema::ValidateSimpleValue(target_->simple_type(t), "").ok();
  }
  const schema::ComplexType& ct = target_->complex_type(t);
  if (!target_->ContentAcceptsEmpty(t)) return false;
  if (ct.open_attributes) return true;
  for (const auto& [name, decl] : ct.attributes) {
    if (decl.required) return false;
  }
  return true;
}

}  // namespace xmlreval::core
