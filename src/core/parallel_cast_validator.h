// ParallelCastValidator — §3.2 cast validation fanned out over subtrees.
//
// Once a node's content-model membership and per-child typing are decided,
// each child subtree's validate(τ_c, τ'_c, c) is independent — the
// structural property this engine exploits. A task owns a slice of the
// preorder frontier (a stack of CastUnits sorted by document order, top =
// earliest) and runs the exact same per-unit engine as the serial
// validator; when its stack holds at least `spawn_threshold` pending units
// AND the executor has an idle worker, it donates the bottom
// (document-order-latest) half as a new task. Lazy splitting means:
//
//   * no O(n) subtree-size pre-pass — chunks self-balance,
//   * a 1-thread run never donates (no idle worker exists), so its cost
//     is the serial walk plus one task dispatch,
//   * bushy documents parallelize even when every individual subtree is
//     tiny (the frontier, not the subtree, is what is split).
//
// Subsumed subtrees are pruned at push time — counted, never spawned.
//
// Determinism: on success the merged per-task counters equal the serial
// walk's exactly (every unit is processed once; where a counter is charged
// does not change the sum). On failure, tasks record (first-failing-unit
// in document order) into a shared cell — a later failure never overwrites
// an earlier one — and raise an abort flag; other tasks then cancel only
// units STRICTLY AFTER the recorded minimum, so anything that could
// contain an earlier failure still runs. The reported violation is
// therefore exactly the serial engine's. Counters on a failed run are not
// reconstructible from cancelled tasks, so the engine replays the document
// through the serial validator (bounded by the serial cost the caller
// avoided) — verdict, path, message, AND counters are bit-identical to
// CastValidator on every input.

#ifndef XMLREVAL_CORE_PARALLEL_CAST_VALIDATOR_H_
#define XMLREVAL_CORE_PARALLEL_CAST_VALIDATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/executor.h"
#include "core/cast_validator.h"
#include "core/relations.h"
#include "core/report.h"
#include "xml/dewey.h"
#include "xml/tree.h"

namespace xmlreval::core {

class ParallelCastValidator {
 public:
  struct Options {
    CastValidator::Options cast;
    /// Donate the bottom half of a task's frontier when it holds at least
    /// this many pending units (and a worker is idle). Smaller = finer
    /// load balancing, more task traffic; bench_parallel ablates it.
    ///
    /// 0 (the default) means ADAPTIVE: the first Validate call times a
    /// bounded serial prefix walk of its document, derives ns/unit, and
    /// picks the threshold so a donated half-frontier is worth roughly one
    /// task dispatch's overhead (clamped to [16, 4096]). The calibrated
    /// value is cached for the validator's lifetime; calibration counters
    /// are discarded, so reports stay bit-identical to CastValidator.
    size_t spawn_threshold = 0;
  };

  /// Introspection for tests and benchmarks (not part of the report).
  struct RunStats {
    uint64_t tasks = 0;     // tasks actually executed (1 = no splitting)
    /// Threshold the run actually used: the fixed Options value, or the
    /// calibrated one when Options::spawn_threshold == 0.
    size_t spawn_threshold = 0;
    bool replayed = false;  // failure path: serial replay produced report
    bool tracked_failure = false;
    /// Document-order key of the first failing frontier unit; with
    /// tracked_fail_path/tracked_message it is deterministic and equals
    /// what the serial replay reports.
    xml::DeweyPath tracked_unit_path;
    xml::DeweyPath tracked_fail_path;
    std::string tracked_message;
  };

  /// `relations` and `executor` must outlive the validator. The executor
  /// may be shared (e.g. the service's intra-document pool); concurrent
  /// Validate calls interleave their tasks on it.
  ParallelCastValidator(const TypeRelations* relations,
                        common::Executor* executor, const Options& options);
  ParallelCastValidator(const TypeRelations* relations,
                        common::Executor* executor)
      : ParallelCastValidator(relations, executor, Options{}) {}

  /// doValidate(S, S', T), parallel over subtrees. Same report as
  /// CastValidator::Validate on every input (see header comment).
  ValidationReport Validate(const xml::Document& doc,
                            RunStats* stats = nullptr) const;

 private:
  /// Resolves Options::spawn_threshold == 0 to a calibrated value (cached
  /// after the first call); returns the fixed value otherwise.
  size_t EffectiveThreshold(const xml::Document& doc, bool use_symbols) const;

  const TypeRelations* relations_;
  common::Executor* executor_;
  Options options_;
  /// 0 = not yet calibrated. Concurrent first Validates may both
  /// calibrate; either result is valid and one simply wins the store.
  mutable std::atomic<size_t> calibrated_{0};
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_PARALLEL_CAST_VALIDATOR_H_
