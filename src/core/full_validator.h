// Full validation — Definition 1 of the paper, and the evaluation's
// baseline (standing in for unmodified Xerces 2.4: validate the entire
// document against the target schema, visiting every node).

#ifndef XMLREVAL_CORE_FULL_VALIDATOR_H_
#define XMLREVAL_CORE_FULL_VALIDATOR_H_

#include "core/report.h"
#include "schema/abstract_schema.h"
#include "xml/tree.h"

namespace xmlreval::core {

using schema::Schema;
using schema::TypeId;

class FullValidator {
 public:
  /// `schema` must outlive the validator.
  explicit FullValidator(const Schema* schema);

  /// doValidate(S, T): root label must be in R; then validate(R(λ(T)), root).
  ValidationReport Validate(const xml::Document& doc) const;

  /// validate(τ, e): the subtree rooted at `node` against type `type`.
  ValidationReport ValidateSubtree(const xml::Document& doc,
                                   xml::NodeId node, TypeId type) const;

 private:
  struct Walk;  // recursion state (counters + violation)

  const Schema* schema_;
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_FULL_VALIDATOR_H_
