#include "core/string_revalidator.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace xmlreval::core {

using automata::ImmediateDfa;
using automata::ImmediateRunResult;
using automata::StateId;
using automata::Verdict;

Result<StringRevalidator> StringRevalidator::Create(const Dfa& a, const Dfa& b,
                                                    const Options& options) {
  if (a.alphabet_size() != b.alphabet_size()) {
    return Status::InvalidArgument(
        "source and target automata must share an alphabet (pad with "
        "Dfa::PaddedTo)");
  }
  StringRevalidator r;
  r.a_ = a;
  r.b_ = b;
  r.b_immed_ = ImmediateDfa::FromSingle(b);
  r.c_immed_ = ImmediateDfa::FromPair(a, b);
  if (options.enable_reverse) {
    r.a_rev_ = automata::DeterminizeNfa(a.Reverse()).Minimize();
    r.b_rev_ = automata::DeterminizeNfa(b.Reverse()).Minimize();
    r.b_rev_immed_ = ImmediateDfa::FromSingle(*r.b_rev_);
    r.c_rev_immed_ = ImmediateDfa::FromPair(*r.a_rev_, *r.b_rev_);
  }
  return r;
}

Result<StringRevalidator> StringRevalidator::CreateSingle(
    const Dfa& a, const Options& options) {
  return Create(a, a, options);
}

RevalidationResult StringRevalidator::Revalidate(
    std::span<const Symbol> s) const {
  ImmediateRunResult run = c_immed_->Run(s);
  return {run.verdict == Verdict::kAccept, run.symbols_scanned, 0,
          run.decided_early, false};
}

RevalidationResult StringRevalidator::ValidateFresh(
    std::span<const Symbol> s) const {
  ImmediateRunResult run = b_immed_->Run(s);
  return {run.verdict == Verdict::kAccept, run.symbols_scanned, 0,
          run.decided_early, false};
}

namespace {

// Longest common prefix / suffix between the old and the new string; the
// edits all fall between them.
size_t CommonPrefix(std::span<const Symbol> x, std::span<const Symbol> y) {
  size_t n = std::min(x.size(), y.size());
  size_t i = 0;
  while (i < n && x[i] == y[i]) ++i;
  return i;
}

size_t CommonSuffix(std::span<const Symbol> x, std::span<const Symbol> y) {
  size_t n = std::min(x.size(), y.size());
  size_t i = 0;
  while (i < n && x[x.size() - 1 - i] == y[y.size() - 1 - i]) ++i;
  return i;
}

}  // namespace

RevalidationResult StringRevalidator::RevalidateModifiedForward(
    std::span<const Symbol> old_s, std::span<const Symbol> new_s,
    size_t unmodified_from) const {
  size_t m = new_s.size();
  size_t i = std::min(unmodified_from, m);
  size_t suffix_len = m - i;
  XMLREVAL_CHECK(suffix_len <= old_s.size(),
                 "unmodified suffix longer than the original string");

  RevalidationResult result;

  // Phase 1 (§4.3 step 1): scan the modified prefix with b_immed.
  ImmediateRunResult phase1 = b_immed_->Run(new_s.subspan(0, i));
  result.symbols_scanned = phase1.symbols_scanned;
  if (phase1.decided_early) {
    result.accepted = phase1.verdict == Verdict::kAccept;
    result.decided_early = true;
    return result;
  }
  StateId qb = phase1.final_state;

  // Phase 2 (step 2): recover a's state before the unmodified suffix by
  // running a over the original prefix.
  size_t old_prefix = old_s.size() - suffix_len;
  StateId qa = a_->Run(old_s.subspan(0, old_prefix));
  result.source_symbols_scanned = old_prefix;

  // Phase 3 (steps 3-4): continue with c_immed from (qa, qb).
  StateId start = c_immed_->pair_encoding().Encode(qa, qb);
  ImmediateRunResult phase3 = c_immed_->Run(new_s.subspan(i), start);
  result.symbols_scanned += phase3.symbols_scanned;
  result.accepted = phase3.verdict == Verdict::kAccept;
  result.decided_early = phase3.decided_early;
  return result;
}

RevalidationResult StringRevalidator::RevalidateModifiedBackward(
    std::span<const Symbol> old_s, std::span<const Symbol> new_s,
    size_t unmodified_prefix) const {
  // Mirror of the forward algorithm on the reversed strings: the common
  // prefix of (old, new) is the unmodified SUFFIX of the reversed strings.
  std::vector<Symbol> old_rev(old_s.rbegin(), old_s.rend());
  std::vector<Symbol> new_rev(new_s.rbegin(), new_s.rend());
  size_t m = new_rev.size();
  size_t i = m - std::min(unmodified_prefix, m);

  RevalidationResult result;
  result.scanned_backward = true;

  ImmediateRunResult phase1 =
      b_rev_immed_->Run(std::span<const Symbol>(new_rev).subspan(0, i));
  result.symbols_scanned = phase1.symbols_scanned;
  if (phase1.decided_early) {
    result.accepted = phase1.verdict == Verdict::kAccept;
    result.decided_early = true;
    return result;
  }
  StateId qb = phase1.final_state;

  size_t suffix_len = m - i;  // = unmodified_prefix clamped
  size_t old_prefix = old_rev.size() - suffix_len;
  StateId qa =
      a_rev_->Run(std::span<const Symbol>(old_rev).subspan(0, old_prefix));
  result.source_symbols_scanned = old_prefix;

  StateId start = c_rev_immed_->pair_encoding().Encode(qa, qb);
  ImmediateRunResult phase3 =
      c_rev_immed_->Run(std::span<const Symbol>(new_rev).subspan(i), start);
  result.symbols_scanned += phase3.symbols_scanned;
  result.accepted = phase3.verdict == Verdict::kAccept;
  result.decided_early = phase3.decided_early;
  return result;
}

RevalidationResult StringRevalidator::RevalidateModified(
    std::span<const Symbol> old_s, std::span<const Symbol> new_s) const {
  size_t prefix = CommonPrefix(old_s, new_s);
  size_t suffix = CommonSuffix(old_s, new_s);
  // Guard against prefix/suffix overlap (e.g. old == new): the unmodified
  // regions may not double-count symbols.
  size_t slack = std::min(old_s.size(), new_s.size());
  if (prefix + suffix > slack) suffix = slack - prefix;

  // Forward scans the modified head (new_s.size() - suffix symbols) through
  // b_immed; backward scans the modified tail (new_s.size() - prefix).
  // Choose the direction with less pre-work; ties go forward (which equals
  // the paper's plain-b_immed fallback in cost when suffix == 0).
  size_t forward_cost = new_s.size() - suffix;
  size_t backward_cost = new_s.size() - prefix;
  if (b_rev_immed_ && backward_cost < forward_cost) {
    return RevalidateModifiedBackward(old_s, new_s, prefix);
  }
  return RevalidateModifiedForward(old_s, new_s, new_s.size() - suffix);
}

}  // namespace xmlreval::core
