// Streaming (SAX-based) validation — the paper's memory claim realized.
//
// §7: "Unlike schemes that preprocess documents ... the memory requirement
// of our algorithm does not vary with the size of the document, but
// depends solely on the sizes of the schemas." These validators consume
// xml::ParseXmlEvents directly, so no DOM is ever built: live state is one
// stack frame per OPEN element (O(document depth)) plus the preprocessed
// schema structures.
//
//   * StreamingFullValidator — Definition 1 over events.
//   * StreamingCastValidator — §3.2 over events. Subsumed subtree pairs
//     switch the validator into skip mode: the parser still tokenizes the
//     skipped region (the bytes must be scanned for well-formedness), but
//     no validation work — no type lookups, no DFA steps, no text
//     inspection — happens until the subtree closes. Disjoint pairs abort
//     the parse immediately via the handler-status channel.
//   * StreamingCastSession — the same §3.2 cast over the incremental
//     PushParser: chunks are Fed as they arrive (pipe, socket), so a
//     multi-GB document is validated without ever being resident, and a
//     subsumed (source, target) pair hands the subtree's bytes to the
//     raw-byte SkipScanner — not even tokenized. This is the engine behind
//     ValidationService::CastStream and `xmlreval cast --stream`.
//
// All report the usual counters plus max_live_frames, the peak element
// stack depth — the memory metric benched against DOM validation in
// bench_streaming; sessions additionally report byte accounting
// (bytes_fed / bytes_skipped / peak_carry_bytes).

#ifndef XMLREVAL_CORE_STREAMING_VALIDATOR_H_
#define XMLREVAL_CORE_STREAMING_VALIDATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/relations.h"
#include "core/report.h"
#include "xml/sax.h"

namespace xmlreval::core {

struct StreamingReport {
  bool valid = true;
  std::string violation;
  /// Dewey path (0-based child ordinals from the root) of the blamed
  /// element for cast violations; meaningful only when
  /// violation_path_known (parse errors have no node to blame). NOTE:
  /// streaming interleaves content-model steps with descent, so on a
  /// document with several independent violations the FIRST one found —
  /// and hence the blamed node — can differ from the DOM CastValidator's,
  /// whose walk finishes a parent's content pass before expanding
  /// children. Verdicts always agree.
  bool violation_path_known = false;
  std::vector<uint32_t> violation_path;
  ValidationCounters counters;
  /// Peak number of simultaneously open elements tracked — the live-memory
  /// metric (the DOM equivalent is the total node count). Subtrees handed
  /// to the raw-byte skip scanner contribute no frames.
  uint64_t max_live_frames = 0;
  /// Byte accounting (filled by StreamingCastSession; the whole-buffer
  /// entry points set bytes_fed only).
  uint64_t bytes_fed = 0;
  uint64_t bytes_skipped = 0;
  uint64_t peak_carry_bytes = 0;
};

/// Validates XML text against `schema` without building a DOM.
/// Equivalent verdicts to FullValidator over the parsed document.
StreamingReport StreamingValidate(std::string_view input,
                                  const schema::Schema& schema,
                                  const xml::ParseOptions& options = {});

/// Schema-cast validation of XML text known to conform to
/// relations.source(), without building a DOM. Equivalent verdicts to
/// CastValidator over the parsed document.
StreamingReport StreamingCastValidate(std::string_view input,
                                      const TypeRelations& relations,
                                      const xml::ParseOptions& options = {});

struct StreamingCastOptions {
  /// Hand subsumed subtrees to the raw-byte SkipScanner (never tokenized).
  /// Off = subsumed subtrees are still tokenized with validation
  /// suppressed — the pre-session behavior, kept as the tokenize-everything
  /// baseline in bench_streaming's A/B.
  bool skip_scan = true;
  /// skip_whitespace_text is honored; text is always coalesced.
  xml::ParseOptions parse;
};

/// Incremental schema-cast validation: feed chunks as they arrive. Live
/// memory is O(document depth) frames + the parser's bounded carry buffer,
/// independent of document size. The caller must keep `relations` (and
/// the schemas it references) alive for the session's lifetime.
///
///   StreamingCastSession session(relations);
///   while (read(chunk)) {
///     if (!session.Feed(chunk).ok()) break;   // verdict already decided
///   }
///   const StreamingReport& report = session.Finish();
class StreamingCastSession {
 public:
  explicit StreamingCastSession(const TypeRelations& relations,
                                const StreamingCastOptions& options = {});
  ~StreamingCastSession();
  StreamingCastSession(const StreamingCastSession&) = delete;
  StreamingCastSession& operator=(const StreamingCastSession&) = delete;

  /// Consumes the next chunk. Returns OK while the verdict is still open;
  /// once it is decided (violation, disjoint reject, malformed input) the
  /// deciding status is returned and later Feeds are no-ops returning the
  /// same status. Callers may stop feeding at the first non-OK.
  Status Feed(std::string_view chunk);

  /// Ends the input and returns the final report. Idempotent; the
  /// reference stays valid for the session's lifetime.
  const StreamingReport& Finish();

  /// True once the verdict is decided (Finish called or early abort).
  bool done() const;

  /// The deciding status, meaningful once done(): OK for a valid document,
  /// kInvalidArgument carrying the violation for a cast rejection, the
  /// parse/unsupported error otherwise. Lets callers distinguish "the
  /// document is not castable" from "the bytes were not XML".
  const Status& status() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_STREAMING_VALIDATOR_H_
