// Streaming (SAX-based) validation — the paper's memory claim realized.
//
// §7: "Unlike schemes that preprocess documents ... the memory requirement
// of our algorithm does not vary with the size of the document, but
// depends solely on the sizes of the schemas." These validators consume
// xml::ParseXmlEvents directly, so no DOM is ever built: live state is one
// stack frame per OPEN element (O(document depth)) plus the preprocessed
// schema structures.
//
//   * StreamingFullValidator — Definition 1 over events.
//   * StreamingCastValidator — §3.2 over events. Subsumed subtree pairs
//     switch the validator into skip mode: the parser still tokenizes the
//     skipped region (the bytes must be scanned for well-formedness), but
//     no validation work — no type lookups, no DFA steps, no text
//     inspection — happens until the subtree closes. Disjoint pairs abort
//     the parse immediately via the handler-status channel.
//
// Both report the usual counters plus max_live_frames, the peak element
// stack depth — the memory metric benched against DOM validation in
// bench_streaming.

#ifndef XMLREVAL_CORE_STREAMING_VALIDATOR_H_
#define XMLREVAL_CORE_STREAMING_VALIDATOR_H_

#include <string>
#include <string_view>

#include "core/relations.h"
#include "core/report.h"
#include "xml/sax.h"

namespace xmlreval::core {

struct StreamingReport {
  bool valid = true;
  std::string violation;
  ValidationCounters counters;
  /// Peak number of simultaneously open elements tracked — the live-memory
  /// metric (the DOM equivalent is the total node count).
  uint64_t max_live_frames = 0;
};

/// Validates XML text against `schema` without building a DOM.
/// Equivalent verdicts to FullValidator over the parsed document.
StreamingReport StreamingValidate(std::string_view input,
                                  const schema::Schema& schema,
                                  const xml::ParseOptions& options = {});

/// Schema-cast validation of XML text known to conform to
/// relations.source(), without building a DOM. Equivalent verdicts to
/// CastValidator over the parsed document.
StreamingReport StreamingCastValidate(std::string_view input,
                                      const TypeRelations& relations,
                                      const xml::ParseOptions& options = {});

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_STREAMING_VALIDATOR_H_
