// Binary round-trip for TypeRelations (the plan-cache payload).
//
// Encodes the packed R_sub/R_nondis byte table, the padded source/target
// content DFAs, and every prebuilt immediate decision automaton (c_immed /
// b_immed, forward and reverse). Decode(borrow = true) aliases the relation
// bytes and all DFA tables in the reader's buffer — with an mmap'd plan,
// the cast validator's per-node Subsumed/Disjoint probes and automaton
// steps read the file's pages directly.
//
// The decoded TypeRelations points at the caller's source/target Schema
// objects, which must outlive it (the plan loader keeps everything alive
// in one artifact bundle — see service/plan_cache.h).

#ifndef XMLREVAL_CORE_RELATIONS_CODEC_H_
#define XMLREVAL_CORE_RELATIONS_CODEC_H_

#include "common/result.h"
#include "common/serde.h"
#include "core/relations.h"

namespace xmlreval::core {

class RelationsCodec {
 public:
  static void Encode(const TypeRelations& rel, common::ByteWriter* w);

  /// `source`/`target` are the decoded schemas of the same plan; the
  /// type counts in the artifact are validated against them.
  static Result<TypeRelations> Decode(common::ByteReader* r,
                                      const Schema* source,
                                      const Schema* target, bool borrow);
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_RELATIONS_CODEC_H_
