#include "core/cast_validator.h"

#include "common/macros.h"
#include "core/cast_walk.h"
#include "obs/trace.h"
#include "xml/dewey.h"

namespace xmlreval::core {

CastValidator::CastValidator(const TypeRelations* relations,
                             const Options& options)
    : relations_(relations), options_(options) {
  XMLREVAL_CHECK(relations != nullptr, "CastValidator requires relations");
}

namespace {

// Drains `scratch->frontier` (already seeded) through one CastWalk. On
// failure the Dewey path is reconstructed lazily, relative to
// `path_anchor` (the subtree root; the document root for Validate).
ValidationReport Drain(const TypeRelations& relations,
                       const CastValidator::Options& options,
                       const xml::Document& doc, xml::NodeId path_anchor,
                       CastScratch* scratch, ValidationReport report) {
  internal::CastWalk walk{relations,
                          relations.source(),
                          relations.target(),
                          doc,
                          options.use_immediate_content,
                          doc.BoundTo(*relations.source().alphabet())};
  walk.simple_value = &scratch->simple_value;
  std::vector<CastUnit>& frontier = scratch->frontier;
  while (!frontier.empty()) {
    CastUnit unit = frontier.back();
    frontier.pop_back();
    // Pull the next pending unit's row toward cache while this unit's
    // content scan runs — the frontier is LIFO, so back() is what pops
    // next unless this unit pushes children (whose rows are adjacent).
    if (!frontier.empty()) walk.hv.PrefetchRow(frontier.back().node);
    if (!walk.ProcessUnit(unit, &frontier)) {
      report.valid = false;
      report.violation = std::move(walk.fail_message);
      report.violation_path =
          xml::DeweyPath::Relative(doc, walk.fail_node, path_anchor);
      frontier.clear();
      break;
    }
  }
  report.counters = walk.counters;
  return report;
}

}  // namespace

ValidationReport CastValidator::Validate(const xml::Document& doc) const {
  CastScratch scratch;
  return Validate(doc, &scratch);
}

ValidationReport CastValidator::Validate(const xml::Document& doc,
                                         CastScratch* scratch) const {
  // One span per document — the §3.2 tree-traversal phase. Args carry the
  // domain counters the paper's evaluation is built on.
  obs::Span span("cast.traverse");
  ValidationReport report;
  CastUnit root;
  if (!internal::ResolveRootUnit(
          *relations_, doc,
          doc.BoundTo(*relations_->source().alphabet()), &report, &root)) {
    return report;
  }
  scratch->frontier.clear();
  scratch->frontier.push_back(root);
  report = Drain(*relations_, options_, doc, doc.root(), scratch,
                 std::move(report));
  AttachTraceArgs(span, report.counters);
  return report;
}

ValidationReport CastValidator::ValidateSubtree(const xml::Document& doc,
                                                xml::NodeId node,
                                                TypeId source_type,
                                                TypeId target_type) const {
  CastScratch scratch;
  return ValidateSubtree(doc, node, source_type, target_type, &scratch);
}

ValidationReport CastValidator::ValidateSubtree(const xml::Document& doc,
                                                xml::NodeId node,
                                                TypeId source_type,
                                                TypeId target_type,
                                                CastScratch* scratch) const {
  obs::Span span("cast.subtree");
  ValidationReport report;
  scratch->frontier.clear();
  scratch->frontier.push_back(
      {node, source_type, target_type, CastUnitKind::kValidate});
  report = Drain(*relations_, options_, doc, node, scratch,
                 std::move(report));
  AttachTraceArgs(span, report.counters);
  return report;
}

}  // namespace xmlreval::core
