#include "core/cast_validator.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace xmlreval::core {

using automata::Symbol;
using automata::Verdict;
using schema::kInvalidType;

CastValidator::CastValidator(const TypeRelations* relations,
                             const Options& options)
    : relations_(relations), options_(options) {
  XMLREVAL_CHECK(relations != nullptr, "CastValidator requires relations");
}

struct CastValidator::Walk {
  const TypeRelations& rel;
  const Schema& source;
  const Schema& target;
  const xml::Document& doc;
  bool use_immediate;
  // True when the document is bound to the schema pair's alphabet: node
  // symbols are read directly (zero hashing, zero allocation); otherwise
  // each label is resolved through Alphabet::Find as before.
  bool use_symbols;
  ValidationReport report;
  std::vector<uint32_t> path;

  void Fail(std::string message) {
    report.valid = false;
    report.violation = std::move(message);
    report.violation_path = xml::DeweyPath(path);
  }

  /// Symbol of element `c`: the bound symbol when use_symbols, else a Find()
  /// with misses mapped to kUnboundSymbol (which matches nothing).
  Symbol SymbolOf(xml::NodeId c) const {
    if (use_symbols) return doc.symbol(c);
    auto sym = source.alphabet()->Find(doc.label(c));
    return sym ? *sym : automata::kUnboundSymbol;
  }

  // validate(τ, τ', e) from §3.2's pseudocode. Counting discipline: a node
  // is visited once, at entry — including nodes whose subtree is then
  // skipped via subsumption (their label and type pair were consulted).
  bool ValidateNode(xml::NodeId node, TypeId s_type, TypeId t_type) {
    ++report.counters.nodes_visited;
    ++report.counters.elements_visited;

    // if τ ≤ τ' return true — the whole subtree is guaranteed valid.
    if (rel.Subsumed(s_type, t_type)) {
      ++report.counters.subtrees_skipped;
      return true;
    }
    // if τ ⊘ τ' return false — no tree valid for τ can be valid for τ'.
    if (rel.Disjoint(s_type, t_type)) {
      ++report.counters.disjoint_rejects;
      Fail(StrCat("element '", doc.label(node), "': source type '",
                  source.TypeName(s_type), "' is disjoint from target type '",
                  target.TypeName(t_type), "'"));
      return false;
    }

    if (target.IsSimple(t_type)) {
      // Source validity rules out element children (a complex source type
      // would be disjoint from the simple target and caught above; a simple
      // source type has no element children). Check the χ value.
      std::string value;
      for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
           c = doc.next_sibling(c)) {
        if (doc.IsText(c)) {
          ++report.counters.nodes_visited;
          ++report.counters.text_nodes_visited;
          value += doc.text(c);
        }
      }
      ++report.counters.simple_checks;
      Status check =
          schema::ValidateSimpleValue(target.simple_type(t_type), value);
      if (!check.ok()) {
        Fail(StrCat("element '", doc.label(node), "': ", check.message()));
        return false;
      }
      return true;
    }

    // Complex target (and complex source, else the pair would be disjoint).
    // Attribute constraints of τ' are re-checked here: the source's
    // guarantees about attributes do not transfer (the pair was neither
    // subsumed nor disjoint).
    const schema::ComplexType& t_decl = target.complex_type(t_type);
    if (!t_decl.open_attributes) {
      ++report.counters.attr_checks;
      Status attrs =
          schema::ValidateTypeAttributes(t_decl, doc.attributes(node));
      if (!attrs.ok()) {
        Fail(StrCat("element '", doc.label(node), "': ", attrs.message()));
        return false;
      }
    }

    // Per §3.2's pseudocode: first decide the content-model membership,
    // then recurse into the children. Both passes stream over the sibling
    // list with no per-node allocation; when c_immed classifies the START
    // state as immediate-accept — the common case when the two content
    // models coincide — the content pass is skipped outright.
    const automata::ImmediateDfa* pair =
        use_immediate ? rel.PairAutomaton(s_type, t_type) : nullptr;
    const automata::Dfa* tdfa = rel.TargetDfa(t_type);

    auto content_fail = [&]() {
      Fail(StrCat("children of '", doc.label(node),
                  "' do not match the content model of target type '",
                  target.TypeName(t_type), "'"));
      return false;
    };

    // Content pass (the paper's "constructstring(children(e)) ∈ L?").
    bool decided = false;
    if (pair != nullptr &&
        pair->Class(pair->dfa().start_state()) ==
            automata::StateClass::kImmediateAccept) {
      ++report.counters.immediate_decisions;
      decided = true;
    }
    if (!decided) {
      automata::StateId q =
          pair ? pair->dfa().start_state() : tdfa->start_state();
      if (pair != nullptr &&
          pair->Class(q) == automata::StateClass::kImmediateReject) {
        ++report.counters.immediate_decisions;
        return content_fail();
      }
      for (xml::NodeId c = doc.first_child(node);
           c != xml::kInvalidNode && !decided; c = doc.next_sibling(c)) {
        if (!doc.IsElement(c)) continue;  // whitespace guaranteed by source
        Symbol sym = SymbolOf(c);
        if (sym == automata::kUnboundSymbol) {
          Fail(StrCat("element '", doc.label(c),
                      "' is outside the schemas' alphabet"));
          return false;
        }
        if (pair != nullptr) {
          // Symbols interned after the relations were computed exceed the
          // padded transition table; they cannot match any content model.
          if (sym >= pair->dfa().alphabet_size()) return content_fail();
          q = pair->dfa().Next(q, sym);
          ++report.counters.dfa_steps;
          automata::StateClass cls = pair->Class(q);
          if (cls == automata::StateClass::kImmediateAccept) {
            ++report.counters.immediate_decisions;
            decided = true;
          } else if (cls == automata::StateClass::kImmediateReject) {
            ++report.counters.immediate_decisions;
            return content_fail();
          }
        } else {
          if (sym >= tdfa->alphabet_size()) return content_fail();
          q = tdfa->Next(q, sym);
          ++report.counters.dfa_steps;
        }
      }
      if (!decided) {
        // End of string: for c_immed, acceptance of the product is
        // F_a × F_b, and the source component accepts by the precondition.
        bool accepted =
            pair ? pair->dfa().IsAccepting(q) : tdfa->IsAccepting(q);
        if (!accepted) return content_fail();
      }
    }

    // Recursion pass, with (types_τ(λ), types_τ'(λ)) per child.
    uint32_t ordinal = 0;
    for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
         c = doc.next_sibling(c), ++ordinal) {
      if (!doc.IsElement(c)) continue;
      Symbol sym = SymbolOf(c);
      if (sym == automata::kUnboundSymbol) {
        Fail(StrCat("element '", doc.label(c),
                    "' is outside the schemas' alphabet"));
        return false;
      }
      TypeId child_t = target.ChildType(t_type, sym);
      if (child_t == kInvalidType) {
        // Reachable only when the content pass accepted EARLY: an IA state
        // guarantees string membership, but a label beyond the decision
        // point may still fall outside Σ_τ'... which would contradict
        // membership, so treat it as a content-model failure.
        return content_fail();
      }
      TypeId child_s = source.ChildType(s_type, sym);
      if (child_s == kInvalidType) {
        Fail(StrCat("precondition violated: source type '",
                    source.TypeName(s_type), "' does not type child label '",
                    doc.label(c), "'"));
        return false;
      }
      path.push_back(ordinal);
      bool ok = ValidateNode(c, child_s, child_t);
      path.pop_back();
      if (!ok) return false;
    }
    return true;
  }
};

ValidationReport CastValidator::Validate(const xml::Document& doc) const {
  // One span per document — the §3.2 tree-traversal phase. Args carry the
  // domain counters the paper's evaluation is built on.
  obs::Span span("cast.traverse");
  Walk walk{*relations_,
            relations_->source(),
            relations_->target(),
            doc,
            options_.use_immediate_content,
            doc.BoundTo(*relations_->source().alphabet()),
            {},
            {}};
  if (!doc.has_root()) {
    walk.Fail("document has no root element");
    return std::move(walk.report);
  }
  const Schema& source = relations_->source();
  const Schema& target = relations_->target();
  Symbol sym = walk.SymbolOf(doc.root());
  bool in_sigma = sym != automata::kUnboundSymbol;
  TypeId s_root = in_sigma ? source.RootType(sym) : kInvalidType;
  TypeId t_root = in_sigma ? target.RootType(sym) : kInvalidType;
  if (s_root == kInvalidType) {
    walk.Fail(StrCat("precondition violated: root '", doc.label(doc.root()),
                     "' is not declared by the source schema"));
    return std::move(walk.report);
  }
  if (t_root == kInvalidType) {
    ++walk.report.counters.nodes_visited;
    ++walk.report.counters.elements_visited;
    walk.Fail(StrCat("root element '", doc.label(doc.root()),
                     "' is not declared by the target schema"));
    return std::move(walk.report);
  }
  walk.ValidateNode(doc.root(), s_root, t_root);
  AttachTraceArgs(span, walk.report.counters);
  return std::move(walk.report);
}

ValidationReport CastValidator::ValidateSubtree(const xml::Document& doc,
                                                xml::NodeId node,
                                                TypeId source_type,
                                                TypeId target_type) const {
  Walk walk{*relations_,
            relations_->source(),
            relations_->target(),
            doc,
            options_.use_immediate_content,
            doc.BoundTo(*relations_->source().alphabet()),
            {},
            {}};
  walk.ValidateNode(node, source_type, target_type);
  return std::move(walk.report);
}

}  // namespace xmlreval::core
