// String revalidation with respect to finite automata (§4 of the paper).
//
// Given DFAs a and b, preprocessing builds:
//   * b_immed  — immediate decision automaton of b (Definition 6),
//   * c_immed  — immediate decision automaton of the intersection of a and
//     b with IA = state-containment pairs (Definition 7),
//   * reversed counterparts over the reverse automata (footnote 3: the
//     reverse of a DFA is an NFA, so the reverses are determinized), used
//     when modifications cluster at the END of the string (§4.3).
//
// Runtime:
//   * Revalidate(s): s ∈ L(a) is known; decides s ∈ L(b) scanning as few
//     symbols as possible (optimal per Proposition 3).
//   * RevalidateModified(old_s, new_s): old_s ∈ L(a) known, new_s is old_s
//     after edits; decides new_s ∈ L(b) via the §4.3 three-phase scan,
//     choosing forward or reverse direction by where the edits fall.
//   * The single-schema update problem is the a == b special case
//     (the one-argument constructor).

#ifndef XMLREVAL_CORE_STRING_REVALIDATOR_H_
#define XMLREVAL_CORE_STRING_REVALIDATOR_H_

#include <optional>
#include <span>

#include "automata/immediate.h"
#include "common/result.h"

namespace xmlreval::core {

using automata::Dfa;
using automata::Symbol;

struct RevalidationResult {
  bool accepted = false;
  /// Symbols of the (new) string consumed before the verdict.
  size_t symbols_scanned = 0;
  /// Symbols of the ORIGINAL string consumed to recover the source state
  /// (phase 2 of §4.3); zero for the no-modifications path.
  size_t source_symbols_scanned = 0;
  /// Verdict came from an IA/IR state rather than end-of-input.
  bool decided_early = false;
  /// The reverse-automaton direction was chosen (§4.3).
  bool scanned_backward = false;
};

class StringRevalidator {
 public:
  struct Options {
    /// Build the reverse automata and allow backward scans.
    bool enable_reverse = true;
  };

  /// Preprocesses the (a, b) pair. Both DFAs must share an alphabet size.
  static Result<StringRevalidator> Create(const Dfa& a, const Dfa& b,
                                          const Options& options);
  static Result<StringRevalidator> Create(const Dfa& a, const Dfa& b) {
    return Create(a, b, Options{});
  }

  /// Single-schema update problem: a == b.
  static Result<StringRevalidator> CreateSingle(const Dfa& a,
                                                const Options& options);
  static Result<StringRevalidator> CreateSingle(const Dfa& a) {
    return CreateSingle(a, Options{});
  }

  /// Decides s ∈ L(b) for s known to be in L(a), using c_immed.
  RevalidationResult Revalidate(std::span<const Symbol> s) const;

  /// Decides s ∈ L(b) with no prior knowledge, using b_immed. (The paper's
  /// fallback when neither direction has an advantage, and the baseline
  /// for the ablation benches.)
  RevalidationResult ValidateFresh(std::span<const Symbol> s) const;

  /// Decides new_s ∈ L(b) where old_s ∈ L(a) and new_s is a modified
  /// old_s. Computes the unmodified prefix/suffix itself and picks the
  /// scan direction.
  RevalidationResult RevalidateModified(std::span<const Symbol> old_s,
                                        std::span<const Symbol> new_s) const;

  /// As above with a caller-supplied boundary: new_s[i..] is known to
  /// equal the last (new_s.size() - i) symbols of old_s (the paper's
  /// "leftmost location at which, and beyond, no updates were performed").
  /// Always scans forward.
  RevalidationResult RevalidateModifiedForward(std::span<const Symbol> old_s,
                                               std::span<const Symbol> new_s,
                                               size_t unmodified_from) const;

  const automata::ImmediateDfa& c_immed() const { return *c_immed_; }
  const automata::ImmediateDfa& b_immed() const { return *b_immed_; }

 private:
  StringRevalidator() = default;

  RevalidationResult RevalidateModifiedBackward(
      std::span<const Symbol> old_s, std::span<const Symbol> new_s,
      size_t unmodified_prefix) const;

  std::optional<Dfa> a_;
  std::optional<Dfa> b_;
  std::optional<automata::ImmediateDfa> b_immed_;
  std::optional<automata::ImmediateDfa> c_immed_;
  // Reverse direction (determinized reverses; present iff enable_reverse).
  std::optional<Dfa> a_rev_;
  std::optional<Dfa> b_rev_;
  std::optional<automata::ImmediateDfa> b_rev_immed_;
  std::optional<automata::ImmediateDfa> c_rev_immed_;
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_STRING_REVALIDATOR_H_
