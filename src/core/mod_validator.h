// Schema cast validation WITH modifications — §3.3 of the paper.
//
// Input: a Δ-encoded document (built by xml::DocumentEditor: deleted nodes
// still linked but annotated Δ^a_ε, inserted nodes Δ^ε_b, renamed Δ^a_b,
// text edits Δ^χ_χ) whose PRE-EDIT state was valid with respect to the
// source schema, plus the sealed ModificationIndex implementing the
// modified() predicate via a Dewey trie navigated in lockstep with the
// traversal. Decides validity of the post-edit document with respect to
// the target schema.
//
// Case analysis per subtree (τ from S, τ' from S'):
//   1. not modified(t'')       → plain schema-cast validation (§3.2),
//   2. deleted (Δ^a_ε)         → skipped entirely,
//   3. inserted (Δ^ε_b)        → full validation against τ' (no source
//                                 knowledge exists),
//   4. otherwise               → re-check the node's own content against τ'
//                                 — the child-label string under the
//                                 Proj_new projection — using the §4.3
//                                 three-phase scan (b_immed over the edited
//                                 prefix, the source DFA to recover the
//                                 state before the unmodified suffix,
//                                 c_immed from there) when the source type
//                                 is complex; then recurse per child with
//                                 (types_τ(Proj_old), types_τ'(Proj_new)).

#ifndef XMLREVAL_CORE_MOD_VALIDATOR_H_
#define XMLREVAL_CORE_MOD_VALIDATOR_H_

#include "core/cast_validator.h"
#include "core/relations.h"
#include "core/report.h"
#include "xml/editor.h"
#include "xml/tree.h"

namespace xmlreval::core {

class ModValidator {
 public:
  struct Options {
    CastValidator::Options cast;
    /// Use the §4.3 three-phase scan for the content models of modified
    /// nodes; otherwise run the target DFA over the whole Proj_new string.
    bool use_incremental_content = true;
  };

  /// `relations` must outlive the validator.
  explicit ModValidator(const TypeRelations* relations)
      : ModValidator(relations, Options{}) {}
  ModValidator(const TypeRelations* relations, const Options& options);

  /// Validates the Δ-encoded `doc` with modifications `mods` against the
  /// target schema. Precondition: the pre-edit document was valid with
  /// respect to the source schema.
  ValidationReport Validate(const xml::Document& doc,
                            const xml::ModificationIndex& mods) const;

 private:
  struct Walk;

  const TypeRelations* relations_;
  Options options_;
  CastValidator cast_;  // for unmodified subtrees (case 1)
};

}  // namespace xmlreval::core

#endif  // XMLREVAL_CORE_MOD_VALIDATOR_H_
