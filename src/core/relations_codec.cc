#include "core/relations_codec.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "automata/dfa_serialize.h"

namespace xmlreval::core {

namespace {

using automata::DfaCodec;
using automata::ImmediateDfa;
using automata::ImmediateDfaCodec;
using common::ByteReader;
using common::ByteWriter;

Status Corrupt(const char* what) {
  return Status::DataLoss(std::string("plan artifact: ") + what);
}

void EncodeOptionalDfas(
    const std::vector<std::optional<automata::Dfa>>& dfas, ByteWriter* w) {
  for (const auto& dfa : dfas) {
    w->U8(dfa ? 1 : 0);
    if (dfa) {
      w->AlignTo(8);
      DfaCodec::Encode(*dfa, w);
    }
  }
  w->AlignTo(8);
}

Status DecodeOptionalDfas(ByteReader* r, size_t n, bool borrow,
                          std::vector<std::optional<automata::Dfa>>* out) {
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint8_t present = r->U8();
    if (!r->ok() || present > 1) return Corrupt("malformed DFA table entry");
    if (!present) continue;
    r->AlignTo(8);
    auto dfa = DfaCodec::Decode(r, borrow);
    if (!dfa.ok()) return dfa.status();
    (*out)[i] = std::move(dfa).value();
  }
  r->AlignTo(8);
  return Status::OK();
}

// Keyed immediate-automaton maps, encoded in sorted key order so identical
// relations produce identical bytes.
template <typename Key>
void EncodeImmediateMap(const std::unordered_map<Key, ImmediateDfa>& map,
                        ByteWriter* w) {
  std::vector<Key> keys;
  keys.reserve(map.size());
  for (const auto& [k, v] : map) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w->U32(static_cast<uint32_t>(keys.size()));
  for (Key k : keys) {
    w->U64(static_cast<uint64_t>(k));
    w->AlignTo(8);
    ImmediateDfaCodec::Encode(map.at(k), w);
  }
  w->AlignTo(8);
}

template <typename Key>
Status DecodeImmediateMap(ByteReader* r, uint64_t max_key, bool borrow,
                          std::unordered_map<Key, ImmediateDfa>* out) {
  uint32_t n = r->U32();
  if (!r->ok() || n > r->remaining()) {
    return Corrupt("implausible automaton count");
  }
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t key = r->U64();
    if (!r->ok() || key >= max_key) {
      return Corrupt("automaton key out of range");
    }
    r->AlignTo(8);
    auto dfa = ImmediateDfaCodec::Decode(r, borrow);
    if (!dfa.ok()) return dfa.status();
    if (!out->emplace(static_cast<Key>(key), std::move(dfa).value()).second) {
      return Corrupt("duplicate automaton key");
    }
  }
  r->AlignTo(8);
  return Status::OK();
}

}  // namespace

void RelationsCodec::Encode(const TypeRelations& rel, ByteWriter* w) {
  const size_t ns = rel.source_->num_types();
  const size_t nt = rel.num_target_;
  w->U32(static_cast<uint32_t>(ns));
  w->U32(static_cast<uint32_t>(nt));
  w->AlignTo(8);
  w->Bytes(rel.rel_view_, ns * nt);
  w->AlignTo(8);
  EncodeOptionalDfas(rel.source_dfas_, w);
  EncodeOptionalDfas(rel.target_dfas_, w);
  EncodeImmediateMap(rel.pair_automata_, w);
  EncodeImmediateMap(rel.single_automata_, w);
  const bool reverse = !rel.reverse_source_dfas_.empty();
  w->U8(reverse ? 1 : 0);
  if (reverse) {
    EncodeOptionalDfas(rel.reverse_source_dfas_, w);
    EncodeImmediateMap(rel.reverse_pair_automata_, w);
    EncodeImmediateMap(rel.reverse_single_automata_, w);
  }
  w->AlignTo(8);
}

Result<TypeRelations> RelationsCodec::Decode(ByteReader* r,
                                             const Schema* source,
                                             const Schema* target,
                                             bool borrow) {
  uint32_t ns = r->U32();
  uint32_t nt = r->U32();
  if (!r->ok()) return Corrupt("truncated relations header");
  if (ns != source->num_types() || nt != target->num_types()) {
    return Corrupt("relations shape does not match the schemas");
  }
  TypeRelations rel;
  rel.source_ = source;
  rel.target_ = target;
  rel.num_target_ = nt;
  r->AlignTo(8);
  const size_t pairs = static_cast<size_t>(ns) * nt;
  const uint8_t* bits = r->Raw(pairs);
  if (!r->ok()) return Corrupt("truncated relation bits");
  for (size_t i = 0; i < pairs; ++i) {
    if (bits[i] > 3) return Corrupt("invalid relation bits");
  }
  if (borrow) {
    rel.rel_view_ = bits;
  } else {
    rel.rel_bits_.resize(pairs);
    std::memcpy(rel.rel_bits_.data(), bits, pairs);
    rel.rel_view_ = rel.rel_bits_.data();
  }
  r->AlignTo(8);
  RETURN_IF_ERROR(DecodeOptionalDfas(r, ns, borrow, &rel.source_dfas_));
  RETURN_IF_ERROR(DecodeOptionalDfas(r, nt, borrow, &rel.target_dfas_));
  RETURN_IF_ERROR(DecodeImmediateMap<size_t>(r, pairs, borrow,
                                             &rel.pair_automata_));
  RETURN_IF_ERROR(
      DecodeImmediateMap<TypeId>(r, nt, borrow, &rel.single_automata_));
  uint8_t reverse = r->U8();
  if (!r->ok() || reverse > 1) return Corrupt("malformed reverse flag");
  if (reverse) {
    RETURN_IF_ERROR(
        DecodeOptionalDfas(r, ns, borrow, &rel.reverse_source_dfas_));
    RETURN_IF_ERROR(DecodeImmediateMap<size_t>(r, pairs, borrow,
                                               &rel.reverse_pair_automata_));
    RETURN_IF_ERROR(DecodeImmediateMap<TypeId>(
        r, nt, borrow, &rel.reverse_single_automata_));
  }
  r->AlignTo(8);
  if (!r->ok()) return Corrupt("truncated relations");
  // The optional-DFA presence flags must line up with the schemas: the
  // validators index these tables by every complex TypeId unconditionally.
  for (TypeId s = 0; s < ns; ++s) {
    if (source->IsComplex(s) != rel.source_dfas_[s].has_value()) {
      return Corrupt("source DFA table does not match the schema");
    }
  }
  for (TypeId t = 0; t < nt; ++t) {
    if (target->IsComplex(t) != rel.target_dfas_[t].has_value()) {
      return Corrupt("target DFA table does not match the schema");
    }
  }
  rel.BuildDenseTables();
  return rel;
}

}  // namespace xmlreval::core
